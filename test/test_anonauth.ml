(* Tests for the common-prefix-linkable anonymous authentication scheme:
   correctness, common-prefix-linkability, unlinkability across prefixes,
   unforgeability negatives, and the RA tree. *)

open Zebra_field
module Ra = Zebra_anonauth.Ra
module Cpla = Zebra_anonauth.Cpla
module Mimc = Zebra_mimc.Mimc
module Hc = Zebra_hashcomp.Hash_composition

let qtest name ~count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let rng = Zebra_rng.Chacha20.create ~seed:"test_anonauth"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let fp = Alcotest.testable Fp.pp Fp.equal

let depth = 4 (* small tree keeps proving fast in tests *)

(* Shared fixture: params, RA, two registered users. *)
let fixture =
  lazy
    (let params = Cpla.setup ~random_bytes ~depth () in
     let ra = Ra.create ~depth () in
     let alice = Cpla.keygen ~random_bytes () in
     let bob = Cpla.keygen ~random_bytes () in
     let ia = Ra.register ra alice.Cpla.pk in
     let ib = Ra.register ra bob.Cpla.pk in
     (params, ra, (alice, ia), (bob, ib)))

let auth_as params ra (key, index) ~prefix ~message =
  Cpla.auth ~random_bytes params ~prefix ~message ~key ~index ~path:(Ra.path ra index)
    ~root:(Ra.root ra)

(* --- RA tree --- *)

let test_ra_tree_roots_change () =
  let ra = Ra.create ~depth:3 () in
  let r0 = Ra.root ra in
  let _ = Ra.register ra (fresh_fp ()) in
  let r1 = Ra.root ra in
  Alcotest.(check bool) "root changes on registration" false (Fp.equal r0 r1)

let test_ra_paths_verify () =
  let ra = Ra.create ~depth:3 () in
  let pks = List.init 5 (fun _ -> fresh_fp ()) in
  let idxs = List.map (Ra.register ra) pks in
  List.iter2
    (fun pk i ->
      Alcotest.(check bool)
        (Printf.sprintf "leaf %d" i)
        true
        (Ra.verify_path ~root:(Ra.root ra) ~leaf:pk ~index:i (Ra.path ra i)))
    pks idxs

let test_ra_duplicate_refused () =
  let ra = Ra.create ~depth:3 () in
  let pk = fresh_fp () in
  let _ = Ra.register ra pk in
  Alcotest.check_raises "duplicate" (Failure "Ra.register: duplicate identity") (fun () ->
      ignore (Ra.register ra pk))

let test_ra_full () =
  let ra = Ra.create ~depth:1 () in
  let _ = Ra.register ra (fresh_fp ()) in
  let _ = Ra.register ra (fresh_fp ()) in
  Alcotest.check_raises "full" (Failure "Ra.register: tree full") (fun () ->
      ignore (Ra.register ra (fresh_fp ())))

let test_ra_wrong_path_rejected () =
  let ra = Ra.create ~depth:3 () in
  let pk = fresh_fp () in
  let i = Ra.register ra pk in
  let _ = Ra.register ra (fresh_fp ()) in
  let path = Ra.path ra i in
  path.(1) <- fresh_fp ();
  Alcotest.(check bool) "corrupted path" false
    (Ra.verify_path ~root:(Ra.root ra) ~leaf:pk ~index:i path)

let test_ra_capacity_bookkeeping () =
  let ra = Ra.create ~depth:3 () in
  Alcotest.(check int) "capacity" 8 (Ra.capacity ra);
  let _ = Ra.register ra (fresh_fp ()) in
  Alcotest.(check int) "count" 1 (Ra.num_registered ra);
  Alcotest.(check (option bool)) "leaf 0 set" (Some true)
    (Option.map (fun _ -> true) (Ra.leaf ra 0));
  Alcotest.(check bool) "leaf 1 empty" true (Ra.leaf ra 1 = None)

(* --- CPLA correctness --- *)

let test_auth_verifies () =
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message in
  Alcotest.(check bool) "valid attestation" true
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) att)

let test_verify_wrong_context () =
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message in
  let root = Ra.root ra in
  Alcotest.(check bool) "wrong prefix" false
    (Cpla.verify params ~prefix:(fresh_fp ()) ~message ~root att);
  Alcotest.(check bool) "wrong message" false
    (Cpla.verify params ~prefix ~message:(fresh_fp ()) ~root att);
  Alcotest.(check bool) "wrong root" false
    (Cpla.verify params ~prefix ~message ~root:(fresh_fp ()) att)

let test_unregistered_cannot_authenticate () =
  (* Mallory holds a key the RA never registered; her path cannot match the
     root, so her attestation must be rejected (unforgeability). *)
  let params, ra, _, _ = Lazy.force fixture in
  let mallory = Cpla.keygen ~random_bytes () in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att =
    Cpla.auth ~random_bytes params ~prefix ~message ~key:mallory ~index:3
      ~path:(Ra.path ra 3) ~root:(Ra.root ra)
  in
  Alcotest.(check bool) "forged certificate rejected" false
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) att)

let test_stolen_tags_rejected () =
  (* Replaying someone's tags with a different message fails: t2 binds m. *)
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  Alcotest.(check bool) "replay under new message" false
    (Cpla.verify params ~prefix ~message:(fresh_fp ()) ~root:(Ra.root ra) att)

(* --- Linkability --- *)

let test_same_prefix_links () =
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () in
  let a1 = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  let a2 = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  Alcotest.(check bool) "double-auth linked" true (Cpla.link a1 a2)

let test_different_prefix_unlinkable_tags () =
  let params, ra, alice, _ = Lazy.force fixture in
  let a1 = auth_as params ra alice ~prefix:(fresh_fp ()) ~message:(fresh_fp ()) in
  let a2 = auth_as params ra alice ~prefix:(fresh_fp ()) ~message:(fresh_fp ()) in
  Alcotest.(check bool) "cross-task unlinkable" false (Cpla.link a1 a2)

let test_different_users_unlinked () =
  let params, ra, alice, bob = Lazy.force fixture in
  let prefix = fresh_fp () in
  let a1 = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  let a2 = auth_as params ra bob ~prefix ~message:(fresh_fp ()) in
  Alcotest.(check bool) "distinct users not linked" false (Cpla.link a1 a2)

let test_tag_determinism () =
  (* t1 depends only on (prefix, sk): two attestations by the same user on
     the same prefix have identical t1 but different proofs (ZK blinding). *)
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () in
  let a1 = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  let a2 = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  Alcotest.check fp "same t1" a1.Cpla.t1 a2.Cpla.t1;
  Alcotest.(check bool) "different proofs" false
    (Zebra_snark.Snark.equal_proof a1.Cpla.proof a2.Cpla.proof)

let test_tag_tampering_rejected () =
  (* Definition 1's game: with one certificate an adversary cannot produce
     two same-prefix attestations that fail to link.  The only way out
     would be to alter t1 -- but t1 is a public input of the proof. *)
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message in
  let forged = { att with Cpla.t1 = fresh_fp () } in
  Alcotest.(check bool) "fresh t1 breaks the proof" false
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) forged);
  let forged2 = { att with Cpla.t2 = fresh_fp () } in
  Alcotest.(check bool) "fresh t2 breaks the proof" false
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) forged2)

(* --- Anonymity-flavoured checks --- *)

let test_attestation_hides_identity () =
  (* The attestation reveals neither pk nor sk: its tags look like fresh
     field elements; here we check they differ from pk/sk and from the tags
     under another prefix (the full indistinguishability argument rests on
     the hash; the cryptographic game is Definition 2 in the paper). *)
  let params, ra, ((key, _) as alice), _ = Lazy.force fixture in
  let prefix = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message:(fresh_fp ()) in
  Alcotest.(check bool) "t1 <> pk" false (Fp.equal att.Cpla.t1 key.Cpla.pk);
  Alcotest.(check bool) "t1 <> sk" false (Fp.equal att.Cpla.t1 key.Cpla.sk);
  Alcotest.(check bool) "t2 <> pk" false (Fp.equal att.Cpla.t2 key.Cpla.pk)

let test_registration_after_auth_breaks_old_root () =
  (* Paths are valid per root snapshot: after another registration the old
     attestation stays valid under the old root but not under the new one,
     so verifiers must pin the root (task contracts snapshot it). *)
  let params = Cpla.setup ~random_bytes ~depth () in
  let ra = Ra.create ~depth () in
  let key = Cpla.keygen ~random_bytes () in
  let i = Ra.register ra key.Cpla.pk in
  let old_root = Ra.root ra in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att =
    Cpla.auth ~random_bytes params ~prefix ~message ~key ~index:i ~path:(Ra.path ra i)
      ~root:old_root
  in
  let _ = Ra.register ra (Cpla.keygen ~random_bytes ()).Cpla.pk in
  Alcotest.(check bool) "valid under old root" true
    (Cpla.verify params ~prefix ~message ~root:old_root att);
  Alcotest.(check bool) "invalid under new root" false
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) att)

(* --- Serialisation --- *)

let test_attestation_roundtrip () =
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message in
  let att' = Cpla.attestation_of_bytes (Cpla.attestation_to_bytes att) in
  Alcotest.(check bool) "roundtrip verifies" true
    (Cpla.verify params ~prefix ~message ~root:(Ra.root ra) att');
  Alcotest.check fp "t1 preserved" att.Cpla.t1 att'.Cpla.t1

let test_verify_with_serialized_vk () =
  let params, ra, alice, _ = Lazy.force fixture in
  let prefix = fresh_fp () and message = fresh_fp () in
  let att = auth_as params ra alice ~prefix ~message in
  let vk_bytes = Cpla.vk_to_bytes params in
  Alcotest.(check bool) "on-chain style verify" true
    (Cpla.verify_with_vk ~vk_bytes ~prefix ~message ~root:(Ra.root ra) att);
  Alcotest.(check bool) "garbage vk" false
    (Cpla.verify_with_vk ~vk_bytes:(Bytes.of_string "junk") ~prefix ~message
       ~root:(Ra.root ra) att)

let test_attestation_size_constant () =
  let params, ra, alice, bob = Lazy.force fixture in
  let s1 =
    Cpla.attestation_size_bytes (auth_as params ra alice ~prefix:(fresh_fp ()) ~message:(fresh_fp ()))
  in
  let s2 =
    Cpla.attestation_size_bytes (auth_as params ra bob ~prefix:(fresh_fp ()) ~message:(fresh_fp ()))
  in
  Alcotest.(check int) "constant size" s1 s2

(* --- hash composition arms --- *)

(* One trusted setup per arm at a small depth, shared across the tests. *)
let arm_depth = 3

let arm_fixture =
  lazy
    (List.map
       (fun composition ->
         (composition, Cpla.setup ~composition ~random_bytes ~depth:arm_depth ()))
       Hc.all)

let test_composition_accessors () =
  Alcotest.(check int) "two arms" 2 (List.length Hc.all);
  List.iter
    (fun (composition, params) ->
      Alcotest.(check string) "params record their arm" (Hc.to_string composition)
        (Hc.to_string (Cpla.composition params));
      Alcotest.(check int) "depth" arm_depth (Cpla.depth params);
      let ra = Ra.create ~hash:composition ~depth:arm_depth () in
      Alcotest.(check string) "ra records its arm" (Hc.to_string composition)
        (Hc.to_string (Ra.hash_composition ra)))
    (Lazy.force arm_fixture);
  (* The default arm is Poseidon, and the two arms synthesise different
     circuits (the ablation is real). *)
  Alcotest.(check string) "default is poseidon" "poseidon" (Hc.to_string Hc.default);
  (* At this shallow fixture depth the composition-independent parts of the
     circuit dominate, so we only lock the ordering here; the 2.5x+ gap at
     deployed depths is locked by BENCH_lint.json and the check.sh gate. *)
  let size comp = Cpla.circuit_size (List.assoc comp (Lazy.force arm_fixture)) in
  Alcotest.(check bool) "poseidon circuit is smaller" true
    (size Hc.Poseidon < size Hc.Mimc)

(* The same CPLA statement proves and verifies under either composition,
   and a tampered Merkle path is rejected by both — the in-circuit path
   check really binds to the arm's hash. *)
let prop_both_arms_verify_and_reject_tamper =
  qtest "both arms verify; tampered path rejected" ~count:3
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun (composition, params) ->
          let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "arm-%d" seed) in
          let rb n = Zebra_rng.Chacha20.bytes r n in
          let ra = Ra.create ~hash:composition ~depth:arm_depth () in
          let key = Cpla.keygen ~composition ~random_bytes:rb () in
          let index = Ra.register ra key.Cpla.pk in
          let prefix = Fp.random rb and message = Fp.random rb in
          let path = Ra.path ra index in
          let root = Ra.root ra in
          let att =
            Cpla.auth ~random_bytes:rb params ~prefix ~message ~key ~index ~path ~root
          in
          let ok = Cpla.verify params ~prefix ~message ~root att in
          let bad_path = Array.copy path in
          let j = seed mod Array.length bad_path in
          bad_path.(j) <- Fp.add bad_path.(j) Fp.one;
          let att' =
            Cpla.auth ~random_bytes:rb params ~prefix ~message ~key ~index ~path:bad_path
              ~root
          in
          ok && not (Cpla.verify params ~prefix ~message ~root att'))
        (Lazy.force arm_fixture))

let () =
  Alcotest.run "anonauth"
    [
      ( "ra",
        [
          Alcotest.test_case "roots change" `Quick test_ra_tree_roots_change;
          Alcotest.test_case "paths verify" `Quick test_ra_paths_verify;
          Alcotest.test_case "duplicate refused" `Quick test_ra_duplicate_refused;
          Alcotest.test_case "capacity limit" `Quick test_ra_full;
          Alcotest.test_case "wrong path rejected" `Quick test_ra_wrong_path_rejected;
          Alcotest.test_case "bookkeeping" `Quick test_ra_capacity_bookkeeping;
        ] );
      ( "cpla",
        [
          Alcotest.test_case "auth verifies" `Quick test_auth_verifies;
          Alcotest.test_case "wrong context rejected" `Quick test_verify_wrong_context;
          Alcotest.test_case "unregistered rejected" `Quick test_unregistered_cannot_authenticate;
          Alcotest.test_case "tag replay rejected" `Quick test_stolen_tags_rejected;
        ] );
      ( "linkability",
        [
          Alcotest.test_case "same prefix links" `Quick test_same_prefix_links;
          Alcotest.test_case "cross prefix unlinkable" `Quick test_different_prefix_unlinkable_tags;
          Alcotest.test_case "different users unlinked" `Quick test_different_users_unlinked;
          Alcotest.test_case "tag determinism + zk" `Quick test_tag_determinism;
          Alcotest.test_case "tag tampering rejected" `Quick test_tag_tampering_rejected;
        ] );
      ( "anonymity",
        [
          Alcotest.test_case "tags hide identity" `Quick test_attestation_hides_identity;
          Alcotest.test_case "root snapshots" `Quick test_registration_after_auth_breaks_old_root;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "attestation roundtrip" `Quick test_attestation_roundtrip;
          Alcotest.test_case "verify with vk bytes" `Quick test_verify_with_serialized_vk;
          Alcotest.test_case "constant size" `Quick test_attestation_size_constant;
        ] );
      ( "composition",
        [
          Alcotest.test_case "arm accessors" `Slow test_composition_accessors;
          prop_both_arms_verify_and_reject_tamper;
        ] );
    ]
