(* MiMC and gadget tests: every gadget is checked against its native
   counterpart and for constraint satisfaction, plus negative cases where a
   corrupted witness must violate the constraints. *)

open Zebra_field
open Zebra_r1cs
module Mimc = Zebra_mimc.Mimc

let rng = Zebra_rng.Chacha20.create ~seed:"test_r1cs"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let fp = Alcotest.testable Fp.pp Fp.equal

let qtest name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let arb_fp =
  QCheck2.Gen.map
    (fun seed ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "r1cs-%d" seed) in
      Fp.random (Zebra_rng.Chacha20.bytes r))
    QCheck2.Gen.(int_bound 1_000_000)

(* --- MiMC native --- *)

let test_mimc_permutation () =
  let key = fresh_fp () and x = fresh_fp () in
  Alcotest.check fp "decrypt . encrypt = id" x (Mimc.decrypt ~key (Mimc.encrypt ~key x))

let test_mimc_exponent_coprime () =
  (* x -> x^7 is a permutation iff gcd(7, r-1) = 1 *)
  let open Zebra_numeric in
  let g = Nat.gcd (Nat.of_int 7) (Nat.sub Fp.modulus Nat.one) in
  Alcotest.(check string) "gcd(7, r-1)" "1" (Nat.to_decimal_string g)

let test_mimc_deterministic () =
  let a = fresh_fp () and b = fresh_fp () in
  Alcotest.check fp "hash2 deterministic" (Mimc.hash2 a b) (Mimc.hash2 a b);
  Alcotest.(check bool) "order matters" false (Fp.equal (Mimc.hash2 a b) (Mimc.hash2 b a))

let test_mimc_length_separation () =
  (* hash_list [x] <> hash_list [x; 0] thanks to length absorption *)
  let x = fresh_fp () in
  Alcotest.(check bool) "length absorbed" false
    (Fp.equal (Mimc.hash_list [ x ]) (Mimc.hash_list [ x; Fp.zero ]))

let test_mimc_key_sensitivity () =
  let x = fresh_fp () in
  let k1 = fresh_fp () and k2 = fresh_fp () in
  Alcotest.(check bool) "different keys differ" false
    (Fp.equal (Mimc.encrypt ~key:k1 x) (Mimc.encrypt ~key:k2 x))

(* --- Gadgets --- *)

let test_mul_gadget () =
  let cs = Cs.create () in
  let a = fresh_fp () and b = fresh_fp () in
  let va = Cs.alloc cs a and vb = Cs.alloc cs b in
  let out = Gadgets.mul cs (Gadgets.v va) (Gadgets.v vb) in
  Alcotest.check fp "product value" (Fp.mul a b) (Cs.value cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs);
  Cs.set_value cs out (Fp.add (Fp.mul a b) Fp.one);
  Alcotest.(check bool) "corrupt product detected" false (Cs.is_satisfied cs)

let test_inverse_gadget () =
  let cs = Cs.create () in
  let a = fresh_fp () in
  let va = Cs.alloc cs a in
  let inv = Gadgets.inverse cs (Gadgets.v va) in
  Alcotest.check fp "inverse" (Fp.inv a) (Cs.value cs inv);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_inverse_zero_unsatisfiable () =
  let cs = Cs.create () in
  let va = Cs.alloc cs Fp.zero in
  let _ = Gadgets.inverse cs (Gadgets.v va) in
  Alcotest.(check bool) "zero has no inverse" false (Cs.is_satisfied cs)

let test_is_zero_gadget () =
  List.iter
    (fun x ->
      let cs = Cs.create () in
      let vx = Cs.alloc cs x in
      let out = Gadgets.is_zero cs (Gadgets.v vx) in
      let expected = if Fp.is_zero x then Fp.one else Fp.zero in
      Alcotest.check fp "indicator" expected (Cs.value cs out);
      Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs))
    [ Fp.zero; Fp.one; fresh_fp () ]

let test_is_zero_no_cheat () =
  (* Claiming 'zero' for a nonzero input must be caught. *)
  let cs = Cs.create () in
  let vx = Cs.alloc cs (fresh_fp ()) in
  let out = Gadgets.is_zero cs (Gadgets.v vx) in
  Cs.set_value cs out Fp.one;
  Alcotest.(check bool) "lying is_zero detected" false (Cs.is_satisfied cs)

let test_select_gadget () =
  let a = fresh_fp () and b = fresh_fp () in
  List.iter
    (fun cond ->
      let cs = Cs.create () in
      let vc = Gadgets.alloc_bit cs cond in
      let va = Cs.alloc cs a and vb = Cs.alloc cs b in
      let out = Gadgets.select cs ~cond:(Gadgets.v vc) (Gadgets.v va) (Gadgets.v vb) in
      Alcotest.check fp "selected" (if cond then a else b) (Cs.value cs out);
      Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs))
    [ true; false ]

let test_bits_roundtrip () =
  let cs = Cs.create () in
  let x = Fp.of_int 0b1011010111 in
  let vx = Cs.alloc cs x in
  let bits = Gadgets.bits_of_expr cs (Gadgets.v vx) 16 in
  Alcotest.(check int) "nbits" 16 (Array.length bits);
  Alcotest.check fp "bit0" Fp.one (Cs.value cs bits.(0));
  Alcotest.check fp "bit1" Fp.one (Cs.value cs bits.(1));
  Alcotest.check fp "bit2" Fp.one (Cs.value cs bits.(2));
  Alcotest.check fp "bit3" Fp.zero (Cs.value cs bits.(3));
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_bits_overflow_unsatisfiable () =
  (* Value does not fit in the requested width -> recomposition fails. *)
  let cs = Cs.create () in
  let vx = Cs.alloc cs (Fp.of_int 300) in
  let _ = Gadgets.bits_of_expr cs (Gadgets.v vx) 8 in
  Alcotest.(check bool) "overflow detected" false (Cs.is_satisfied cs)

let test_less_than () =
  let cases = [ (3, 5, true); (5, 3, false); (7, 7, false); (0, 1, true); (255, 255, false) ] in
  List.iter
    (fun (a, b, expected) ->
      let cs = Cs.create () in
      let va = Cs.alloc cs (Fp.of_int a) and vb = Cs.alloc cs (Fp.of_int b) in
      let out = Gadgets.less_than cs (Gadgets.v va) (Gadgets.v vb) ~bits:8 in
      Alcotest.check fp
        (Printf.sprintf "%d < %d" a b)
        (if expected then Fp.one else Fp.zero)
        (Gadgets.eval cs out);
      Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs))
    cases

let test_exp_gadget () =
  let cs = Cs.create () in
  let base = fresh_fp () in
  let e = 0b110101 in
  let vbase = Cs.alloc cs base in
  let bits = Array.init 6 (fun i -> Gadgets.alloc_bit cs ((e lsr i) land 1 = 1)) in
  let out = Gadgets.exp cs ~base:(Gadgets.v vbase) ~bits in
  Alcotest.check fp "base^e" (Fp.pow_int base e) (Cs.value cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_mimc_gadget_matches_native () =
  let cs = Cs.create () in
  let key = fresh_fp () and x = fresh_fp () in
  let vk = Cs.alloc cs key and vx = Cs.alloc cs x in
  let out = Gadgets.mimc_encrypt cs ~key:(Gadgets.v vk) (Gadgets.v vx) in
  Alcotest.check fp "gadget = native" (Mimc.encrypt ~key x) (Gadgets.eval cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_mimc_hash_gadget_matches_native () =
  let cs = Cs.create () in
  let xs = List.init 3 (fun _ -> fresh_fp ()) in
  let vars = List.map (fun x -> Gadgets.v (Cs.alloc cs x)) xs in
  let out = Gadgets.mimc_hash cs vars in
  Alcotest.check fp "hash gadget = native" (Mimc.hash_list xs) (Gadgets.eval cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_merkle_gadget () =
  (* Build a depth-3 tree natively and verify the gadget recomputes the root
     for each of the 8 leaves. *)
  let depth = 3 in
  let leaves = Array.init 8 (fun _ -> fresh_fp ()) in
  let level0 = leaves in
  let next level =
    Array.init (Array.length level / 2) (fun i -> Mimc.hash2 level.(2 * i) level.((2 * i) + 1))
  in
  let level1 = next level0 in
  let level2 = next level1 in
  let root = Mimc.hash2 level2.(0) level2.(1) in
  for idx = 0 to 7 do
    let cs = Cs.create () in
    let leaf = Cs.alloc cs leaves.(idx) in
    let sibling_values =
      [|
        (if idx land 1 = 0 then leaves.(idx + 1) else leaves.(idx - 1));
        (let i1 = idx / 2 in
         if i1 land 1 = 0 then level1.(i1 + 1) else level1.(i1 - 1));
        (let i2 = idx / 4 in
         if i2 land 1 = 0 then level2.(i2 + 1) else level2.(i2 - 1));
      |]
    in
    let path_bits = Array.init depth (fun l -> Gadgets.alloc_bit cs ((idx lsr l) land 1 = 1)) in
    let siblings = Array.map (Cs.alloc cs) sibling_values in
    let out = Gadgets.merkle_root cs ~leaf:(Gadgets.v leaf) ~path_bits ~siblings in
    Alcotest.check fp (Printf.sprintf "leaf %d root" idx) root (Gadgets.eval cs out);
    Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)
  done

let test_find_unsatisfied_label () =
  let cs = Cs.create () in
  let va = Cs.alloc cs Fp.one in
  Cs.enforce cs ~label:"must-be-two" (Gadgets.v va) (Gadgets.c Fp.one) (Gadgets.ci 2);
  Alcotest.(check (option string)) "label reported" (Some "must-be-two") (Cs.find_unsatisfied cs)

let test_alloc_input_ordering () =
  let cs = Cs.create () in
  let _ = Cs.alloc cs Fp.one in
  Alcotest.check_raises "inputs before aux"
    (Invalid_argument "Cs.alloc_input: auxiliary wires already allocated") (fun () ->
      ignore (Cs.alloc_input cs Fp.one))

let prop_eq_gadget =
  qtest "eq gadget" (QCheck2.Gen.pair arb_fp arb_fp) (fun (a, b) ->
      let cs = Cs.create () in
      let va = Cs.alloc cs a and vb = Cs.alloc cs b in
      let out = Gadgets.eq cs (Gadgets.v va) (Gadgets.v vb) in
      Cs.is_satisfied cs
      && Fp.equal (Cs.value cs out) (if Fp.equal a b then Fp.one else Fp.zero))

let prop_less_than_random =
  qtest "less_than random" QCheck2.Gen.(pair (int_bound 65535) (int_bound 65535))
    (fun (a, b) ->
      let cs = Cs.create () in
      let va = Cs.alloc cs (Fp.of_int a) and vb = Cs.alloc cs (Fp.of_int b) in
      let out = Gadgets.less_than cs (Gadgets.v va) (Gadgets.v vb) ~bits:16 in
      Cs.is_satisfied cs && Fp.equal (Gadgets.eval cs out) (if a < b then Fp.one else Fp.zero))

let () =
  Alcotest.run "r1cs"
    [
      ( "mimc",
        [
          Alcotest.test_case "permutation" `Quick test_mimc_permutation;
          Alcotest.test_case "exponent coprime" `Quick test_mimc_exponent_coprime;
          Alcotest.test_case "deterministic" `Quick test_mimc_deterministic;
          Alcotest.test_case "length separation" `Quick test_mimc_length_separation;
          Alcotest.test_case "key sensitivity" `Quick test_mimc_key_sensitivity;
        ] );
      ( "gadgets",
        [
          Alcotest.test_case "mul" `Quick test_mul_gadget;
          Alcotest.test_case "inverse" `Quick test_inverse_gadget;
          Alcotest.test_case "inverse of zero" `Quick test_inverse_zero_unsatisfiable;
          Alcotest.test_case "is_zero" `Quick test_is_zero_gadget;
          Alcotest.test_case "is_zero no cheat" `Quick test_is_zero_no_cheat;
          Alcotest.test_case "select" `Quick test_select_gadget;
          Alcotest.test_case "bit decomposition" `Quick test_bits_roundtrip;
          Alcotest.test_case "bit overflow" `Quick test_bits_overflow_unsatisfiable;
          Alcotest.test_case "less_than" `Quick test_less_than;
          Alcotest.test_case "exp" `Quick test_exp_gadget;
          Alcotest.test_case "mimc encrypt gadget" `Quick test_mimc_gadget_matches_native;
          Alcotest.test_case "mimc hash gadget" `Quick test_mimc_hash_gadget_matches_native;
          Alcotest.test_case "merkle root gadget" `Quick test_merkle_gadget;
          Alcotest.test_case "unsatisfied label" `Quick test_find_unsatisfied_label;
          Alcotest.test_case "input ordering" `Quick test_alloc_input_ordering;
          prop_eq_gadget; prop_less_than_random;
        ] );
    ]
