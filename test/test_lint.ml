(* Static-analyzer tests: one deliberately broken circuit per rule family
   asserting the exact rule id fires, a clean circuit asserting silence,
   the deployed-circuit registry locked at zero Error findings, and
   property tests that linting is read-only — it never mutates the board
   and never changes what setup/prove/verify produce. *)

open Zebra_field
open Zebra_r1cs
module Lint = Zebra_lint.Lint
module Snark = Zebra_snark.Snark
module Obs = Zebra_obs.Obs

let rng = Zebra_rng.Chacha20.create ~seed:"test_lint"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let qtest name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let rule_ids report = List.map (fun f -> f.Lint.rule) report.Lint.findings

let check_fires rule report =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires (got: %s)" rule (String.concat ", " (rule_ids report)))
    true
    (Lint.by_rule report rule <> [])

(* Fully determined demo circuit: x^3 + x + 5 = y with public y.  Every
   auxiliary wire is pinned by the public input, so a correct analyzer has
   nothing to say about it. *)
let clean_circuit x =
  let cs = Cs.create () in
  let y_val = Fp.add (Fp.add (Fp.mul x (Fp.mul x x)) x) (Fp.of_int 5) in
  let y = Cs.alloc_input cs ~label:"y" y_val in
  let vx = Cs.alloc cs ~label:"x" x in
  let open Gadgets in
  let x2 = square cs (v vx) in
  let x3 = mul cs (v x2) (v vx) in
  enforce_eq cs ~label:"cubic" (v x3 +: v vx +: ci 5) (v y);
  cs

(* --- rule table --- *)

let test_rule_table () =
  let ids = List.map (fun (id, _, _) -> id) Lint.rules in
  Alcotest.(check bool) "ids sorted and unique" true (List.sort_uniq compare ids = ids);
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " is Error") true
        (List.exists (fun (i, _, s) -> i = id && s = Lint.Error) Lint.rules))
    [ "ZL001"; "ZL013"; "ZL030"; "ZL031" ]

(* --- clean circuit stays silent --- *)

let test_clean_circuit_silent () =
  let report = Lint.analyze ~name:"clean" (clean_circuit (Fp.of_int 2)) in
  Alcotest.(check (list string)) "no findings" [] (rule_ids report);
  Alcotest.(check int) "no free aux wires" 0 report.Lint.free_aux_wires

(* --- one broken circuit per rule --- *)

let test_zl001_unconstrained_wire () =
  let cs = clean_circuit (Fp.of_int 2) in
  let _orphan = Cs.alloc cs ~label:"orphan" (Fp.of_int 9) in
  let report = Lint.analyze cs in
  check_fires "ZL001" report;
  match Lint.by_rule report "ZL001" with
  | [ f ] ->
    Alcotest.(check (option string)) "provenance label" (Some "orphan") f.Lint.wire_label;
    Alcotest.(check bool) "severity Error" true (f.Lint.severity = Lint.Error)
  | fs -> Alcotest.failf "expected exactly one ZL001, got %d" (List.length fs)

let test_zl002_unused_public_input () =
  let cs = Cs.create () in
  let _ghost = Cs.alloc_input cs ~label:"ghost" (Fp.of_int 3) in
  let a = Cs.alloc cs (Fp.of_int 2) in
  Gadgets.(enforce_eq cs (v a) (ci 2));
  let report = Lint.analyze cs in
  check_fires "ZL002" report

let test_zl010_trivial_constraint () =
  let cs = clean_circuit (Fp.of_int 2) in
  Cs.enforce cs ~label:"vacuous" [] [] [];
  check_fires "ZL010" (Lint.analyze cs)

let test_zl011_duplicate_constraint () =
  let cs = Cs.create () in
  let a = Cs.alloc cs (Fp.of_int 2) and b = Cs.alloc cs (Fp.of_int 3) in
  let open Gadgets in
  enforce_eq cs ~label:"sum" (v a +: v b) (ci 5);
  enforce_eq cs ~label:"sum again" (v a +: v b) (ci 5);
  check_fires "ZL011" (Lint.analyze cs)

let test_zl012_dependent_constraint () =
  let cs = Cs.create () in
  let a = Cs.alloc cs (Fp.of_int 2) and b = Cs.alloc cs (Fp.of_int 3) in
  let open Gadgets in
  enforce_eq cs (v a +: v b) (ci 5);
  (* twice the first row: same kernel, different canonical form, so it is
     not a ZL011 duplicate — only the rank pass can see it *)
  enforce_eq cs (scale (Fp.of_int 2) (v a) +: scale (Fp.of_int 2) (v b)) (ci 10);
  let report = Lint.analyze cs in
  check_fires "ZL012" report;
  Alcotest.(check bool) "no ZL011 for scaled row" true (Lint.by_rule report "ZL011" = [])

let test_zl013_unsatisfiable_constant () =
  let cs = clean_circuit (Fp.of_int 2) in
  Cs.enforce cs ~label:"impossible" [] [] [ (Fp.one, Cs.one_var) ];
  let report = Lint.analyze cs in
  check_fires "ZL013" report;
  Alcotest.(check bool) "counted as error" true (Lint.errors report > 0)

let test_zl020_zl021_rank_deficiency () =
  let cs = Cs.create () in
  let a = Cs.alloc cs ~label:"a" (Fp.of_int 2) and b = Cs.alloc cs ~label:"b" (Fp.of_int 3) in
  (* one constraint, three aux wires: the product pins only one of them *)
  let _out = Gadgets.(mul cs (v a) (v b)) in
  let report = Lint.analyze cs in
  check_fires "ZL020" report;
  Alcotest.(check int) "two free wires" 2 (List.length (Lint.by_rule report "ZL021"));
  Alcotest.(check int) "rank one" 1 report.Lint.jacobian_rank;
  Alcotest.(check int) "free count in report" 2 report.Lint.free_aux_wires

let test_zl030_missing_booleanity () =
  let cs = Cs.create () in
  (* claims to be a bit via the label contract, but only a linear
     constraint pins it — nothing stops a prover putting 7 here if the
     constraint set ever loosens *)
  let fake = Cs.alloc cs ~label:"bit:fake" Fp.one in
  Gadgets.(enforce_eq cs (v fake) (ci 1));
  let report = Lint.analyze cs in
  check_fires "ZL030" report;
  (* the honest allocator is silent *)
  let cs2 = Cs.create () in
  let real = Gadgets.alloc_bit cs2 ~label:"real" true in
  Gadgets.(enforce_eq cs2 (v real) (ci 1));
  Alcotest.(check bool) "alloc_bit passes" true
    (Lint.by_rule (Lint.analyze cs2) "ZL030" = [])

let test_zl031_broken_recomposition () =
  let cs = Cs.create () in
  let b0 = Gadgets.alloc_bit cs true and b1 = Gadgets.alloc_bit cs true in
  (* coefficients 1,3 instead of the doubling chain 1,2: values 4 and 2+3i
     collide, the "range check" proves nothing *)
  Cs.enforce cs ~label:"bit recomposition"
    [ (Fp.one, b0); (Fp.of_int 3, b1); (Fp.neg (Fp.of_int 4), Cs.one_var) ]
    [ (Fp.one, Cs.one_var) ]
    [];
  check_fires "ZL031" (Lint.analyze cs);
  (* a genuine bits_of_expr decomposition is silent *)
  let cs2 = Cs.create () in
  let x = Cs.alloc cs2 (Fp.of_int 9) in
  let _bits = Gadgets.(bits_of_expr cs2 (v x) 4) in
  Alcotest.(check bool) "bits_of_expr passes" true
    (Lint.by_rule (Lint.analyze cs2) "ZL031" = [])

(* --- deployed circuits: the acceptance gate --- *)

let test_deployed_circuits_no_errors () =
  List.iter
    (fun (name, synth) ->
      let report = Lint.analyze ~name (synth ()) in
      Alcotest.(check int) (name ^ ": zero Error findings") 0 (Lint.errors report);
      List.iter
        (fun rule ->
          Alcotest.(check (list string)) (name ^ ": no " ^ rule) []
            (List.map (fun f -> f.Lint.message) (Lint.by_rule report rule)))
        [ "ZL001"; "ZL011"; "ZL013"; "ZL030"; "ZL031" ])
    (Zebralancer.Deployed.circuits ())

(* Every parameterised circuit is deployed as two registry arms, one per
   hash composition, and legacy bare names still resolve (to Poseidon). *)
let test_deployed_composition_arms () =
  let names = Zebralancer.Deployed.names () in
  let bases =
    [
      "cpla-depth8";
      "cpla-depth16";
      "reward-majority-n3";
      "reward-majority-n5";
      "reward-quota-n3";
      "reward-auction-n4";
      "reputation-link";
    ]
  in
  List.iter
    (fun base ->
      List.iter
        (fun suffix ->
          let arm = base ^ suffix in
          Alcotest.(check bool) (arm ^ " listed") true (List.mem arm names))
        [ "-poseidon"; "-mimc" ];
      Alcotest.(check bool) (base ^ " bare name resolves") true
        (Zebralancer.Deployed.find base <> None))
    bases;
  (* and the two arms of the same base are different circuits *)
  let constraints name =
    match Zebralancer.Deployed.find name with
    | Some synth -> Cs.num_constraints (synth ())
    | None -> Alcotest.fail (name ^ " not found")
  in
  Alcotest.(check bool) "cpla arms differ" true
    (constraints "cpla-depth8-poseidon" < constraints "cpla-depth8-mimc");
  Alcotest.(check int) "bare name is the poseidon arm"
    (constraints "cpla-depth8-poseidon")
    (constraints "cpla-depth8")

(* --- observability --- *)

let test_obs_counters () =
  Obs.reset ();
  Obs.set_enabled true;
  let cs = clean_circuit (Fp.of_int 2) in
  let _orphan = Cs.alloc cs (Fp.of_int 9) in
  let report = Lint.analyze cs in
  Obs.set_enabled false;
  Alcotest.(check int) "one error" 1 (Lint.errors report);
  let count name = Obs.Counter.value (Obs.Counter.make name) in
  Alcotest.(check int) "lint.runs" 1 (count "lint.runs");
  Alcotest.(check int) "lint.rule.zl001" 1 (count "lint.rule.zl001");
  Alcotest.(check int) "lint.findings.error" 1 (count "lint.findings.error");
  Obs.reset ()

(* --- purity: analysis must not change the board or the SNARK --- *)

let lc_repr lc = List.map (fun (k, v) -> (Fp.to_bytes_be k, Cs.int_of_var v)) lc

let board_repr cs =
  ( Cs.num_vars cs,
    Cs.num_inputs cs,
    Cs.num_constraints cs,
    Array.map (fun (a, b, c) -> (lc_repr a, lc_repr b, lc_repr c)) (Cs.constraints cs),
    Array.map Fp.to_bytes_be (Cs.assignment cs) )

let prop_lint_read_only =
  qtest "analyze leaves the board bit-identical" ~count:25
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let cs = clean_circuit (Fp.of_int (seed + 2)) in
      let _orphan = Cs.alloc cs ~label:"bit:odd" (Fp.of_int seed) in
      let before = board_repr cs in
      let _report = Lint.analyze cs in
      board_repr cs = before)

let prop_lint_preserves_proofs =
  qtest "setup/prove/verify unchanged by a prior lint" ~count:8
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let x = Fp.of_int (seed + 2) in
      let run ~lint_first =
        let cs = clean_circuit x in
        if lint_first then ignore (Lint.analyze cs : Lint.report);
        let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "lint-pure-%d" seed) in
        let rb n = Zebra_rng.Chacha20.bytes r n in
        let { Snark.pk; vk; _ } = Snark.setup ~random_bytes:rb cs in
        let proof = Snark.prove ~random_bytes:rb pk cs in
        assert (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof);
        Snark.proof_to_bytes proof
      in
      Bytes.equal (run ~lint_first:false) (run ~lint_first:true))

let () =
  ignore random_bytes;
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "rule table" `Quick test_rule_table;
          Alcotest.test_case "clean circuit silent" `Quick test_clean_circuit_silent;
          Alcotest.test_case "ZL001 unconstrained wire" `Quick test_zl001_unconstrained_wire;
          Alcotest.test_case "ZL002 unused public input" `Quick test_zl002_unused_public_input;
          Alcotest.test_case "ZL010 trivial constraint" `Quick test_zl010_trivial_constraint;
          Alcotest.test_case "ZL011 duplicate constraint" `Quick
            test_zl011_duplicate_constraint;
          Alcotest.test_case "ZL012 dependent constraint" `Quick
            test_zl012_dependent_constraint;
          Alcotest.test_case "ZL013 unsatisfiable constant" `Quick
            test_zl013_unsatisfiable_constant;
          Alcotest.test_case "ZL020/ZL021 rank deficiency" `Quick
            test_zl020_zl021_rank_deficiency;
          Alcotest.test_case "ZL030 missing booleanity" `Quick test_zl030_missing_booleanity;
          Alcotest.test_case "ZL031 broken recomposition" `Quick
            test_zl031_broken_recomposition;
        ] );
      ( "deployed",
        [
          Alcotest.test_case "registry has zero errors" `Slow test_deployed_circuits_no_errors;
          Alcotest.test_case "composition arms listed" `Quick test_deployed_composition_arms;
        ] );
      ( "integration",
        [
          Alcotest.test_case "obs counters" `Quick test_obs_counters;
          prop_lint_read_only;
          prop_lint_preserves_proofs;
        ] );
    ]
