(* The Domain pool: lifecycle, primitives, exception propagation, and the
   determinism contract — results bit-identical at every domain count. *)

open Zebra_field
module Parallel = Zebra_parallel.Parallel
module Pool = Parallel.Pool
module Snark = Zebra_snark.Snark
module Cs = Zebra_r1cs.Cs

let with_pool domains f =
  let p = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* --- lifecycle --- *)

let test_create_shutdown () =
  let p = Pool.create ~domains:4 in
  Alcotest.(check int) "domains" 4 (Pool.domains p);
  Pool.shutdown p;
  Pool.shutdown p;
  (* a dead pool still runs work, just sequentially *)
  let hits = ref 0 in
  Parallel.parallel_for ~pool:p ~min_chunk:1 8 (fun lo hi -> hits := !hits + (hi - lo));
  Alcotest.(check int) "runs after shutdown" 8 !hits

let test_clamping () =
  with_pool 0 (fun p -> Alcotest.(check int) "clamped up" 1 (Pool.domains p));
  with_pool 1000 (fun p -> Alcotest.(check int) "clamped down" 64 (Pool.domains p))

let test_parse_domains () =
  Alcotest.(check int) "int" 4 (Parallel.parse_domains "4");
  Alcotest.(check int) "trimmed" 2 (Parallel.parse_domains " 2 ");
  Alcotest.(check bool) "auto" true (Parallel.parse_domains "auto" >= 1);
  let rejects s =
    Alcotest.check_raises ("rejects " ^ s)
      (Invalid_argument "Parallel.parse_domains: expected a positive integer or \"auto\"")
      (fun () -> ignore (Parallel.parse_domains s))
  in
  rejects "0";
  rejects "-3";
  rejects "many"

(* --- primitives --- *)

let test_parallel_for () =
  with_pool 4 (fun p ->
      let n = 10_000 in
      let out = Array.make n 0 in
      Parallel.parallel_for ~pool:p ~min_chunk:64 n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i * i
          done);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then Alcotest.failf "slot %d wrong" i
      done)

let test_map_reduce () =
  with_pool 4 (fun p ->
      let n = 12_345 in
      let sum =
        Parallel.map_reduce ~pool:p ~min_chunk:16 n
          ~map:(fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
          ~reduce:( + ) 0
      in
      Alcotest.(check int) "gauss" (n * (n - 1) / 2) sum;
      Alcotest.(check int) "empty" 7
        (Parallel.map_reduce ~pool:p 0 ~map:(fun _ _ -> 1) ~reduce:( + ) 7))

let test_map_reduce_ordered () =
  (* A non-commutative reduce (list append) still comes out in chunk-index
     order: the fold happens on the caller over the ordered results. *)
  with_pool 4 (fun p ->
      let n = 1000 in
      let chunks =
        Parallel.map_reduce ~pool:p ~min_chunk:10 n
          ~map:(fun lo hi -> [ (lo, hi) ])
          ~reduce:( @ ) []
      in
      let rec contiguous expect = function
        | [] -> Alcotest.(check int) "covers range" n expect
        | (lo, hi) :: rest ->
          Alcotest.(check int) "contiguous" expect lo;
          contiguous hi rest
      in
      contiguous 0 chunks)

let test_exists () =
  with_pool 4 (fun p ->
      Alcotest.(check bool) "hit" true
        (Parallel.exists ~pool:p ~min_chunk:8 1000 (fun i -> i = 977));
      Alcotest.(check bool) "miss" false
        (Parallel.exists ~pool:p ~min_chunk:8 1000 (fun _ -> false));
      Alcotest.(check bool) "empty" false (Parallel.exists ~pool:p 0 (fun _ -> true)))

let test_both () =
  with_pool 2 (fun p ->
      let a, b = Parallel.both ~pool:p (fun () -> 6 * 7) (fun () -> "ok") in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)

let test_nested_regions () =
  (* A parallel call from inside a running region must not deadlock; it
     falls back to the same sequential chunk walk. *)
  with_pool 4 (fun p ->
      let total = ref 0 in
      let m = Mutex.create () in
      Parallel.parallel_for ~pool:p ~min_chunk:1 4 (fun lo hi ->
          for _ = lo to hi - 1 do
            let s =
              Parallel.map_reduce ~pool:p ~min_chunk:1 10
                ~map:(fun l h -> h - l)
                ~reduce:( + ) 0
            in
            Mutex.lock m;
            total := !total + s;
            Mutex.unlock m
          done);
      Alcotest.(check int) "nested sums" 40 !total)

(* --- exceptions --- *)

let test_exception_propagation () =
  with_pool 4 (fun p ->
      (match
         Parallel.parallel_for ~pool:p ~min_chunk:1 64 (fun lo _ ->
             if lo >= 32 then failwith "boom")
       with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure m when m = "boom" -> ());
      (* the pool survives a failed region *)
      let sum =
        Parallel.map_reduce ~pool:p ~min_chunk:1 8 ~map:(fun lo hi -> hi - lo) ~reduce:( + ) 0
      in
      Alcotest.(check int) "reusable after failure" 8 sum;
      match Parallel.both ~pool:p (fun () -> failwith "left") (fun () -> 1) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m when m = "left" -> ())

(* --- determinism: bit-identical results at any domain count --- *)

let fp_array_gen =
  QCheck.Gen.(
    map
      (fun seeds -> Array.of_list (List.map Fp.of_int seeds))
      (list_size (return (1 lsl 10)) (int_bound max_int)))

let test_fft_determinism =
  QCheck.Test.make ~count:10 ~name:"fft identical at 1 vs 4 domains"
    (QCheck.make fp_array_gen) (fun a ->
      let saved = Parallel.default_domains () in
      Fun.protect
        ~finally:(fun () -> Parallel.set_default_domains saved)
        (fun () ->
          let dom = Fft.domain (Array.length a) in
          let run nd =
            Parallel.set_default_domains nd;
            let x = Array.copy a in
            Fft.coset_fft dom x;
            Fft.coset_ifft dom x;
            x
          in
          let seq = run 1 in
          let par = run 4 in
          Array.for_all2 Fp.equal seq par && Array.for_all2 Fp.equal seq a))

let test_prove_determinism () =
  (* Same circuit, same RNG seed, different domain counts: the proofs must
     be byte-identical — randomness is all drawn on the calling domain and
     chunk grids are pool-independent. *)
  let rng = Zebra_rng.Chacha20.create ~seed:"test-parallel-setup" in
  let random_bytes n = Zebra_rng.Chacha20.bytes rng n in
  let cs =
    let cs = Cs.create () in
    let secret = Fp.of_int 1234567 in
    let digest = Zebra_mimc.Mimc.hash_list [ secret; secret ] in
    let pub = Cs.alloc_input cs digest in
    let s = Cs.alloc cs secret in
    let open Zebra_r1cs.Gadgets in
    let h = mimc_hash cs [ v s; v s ] in
    enforce_eq cs ~label:"digest" h (v pub);
    cs
  in
  let kp = Snark.setup ~random_bytes cs in
  let saved = Parallel.default_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_default_domains saved)
    (fun () ->
      let prove_at nd =
        Parallel.set_default_domains nd;
        let r = Zebra_rng.Chacha20.create ~seed:"test-parallel-prove" in
        Snark.prove ~random_bytes:(Zebra_rng.Chacha20.bytes r) kp.Snark.pk cs
      in
      let p1 = prove_at 1 in
      let p4 = prove_at 4 in
      Alcotest.(check bool) "proofs identical" true (Snark.equal_proof p1 p4);
      Alcotest.(check bool) "bytes identical" true
        (Bytes.equal (Snark.proof_to_bytes p1) (Snark.proof_to_bytes p4));
      Alcotest.(check bool) "verifies" true
        (Snark.verify kp.Snark.vk ~public_inputs:(Cs.public_inputs cs) p4))

(* --- observability --- *)

let test_obs_counters () =
  let module Obs = Zebra_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      with_pool 4 (fun p ->
          Parallel.parallel_for ~pool:p ~min_chunk:1 16 (fun _ _ -> ()));
      let regions = Obs.Counter.value (Obs.Counter.make "parallel.regions") in
      let chunks = Obs.Counter.value (Obs.Counter.make "parallel.chunks") in
      Alcotest.(check bool) "regions counted" true (regions >= 1);
      Alcotest.(check bool) "chunks counted" true (chunks >= 16))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create/shutdown" `Quick test_create_shutdown;
          Alcotest.test_case "clamping" `Quick test_clamping;
          Alcotest.test_case "parse_domains" `Quick test_parse_domains;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "map_reduce ordered" `Quick test_map_reduce_ordered;
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "nested regions" `Quick test_nested_regions;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest test_fft_determinism;
          Alcotest.test_case "prove identical across domains" `Slow test_prove_determinism;
        ] );
      ("obs", [ Alcotest.test_case "counters" `Quick test_obs_counters ]);
    ]
