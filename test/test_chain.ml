(* Blockchain substrate tests: transactions, contract runtime, replicated
   execution, adversarial reordering, and ledger invariants. *)

open Zebra_chain
module Codec = Zebra_codec.Codec

let rng = Zebra_rng.Chacha20.create ~seed:"test_chain"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

(* Wallet creation is RSA keygen; reuse a pool across tests. *)
let wallet_pool = lazy (Array.init 6 (fun _ -> Wallet.generate ~bits:512 ~random_bytes ()))

let wallet i = (Lazy.force wallet_pool).(i)

(* --- Toy contracts for runtime tests --- *)

(* A counter: payload "inc" increments; "get" logs the value; init arg sets
   the start; "boom" reverts. *)
module Counter = struct
  type storage = int

  let name = "test-counter"
  let init _ctx args = if Bytes.length args = 0 then 0 else Codec.decode Codec.read_u64 args

  let receive ctx st payload =
    match Bytes.to_string payload with
    | "inc" -> (st + 1, [])
    | "get" -> (st, [ Contract.Log (string_of_int st) ])
    | "boom" -> raise (Contract.Revert "boom")
    | "height" -> (st, [ Contract.Log (string_of_int ctx.Contract.height) ])
    | _ -> raise (Contract.Revert "unknown method")

  let encode st = Codec.encode Codec.u64 st
  let decode b = Codec.decode Codec.read_u64 b
end

(* Escrow: deposits held; payload = 20-byte payee address releases all. *)
module Escrow = struct
  type storage = unit

  let name = "test-escrow"
  let init _ _ = ()

  let receive ctx () payload =
    if Bytes.length payload <> 20 then raise (Contract.Revert "bad payee")
    else ((), [ Contract.Transfer (Address.of_bytes payload, ctx.Contract.self_balance) ])

  let encode () = Bytes.empty
  let decode _ = ()
end

let () = Contract.register (module Counter)
let () = Contract.register (module Escrow)

let fresh_net ?(num_nodes = 3) ?(fund = [ 0; 1; 2 ]) () =
  let genesis = List.map (fun i -> (Wallet.address (wallet i), 1_000_000)) fund in
  Network.create ~num_nodes ~genesis ()

let check_ok (r : State.receipt) =
  match r.State.status with
  | State.Ok _ -> ()
  | State.Failed e -> Alcotest.failf "tx failed: %s" e

let created (r : State.receipt) =
  match r.State.status with
  | State.Ok (Some a) -> a
  | _ -> Alcotest.fail "expected contract creation"

(* --- Address / Tx --- *)

let test_address_derivation () =
  let w = wallet 0 in
  let a = Wallet.address w in
  Alcotest.(check int) "hex length" 40 (String.length (Address.to_hex a));
  Alcotest.(check bool) "roundtrip" true (Address.equal a (Address.of_hex (Address.to_hex a)));
  Alcotest.(check bool) "deterministic contract addr" true
    (Address.equal (Address.of_creator a 3) (Address.of_creator a 3));
  Alcotest.(check bool) "nonce changes addr" false
    (Address.equal (Address.of_creator a 3) (Address.of_creator a 4))

let test_tx_roundtrip () =
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:42
      ~payload:(Bytes.of_string "hello")
  in
  Alcotest.(check bool) "validates" true (Tx.validate tx);
  let tx' = Tx.of_bytes (Tx.to_bytes tx) in
  Alcotest.(check bool) "roundtrip validates" true (Tx.validate tx');
  Alcotest.(check bytes) "same hash" (Tx.hash tx) (Tx.hash tx')

let test_tx_tamper () =
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:42
      ~payload:Bytes.empty
  in
  let b = Tx.to_bytes tx in
  (* Flip a bit inside the value field region; signature must fail. *)
  Bytes.set b (Bytes.length b - 70) (Char.chr (Char.code (Bytes.get b (Bytes.length b - 70)) lxor 1));
  match Tx.of_bytes b with
  | tx' -> Alcotest.(check bool) "tampered rejected" false (Tx.validate tx')
  | exception _ -> () (* decode failure is equally a rejection *)

(* --- Transfers & ledger --- *)

let test_plain_transfer () =
  let net = fresh_net () in
  let a0 = Wallet.address (wallet 0) and a1 = Wallet.address (wallet 1) in
  let tx = Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call a1) ~value:500 ~payload:Bytes.empty in
  Network.submit net tx;
  List.iter check_ok (Network.mine net);
  Alcotest.(check int) "sender debited" 999_500 (Network.balance net a0);
  Alcotest.(check int) "receiver credited" 1_000_500 (Network.balance net a1)

let test_insufficient_funds () =
  let net = fresh_net () in
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1)))
      ~value:2_000_000 ~payload:Bytes.empty
  in
  Network.submit net tx;
  (match Network.mine net with
  | [ { State.status = State.Failed "insufficient funds"; _ } ] -> ()
  | _ -> Alcotest.fail "expected failure");
  Alcotest.(check int) "no debit" 1_000_000 (Network.balance net (Wallet.address (wallet 0)))

let test_nonce_enforcement () =
  let net = fresh_net () in
  let mk nonce =
    Tx.make ~wallet:(wallet 0) ~nonce ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
      ~payload:Bytes.empty
  in
  Network.submit net (mk 5);
  (match Network.mine net with
  | [ { State.status = State.Failed "bad nonce"; _ } ] -> ()
  | _ -> Alcotest.fail "expected bad nonce");
  (* replay protection: same tx twice *)
  let tx = mk 0 in
  Network.submit net tx;
  Network.submit net tx;
  match Network.mine net with
  | [ r1; r2 ] ->
    check_ok r1;
    (match r2.State.status with
    | State.Failed "bad nonce" -> ()
    | _ -> Alcotest.fail "replay accepted")
  | _ -> Alcotest.fail "expected two receipts"

let test_supply_conservation () =
  let net = fresh_net () in
  let before = Network.total_supply net in
  List.iteri
    (fun i dst ->
      Network.submit net
        (Tx.make ~wallet:(wallet 0) ~nonce:i ~dst:(Tx.Call (Wallet.address (wallet dst)))
           ~value:(100 * (i + 1)) ~payload:Bytes.empty))
    [ 1; 2; 1 ];
  ignore (Network.mine net);
  Alcotest.(check int) "conserved" before (Network.total_supply net)

(* --- Contracts --- *)

let test_contract_lifecycle () =
  let net = fresh_net () in
  let create =
    Tx.make ~wallet:(wallet 0) ~nonce:0
      ~dst:(Tx.Create { behavior = "test-counter"; args = Codec.encode Codec.u64 10 })
      ~value:0 ~payload:Bytes.empty
  in
  Network.submit net create;
  let addr =
    match Network.mine net with [ r ] -> created r | _ -> Alcotest.fail "one receipt"
  in
  Alcotest.(check bool) "is contract" true (Network.is_contract net addr);
  List.iter
    (fun _ ->
      Network.submit net
        (Tx.make ~wallet:(wallet 1) ~nonce:(Network.nonce net (Wallet.address (wallet 1)))
           ~dst:(Tx.Call addr) ~value:0 ~payload:(Bytes.of_string "inc"));
      List.iter check_ok (Network.mine net))
    [ (); (); () ];
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:(Network.nonce net (Wallet.address (wallet 1)))
       ~dst:(Tx.Call addr) ~value:0 ~payload:(Bytes.of_string "get"));
  (match Network.mine net with
  | [ { State.logs = [ v ]; _ } ] -> Alcotest.(check string) "counter" "13" v
  | _ -> Alcotest.fail "expected one log");
  Alcotest.(check int) "height visible to contract" 5 (Network.height net)

let test_unknown_behavior () =
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "no-such-contract"; args = Bytes.empty })
       ~value:0 ~payload:Bytes.empty);
  match Network.mine net with
  | [ { State.status = State.Failed msg; _ } ] ->
    Alcotest.(check string) "reason" "unknown behavior no-such-contract" msg
  | _ -> Alcotest.fail "expected failure"

let test_revert_rolls_back () =
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "test-counter"; args = Bytes.empty })
       ~value:100 ~payload:Bytes.empty);
  let addr = created (List.hd (Network.mine net)) in
  let before = Network.balance net (Wallet.address (wallet 0)) in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:1 ~dst:(Tx.Call addr) ~value:50
       ~payload:(Bytes.of_string "boom"));
  (match Network.mine net with
  | [ { State.status = State.Failed "boom"; _ } ] -> ()
  | _ -> Alcotest.fail "expected revert");
  Alcotest.(check int) "value returned on revert" before
    (Network.balance net (Wallet.address (wallet 0)));
  Alcotest.(check int) "nonce still advanced" 2 (Network.nonce net (Wallet.address (wallet 0)))

let test_escrow_transfer_action () =
  let net = fresh_net () in
  let payee = Wallet.address (wallet 2) in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "test-escrow"; args = Bytes.empty })
       ~value:700 ~payload:Bytes.empty);
  let addr = created (List.hd (Network.mine net)) in
  Alcotest.(check int) "escrow funded" 700 (Network.balance net addr);
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call addr) ~value:0
       ~payload:(Address.to_bytes payee));
  List.iter check_ok (Network.mine net);
  Alcotest.(check int) "payee received" 1_000_700 (Network.balance net payee);
  Alcotest.(check int) "escrow drained" 0 (Network.balance net addr)

(* --- Replication & consensus --- *)

let test_replicas_agree () =
  let net = fresh_net ~num_nodes:4 () in
  for i = 0 to 5 do
    Network.submit net
      (Tx.make ~wallet:(wallet 0) ~nonce:i ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:7
         ~payload:Bytes.empty);
    ignore (Network.mine net)
  done;
  (* Network.mine raises Consensus_failure on divergence; reaching here with
     4 replicas is the assertion. *)
  Alcotest.(check int) "height" 6 (Network.height net)

let test_adversary_reorder () =
  (* The adversary reverses the block order: the later-submitted transfer
     executes first.  Both still execute; balances must reflect the
     adversary's order (nonce forces a unique valid serialisation here, so
     we use two different senders). *)
  let net = fresh_net () in
  Network.set_adversary net (Some List.rev);
  let a2 = Wallet.address (wallet 2) in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call a2) ~value:1 ~payload:Bytes.empty);
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call a2) ~value:2 ~payload:Bytes.empty);
  List.iter check_ok (Network.mine net);
  Alcotest.(check int) "both executed" 1_000_003 (Network.balance net a2)

let test_adversary_cannot_forge () =
  let net = fresh_net () in
  (* Adversary injects a doctored transaction: it is filtered out. *)
  let doctored =
    let tx =
      Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
        ~payload:Bytes.empty
    in
    let b = Tx.to_bytes tx in
    Bytes.set b 60 (Char.chr (Char.code (Bytes.get b 60) lxor 1));
    try Some (Tx.of_bytes b) with _ -> None
  in
  Network.set_adversary net
    (Some (fun txs -> match doctored with Some d -> d :: txs | None -> txs));
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 2))) ~value:5
       ~payload:Bytes.empty);
  let receipts = Network.mine net in
  Alcotest.(check int) "only the honest tx executed" 1 (List.length receipts)

(* Regression for the set_adversary contract: a duplicated transaction is
   mined twice but executes once — the copy fails nonce replay and the
   canonical receipt stays the first, successful one. *)
let test_adversary_duplicate_rejected () =
  let net = fresh_net () in
  Network.set_adversary net (Some (fun txs -> txs @ txs));
  let a1 = Wallet.address (wallet 1) in
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call a1) ~value:5 ~payload:Bytes.empty
  in
  Network.submit net tx;
  let receipts = Network.mine net in
  Alcotest.(check int) "both copies mined" 2 (List.length receipts);
  Alcotest.(check int) "value moved exactly once" 1_000_005 (Network.balance net a1);
  Alcotest.(check int) "sender nonce advanced once" 1
    (Network.nonce net (Wallet.address (wallet 0)));
  match Network.receipt net (Tx.hash tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | Some { State.status = State.Failed e; _ } ->
    Alcotest.failf "canonical receipt overwritten by the duplicate: %s" e
  | None -> Alcotest.fail "no receipt recorded"

(* Regression for the other half of the contract: an omitted transaction is
   requeued, so the adversary can delay but not censor. *)
let test_adversary_drop_requeues () =
  let net = fresh_net () in
  let calls = ref 0 in
  Network.set_adversary net
    (Some (fun txs -> (incr calls; if !calls = 1 then [] else txs)));
  let a1 = Wallet.address (wallet 1) in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call a1) ~value:3 ~payload:Bytes.empty);
  let r1 = Network.mine net in
  Alcotest.(check int) "censored block is empty" 0 (List.length r1);
  Alcotest.(check int) "tx back in the mempool" 1 (Network.pending net);
  Alcotest.(check int) "no transfer yet" 1_000_000 (Network.balance net a1);
  let r2 = Network.mine net in
  Alcotest.(check int) "included in the next block" 1 (List.length r2);
  Alcotest.(check int) "delayed, not censored" 1_000_003 (Network.balance net a1)

let test_block_chain_integrity () =
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
       ~payload:Bytes.empty);
  ignore (Network.mine net);
  ignore (Network.mine net);
  match Network.blocks net with
  | [ b1; b2 ] ->
    Alcotest.(check bytes) "linkage" (Block.hash b1) b2.Block.header.Block.prev_hash;
    Alcotest.(check int) "heights" 1 b1.Block.header.Block.height
  | _ -> Alcotest.fail "expected two blocks"

let test_tx_inclusion_proof () =
  let net = fresh_net () in
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
      ~payload:Bytes.empty
  in
  Network.submit net tx;
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 2))) ~value:1
       ~payload:Bytes.empty);
  ignore (Network.mine net);
  let b = List.hd (Network.blocks net) in
  let proof = Block.tx_proof b 0 in
  Alcotest.(check bool) "inclusion verifies" true (Block.verify_tx_inclusion b tx proof)

let test_replay_determinism () =
  (* A late-joining node replays all blocks from genesis and must arrive at
     the exact same state root (the ledger's "correct computation"). *)
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "test-counter"; args = Bytes.empty })
       ~value:100 ~payload:Bytes.empty);
  let addr = created (List.hd (Network.mine net)) in
  List.iteri
    (fun i payload ->
      Network.submit net
        (Tx.make ~wallet:(wallet 1) ~nonce:i ~dst:(Tx.Call addr) ~value:0
           ~payload:(Bytes.of_string payload));
      ignore (Network.mine net))
    [ "inc"; "inc"; "boom"; "get" ];
  Alcotest.(check bytes) "replayed root equals live root" (Network.state_root net)
    (Network.replay net)

let test_pow_mining () =
  (* With a difficulty target, every mined block carries a valid seal and
     tampering with the nonce invalidates it. *)
  let net = fresh_net () in
  let net12 =
    Network.create ~difficulty:12 ~num_nodes:2
      ~genesis:[ (Wallet.address (wallet 0), 1000) ] ()
  in
  ignore net;
  Network.submit net12
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
       ~payload:Bytes.empty);
  List.iter check_ok (Network.mine net12);
  let b = List.hd (Network.blocks net12) in
  Alcotest.(check bool) "seal meets target" true
    (Block.meets_difficulty b.Block.header 12);
  let unsealed = { b.Block.header with Block.nonce = b.Block.header.Block.nonce + 1 } in
  (* overwhelmingly likely to fail the 12-bit target *)
  Alcotest.(check bool) "tampered nonce fails" false (Block.meets_difficulty unsealed 12);
  (* a light client at the same difficulty follows; one at a higher target
     refuses *)
  let lc = Light_client.create ~difficulty:12 () in
  (match Light_client.sync lc (Network.blocks net12) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sync: %s" e);
  let strict = Light_client.create ~difficulty:28 () in
  match Light_client.sync strict (Network.blocks net12) with
  | Error "insufficient proof of work" -> ()
  | _ -> Alcotest.fail "under-sealed header accepted"

let test_pow_difficulty_zero_default () =
  let net = fresh_net () in
  ignore (Network.mine net);
  let b = List.hd (Network.blocks net) in
  Alcotest.(check int) "nonce zero at difficulty 0" 0 b.Block.header.Block.nonce

let test_mine_until () =
  let net = fresh_net () in
  Network.mine_until net ~height:10;
  Alcotest.(check int) "height reached" 10 (Network.height net)

(* --- Fee-ordered mempool & sharded parallel execution --- *)

let qtest name ~count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let with_domains n f =
  let prev = Zebra_parallel.Parallel.default_domains () in
  Fun.protect
    ~finally:(fun () -> Zebra_parallel.Parallel.set_default_domains prev)
    (fun () ->
      Zebra_parallel.Parallel.set_default_domains n;
      f ())

let last_block net =
  match List.rev (Network.blocks net) with
  | b :: _ -> b
  | [] -> Alcotest.fail "no blocks mined"

let applied_ok = function
  | Network.Applied r | Network.Conflict_retry r -> check_ok r
  | Network.Rejected e -> Alcotest.failf "tx rejected: %s" e

let test_fee_ordering () =
  let net = fresh_net () in
  let a3 = Wallet.address (wallet 3) in
  let mk i fee value =
    Tx.make_ext ~wallet:(wallet i) ~fee ~footprint:[] ~nonce:0 ~dst:(Tx.Call a3) ~value
      ~payload:Bytes.empty
  in
  (* Submission order low / high / mid; the seal must order by fee. *)
  let t_low = mk 0 1 1 and t_high = mk 1 9 2 and t_mid = mk 2 5 3 in
  List.iter (Network.submit net) [ t_low; t_high; t_mid ];
  let results = Network.mine_ext net in
  Alcotest.(check int) "three outcomes" 3 (List.length results);
  List.iter applied_ok results;
  let order = List.map Tx.hash (last_block net).Block.txs in
  Alcotest.(check (list bytes))
    "sealed fee-descending" [ Tx.hash t_high; Tx.hash t_mid; Tx.hash t_low ] order;
  Alcotest.(check int) "all three transferred" 6 (Network.balance net a3)

let test_fee_ordering_keeps_nonce_lanes () =
  (* Same sender, fees inverted relative to nonces: fee ordering must not
     break the sender's nonce sequence. *)
  let net = fresh_net () in
  let a3 = Wallet.address (wallet 3) in
  let mk nonce fee value =
    Tx.make_ext ~wallet:(wallet 0) ~fee ~footprint:[] ~nonce ~dst:(Tx.Call a3) ~value
      ~payload:Bytes.empty
  in
  let t0 = mk 0 0 10 and t1 = mk 1 9 20 in
  Network.submit net t0;
  Network.submit net t1;
  let results = Network.mine_ext net in
  List.iter applied_ok results;
  let order = List.map Tx.hash (last_block net).Block.txs in
  Alcotest.(check (list bytes)) "nonce order survives fee inversion"
    [ Tx.hash t0; Tx.hash t1 ] order;
  Alcotest.(check int) "both executed" 30 (Network.balance net a3)

let test_submit_r_typed_rejection () =
  let net = fresh_net () in
  let tx =
    Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
      ~payload:Bytes.empty
  in
  (match Network.submit_r net tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid tx refused: %s" (Network.submit_error_to_string e));
  let b = Tx.to_bytes tx in
  Bytes.set b 60 (Char.chr (Char.code (Bytes.get b 60) lxor 1));
  match Tx.of_bytes b with
  | exception _ -> () (* decode failure is equally a rejection *)
  | doctored -> (
    match Network.submit_r net doctored with
    | Error Network.Invalid_signature -> ()
    | Ok () -> Alcotest.fail "tampered tx accepted")

let test_mine_ext_rejected_classification () =
  (* An invalidly-signed candidate smuggled in by the adversary shows up as
     [Rejected] in the typed outcomes, in candidate order, and never
     executes. *)
  let net = fresh_net () in
  let doctored =
    let tx =
      Tx.make ~wallet:(wallet 0) ~nonce:5 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:1
        ~payload:Bytes.empty
    in
    let b = Tx.to_bytes tx in
    Bytes.set b 60 (Char.chr (Char.code (Bytes.get b 60) lxor 1));
    try Some (Tx.of_bytes b) with _ -> None
  in
  Network.set_adversary net
    (Some (fun txs -> match doctored with Some d -> d :: txs | None -> txs));
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 2))) ~value:5
       ~payload:Bytes.empty);
  match (doctored, Network.mine_ext net) with
  | None, _ -> () (* tampering happened to break decoding; nothing to classify *)
  | Some _, [ Network.Rejected _; honest ] -> applied_ok honest
  | Some _, rs -> Alcotest.failf "unexpected outcomes (%d)" (List.length rs)

let test_conflict_retry_classification () =
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "test-escrow"; args = Bytes.empty })
       ~value:600 ~payload:Bytes.empty);
  let escrow = created (List.hd (Network.mine net)) in
  let sender = Wallet.address (wallet 1) in
  (* A payee in the sender's or contract's shard would not escape; pick one
     from a provably different shard so the test cannot be vacuous. *)
  let payee =
    let clashes a =
      State.shard_of_address a = State.shard_of_address sender
      || State.shard_of_address a = State.shard_of_address escrow
    in
    let rec pick i =
      if i > 5 then Alcotest.fail "wallet pool has no distinct-shard payee"
      else
        let a = Wallet.address (wallet i) in
        if clashes a then pick (i + 1) else a
    in
    pick 2
  in
  let before = Network.balance net payee in
  (* Undeclared payee: the release touches a shard outside the declared
     footprint, so the block falls back to serial and the tx is classified
     [Conflict_retry] — with the exact receipt it would always have had. *)
  Network.submit net
    (Tx.make_ext ~wallet:(wallet 1) ~fee:0 ~footprint:[] ~nonce:0 ~dst:(Tx.Call escrow)
       ~value:0 ~payload:(Address.to_bytes payee));
  (match Network.mine_ext net with
  | [ Network.Conflict_retry r ] -> check_ok r
  | [ Network.Applied _ ] -> Alcotest.fail "undeclared payee did not escape"
  | _ -> Alcotest.fail "unexpected outcomes");
  Alcotest.(check int) "escrow still drained correctly" (before + 600)
    (Network.balance net payee);
  (* Declared payee: same call shape, footprint declared, no escape. *)
  Network.submit net
    (Tx.make_ext ~wallet:(wallet 1) ~fee:0 ~footprint:[ payee ] ~nonce:1 ~dst:(Tx.Call escrow)
       ~value:0 ~payload:(Address.to_bytes payee));
  match Network.mine_ext net with
  | [ Network.Applied r ] -> check_ok r
  | [ Network.Conflict_retry _ ] -> Alcotest.fail "declared footprint still escaped"
  | _ -> Alcotest.fail "unexpected outcomes"

(* The determinism property behind the whole executor: for any mix of
   transfers and contract calls — declared or undeclared footprints, any
   fee schedule — the sharded parallel root equals the serial replay root,
   and is byte-identical at 1 and 4 domains. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 8)
      (map2
         (fun kind (a, b, c) ->
           if kind = 0 then `Transfer (a mod 3, b mod 4, 1 + (c mod 50), c mod 10)
           else `Release (a mod 3, b mod 6, c mod 10, b mod 2 = 0))
         (int_bound 1)
         (triple (int_bound 1000) (int_bound 1000) (int_bound 1000))))

let run_sharded_scenario ops =
  let net = fresh_net () in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0
       ~dst:(Tx.Create { behavior = "test-escrow"; args = Bytes.empty })
       ~value:500 ~payload:Bytes.empty);
  let escrow = created (List.hd (Network.mine net)) in
  let nonces = Array.make 3 0 in
  nonces.(0) <- 1;
  List.iteri
    (fun i op ->
      let sender =
        match op with `Transfer (s, _, _, _) | `Release (s, _, _, _) -> s
      in
      (match op with
      | `Transfer (s, d, value, fee) ->
        Network.submit net
          (Tx.make_ext ~wallet:(wallet s) ~fee ~footprint:[] ~nonce:nonces.(s)
             ~dst:(Tx.Call (Wallet.address (wallet d)))
             ~value ~payload:Bytes.empty)
      | `Release (s, p, fee, declared) ->
        let payee = Wallet.address (wallet p) in
        let footprint = if declared then [ payee ] else [] in
        Network.submit net
          (Tx.make_ext ~wallet:(wallet s) ~fee ~footprint ~nonce:nonces.(s)
             ~dst:(Tx.Call escrow) ~value:1 ~payload:(Address.to_bytes payee)));
      nonces.(sender) <- nonces.(sender) + 1;
      if i mod 3 = 2 then ignore (Network.mine_ext net))
    ops;
  ignore (Network.mine_ext net);
  (Network.state_root net, Network.replay net)

let prop_parallel_equals_serial =
  qtest "sharded parallel root == serial root at 1 and 4 domains" ~count:5 gen_ops
    (fun ops ->
      let root1, replay1 = with_domains 1 (fun () -> run_sharded_scenario ops) in
      let root4, replay4 = with_domains 4 (fun () -> run_sharded_scenario ops) in
      Bytes.equal root1 replay1 && Bytes.equal root4 replay4 && Bytes.equal root1 root4)

(* --- partitions, fork choice and reorgs --- *)

let all_replicas_agree net =
  let root = Network.state_root net in
  for node = 0 to Network.num_nodes net - 1 do
    Alcotest.(check bytes)
      (Printf.sprintf "node %d on the canonical root" node)
      root
      (Network.node_state_root net node)
  done

let test_partition_heal () =
  let net = fresh_net ~num_nodes:3 () in
  let a1 = Wallet.address (wallet 1) in
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call a1) ~value:5 ~payload:Bytes.empty);
  ignore (Network.mine net);
  Network.start_partition net ~minority:[ 2 ];
  Alcotest.(check bool) "partition active" true (Network.partition_active net);
  (* the majority mines the pending transfer; the minority mines an empty
     sibling branch of equal length *)
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:1 ~dst:(Tx.Call a1) ~value:7 ~payload:Bytes.empty);
  ignore (Network.mine net);
  ignore (Network.mine net);
  let h = Network.height net in
  let r = Network.heal_partition net in
  Alcotest.(check bool) "partition over" false (Network.partition_active net);
  Alcotest.(check int) "equal-length branches: height is stable" h (Network.height net);
  if r.Network.adopted_fork then begin
    Alcotest.(check int) "the whole majority branch reorged" 2 r.Network.reorged_blocks;
    Alcotest.(check bool) "orphaned transfer requeued" true (r.Network.requeued_txs >= 1)
  end
  else Alcotest.(check int) "canonical chain kept: nothing requeued" 0 r.Network.requeued_txs;
  (* either way: one more block lands any requeued orphans and every
     replica — including the healed minority — is back on one root *)
  ignore (Network.mine net);
  Alcotest.(check int) "both transfers settled exactly once" 1_000_012 (Network.balance net a1);
  all_replicas_agree net

let test_partition_rejects_bad_splits () =
  let net = fresh_net ~num_nodes:3 () in
  List.iter
    (fun minority ->
      match Network.start_partition net ~minority with
      | () -> Alcotest.failf "accepted bad minority"
      | exception Invalid_argument _ -> ())
    [ []; [ 0 ]; [ 7 ]; [ 0; 1; 2 ] ];
  Network.start_partition net ~minority:[ 2 ];
  (match Network.start_partition net ~minority:[ 1 ] with
  | () -> Alcotest.fail "accepted a second partition"
  | exception Invalid_argument _ -> ());
  ignore (Network.heal_partition net)

let test_fork_tip_choice () =
  let net = fresh_net ~num_nodes:3 () in
  Alcotest.(check (option bool)) "no tip to fork at genesis" None
    (Network.fork_tip net ~permute:List.rev);
  Network.submit net
    (Tx.make ~wallet:(wallet 0) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 1))) ~value:3
       ~payload:Bytes.empty);
  Network.submit net
    (Tx.make ~wallet:(wallet 1) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 2))) ~value:4
       ~payload:Bytes.empty);
  ignore (Network.mine net);
  let tip_before =
    match List.rev (Network.blocks net) with b :: _ -> b | [] -> assert false
  in
  Alcotest.(check (option bool)) "identity permutation is not a fork" None
    (Network.fork_tip net ~permute:(fun txs -> txs));
  (match Network.fork_tip net ~permute:List.rev with
  | None -> Alcotest.fail "a two-tx tip must yield a distinct sibling"
  | Some adopted ->
    let tip_after =
      match List.rev (Network.blocks net) with b :: _ -> b | [] -> assert false
    in
    let same_tip = Bytes.equal (Block.hash tip_before) (Block.hash tip_after) in
    Alcotest.(check bool) "tip replaced iff the sibling won fork choice" adopted (not same_tip);
    if adopted then
      (* fork choice at equal height: the smaller hash wins *)
      Alcotest.(check bool) "adopted sibling hashes below the old tip" true
        (Bytes.compare (Block.hash tip_after) (Block.hash tip_before) < 0);
    Alcotest.(check int) "height unchanged" 1 (Network.height net));
  (* the chain keeps working after the (possible) depth-1 reorg *)
  Network.submit net
    (Tx.make ~wallet:(wallet 2) ~nonce:0 ~dst:(Tx.Call (Wallet.address (wallet 0))) ~value:1
       ~payload:Bytes.empty);
  ignore (Network.mine net);
  all_replicas_agree net;
  Alcotest.(check int) "transfers settled exactly once (received 3, sent 4)" 999_999
    (Network.balance net (Wallet.address (wallet 1)))

let () =
  Alcotest.run "chain"
    [
      ( "tx",
        [
          Alcotest.test_case "address derivation" `Quick test_address_derivation;
          Alcotest.test_case "tx roundtrip" `Quick test_tx_roundtrip;
          Alcotest.test_case "tx tamper" `Quick test_tx_tamper;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "plain transfer" `Quick test_plain_transfer;
          Alcotest.test_case "insufficient funds" `Quick test_insufficient_funds;
          Alcotest.test_case "nonce / replay" `Quick test_nonce_enforcement;
          Alcotest.test_case "supply conservation" `Quick test_supply_conservation;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "lifecycle" `Quick test_contract_lifecycle;
          Alcotest.test_case "unknown behavior" `Quick test_unknown_behavior;
          Alcotest.test_case "revert rollback" `Quick test_revert_rolls_back;
          Alcotest.test_case "escrow actions" `Quick test_escrow_transfer_action;
        ] );
      ( "network",
        [
          Alcotest.test_case "replicas agree" `Quick test_replicas_agree;
          Alcotest.test_case "adversary reorder" `Quick test_adversary_reorder;
          Alcotest.test_case "adversary cannot forge" `Quick test_adversary_cannot_forge;
          Alcotest.test_case "adversary duplicate rejected" `Quick
            test_adversary_duplicate_rejected;
          Alcotest.test_case "adversary drop requeues" `Quick test_adversary_drop_requeues;
          Alcotest.test_case "block linkage" `Quick test_block_chain_integrity;
          Alcotest.test_case "tx inclusion proof" `Quick test_tx_inclusion_proof;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
          Alcotest.test_case "proof-of-work seal" `Quick test_pow_mining;
          Alcotest.test_case "difficulty 0 default" `Quick test_pow_difficulty_zero_default;
          Alcotest.test_case "mine_until" `Quick test_mine_until;
        ] );
      ( "sharded exec",
        [
          Alcotest.test_case "fee ordering" `Quick test_fee_ordering;
          Alcotest.test_case "fee ordering keeps nonce lanes" `Quick
            test_fee_ordering_keeps_nonce_lanes;
          Alcotest.test_case "submit_r typed rejection" `Quick test_submit_r_typed_rejection;
          Alcotest.test_case "mine_ext rejected classification" `Quick
            test_mine_ext_rejected_classification;
          Alcotest.test_case "conflict retry classification" `Quick
            test_conflict_retry_classification;
          prop_parallel_equals_serial;
        ] );
      ( "forks",
        [
          Alcotest.test_case "partition heal fork choice" `Quick test_partition_heal;
          Alcotest.test_case "partition rejects bad splits" `Quick
            test_partition_rejects_bad_splits;
          Alcotest.test_case "byzantine sibling fork choice" `Quick test_fork_tip_choice;
        ] );
    ]
