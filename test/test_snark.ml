(* End-to-end SNARK tests: completeness, rejection of bad witnesses and
   tampered proofs, zero-knowledge simulation, serialisation. *)

open Zebra_field
open Zebra_r1cs
module Snark = Zebra_snark.Snark

let rng = Zebra_rng.Chacha20.create ~seed:"test_snark"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

(* Demo circuit: prove knowledge of x with  x^3 + x + 5 = y  (public y). *)
let cubic_circuit x =
  let cs = Cs.create () in
  let y_val =
    Fp.add (Fp.add (Fp.mul x (Fp.mul x x)) x) (Fp.of_int 5)
  in
  let y = Cs.alloc_input cs y_val in
  let vx = Cs.alloc cs x in
  let open Gadgets in
  let x2 = square cs (v vx) in
  let x3 = mul cs (v x2) (v vx) in
  enforce_eq cs ~label:"cubic" (v x3 +: v vx +: ci 5) (v y);
  cs

(* A wider circuit exercising several gadget types at once. *)
let mixed_circuit secret =
  let cs = Cs.create () in
  let digest = Zebra_mimc.Mimc.hash_list [ secret; secret ] in
  let pub = Cs.alloc_input cs digest in
  let s = Cs.alloc cs secret in
  let open Gadgets in
  let h = mimc_hash cs [ v s; v s ] in
  enforce_eq cs ~label:"digest match" h (v pub);
  let bits = bits_of_expr cs (v s -: v s +: ci 9) 4 in
  enforce_eq cs ~label:"const bits" (pack_bits bits) (ci 9);
  cs

let keys_of circuit = Snark.setup ~random_bytes circuit

let test_completeness () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  Alcotest.(check bool) "witness satisfies" true (Cs.is_satisfied cs);
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "verifies" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof)

let test_proof_reusable_across_witnesses () =
  (* One setup serves any instance of the same circuit structure. *)
  let x0 = fresh_fp () in
  let { Snark.pk; vk; _ } = keys_of (cubic_circuit x0) in
  List.iter
    (fun _ ->
      let x = fresh_fp () in
      let cs = cubic_circuit x in
      let proof = Snark.prove ~random_bytes pk cs in
      Alcotest.(check bool) "verifies" true
        (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof))
    [ (); (); () ]

let test_wrong_public_input_rejected () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let wrong = [| Fp.add (Cs.public_inputs cs).(0) Fp.one |] in
  Alcotest.(check bool) "rejected" false (Snark.verify vk ~public_inputs:wrong proof)

let test_bad_witness_rejected () =
  (* Corrupt the witness after synthesis: the prover output must not verify. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  (* Claim a different public output than the real one. *)
  let claimed = Fp.add (Cs.public_inputs cs).(0) Fp.one in
  Cs.set_value cs (Cs.var_of_int 1) claimed;
  Alcotest.(check bool) "board unsatisfied" false (Cs.is_satisfied cs);
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "rejected" false (Snark.verify vk ~public_inputs:[| claimed |] proof)

let test_tampered_proof_rejected () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let b = Snark.proof_to_bytes proof in
  (* Flip one byte inside the first field element. *)
  Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 1));
  let tampered = Snark.proof_of_bytes b in
  Alcotest.(check bool) "rejected" false
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) tampered)

let test_proof_constant_size () =
  let sizes =
    List.map
      (fun x ->
        let cs = mixed_circuit x in
        let { Snark.pk; _ } = keys_of cs in
        let proof = Snark.prove ~random_bytes pk cs in
        Snark.proof_size_bytes proof)
      [ fresh_fp (); fresh_fp () ]
  in
  let cubic =
    let x = fresh_fp () in
    let cs = cubic_circuit x in
    let { Snark.pk; _ } = keys_of cs in
    Snark.proof_size_bytes (Snark.prove ~random_bytes pk cs)
  in
  List.iter (fun s -> Alcotest.(check int) "constant size" cubic s) sizes

let test_zk_blinding () =
  (* Two proofs of the same statement with fresh randomness must differ. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let p1 = Snark.prove ~random_bytes pk cs in
  let p2 = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "distinct proofs" false (Snark.equal_proof p1 p2);
  Alcotest.(check bool) "both verify" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) p1
    && Snark.verify vk ~public_inputs:(Cs.public_inputs cs) p2)

let test_simulator () =
  (* The trapdoor simulator forges verifying proofs with no witness: the
     zero-knowledge property of the construction. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.vk; trapdoor; _ } = keys_of cs in
  let inputs = Cs.public_inputs cs in
  let forged = Snark.simulate ~random_bytes trapdoor ~public_inputs:inputs in
  Alcotest.(check bool) "simulated proof verifies" true
    (Snark.verify vk ~public_inputs:inputs forged);
  (* Even for a *false* statement: simulation is statement-independent. *)
  let bogus = [| fresh_fp () |] in
  let forged2 = Snark.simulate ~random_bytes trapdoor ~public_inputs:bogus in
  Alcotest.(check bool) "simulates any statement" true
    (Snark.verify vk ~public_inputs:bogus forged2)

let test_serialization_roundtrip () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let proof' = Snark.proof_of_bytes (Snark.proof_to_bytes proof) in
  Alcotest.(check bool) "proof roundtrip" true (Snark.equal_proof proof proof');
  let vk' = Snark.vk_of_bytes (Snark.vk_to_bytes vk) in
  Alcotest.(check bool) "vk roundtrip verifies" true
    (Snark.verify vk' ~public_inputs:(Cs.public_inputs cs) proof)

let test_shape_mismatch () =
  let { Snark.pk; _ } = keys_of (cubic_circuit (fresh_fp ())) in
  let other = mixed_circuit (fresh_fp ()) in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Snark.prove: circuit shape mismatch with proving key") (fun () ->
      ignore (Snark.prove ~random_bytes pk other))

let test_mixed_circuit_end_to_end () =
  let secret = fresh_fp () in
  let cs = mixed_circuit secret in
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs);
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "verifies" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof)

let test_wrong_input_count () =
  let cs = cubic_circuit (fresh_fp ()) in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "too many inputs rejected" false
    (Snark.verify vk ~public_inputs:[| Fp.one; Fp.one |] proof)

(* --- batched verification --- *)

let qtest ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* One shared key, many instances, for batching tests. *)
let batch_fixture =
  lazy
    (let kp = keys_of (cubic_circuit (fresh_fp ())) in
     let item () =
       let cs = cubic_circuit (fresh_fp ()) in
       (Cs.public_inputs cs, Snark.prove ~random_bytes kp.Snark.pk cs)
     in
     (kp, item))

let batch_rng = Zebra_rng.Source.of_seed "test-snark-batch"

let test_batch_verify_basic () =
  let kp, item = Lazy.force batch_fixture in
  let items = Array.init 8 (fun _ -> item ()) in
  Alcotest.(check bool) "valid batch passes" true
    (Snark.batch_verify ~rng:batch_rng kp.Snark.vk items);
  Alcotest.(check bool) "empty batch passes" true
    (Snark.batch_verify ~rng:batch_rng kp.Snark.vk [||]);
  let pi, proof = item () in
  Alcotest.(check bool) "arity mismatch fails" false
    (Snark.batch_verify ~rng:batch_rng kp.Snark.vk
       [| (Array.append pi [| Fp.one |], proof) |])

(* Flip the low-order byte of proof element [elem] — a canonical encoding
   off by one bit, so it decodes but verifies false. *)
let corrupt_proof proof ~elem =
  let b = Snark.proof_to_bytes proof in
  let off = (elem * 36) + 4 + 31 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  Snark.proof_of_bytes b

let test_batch_iff_individual =
  (* Batch accepts exactly when every member verifies individually, for
     every corruption pattern. *)
  qtest ~count:25 "batch accepts iff all members verify"
    QCheck2.Gen.(pair (int_bound 4) (int_bound 31))
    (fun (m, mask) ->
      let kp, item = Lazy.force batch_fixture in
      let m = m + 1 in
      let items =
        Array.init m (fun k ->
            let pi, proof = item () in
            if (mask lsr k) land 1 = 1 then (pi, corrupt_proof proof ~elem:(k mod 8))
            else (pi, proof))
      in
      let batch = Snark.batch_verify ~rng:batch_rng kp.Snark.vk items in
      let all =
        Array.for_all (fun (pi, p) -> Snark.verify kp.Snark.vk ~public_inputs:pi p) items
      in
      batch = all)

let test_batch_fallback_pinpoints () =
  (* A deterministic fault decision picks the victim and the bit; the
     per-proof fallback must name exactly that member. *)
  let kp, item = Lazy.force batch_fixture in
  let faults = Zebra_faults.Faults.create ~seed:"batch-pinpoint" Zebra_faults.Faults.none in
  let m = 8 in
  let victim =
    int_of_float (Zebra_faults.Faults.unit_float faults ~site:1l ~a:0 ~b:0 *. float_of_int m)
  in
  let elem =
    int_of_float (Zebra_faults.Faults.unit_float faults ~site:2l ~a:0 ~b:0 *. 8.)
  in
  let items =
    Array.init m (fun k ->
        let pi, proof = item () in
        if k = victim then (pi, corrupt_proof proof ~elem) else (pi, proof))
  in
  Alcotest.(check bool) "batch flags the block" false
    (Snark.batch_verify ~rng:batch_rng kp.Snark.vk items);
  let offenders =
    Array.to_list items
    |> List.mapi (fun k (pi, p) -> (k, Snark.verify kp.Snark.vk ~public_inputs:pi p))
    |> List.filter_map (fun (k, ok) -> if ok then None else Some k)
  in
  Alcotest.(check (list int)) "fallback names exactly the victim" [ victim ] offenders

let test_batch_seed_binds_contents () =
  (* The Fiat–Shamir seed must be a function of every proof byte and
     public input in the batch (plus the tag): a challenge predictable
     before the proofs are fixed would void the Schwartz–Zippel bound. *)
  let _, item = Lazy.force batch_fixture in
  let items = Array.init 4 (fun _ -> item ()) in
  let s = Snark.batch_seed ~tag:"t" items in
  Alcotest.(check string) "deterministic over same contents" s
    (Snark.batch_seed ~tag:"t" items);
  let corrupted = Array.copy items in
  let pi, proof = corrupted.(2) in
  corrupted.(2) <- (pi, corrupt_proof proof ~elem:7);
  Alcotest.(check bool) "one flipped proof bit changes the seed" false
    (s = Snark.batch_seed ~tag:"t" corrupted);
  let shifted = Array.copy items in
  let pi, proof = shifted.(0) in
  shifted.(0) <- (Array.map (Fp.add Fp.one) pi, proof);
  Alcotest.(check bool) "public inputs are bound too" false
    (s = Snark.batch_seed ~tag:"t" shifted);
  Alcotest.(check bool) "tag separates domains" false
    (s = Snark.batch_seed ~tag:"u" items)

(* --- decoded-VK cache --- *)

let test_vk_decode_cache () =
  let { Snark.vk; _ } = keys_of (cubic_circuit (fresh_fp ())) in
  let vk_bytes = Snark.vk_to_bytes vk in
  Snark.vk_cache_clear ();
  ignore (Snark.vk_of_bytes_cached vk_bytes);
  ignore (Snark.vk_of_bytes_cached (Bytes.copy vk_bytes));
  let hits, decodes = Snark.vk_cache_stats () in
  Alcotest.(check (pair int int)) "one decode per distinct bytes" (1, 1) (hits, decodes);
  let { Snark.vk = vk2; _ } = keys_of (mixed_circuit (fresh_fp ())) in
  ignore (Snark.vk_of_bytes_cached (Snark.vk_to_bytes vk2));
  let _, decodes = Snark.vk_cache_stats () in
  Alcotest.(check int) "distinct bytes decode separately" 2 decodes;
  Snark.vk_cache_clear ()

(* --- keypair cache + codec --- *)

let prove_bytes pk cs =
  Snark.proof_to_bytes
    (Snark.prove_rng ~rng:(Zebra_rng.Source.of_seed "kc-prove") pk cs)

let test_keycache_content_path () =
  let cache = Snark.Keycache.create ~capacity:4 () in
  let cs = cubic_circuit (fresh_fp ()) in
  let kp1 = Snark.Keycache.setup cache ~seed:"kc-seed" cs in
  let kp2 = Snark.Keycache.setup cache ~seed:"kc-seed" cs in
  let stats = Snark.Keycache.stats cache in
  Alcotest.(check int) "one miss" 1 stats.Snark.Keycache.misses;
  Alcotest.(check int) "one hit" 1 stats.Snark.Keycache.hits;
  (* The cached keypair is byte-identical to a fresh seeded setup — and so
     are the proofs it produces. *)
  let fresh = Snark.setup_rng ~rng:(Zebra_rng.Source.of_seed "kc-seed") cs in
  Alcotest.(check bool) "hit equals fresh setup" true
    (Snark.keypair_to_bytes kp2 = Snark.keypair_to_bytes fresh);
  Alcotest.(check bool) "proofs byte-identical" true
    (prove_bytes kp1.Snark.pk cs = prove_bytes fresh.Snark.pk cs);
  (* A different seed is a different key. *)
  let kp3 = Snark.Keycache.setup cache ~seed:"kc-other" cs in
  Alcotest.(check bool) "seed is part of the key" false
    (Snark.keypair_to_bytes kp1 = Snark.keypair_to_bytes kp3)

let test_keycache_named_path () =
  let cache = Snark.Keycache.create ~capacity:4 () in
  let synth_calls = ref 0 in
  let cs0 = cubic_circuit (fresh_fp ()) in
  let synth () =
    incr synth_calls;
    cs0
  in
  let kp1, shape = Snark.Keycache.setup_named cache ~circuit_id:"test/cubic" ~seed:"s" synth in
  let kp2, _ = Snark.Keycache.setup_named cache ~circuit_id:"test/cubic" ~seed:"s" synth in
  Alcotest.(check int) "synthesis only on miss" 1 !synth_calls;
  Alcotest.(check int) "shape reports constraints" (Cs.num_constraints cs0)
    shape.Snark.Keycache.constraints;
  Alcotest.(check bool) "hit returns the same key" true
    (Snark.keypair_to_bytes kp1 = Snark.keypair_to_bytes kp2);
  (* Disabled cache: same bytes, nothing retained. *)
  let off = Snark.Keycache.create ~capacity:0 () in
  Alcotest.(check bool) "capacity 0 disables" false (Snark.Keycache.enabled off);
  let kp3, _ = Snark.Keycache.setup_named off ~circuit_id:"test/cubic" ~seed:"s" synth in
  Alcotest.(check bool) "disabled cache is byte-identical" true
    (Snark.keypair_to_bytes kp1 = Snark.keypair_to_bytes kp3)

let test_keycache_store_persistence () =
  (* Capacity 1 with a store behind it: the evicted entry comes back from
     the store (exercising the keypair codec round-trip on the way). *)
  let store = Zebra_store.Store.create () in
  let cache = Snark.Keycache.create ~capacity:1 ~store () in
  let cs_a = cubic_circuit (fresh_fp ()) in
  let cs_b = mixed_circuit (fresh_fp ()) in
  let kp_a = Snark.Keycache.setup cache ~seed:"s" cs_a in
  let _kp_b = Snark.Keycache.setup cache ~seed:"s" cs_b in
  (* cs_a was evicted from memory; the store must serve it. *)
  let kp_a' = Snark.Keycache.setup cache ~seed:"s" cs_a in
  let stats = Snark.Keycache.stats cache in
  Alcotest.(check int) "served from store" 1 stats.Snark.Keycache.store_hits;
  Alcotest.(check bool) "store round-trip is exact" true
    (Snark.keypair_to_bytes kp_a = Snark.keypair_to_bytes kp_a');
  Alcotest.(check bool) "decoded key proves identically" true
    (prove_bytes kp_a.Snark.pk cs_a = prove_bytes kp_a'.Snark.pk cs_a)

let test_keypair_codec_roundtrip () =
  let cs = mixed_circuit (fresh_fp ()) in
  let kp = keys_of cs in
  let kp' = Snark.keypair_of_bytes (Snark.keypair_to_bytes kp) in
  Alcotest.(check bool) "re-encodes identically" true
    (Snark.keypair_to_bytes kp = Snark.keypair_to_bytes kp');
  Alcotest.(check bool) "decoded pk proves byte-identically" true
    (prove_bytes kp.Snark.pk cs = prove_bytes kp'.Snark.pk cs);
  let proof = Snark.prove_rng ~rng:(Zebra_rng.Source.of_seed "kc-prove") kp'.Snark.pk cs in
  Alcotest.(check bool) "decoded vk verifies" true
    (Snark.verify kp'.Snark.vk ~public_inputs:(Cs.public_inputs cs) proof)

let () =
  Alcotest.run "snark"
    [
      ( "snark",
        [
          Alcotest.test_case "completeness" `Quick test_completeness;
          Alcotest.test_case "multi-instance keys" `Quick test_proof_reusable_across_witnesses;
          Alcotest.test_case "wrong public input" `Quick test_wrong_public_input_rejected;
          Alcotest.test_case "bad witness" `Quick test_bad_witness_rejected;
          Alcotest.test_case "tampered proof" `Quick test_tampered_proof_rejected;
          Alcotest.test_case "constant proof size" `Quick test_proof_constant_size;
          Alcotest.test_case "zk blinding" `Quick test_zk_blinding;
          Alcotest.test_case "trapdoor simulator" `Quick test_simulator;
          Alcotest.test_case "serialisation" `Quick test_serialization_roundtrip;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "mixed circuit" `Quick test_mixed_circuit_end_to_end;
          Alcotest.test_case "wrong input count" `Quick test_wrong_input_count;
        ] );
      ( "batch",
        [
          Alcotest.test_case "basic" `Quick test_batch_verify_basic;
          test_batch_iff_individual;
          Alcotest.test_case "fallback pinpoints" `Quick test_batch_fallback_pinpoints;
          Alcotest.test_case "fiat-shamir seed binds contents" `Quick
            test_batch_seed_binds_contents;
        ] );
      ( "cache",
        [
          Alcotest.test_case "vk decode once" `Quick test_vk_decode_cache;
          Alcotest.test_case "content path" `Quick test_keycache_content_path;
          Alcotest.test_case "named path" `Quick test_keycache_named_path;
          Alcotest.test_case "store persistence" `Quick test_keycache_store_persistence;
          Alcotest.test_case "keypair codec" `Quick test_keypair_codec_roundtrip;
        ] );
    ]
