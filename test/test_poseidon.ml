(* Poseidon hash and gadget tests. *)

open Zebra_field
open Zebra_r1cs
module Poseidon = Zebra_poseidon.Poseidon
module Mimc = Zebra_mimc.Mimc

let rng = Zebra_rng.Chacha20.create ~seed:"test_poseidon"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let fp = Alcotest.testable Fp.pp Fp.equal

let test_permutation_deterministic () =
  let s1 = [| Fp.one; Fp.two; Fp.of_int 3 |] in
  let s2 = Array.copy s1 in
  Poseidon.permute s1;
  Poseidon.permute s2;
  Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "lane %d" i) x s2.(i)) s1

let test_permutation_changes_state () =
  let s = [| Fp.one; Fp.two; Fp.of_int 3 |] in
  Poseidon.permute s;
  Alcotest.(check bool) "state changed" false (Fp.equal s.(0) Fp.one)

let test_bad_width () =
  Alcotest.check_raises "width" (Invalid_argument "Poseidon.permute: bad state width")
    (fun () -> Poseidon.permute [| Fp.one |])

let test_hash2_properties () =
  let a = fresh_fp () and b = fresh_fp () in
  Alcotest.check fp "deterministic" (Poseidon.hash2 a b) (Poseidon.hash2 a b);
  Alcotest.(check bool) "order matters" false
    (Fp.equal (Poseidon.hash2 a b) (Poseidon.hash2 b a));
  Alcotest.(check bool) "differs from MiMC" false
    (Fp.equal (Poseidon.hash2 a b) (Mimc.hash2 a b))

let test_hash_list_length_separation () =
  let x = fresh_fp () in
  Alcotest.(check bool) "length absorbed" false
    (Fp.equal (Poseidon.hash_list [ x ]) (Poseidon.hash_list [ x; Fp.zero ]))

let test_mds_invertible () =
  (* A Cauchy matrix is invertible; sanity-check by showing no lane mixes
     to zero on a random input (determinant check by behaviour). *)
  let s = [| fresh_fp (); fresh_fp (); fresh_fp () |] in
  let before = Array.copy s in
  Poseidon.permute s;
  Poseidon.permute s;
  Alcotest.(check bool) "still moving" false (Fp.equal s.(0) before.(0))

let test_gadget_matches_native () =
  let cs = Cs.create () in
  let a = fresh_fp () and b = fresh_fp () in
  let va = Cs.alloc cs a and vb = Cs.alloc cs b in
  let out = Poseidon.hash2_gadget cs (Gadgets.v va) (Gadgets.v vb) in
  Alcotest.check fp "gadget = native" (Poseidon.hash2 a b) (Gadgets.eval cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_hash_list_gadget_matches_native () =
  (* The composition layer (Zebra_hashcomp) routes CPLA's tag hashes
     through hash_list_gadget; it must agree with the native hash_list at
     every arity the circuits use. *)
  List.iter
    (fun n ->
      let cs = Cs.create () in
      let xs = List.init n (fun _ -> fresh_fp ()) in
      let vars = List.map (fun x -> Gadgets.v (Cs.alloc cs x)) xs in
      let out = Poseidon.hash_list_gadget cs vars in
      Alcotest.check fp
        (Printf.sprintf "gadget = native at arity %d" n)
        (Poseidon.hash_list xs) (Gadgets.eval cs out);
      Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs))
    [ 1; 2; 3 ]

let test_gadget_constraint_count () =
  let count_gadget build =
    let cs = Cs.create () in
    let va = Cs.alloc cs (fresh_fp ()) and vb = Cs.alloc cs (fresh_fp ()) in
    ignore (build cs (Gadgets.v va) (Gadgets.v vb));
    Cs.num_constraints cs
  in
  let poseidon = count_gadget Poseidon.hash2_gadget in
  let mimc = count_gadget (fun cs a b -> Gadgets.mimc_hash cs [ a; b ]) in
  Alcotest.(check bool)
    (Printf.sprintf "poseidon (%d) < mimc (%d)" poseidon mimc)
    true (poseidon < mimc);
  (* Lock the exact budget the .mli documents: 81 S-boxes x 3 constraints
     (8 full rounds x 3 lanes + 57 partial).  The documented CPLA counts
     (245*depth + 6*243) stand on this number. *)
  Alcotest.(check int) "hash2_gadget is exactly 243 constraints" 243 poseidon

let test_merkle_gadget () =
  let depth = 4 in
  (* Build a native path and check the gadget recomputes the root. *)
  let leaf = fresh_fp () in
  let siblings = Array.init depth (fun _ -> fresh_fp ()) in
  let index = 0b1010 in
  let root = ref leaf in
  Array.iteri
    (fun l sib ->
      let bit = (index lsr l) land 1 in
      root := if bit = 1 then Poseidon.hash2 sib !root else Poseidon.hash2 !root sib)
    siblings;
  let cs = Cs.create () in
  let vleaf = Cs.alloc cs leaf in
  let bits = Array.init depth (fun l -> Gadgets.alloc_bit cs ((index lsr l) land 1 = 1)) in
  let vsibs = Array.map (Cs.alloc cs) siblings in
  let out = Poseidon.merkle_root_gadget cs ~leaf:(Gadgets.v vleaf) ~path_bits:bits ~siblings:vsibs in
  Alcotest.check fp "root" !root (Gadgets.eval cs out);
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs)

let test_gadget_detects_cheating () =
  (* Corrupting an intermediate wire must break satisfaction. *)
  let cs = Cs.create () in
  let va = Cs.alloc cs (fresh_fp ()) and vb = Cs.alloc cs (fresh_fp ()) in
  let out = Poseidon.hash2_gadget cs (Gadgets.v va) (Gadgets.v vb) in
  ignore out;
  (* the last allocated wire is part of the hash computation *)
  let last = Cs.var_of_int (Cs.num_vars cs - 1) in
  Cs.set_value cs last (fresh_fp ());
  Alcotest.(check bool) "cheat detected" false (Cs.is_satisfied cs)

let () =
  Alcotest.run "poseidon"
    [
      ( "native",
        [
          Alcotest.test_case "deterministic" `Quick test_permutation_deterministic;
          Alcotest.test_case "changes state" `Quick test_permutation_changes_state;
          Alcotest.test_case "bad width" `Quick test_bad_width;
          Alcotest.test_case "hash2" `Quick test_hash2_properties;
          Alcotest.test_case "length separation" `Quick test_hash_list_length_separation;
          Alcotest.test_case "mds behaviour" `Quick test_mds_invertible;
        ] );
      ( "gadget",
        [
          Alcotest.test_case "matches native" `Quick test_gadget_matches_native;
          Alcotest.test_case "hash_list matches native" `Quick
            test_hash_list_gadget_matches_native;
          Alcotest.test_case "cheaper than MiMC" `Quick test_gadget_constraint_count;
          Alcotest.test_case "merkle root" `Quick test_merkle_gadget;
          Alcotest.test_case "cheating detected" `Quick test_gadget_detects_cheating;
        ] );
    ]
