(* Field, FFT and polynomial tests. *)

open Zebra_field

let rng = Zebra_rng.Chacha20.create ~seed:"test_field"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let fp = Alcotest.testable Fp.pp Fp.equal

let qtest name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Generator: random field element via an int seed expanded through ChaCha. *)
let arb_fp =
  QCheck2.Gen.map
    (fun seed ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "fp-%d" seed) in
      Fp.random (Zebra_rng.Chacha20.bytes r))
    QCheck2.Gen.(int_bound 1_000_000)

(* --- Fp --- *)

let test_constants () =
  Alcotest.check fp "0+1=1" Fp.one (Fp.add Fp.zero Fp.one);
  Alcotest.check fp "1+1=2" Fp.two (Fp.add Fp.one Fp.one);
  Alcotest.check fp "p=0" Fp.zero (Fp.of_nat Fp.modulus)

let test_negative_of_int () =
  Alcotest.check fp "-1 + 1 = 0" Fp.zero (Fp.add (Fp.of_int (-1)) Fp.one);
  Alcotest.check fp "-5 = neg 5" (Fp.neg (Fp.of_int 5)) (Fp.of_int (-5))

let test_bytes_roundtrip () =
  let x = fresh_fp () in
  Alcotest.check fp "roundtrip" x (Fp.of_bytes_be_exn (Fp.to_bytes_be x))

let test_bytes_noncanonical () =
  let b = Bytes.make 32 '\xff' in
  Alcotest.check_raises "non-canonical rejected"
    (Invalid_argument "Fp.of_bytes_be_exn: not canonical") (fun () ->
      ignore (Fp.of_bytes_be_exn b))

let test_root_of_unity () =
  let w = Fp.root_of_unity 10 in
  Alcotest.check fp "w^1024 = 1" Fp.one (Fp.pow_int w 1024);
  Alcotest.(check bool) "w^512 <> 1" false (Fp.equal Fp.one (Fp.pow_int w 512))

let test_max_two_adic_root () =
  let w = Fp.root_of_unity 28 in
  Alcotest.check fp "order 2^28" Fp.one (Fp.pow w (Zebra_numeric.Nat.pow Zebra_numeric.Nat.two 28));
  Alcotest.(check bool) "primitive" false
    (Fp.equal Fp.one (Fp.pow w (Zebra_numeric.Nat.pow Zebra_numeric.Nat.two 27)))

let test_batch_inv () =
  let a = Array.init 20 (fun _ -> fresh_fp ()) in
  let inv = Fp.batch_inv a in
  Array.iteri (fun i x -> Alcotest.check fp "x * x^-1" Fp.one (Fp.mul x inv.(i))) a

let test_batch_inv_zero () =
  Alcotest.check_raises "zero in batch" Division_by_zero (fun () ->
      ignore (Fp.batch_inv [| Fp.one; Fp.zero |]))

let prop_field_laws =
  qtest "field laws" (QCheck2.Gen.triple arb_fp arb_fp arb_fp) (fun (a, b, c) ->
      Fp.equal (Fp.mul a (Fp.add b c)) (Fp.add (Fp.mul a b) (Fp.mul a c))
      && Fp.equal (Fp.mul a b) (Fp.mul b a)
      && Fp.equal (Fp.add (Fp.sub a b) b) a
      && Fp.equal (Fp.sub Fp.zero a) (Fp.neg a))

let prop_inverse =
  qtest "multiplicative inverse" arb_fp (fun a ->
      Fp.is_zero a || Fp.equal Fp.one (Fp.mul a (Fp.inv a)))

let prop_sqr =
  qtest "sqr = mul self" arb_fp (fun a -> Fp.equal (Fp.sqr a) (Fp.mul a a))

(* --- in-place kernels, Vec, bucketed dots (PR 10) --- *)

module Nat = Zebra_numeric.Nat

(* Edge-heavy generator: the in-place kernels must agree with the pure
   ops at 0, 1, p-1 and p-2 as well as on random elements. *)
let arb_fp_edge =
  QCheck2.Gen.frequency
    [
      (6, arb_fp);
      (1, QCheck2.Gen.return Fp.zero);
      (1, QCheck2.Gen.return Fp.one);
      (1, QCheck2.Gen.return (Fp.neg Fp.one));
      (1, QCheck2.Gen.return (Fp.neg Fp.two));
    ]

let prop_into_kernels =
  qtest "in-place kernels = pure ops" ~count:300 (QCheck2.Gen.pair arb_fp_edge arb_fp_edge)
    (fun (a, b) ->
      let dst = Fp.buffer () in
      Fp.add_into ~dst a b;
      let ok_add = Fp.equal dst (Fp.add a b) in
      Fp.sub_into ~dst a b;
      let ok_sub = Fp.equal dst (Fp.sub a b) in
      Fp.mul_into ~dst a b;
      let ok_mul = Fp.equal dst (Fp.mul a b) in
      Fp.sqr_into ~dst a;
      let ok_sqr = Fp.equal dst (Fp.sqr a) in
      Fp.neg_into ~dst a;
      let ok_neg = Fp.equal dst (Fp.neg a) in
      (* Aliased destinations (dst == an operand) for the elementwise
         kernels, as the documented aliasing rules permit. *)
      let buf = Fp.copy a in
      Fp.add_into ~dst:buf buf b;
      let ok_add_alias = Fp.equal buf (Fp.add a b) in
      let buf = Fp.copy a in
      Fp.sub_into ~dst:buf buf b;
      let ok_sub_alias = Fp.equal buf (Fp.sub a b) in
      let buf = Fp.copy b in
      Fp.sub_into ~dst:buf a buf;
      let ok_sub_alias2 = Fp.equal buf (Fp.sub a b) in
      let buf = Fp.copy a in
      Fp.neg_into ~dst:buf buf;
      let ok_neg_alias = Fp.equal buf (Fp.neg a) in
      ok_add && ok_sub && ok_mul && ok_sqr && ok_neg && ok_add_alias && ok_sub_alias
      && ok_sub_alias2 && ok_neg_alias)

let test_mul_into_alias_rejected () =
  let a = Fp.copy Fp.two in
  Alcotest.check_raises "dst aliasing a source is rejected"
    (Invalid_argument "Modular.mul_off: destination overlaps a source") (fun () ->
      Fp.mul_into ~dst:a a Fp.one)

(* Reference binary exponentiation; Fp.pow now uses a 4-bit sliding
   window and must return limb-identical results. *)
let naive_pow b e =
  let nb = Nat.num_bits e in
  if nb = 0 then Fp.one
  else begin
    let acc = ref b in
    for i = nb - 2 downto 0 do
      acc := Fp.sqr !acc;
      if Nat.testbit e i then acc := Fp.mul !acc b
    done;
    !acc
  end

let prop_pow_window =
  qtest "sliding-window pow = square-and-multiply" ~count:60 QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "pow-%d" seed) in
      let rb n = Zebra_rng.Chacha20.bytes r n in
      let b = Fp.random rb in
      let e = Nat.of_bytes_be (rb 32) in
      Fp.equal (Fp.pow b e) (naive_pow b e)
      && Fp.equal (Fp.pow b Nat.zero) Fp.one
      && Fp.equal (Fp.pow b Nat.one) b
      && List.for_all
           (fun k ->
             let e = Nat.of_int k in
             Fp.equal (Fp.pow b e) (naive_pow b e))
           [ 2; 15; 16; 17; 255; 257 ])

let prop_bucket_dot =
  qtest "bucketed sparse dot = naive sum" ~count:200 QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "dot-%d" seed) in
      let rb n = Zebra_rng.Chacha20.bytes r n in
      let byte () = Char.code (Bytes.get (rb 1) 0) in
      let nw = 1 + (byte () mod 8) in
      (* Witness values skew to 0/1 like real boolean wires. *)
      let w =
        Array.init nw (fun _ ->
            match byte () mod 4 with 0 -> Fp.zero | 1 -> Fp.one | _ -> Fp.random rb)
      in
      (* Coefficients skew to +-1 like real constraint rows. *)
      let len = byte () mod 24 in
      let coefs =
        Array.init len (fun _ ->
            match byte () mod 4 with 0 -> Fp.one | 1 -> Fp.neg Fp.one | _ -> Fp.random rb)
      in
      let idx = Array.init len (fun _ -> byte () mod nw) in
      let cls = Fp.classify_coefs coefs in
      let scratch = Fp.dot_scratch () in
      let check lo hi =
        let init = Fp.random rb in
        let acc = Fp.copy init in
        Fp.dot_sparse_acc ~scratch ~acc ~cls ~coefs ~idx ~w ~lo ~hi;
        let naive = ref init in
        for k = lo to hi - 1 do
          naive := Fp.add !naive (Fp.mul coefs.(k) w.(idx.(k)))
        done;
        Fp.equal acc !naive
      in
      check 0 len && check (len / 3) (len - (len / 4)))

let test_vec_roundtrip () =
  let a = Array.init 10 (fun _ -> fresh_fp ()) in
  let v = Fp.Vec.of_array a in
  Alcotest.(check int) "length" 10 (Fp.Vec.length v);
  Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "get %d" i) x (Fp.Vec.get v i)) a;
  let b = Fp.Vec.to_array v in
  Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "to_array %d" i) x b.(i)) a;
  (* Fvec is the same type as Fp.Vec — the alias module interoperates. *)
  Alcotest.(check int) "Fvec alias" 10 (Fvec.length v);
  Fp.Vec.swap v 0 9;
  Alcotest.check fp "swap" a.(9) (Fp.Vec.get v 0);
  (* [set] copies the value in: mutating vector slots afterwards must
     never reach back into the element we stored. *)
  let x = fresh_fp () in
  let x_saved = Fp.copy x in
  Fp.Vec.set v 1 x;
  Fp.Vec.set v 1 Fp.zero;
  Alcotest.check fp "set copies" x_saved x;
  Alcotest.(check bool) "is_zero" true (Fp.Vec.is_zero v 1)

let test_vec_slot_ops () =
  let x = fresh_fp () and y = fresh_fp () and c = fresh_fp () in
  let tmp = Fp.buffer () in
  let v = Fp.Vec.of_array [| x; y |] in
  Fp.Vec.butterfly ~tmp v 0 1 c;
  Alcotest.check fp "butterfly +" (Fp.add x (Fp.mul c y)) (Fp.Vec.get v 0);
  Alcotest.check fp "butterfly -" (Fp.sub x (Fp.mul c y)) (Fp.Vec.get v 1);
  let v = Fp.Vec.of_array [| x; y |] in
  Fp.Vec.mul_slot_elt ~tmp v 0 c;
  Alcotest.check fp "mul_slot_elt" (Fp.mul x c) (Fp.Vec.get v 0);
  Fp.Vec.add_slots v 0 v 0 v 1;
  Alcotest.check fp "add_slots (aliased dst)" (Fp.add (Fp.mul x c) y) (Fp.Vec.get v 0);
  let v = Fp.Vec.of_array [| x; y |] in
  Fp.Vec.mul_into_elt ~dst:tmp v 0 v 1;
  Alcotest.check fp "mul_into_elt" (Fp.mul x y) tmp;
  Fp.Vec.mul_elt_into ~dst:tmp v 1 c;
  Alcotest.check fp "mul_elt_into" (Fp.mul y c) tmp;
  Fp.Vec.set_mul v 0 c c;
  Alcotest.check fp "set_mul" (Fp.sqr c) (Fp.Vec.get v 0);
  Fp.Vec.sub_elt_into ~dst:tmp c v 1;
  Alcotest.check fp "sub_elt_into" (Fp.sub c y) tmp;
  Fp.set_zero tmp;
  Fp.Vec.add_elt_acc ~acc:tmp v 1;
  Fp.Vec.add_elt_acc ~acc:tmp v 1;
  Alcotest.check fp "add_elt_acc" (Fp.add y y) tmp;
  let v = Fp.Vec.of_array [| x |] in
  Fp.Vec.add_slot_elt v 0 c;
  Alcotest.check fp "add_slot_elt" (Fp.add x c) (Fp.Vec.get v 0);
  Fp.Vec.sub_slot_elt v 0 c;
  Alcotest.check fp "sub_slot_elt" x (Fp.Vec.get v 0)

let test_fft_vec_matches_array () =
  let d = Fft.domain 16 in
  let a = Array.init 16 (fun _ -> fresh_fp ()) in
  (* Array entry points and the native vector transforms must agree
     slot for slot, for every transform variant. *)
  List.iter
    (fun (name, arr_t, vec_t) ->
      let b = Array.copy a in
      arr_t d b;
      let v = Fp.Vec.of_array a in
      vec_t d v;
      Array.iteri
        (fun i x -> Alcotest.check fp (Printf.sprintf "%s %d" name i) x (Fp.Vec.get v i))
        b)
    [
      ("fft", Fft.fft, Fft.fft_vec);
      ("ifft", Fft.ifft, Fft.ifft_vec);
      ("coset_fft", Fft.coset_fft, Fft.coset_fft_vec);
      ("coset_ifft", Fft.coset_ifft, Fft.coset_ifft_vec);
    ]

(* --- FFT --- *)

let rand_poly n = Array.init n (fun _ -> fresh_fp ())

let test_fft_roundtrip () =
  List.iter
    (fun n ->
      let d = Fft.domain n in
      let a = rand_poly (Fft.size d) in
      let b = Array.copy a in
      Fft.fft d b;
      Fft.ifft d b;
      Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "n=%d i=%d" n i) a.(i) x) b)
    [ 1; 2; 4; 8; 64; 256 ]

let test_fft_matches_eval () =
  let d = Fft.domain 8 in
  let coeffs = rand_poly 8 in
  let p = Poly.of_coeffs (Array.copy coeffs) in
  let evals = Array.copy coeffs in
  Fft.fft d evals;
  for i = 0 to 7 do
    Alcotest.check fp (Printf.sprintf "eval at w^%d" i) (Poly.eval p (Fft.element d i)) evals.(i)
  done

let test_coset_fft_matches_eval () =
  let d = Fft.domain 8 in
  let coeffs = rand_poly 8 in
  let p = Poly.of_coeffs (Array.copy coeffs) in
  let evals = Array.copy coeffs in
  Fft.coset_fft d evals;
  let g = Fp.generator in
  for i = 0 to 7 do
    let x = Fp.mul g (Fft.element d i) in
    Alcotest.check fp (Printf.sprintf "coset eval %d" i) (Poly.eval p x) evals.(i)
  done

let test_coset_roundtrip () =
  let d = Fft.domain 16 in
  let a = rand_poly 16 in
  let b = Array.copy a in
  Fft.coset_fft d b;
  Fft.coset_ifft d b;
  Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "i=%d" i) a.(i) x) b

let test_vanishing () =
  let d = Fft.domain 8 in
  for i = 0 to 7 do
    Alcotest.check fp "Z(w^i)=0" Fp.zero (Fft.vanishing_at d (Fft.element d i))
  done;
  let g = Fp.generator in
  Alcotest.check fp "Z on coset" (Fft.vanishing_on_coset d)
    (Fft.vanishing_at d (Fp.mul g Fp.one))

let test_lagrange_at () =
  let d = Fft.domain 8 in
  let x = fresh_fp () in
  let ls = Fft.lagrange_at d x in
  (* Sum of all Lagrange basis polys is 1. *)
  let sum = Array.fold_left Fp.add Fp.zero ls in
  Alcotest.check fp "partition of unity" Fp.one sum;
  (* Against the naive interpolation through an indicator function. *)
  let pts = List.init 8 (fun i -> (Fft.element d i, if i = 3 then Fp.one else Fp.zero)) in
  let l3 = Poly.interpolate pts in
  Alcotest.check fp "L_3(x)" (Poly.eval l3 x) ls.(3)

(* --- Poly --- *)

let test_poly_divmod () =
  let p = Poly.of_coeffs (rand_poly 10) in
  let d = Poly.of_coeffs (rand_poly 4) in
  let q, r = Poly.divmod p d in
  Alcotest.(check bool) "deg r < deg d" true (Poly.degree r < Poly.degree d);
  Alcotest.(check bool) "p = q*d + r" true (Poly.equal p (Poly.add (Poly.mul q d) r))

let test_poly_interpolate_roundtrip () =
  let pts = List.init 6 (fun i -> (Fp.of_int (i + 1), fresh_fp ())) in
  let p = Poly.interpolate pts in
  List.iter (fun (x, y) -> Alcotest.check fp "through point" y (Poly.eval p x)) pts

let test_poly_interpolate_duplicate () =
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate x")
    (fun () -> ignore (Poly.interpolate [ (Fp.one, Fp.one); (Fp.one, Fp.two) ]))

let prop_poly_mul_eval =
  qtest "eval is ring hom" (QCheck2.Gen.pair arb_fp (QCheck2.Gen.int_bound 8))
    (fun (x, n) ->
      let a = Poly.of_coeffs (rand_poly (n + 1)) in
      let b = Poly.of_coeffs (rand_poly (n + 2)) in
      Fp.equal (Poly.eval (Poly.mul a b) x) (Fp.mul (Poly.eval a x) (Poly.eval b x))
      && Fp.equal (Poly.eval (Poly.add a b) x) (Fp.add (Poly.eval a x) (Poly.eval b x)))

let () =
  Alcotest.run "field"
    [
      ( "fp",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "negative of_int" `Quick test_negative_of_int;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "non-canonical bytes" `Quick test_bytes_noncanonical;
          Alcotest.test_case "root of unity" `Quick test_root_of_unity;
          Alcotest.test_case "2^28 root" `Quick test_max_two_adic_root;
          Alcotest.test_case "batch inversion" `Quick test_batch_inv;
          Alcotest.test_case "batch inversion zero" `Quick test_batch_inv_zero;
          prop_field_laws; prop_inverse; prop_sqr;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "mul_into alias rejected" `Quick test_mul_into_alias_rejected;
          Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
          Alcotest.test_case "vec slot ops" `Quick test_vec_slot_ops;
          Alcotest.test_case "fft vec = array" `Quick test_fft_vec_matches_array;
          prop_into_kernels; prop_pow_window; prop_bucket_dot;
        ] );
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "matches Horner" `Quick test_fft_matches_eval;
          Alcotest.test_case "coset matches Horner" `Quick test_coset_fft_matches_eval;
          Alcotest.test_case "coset roundtrip" `Quick test_coset_roundtrip;
          Alcotest.test_case "vanishing polynomial" `Quick test_vanishing;
          Alcotest.test_case "lagrange at point" `Quick test_lagrange_at;
        ] );
      ( "poly",
        [
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "interpolation" `Quick test_poly_interpolate_roundtrip;
          Alcotest.test_case "duplicate abscissae" `Quick test_poly_interpolate_duplicate;
          prop_poly_mul_eval;
        ] );
    ]
