(* Anonymous reputation tests: the epoch-pseudonym link circuit and the
   reputation contract's credit/claim lifecycle on the chain. *)

open Zebra_field
open Zebra_chain
open Zebralancer
module Cpla = Zebra_anonauth.Cpla

let rng = Zebra_rng.Chacha20.create ~seed:"test_reputation"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let params = lazy (Reputation.setup ~random_bytes ())
let vk = lazy (Reputation.vk_bytes (Lazy.force params))

let worker = lazy (Cpla.keygen ~random_bytes ())

(* --- link circuit --- *)

let test_link_proof_verifies () =
  let p = Lazy.force params and key = Lazy.force worker in
  let task_prefix = fresh_fp () in
  let proof = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:3 in
  Alcotest.(check bool) "verifies" true
    (Reputation.verify_link ~vk_bytes:(Lazy.force vk)
       ~task_tag:(Reputation.task_tag key ~task_prefix)
       ~pseudonym:(Reputation.epoch_pseudonym key ~epoch:3)
       ~task_prefix ~epoch:3 proof)

let test_task_tag_matches_cpla_t1 () =
  (* The reputation task tag is exactly the t1 the worker's submission left
     in the task contract's storage. *)
  let key = Lazy.force worker in
  let depth = 3 in
  let cpla = Cpla.setup ~random_bytes ~depth () in
  let ra = Zebra_anonauth.Ra.create ~depth () in
  let i = Zebra_anonauth.Ra.register ra key.Cpla.pk in
  let task_prefix = fresh_fp () in
  let att =
    Cpla.auth ~random_bytes cpla ~prefix:task_prefix ~message:(fresh_fp ()) ~key ~index:i
      ~path:(Zebra_anonauth.Ra.path ra i) ~root:(Zebra_anonauth.Ra.root ra)
  in
  Alcotest.(check bool) "tags agree" true
    (Fp.equal att.Cpla.t1 (Reputation.task_tag key ~task_prefix))

let test_wrong_pseudonym_rejected () =
  (* Claiming onto someone else's pseudonym fails: same sk must underlie
     both tags. *)
  let p = Lazy.force params and key = Lazy.force worker in
  let other = Cpla.keygen ~random_bytes () in
  let task_prefix = fresh_fp () in
  let proof = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:1 in
  Alcotest.(check bool) "stolen pseudonym rejected" false
    (Reputation.verify_link ~vk_bytes:(Lazy.force vk)
       ~task_tag:(Reputation.task_tag key ~task_prefix)
       ~pseudonym:(Reputation.epoch_pseudonym other ~epoch:1)
       ~task_prefix ~epoch:1 proof)

let test_wrong_epoch_rejected () =
  let p = Lazy.force params and key = Lazy.force worker in
  let task_prefix = fresh_fp () in
  let proof = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:1 in
  Alcotest.(check bool) "epoch mismatch rejected" false
    (Reputation.verify_link ~vk_bytes:(Lazy.force vk)
       ~task_tag:(Reputation.task_tag key ~task_prefix)
       ~pseudonym:(Reputation.epoch_pseudonym key ~epoch:1)
       ~task_prefix ~epoch:2 proof)

let test_pseudonyms_unlinkable_across_epochs () =
  let key = Lazy.force worker in
  Alcotest.(check bool) "distinct pseudonyms" false
    (Fp.equal (Reputation.epoch_pseudonym key ~epoch:1) (Reputation.epoch_pseudonym key ~epoch:2))

(* --- contract lifecycle --- *)

let chain_fixture =
  lazy
    (Reputation_contract.register ();
     let owner = Wallet.generate ~bits:512 ~random_bytes () in
     let stranger = Wallet.generate ~bits:512 ~random_bytes () in
     let net =
       Network.create ~num_nodes:2
         ~genesis:[ (Wallet.address owner, 1000); (Wallet.address stranger, 1000) ]
         ()
     in
     let deploy =
       Tx.make ~wallet:owner ~nonce:0
         ~dst:
           (Tx.Create
              {
                behavior = Reputation_contract.behavior_name;
                args = Reputation_contract.init_args ~link_vk:(Lazy.force vk);
              })
         ~value:0 ~payload:Bytes.empty
     in
     Network.submit net deploy;
     ignore (Network.mine net);
     let addr = Address.of_creator (Wallet.address owner) 0 in
     assert (Network.is_contract net addr);
     (net, owner, stranger, addr))

let call net wallet addr msg =
  let tx =
    Tx.make ~wallet ~nonce:(Network.nonce net (Wallet.address wallet)) ~dst:(Tx.Call addr)
      ~value:0 ~payload:(Reputation_contract.message_to_bytes msg)
  in
  Network.submit net tx;
  ignore (Network.mine net);
  Option.get (Network.receipt net (Tx.hash tx))

let storage net addr =
  Reputation_contract.storage_of_bytes (Option.get (Network.contract_storage net addr))

let test_contract_credit_claim_cycle () =
  let net, owner, stranger, addr = Lazy.force chain_fixture in
  let p = Lazy.force params and key = Lazy.force worker in
  let task_prefix = fresh_fp () in
  let tag = Reputation.task_tag key ~task_prefix in
  (* stranger cannot credit *)
  (match call net stranger addr (Reputation_contract.Credit { task_tag = tag; task_prefix; score = 5 }) with
  | { State.status = State.Failed "only the owner credits"; _ } -> ()
  | _ -> Alcotest.fail "stranger credited");
  (* owner credits *)
  (match call net owner addr (Reputation_contract.Credit { task_tag = tag; task_prefix; score = 5 }) with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "credit failed");
  (* double credit refused *)
  (match call net owner addr (Reputation_contract.Credit { task_tag = tag; task_prefix; score = 5 }) with
  | { State.status = State.Failed "tag already credited"; _ } -> ()
  | _ -> Alcotest.fail "double credit accepted");
  (* worker claims onto the epoch-0 pseudonym *)
  let pseudonym = Reputation.epoch_pseudonym key ~epoch:0 in
  let proof = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:0 in
  (match
     call net stranger addr
       (Reputation_contract.Claim
          { task_tag = tag; pseudonym; proof = Zebra_snark.Snark.proof_to_bytes proof })
   with
  | { State.status = State.Ok _; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "claim failed: %s" m);
  Alcotest.(check int) "score accumulated" 5 (Reputation_contract.score (storage net addr) pseudonym);
  (* claim once only *)
  match
    call net stranger addr
      (Reputation_contract.Claim
         { task_tag = tag; pseudonym; proof = Zebra_snark.Snark.proof_to_bytes proof })
  with
  | { State.status = State.Failed "no unclaimed credit for this tag"; _ } -> ()
  | _ -> Alcotest.fail "double claim accepted"

let test_contract_epoch_advance () =
  let net, owner, _, addr = Lazy.force chain_fixture in
  let p = Lazy.force params and key = Lazy.force worker in
  let task_prefix = fresh_fp () in
  let tag = Reputation.task_tag key ~task_prefix in
  (match call net owner addr (Reputation_contract.Credit { task_tag = tag; task_prefix; score = 7 }) with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "credit failed");
  (match call net owner addr Reputation_contract.Advance_epoch with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "advance failed");
  let epoch = (storage net addr).Reputation_contract.epoch in
  (* a proof for the old epoch is refused; the new-epoch one accepted *)
  let stale = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:(epoch - 1) in
  (match
     call net owner addr
       (Reputation_contract.Claim
          {
            task_tag = tag;
            pseudonym = Reputation.epoch_pseudonym key ~epoch:(epoch - 1);
            proof = Zebra_snark.Snark.proof_to_bytes stale;
          })
   with
  | { State.status = State.Failed "invalid link proof"; _ } -> ()
  | _ -> Alcotest.fail "stale-epoch claim accepted");
  let fresh = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch in
  match
    call net owner addr
      (Reputation_contract.Claim
         {
           task_tag = tag;
           pseudonym = Reputation.epoch_pseudonym key ~epoch;
           proof = Zebra_snark.Snark.proof_to_bytes fresh;
         })
  with
  | { State.status = State.Ok _; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "fresh claim failed: %s" m

(* --- hash composition arms --- *)

let test_mimc_arm_roundtrip () =
  (* The MiMC ablation arm stays provable end to end, and its tags live in
     a different space than the Poseidon default's. *)
  let composition = Zebra_hashcomp.Hash_composition.Mimc in
  let p = Reputation.setup ~composition ~random_bytes () in
  Alcotest.(check string) "params record the arm" "mimc"
    (Zebra_hashcomp.Hash_composition.to_string (Reputation.composition p));
  let key = Cpla.keygen ~composition ~random_bytes () in
  let task_prefix = fresh_fp () in
  let proof = Reputation.prove_link ~random_bytes p ~key ~task_prefix ~epoch:2 in
  Alcotest.(check bool) "mimc link proof verifies" true
    (Reputation.verify_link ~vk_bytes:(Reputation.vk_bytes p)
       ~task_tag:(Reputation.task_tag ~composition key ~task_prefix)
       ~pseudonym:(Reputation.epoch_pseudonym ~composition key ~epoch:2)
       ~task_prefix ~epoch:2 proof);
  Alcotest.(check bool) "arms tag differently" false
    (Fp.equal
       (Reputation.task_tag ~composition key ~task_prefix)
       (Reputation.task_tag key ~task_prefix))

let () =
  Alcotest.run "reputation"
    [
      ( "link-circuit",
        [
          Alcotest.test_case "proof verifies" `Quick test_link_proof_verifies;
          Alcotest.test_case "tag matches CPLA t1" `Quick test_task_tag_matches_cpla_t1;
          Alcotest.test_case "wrong pseudonym" `Quick test_wrong_pseudonym_rejected;
          Alcotest.test_case "wrong epoch" `Quick test_wrong_epoch_rejected;
          Alcotest.test_case "epoch unlinkability" `Quick test_pseudonyms_unlinkable_across_epochs;
        ] );
      ( "contract",
        [
          Alcotest.test_case "credit/claim cycle" `Quick test_contract_credit_claim_cycle;
          Alcotest.test_case "epoch advance" `Quick test_contract_epoch_advance;
        ] );
      ( "composition",
        [ Alcotest.test_case "mimc arm roundtrip" `Slow test_mimc_arm_roundtrip ] );
    ]
