(* Chain-event indexer tests: the event-sourced mirror must rebuild
   contract state byte-identically from blocks and receipts alone, resume
   from its cursor instead of re-reading history, detect reorgs, and agree
   with the chain after arbitrary seeded marketplace runs. *)

open Zebralancer
open Zebra_chain
module Indexer = Zebra_index.Indexer

let qtest name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let rng = Zebra_rng.Chacha20.create ~seed:"test_index"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let wallet_pool = lazy (Array.init 3 (fun _ -> Wallet.generate ~bits:512 ~random_bytes ()))
let wallet i = (Lazy.force wallet_pool).(i)

let fresh_net () =
  let genesis = List.init 3 (fun i -> (Wallet.address (wallet i), 1_000)) in
  Network.create ~num_nodes:1 ~genesis ()

let transfer ~from ~to_ ~nonce ~value =
  Tx.make ~wallet:(wallet from) ~nonce ~dst:(Tx.Call (Wallet.address (wallet to_))) ~value
    ~payload:Bytes.empty

(* --- the canonical scenario as ground truth --- *)

(* The shared fixture puts every transaction kind on chain: two task
   contracts (Instruct and Finalize settlement), a reputation board
   lifecycle and the RA interface contract.  The mirror must track all of
   it and agree byte-for-byte. *)
let test_scenario_mirror () =
  let scen = Scenario.build () in
  let net = scen.Scenario.sys.Protocol.net in
  let idx = Indexer.create () in
  let fired = ref 0 in
  Indexer.subscribe idx (fun _ -> incr fired);
  let applied = Indexer.sync idx net in
  Alcotest.(check int) "applied every block" (Network.height net) applied;
  Alcotest.(check int) "a callback fired per event" (Indexer.event_count idx) !fired;
  Alcotest.(check bool) "events were decoded" true (Indexer.event_count idx > 0);
  (match Indexer.check idx net with
  | Ok () -> ()
  | Error why -> Alcotest.fail why);
  let h, _tip = Indexer.cursor idx in
  Alcotest.(check int) "cursor at the tip" (Network.height net) h;
  Alcotest.(check int) "no reorg on a quiet chain" 0 (Indexer.reorg_count idx)

let test_cursor_resumes () =
  let scen = Scenario.build () in
  let net = scen.Scenario.sys.Protocol.net in
  let idx = Indexer.create () in
  ignore (Indexer.sync idx net);
  let before = Indexer.event_count idx in
  Alcotest.(check int) "resync applies nothing" 0 (Indexer.sync idx net);
  Alcotest.(check int) "and decodes nothing twice" before (Indexer.event_count idx);
  (* one more block: only the fresh block is read *)
  ignore (Network.mine net);
  Alcotest.(check int) "incremental sync applies the one new block" 1 (Indexer.sync idx net);
  Alcotest.(check bool) "still agrees" true (Indexer.agrees idx net)

let test_decoded_views () =
  let scen = Scenario.build () in
  let net = scen.Scenario.sys.Protocol.net in
  let idx = Indexer.create () in
  ignore (Indexer.sync idx net);
  let v = Indexing.of_indexer idx in
  Alcotest.(check int) "two tasks" 2 (List.length v.Indexing.tasks);
  Alcotest.(check int) "one reputation board" 1 (List.length v.Indexing.reputations);
  Alcotest.(check int) "one ra contract" 1 (List.length v.Indexing.ras);
  Alcotest.(check int) "nothing unclassified" 0 (List.length v.Indexing.others);
  List.iter
    (fun t ->
      Alcotest.(check string) "both tasks settled" "finished" t.Indexing.t_phase;
      Alcotest.(check int) "escrow fully paid out" 0 t.Indexing.t_balance)
    v.Indexing.tasks;
  (match v.Indexing.reputations with
  | [ r ] ->
    Alcotest.(check int) "epoch advanced" 1 r.Indexing.r_epoch;
    Alcotest.(check int) "credit claimed" 0 r.Indexing.r_unclaimed;
    Alcotest.(check (list (pair string int))) "claimed score on the pseudonym"
      [ (fst (List.hd r.Indexing.r_scores), 3) ]
      r.Indexing.r_scores
  | _ -> Alcotest.fail "expected exactly one board");
  Alcotest.(check bool) "render is non-empty and line-structured" true
    (String.length (Indexing.render v) > 0 && String.contains (Indexing.render v) '\n')

(* --- reorg detection --- *)

(* Two chains over the same genesis diverge: syncing the same indexer
   against the second chain invalidates the cursor, forcing a [Reorged]
   event and a clean re-index — nothing from the abandoned branch may
   survive. *)
let test_reorg_reindexes () =
  let net_a = fresh_net () in
  Network.submit net_a (transfer ~from:0 ~to_:1 ~nonce:0 ~value:5);
  ignore (Network.mine net_a);
  let net_b = fresh_net () in
  Network.submit net_b (transfer ~from:0 ~to_:2 ~nonce:0 ~value:9);
  ignore (Network.mine net_b);
  let idx = Indexer.create () in
  ignore (Indexer.sync idx net_a);
  Alcotest.(check int) "no reorg yet" 0 (Indexer.reorg_count idx);
  ignore (Indexer.sync idx net_b);
  Alcotest.(check int) "cursor invalidation detected" 1 (Indexer.reorg_count idx);
  Alcotest.(check bool) "reorg event emitted" true
    (List.exists
       (function Indexer.Reorged _ -> true | _ -> false)
       (Indexer.events idx));
  Alcotest.(check bool) "re-indexed state agrees with the new chain" true
    (Indexer.agrees idx net_b);
  (* the abandoned branch's transfer is gone from the rebuilt event log *)
  let post_reorg_transfers =
    List.filter_map
      (function
        | Indexer.Transferred { amount; _ } -> Some amount
        | _ -> None)
      (Indexer.events idx)
  in
  Alcotest.(check (list int)) "only the adopted branch's transfer remains" [ 5; 9 ]
    post_reorg_transfers

(* --- random marketplaces --- *)

(* The satellite property: after ANY seeded [Load.run] marketplace — many
   tasks, fee-ordered mempool, sharded executor — a fresh indexer's
   event-rebuilt contract state is byte-identical to the chain's.
   Expensive (full system boot per case), so the case count stays small. *)
let prop_load_indexer_agrees =
  qtest "indexer agrees after random Load.run marketplaces" ~count:3
    QCheck2.Gen.(pair (int_range 2 4) (int_range 0 1_000_000))
    (fun (tasks, salt) ->
      let config =
        {
          Load.default_config with
          Load.tasks;
          requesters = 2;
          workers = 4;
          workers_per_task = 2;
          inflight = 3;
          seed = Printf.sprintf "idx-load-%d-%d" tasks salt;
        }
      in
      let r = Load.run ~config () in
      r.Load.indexer_agrees && r.Load.tasks_failed = 0)

let () =
  Alcotest.run "index"
    [
      ( "mirror",
        [
          Alcotest.test_case "scenario mirror agrees" `Quick test_scenario_mirror;
          Alcotest.test_case "cursor resumes" `Quick test_cursor_resumes;
          Alcotest.test_case "decoded views" `Quick test_decoded_views;
        ] );
      ("reorg", [ Alcotest.test_case "reorg re-indexes from genesis" `Quick test_reorg_reindexes ]);
      ("load", [ prop_load_indexer_agrees ]);
    ]
