(* End-to-end protocol tests on the simulated blockchain: the happy path of
   Register / TaskPublish / AnswerCollection / Reward, the timeout fallback,
   and every attack scenario from the paper's security analysis. *)

open Zebra_field
open Zebra_chain
open Zebralancer
module Cpla = Zebra_anonauth.Cpla
module Ra = Zebra_anonauth.Ra
module Elgamal = Zebra_elgamal.Elgamal

(* One shared system: CPLA setup is the expensive part.  Tests create
   independent tasks on the same chain, which also exercises coexistence. *)
let sys = lazy (Protocol.create_system ~tree_depth:6 ~seed:"test_protocol" ())

let rb sys n = Protocol.random_bytes sys n

let check_paid ~msg net wallet expected =
  Alcotest.(check int) msg expected (Network.balance net (Wallet.address wallet))

(* --- happy path --- *)

let test_end_to_end_majority () =
  let sys = Lazy.force sys in
  let policy = Policy.Majority { choices = 4 } in
  let task, wallets, rewards = Protocol.run_task sys ~policy ~budget:90 ~answers:[ 1; 1; 2 ] in
  Alcotest.(check (array int)) "rewards" [| 30; 30; 0 |] rewards;
  (* workers were funded with 10 and paid their reward *)
  List.iteri
    (fun i w -> check_paid ~msg:(Printf.sprintf "worker %d paid" i) sys.Protocol.net w (10 + rewards.(i)))
    wallets;
  (* contract drained; requester refunded the incorrect worker's share *)
  Alcotest.(check int) "contract drained" 0
    (Network.balance sys.Protocol.net task.Requester.contract);
  check_paid ~msg:"requester refund" sys.Protocol.net task.Requester.wallet 31;
  let storage = Protocol.task_storage sys task.Requester.contract in
  Alcotest.(check bool) "finished" true (storage.Task_contract.phase = Task_contract.Finished)

let test_end_to_end_auction () =
  let sys = Lazy.force sys in
  let policy = Policy.Reverse_auction { winners = 2; max_bid = 10 } in
  let _, _, rewards = Protocol.run_task sys ~policy ~budget:100 ~answers:[ 5; 3; 8; 1 ] in
  Alcotest.(check (array int)) "auction rewards" [| 0; 5; 0; 5 |] rewards

let test_partial_submissions_reward () =
  (* Task wants 3 answers, only 2 arrive before the deadline; the requester
     instructs over the partial set (missing slot = bottom). *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys and w2 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ~answer_window:5 ~instruct_window:40 ()
  in
  let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 2); (w2, 2) ] in
  (* pass the answer deadline without a third answer *)
  Network.mine_until sys.Protocol.net
    ~height:(task.Requester.params.Task_contract.answer_deadline + 1);
  let rewards = Protocol.reward sys task in
  Alcotest.(check (array int)) "partial rewards" [| 30; 30; 0 |] rewards

let test_fallback_even_split () =
  (* Requester vanishes after collection: after T_I anyone finalises and
     the budget is split evenly (Algorithm 1 lines 18-20). *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys and w2 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:100 ~answer_window:10 ~instruct_window:10 ()
  in
  let wallets = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 0); (w2, 1) ] in
  Protocol.finalize sys task;
  List.iter (fun w -> check_paid ~msg:"even split" sys.Protocol.net w (10 + 50)) wallets;
  Alcotest.(check int) "contract drained" 0
    (Network.balance sys.Protocol.net task.Requester.contract)

let test_fallback_no_submissions_refund () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:100 ~answer_window:3 ~instruct_window:3 ()
  in
  Protocol.finalize sys task;
  check_paid ~msg:"full refund" sys.Protocol.net task.Requester.wallet 101

(* --- attacks: malicious workers --- *)

let submit_raw sys ~task ~wallet ~identity ~answer =
  let storage = Protocol.task_storage sys task in
  let tx =
    Worker.submit_tx ~random_bytes:(rb sys) ~cpla:sys.Protocol.cpla ~storage ~contract:task
      ~wallet ~key:identity.Protocol.key ~cert_index:identity.Protocol.cert_index
      ~ra_path:(Ra.path sys.Protocol.ra identity.Protocol.cert_index)
      ~answer ~nonce:(Network.nonce sys.Protocol.net (Wallet.address wallet))
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some r -> r
  | None -> Alcotest.fail "submission not mined"

let test_double_submission_linked () =
  (* The same identity submits twice from two fresh addresses: the second
     is linked via t1 and dropped. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let cheater = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ()
  in
  let w1 = Protocol.fresh_funded_wallet sys ~amount:10 in
  let w2 = Protocol.fresh_funded_wallet sys ~amount:10 in
  (match submit_raw sys ~task:task.Requester.contract ~wallet:w1 ~identity:cheater ~answer:1 with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "first submission should pass");
  (match submit_raw sys ~task:task.Requester.contract ~wallet:w2 ~identity:cheater ~answer:2 with
  | { State.status = State.Failed msg; _ } ->
    Alcotest.(check string) "linked" "linked: double submission" msg
  | _ -> Alcotest.fail "double submission accepted!")

let test_same_identity_two_tasks_unlinkable () =
  (* The same identity joins two different tasks: accepted in both, and the
     stored tags differ (cross-task unlinkability). *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let honest = Protocol.enroll sys in
  let mk_task () =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:90 ()
  in
  let t1 = mk_task () and t2 = mk_task () in
  let w1 = Protocol.fresh_funded_wallet sys ~amount:10 in
  let w2 = Protocol.fresh_funded_wallet sys ~amount:10 in
  (match submit_raw sys ~task:t1.Requester.contract ~wallet:w1 ~identity:honest ~answer:1 with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "task-1 submission failed");
  (match submit_raw sys ~task:t2.Requester.contract ~wallet:w2 ~identity:honest ~answer:1 with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "task-2 submission failed");
  let tag_of task =
    match (Protocol.task_storage sys task.Requester.contract).Task_contract.submissions with
    | [ s ] -> s.Task_contract.tag
    | _ -> Alcotest.fail "expected one submission"
  in
  Alcotest.(check bool) "tags unlinkable across tasks" false (Fp.equal (tag_of t1) (tag_of t2))

let test_free_riding_copy_rejected () =
  (* Free-riding (footnote 9): copy a broadcast-but-unmined ciphertext and
     attestation, re-send from another address.  The contract recomputes the
     authenticated digest from the actual sender, so it fails. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let honest = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ()
  in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let honest_wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let thief_wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let honest_tx =
    Worker.submit_tx ~random_bytes:(rb sys) ~cpla:sys.Protocol.cpla ~storage
      ~contract:task.Requester.contract ~wallet:honest_wallet ~key:honest.Protocol.key
      ~cert_index:honest.Protocol.cert_index
      ~ra_path:(Ra.path sys.Protocol.ra honest.Protocol.cert_index)
      ~answer:1 ~nonce:0
  in
  (* The thief sees honest_tx in the mempool and replays its payload. *)
  let thief_tx = Tx.resend_as ~wallet:thief_wallet ~nonce:0 honest_tx in
  Network.submit sys.Protocol.net thief_tx;
  Network.submit sys.Protocol.net honest_tx;
  (* Adversarial ordering: the thief's copy is mined FIRST. *)
  Network.set_adversary sys.Protocol.net
    (Some
       (fun txs ->
         List.sort
           (fun a b ->
             compare (Address.equal a.Tx.sender (Wallet.address honest_wallet))
               (Address.equal b.Tx.sender (Wallet.address honest_wallet)))
           txs));
  ignore (Network.mine sys.Protocol.net);
  Network.set_adversary sys.Protocol.net None;
  (match Network.receipt sys.Protocol.net (Tx.hash thief_tx) with
  | Some { State.status = State.Failed "invalid attestation"; _ } -> ()
  | Some { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "free-riding copy was accepted!");
  match Network.receipt sys.Protocol.net (Tx.hash honest_tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "honest submission rejected"

let test_unregistered_worker_rejected () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:90 ()
  in
  (* Mallory never registered: she forges a certificate for leaf 0. *)
  let mallory = { Protocol.key = Cpla.keygen ~random_bytes:(rb sys) (); cert_index = 0 } in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  match submit_raw sys ~task:task.Requester.contract ~wallet ~identity:mallory ~answer:1 with
  | { State.status = State.Failed "invalid attestation"; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "unregistered worker accepted!"

let test_submission_after_quota_rejected () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys and w2 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:1
      ~budget:90 ()
  in
  let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 1) ] in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  match submit_raw sys ~task:task.Requester.contract ~wallet ~identity:w2 ~answer:1 with
  | { State.status = State.Failed "enough answers collected"; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "over-quota submission accepted"

(* --- attacks: malicious requester --- *)

let test_requester_self_submission_linked () =
  (* The requester tries to submit an answer to her own task to downgrade
     workers: her t1 equals the stored requester tag -> linked. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:90 ()
  in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  match submit_raw sys ~task:task.Requester.contract ~wallet ~identity:requester ~answer:0 with
  | { State.status = State.Failed "linked: requester self-submission"; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "requester self-submission accepted!"

let test_false_instruction_dropped_then_fallback () =
  (* False-reporting: the requester sends a lying reward vector.  The proof
     cannot verify, the contract drops it, and after T_I the fallback pays
     workers evenly — the requester gains nothing by cheating. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys and w2 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:100 ~answer_window:10 ~instruct_window:10 ()
  in
  let wallets = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 1); (w2, 1) ] in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let _, lying_tx =
    Requester.instruct_with_rewards ~random_bytes:(rb sys) task ~storage
      ~nonce:(Network.nonce sys.Protocol.net (Wallet.address task.Requester.wallet))
      ~rewards:[| 0; 0 |]
  in
  Network.submit sys.Protocol.net lying_tx;
  ignore (Network.mine sys.Protocol.net);
  (match Network.receipt sys.Protocol.net (Tx.hash lying_tx) with
  | Some { State.status = State.Failed "invalid reward proof"; _ } -> ()
  | Some { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "lying instruction accepted!");
  Protocol.finalize sys task;
  List.iter (fun w -> check_paid ~msg:"fallback pay" sys.Protocol.net w (10 + 50)) wallets

let test_budget_not_deposited () =
  (* Deploying with value < budget must abort creation (line 3). *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:50 in
  let height = Network.height sys.Protocol.net in
  let _task, tx =
    Requester.create_task ~random_bytes:(rb sys) ~cpla:sys.Protocol.cpla
      ~key:requester.Protocol.key ~cert_index:requester.Protocol.cert_index
      ~ra_path:(Ra.path sys.Protocol.ra requester.Protocol.cert_index)
      ~ra_root:(Ra.root sys.Protocol.ra) ~wallet ~nonce:0
      ~policy:(Policy.Majority { choices = 4 })
      ~n:2 ~budget:1000 ~answer_deadline:(height + 10) ~instruct_deadline:(height + 20) ()
  in
  (* budget 1000 > wallet balance: the deploy carries value 1000 and fails
     upstream on funds; try value 0 via a hand-made tx instead *)
  ignore tx;
  let params =
    Task_contract.params_of_bytes
      (Task_contract.params_to_bytes
         {
           Task_contract.budget = 1000;
           n = 2;
           answer_deadline = height + 10;
           instruct_deadline = height + 20;
           epk = Fp.one;
           ra_root = Ra.root sys.Protocol.ra;
           auth_vk = Cpla.vk_to_bytes sys.Protocol.cpla;
           reward_vk = Bytes.empty;
           policy = Policy.Majority { choices = 4 };
           requester_attestation = Bytes.empty;
           max_per_worker = 1;
           ra_rsa_pub = Bytes.empty;
           data_digest = Bytes.empty;
         })
  in
  let tx =
    Tx.make ~wallet ~nonce:0
      ~dst:
        (Tx.Create
           { behavior = Task_contract.behavior_name; args = Task_contract.params_to_bytes params })
      ~value:10 ~payload:Bytes.empty
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed "budget not deposited"; _ } -> ()
  | Some { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "under-funded task accepted"

let test_copied_task_attestation_rejected () =
  (* A malicious requester copies a legitimate task's attestation into her
     own contract (footnote 9, requester side): prefix alpha_C differs, so
     verification fails and the contract is not created. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let legit = Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2 ~budget:90 () in
  let thief_wallet = Protocol.fresh_funded_wallet sys ~amount:200 in
  let stolen = legit.Requester.params in
  let tx =
    Tx.make ~wallet:thief_wallet ~nonce:0
      ~dst:
        (Tx.Create
           { behavior = Task_contract.behavior_name; args = Task_contract.params_to_bytes stolen })
      ~value:stolen.Task_contract.budget ~payload:Bytes.empty
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed "requester not identified"; _ } -> ()
  | Some { State.status = State.Failed m; _ } -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "stolen attestation accepted"

(* --- extensions: k submissions per worker, non-anonymous mode --- *)

let test_k_submissions_per_worker () =
  (* Footnote 11: the contract can allow k answers per identity by counting
     linked submissions instead of rejecting the first link. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let prolific = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ~max_per_worker:2 ()
  in
  let submit answer =
    submit_raw sys ~task:task.Requester.contract
      ~wallet:(Protocol.fresh_funded_wallet sys ~amount:10)
      ~identity:prolific ~answer
  in
  (match submit 1 with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "first submission rejected");
  (match submit 2 with
  | { State.status = State.Ok _; _ } -> ()
  | { State.status = State.Failed m; _ } -> Alcotest.failf "second rejected: %s" m);
  match submit 3 with
  | { State.status = State.Failed "linked: double submission"; _ } -> ()
  | _ -> Alcotest.fail "third submission over k=2 accepted!"

let test_plain_mode_end_to_end () =
  (* Section VI non-anonymous mode: a worker who waives anonymity submits
     with a classical certificate + signature, mixed with anonymous ones. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let anon = Protocol.enroll sys in
  let priv, cert = Protocol.enroll_plain sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:60 ~ra_rsa_pub:(Protocol.ra_rsa_pub_bytes sys) ()
  in
  let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (anon, 1) ] in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let tx =
    Worker.submit_plain_tx ~random_bytes:(rb sys) ~storage ~contract:task.Requester.contract
      ~wallet ~priv ~cert ~answer:1 ~nonce:0
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  (match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | Some { State.status = State.Failed m; _ } -> Alcotest.failf "plain rejected: %s" m
  | None -> Alcotest.fail "not mined");
  let rewards = Protocol.reward sys task in
  Alcotest.(check (array int)) "both modes rewarded" [| 30; 30 |] rewards;
  Alcotest.(check int) "plain worker paid" 40
    (Network.balance sys.Protocol.net (Wallet.address wallet))

let test_plain_mode_double_submission_linked () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let priv, cert = Protocol.enroll_plain sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ~ra_rsa_pub:(Protocol.ra_rsa_pub_bytes sys) ()
  in
  let submit () =
    let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
    let storage = Protocol.task_storage sys task.Requester.contract in
    let tx =
      Worker.submit_plain_tx ~random_bytes:(rb sys) ~storage
        ~contract:task.Requester.contract ~wallet ~priv ~cert ~answer:1 ~nonce:0
    in
    Network.submit sys.Protocol.net tx;
    ignore (Network.mine sys.Protocol.net);
    Option.get (Network.receipt sys.Protocol.net (Tx.hash tx))
  in
  (match submit () with
  | { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "first plain submission rejected");
  match submit () with
  | { State.status = State.Failed "linked: double submission"; _ } -> ()
  | _ -> Alcotest.fail "plain double submission accepted!"

let test_plain_mode_disabled_by_default () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let priv, cert = Protocol.enroll_plain sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:60 ()
  in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let tx =
    Worker.submit_plain_tx ~random_bytes:(rb sys) ~storage ~contract:task.Requester.contract
      ~wallet ~priv ~cert ~answer:1 ~nonce:0
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed "plain submissions disabled for this task"; _ } -> ()
  | _ -> Alcotest.fail "plain submission accepted on anonymous-only task"

let test_plain_mode_forged_cert_rejected () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:60 ~ra_rsa_pub:(Protocol.ra_rsa_pub_bytes sys) ()
  in
  (* self-signed certificate: not issued by the RA *)
  let priv = Zebra_rsa.Rsa.generate ~bits:512 ~random_bytes:(rb sys) in
  let cert = Zebralancer.Plain_auth.issue ~ra_priv:priv priv.Zebra_rsa.Rsa.pub in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let tx =
    Worker.submit_plain_tx ~random_bytes:(rb sys) ~storage ~contract:task.Requester.contract
      ~wallet ~priv ~cert ~answer:1 ~nonce:0
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed "invalid attestation"; _ } -> ()
  | _ -> Alcotest.fail "forged plain certificate accepted"

let test_worker_rejects_invalid_answer_client_side () =
  (* The client refuses to encrypt an out-of-space answer before anything
     touches the chain. *)
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:1
      ~budget:30 ()
  in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  Alcotest.check_raises "client-side range check"
    (Invalid_argument "Worker.submit_tx: answer outside the task's answer space") (fun () ->
      ignore
        (Worker.submit_tx ~random_bytes:(rb sys) ~cpla:sys.Protocol.cpla ~storage
           ~contract:task.Requester.contract ~wallet ~key:w.Protocol.key
           ~cert_index:w.Protocol.cert_index
           ~ra_path:(Ra.path sys.Protocol.ra w.Protocol.cert_index)
           ~answer:7 ~nonce:0))

(* --- worker due diligence --- *)

let test_worker_validates_task () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:90 ()
  in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let balance = Network.balance sys.Protocol.net task.Requester.contract in
  Alcotest.(check bool) "valid task accepted" true
    (Worker.validate_task ~storage ~contract:task.Requester.contract ~balance
       ~height:(Network.height sys.Protocol.net)
       ~expected_root:storage.Task_contract.params.Task_contract.ra_root
    = Ok ());
  Alcotest.(check bool) "wrong root declined" true
    (Worker.validate_task ~storage ~contract:task.Requester.contract ~balance
       ~height:(Network.height sys.Protocol.net) ~expected_root:Fp.one
    <> Ok ());
  Alcotest.(check bool) "late joiner declined" true
    (Worker.validate_task ~storage ~contract:task.Requester.contract ~balance
       ~height:(storage.Task_contract.params.Task_contract.answer_deadline + 1)
       ~expected_root:storage.Task_contract.params.Task_contract.ra_root
    <> Ok ())

(* --- audit --- *)

let test_audit_task () =
  let sys = Lazy.force sys in
  let policy = Policy.Majority { choices = 4 } in
  let task, _wallets, _rewards = Protocol.run_task sys ~policy ~budget:90 ~answers:[ 1; 2; 1 ] in
  let ok, checked = Protocol.audit_task sys ~task:task.Requester.contract in
  Alcotest.(check bool) "all attestations re-verify" true ok;
  Alcotest.(check int) "one per submission" 3 checked

let test_audit_report_batched () =
  let sys = Lazy.force sys in
  let policy = Policy.Majority { choices = 4 } in
  let task, _wallets, _rewards =
    Protocol.run_task sys ~policy ~budget:90 ~answers:[ 2; 2; 1 ]
  in
  let report = Protocol.audit_task_report sys ~task:task.Requester.contract in
  Alcotest.(check bool) "clean chain audits valid" true report.Protocol.all_valid;
  Alcotest.(check int) "every submission checked" 3 report.Protocol.checked;
  Alcotest.(check (list int)) "no offenders" [] report.Protocol.offenders;
  Alcotest.(check int) "single RLC batch" 1 report.Protocol.batches;
  Alcotest.(check int) "no fallbacks" 0 report.Protocol.fallbacks;
  (* Batch size must not change the verdict, and the wrapper agrees. *)
  let small = Protocol.audit_task_report ~batch_size:1 sys ~task:task.Requester.contract in
  Alcotest.(check bool) "batch_size-independent" true small.Protocol.all_valid;
  Alcotest.(check int) "one batch per submission" 3 small.Protocol.batches;
  let ok, checked = Protocol.audit_task sys ~task:task.Requester.contract in
  Alcotest.(check bool) "wrapper agrees" true (ok && checked = 3)

let () =
  Alcotest.run "protocol"
    [
      ( "happy-path",
        [
          Alcotest.test_case "majority end-to-end" `Quick test_end_to_end_majority;
          Alcotest.test_case "auction end-to-end" `Quick test_end_to_end_auction;
          Alcotest.test_case "partial submissions" `Quick test_partial_submissions_reward;
          Alcotest.test_case "fallback even split" `Quick test_fallback_even_split;
          Alcotest.test_case "fallback full refund" `Quick test_fallback_no_submissions_refund;
        ] );
      ( "malicious-workers",
        [
          Alcotest.test_case "double submission linked" `Quick test_double_submission_linked;
          Alcotest.test_case "cross-task unlinkability" `Quick test_same_identity_two_tasks_unlinkable;
          Alcotest.test_case "free-riding copy" `Quick test_free_riding_copy_rejected;
          Alcotest.test_case "unregistered worker" `Quick test_unregistered_worker_rejected;
          Alcotest.test_case "over quota" `Quick test_submission_after_quota_rejected;
        ] );
      ( "malicious-requester",
        [
          Alcotest.test_case "self-submission linked" `Quick test_requester_self_submission_linked;
          Alcotest.test_case "false instruction + fallback" `Quick test_false_instruction_dropped_then_fallback;
          Alcotest.test_case "budget not deposited" `Quick test_budget_not_deposited;
          Alcotest.test_case "copied attestation" `Quick test_copied_task_attestation_rejected;
        ] );
      ( "worker-client",
        [
          Alcotest.test_case "task validation" `Quick test_worker_validates_task;
          Alcotest.test_case "client-side answer check" `Quick test_worker_rejects_invalid_answer_client_side;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "k submissions per worker" `Quick test_k_submissions_per_worker;
          Alcotest.test_case "plain mode end-to-end" `Quick test_plain_mode_end_to_end;
          Alcotest.test_case "plain double submission" `Quick test_plain_mode_double_submission_linked;
          Alcotest.test_case "plain disabled by default" `Quick test_plain_mode_disabled_by_default;
          Alcotest.test_case "forged plain certificate" `Quick test_plain_mode_forged_cert_rejected;
          Alcotest.test_case "batch audit of mined submissions" `Quick test_audit_task;
          Alcotest.test_case "audit report: RLC batches" `Quick test_audit_report_batched;
        ] );
    ]
