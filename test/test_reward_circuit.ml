(* Reward-circuit tests: the SNARK statement must accept exactly the reward
   vectors the policy prescribes, for honest and adversarial provers, over
   full, partial and garbage submissions. *)

open Zebra_field
module Elgamal = Zebra_elgamal.Elgamal
module Policy = Zebralancer.Policy
module Rc = Zebralancer.Reward_circuit

let rng = Zebra_rng.Chacha20.create ~seed:"test_reward_circuit"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

type fixture = {
  circuit : Rc.t;
  esk : Elgamal.secret_key;
  epk : Elgamal.public_key;
  vk : bytes;
}

let make_fixture ~policy ~n =
  let circuit = Rc.setup ~random_bytes ~policy ~n () in
  let esk, epk = Elgamal.generate ~random_bytes in
  { circuit; esk; epk; vk = Rc.vk_bytes circuit }

(* majority over 3 answers, 4 choices — shared by most tests *)
let fx = lazy (make_fixture ~policy:(Policy.Majority { choices = 4 }) ~n:3)

let encrypt_answers fx answers =
  Array.map
    (function
      | Some a -> Elgamal.encrypt ~random_bytes fx.epk (Elgamal.encode_answer a)
      | None -> Elgamal.missing)
    answers

let policy_rewards fx ~budget answers =
  Policy.rewards (Rc.policy fx.circuit) ~budget ~n:(Rc.n fx.circuit) answers

let prove_and_verify fx ~budget ~answers ~rewards =
  let cts = encrypt_answers fx answers in
  let rho = Rc.rho_of ~policy:(Rc.policy fx.circuit) ~budget ~n:(Rc.n fx.circuit) in
  let proof = Rc.prove ~random_bytes fx.circuit ~esk:fx.esk ~rho ~cts ~rewards in
  Rc.verify ~vk_bytes:fx.vk ~epk:fx.epk ~rho ~cts ~rewards proof

let some xs = Array.of_list (List.map Option.some xs)

let test_honest_instruction_accepted () =
  let fx = Lazy.force fx in
  let answers = some [ 1; 1; 2 ] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check (array int)) "policy" [| 30; 30; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_unanimous () =
  let fx = Lazy.force fx in
  let answers = some [ 3; 3; 3 ] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_missing_slot () =
  let fx = Lazy.force fx in
  let answers = [| Some 2; None; Some 2 |] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check (array int)) "missing gets 0" [| 30; 0; 30 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_all_missing () =
  let fx = Lazy.force fx in
  let answers = [| None; None; None |] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_tie_break () =
  let fx = Lazy.force fx in
  (* one vote each: majority = smallest choice present... all three distinct:
     counts 1,1,1 for choices 0,1,3 -> majority 0 *)
  let answers = some [ 1; 0; 3 ] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check (array int)) "tie to smallest" [| 0; 30; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_false_reporting_rejected () =
  (* The false-reporting attack: requester claims nobody was correct. *)
  let fx = Lazy.force fx in
  let answers = some [ 1; 1; 2 ] in
  Alcotest.(check bool) "underpay rejected" false
    (prove_and_verify fx ~budget:90 ~answers ~rewards:[| 0; 0; 0 |])

let test_overpay_friend_rejected () =
  let fx = Lazy.force fx in
  let answers = some [ 1; 1; 2 ] in
  Alcotest.(check bool) "overpay rejected" false
    (prove_and_verify fx ~budget:90 ~answers ~rewards:[| 30; 30; 30 |]);
  Alcotest.(check bool) "swap rejected" false
    (prove_and_verify fx ~budget:90 ~answers ~rewards:[| 0; 30; 30 |])

let test_wrong_epk_rejected () =
  (* Proving with a different esk than the task key: pair(esk,epk) fails. *)
  let fx = Lazy.force fx in
  let other_esk, _ = Elgamal.generate ~random_bytes in
  let answers = some [ 1; 1; 2 ] in
  let cts = encrypt_answers fx answers in
  let rewards = policy_rewards fx ~budget:90 answers in
  let rho = Rc.rho_of ~policy:(Rc.policy fx.circuit) ~budget:90 ~n:3 in
  let proof = Rc.prove ~random_bytes fx.circuit ~esk:other_esk ~rho ~cts ~rewards in
  Alcotest.(check bool) "wrong key rejected" false
    (Rc.verify ~vk_bytes:fx.vk ~epk:fx.epk ~rho ~cts ~rewards proof)

let test_tampered_ciphertext_inputs_rejected () =
  (* Verifier inputs are rebuilt by the contract from its own storage; a
     requester substituting different ciphertexts fails verification. *)
  let fx = Lazy.force fx in
  let answers = some [ 1; 1; 2 ] in
  let cts = encrypt_answers fx answers in
  let rewards = policy_rewards fx ~budget:90 answers in
  let rho = 30 in
  let proof = Rc.prove ~random_bytes fx.circuit ~esk:fx.esk ~rho ~cts ~rewards in
  let cts' = Array.copy cts in
  cts'.(0) <- Elgamal.encrypt ~random_bytes fx.epk (Elgamal.encode_answer 2);
  Alcotest.(check bool) "substituted ciphertext rejected" false
    (Rc.verify ~vk_bytes:fx.vk ~epk:fx.epk ~rho ~cts:cts' ~rewards proof)

let test_wrong_rho_rejected () =
  let fx = Lazy.force fx in
  let answers = some [ 1; 1; 1 ] in
  let cts = encrypt_answers fx answers in
  let rewards = [| 40; 40; 40 |] in
  (* prove with inflated rho = 40 (real budget 90 -> rho 30) *)
  let proof = Rc.prove ~random_bytes fx.circuit ~esk:fx.esk ~rho:40 ~cts ~rewards in
  Alcotest.(check bool) "contract uses its own rho" false
    (Rc.verify ~vk_bytes:fx.vk ~epk:fx.epk ~rho:30 ~cts ~rewards proof)

let test_garbage_plaintext_handled () =
  (* A malicious worker encrypts a value outside the answer encoding; the
     requester must still be able to prove (garbage earns 0). *)
  let fx = Lazy.force fx in
  let garbage = Fp.of_int 123456 in
  let cts =
    [|
      Elgamal.encrypt ~random_bytes fx.epk garbage;
      Elgamal.encrypt ~random_bytes fx.epk (Elgamal.encode_answer 2);
      Elgamal.encrypt ~random_bytes fx.epk (Elgamal.encode_answer 2);
    |]
  in
  let rewards = [| 0; 30; 30 |] in
  let rho = 30 in
  let proof = Rc.prove ~random_bytes fx.circuit ~esk:fx.esk ~rho ~cts ~rewards in
  Alcotest.(check bool) "garbage-tolerant" true
    (Rc.verify ~vk_bytes:fx.vk ~epk:fx.epk ~rho ~cts ~rewards proof)

let test_threshold_circuit () =
  let fx = make_fixture ~policy:(Policy.Majority_threshold { choices = 3; quota = 3 }) ~n:3 in
  (* quota 3 not met (2-1 split): all zero *)
  let answers = some [ 0; 0; 1 ] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check (array int)) "gate closed" [| 0; 0; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards);
  (* paying despite the gate must fail *)
  Alcotest.(check bool) "gate bypass rejected" false
    (prove_and_verify fx ~budget:90 ~answers ~rewards:[| 30; 30; 0 |]);
  (* quota met *)
  let answers = some [ 0; 0; 0 ] in
  let rewards = policy_rewards fx ~budget:90 answers in
  Alcotest.(check (array int)) "gate open" [| 30; 30; 30 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:90 ~answers ~rewards)

let test_auction_circuit () =
  let fx =
    make_fixture ~policy:(Policy.Reverse_auction { winners = 2; max_bid = 7 }) ~n:4
  in
  let answers = some [ 5; 3; 6; 1 ] in
  let rewards = policy_rewards fx ~budget:100 answers in
  Alcotest.(check (array int)) "policy" [| 0; 5; 0; 5 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:100 ~answers ~rewards);
  (* paying a loser fails *)
  Alcotest.(check bool) "loser payment rejected" false
    (prove_and_verify fx ~budget:100 ~answers ~rewards:[| 5; 5; 0; 0 |])

let test_auction_circuit_edge_cases () =
  let fx =
    make_fixture ~policy:(Policy.Reverse_auction { winners = 2; max_bid = 7 }) ~n:3
  in
  (* single valid bid: reserve price *)
  let answers = [| Some 4; None; None |] in
  let rewards = policy_rewards fx ~budget:100 answers in
  Alcotest.(check (array int)) "reserve" [| 7; 0; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:100 ~answers ~rewards);
  (* budget cap binds: budget 8 -> cap 4 *)
  let answers = some [ 5; 3; 6 ] in
  let rewards = policy_rewards fx ~budget:8 answers in
  Alcotest.(check (array int)) "capped" [| 4; 4; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:8 ~answers ~rewards);
  (* ties break to earlier submission *)
  let answers = some [ 3; 3; 3 ] in
  let rewards = policy_rewards fx ~budget:100 answers in
  Alcotest.(check (array int)) "ties" [| 3; 3; 0 |] rewards;
  Alcotest.(check bool) "verifies" true (prove_and_verify fx ~budget:100 ~answers ~rewards)

let test_policy_circuit_agreement () =
  (* Property: for random answer profiles (including missing slots), the
     canonical policy evaluation is exactly what the circuit accepts, and a
     perturbed vector is rejected.  Sampled rather than qcheck'd because
     each case costs a proof. *)
  let fx = Lazy.force fx in
  let rng = Random.State.make [| 20260706 |] in
  for case = 1 to 10 do
    let answers =
      Array.init 3 (fun _ ->
          if Random.State.int rng 5 = 0 then None else Some (Random.State.int rng 4))
    in
    let budget = 30 + Random.State.int rng 200 in
    let rewards = policy_rewards fx ~budget answers in
    Alcotest.(check bool) (Printf.sprintf "case %d accepts policy vector" case) true
      (prove_and_verify fx ~budget ~answers ~rewards);
    let wrong = Array.copy rewards in
    let j = Random.State.int rng 3 in
    wrong.(j) <- wrong.(j) + 1;
    Alcotest.(check bool) (Printf.sprintf "case %d rejects perturbed vector" case) false
      (prove_and_verify fx ~budget ~answers ~rewards:wrong)
  done

let test_vk_size_grows_with_n () =
  let s3 = Bytes.length (Lazy.force fx).vk in
  let fx5 = make_fixture ~policy:(Policy.Majority { choices = 4 }) ~n:5 in
  Alcotest.(check bool) "vk grows with n" true (Bytes.length fx5.vk > s3)

let () =
  Alcotest.run "reward_circuit"
    [
      ( "majority",
        [
          Alcotest.test_case "honest accepted" `Quick test_honest_instruction_accepted;
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "missing slot" `Quick test_missing_slot;
          Alcotest.test_case "all missing" `Quick test_all_missing;
          Alcotest.test_case "tie break" `Quick test_tie_break;
          Alcotest.test_case "garbage plaintext" `Quick test_garbage_plaintext_handled;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "false reporting" `Quick test_false_reporting_rejected;
          Alcotest.test_case "overpay / swap" `Quick test_overpay_friend_rejected;
          Alcotest.test_case "wrong epk" `Quick test_wrong_epk_rejected;
          Alcotest.test_case "ciphertext substitution" `Quick test_tampered_ciphertext_inputs_rejected;
          Alcotest.test_case "wrong rho" `Quick test_wrong_rho_rejected;
        ] );
      ( "variants",
        [
          Alcotest.test_case "threshold" `Quick test_threshold_circuit;
          Alcotest.test_case "auction" `Quick test_auction_circuit;
          Alcotest.test_case "auction edges" `Quick test_auction_circuit_edge_cases;
          Alcotest.test_case "policy/circuit agreement" `Slow test_policy_circuit_agreement;
          Alcotest.test_case "vk size" `Quick test_vk_size_grows_with_n;
        ] );
    ]
