(* Observability layer: metric semantics, span nesting, JSON export
   round-trips, the disabled-mode no-op guarantee, and the typed-error
   Protocol API that the spans instrument. *)

open Zebralancer
module Obs = Zebra_obs.Obs
module Json = Zebra_obs.Json
module Cpla = Zebra_anonauth.Cpla

(* Every test owns the global registry. *)
let with_obs f () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* --- counters / gauges --- *)

let test_counter () =
  let c = Obs.Counter.make "t.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.make "t.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "make is idempotent: same cell" 43 (Obs.Counter.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c)

let test_gauge () =
  let g = Obs.Gauge.make "t.gauge" in
  Obs.Gauge.set g 17.5;
  Alcotest.(check (float 0.)) "set" 17.5 (Obs.Gauge.value g);
  Obs.Gauge.set g 3.0;
  Alcotest.(check (float 0.)) "overwrite" 3.0 (Obs.Gauge.value g)

(* --- histograms --- *)

let test_histogram () =
  let h = Obs.Histogram.make "t.hist" in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan (Obs.Histogram.min_value h));
  List.iter (Obs.Histogram.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 0.107 (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" (0.107 /. 4.) (Obs.Histogram.mean h);
  Alcotest.(check (float 0.)) "min" 0.001 (Obs.Histogram.min_value h);
  Alcotest.(check (float 0.)) "max" 0.1 (Obs.Histogram.max_value h);
  let buckets = Obs.Histogram.buckets h in
  Alcotest.(check int) "bucket counts total the count" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
  (* Upper bounds ascend and each observation is <= its bucket bound. *)
  let bounds = List.map fst buckets in
  Alcotest.(check bool) "bounds ascending" true (List.sort compare bounds = bounds);
  List.iter
    (fun (le, _) -> Alcotest.(check bool) "bound covers base" true (le >= 1e-6))
    buckets

let test_histogram_extremes () =
  let h = Obs.Histogram.make "t.hist.extreme" in
  Obs.Histogram.observe h 0.0;
  Obs.Histogram.observe h 1e-9;
  (* below base: clamps into the first bucket *)
  Obs.Histogram.observe h 1e9;
  (* beyond the last bound: clamps into the last bucket *)
  Alcotest.(check int) "all recorded" 3 (Obs.Histogram.count h);
  Alcotest.(check int) "all bucketed" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Obs.Histogram.buckets h))

(* --- spans --- *)

let test_span_nesting () =
  Alcotest.(check (option string)) "no span open" None (Obs.current_span ());
  let result =
    Obs.with_span "t.outer" (fun () ->
        Alcotest.(check (option string)) "outer open" (Some "t.outer") (Obs.current_span ());
        Obs.with_span "t.outer.inner" (fun () ->
            Alcotest.(check (option string)) "inner visible" (Some "t.outer.inner")
              (Obs.current_span ()));
        Alcotest.(check (option string)) "outer restored" (Some "t.outer")
          (Obs.current_span ());
        7)
  in
  Alcotest.(check int) "value passed through" 7 result;
  Alcotest.(check (option string)) "stack empty again" None (Obs.current_span ());
  (match Obs.span_stats "t.outer" with
  | Some (n, total) ->
    Alcotest.(check int) "outer recorded once" 1 n;
    Alcotest.(check bool) "duration non-negative" true (total >= 0.)
  | None -> Alcotest.fail "outer span not recorded");
  Alcotest.(check bool) "inner recorded" true (Obs.span_stats "t.outer.inner" <> None);
  Alcotest.(check (list string)) "span names sorted" [ "t.outer"; "t.outer.inner" ]
    (Obs.span_names ())

let test_span_records_on_raise () =
  (try Obs.with_span "t.boom" (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check (option string)) "stack unwound" None (Obs.current_span ());
  match Obs.span_stats "t.boom" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "raising region must still record its duration"

let test_disabled_noop () =
  Obs.set_enabled false;
  let c = Obs.Counter.make "t.off.counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Alcotest.(check int) "counter frozen while disabled" 0 (Obs.Counter.value c);
  let g = Obs.Gauge.make "t.off.gauge" in
  Obs.Gauge.set g 5.0;
  Alcotest.(check (float 0.)) "gauge frozen" 0.0 (Obs.Gauge.value g);
  let h = Obs.Histogram.make "t.off.hist" in
  Obs.Histogram.observe h 1.0;
  Alcotest.(check int) "histogram frozen" 0 (Obs.Histogram.count h);
  let r = Obs.with_span "t.off.span" (fun () ->
      Alcotest.(check (option string)) "no span tracked" None (Obs.current_span ());
      3)
  in
  Alcotest.(check int) "with_span still calls through" 3 r;
  Alcotest.(check (option (pair int (float 0.)))) "no span recorded" None
    (Obs.span_stats "t.off.span");
  Obs.set_enabled true

(* --- JSON --- *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 0.;
      Json.Num (-3.25);
      Json.Num 1e15;
      Json.Num 0.1;
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \x01 unicode \xe2\x9c\x93";
      Json.List [ Json.Num 1.; Json.List []; Json.Obj [] ];
      Json.Obj [ ("a", Json.Num 1.); ("b", Json.Str "x"); ("nested", Json.Obj [ ("c", Json.Null) ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      Alcotest.(check bool) ("round-trips: " ^ s) true (Json.equal j (Json.of_string s)))
    samples

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "parser accepted %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing" ]

let test_snapshot_roundtrip () =
  Obs.Counter.add (Obs.Counter.make "snap.counter") 3;
  Obs.Gauge.set (Obs.Gauge.make "snap.gauge") 2.5;
  Obs.Histogram.observe (Obs.Histogram.make "snap.hist") 0.01;
  Obs.with_span "snap.span" (fun () -> ());
  let snap = Obs.snapshot () in
  let reparsed = Json.of_string (Obs.to_json_string ()) in
  Alcotest.(check bool) "snapshot == parse (to_json_string ())" true (Json.equal snap reparsed);
  let member_exn k j =
    match Json.member k j with Some v -> v | None -> Alcotest.fail ("missing member " ^ k)
  in
  (match member_exn "counters" reparsed |> Json.member "snap.counter" with
  | Some (Json.Num 3.) -> ()
  | _ -> Alcotest.fail "counter value lost in export");
  let span = member_exn "spans" reparsed |> member_exn "snap.span" in
  (match Json.member "count" span with
  | Some (Json.Num 1.) -> ()
  | _ -> Alcotest.fail "span count lost in export");
  match Json.member "buckets" span with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "span histogram buckets lost in export"

let test_render_tree () =
  Obs.with_span "tree.phase" (fun () -> Obs.with_span "tree.phase.step" (fun () -> ()));
  Obs.Counter.incr (Obs.Counter.make "tree.count");
  let out = Obs.render_tree () in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("tree mentions " ^ needle) true (contains needle))
    [ "phase"; "step"; "count" ]

(* --- Protocol typed errors (and their spans) --- *)

(* One shared small system: CPLA setup dominates, pay it once. *)
let sys = lazy (Protocol.create_system ~tree_depth:4 ~seed:"test-obs" ())

let test_protocol_deploy_rejected () =
  let sys = Lazy.force sys in
  (* A key the RA never registered: the deployment attestation cannot match
     the on-chain root, so the task contract refuses to initialise. *)
  let forged = { Protocol.key = Cpla.keygen_rng ~rng:sys.Protocol.rng (); cert_index = 0 } in
  (match
     Protocol.publish_task_r sys ~requester:forged ~policy:(Policy.Majority { choices = 4 })
       ~n:1 ~budget:30 ()
   with
  | Error (Protocol.Deploy_rejected reason) ->
    Alcotest.(check string) "contract names the check" "requester not identified" reason
  | Ok _ -> Alcotest.fail "forged requester must not deploy"
  | Error e -> Alcotest.fail ("wrong error: " ^ Protocol.error_to_string e));
  (* The raising wrapper reports the same failure. *)
  match
    Protocol.publish_task sys ~requester:forged ~policy:(Policy.Majority { choices = 4 }) ~n:1
      ~budget:30 ()
  with
  | exception Failure m ->
    Alcotest.(check string) "wrapper message"
      "Protocol: task deployment rejected: requester not identified" m
  | _ -> Alcotest.fail "wrapper must raise"

let test_protocol_submission_rejected () =
  let sys = Lazy.force sys in
  let requester = Protocol.enroll sys in
  let w0 = Protocol.enroll sys and w1 = Protocol.enroll sys in
  match
    Protocol.publish_task_r sys ~requester ~policy:(Policy.Majority { choices = 2 }) ~n:1
      ~budget:30 ()
  with
  | Error e -> Alcotest.fail ("publish failed: " ^ Protocol.error_to_string e)
  | Ok task -> (
    (* Two submissions race into a 1-answer task: both pass client-side
       validation against the same storage view, the second reverts on-chain
       and is identified by its submission index. *)
    match
      Protocol.submit_answers_r sys ~task:task.Requester.contract
        ~workers:[ (w0, 1); (w1, 0) ]
    with
    | Error (Protocol.Submission_rejected { worker; reason }) ->
      Alcotest.(check int) "second submission blamed" 1 worker;
      Alcotest.(check string) "contract reason surfaced" "enough answers collected" reason
    | Ok _ -> Alcotest.fail "over-budget submission must be rejected"
    | Error e -> Alcotest.fail ("wrong error: " ^ Protocol.error_to_string e))

let test_protocol_phases_traced () =
  Obs.reset ();
  let sys = Lazy.force sys in
  let _task, _wallets, rewards =
    Protocol.run_task sys ~policy:(Policy.Majority { choices = 2 }) ~budget:60 ~answers:[ 0; 0 ]
  in
  Alcotest.(check int) "both majority workers paid" 2
    (Array.fold_left (fun acc r -> acc + if r > 0 then 1 else 0) 0 rewards);
  List.iter
    (fun name ->
      match Obs.span_stats name with
      | Some (n, _) when n > 0 -> ()
      | _ -> Alcotest.fail ("phase not traced: " ^ name))
    [
      "protocol.register";
      "protocol.task_publish";
      "protocol.answer_collection";
      "protocol.reward";
      "snark.setup";
      "snark.prove";
      "snark.verify";
      "chain.mine";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick (with_obs test_counter);
          Alcotest.test_case "gauge" `Quick (with_obs test_gauge);
          Alcotest.test_case "histogram" `Quick (with_obs test_histogram);
          Alcotest.test_case "histogram extremes" `Quick (with_obs test_histogram_extremes);
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick (with_obs test_span_nesting);
          Alcotest.test_case "records on raise" `Quick (with_obs test_span_records_on_raise);
          Alcotest.test_case "disabled is a no-op" `Quick (with_obs test_disabled_noop);
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick (with_obs test_json_roundtrip);
          Alcotest.test_case "json rejects garbage" `Quick (with_obs test_json_rejects_garbage);
          Alcotest.test_case "snapshot roundtrip" `Quick (with_obs test_snapshot_roundtrip);
          Alcotest.test_case "render tree" `Quick (with_obs test_render_tree);
        ] );
      ( "protocol",
        [
          Alcotest.test_case "deploy rejected" `Slow (with_obs test_protocol_deploy_rejected);
          Alcotest.test_case "submission rejected" `Slow
            (with_obs test_protocol_submission_rejected);
          Alcotest.test_case "phases traced" `Slow (with_obs test_protocol_phases_traced);
        ] );
    ]
