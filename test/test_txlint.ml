(* Chain-layer lint tests: one deliberately broken transaction kind per
   ZL1xx rule asserting the exact id fires, a correctly-declared kind
   asserting silence, synthetic leaky codecs for the ZL2xx ids, the
   deployed tx-kind registry locked at zero Error findings with exact
   accessed/declared shard agreement (the settlement-footprint
   cross-check), and a property that random marketplace runs never escape
   a declared footprint. *)

module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Contract = Zebra_chain.Contract
module Lint = Zebra_lint.Lint
module Txlint = Zebra_lint.Txlint
module Seclint = Zebra_lint.Seclint
open Zebralancer

let rng = Zebra_rng.Chacha20.create ~seed:"test_txlint"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let shard_of_address a = State.shard_of_key (Address.to_hex a)

let qtest name ?(count = 3) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let rule_ids (r : Txlint.report) = List.map (fun f -> f.Lint.rule) r.Txlint.findings

let check_fires rule ids =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires (got: %s)" rule (String.concat ", " ids))
    true (List.mem rule ids)

let check_silent rule ids =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent (got: %s)" rule (String.concat ", " ids))
    false (List.mem rule ids)

(* --- the lint-scatter fixture behaviour ---

   Transfers the call value to an address decoded from the payload — a
   state access the caller can choose to declare (or not) in the
   transaction footprint, which is exactly the degree of freedom ZL101 and
   ZL102 police.  An empty payload reverts, giving ZL103 its vacuous
   case. *)
module Scatter = struct
  type storage = unit

  let name = "lint-scatter"
  let init _ctx _args = ()

  let receive ctx () payload =
    if Bytes.length payload = 0 then raise (Contract.Revert "lint-scatter: empty payload");
    ((), [ Contract.Transfer (Address.of_bytes payload, ctx.Contract.value) ])

  let encode () = Bytes.empty
  let decode _ = ()
end

let () = Contract.register (module Scatter)

type fixture = {
  st : State.t;
  wallet : Wallet.t;
  scatter : Address.t;
  payee : Address.t;  (** shard disjoint from sender and contract *)
  unused : Address.t;  (** shard disjoint from sender, contract and payee *)
}

let fixture =
  lazy
    (let wallet = Wallet.generate ~random_bytes () in
     let sender = Wallet.address wallet in
     let st = State.create ~genesis:[ (sender, 1_000) ] in
     let deploy =
       Tx.make ~wallet ~nonce:0
         ~dst:(Tx.Create { behavior = Scatter.name; args = Bytes.empty })
         ~value:0 ~payload:Bytes.empty
     in
     (match State.apply_tx st ~height:0 deploy with
     | { State.status = State.Ok _; _ } -> ()
     | { State.status = State.Failed m; _ } -> failwith ("fixture deploy failed: " ^ m));
     let scatter = Address.of_creator sender 0 in
     (* Mint fixture addresses in pairwise-disjoint shards, so an
        undeclared access and a vacuous declaration are unambiguous. *)
     let rec fresh used k =
       let a = Address.of_creator scatter k in
       if List.mem (shard_of_address a) used then fresh used (k + 1) else a
     in
     let used = [ shard_of_address sender; shard_of_address scatter ] in
     let payee = fresh used 0 in
     let unused = fresh (shard_of_address payee :: used) 0 in
     { st; wallet; scatter; payee; unused })

(* Trace one scatter call (nonce 1: the only mutation of [st] is the
   deploy — tracing rolls every case back). *)
let scatter_report ~kind ~footprint ~payload =
  let fx = Lazy.force fixture in
  let tx =
    Tx.make_ext ~wallet:fx.wallet ~fee:0 ~footprint ~nonce:1 ~dst:(Tx.Call fx.scatter) ~value:5
      ~payload
  in
  Txlint.analyze ~kind [ Txlint.trace_case ~kind ~case:"fixture" fx.st ~height:1 tx ]

(* --- rule table --- *)

let test_rule_table () =
  let ids = List.map (fun (id, _, _) -> id) Lint.rules in
  Alcotest.(check bool) "ids sorted and unique" true (List.sort_uniq compare ids = ids);
  let severity id =
    let _, _, s = List.find (fun (i, _, _) -> i = id) Lint.rules in
    s
  in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " is Error") true (severity id = Lint.Error))
    [ "ZL101"; "ZL102"; "ZL103"; "ZL201" ];
  Alcotest.(check bool) "ZL110 is Info" true (severity "ZL110" = Lint.Info);
  Alcotest.(check bool) "ZL202 is Warn" true (severity "ZL202" = Lint.Warn)

(* --- ZL1xx negative fixtures --- *)

let test_under_declared () =
  let fx = Lazy.force fixture in
  let r =
    scatter_report ~kind:"scatter.under" ~footprint:[] ~payload:(Address.to_bytes fx.payee)
  in
  check_fires "ZL101" (rule_ids r);
  check_silent "ZL102" (rule_ids r);
  check_silent "ZL103" (rule_ids r);
  Alcotest.(check bool) "payee shard was accessed" true
    (List.mem (shard_of_address fx.payee) r.Txlint.accessed_shards);
  Alcotest.(check bool) "payee shard was not declared" false
    (List.mem (shard_of_address fx.payee) r.Txlint.declared_shards)

let test_over_declared () =
  let fx = Lazy.force fixture in
  let r =
    scatter_report ~kind:"scatter.over"
      ~footprint:[ fx.payee; fx.unused ]
      ~payload:(Address.to_bytes fx.payee)
  in
  check_fires "ZL102" (rule_ids r);
  check_silent "ZL101" (rule_ids r);
  (* The finding names the vacuous address, not the useful one. *)
  let msgs =
    List.filter_map
      (fun f -> if f.Lint.rule = "ZL102" then Some f.Lint.message else None)
      r.Txlint.findings
  in
  Alcotest.(check int) "one vacuous declaration" 1 (List.length msgs);
  Alcotest.(check bool) "finding names the unused address" true
    (List.exists
       (fun m ->
         let hex = Address.to_hex fx.unused in
         let needle_len = String.length hex in
         let rec occurs i =
           i + needle_len <= String.length m && (String.sub m i needle_len = hex || occurs (i + 1))
         in
         occurs 0)
       msgs)

let test_vacuous_case () =
  let r = scatter_report ~kind:"scatter.revert" ~footprint:[] ~payload:Bytes.empty in
  check_fires "ZL103" (rule_ids r);
  check_silent "ZL101" (rule_ids r)

let test_exact_declaration_silent () =
  let fx = Lazy.force fixture in
  let r =
    scatter_report ~kind:"scatter.ok" ~footprint:[ fx.payee ]
      ~payload:(Address.to_bytes fx.payee)
  in
  Alcotest.(check int) "no errors" 0 (Txlint.errors r);
  Alcotest.(check int) "no warnings" 0 (Txlint.warnings r);
  check_fires "ZL110" (rule_ids r);
  Alcotest.(check (list int)) "accessed = declared" r.Txlint.accessed_shards r.Txlint.declared_shards;
  let sig_ = Txlint.conflict_signature r in
  Alcotest.(check bool) ("signature names the kind: " ^ sig_) true
    (String.length sig_ > 10 && String.sub sig_ 0 10 = "scatter.ok")

(* --- ZL2xx negative fixtures --- *)

let codec_rule_ids (r : Seclint.report) = List.map (fun f -> f.Lint.rule) r.Seclint.findings

let test_leaky_codec () =
  let canary = random_bytes 32 in
  (* The PR 5 encoder shape: the trapdoor appended after the honest
     payload. *)
  let leaked = Bytes.cat (random_bytes 100) (Bytes.cat canary (random_bytes 4)) in
  let r =
    Seclint.analyze
      {
        Seclint.codec = "fixture.leaky";
        secrets = [ ("fixture.trapdoor", canary) ];
        outputs = [ (Seclint.Serialization, "old keypair encoder", leaked) ];
      }
  in
  check_fires "ZL201" (codec_rule_ids r);
  Alcotest.(check int) "one error" 1 (Seclint.errors r)

let test_leaky_codec_reversed () =
  let canary = random_bytes 32 in
  let rev = Bytes.init 32 (fun i -> Bytes.get canary (31 - i)) in
  let r =
    Seclint.analyze
      {
        Seclint.codec = "fixture.leaky-le";
        secrets = [ ("fixture.trapdoor", canary) ];
        outputs = [ (Seclint.Store_put, "little-endian encoder", Bytes.cat rev (random_bytes 8)) ];
      }
  in
  check_fires "ZL201" (codec_rule_ids r)

let test_clean_codec_silent () =
  let r =
    Seclint.analyze
      {
        Seclint.codec = "fixture.clean";
        secrets = [ ("fixture.trapdoor", random_bytes 32) ];
        outputs = [ (Seclint.Serialization, "honest encoder", random_bytes 256) ];
      }
  in
  Alcotest.(check (list string)) "silent" [] (codec_rule_ids r)

let test_short_canary () =
  let r =
    Seclint.analyze
      {
        Seclint.codec = "fixture.weak";
        secrets = [ ("fixture.stub", random_bytes 4) ];
        outputs = [ (Seclint.Log_line, "log", random_bytes 64) ];
      }
  in
  check_fires "ZL202" (codec_rule_ids r);
  Alcotest.(check int) "warn not error" 0 (Seclint.errors r)

(* --- deployed registry locks --- *)

let test_registry_zero_errors () =
  let reports = Txlint.analyze_all (Deployed_txs.cases ()) in
  Alcotest.(check bool) "at least 10 kinds" true (List.length reports >= 10);
  List.iter
    (fun (r : Txlint.report) ->
      Alcotest.(check int) (r.Txlint.kind ^ ": zero errors") 0 (Txlint.errors r);
      Alcotest.(check (list int))
        (r.Txlint.kind ^ ": accessed = declared")
        r.Txlint.accessed_shards r.Txlint.declared_shards)
    reports

let test_registry_kinds () =
  let expected =
    [
      "deploy.zebralancer-ra";
      "deploy.zebralancer-reputation";
      "deploy.zebralancer-task";
      "transfer";
      "zebralancer-ra.set-root";
      "zebralancer-reputation.advance-epoch";
      "zebralancer-reputation.claim";
      "zebralancer-reputation.credit";
      "zebralancer-task.finalize";
      "zebralancer-task.instruct";
      "zebralancer-task.submit";
    ]
  in
  Alcotest.(check (list string)) "registry covers every deployed kind" expected (Deployed_txs.kinds ())

(* The settlement-footprint cross-check: [Requester.settlement_footprint]
   is the single source of the payee declarations for both Instruct and
   Finalize, so those kinds must declare exactly what execution touches —
   no escape, no vacuous shard. *)
let test_settlement_footprint_exact () =
  let reports = Txlint.analyze_all (Deployed_txs.cases ()) in
  List.iter
    (fun kind ->
      match List.find_opt (fun (r : Txlint.report) -> r.Txlint.kind = kind) reports with
      | None -> Alcotest.fail ("kind missing from registry: " ^ kind)
      | Some r ->
        Alcotest.(check int) (kind ^ ": zero errors") 0 (Txlint.errors r);
        Alcotest.(check (list int))
          (kind ^ ": declared exactly the accessed shards")
          r.Txlint.accessed_shards r.Txlint.declared_shards)
    [ "zebralancer-task.instruct"; "zebralancer-task.finalize" ]

let test_registry_codecs_clean () =
  List.iter
    (fun (c : Seclint.codec_case) ->
      let r = Seclint.analyze c in
      Alcotest.(check int) (c.Seclint.codec ^ ": zero errors") 0 (Seclint.errors r);
      Alcotest.(check int) (c.Seclint.codec ^ ": zero warnings") 0 (Seclint.warnings r))
    (Deployed_txs.codecs ())

(* --- property: kinds that pass ZL1xx never escape at runtime --- *)

let prop_no_conflict_retries =
  qtest "random marketplace runs never escape a declared footprint" ~count:3
    QCheck2.Gen.(triple (int_range 2 3) (int_range 1 2) (int_range 1 3))
    (fun (tasks, workers_per_task, inflight) ->
      let config =
        {
          Load.default_config with
          Load.tasks;
          workers_per_task;
          inflight;
          requesters = 2;
          workers = 3;
          budget = 20 * workers_per_task;
          seed = Printf.sprintf "test_txlint/load/%d/%d/%d" tasks workers_per_task inflight;
        }
      in
      let r = Load.run ~config () in
      Load.ok r && r.Load.conflict_retries = 0)

let () =
  Alcotest.run "txlint"
    [
      ("rules", [ Alcotest.test_case "table" `Quick test_rule_table ]);
      ( "zl1xx-fixtures",
        [
          Alcotest.test_case "under-declared -> ZL101" `Quick test_under_declared;
          Alcotest.test_case "over-declared -> ZL102" `Quick test_over_declared;
          Alcotest.test_case "vacuous case -> ZL103" `Quick test_vacuous_case;
          Alcotest.test_case "exact declaration is silent" `Quick test_exact_declaration_silent;
        ] );
      ( "zl2xx-fixtures",
        [
          Alcotest.test_case "leaky codec -> ZL201" `Quick test_leaky_codec;
          Alcotest.test_case "reversed-endian leak -> ZL201" `Quick test_leaky_codec_reversed;
          Alcotest.test_case "clean codec is silent" `Quick test_clean_codec_silent;
          Alcotest.test_case "short canary -> ZL202" `Quick test_short_canary;
        ] );
      ( "registry",
        [
          Alcotest.test_case "tx kinds are zero-error" `Slow test_registry_zero_errors;
          Alcotest.test_case "kind list is locked" `Slow test_registry_kinds;
          Alcotest.test_case "settlement footprints are exact" `Slow test_settlement_footprint_exact;
          Alcotest.test_case "codec registry is clean" `Slow test_registry_codecs_clean;
        ] );
      ("property", [ prop_no_conflict_retries ]);
    ]
