(* Fault-injection layer tests: the deterministic schedule, the network
   and store fault hooks, the protocol retry drivers that ride the faults
   out, and the end-to-end chaos invariants (settle-or-typed-error,
   replica agreement, supply conservation, trace replayability). *)

open Zebralancer
open Zebra_chain
module Faults = Zebra_faults.Faults

let rng = Zebra_rng.Chacha20.create ~seed:"test_faults"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let qtest name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let wallet_pool = lazy (Array.init 3 (fun _ -> Wallet.generate ~bits:512 ~random_bytes ()))
let wallet i = (Lazy.force wallet_pool).(i)

let fresh_net ?(num_nodes = 3) () =
  let genesis = List.init 3 (fun i -> (Wallet.address (wallet i), 1_000_000)) in
  Network.create ~num_nodes ~genesis ()

let transfer ~from ~to_ ~nonce ~value =
  Tx.make ~wallet:(wallet from) ~nonce ~dst:(Tx.Call (Wallet.address (wallet to_))) ~value
    ~payload:Bytes.empty

(* --- plan DSL --- *)

let test_plan_roundtrip () =
  List.iter
    (fun s ->
      let spec = Faults.spec_of_string s in
      Alcotest.(check string) s s (Faults.spec_to_string spec))
    [
      "none";
      "drop=0.1";
      "drop=0.2,delay=0.1:3,dup=0.05,reorder=0.5";
      "lose=0.3,corrupt=0.1";
      "crash=1:5-9,crash=2:12-14,withhold,noinstruct";
      "partition=2|1:6-9";
      "byzmine=0:fork";
      "byzmine=1:reorder";
      "eclipse=1:6-8,collude=2";
      "drop=0.1,crash=2:12-14,partition=2|1:6-9,byzmine=1:censor,eclipse=1:6-8,collude=2,withhold";
    ];
  Alcotest.(check string) "empty spells none" "none" (Faults.spec_to_string (Faults.spec_of_string ""))

let test_plan_rejects_malformed () =
  List.iter
    (fun s ->
      match Faults.spec_of_string s with
      | _ -> Alcotest.failf "accepted malformed plan %S" s
      | exception Invalid_argument _ -> ())
    [
      "drop=1.5";
      "drop=x";
      "delay=0.1:0";
      "crash=1:9-5";
      "crash=-1:2-3";
      "warp=0.1";
      "withhold=1";
      "partition=2|1:9-5";
      "partition=0|1:2-3";
      "partition=2|1";
      "byzmine=1:evil";
      "byzmine=-1:reorder";
      "byzmine=1:reorder,byzmine=2:censor";
      "eclipse=1:9-5";
      "eclipse=-1:2-3";
      "collude=-1";
      (* a partition window may not touch a crash window (margins included):
         fork choice over a replica that is also rebooting is undefined *)
      "crash=1:6-9,partition=2|1:8-12";
      "partition=2|1:6-9,partition=2|1:9-12";
    ]

let prop_schedule_deterministic =
  qtest "unit_float: pure function of (seed, site, a, b)" ~count:200
    QCheck2.Gen.(triple (int_range 1 7) (int_range 0 1000) (int_range 0 1000))
    (fun (site, a, b) ->
      let t1 = Faults.create ~seed:"s" Faults.none in
      let t2 = Faults.create ~seed:"s" Faults.none in
      let t3 = Faults.create ~seed:"other" Faults.none in
      let site = Int32.of_int site in
      let u1 = Faults.unit_float t1 ~site ~a ~b in
      let u2 = Faults.unit_float t2 ~site ~a ~b in
      let u3 = Faults.unit_float t3 ~site ~a ~b in
      u1 = u2 && u1 >= 0. && u1 < 1. && (u1 <> u3 || a = b (* different seeds: collisions only by chance *)))

(* --- network faults --- *)

let test_delay_exactly_k_blocks () =
  let net = fresh_net () in
  let f = Faults.create ~seed:"delay" { Faults.none with Faults.delay = 1.0; delay_blocks = 2 } in
  Faults.attach f net;
  let tx = transfer ~from:0 ~to_:1 ~nonce:0 ~value:5 in
  Network.submit net tx;
  ignore (Network.mine net);
  (* postponed at height 1, release 3 *)
  Alcotest.(check int) "held in the delay buffer" 1 (Network.delayed net);
  Alcotest.(check (option reject)) "not mined at height 1" None (Network.receipt net (Tx.hash tx));
  ignore (Network.mine net);
  Alcotest.(check (option reject)) "not mined at height 2" None (Network.receipt net (Tx.hash tx));
  ignore (Network.mine net);
  (* the release is exempt from a fresh delay draw: exactly k blocks late *)
  (match Network.receipt net (Tx.hash tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "released transaction must execute at height 3");
  Alcotest.(check int) "value arrived" 1_000_005 (Network.balance net (Wallet.address (wallet 1)));
  Alcotest.(check int) "one delay event" 1
    (List.length (List.filter (fun l -> String.length l >= 4) (Faults.trace f)))

(* Regression: a fault-delayed transaction rejoins {e ahead} of the
   fee-ordered mempool.  Under a sustained high-fee flood the zero-fee
   victim must still land exactly at its release height, first in the
   block — otherwise the bounded delay the protocol's retry drivers ride
   out (see [Protocol]) would silently become fee starvation. *)
let test_delayed_exempt_from_fee_flood () =
  let net = fresh_net () in
  let victim = transfer ~from:0 ~to_:2 ~nonce:0 ~value:7 in
  let held = ref false in
  Network.set_mempool_fault net
    (Some
       (fun ~height txs ->
         if !held then (txs, [])
         else
           let now, hold =
             List.partition (fun tx -> not (Bytes.equal (Tx.hash tx) (Tx.hash victim))) txs
           in
           if hold <> [] then held := true;
           (now, List.map (fun tx -> (height + 2, tx)) hold)));
  let flood_nonce = ref 0 in
  let flood () =
    for _ = 1 to 3 do
      Network.submit net
        (Tx.make_ext ~wallet:(wallet 1) ~fee:9 ~footprint:[] ~nonce:!flood_nonce
           ~dst:(Tx.Call (Wallet.address (wallet 0)))
           ~value:1 ~payload:Bytes.empty);
      incr flood_nonce
    done
  in
  let before = Network.balance net (Wallet.address (wallet 2)) in
  Network.submit net victim;
  flood ();
  ignore (Network.mine net);
  (* postponed at height 1, release 3; the flood mines on around it *)
  Alcotest.(check int) "held in the delay buffer" 1 (Network.delayed net);
  flood ();
  ignore (Network.mine net);
  Alcotest.(check (option reject)) "not mined at height 2" None
    (Network.receipt net (Tx.hash victim));
  flood ();
  ignore (Network.mine net);
  (match Network.receipt net (Tx.hash victim) with
  | Some { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "released transaction must execute at height 3");
  Alcotest.(check int) "value arrived despite the flood" (before + 7)
    (Network.balance net (Wallet.address (wallet 2)));
  let release_block =
    match List.rev (Network.blocks net) with b :: _ -> b | [] -> assert false
  in
  match release_block.Block.txs with
  | first :: _ ->
    Alcotest.(check bytes) "released tx sealed ahead of the fee-9 flood" (Tx.hash victim)
      (Tx.hash first)
  | [] -> Alcotest.fail "release block is empty"

let test_drop_needs_resubmit () =
  let net = fresh_net () in
  let f = Faults.create ~seed:"drop" { Faults.none with Faults.drop = 1.0 } in
  Faults.attach f net;
  let tx = transfer ~from:0 ~to_:1 ~nonce:0 ~value:5 in
  Network.submit net tx;
  ignore (Network.mine net);
  Alcotest.(check (option reject)) "dropped" None (Network.receipt net (Tx.hash tx));
  Alcotest.(check int) "not pending either: the broadcast is gone" 0 (Network.pending net);
  Alcotest.(check int) "not delayed" 0 (Network.delayed net);
  (* the client's resubmission after the fault clears succeeds *)
  Faults.detach net;
  Network.submit net tx;
  ignore (Network.mine net);
  match Network.receipt net (Tx.hash tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | _ -> Alcotest.fail "resubmission must mine"

let test_crash_and_resync () =
  let net = fresh_net ~num_nodes:3 () in
  let f =
    Faults.create ~seed:"crash"
      { Faults.none with Faults.crashes = [ { Faults.node = 1; from_height = 2; to_height = 3 } ] }
  in
  Faults.attach f net;
  Network.submit net (transfer ~from:0 ~to_:1 ~nonce:0 ~value:1);
  ignore (Network.mine net);
  Alcotest.(check bool) "up at height 1" true (Network.node_up net 1);
  Network.submit net (transfer ~from:0 ~to_:1 ~nonce:1 ~value:2);
  ignore (Network.mine net);
  Alcotest.(check bool) "down during the window" false (Network.node_up net 1);
  Network.submit net (transfer ~from:2 ~to_:0 ~nonce:0 ~value:3);
  ignore (Network.mine net);
  Alcotest.(check bool) "still down at the window end" false (Network.node_up net 1);
  ignore (Network.mine net);
  (* restarted before block 4 formed: replayed blocks 2-3 from peers *)
  Alcotest.(check bool) "back up at height 4" true (Network.node_up net 1);
  let root = Network.state_root net in
  for node = 0 to Network.num_nodes net - 1 do
    Alcotest.(check bytes)
      (Printf.sprintf "node %d agrees after resync" node)
      root
      (Network.node_state_root net node)
  done;
  let trace = Faults.trace f in
  Alcotest.(check bool) "crash traced" true
    (List.exists (fun l -> l = "h=2 node.crash node=1 until=3") trace);
  Alcotest.(check bool) "resync traced" true
    (List.exists (fun l -> l = "h=4 node.restart node=1 resync=ok") trace)

let test_crash_refuses_last_replica () =
  let net = fresh_net ~num_nodes:1 () in
  let f =
    Faults.create ~seed:"last"
      { Faults.none with Faults.crashes = [ { Faults.node = 0; from_height = 1; to_height = 2 } ] }
  in
  Faults.attach f net;
  Network.submit net (transfer ~from:0 ~to_:1 ~nonce:0 ~value:1);
  let receipts = Network.mine net in
  (* the schedule wanted node 0 down, the network refused, the block mined *)
  Alcotest.(check int) "block still executed" 1 (List.length receipts);
  let has_prefix p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  Alcotest.(check bool) "refusal traced" true
    (List.exists (has_prefix "h=1 node.crash node=0 refused") (Faults.trace f));
  Alcotest.(check bool) "node stayed up" true (Network.node_up net 0)

let test_finish_restarts_down_nodes () =
  let net = fresh_net ~num_nodes:3 () in
  let f =
    Faults.create ~seed:"finish"
      { Faults.none with Faults.crashes = [ { Faults.node = 2; from_height = 1; to_height = 99 } ] }
  in
  Faults.attach f net;
  Network.submit net (transfer ~from:0 ~to_:1 ~nonce:0 ~value:4);
  ignore (Network.mine net);
  ignore (Network.mine net);
  Alcotest.(check bool) "down mid-run" false (Network.node_up net 2);
  Faults.finish f net;
  Alcotest.(check bool) "finish brings it back" true (Network.node_up net 2);
  Alcotest.(check bytes) "and it agrees" (Network.state_root net) (Network.node_state_root net 2)

(* --- protocol retry over faults --- *)

let test_protocol_timeout_is_typed () =
  (* Total broadcast loss: every phase must fail with Timed_out after
     exactly max_attempts broadcasts — never an exception. *)
  let sys = Protocol.create_system ~seed:"test-faults-timeout" () in
  let f = Faults.create ~seed:"timeout" { Faults.none with Faults.drop = 1.0 } in
  Faults.attach f sys.Protocol.net;
  (match Protocol.enroll_r sys with
  | Error (Protocol.Timed_out { attempts; _ }) ->
    Alcotest.(check int) "gave up after max_attempts" Protocol.default_retry.Protocol.max_attempts
      attempts
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.error_to_string e)
  | Ok _ -> Alcotest.fail "cannot succeed under total loss");
  Faults.detach sys.Protocol.net;
  (* the same system recovers once the fault clears *)
  match Protocol.enroll_r sys with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean retry failed: %s" (Protocol.error_to_string e)

let test_protocol_rides_out_bounded_delay () =
  let sys = Protocol.create_system ~seed:"test-faults-delay" () in
  let f =
    Faults.create ~seed:"ride" { Faults.none with Faults.delay = 1.0; delay_blocks = 2 }
  in
  Faults.attach f sys.Protocol.net;
  (* delay_blocks = backoff_blocks: every transaction arrives exactly at
     the edge of the confirmation window *)
  (match Protocol.enroll_r sys with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bounded delay must be ridden out: %s" (Protocol.error_to_string e));
  Faults.detach sys.Protocol.net

(* --- end-to-end chaos rounds --- *)

let check_invariants name (o : Chaos.outcome) =
  Alcotest.(check bool) (name ^ ": replicas agree") true o.Chaos.replicas_agree;
  Alcotest.(check bool) (name ^ ": supply conserved") true o.Chaos.supply_conserved;
  Alcotest.(check bool) (name ^ ": store recovered") true o.Chaos.store_recovered;
  let why = match o.Chaos.indexer_error with None -> "" | Some e -> " (" ^ e ^ ")" in
  Alcotest.(check bool) (name ^ ": indexer agrees" ^ why) true o.Chaos.indexer_agrees

let trace_has (o : Chaos.outcome) needle =
  let contains line =
    let n = String.length needle and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  List.exists contains o.Chaos.trace

let test_chaos_drop_recovers () =
  let plan = Faults.spec_of_string "drop=0.15,delay=0.15:2,dup=0.1" in
  let o = Chaos.run ~seed:"chaos-smoke" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded rewards -> Alcotest.(check int) "all three rewarded" 3 (Array.length rewards)
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "drop" o;
  Alcotest.(check bool) "faults actually fired" true (o.Chaos.trace <> [])

let test_chaos_crash_restart_agreement () =
  let plan = Faults.spec_of_string "crash=1:6-9,drop=0.1" in
  let o = Chaos.run ~seed:"chaos-crash" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "crash" o;
  Alcotest.(check bool) "crash traced" true
    (List.exists (fun l -> l = "h=6 node.crash node=1 until=9") o.Chaos.trace);
  Alcotest.(check bool) "resync traced" true
    (List.exists (fun l -> l = "h=10 node.restart node=1 resync=ok") o.Chaos.trace)

let test_chaos_withholding_worker () =
  let plan = Faults.spec_of_string "withhold" in
  let o = Chaos.run ~n:3 ~seed:"chaos-withhold" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded rewards ->
    (* the circuit arity stays n; the withheld slot is a zero pad *)
    Alcotest.(check int) "reward vector keeps the circuit arity" 3 (Array.length rewards);
    Alcotest.(check bool) "payout within budget" true
      (Array.fold_left ( + ) 0 rewards <= 60)
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "withhold" o

let test_chaos_timeout_fallback_payout () =
  let plan = Faults.spec_of_string "noinstruct" in
  let o = Chaos.run ~seed:"chaos-noinstruct" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Finalized -> ()
  | s -> Alcotest.failf "expected the timeout fallback, got %s" (Chaos.settlement_to_string s));
  check_invariants "noinstruct" o

let test_chaos_trace_replays () =
  let plan = Faults.spec_of_string "drop=0.2,delay=0.2:2,dup=0.1,reorder=0.3,lose=0.1" in
  let o1 = Chaos.run ~seed:"chaos-replay" ~plan () in
  let o2 = Chaos.run ~seed:"chaos-replay" ~plan () in
  Alcotest.(check (list string)) "identical fault trace" o1.Chaos.trace o2.Chaos.trace;
  Alcotest.(check string) "identical state root" o1.Chaos.state_root o2.Chaos.state_root;
  Alcotest.(check string) "identical settlement"
    (Chaos.settlement_to_string o1.Chaos.settlement)
    (Chaos.settlement_to_string o2.Chaos.settlement);
  Alcotest.(check int) "identical height" o1.Chaos.final_height o2.Chaos.final_height

(* Chaos under the sharded parallel executor: the same (seed, plan) pair
   must produce the identical outcome — trace, settlement, root — at 1 and
   4 domains, with the fee-ordered mempool and footprint-declared
   settlement transactions in the loop.  This is the in-suite twin of the
   scripts/check.sh chaos gate. *)
let test_chaos_identical_across_domains () =
  let with_domains n f =
    let prev = Zebra_parallel.Parallel.default_domains () in
    Fun.protect
      ~finally:(fun () -> Zebra_parallel.Parallel.set_default_domains prev)
      (fun () ->
        Zebra_parallel.Parallel.set_default_domains n;
        f ())
  in
  let plan = Faults.spec_of_string "drop=0.1,delay=0.2:2,dup=0.05" in
  let run_at n = with_domains n (fun () -> Chaos.run ~seed:"chaos-domains" ~plan ()) in
  let o1 = run_at 1 in
  let o4 = run_at 4 in
  Alcotest.(check string) "outcome identical at 1 and 4 domains"
    (Chaos.outcome_to_string o1) (Chaos.outcome_to_string o4);
  (match o4.Chaos.settlement with
  | Chaos.Rewarded _ | Chaos.Finalized -> ()
  | Chaos.Aborted _ -> Alcotest.fail "bounded plan must settle");
  check_invariants "domains" o4

(* --- byzantine adversary corpus --- *)

(* Partition where fork choice keeps the canonical chain: the minority
   full-syncs, nothing reorgs, the indexer never notices. *)
let test_chaos_partition_keep () =
  let plan = Faults.spec_of_string "partition=2|1:6-9" in
  let o = Chaos.run ~seed:"part-1" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "partition-keep" o;
  Alcotest.(check bool) "partition traced" true (trace_has o "partition.start majority=2 minority=1");
  Alcotest.(check bool) "canonical chain kept" true (trace_has o "partition.heal canonical chain kept");
  Alcotest.(check int) "no reorg seen by the indexer" 0 o.Chaos.indexer_reorgs

(* Partition where fork choice adopts the minority branch: the whole
   majority-side history since the fork point reorgs, its transactions are
   requeued and re-settle exactly once, and the indexer detects the
   invalidated cursor and re-indexes from genesis. *)
let test_chaos_partition_reorg () =
  let plan = Faults.spec_of_string "partition=2|1:6-9" in
  let o = Chaos.run ~seed:"part-2" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "partition-reorg" o;
  Alcotest.(check bool) "minority branch adopted" true
    (trace_has o "partition.heal fork adopted: reorged 4 block(s)");
  Alcotest.(check int) "indexer survived exactly one reorg" 1 o.Chaos.indexer_reorgs

let test_chaos_byzantine_reorder () =
  let plan = Faults.spec_of_string "byzmine=1:reorder,drop=0.05" in
  let o = Chaos.run ~seed:"byz-1" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "byz-reorder" o;
  Alcotest.(check bool) "reorder traced" true (trace_has o "byzmine.reorder node=1")

let test_chaos_byzantine_censor () =
  let plan = Faults.spec_of_string "byzmine=2:censor" in
  let o = Chaos.run ~seed:"byz-1" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "censorship is bounded delay, got %s" (Chaos.settlement_to_string s));
  check_invariants "byz-censor" o;
  Alcotest.(check bool) "censorship traced" true (trace_has o "byzmine.censor node=2")

(* A byzantine miner whose conflicting sibling block WINS fork choice: a
   depth-1 reorg every replica adopts, after which the round still settles
   and the indexer still agrees. *)
let test_chaos_byzantine_fork_adopted () =
  let plan = Faults.spec_of_string "byzmine=0:fork" in
  let o = Chaos.run ~seed:"byz-20" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded _ -> ()
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "byz-fork" o;
  Alcotest.(check bool) "adopted sibling traced" true
    (trace_has o "sibling adopted (reorg depth 1)")

(* Eclipse of one worker: its submission is held for the window and lands
   at release, inside the answer deadline — everyone still gets paid. *)
let test_chaos_eclipse_release () =
  let plan = Faults.spec_of_string "eclipse=1:6-9" in
  let o = Chaos.run ~seed:"ec-1" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded rewards ->
    Alcotest.(check (array int)) "eclipsed worker still paid" [| 20; 20; 20 |] rewards
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "eclipse" o;
  Alcotest.(check bool) "hold traced" true (trace_has o "eclipse.hold")

(* Collusion below the majority threshold: the deviant answer loses the
   vote and the colluder is the one who goes unpaid. *)
let test_chaos_collusion_minority_unpaid () =
  let plan = Faults.spec_of_string "collude=1" in
  let o = Chaos.run ~seed:"col-1" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded rewards ->
    Alcotest.(check (array int)) "colluder unpaid, honest majority paid" [| 20; 20; 0 |] rewards
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "collude-minority" o

(* Collusion AT the majority threshold: 2 of 3 workers flip the vote, the
   honest worker goes unpaid.  The ledger invariants all hold — the attack
   succeeds against the policy, not the chain — which is exactly the
   documented limit of majority-vote incentives. *)
let test_chaos_collusion_majority_flips () =
  let plan = Faults.spec_of_string "collude=2" in
  let o = Chaos.run ~seed:"col-2" ~plan () in
  (match o.Chaos.settlement with
  | Chaos.Rewarded rewards ->
    Alcotest.(check (array int)) "colluding majority captures the reward" [| 0; 20; 20 |] rewards
  | s -> Alcotest.failf "expected rewards, got %s" (Chaos.settlement_to_string s));
  check_invariants "collude-majority" o

(* Fee-ordered sealing must preserve per-sender nonce order no matter what
   the fault pipeline does to the mempool (drops, delays, duplicates,
   shuffles).  Canonical receipts only — a duplicate's second inclusion
   fails nonce replay by design. *)
let prop_fee_order_keeps_nonce_lanes_under_faults =
  qtest "fee-ordered sealing keeps nonce lanes under random fault plans" ~count:15
    QCheck2.Gen.(triple (int_range 0 30) (int_range 0 30) (int_range 0 20))
    (fun (drop, delay, dup) ->
      let pct x = float_of_int x /. 100. in
      let net = fresh_net () in
      let plan =
        {
          Faults.none with
          Faults.drop = pct drop;
          delay = pct delay;
          delay_blocks = 2;
          duplicate = pct dup;
          reorder = 0.5;
        }
      in
      let f = Faults.create ~seed:(Printf.sprintf "lanes-%d-%d-%d" drop delay dup) plan in
      Faults.attach f net;
      (* 3 senders x 3 nonces with clashing fees, so the miner is tempted
         to seal high-fee later-nonce txs first *)
      for nonce = 0 to 2 do
        for s = 0 to 2 do
          Network.submit net
            (Tx.make_ext ~wallet:(wallet s)
               ~fee:((7 * s) + (5 * (2 - nonce)) mod 9)
               ~footprint:[] ~nonce
               ~dst:(Tx.Call (Wallet.address (wallet ((s + 1) mod 3))))
               ~value:1 ~payload:Bytes.empty)
        done
      done;
      for _ = 1 to 8 do
        ignore (Network.mine net)
      done;
      Faults.detach net;
      let seen = Hashtbl.create 16 in
      let last_nonce = Hashtbl.create 4 in
      let ordered = ref true in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (tx : Tx.t) ->
              let h = tx |> Tx.hash |> Bytes.to_string in
              if not (Hashtbl.mem seen h) then begin
                Hashtbl.add seen h ();
                match Network.receipt net (Tx.hash tx) with
                | Some { State.status = State.Ok _; _ } ->
                  let k = Address.to_hex tx.Tx.sender in
                  (match Hashtbl.find_opt last_nonce k with
                  | Some p when tx.Tx.nonce <= p -> ordered := false
                  | _ -> ());
                  Hashtbl.replace last_nonce k tx.Tx.nonce
                | _ -> ()
              end)
            b.Block.txs)
        (Network.blocks net);
      !ordered)

(* The tentpole property: ANY bounded seeded plan settles with a payout or
   a typed error — no exception — and never breaks replica agreement or
   supply conservation.  Expensive (a full system boot per case), so the
   case count stays small; the seeds still vary per run via qcheck. *)
let prop_bounded_plans_settle_or_typed_error =
  qtest "bounded plans: settle or typed error, invariants hold" ~count:4
    QCheck2.Gen.(
      map2
        (fun (drop, delay, dup) (reorder, crash, flags) -> (drop, delay, dup, reorder, crash, flags))
        (triple (int_range 0 25) (int_range 0 25) (int_range 0 15))
        (triple (int_range 0 50) (int_range 0 2) (int_range 0 3)))
    (fun (drop, delay, dup, reorder, crash, flags) ->
      let pct x = float_of_int x /. 100. in
      let plan =
        {
          Faults.none with
          Faults.drop = pct drop;
          delay = pct delay;
          delay_blocks = 2;
          duplicate = pct dup;
          reorder = pct reorder;
          crashes =
            (match crash with
            | 1 -> [ { Faults.node = 1; from_height = 6; to_height = 8 } ]
            | 2 -> [ { Faults.node = 2; from_height = 5; to_height = 9 } ]
            | _ -> []);
          withhold_worker = flags land 1 = 1;
          no_instruction = flags land 2 = 2;
        }
      in
      let seed = Printf.sprintf "prop-%d-%d-%d-%d-%d-%d" drop delay dup reorder crash flags in
      let o = Chaos.run ~n:2 ~budget:40 ~seed ~plan () in
      let settled_or_typed =
        match o.Chaos.settlement with
        | Chaos.Rewarded _ | Chaos.Finalized | Chaos.Aborted _ -> true
      in
      settled_or_typed && o.Chaos.replicas_agree && o.Chaos.supply_conserved)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "DSL roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "DSL rejects malformed" `Quick test_plan_rejects_malformed;
          prop_schedule_deterministic;
        ] );
      ( "network",
        [
          Alcotest.test_case "delay is exactly k blocks" `Quick test_delay_exactly_k_blocks;
          Alcotest.test_case "delayed exempt from fee flood" `Quick
            test_delayed_exempt_from_fee_flood;
          Alcotest.test_case "drop needs resubmit" `Quick test_drop_needs_resubmit;
          Alcotest.test_case "crash and resync" `Quick test_crash_and_resync;
          Alcotest.test_case "last replica protected" `Quick test_crash_refuses_last_replica;
          Alcotest.test_case "finish restarts down nodes" `Quick test_finish_restarts_down_nodes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "timeout is typed" `Quick test_protocol_timeout_is_typed;
          Alcotest.test_case "bounded delay ridden out" `Quick
            test_protocol_rides_out_bounded_delay;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "drop plan recovers" `Quick test_chaos_drop_recovers;
          Alcotest.test_case "crash-restart agreement" `Quick test_chaos_crash_restart_agreement;
          Alcotest.test_case "withholding worker" `Quick test_chaos_withholding_worker;
          Alcotest.test_case "timeout fallback payout" `Quick test_chaos_timeout_fallback_payout;
          Alcotest.test_case "trace replays" `Quick test_chaos_trace_replays;
          Alcotest.test_case "identical across domains" `Quick
            test_chaos_identical_across_domains;
          prop_bounded_plans_settle_or_typed_error;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "partition heal keeps canonical" `Quick test_chaos_partition_keep;
          Alcotest.test_case "partition heal adopts minority (reorg)" `Quick
            test_chaos_partition_reorg;
          Alcotest.test_case "byzantine miner reorders" `Quick test_chaos_byzantine_reorder;
          Alcotest.test_case "byzantine miner censors" `Quick test_chaos_byzantine_censor;
          Alcotest.test_case "byzantine sibling adopted" `Quick
            test_chaos_byzantine_fork_adopted;
          Alcotest.test_case "eclipsed worker released in time" `Quick
            test_chaos_eclipse_release;
          Alcotest.test_case "colluding minority unpaid" `Quick
            test_chaos_collusion_minority_unpaid;
          Alcotest.test_case "colluding majority flips the vote" `Quick
            test_chaos_collusion_majority_flips;
          prop_fee_order_keeps_nonce_lanes_under_faults;
        ] );
    ]
