(* Off-chain content-addressed store and light-client tests. *)

open Zebra_chain
module Store = Zebra_store.Store

let rng = Zebra_rng.Chacha20.create ~seed:"test_store"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let qtest name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- store --- *)

let test_small_roundtrip () =
  let s = Store.create () in
  let blob = Bytes.of_string "hello, zebra" in
  let h = Store.put s blob in
  Alcotest.(check (option bytes)) "roundtrip" (Some blob) (Store.get s h)

let test_large_roundtrip () =
  let s = Store.create ~chunk_size:100 () in
  let blob = random_bytes 12_345 in
  let h = Store.put s blob in
  Alcotest.(check (option bytes)) "chunked roundtrip" (Some blob) (Store.get s h);
  Alcotest.(check bool) "many objects" true (Store.num_objects s > 100)

let test_empty_blob () =
  let s = Store.create () in
  let h = Store.put s Bytes.empty in
  Alcotest.(check (option bytes)) "empty" (Some Bytes.empty) (Store.get s h)

let test_deterministic_address () =
  let s = Store.create () in
  let blob = random_bytes 1000 in
  let h1 = Store.put s blob in
  let h2 = Store.put s (Bytes.copy blob) in
  Alcotest.(check bytes) "same content same address" h1 h2

let test_missing () =
  let s = Store.create () in
  Alcotest.(check (option bytes)) "absent" None (Store.get s (Bytes.make 32 'x'))

let test_corruption_detected () =
  let s = Store.create ~chunk_size:64 () in
  let blob = random_bytes 1000 in
  let h = Store.put s blob in
  Store.corrupt s h;
  Alcotest.(check (option bytes)) "corrupted root detected" None (Store.get s h)

let test_chunk_corruption_detected () =
  let s = Store.create ~chunk_size:64 () in
  let chunk_content = random_bytes 64 in
  let blob = Bytes.concat Bytes.empty [ chunk_content; random_bytes 500 ] in
  let root = Store.put s blob in
  (* corrupt the first chunk (its address is the hash of its leaf coding) *)
  let leaf_hash = Store.put (Store.create ~chunk_size:64 ()) chunk_content in
  ignore leaf_hash;
  (* easier: corrupt some stored object that is not the root *)
  let s2 = Store.create ~chunk_size:64 () in
  let root2 = Store.put s2 blob in
  ignore root2;
  Store.corrupt s root;
  Alcotest.(check (option bytes)) "detected" None (Store.get s root)

let prop_roundtrip =
  qtest "random blobs roundtrip" QCheck2.Gen.(pair (int_range 0 5000) (int_range 1 512))
    (fun (len, chunk) ->
      let s = Store.create ~chunk_size:chunk () in
      let blob = random_bytes len in
      Store.get s (Store.put s blob) = Some blob)

(* --- fault injection (Store.set_fault) --- *)

let test_fault_chunk_loss_heals () =
  let s = Store.create ~chunk_size:64 () in
  let blob = random_bytes 400 in
  (* 7 chunks + 1 manifest *)
  let h = Store.put s blob in
  (* Lose the third object the fetch touches (a mid-blob chunk). *)
  let ops = ref 0 in
  Store.set_fault s
    (Some (fun _ -> (incr ops; if !ops = 3 then Store.Lose else Store.Pass)));
  Alcotest.(check (option bytes)) "one lost chunk fails the whole get" None (Store.get s h);
  Store.set_fault s None;
  Alcotest.(check (option bytes)) "chunk stays lost without the fault" None (Store.get s h);
  let h' = Store.put s blob in
  Alcotest.(check bytes) "re-put is the same address" h h';
  Alcotest.(check (option bytes)) "re-put heals" (Some blob) (Store.get s h)

let test_fault_corruption_detected_heals () =
  let s = Store.create ~chunk_size:64 () in
  let blob = random_bytes 300 in
  let h = Store.put s blob in
  let ops = ref 0 in
  Store.set_fault s
    (Some (fun _ -> (incr ops; if !ops = 2 then Store.Corrupt else Store.Pass)));
  Alcotest.(check (option bytes)) "corrupted chunk detected, not served" None (Store.get s h);
  Store.set_fault s None;
  ignore (Store.put s blob);
  Alcotest.(check (option bytes)) "re-put heals corruption" (Some blob) (Store.get s h)

let test_fault_manifest_loss_heals () =
  let s = Store.create ~chunk_size:64 () in
  let blob = random_bytes 500 in
  let h = Store.put s blob in
  (* The first object a fetch touches is the manifest itself. *)
  let ops = ref 0 in
  Store.set_fault s
    (Some (fun _ -> (incr ops; if !ops = 1 then Store.Lose else Store.Pass)));
  Alcotest.(check (option bytes)) "lost manifest" None (Store.get s h);
  Store.set_fault s None;
  ignore (Store.put s blob);
  Alcotest.(check (option bytes)) "re-put heals the manifest" (Some blob) (Store.get s h)

(* The fault-layer contract: under ANY per-fetch fault pattern a [get] is
   complete-or-nothing — the exact blob or [None], never different bytes —
   and a re-[put] of the same content always heals. *)
let prop_fault_never_wrong_bytes =
  qtest "faulty get is all-or-nothing; re-put heals" ~count:40
    QCheck2.Gen.(
      triple (int_range 65 2000)
        (list_size (int_range 1 24) (int_range 0 2))
        (int_range 1 128))
    (fun (len, pattern, chunk) ->
      let s = Store.create ~chunk_size:chunk () in
      let blob = random_bytes len in
      let h = Store.put s blob in
      let pat = Array.of_list pattern in
      let i = ref 0 in
      Store.set_fault s
        (Some
           (fun _ ->
             let a = pat.(!i mod Array.length pat) in
             incr i;
             match a with 0 -> Store.Pass | 1 -> Store.Lose | _ -> Store.Corrupt));
      let all_or_nothing =
        match Store.get s h with None -> true | Some b -> Bytes.equal b blob
      in
      Store.set_fault s None;
      ignore (Store.put s blob);
      all_or_nothing && Store.get s h = Some blob)

(* --- light client --- *)

let wallets = lazy (Array.init 2 (fun _ -> Wallet.generate ~bits:512 ~random_bytes ()))

let test_light_client_follows () =
  let w = Lazy.force wallets in
  let net = Network.create ~num_nodes:2 ~genesis:[ (Wallet.address w.(0), 1000) ] () in
  let lc = Light_client.create () in
  for i = 0 to 4 do
    Network.submit net
      (Tx.make ~wallet:w.(0) ~nonce:i ~dst:(Tx.Call (Wallet.address w.(1))) ~value:1
         ~payload:Bytes.empty);
    ignore (Network.mine net)
  done;
  (match Light_client.sync lc (Network.blocks net) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sync failed: %s" e);
  Alcotest.(check int) "height" 5 (Light_client.height lc)

let test_light_client_inclusion () =
  let w = Lazy.force wallets in
  let net = Network.create ~num_nodes:1 ~genesis:[ (Wallet.address w.(0), 1000) ] () in
  let tx =
    Tx.make ~wallet:w.(0) ~nonce:0 ~dst:(Tx.Call (Wallet.address w.(1))) ~value:1
      ~payload:Bytes.empty
  in
  Network.submit net tx;
  ignore (Network.mine net);
  let lc = Light_client.create () in
  (match Light_client.sync lc (Network.blocks net) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sync: %s" e);
  let block = List.hd (Network.blocks net) in
  let proof = Block.tx_proof block 0 in
  Alcotest.(check bool) "inclusion verifies" true
    (Light_client.verify_inclusion lc ~height:1 tx proof);
  (* a different tx with the same proof must fail *)
  let other =
    Tx.make ~wallet:w.(0) ~nonce:1 ~dst:(Tx.Call (Wallet.address w.(1))) ~value:2
      ~payload:Bytes.empty
  in
  Alcotest.(check bool) "wrong tx rejected" false
    (Light_client.verify_inclusion lc ~height:1 other proof);
  Alcotest.(check bool) "wrong height rejected" false
    (Light_client.verify_inclusion lc ~height:2 tx proof)

let test_light_client_rejects_fork () =
  let w = Lazy.force wallets in
  let net = Network.create ~num_nodes:1 ~genesis:[ (Wallet.address w.(0), 1000) ] () in
  ignore (Network.mine net);
  let lc = Light_client.create () in
  (match Light_client.sync lc (Network.blocks net) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sync: %s" e);
  (* a forged header not linking to the tip *)
  let bogus =
    {
      Block.height = 2;
      prev_hash = Bytes.make 32 '\000';
      state_root = Bytes.make 32 '\000';
      tx_root = Bytes.make 32 '\000';
      nonce = 0;
    }
  in
  (match Light_client.push_header lc bogus with
  | Error "bad parent" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok () -> Alcotest.fail "forged header accepted");
  (* and a height skip *)
  let skip = { bogus with Block.height = 5 } in
  match Light_client.push_header lc skip with
  | Error "bad height" -> ()
  | _ -> Alcotest.fail "height skip accepted"

let test_light_client_state_root () =
  let w = Lazy.force wallets in
  let net = Network.create ~num_nodes:1 ~genesis:[ (Wallet.address w.(0), 1000) ] () in
  ignore (Network.mine net);
  let lc = Light_client.create () in
  ignore (Light_client.sync lc (Network.blocks net));
  let b = List.hd (Network.blocks net) in
  Alcotest.(check (option bytes)) "state root" (Some b.Block.header.Block.state_root)
    (Light_client.state_root lc ~height:1)

let () =
  Alcotest.run "store"
    [
      ( "cas",
        [
          Alcotest.test_case "small roundtrip" `Quick test_small_roundtrip;
          Alcotest.test_case "large roundtrip" `Quick test_large_roundtrip;
          Alcotest.test_case "empty blob" `Quick test_empty_blob;
          Alcotest.test_case "deterministic address" `Quick test_deterministic_address;
          Alcotest.test_case "missing object" `Quick test_missing;
          Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
          Alcotest.test_case "chunk corruption" `Quick test_chunk_corruption_detected;
          prop_roundtrip;
        ] );
      ( "faults",
        [
          Alcotest.test_case "chunk loss heals on re-put" `Quick test_fault_chunk_loss_heals;
          Alcotest.test_case "corruption detected, heals" `Quick
            test_fault_corruption_detected_heals;
          Alcotest.test_case "manifest loss heals" `Quick test_fault_manifest_loss_heals;
          prop_fault_never_wrong_bytes;
        ] );
      ( "light-client",
        [
          Alcotest.test_case "follows headers" `Quick test_light_client_follows;
          Alcotest.test_case "tx inclusion" `Quick test_light_client_inclusion;
          Alcotest.test_case "rejects forks" `Quick test_light_client_rejects_fork;
          Alcotest.test_case "state root lookup" `Quick test_light_client_state_root;
        ] );
    ]
