(* Unit and property tests for the arbitrary-precision substrate. *)

open Zebra_numeric

let rng = Zebra_rng.Chacha20.create ~seed:"test_numeric"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let nat = Alcotest.testable Nat.pp Nat.equal

(* Random Nat of up to [bits] bits for qcheck generators; derives randomness
   from the qcheck state so shrinking stays meaningful. *)
let arb_nat ?(bits = 256) () =
  let max_bytes = (bits + 7) / 8 in
  QCheck2.Gen.map
    (fun ints -> Nat.of_bytes_be (Bytes.of_string (String.concat "" (List.map (String.make 1) (List.map Char.chr ints)))))
    QCheck2.Gen.(list_size (int_range 0 max_bytes) (int_bound 255))

let qtest name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- Nat unit tests --- *)

let test_of_int_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check (option int)) "roundtrip" (Some v) (Nat.to_int_opt (Nat.of_int v)))
    [ 0; 1; 2; 42; 0x7fffffff; 0x80000000; max_int ]

let test_decimal_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "decimal" s (Nat.to_decimal_string (Nat.of_decimal_string s)))
    [ "0"; "1"; "4294967296"; "340282366920938463463374607431768211456";
      "21888242871839275222246405745257275088548364400416034343698204186575808495617" ]

let test_hex_roundtrip () =
  let x = Nat.of_hex "deadbeef00112233445566778899aabbccddeeff" in
  Alcotest.(check string) "hex" "deadbeef00112233445566778899aabbccddeeff" (Nat.to_hex x)

let test_bytes_roundtrip () =
  let b = Bytes.of_string "\x01\x02\x03\xff\x00\x10" in
  let x = Nat.of_bytes_be b in
  Alcotest.(check bytes) "bytes" b (Nat.to_bytes_be ~len:6 x)

let test_sub_underflow () =
  Alcotest.check_raises "sub underflow" (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub Nat.one Nat.two))

let test_divmod_small_cases () =
  let x = Nat.of_decimal_string "123456789123456789" in
  let q, r = Nat.divmod x (Nat.of_int 1000) in
  Alcotest.(check string) "q" "123456789123456" (Nat.to_decimal_string q);
  Alcotest.(check string) "r" "789" (Nat.to_decimal_string r)

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

let test_pow () =
  Alcotest.(check string) "2^100" "1267650600228229401496703205376"
    (Nat.to_decimal_string (Nat.pow Nat.two 100))

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "bits 2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100))

let test_shift_inverse () =
  let x = Nat.of_hex "123456789abcdef0123456789abcdef" in
  Alcotest.check nat "shift" x (Nat.shift_right (Nat.shift_left x 77) 77)

(* --- Nat properties --- *)

let pair g = QCheck2.Gen.pair g g
let triple g = QCheck2.Gen.triple g g g

let prop_add_comm =
  qtest "add commutative" (pair (arb_nat ())) (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_assoc =
  qtest "add associative" (triple (arb_nat ())) (fun (a, b, c) ->
      Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)))

let prop_mul_comm =
  qtest "mul commutative" (pair (arb_nat ())) (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_karatsuba_matches_schoolbook =
  qtest "karatsuba = schoolbook" ~count:50 (pair (arb_nat ~bits:4000 ())) (fun (a, b) ->
      Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b))

let test_karatsuba_asymmetric () =
  (* very different operand sizes stress the split logic *)
  let a = Nat.pow (Nat.of_int 3) 700 in
  let b = Nat.of_int 12345 in
  Alcotest.(check bool) "asymmetric" true (Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b));
  Alcotest.(check bool) "swapped" true (Nat.equal (Nat.mul b a) (Nat.mul_schoolbook b a))

let prop_mul_assoc =
  qtest "mul associative" (triple (arb_nat ~bits:128 ())) (fun (a, b, c) ->
      Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)))

let prop_distrib =
  qtest "mul distributes over add" (triple (arb_nat ~bits:128 ())) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_add_sub =
  qtest "sub inverts add" (pair (arb_nat ())) (fun (a, b) ->
      Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_divmod =
  qtest "divmod identity" (pair (arb_nat ~bits:512 ())) (fun (a, b) ->
      if Nat.is_zero b then true
      else begin
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0
      end)

let prop_bytes_roundtrip =
  qtest "bytes roundtrip" (arb_nat ~bits:520 ()) (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_decimal_roundtrip =
  qtest "decimal roundtrip" (arb_nat ~bits:300 ()) (fun a ->
      Nat.equal a (Nat.of_decimal_string (Nat.to_decimal_string a)))

let prop_shift =
  qtest "shift_left is mul by 2^k"
    (QCheck2.Gen.pair (arb_nat ()) (QCheck2.Gen.int_bound 100))
    (fun (a, k) -> Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow Nat.two k)))

let prop_gcd =
  qtest "gcd divides both" (pair (arb_nat ~bits:128 ())) (fun (a, b) ->
      if Nat.is_zero a && Nat.is_zero b then true
      else begin
        let g = Nat.gcd a b in
        (not (Nat.is_zero g))
        && Nat.is_zero (Nat.rem a g)
        && Nat.is_zero (Nat.rem b g)
      end)

(* --- Modular --- *)

let p256 =
  (* the BN254 scalar prime, also used by the field layer *)
  Nat.of_decimal_string
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let test_mont_roundtrip () =
  let ctx = Modular.create p256 in
  let x = Nat.of_decimal_string "123456789123456789123456789" in
  Alcotest.check nat "mont roundtrip" x (Modular.of_mont ctx (Modular.to_mont ctx x))

let test_mod_mul_small () =
  let ctx = Modular.create (Nat.of_int 97) in
  Alcotest.check nat "13*17 mod 97" (Nat.of_int (13 * 17 mod 97))
    (Modular.mul ctx (Nat.of_int 13) (Nat.of_int 17))

let test_mod_pow_fermat () =
  let ctx = Modular.create p256 in
  let a = Nat.of_decimal_string "987654321987654321" in
  (* a^(p-1) = 1 mod p *)
  Alcotest.check nat "fermat" Nat.one (Modular.pow ctx a (Nat.sub p256 Nat.one))

let test_mod_inverse () =
  let ctx = Modular.create p256 in
  let a = Nat.of_decimal_string "31415926535897932384626433832795" in
  let ai = Modular.inv ctx a in
  Alcotest.check nat "a * a^-1 = 1" Nat.one (Modular.mul ctx a ai)

let test_inverse_even_modulus () =
  (* 3^-1 mod 40 = 27 (RSA keygen path: inverse modulo even lambda) *)
  Alcotest.check nat "3^-1 mod 40" (Nat.of_int 27)
    (Modular.inverse (Nat.of_int 3) (Nat.of_int 40))

let test_inverse_not_coprime () =
  Alcotest.check_raises "non coprime" Division_by_zero (fun () ->
      ignore (Modular.inverse (Nat.of_int 6) (Nat.of_int 9)))

let prop_mod_mul_matches_nat =
  qtest "mod mul matches Nat" (pair (arb_nat ~bits:300 ())) (fun (a, b) ->
      let ctx = Modular.create p256 in
      Nat.equal (Modular.mul ctx a b) (Nat.rem (Nat.mul a b) p256))

let prop_mod_add_matches_nat =
  qtest "mod add matches Nat" (pair (arb_nat ~bits:300 ())) (fun (a, b) ->
      let ctx = Modular.create p256 in
      Nat.equal (Modular.add ctx a b) (Nat.rem (Nat.add a b) p256))

let prop_mod_inv =
  qtest "inverse property" (arb_nat ~bits:250 ()) (fun a ->
      let ctx = Modular.create p256 in
      let a = Nat.rem a p256 in
      if Nat.is_zero a then true
      else Nat.equal Nat.one (Modular.mul ctx a (Modular.inv ctx a)))

let prop_mod_pow_agree_small =
  qtest "pow matches repeated mul" (QCheck2.Gen.pair (arb_nat ~bits:64 ()) (QCheck2.Gen.int_bound 30))
    (fun (a, e) ->
      let m = Nat.of_int 1000003 in
      let ctx = Modular.create m in
      let expected = Nat.rem (Nat.pow a e) m in
      Nat.equal expected (Modular.pow ctx a (Nat.of_int e)))

(* The 4-bit sliding-window [mont_pow] must agree with a plain binary
   ladder for wide exponents too (the RSA/Miller-Rabin regime), over
   both a large and a tiny odd modulus. *)
let prop_mod_pow_wide =
  qtest "sliding-window pow matches binary ladder" ~count:30
    (QCheck2.Gen.pair (arb_nat ~bits:250 ()) (arb_nat ~bits:250 ()))
    (fun (a, e) ->
      let ladder ctx m b e =
        let b = Nat.rem b m in
        let nb = Nat.num_bits e in
        let acc = ref Nat.one in
        for i = nb - 1 downto 0 do
          acc := Modular.mul ctx !acc !acc;
          if Nat.testbit e i then acc := Modular.mul ctx !acc b
        done;
        !acc
      in
      let ctx = Modular.create p256 in
      let tiny = Nat.of_int 3 in
      let ctx3 = Modular.create tiny in
      Nat.equal (Modular.pow ctx a e) (ladder ctx p256 a e)
      && Nat.equal (Modular.pow ctx3 a e) (ladder ctx3 tiny a e))

(* --- Prime --- *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 101; 65537; 999983 ] in
  let composites = [ 0; 1; 4; 100; 65535; 999981 ] in
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (Prime.is_prime ~random_bytes (Nat.of_int p)))
    primes;
  List.iter
    (fun c -> Alcotest.(check bool) (string_of_int c) false (Prime.is_prime ~random_bytes (Nat.of_int c)))
    composites

let test_known_large_prime () =
  (* 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite *)
  let m127 = Nat.sub (Nat.pow Nat.two 127) Nat.one in
  Alcotest.(check bool) "2^127-1 prime" true (Prime.is_prime ~random_bytes m127);
  let f128 = Nat.add (Nat.pow Nat.two 128) Nat.one in
  Alcotest.(check bool) "2^128+1 composite" false (Prime.is_prime ~random_bytes f128)

let test_carmichael () =
  (* 561 = 3*11*17 fools the Fermat test but not Miller-Rabin *)
  Alcotest.(check bool) "561" false (Prime.is_prime ~random_bytes (Nat.of_int 561));
  Alcotest.(check bool) "1105" false (Prime.is_prime ~random_bytes (Nat.of_int 1105))

let test_generate_prime () =
  let p = Prime.generate ~bits:128 ~random_bytes in
  Alcotest.(check int) "exact bits" 128 (Nat.num_bits p);
  Alcotest.(check bool) "is prime" true (Prime.is_prime ~random_bytes p)

let test_random_below () =
  let bound = Nat.of_int 10 in
  for _ = 1 to 50 do
    let x = Prime.random_below ~random_bytes bound in
    Alcotest.(check bool) "in range" true (Nat.compare x bound < 0)
  done

let test_modular_tiny_modulus () =
  (* Smallest legal modulus and extreme residues. *)
  let ctx = Modular.create (Nat.of_int 3) in
  Alcotest.check nat "2*2 mod 3" Nat.one (Modular.mul ctx Nat.two Nat.two);
  Alcotest.check nat "2^-1 mod 3" Nat.two (Modular.inv ctx Nat.two)

let test_modular_extreme_residues () =
  let ctx = Modular.create p256 in
  let m1 = Nat.sub p256 Nat.one in
  (* (m-1)^2 = 1 mod m *)
  Alcotest.check nat "(m-1)^2" Nat.one (Modular.mul ctx m1 m1);
  (* operands >= m are reduced *)
  Alcotest.check nat "reduction" (Nat.of_int 4)
    (Modular.mul ctx (Nat.add p256 Nat.two) (Nat.add p256 Nat.two));
  Alcotest.check nat "even modulus rejected..." Nat.one (Modular.pow ctx m1 Nat.zero)

let test_modular_even_modulus_rejected () =
  Alcotest.check_raises "even" (Invalid_argument "Modular.create: even modulus") (fun () ->
      ignore (Modular.create (Nat.of_int 100)))

let test_p256_is_prime () =
  Alcotest.(check bool) "BN254 scalar prime" true (Prime.is_prime ~rounds:16 ~random_bytes p256)

let () =
  Alcotest.run "numeric"
    [
      ( "nat-units",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "sub underflow" `Quick test_sub_underflow;
          Alcotest.test_case "divmod small" `Quick test_divmod_small_cases;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "shift inverse" `Quick test_shift_inverse;
        ] );
      ( "nat-props",
        [
          Alcotest.test_case "karatsuba asymmetric" `Quick test_karatsuba_asymmetric;
          prop_add_comm; prop_add_assoc; prop_mul_comm; prop_mul_assoc; prop_distrib;
          prop_karatsuba_matches_schoolbook;
          prop_add_sub; prop_divmod; prop_bytes_roundtrip; prop_decimal_roundtrip;
          prop_shift; prop_gcd;
        ] );
      ( "modular",
        [
          Alcotest.test_case "mont roundtrip" `Quick test_mont_roundtrip;
          Alcotest.test_case "mul small" `Quick test_mod_mul_small;
          Alcotest.test_case "fermat" `Quick test_mod_pow_fermat;
          Alcotest.test_case "inverse" `Quick test_mod_inverse;
          Alcotest.test_case "inverse even modulus" `Quick test_inverse_even_modulus;
          Alcotest.test_case "inverse non-coprime" `Quick test_inverse_not_coprime;
          prop_mod_mul_matches_nat; prop_mod_add_matches_nat; prop_mod_inv;
          prop_mod_pow_agree_small; prop_mod_pow_wide;
        ] );
      ( "prime",
        [
          Alcotest.test_case "small primes" `Quick test_small_primes;
          Alcotest.test_case "large known prime" `Quick test_known_large_prime;
          Alcotest.test_case "carmichael numbers" `Quick test_carmichael;
          Alcotest.test_case "generate 128-bit" `Quick test_generate_prime;
          Alcotest.test_case "random_below range" `Quick test_random_below;
          Alcotest.test_case "BN254 modulus primality" `Quick test_p256_is_prime;
          Alcotest.test_case "tiny modulus" `Quick test_modular_tiny_modulus;
          Alcotest.test_case "extreme residues" `Quick test_modular_extreme_residues;
          Alcotest.test_case "even modulus" `Quick test_modular_even_modulus_rejected;
        ] );
    ]
