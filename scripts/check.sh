#!/bin/sh
# Local CI gate: build everything, lint every deployed circuit, then run
# the whole test suite twice -- once sequential, once over a 4-domain
# pool.  Results must agree: the parallel primitives guarantee
# bit-identical output at any ZEBRA_DOMAINS (see DESIGN.md), and this is
# where that contract is enforced.
set -eu
cd "$(dirname "$0")/.."
dune build @check
echo "== circuit lint (zebra lint --strict) =="
dune exec bin/zebra.exe -- lint --strict
echo "== tests, ZEBRA_DOMAINS=1 =="
ZEBRA_DOMAINS=1 dune runtest --force
echo "== tests, ZEBRA_DOMAINS=4 =="
ZEBRA_DOMAINS=4 dune runtest --force
