#!/bin/sh
# Local CI gate: build everything and run the whole test suite.
set -eu
cd "$(dirname "$0")/.."
exec dune build @check
