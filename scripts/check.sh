#!/bin/sh
# Local CI gate: build everything, lint every deployed circuit, run the
# whole test suite twice -- once sequential, once over a 4-domain pool --
# then replay the chaos suite at fixed seeds across both pool sizes.
# Results must agree: the parallel primitives guarantee bit-identical
# output at any ZEBRA_DOMAINS (see DESIGN.md), the fault schedule is keyed
# by the seed alone, and this is where both contracts are enforced.
set -eu
cd "$(dirname "$0")/.."
dune build @check
echo "== circuit lint (zebra lint --strict) =="
dune exec bin/zebra.exe -- lint --strict
# Chain-layer gate: every deployed tx kind must declare a sound and
# minimal footprint (ZL1xx), and no secret canary may appear in any
# persisted output -- tx bytes, contract storage, logs, obs export, vk
# encodings, store round-trips (ZL2xx).
echo "== tx lint (zebra lint --tx --strict) =="
dune exec bin/zebra.exe -- lint --tx --strict
echo "== tests, ZEBRA_DOMAINS=1 =="
ZEBRA_DOMAINS=1 dune runtest --force
echo "== tests, ZEBRA_DOMAINS=4 =="
ZEBRA_DOMAINS=4 dune runtest --force

# Snark cache gate: the keypair cache must be behaviour-invisible.  The
# snark suite has to pass with the cache disabled and enabled, and the
# canonical reward-circuit proof digest (bench snark-digest) must be one
# and the same bytes across ZEBRA_KEYCACHE on/off and ZEBRA_DOMAINS 1/4 --
# cache hits, cache misses and pool size may not change a single proof
# byte (see DESIGN.md).
echo "== snark cache gate (keycache off/on, digest x domains) =="
TEST_SNARK="./_build/default/test/test_snark.exe"
ZEBRA_KEYCACHE=off "$TEST_SNARK" >/dev/null
ZEBRA_KEYCACHE=on "$TEST_SNARK" >/dev/null
echo "test_snark passes with ZEBRA_KEYCACHE=off and =on"
BENCH="./_build/default/bench/main.exe"
dune build bench/main.exe
digest_ref=""
for domains in 1 4; do
  for cache in off on; do
    d="$(ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache "$BENCH" snark-digest)"
    if [ -z "$digest_ref" ]; then
      digest_ref="$d"
    elif [ "$d" != "$digest_ref" ]; then
      echo "snark gate FAILED: digest differs at ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache" >&2
      echo "  expected $digest_ref" >&2
      echo "  got      $d" >&2
      exit 1
    fi
    echo "ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache: digest $d"
  done
done

# Hash composition gate: the deployed default is Poseidon; its CPLA
# attestation digest is pinned in bench/main.ml and must be the same
# bytes across ZEBRA_DOMAINS x ZEBRA_KEYCACHE.  The MiMC ablation arm is
# checked once -- it must still prove and must NOT produce the Poseidon
# digest (the arms really are different circuits).
echo "== hash composition gate (cpla poseidon digest x domains x keycache) =="
cpla_ref="5a4895c25784fefa60837b1c2732e9e40b23d01aefad767c78bea9d6ce3259c7"
for domains in 1 4; do
  for cache in off on; do
    d="$(ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache "$BENCH" snark-digest cpla-poseidon)"
    if [ "$d" != "$cpla_ref" ]; then
      echo "composition gate FAILED: cpla-poseidon digest moved at ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache" >&2
      echo "  expected $cpla_ref" >&2
      echo "  got      $d" >&2
      exit 1
    fi
    echo "ZEBRA_DOMAINS=$domains ZEBRA_KEYCACHE=$cache: cpla-poseidon digest $d"
  done
done
dm="$("$BENCH" snark-digest cpla-mimc)"
if [ "$dm" = "$cpla_ref" ]; then
  echo "composition gate FAILED: mimc arm produced the poseidon digest" >&2
  exit 1
fi
echo "cpla-mimc ablation arm proves, digest $dm"

# Field-kernel gate: the zero-allocation Montgomery kernel bench is
# self-asserting -- it exits non-zero if any in-place kernel falls below
# the committed allocation-reduction floor against its pure counterpart
# (bench/main.ml, field_alloc_floor).  Run under ZEBRA_DOMAINS=1 so
# Gc.allocated_bytes attributes the whole prove to one domain.  The
# digest x domains x keycache gates above already pin the kernels'
# bit-identity; this one pins their allocation profile.
echo "== field kernel gate (in-place kernels stay allocation-free) =="
ZEBRA_DOMAINS=1 "$BENCH" field

# Chaos gate: each (seed, plan) pair must print the identical fault trace
# and settlement at ZEBRA_DOMAINS=1 and =4 -- the fault schedule may not
# leak pool-size dependence -- and the run itself must keep the chaos
# invariants (the CLI exits non-zero on a violation).
echo "== chaos gate (fixed seeds, pool-size-invariant traces) =="
ZEBRA="./_build/default/bin/zebra.exe"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
i=0
for spec in \
  "ci-1|drop=0.15,delay=0.15:2,dup=0.1" \
  "ci-2|crash=1:6-9,drop=0.1,reorder=0.3" \
  "ci-3|delay=1.0:2,lose=0.2,withhold,noinstruct"; do
  seed="${spec%%|*}"
  plan="${spec#*|}"
  i=$((i + 1))
  ZEBRA_DOMAINS=1 "$ZEBRA" chaos --seed "$seed" --plan "$plan" >"$tmp/d1-$i.txt"
  ZEBRA_DOMAINS=4 "$ZEBRA" chaos --seed "$seed" --plan "$plan" >"$tmp/d4-$i.txt"
  if ! diff -u "$tmp/d1-$i.txt" "$tmp/d4-$i.txt"; then
    echo "chaos gate FAILED: seed=$seed plan=$plan differs across pool sizes" >&2
    exit 1
  fi
  echo "seed=$seed plan=$plan: trace identical at 1 and 4 domains"
done

# Byzantine gate: the adversary corpus -- network partitions with
# fork-choice heals, a byzantine miner (reorder / censor / conflicting
# sibling blocks), an eclipsed worker, and a colluding pool attacking the
# majority policy -- at three fixed seeds per class.  Every run must
# settle with ALL chaos invariants intact (the CLI now exits non-zero if
# any of replica agreement, supply conservation, store recovery or
# indexer agreement fails) and print the identical trace at
# ZEBRA_DOMAINS=1 and =4.  The seeds are chosen so both fork-choice
# branches are exercised: part-1 keeps the canonical chain, part-2 adopts
# the minority branch (a 4-block reorg the indexer must survive), and
# byz-20 adopts a byzantine sibling block.
echo "== byzantine gate (adversary corpus, pool-size-invariant traces) =="
i=0
for spec in \
  "part-1@partition=2|1:6-9" \
  "part-2@partition=2|1:6-9" \
  "part-7@partition=2|1:6-9,drop=0.1" \
  "byz-1@byzmine=1:reorder,drop=0.05" \
  "byz-1@byzmine=2:censor" \
  "byz-20@byzmine=0:fork" \
  "ec-1@eclipse=1:6-9" \
  "ec-2@eclipse=2:6-8" \
  "ec-3@eclipse=1:6-9,drop=0.1" \
  "col-1@collude=1" \
  "col-2@collude=2" \
  "col-3@collude=1,withhold"; do
  seed="${spec%%@*}"
  plan="${spec#*@}"
  i=$((i + 1))
  ZEBRA_DOMAINS=1 "$ZEBRA" chaos --seed "$seed" --plan "$plan" >"$tmp/byz-d1-$i.txt"
  ZEBRA_DOMAINS=4 "$ZEBRA" chaos --seed "$seed" --plan "$plan" >"$tmp/byz-d4-$i.txt"
  if ! diff -u "$tmp/byz-d1-$i.txt" "$tmp/byz-d4-$i.txt"; then
    echo "byzantine gate FAILED: seed=$seed plan=$plan differs across pool sizes" >&2
    exit 1
  fi
  echo "seed=$seed plan=$plan: trace identical at 1 and 4 domains"
done

# Index gate: the off-chain event-sourced mirror must rebuild the
# canonical scenario's task/reputation state byte-identically to contract
# storage (the CLI exits non-zero on disagreement), and its decoded event
# log and views must not depend on the pool size.
echo "== index gate (event-sourced mirror, 1 vs 4 domains) =="
ZEBRA_DOMAINS=1 "$ZEBRA" index --events >"$tmp/idx-d1.txt"
ZEBRA_DOMAINS=4 "$ZEBRA" index --events >"$tmp/idx-d4.txt"
if ! diff -u "$tmp/idx-d1.txt" "$tmp/idx-d4.txt"; then
  echo "index gate FAILED: output differs across pool sizes" >&2
  exit 1
fi
echo "zebra index: mirror agrees, identical at 1 and 4 domains"

# Load-smoke gate: a small N x M marketplace run must complete every task
# with zero invariant violations (the CLI exits non-zero otherwise), its
# final state root must survive a full serial replay from genesis
# (--verify-replay), and its deterministic facts -- root, block/tx counts,
# conflict retries -- must be byte-identical at ZEBRA_DOMAINS=1 and =4:
# the sharded parallel executor may not change a single state byte.
echo "== load-smoke gate (parallel executor, root agreement at 1 vs 4 domains) =="
ZEBRA_DOMAINS=1 "$ZEBRA" load --tasks 4 --requesters 2 --workers 4 --inflight 4 \
  --seed ci-load --verify-replay -q >"$tmp/load-d1.txt"
ZEBRA_DOMAINS=4 "$ZEBRA" load --tasks 4 --requesters 2 --workers 4 --inflight 4 \
  --seed ci-load --verify-replay -q >"$tmp/load-d4.txt"
if ! diff -u "$tmp/load-d1.txt" "$tmp/load-d4.txt"; then
  echo "load gate FAILED: output differs across pool sizes" >&2
  exit 1
fi
cat "$tmp/load-d1.txt"
echo "load smoke: identical at 1 and 4 domains, all invariants held"
