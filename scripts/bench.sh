#!/bin/sh
# Regenerate the committed benchmark artifacts:
#   BENCH_obs.json       per-phase profile of one end-to-end task
#   BENCH_parallel.json  1/2/4-domain prover scaling curve
#   BENCH_chaos.json     end-to-end wall clock at 0/5/20% fault rates
#   BENCH_snark.json     sparse-prover speedup, keycache hit/miss economics,
#                        batched-vs-sequential audit (asserts the proof
#                        digest against the pre-optimization baseline)
#   BENCH_load.json      N x M marketplace throughput (100 tasks) through
#                        the fee-ordered mempool + sharded parallel executor
# All are written to the repo root; PERFORMANCE.md explains how to read
# them.  Numbers are hardware-dependent -- commit them together with a note
# on the machine they came from.
#
# Usage: scripts/bench.sh [obs|parallel|chaos|snark|load ...]
# With no arguments the standing artifact set is regenerated (load included).
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
BENCH="./_build/default/bench/main.exe"
if [ "$#" -gt 0 ]; then
  for b in "$@"; do
    "$BENCH" "$b"
  done
else
  "$BENCH" obs
  "$BENCH" parallel
  "$BENCH" chaos
  "$BENCH" snark
  "$BENCH" load
  echo "wrote $(pwd)/BENCH_obs.json, $(pwd)/BENCH_parallel.json, $(pwd)/BENCH_chaos.json, $(pwd)/BENCH_snark.json and $(pwd)/BENCH_load.json"
fi
