#!/bin/sh
# Regenerate the committed benchmark artifacts:
#   BENCH_obs.json       per-phase profile of one end-to-end task
#   BENCH_parallel.json  1/2/4-domain prover scaling curve
#   BENCH_chaos.json     end-to-end wall clock at 0/5/20% fault rates
#   BENCH_snark.json     sparse-prover speedup, keycache hit/miss economics,
#                        batched-vs-sequential audit (asserts the proof
#                        digest against the pre-optimization baseline)
# All are written to the repo root; PERFORMANCE.md explains how to read
# them.  Numbers are hardware-dependent -- commit them together with a note
# on the machine they came from.
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe
./_build/default/bench/main.exe obs
./_build/default/bench/main.exe parallel
./_build/default/bench/main.exe chaos
./_build/default/bench/main.exe snark
echo "wrote $(pwd)/BENCH_obs.json, $(pwd)/BENCH_parallel.json, $(pwd)/BENCH_chaos.json and $(pwd)/BENCH_snark.json"
