(* Dawid-Skene EM truth inference tests. *)

module Ti = Zebralancer.Truth_inference

let rng = Zebra_rng.Chacha20.create ~seed:"test_truth_inference"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let mk items workers choices answers =
  { Ti.items; workers; choices; answers }

let test_majority_basic () =
  let d =
    mk 2 3 3 [| [| Some 1; Some 1; Some 0 |]; [| Some 2; None; Some 2 |] |]
  in
  Alcotest.(check (array int)) "majority" [| 1; 2 |] (Ti.majority d)

let test_majority_tie_smallest () =
  let d = mk 1 2 3 [| [| Some 2; Some 0 |] |] in
  Alcotest.(check (array int)) "tie" [| 0 |] (Ti.majority d)

let test_validate_rejects () =
  Alcotest.check_raises "answer range"
    (Invalid_argument "Truth_inference: answer out of range") (fun () ->
      Ti.validate (mk 1 1 2 [| [| Some 5 |] |]));
  Alcotest.check_raises "dims" (Invalid_argument "Truth_inference: workers mismatch")
    (fun () -> Ti.validate (mk 1 2 2 [| [| Some 1 |] |]))

let test_em_converges_unanimous () =
  (* All workers always agree: EM must recover exactly their labels. *)
  let truth = [| 0; 1; 2; 1; 0; 2 |] in
  let answers = Array.map (fun t -> Array.make 4 (Some t)) truth in
  let d = mk 6 4 3 answers in
  let e = Ti.dawid_skene d in
  Alcotest.(check (array int)) "labels" truth e.Ti.labels;
  Alcotest.(check bool) "converged" true (e.Ti.iterations < 100)

let test_em_beats_majority_with_spammers () =
  (* 2 reliable workers vs 5 near-random spammers: per-item majority gets
     dragged down; EM discovers the spammers' confusion and outvotes them. *)
  let data, truth =
    Ti.synthesize ~random_bytes ~items:150 ~choices:4
      ~reliabilities:[| 0.95; 0.95; 0.3; 0.3; 0.3; 0.3; 0.3 |]
      ()
  in
  let maj_acc = Ti.accuracy ~truth (Ti.majority data) in
  let em = Ti.dawid_skene data in
  let em_acc = Ti.accuracy ~truth em.Ti.labels in
  Alcotest.(check bool)
    (Printf.sprintf "EM (%.2f) >= majority (%.2f)" em_acc maj_acc)
    true (em_acc >= maj_acc);
  Alcotest.(check bool) "EM is good" true (em_acc > 0.85)

let test_em_confusion_recovered () =
  (* A highly reliable worker's confusion matrix should be near-diagonal. *)
  let data, _ =
    Ti.synthesize ~random_bytes ~items:200 ~choices:3 ~reliabilities:[| 0.95; 0.9; 0.85 |] ()
  in
  let em = Ti.dawid_skene data in
  let diag_mass =
    let c = em.Ti.confusion.(0) in
    (c.(0).(0) +. c.(1).(1) +. c.(2).(2)) /. 3.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "diagonal mass %.2f" diag_mass)
    true (diag_mass > 0.8)

let test_em_handles_missing () =
  let data, truth =
    Ti.synthesize ~random_bytes ~items:100 ~choices:3
      ~reliabilities:[| 0.9; 0.9; 0.8; 0.7 |] ~missing_rate:0.3 ()
  in
  let em = Ti.dawid_skene data in
  Alcotest.(check bool) "accuracy despite gaps" true (Ti.accuracy ~truth em.Ti.labels > 0.7)

let test_em_loglik_monotone_ish () =
  (* The final log-likelihood must be finite and the run must converge. *)
  let data, _ =
    Ti.synthesize ~random_bytes ~items:50 ~choices:4 ~reliabilities:[| 0.8; 0.6; 0.7 |] ()
  in
  let em = Ti.dawid_skene data in
  Alcotest.(check bool) "finite ll" true (Float.is_finite em.Ti.log_likelihood);
  Alcotest.(check bool) "priors sum to 1" true
    (abs_float (Array.fold_left ( +. ) 0.0 em.Ti.class_priors -. 1.0) < 1e-6)

let () =
  Alcotest.run "truth_inference"
    [
      ( "majority",
        [
          Alcotest.test_case "basic" `Quick test_majority_basic;
          Alcotest.test_case "tie" `Quick test_majority_tie_smallest;
          Alcotest.test_case "validation" `Quick test_validate_rejects;
        ] );
      ( "em",
        [
          Alcotest.test_case "unanimous" `Quick test_em_converges_unanimous;
          Alcotest.test_case "beats majority vs spammers" `Quick test_em_beats_majority_with_spammers;
          Alcotest.test_case "confusion recovered" `Quick test_em_confusion_recovered;
          Alcotest.test_case "missing answers" `Quick test_em_handles_missing;
          Alcotest.test_case "convergence stats" `Quick test_em_loglik_monotone_ish;
        ] );
    ]
