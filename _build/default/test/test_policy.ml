(* Incentive policy unit and property tests. *)

module Policy = Zebralancer.Policy

let qtest name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let some xs = Array.of_list (List.map Option.some xs)

(* --- Majority --- *)

let majority4 = Policy.Majority { choices = 4 }

let test_majority_basic () =
  (* answers: B B A B C -> majority B (=1), reward 100/5 = 20 each correct *)
  let r = Policy.rewards majority4 ~budget:100 ~n:5 (some [ 1; 1; 0; 1; 2 ]) in
  Alcotest.(check (array int)) "rewards" [| 20; 20; 0; 20; 0 |] r

let test_majority_tie_smallest () =
  (* 2 votes each for 0 and 2: ties break to the smallest choice *)
  let r = Policy.rewards majority4 ~budget:80 ~n:4 (some [ 2; 0; 2; 0 ]) in
  Alcotest.(check (array int)) "tie" [| 0; 20; 0; 20 |] r

let test_majority_missing () =
  let r = Policy.rewards majority4 ~budget:90 ~n:3 [| Some 1; None; Some 1 |] in
  Alcotest.(check (array int)) "missing earns 0" [| 30; 0; 30 |] r

let test_majority_all_missing () =
  let r = Policy.rewards majority4 ~budget:90 ~n:3 [| None; None; None |] in
  Alcotest.(check (array int)) "nobody rewarded" [| 0; 0; 0 |] r

let test_majority_invalid_answer_ignored () =
  (* answer 9 outside [0,4): counts nowhere, earns nothing *)
  let r = Policy.rewards majority4 ~budget:60 ~n:3 (some [ 9; 1; 1 ]) in
  Alcotest.(check (array int)) "invalid ignored" [| 0; 20; 20 |] r

let test_majority_unanimous () =
  let r = Policy.rewards majority4 ~budget:100 ~n:4 (some [ 3; 3; 3; 3 ]) in
  Alcotest.(check (array int)) "all rewarded" [| 25; 25; 25; 25 |] r

let prop_majority_budget_bound =
  qtest "majority never exceeds budget"
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1000))
    (fun (n, budget) ->
      let rng = Random.State.make [| n; budget |] in
      let answers =
        Array.init n (fun _ ->
            if Random.State.int rng 5 = 0 then None else Some (Random.State.int rng 4))
      in
      let r = Policy.rewards majority4 ~budget ~n answers in
      Array.fold_left ( + ) 0 r <= budget)

let prop_majority_equal_answers_equal_pay =
  qtest "identical answers identical rewards" QCheck2.Gen.(int_range 2 10) (fun n ->
      let answers = Array.make n (Some 2) in
      let r = Policy.rewards majority4 ~budget:(17 * n) ~n answers in
      Array.for_all (fun x -> x = r.(0)) r)

(* --- Majority with quota --- *)

let test_threshold_met () =
  let p = Policy.Majority_threshold { choices = 4; quota = 2 } in
  let r = Policy.rewards p ~budget:60 ~n:3 (some [ 1; 1; 0 ]) in
  Alcotest.(check (array int)) "quota met" [| 20; 20; 0 |] r

let test_threshold_not_met () =
  let p = Policy.Majority_threshold { choices = 4; quota = 3 } in
  let r = Policy.rewards p ~budget:60 ~n:3 (some [ 1; 1; 0 ]) in
  Alcotest.(check (array int)) "quota missed" [| 0; 0; 0 |] r

(* --- Reverse auction --- *)

let auction = Policy.Reverse_auction { winners = 2; max_bid = 10 }

let test_auction_basic () =
  (* bids 5 3 8 1 -> winners are 1 and 3 (indices 3, 1), price = 5 (3rd lowest) *)
  let r = Policy.rewards auction ~budget:100 ~n:4 (some [ 5; 3; 8; 1 ]) in
  Alcotest.(check (array int)) "k+1 price" [| 0; 5; 0; 5 |] r

let test_auction_budget_cap () =
  (* clearing price 5 but budget/2 = 2: pay the cap *)
  let r = Policy.rewards auction ~budget:4 ~n:4 (some [ 5; 3; 8; 1 ]) in
  Alcotest.(check (array int)) "capped" [| 0; 2; 0; 2 |] r

let test_auction_tie_earlier_wins () =
  (* bids 3 3 3: two winners are the first two threes; price = 3 *)
  let r = Policy.rewards auction ~budget:100 ~n:3 (some [ 3; 3; 3 ]) in
  Alcotest.(check (array int)) "tie to earlier" [| 3; 3; 0 |] r

let test_auction_few_bidders () =
  (* only one valid bid, two winner slots: no losing bid -> reserve price *)
  let r = Policy.rewards auction ~budget:100 ~n:3 [| Some 4; None; None |] in
  Alcotest.(check (array int)) "reserve price" [| 10; 0; 0 |] r

let test_auction_invalid_bid () =
  (* bid 99 > max_bid: invalid, never wins *)
  let r = Policy.rewards auction ~budget:100 ~n:3 (some [ 99; 2; 7 ]) in
  Alcotest.(check (array int)) "invalid loses" [| 0; 10; 10 |] r

let prop_auction_at_most_k_winners =
  qtest "at most k winners" QCheck2.Gen.(int_range 1 12) (fun n ->
      let rng = Random.State.make [| n |] in
      let answers = Array.init n (fun _ -> Some (Random.State.int rng 11)) in
      let r = Policy.rewards auction ~budget:1000 ~n answers in
      Array.fold_left (fun acc x -> if x > 0 then acc + 1 else acc) 0 r <= 2)

let prop_auction_budget_bound =
  qtest "auction never exceeds budget"
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 100))
    (fun (n, budget) ->
      let rng = Random.State.make [| n; budget; 7 |] in
      let answers = Array.init n (fun _ -> Some (Random.State.int rng 11)) in
      let r = Policy.rewards auction ~budget ~n answers in
      Array.fold_left ( + ) 0 r <= budget)

(* --- Misc --- *)

let test_fallback_share () =
  Alcotest.(check int) "even split" 33 (Policy.fallback_share ~budget:100 ~submitted:3);
  Alcotest.(check int) "no submitters" 0 (Policy.fallback_share ~budget:100 ~submitted:0)

let test_serialization_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true (Policy.equal p (Policy.of_bytes (Policy.to_bytes p))))
    [
      majority4;
      Policy.Majority_threshold { choices = 7; quota = 3 };
      Policy.Reverse_auction { winners = 4; max_bid = 100 };
    ]

let test_answer_space () =
  Alcotest.(check int) "majority" 4 (Policy.answer_space majority4);
  Alcotest.(check int) "auction" 11 (Policy.answer_space auction);
  Alcotest.(check bool) "valid" true (Policy.valid_answer majority4 3);
  Alcotest.(check bool) "invalid" false (Policy.valid_answer majority4 4)

let test_bad_arity () =
  Alcotest.check_raises "wrong count" (Invalid_argument "Policy.rewards: wrong answer count")
    (fun () -> ignore (Policy.rewards majority4 ~budget:10 ~n:3 [| Some 1 |]))

let () =
  Alcotest.run "policy"
    [
      ( "majority",
        [
          Alcotest.test_case "basic" `Quick test_majority_basic;
          Alcotest.test_case "tie to smallest" `Quick test_majority_tie_smallest;
          Alcotest.test_case "missing answers" `Quick test_majority_missing;
          Alcotest.test_case "all missing" `Quick test_majority_all_missing;
          Alcotest.test_case "invalid ignored" `Quick test_majority_invalid_answer_ignored;
          Alcotest.test_case "unanimous" `Quick test_majority_unanimous;
          prop_majority_budget_bound; prop_majority_equal_answers_equal_pay;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "quota met" `Quick test_threshold_met;
          Alcotest.test_case "quota missed" `Quick test_threshold_not_met;
        ] );
      ( "auction",
        [
          Alcotest.test_case "k+1 price" `Quick test_auction_basic;
          Alcotest.test_case "budget cap" `Quick test_auction_budget_cap;
          Alcotest.test_case "tie to earlier" `Quick test_auction_tie_earlier_wins;
          Alcotest.test_case "few bidders" `Quick test_auction_few_bidders;
          Alcotest.test_case "invalid bid" `Quick test_auction_invalid_bid;
          prop_auction_at_most_k_winners; prop_auction_budget_bound;
        ] );
      ( "misc",
        [
          Alcotest.test_case "fallback share" `Quick test_fallback_share;
          Alcotest.test_case "serialisation" `Quick test_serialization_roundtrip;
          Alcotest.test_case "answer space" `Quick test_answer_space;
          Alcotest.test_case "bad arity" `Quick test_bad_arity;
        ] );
    ]
