(* Codec unit tests and decoder fuzzing: every deserialiser in the system
   must fail cleanly (Decode_error / Invalid_argument), never crash or
   loop, on arbitrary bytes. *)

module Codec = Zebra_codec.Codec

let rng = Zebra_rng.Chacha20.create ~seed:"test_codec"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let qtest name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- basic roundtrips --- *)

let test_scalar_roundtrips () =
  let b =
    Codec.encode
      (fun w () ->
        Codec.u8 w 200;
        Codec.u32 w 0xdeadbeef;
        Codec.u64 w 123456789012345;
        Codec.bool w true;
        Codec.string w "zebra";
        Codec.option w Codec.u32 (Some 7);
        Codec.option w Codec.u32 None;
        Codec.list w Codec.u8 [ 1; 2; 3 ];
        Codec.array w Codec.u8 [| 4; 5 |])
      ()
  in
  Codec.decode
    (fun r ->
      Alcotest.(check int) "u8" 200 (Codec.read_u8 r);
      Alcotest.(check int) "u32" 0xdeadbeef (Codec.read_u32 r);
      Alcotest.(check int) "u64" 123456789012345 (Codec.read_u64 r);
      Alcotest.(check bool) "bool" true (Codec.read_bool r);
      Alcotest.(check string) "string" "zebra" (Codec.read_string r);
      Alcotest.(check (option int)) "some" (Some 7) (Codec.read_option r Codec.read_u32);
      Alcotest.(check (option int)) "none" None (Codec.read_option r Codec.read_u32);
      Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.read_list r Codec.read_u8);
      Alcotest.(check (array int)) "array" [| 4; 5 |] (Codec.read_array r Codec.read_u8))
    b

let test_trailing_bytes_rejected () =
  let b = Bytes.of_string "\x01\x02" in
  Alcotest.check_raises "trailing" (Codec.Decode_error "trailing bytes") (fun () ->
      ignore (Codec.decode (fun r -> Codec.read_u8 r) b))

let test_truncated_rejected () =
  Alcotest.check_raises "truncated" (Codec.Decode_error "unexpected end of input") (fun () ->
      ignore (Codec.decode (fun r -> Codec.read_u32 r) (Bytes.of_string "\x01")))

let test_range_checks () =
  let w = Codec.writer () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Codec.u8") (fun () -> Codec.u8 w 256);
  Alcotest.check_raises "u32 range" (Invalid_argument "Codec.u32") (fun () ->
      Codec.u32 w (-1))

(* --- fuzzing every decoder in the system --- *)

(* A decoder survives a buffer if it returns or raises a *declared* failure
   (Decode_error or Invalid_argument); anything else is a bug. *)
let survives decode buf =
  match decode buf with
  | _ -> true
  | exception Codec.Decode_error _ -> true
  | exception Invalid_argument _ -> true
  | exception _ -> false

let gen_bytes =
  QCheck2.Gen.map
    (fun (n, seed) ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "fuzz-%d" seed) in
      Zebra_rng.Chacha20.bytes r n)
    QCheck2.Gen.(pair (int_range 0 600) (int_bound 1_000_000))

(* Mutations of valid encodings reach deeper branches than pure noise. *)
let mutated valid =
  QCheck2.Gen.map
    (fun (pos, delta) ->
      let b = Bytes.copy valid in
      if Bytes.length b = 0 then b
      else begin
        let i = pos mod Bytes.length b in
        Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + 1 + delta) land 0xff));
        b
      end)
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 254))

let fuzz name decode =
  qtest ("noise: " ^ name) gen_bytes (fun b -> survives decode b)

let fuzz_mutated name valid decode =
  qtest ("mutate: " ^ name) (mutated valid) (fun b -> survives decode b)

(* Valid specimens for mutation. *)
let specimen_policy = Zebralancer.Policy.to_bytes (Zebralancer.Policy.Majority { choices = 4 })

let specimen_params =
  Zebralancer.Task_contract.params_to_bytes
    {
      Zebralancer.Task_contract.budget = 100;
      n = 2;
      answer_deadline = 10;
      instruct_deadline = 20;
      epk = Zebra_field.Fp.one;
      ra_root = Zebra_field.Fp.two;
      auth_vk = random_bytes 40;
      reward_vk = random_bytes 40;
      policy = Zebralancer.Policy.Majority { choices = 4 };
      requester_attestation = random_bytes 30;
      max_per_worker = 1;
      ra_rsa_pub = Bytes.empty;
      data_digest = Bytes.empty;
    }

let specimen_ct =
  let _, pk = Zebra_elgamal.Elgamal.generate ~random_bytes in
  Zebra_elgamal.Elgamal.ciphertext_to_bytes
    (Zebra_elgamal.Elgamal.encrypt ~random_bytes pk (Zebra_elgamal.Elgamal.encode_answer 1))

let () =
  Alcotest.run "codec"
    [
      ( "units",
        [
          Alcotest.test_case "scalar roundtrips" `Quick test_scalar_roundtrips;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "truncated" `Quick test_truncated_rejected;
          Alcotest.test_case "range checks" `Quick test_range_checks;
        ] );
      ( "fuzz",
        [
          fuzz "policy" Zebralancer.Policy.of_bytes;
          fuzz "task params" Zebralancer.Task_contract.params_of_bytes;
          fuzz "task storage" Zebralancer.Task_contract.storage_of_bytes;
          fuzz "elgamal ciphertext" Zebra_elgamal.Elgamal.ciphertext_of_bytes;
          fuzz "snark proof" Zebra_snark.Snark.proof_of_bytes;
          fuzz "snark vk" Zebra_snark.Snark.vk_of_bytes;
          fuzz "cpla attestation" Zebra_anonauth.Cpla.attestation_of_bytes;
          fuzz "plain attestation" Zebralancer.Plain_auth.attestation_of_bytes;
          fuzz "rsa pubkey" Zebra_rsa.Rsa.public_key_of_bytes;
          fuzz "transaction" Zebra_chain.Tx.of_bytes;
          fuzz_mutated "policy" specimen_policy Zebralancer.Policy.of_bytes;
          fuzz_mutated "task params" specimen_params Zebralancer.Task_contract.params_of_bytes;
          fuzz_mutated "ciphertext" specimen_ct Zebra_elgamal.Elgamal.ciphertext_of_bytes;
        ] );
    ]
