(* End-to-end SNARK tests: completeness, rejection of bad witnesses and
   tampered proofs, zero-knowledge simulation, serialisation. *)

open Zebra_field
open Zebra_r1cs
module Snark = Zebra_snark.Snark

let rng = Zebra_rng.Chacha20.create ~seed:"test_snark"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

(* Demo circuit: prove knowledge of x with  x^3 + x + 5 = y  (public y). *)
let cubic_circuit x =
  let cs = Cs.create () in
  let y_val =
    Fp.add (Fp.add (Fp.mul x (Fp.mul x x)) x) (Fp.of_int 5)
  in
  let y = Cs.alloc_input cs y_val in
  let vx = Cs.alloc cs x in
  let open Gadgets in
  let x2 = square cs (v vx) in
  let x3 = mul cs (v x2) (v vx) in
  enforce_eq cs ~label:"cubic" (v x3 +: v vx +: ci 5) (v y);
  cs

(* A wider circuit exercising several gadget types at once. *)
let mixed_circuit secret =
  let cs = Cs.create () in
  let digest = Zebra_mimc.Mimc.hash_list [ secret; secret ] in
  let pub = Cs.alloc_input cs digest in
  let s = Cs.alloc cs secret in
  let open Gadgets in
  let h = mimc_hash cs [ v s; v s ] in
  enforce_eq cs ~label:"digest match" h (v pub);
  let bits = bits_of_expr cs (v s -: v s +: ci 9) 4 in
  enforce_eq cs ~label:"const bits" (pack_bits bits) (ci 9);
  cs

let keys_of circuit = Snark.setup ~random_bytes circuit

let test_completeness () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  Alcotest.(check bool) "witness satisfies" true (Cs.is_satisfied cs);
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "verifies" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof)

let test_proof_reusable_across_witnesses () =
  (* One setup serves any instance of the same circuit structure. *)
  let x0 = fresh_fp () in
  let { Snark.pk; vk; _ } = keys_of (cubic_circuit x0) in
  List.iter
    (fun _ ->
      let x = fresh_fp () in
      let cs = cubic_circuit x in
      let proof = Snark.prove ~random_bytes pk cs in
      Alcotest.(check bool) "verifies" true
        (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof))
    [ (); (); () ]

let test_wrong_public_input_rejected () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let wrong = [| Fp.add (Cs.public_inputs cs).(0) Fp.one |] in
  Alcotest.(check bool) "rejected" false (Snark.verify vk ~public_inputs:wrong proof)

let test_bad_witness_rejected () =
  (* Corrupt the witness after synthesis: the prover output must not verify. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  (* Claim a different public output than the real one. *)
  let claimed = Fp.add (Cs.public_inputs cs).(0) Fp.one in
  Cs.set_value cs (Cs.var_of_int 1) claimed;
  Alcotest.(check bool) "board unsatisfied" false (Cs.is_satisfied cs);
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "rejected" false (Snark.verify vk ~public_inputs:[| claimed |] proof)

let test_tampered_proof_rejected () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let b = Snark.proof_to_bytes proof in
  (* Flip one byte inside the first field element. *)
  Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 1));
  let tampered = Snark.proof_of_bytes b in
  Alcotest.(check bool) "rejected" false
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) tampered)

let test_proof_constant_size () =
  let sizes =
    List.map
      (fun x ->
        let cs = mixed_circuit x in
        let { Snark.pk; _ } = keys_of cs in
        let proof = Snark.prove ~random_bytes pk cs in
        Snark.proof_size_bytes proof)
      [ fresh_fp (); fresh_fp () ]
  in
  let cubic =
    let x = fresh_fp () in
    let cs = cubic_circuit x in
    let { Snark.pk; _ } = keys_of cs in
    Snark.proof_size_bytes (Snark.prove ~random_bytes pk cs)
  in
  List.iter (fun s -> Alcotest.(check int) "constant size" cubic s) sizes

let test_zk_blinding () =
  (* Two proofs of the same statement with fresh randomness must differ. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let p1 = Snark.prove ~random_bytes pk cs in
  let p2 = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "distinct proofs" false (Snark.equal_proof p1 p2);
  Alcotest.(check bool) "both verify" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) p1
    && Snark.verify vk ~public_inputs:(Cs.public_inputs cs) p2)

let test_simulator () =
  (* The trapdoor simulator forges verifying proofs with no witness: the
     zero-knowledge property of the construction. *)
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.vk; trapdoor; _ } = keys_of cs in
  let inputs = Cs.public_inputs cs in
  let forged = Snark.simulate ~random_bytes trapdoor ~public_inputs:inputs in
  Alcotest.(check bool) "simulated proof verifies" true
    (Snark.verify vk ~public_inputs:inputs forged);
  (* Even for a *false* statement: simulation is statement-independent. *)
  let bogus = [| fresh_fp () |] in
  let forged2 = Snark.simulate ~random_bytes trapdoor ~public_inputs:bogus in
  Alcotest.(check bool) "simulates any statement" true
    (Snark.verify vk ~public_inputs:bogus forged2)

let test_serialization_roundtrip () =
  let x = fresh_fp () in
  let cs = cubic_circuit x in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  let proof' = Snark.proof_of_bytes (Snark.proof_to_bytes proof) in
  Alcotest.(check bool) "proof roundtrip" true (Snark.equal_proof proof proof');
  let vk' = Snark.vk_of_bytes (Snark.vk_to_bytes vk) in
  Alcotest.(check bool) "vk roundtrip verifies" true
    (Snark.verify vk' ~public_inputs:(Cs.public_inputs cs) proof)

let test_shape_mismatch () =
  let { Snark.pk; _ } = keys_of (cubic_circuit (fresh_fp ())) in
  let other = mixed_circuit (fresh_fp ()) in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Snark.prove: circuit shape mismatch with proving key") (fun () ->
      ignore (Snark.prove ~random_bytes pk other))

let test_mixed_circuit_end_to_end () =
  let secret = fresh_fp () in
  let cs = mixed_circuit secret in
  Alcotest.(check bool) "satisfied" true (Cs.is_satisfied cs);
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "verifies" true
    (Snark.verify vk ~public_inputs:(Cs.public_inputs cs) proof)

let test_wrong_input_count () =
  let cs = cubic_circuit (fresh_fp ()) in
  let { Snark.pk; vk; _ } = keys_of cs in
  let proof = Snark.prove ~random_bytes pk cs in
  Alcotest.(check bool) "too many inputs rejected" false
    (Snark.verify vk ~public_inputs:[| Fp.one; Fp.one |] proof)

let () =
  Alcotest.run "snark"
    [
      ( "snark",
        [
          Alcotest.test_case "completeness" `Quick test_completeness;
          Alcotest.test_case "multi-instance keys" `Quick test_proof_reusable_across_witnesses;
          Alcotest.test_case "wrong public input" `Quick test_wrong_public_input_rejected;
          Alcotest.test_case "bad witness" `Quick test_bad_witness_rejected;
          Alcotest.test_case "tampered proof" `Quick test_tampered_proof_rejected;
          Alcotest.test_case "constant proof size" `Quick test_proof_constant_size;
          Alcotest.test_case "zk blinding" `Quick test_zk_blinding;
          Alcotest.test_case "trapdoor simulator" `Quick test_simulator;
          Alcotest.test_case "serialisation" `Quick test_serialization_roundtrip;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "mixed circuit" `Quick test_mixed_circuit_end_to_end;
          Alcotest.test_case "wrong input count" `Quick test_wrong_input_count;
        ] );
    ]
