(* RSA (keygen / PKCS#1 / OAEP) and ElGamal tests. *)

open Zebra_numeric
open Zebra_field
module Rsa = Zebra_rsa.Rsa
module Pkcs1 = Zebra_rsa.Pkcs1
module Oaep = Zebra_rsa.Oaep
module Elgamal = Zebra_elgamal.Elgamal
module Sha256 = Zebra_hashing.Sha256

let rng = Zebra_rng.Chacha20.create ~seed:"test_crypto"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

(* One 512-bit key shared by most tests (keygen is the slow part).  OAEP
   with SHA-256 needs at least 2*32+2 bytes of padding, so its tests use a
   768-bit key. *)
let key = lazy (Rsa.generate ~bits:512 ~random_bytes)

let key768 = lazy (Rsa.generate ~bits:768 ~random_bytes)

let fp = Alcotest.testable Fp.pp Fp.equal

(* --- RSA --- *)

let test_keygen_shape () =
  let k = Lazy.force key in
  Alcotest.(check int) "modulus bits" 512 (Nat.num_bits k.Rsa.pub.Rsa.n);
  Alcotest.(check bool) "n = p*q" true (Nat.equal k.Rsa.pub.Rsa.n (Nat.mul k.Rsa.p k.Rsa.q));
  Alcotest.(check bool) "p prime" true (Prime.is_prime ~random_bytes k.Rsa.p);
  Alcotest.(check bool) "q prime" true (Prime.is_prime ~random_bytes k.Rsa.q)

let test_raw_roundtrip () =
  let k = Lazy.force key in
  let m = Prime.random_below ~random_bytes k.Rsa.pub.Rsa.n in
  Alcotest.(check bool) "decrypt(encrypt(m)) = m" true
    (Nat.equal m (Rsa.raw_private k (Rsa.raw_public k.Rsa.pub m)))

let test_crt_matches_direct () =
  let k = Lazy.force key in
  let c = Prime.random_below ~random_bytes k.Rsa.pub.Rsa.n in
  let direct =
    let ctx = Modular.create k.Rsa.pub.Rsa.n in
    Modular.pow ctx c k.Rsa.d
  in
  Alcotest.(check bool) "CRT = direct" true (Nat.equal direct (Rsa.raw_private k c))

let test_pubkey_serialization () =
  let k = Lazy.force key in
  let pk' = Rsa.public_key_of_bytes (Rsa.public_key_to_bytes k.Rsa.pub) in
  Alcotest.(check bool) "roundtrip" true (Rsa.equal_public_key k.Rsa.pub pk')

(* --- PKCS1 signatures --- *)

let test_sign_verify () =
  let k = Lazy.force key in
  let msg = Bytes.of_string "publish task 42 with budget 1000" in
  let signature = Pkcs1.sign k msg in
  Alcotest.(check bool) "valid" true (Pkcs1.verify k.Rsa.pub ~msg ~signature)

let test_sign_tamper_msg () =
  let k = Lazy.force key in
  let msg = Bytes.of_string "pay worker A" in
  let signature = Pkcs1.sign k msg in
  Alcotest.(check bool) "tampered message rejected" false
    (Pkcs1.verify k.Rsa.pub ~msg:(Bytes.of_string "pay worker B") ~signature)

let test_sign_tamper_sig () =
  let k = Lazy.force key in
  let msg = Bytes.of_string "hello" in
  let signature = Pkcs1.sign k msg in
  Bytes.set signature 5 (Char.chr (Char.code (Bytes.get signature 5) lxor 0x40));
  Alcotest.(check bool) "tampered signature rejected" false
    (Pkcs1.verify k.Rsa.pub ~msg ~signature)

let test_sign_wrong_key () =
  let k = Lazy.force key in
  let other = Rsa.generate ~bits:512 ~random_bytes in
  let msg = Bytes.of_string "hello" in
  let signature = Pkcs1.sign other msg in
  Alcotest.(check bool) "wrong key rejected" false (Pkcs1.verify k.Rsa.pub ~msg ~signature)

let test_sign_garbage () =
  let k = Lazy.force key in
  Alcotest.(check bool) "empty sig" false
    (Pkcs1.verify k.Rsa.pub ~msg:(Bytes.of_string "x") ~signature:Bytes.empty);
  Alcotest.(check bool) "all-ff sig" false
    (Pkcs1.verify k.Rsa.pub ~msg:(Bytes.of_string "x")
       ~signature:(Bytes.make (Rsa.key_bytes k.Rsa.pub) '\xff'))

(* --- OAEP --- *)

let test_mgf1_vector () =
  (* Cross-checked reference value for MGF1-SHA256("foo", 8). *)
  let out = Oaep.mgf1 ~seed:(Bytes.of_string "foo") 8 in
  Alcotest.(check int) "len" 8 (Bytes.length out);
  (* determinism + prefix property *)
  let out16 = Oaep.mgf1 ~seed:(Bytes.of_string "foo") 16 in
  Alcotest.(check bytes) "prefix consistent" out (Bytes.sub out16 0 8)

let test_oaep_roundtrip () =
  let k = Lazy.force key768 in
  let msg = Bytes.of_string "the answer is B" in
  let ct = Oaep.encrypt ~random_bytes k.Rsa.pub msg in
  Alcotest.(check (option bytes)) "roundtrip" (Some msg) (Oaep.decrypt k ct)

let test_oaep_randomized () =
  let k = Lazy.force key768 in
  let msg = Bytes.of_string "same plaintext" in
  let c1 = Oaep.encrypt ~random_bytes k.Rsa.pub msg in
  let c2 = Oaep.encrypt ~random_bytes k.Rsa.pub msg in
  Alcotest.(check bool) "ciphertexts differ" false (Bytes.equal c1 c2)

let test_oaep_max_len () =
  let k = Lazy.force key768 in
  let maxl = Oaep.max_message_len k.Rsa.pub in
  let msg = Bytes.make maxl 'x' in
  Alcotest.(check (option bytes)) "max-length roundtrip" (Some msg)
    (Oaep.decrypt k (Oaep.encrypt ~random_bytes k.Rsa.pub msg));
  Alcotest.check_raises "too long" (Invalid_argument "Oaep.encrypt: message too long")
    (fun () -> ignore (Oaep.encrypt ~random_bytes k.Rsa.pub (Bytes.make (maxl + 1) 'x')))

let test_oaep_tamper () =
  let k = Lazy.force key768 in
  let ct = Oaep.encrypt ~random_bytes k.Rsa.pub (Bytes.of_string "secret") in
  Bytes.set ct 3 (Char.chr (Char.code (Bytes.get ct 3) lxor 1));
  Alcotest.(check (option bytes)) "tampered ciphertext rejected" None (Oaep.decrypt k ct)

let test_oaep_empty_message () =
  let k = Lazy.force key768 in
  let ct = Oaep.encrypt ~random_bytes k.Rsa.pub Bytes.empty in
  Alcotest.(check (option bytes)) "empty message" (Some Bytes.empty) (Oaep.decrypt k ct)

(* --- ElGamal --- *)

let test_elgamal_roundtrip () =
  let sk, pk = Elgamal.generate ~random_bytes in
  let m = Elgamal.encode_answer 3 in
  let ct = Elgamal.encrypt ~random_bytes pk m in
  Alcotest.check fp "roundtrip" m (Elgamal.decrypt sk ct)

let test_elgamal_randomized () =
  let _, pk = Elgamal.generate ~random_bytes in
  let m = Elgamal.encode_answer 1 in
  let c1 = Elgamal.encrypt ~random_bytes pk m in
  let c2 = Elgamal.encrypt ~random_bytes pk m in
  Alcotest.(check bool) "ciphertexts differ" false (Elgamal.equal_ciphertext c1 c2)

let test_elgamal_pair () =
  let sk, pk = Elgamal.generate ~random_bytes in
  let sk', _ = Elgamal.generate ~random_bytes in
  Alcotest.(check bool) "matching pair" true (Elgamal.pair sk pk);
  Alcotest.(check bool) "mismatched pair" false (Elgamal.pair sk' pk)

let test_elgamal_wrong_key () =
  let _, pk = Elgamal.generate ~random_bytes in
  let sk', _ = Elgamal.generate ~random_bytes in
  let m = Elgamal.encode_answer 2 in
  let ct = Elgamal.encrypt ~random_bytes pk m in
  Alcotest.(check bool) "wrong key garbles" false (Fp.equal m (Elgamal.decrypt sk' ct))

let test_elgamal_secret_bits () =
  let sk, pk = Elgamal.generate ~random_bytes in
  let bits = Elgamal.secret_bits sk in
  Alcotest.(check int) "bit width" Elgamal.exponent_bits (Array.length bits);
  (* reconstruct pk from bits: g^(sum b_i 2^i) *)
  let acc = ref Fp.one in
  for i = Array.length bits - 1 downto 0 do
    acc := Fp.sqr !acc;
    if bits.(i) then acc := Fp.mul !acc Elgamal.g
  done;
  Alcotest.check fp "bits reconstruct pk" pk !acc

let test_answer_encoding () =
  Alcotest.(check (option int)) "decode 0" (Some 0) (Elgamal.decode_answer ~max:9 (Elgamal.encode_answer 0));
  Alcotest.(check (option int)) "decode 9" (Some 9) (Elgamal.decode_answer ~max:9 (Elgamal.encode_answer 9));
  Alcotest.(check (option int)) "out of range" None (Elgamal.decode_answer ~max:3 (Elgamal.encode_answer 7));
  Alcotest.(check bool) "nonzero encoding" false (Fp.is_zero (Elgamal.encode_answer 0))

let test_missing_sentinel () =
  Alcotest.(check bool) "missing is missing" true (Elgamal.is_missing Elgamal.missing);
  let _, pk = Elgamal.generate ~random_bytes in
  let ct = Elgamal.encrypt ~random_bytes pk (Elgamal.encode_answer 0) in
  Alcotest.(check bool) "real ct is not missing" false (Elgamal.is_missing ct)

let test_ciphertext_serialization () =
  let _, pk = Elgamal.generate ~random_bytes in
  let ct = Elgamal.encrypt ~random_bytes pk (Elgamal.encode_answer 5) in
  Alcotest.(check bool) "roundtrip" true
    (Elgamal.equal_ciphertext ct (Elgamal.ciphertext_of_bytes (Elgamal.ciphertext_to_bytes ct)))

let () =
  Alcotest.run "crypto"
    [
      ( "rsa",
        [
          Alcotest.test_case "keygen shape" `Quick test_keygen_shape;
          Alcotest.test_case "raw roundtrip" `Quick test_raw_roundtrip;
          Alcotest.test_case "CRT matches direct" `Quick test_crt_matches_direct;
          Alcotest.test_case "pubkey serialisation" `Quick test_pubkey_serialization;
        ] );
      ( "pkcs1",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "tampered message" `Quick test_sign_tamper_msg;
          Alcotest.test_case "tampered signature" `Quick test_sign_tamper_sig;
          Alcotest.test_case "wrong key" `Quick test_sign_wrong_key;
          Alcotest.test_case "garbage signatures" `Quick test_sign_garbage;
        ] );
      ( "oaep",
        [
          Alcotest.test_case "mgf1" `Quick test_mgf1_vector;
          Alcotest.test_case "roundtrip" `Quick test_oaep_roundtrip;
          Alcotest.test_case "randomised" `Quick test_oaep_randomized;
          Alcotest.test_case "max length" `Quick test_oaep_max_len;
          Alcotest.test_case "tampered" `Quick test_oaep_tamper;
          Alcotest.test_case "empty message" `Quick test_oaep_empty_message;
        ] );
      ( "elgamal",
        [
          Alcotest.test_case "roundtrip" `Quick test_elgamal_roundtrip;
          Alcotest.test_case "randomised" `Quick test_elgamal_randomized;
          Alcotest.test_case "pair check" `Quick test_elgamal_pair;
          Alcotest.test_case "wrong key" `Quick test_elgamal_wrong_key;
          Alcotest.test_case "secret bits" `Quick test_elgamal_secret_bits;
          Alcotest.test_case "answer encoding" `Quick test_answer_encoding;
          Alcotest.test_case "missing sentinel" `Quick test_missing_sentinel;
          Alcotest.test_case "ciphertext serialisation" `Quick test_ciphertext_serialization;
        ] );
    ]
