(* Task-contract edge cases, driven directly through the chain: timing
   boundaries, authorisation, malformed payloads, and money-flow invariants
   that the happy-path protocol tests don't reach. *)

open Zebra_chain
open Zebralancer

let sys = lazy (Protocol.create_system ~tree_depth:4 ~seed:"test_task_contract" ())

let rb sys n = Protocol.random_bytes sys n

(* One shared task most tests poke at (n=2, generous deadlines). *)
let shared =
  lazy
    (let sys = Lazy.force sys in
     let requester = Protocol.enroll sys in
     let task =
       Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
         ~budget:100 ~answer_window:1000 ~instruct_window:1000 ()
     in
     (sys, requester, task))

let call sys ~wallet task_addr payload =
  let tx =
    Tx.make ~wallet ~nonce:(Network.nonce sys.Protocol.net (Wallet.address wallet))
      ~dst:(Tx.Call task_addr) ~value:0 ~payload
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  Option.get (Network.receipt sys.Protocol.net (Tx.hash tx))

let expect_failure ~msg receipt =
  match receipt with
  | { State.status = State.Failed m; _ } -> Alcotest.(check string) "reason" msg m
  | _ -> Alcotest.failf "expected failure %S" msg

let test_garbage_payload () =
  let sys, _, task = Lazy.force shared in
  let w = Protocol.fresh_funded_wallet sys ~amount:10 in
  let r = call sys ~wallet:w task.Requester.contract (Bytes.of_string "\xffgarbage") in
  match r.State.status with
  | State.Failed m ->
    Alcotest.(check bool) ("prefix of: " ^ m) true (String.length m > 0)
  | _ -> Alcotest.fail "garbage accepted"

let test_instruct_from_stranger () =
  let sys, _, task = Lazy.force shared in
  let stranger = Protocol.fresh_funded_wallet sys ~amount:10 in
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Instruct { rewards = [ 0; 0 ]; proof = Bytes.empty })
  in
  expect_failure ~msg:"only the requester instructs"
    (call sys ~wallet:stranger task.Requester.contract payload)

let test_instruct_too_early () =
  let sys, _, task = Lazy.force shared in
  (* no submissions yet and the answer deadline is far away *)
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Instruct { rewards = [ 0; 0 ]; proof = Bytes.empty })
  in
  expect_failure ~msg:"collection still open"
    (call sys ~wallet:task.Requester.wallet task.Requester.contract payload)

let test_finalize_too_early () =
  let sys, _, task = Lazy.force shared in
  let w = Protocol.fresh_funded_wallet sys ~amount:10 in
  expect_failure ~msg:"instruction deadline not reached"
    (call sys ~wallet:w task.Requester.contract
       (Task_contract.message_to_bytes Task_contract.Finalize))

let test_submit_sentinel_ciphertext () =
  let sys, _, task = Lazy.force shared in
  let w = Protocol.fresh_funded_wallet sys ~amount:10 in
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Submit
         {
           ciphertext =
             Zebra_elgamal.Elgamal.ciphertext_to_bytes Zebra_elgamal.Elgamal.missing;
           attestation = Bytes.empty;
         })
  in
  expect_failure ~msg:"sentinel ciphertext" (call sys ~wallet:w task.Requester.contract payload)

let test_submit_malformed_attestation () =
  let sys, _, task = Lazy.force shared in
  let w = Protocol.fresh_funded_wallet sys ~amount:10 in
  let _, epk = Zebra_elgamal.Elgamal.generate ~random_bytes:(rb sys) in
  let ct =
    Zebra_elgamal.Elgamal.encrypt ~random_bytes:(rb sys) epk
      (Zebra_elgamal.Elgamal.encode_answer 1)
  in
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Submit
         {
           ciphertext = Zebra_elgamal.Elgamal.ciphertext_to_bytes ct;
           attestation = Bytes.of_string "not an attestation";
         })
  in
  match (call sys ~wallet:w task.Requester.contract payload).State.status with
  | State.Failed m when String.length m >= 21 && String.sub m 0 21 = "malformed attestation" -> ()
  | State.Failed m -> Alcotest.failf "unexpected: %s" m
  | _ -> Alcotest.fail "malformed attestation accepted"

let test_instruct_wrong_arity () =
  let sys, _, task = Lazy.force shared in
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Instruct { rewards = [ 1; 2; 3 ]; proof = Bytes.empty })
  in
  (* arity error is checked after the phase check, so close collection via
     the one-answer trick on a dedicated task instead; here we expect the
     phase error since collection is open *)
  expect_failure ~msg:"collection still open"
    (call sys ~wallet:task.Requester.wallet task.Requester.contract payload)

let test_bad_deadline_params_rejected () =
  let sys, _, _ = Lazy.force shared in
  let requester = Protocol.enroll sys in
  (* instruct_deadline before answer_deadline -> init must revert *)
  match
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:50 ~answer_window:10 ~instruct_window:(-5) ()
  with
  | _ -> Alcotest.fail "inverted deadlines accepted"
  | exception Failure m ->
    Alcotest.(check bool) ("message: " ^ m) true
      (String.length m > 0)

let test_full_lifecycle_rewards_and_deadlines () =
  (* A dedicated task exercising: submit -> deadline passes -> late
     submission rejected -> instruct over partial set -> double instruct
     rejected -> finalize-after-finish rejected. *)
  let sys, _, _ = Lazy.force shared in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:100 ~answer_window:6 ~instruct_window:40 ()
  in
  let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 3) ] in
  Network.mine_until sys.Protocol.net
    ~height:(task.Requester.params.Task_contract.answer_deadline + 1);
  (* late submission *)
  let late = Protocol.enroll sys in
  let wallet = Protocol.fresh_funded_wallet sys ~amount:10 in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let tx =
    Worker.submit_tx ~random_bytes:(rb sys) ~cpla:sys.Protocol.cpla ~storage
      ~contract:task.Requester.contract ~wallet ~key:late.Protocol.key
      ~cert_index:late.Protocol.cert_index
      ~ra_path:(Zebra_anonauth.Ra.path sys.Protocol.ra late.Protocol.cert_index)
      ~answer:3 ~nonce:0
  in
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  (match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed "answer deadline passed"; _ } -> ()
  | _ -> Alcotest.fail "late submission accepted");
  (* instruct over the partial set *)
  let rewards = Protocol.reward sys task in
  Alcotest.(check (array int)) "partial" [| 50; 0 |] rewards;
  (* second instruct after finish *)
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Instruct { rewards = [ 50; 0 ]; proof = Bytes.empty })
  in
  expect_failure ~msg:"task finished"
    (call sys ~wallet:task.Requester.wallet task.Requester.contract payload);
  (* finalize after finish *)
  Network.mine_until sys.Protocol.net
    ~height:(task.Requester.params.Task_contract.instruct_deadline + 1);
  let w = Protocol.fresh_funded_wallet sys ~amount:10 in
  expect_failure ~msg:"task finished"
    (call sys ~wallet:w task.Requester.contract
       (Task_contract.message_to_bytes Task_contract.Finalize))

let test_rewards_exceeding_budget_rejected () =
  let sys, _, _ = Lazy.force shared in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys and w2 = Protocol.enroll sys in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:100 ()
  in
  let _ =
    Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (w1, 1); (w2, 1) ]
  in
  let payload =
    Task_contract.message_to_bytes
      (Task_contract.Instruct { rewards = [ 90; 90 ]; proof = Bytes.empty })
  in
  expect_failure ~msg:"rewards exceed budget"
    (call sys ~wallet:task.Requester.wallet task.Requester.contract payload)

let test_batch_runner () =
  (* The batch driver shares one circuit setup across tasks. *)
  let sys, _, _ = Lazy.force shared in
  let results =
    Protocol.run_batch sys ~policy:(Policy.Majority { choices = 4 }) ~budget_per_task:60
      ~answer_sets:[ [ 1; 1 ]; [ 2; 0 ]; [ 3; 3 ] ]
  in
  Alcotest.(check int) "three tasks" 3 (List.length results);
  Alcotest.(check (array int)) "task 1" [| 30; 30 |] (List.nth results 0);
  Alcotest.(check (array int)) "task 2 (tie -> 0)" [| 0; 30 |] (List.nth results 1);
  Alcotest.(check (array int)) "task 3" [| 30; 30 |] (List.nth results 2)

let test_batch_rejects_ragged () =
  let sys, _, _ = Lazy.force shared in
  Alcotest.check_raises "ragged" (Invalid_argument "Protocol.run_batch: ragged answer sets")
    (fun () ->
      ignore
        (Protocol.run_batch sys ~policy:(Policy.Majority { choices = 4 }) ~budget_per_task:10
           ~answer_sets:[ [ 1; 2 ]; [ 1 ] ]))

let test_money_conservation_across_tasks () =
  let sys, _, _ = Lazy.force shared in
  Alcotest.(check int) "total supply conserved" 1_000_000_000
    (Network.total_supply sys.Protocol.net);
  Alcotest.(check bytes) "replay agrees" (Network.state_root sys.Protocol.net)
    (Network.replay sys.Protocol.net)

let () =
  Alcotest.run "task_contract"
    [
      ( "rejects",
        [
          Alcotest.test_case "garbage payload" `Quick test_garbage_payload;
          Alcotest.test_case "stranger instructs" `Quick test_instruct_from_stranger;
          Alcotest.test_case "instruct too early" `Quick test_instruct_too_early;
          Alcotest.test_case "finalize too early" `Quick test_finalize_too_early;
          Alcotest.test_case "sentinel ciphertext" `Quick test_submit_sentinel_ciphertext;
          Alcotest.test_case "malformed attestation" `Quick test_submit_malformed_attestation;
          Alcotest.test_case "wrong arity instruct" `Quick test_instruct_wrong_arity;
          Alcotest.test_case "inverted deadlines" `Quick test_bad_deadline_params_rejected;
          Alcotest.test_case "over-budget rewards" `Quick test_rewards_exceeding_budget_rejected;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "deadlines and phases" `Quick test_full_lifecycle_rewards_and_deadlines;
          Alcotest.test_case "batch runner" `Quick test_batch_runner;
          Alcotest.test_case "batch ragged" `Quick test_batch_rejects_ragged;
          Alcotest.test_case "money conservation + replay" `Quick test_money_conservation_across_tasks;
        ] );
    ]
