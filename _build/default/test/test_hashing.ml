(* SHA-256 / HMAC / Merkle tests, including FIPS and RFC vectors. *)

open Zebra_hashing

let qtest name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- SHA-256 FIPS 180-4 vectors --- *)

let vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( String.make 1000000 'a',
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) "digest" expected (Sha256.hex_digest_string input))
    vectors

let test_sha256_incremental () =
  (* Chunked updates must agree with the one-shot digest. *)
  let data = String.init 10000 (fun i -> Char.chr (i mod 251)) in
  let one_shot = Sha256.digest_string data in
  let sizes = [ 1; 7; 63; 64; 65; 128; 1000 ] in
  List.iter
    (fun sz ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length data do
        let take = min sz (String.length data - !pos) in
        Sha256.update_string ctx (String.sub data !pos take);
        pos := !pos + take
      done;
      Alcotest.(check bytes) (Printf.sprintf "chunk %d" sz) one_shot (Sha256.finalize ctx))
    sizes

let test_hex_roundtrip () =
  let d = Sha256.digest_string "zebra" in
  Alcotest.(check bytes) "hex roundtrip" d (Sha256.of_hex (Sha256.to_hex d))

(* --- HMAC RFC 4231 vectors --- *)

let test_hmac_vectors () =
  let check name key msg expected =
    Alcotest.(check string) name expected (Sha256.to_hex (Hmac.hmac ~key msg))
  in
  check "rfc4231 case 1"
    (Bytes.make 20 '\x0b')
    (Bytes.of_string "Hi There")
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "rfc4231 case 2"
    (Bytes.of_string "Jefe")
    (Bytes.of_string "what do ya want for nothing?")
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "rfc4231 case 3" (Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"

(* --- ChaCha20 RFC 8439 vector --- *)

let test_chacha20_block () =
  let key = Bytes.init 32 Char.chr in
  let nonce = Sha256.of_hex "000000090000004a00000000" in
  let block = Zebra_rng.Chacha20.block ~key ~counter:1l ~nonce in
  Alcotest.(check string) "rfc8439 2.3.2"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Sha256.to_hex block)

let test_chacha20_determinism () =
  let mk () = Zebra_rng.Chacha20.create ~seed:"abc" in
  let a = Zebra_rng.Chacha20.bytes (mk ()) 100 in
  let b = Zebra_rng.Chacha20.bytes (mk ()) 100 in
  Alcotest.(check bytes) "same seed same stream" a b;
  let c = Zebra_rng.Chacha20.bytes (Zebra_rng.Chacha20.create ~seed:"abd") 100 in
  Alcotest.(check bool) "different seed differs" false (Bytes.equal a c)

let test_chacha20_copy () =
  let t = Zebra_rng.Chacha20.create ~seed:"copy" in
  ignore (Zebra_rng.Chacha20.bytes t 33);
  let t2 = Zebra_rng.Chacha20.copy t in
  Alcotest.(check bytes) "copied stream continues identically"
    (Zebra_rng.Chacha20.bytes t 50) (Zebra_rng.Chacha20.bytes t2 50)

(* --- Merkle --- *)

let leaves_of n = List.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_proof_all_sizes () =
  List.iter
    (fun n ->
      let leaves = leaves_of n in
      let root = Merkle.root leaves in
      List.iteri
        (fun i leaf ->
          let proof = Merkle.proof leaves i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d" n i)
            true
            (Merkle.verify ~root ~leaf proof))
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 17 ]

let test_merkle_reject_wrong_leaf () =
  let leaves = leaves_of 8 in
  let root = Merkle.root leaves in
  let proof = Merkle.proof leaves 3 in
  Alcotest.(check bool) "wrong leaf rejected" false
    (Merkle.verify ~root ~leaf:(Bytes.of_string "forged") proof)

let test_merkle_reject_wrong_position () =
  let leaves = leaves_of 8 in
  let root = Merkle.root leaves in
  let proof = Merkle.proof leaves 3 in
  Alcotest.(check bool) "leaf at wrong position rejected" false
    (Merkle.verify ~root ~leaf:(List.nth leaves 4) proof)

let test_merkle_root_changes () =
  let r1 = Merkle.root (leaves_of 8) in
  let leaves' = List.mapi (fun i l -> if i = 5 then Bytes.of_string "tampered" else l) (leaves_of 8) in
  Alcotest.(check bool) "tamper changes root" false (Bytes.equal r1 (Merkle.root leaves'))

let prop_merkle_sound =
  qtest "random tree proofs verify"
    QCheck2.Gen.(pair (int_range 1 40) (int_bound 1000))
    (fun (n, salt) ->
      let leaves = List.init n (fun i -> Bytes.of_string (Printf.sprintf "%d-%d" salt i)) in
      let root = Merkle.root leaves in
      List.for_all
        (fun i -> Merkle.verify ~root ~leaf:(List.nth leaves i) (Merkle.proof leaves i))
        (List.init n Fun.id))

let () =
  Alcotest.run "hashing"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        ] );
      ("hmac", [ Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_vectors ]);
      ( "chacha20",
        [
          Alcotest.test_case "RFC 8439 block" `Quick test_chacha20_block;
          Alcotest.test_case "determinism" `Quick test_chacha20_determinism;
          Alcotest.test_case "copy" `Quick test_chacha20_copy;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "proofs verify (sizes)" `Quick test_merkle_proof_all_sizes;
          Alcotest.test_case "wrong leaf rejected" `Quick test_merkle_reject_wrong_leaf;
          Alcotest.test_case "wrong position rejected" `Quick test_merkle_reject_wrong_position;
          Alcotest.test_case "tamper changes root" `Quick test_merkle_root_changes;
          prop_merkle_sound;
        ] );
    ]
