test/test_anonauth.ml: Alcotest Array Bytes Fp Lazy List Option Printf Zebra_anonauth Zebra_field Zebra_mimc Zebra_rng Zebra_snark
