test/test_truth_inference.ml: Alcotest Array Float Printf Zebra_rng Zebralancer
