test/test_r1cs.ml: Alcotest Array Cs Fp Gadgets List Nat Printf QCheck2 QCheck_alcotest Zebra_field Zebra_mimc Zebra_numeric Zebra_r1cs Zebra_rng
