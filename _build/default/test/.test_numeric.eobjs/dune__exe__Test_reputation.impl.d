test/test_reputation.ml: Address Alcotest Bytes Fp Lazy Network Option Reputation Reputation_contract State Tx Wallet Zebra_anonauth Zebra_chain Zebra_field Zebra_rng Zebra_snark Zebralancer
