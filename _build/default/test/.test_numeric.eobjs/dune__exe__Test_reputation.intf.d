test/test_reputation.mli:
