test/test_poseidon.mli:
