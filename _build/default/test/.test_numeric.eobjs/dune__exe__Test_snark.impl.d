test/test_snark.ml: Alcotest Array Bytes Char Cs Fp Gadgets List Zebra_field Zebra_mimc Zebra_r1cs Zebra_rng Zebra_snark
