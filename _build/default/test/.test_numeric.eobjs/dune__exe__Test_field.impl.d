test/test_field.ml: Alcotest Array Bytes Fft Fp List Poly Printf QCheck2 QCheck_alcotest Zebra_field Zebra_numeric Zebra_rng
