test/test_truth_inference.mli:
