test/test_chain.ml: Address Alcotest Array Block Bytes Char Contract Lazy Light_client List Network State String Tx Wallet Zebra_chain Zebra_codec Zebra_rng
