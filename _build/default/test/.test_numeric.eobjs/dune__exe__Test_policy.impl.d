test/test_policy.ml: Alcotest Array List Option QCheck2 QCheck_alcotest Random Zebralancer
