test/test_task_contract.mli:
