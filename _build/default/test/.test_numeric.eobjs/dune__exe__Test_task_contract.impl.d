test/test_task_contract.ml: Alcotest Bytes Lazy List Network Option Policy Protocol Requester State String Task_contract Tx Wallet Worker Zebra_anonauth Zebra_chain Zebra_elgamal Zebralancer
