test/test_anonauth.mli:
