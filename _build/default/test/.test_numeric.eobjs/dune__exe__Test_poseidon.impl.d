test/test_poseidon.ml: Alcotest Array Cs Fp Gadgets Printf Zebra_field Zebra_mimc Zebra_poseidon Zebra_r1cs Zebra_rng
