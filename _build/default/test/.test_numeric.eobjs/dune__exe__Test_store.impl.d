test/test_store.ml: Alcotest Array Block Bytes Lazy Light_client List Network QCheck2 QCheck_alcotest Tx Wallet Zebra_chain Zebra_rng Zebra_store
