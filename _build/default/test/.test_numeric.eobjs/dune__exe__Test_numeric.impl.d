test/test_numeric.ml: Alcotest Bytes Char List Modular Nat Prime QCheck2 QCheck_alcotest String Zebra_numeric Zebra_rng
