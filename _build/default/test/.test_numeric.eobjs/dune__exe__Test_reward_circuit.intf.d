test/test_reward_circuit.mli:
