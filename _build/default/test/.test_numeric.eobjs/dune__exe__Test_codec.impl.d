test/test_codec.ml: Alcotest Bytes Char Printf QCheck2 QCheck_alcotest Zebra_anonauth Zebra_chain Zebra_codec Zebra_elgamal Zebra_field Zebra_rng Zebra_rsa Zebra_snark Zebralancer
