test/test_crypto.ml: Alcotest Array Bytes Char Fp Lazy Modular Nat Prime Zebra_elgamal Zebra_field Zebra_hashing Zebra_numeric Zebra_rng Zebra_rsa
