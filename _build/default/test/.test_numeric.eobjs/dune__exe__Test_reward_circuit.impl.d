test/test_reward_circuit.ml: Alcotest Array Bytes Fp Lazy List Option Printf Random Zebra_elgamal Zebra_field Zebra_rng Zebralancer
