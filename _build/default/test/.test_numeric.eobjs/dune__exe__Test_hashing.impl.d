test/test_hashing.ml: Alcotest Bytes Char Fun Hmac List Merkle Printf QCheck2 QCheck_alcotest Sha256 String Zebra_hashing Zebra_rng
