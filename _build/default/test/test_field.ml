(* Field, FFT and polynomial tests. *)

open Zebra_field

let rng = Zebra_rng.Chacha20.create ~seed:"test_field"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n
let fresh_fp () = Fp.random random_bytes

let fp = Alcotest.testable Fp.pp Fp.equal

let qtest name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Generator: random field element via an int seed expanded through ChaCha. *)
let arb_fp =
  QCheck2.Gen.map
    (fun seed ->
      let r = Zebra_rng.Chacha20.create ~seed:(Printf.sprintf "fp-%d" seed) in
      Fp.random (Zebra_rng.Chacha20.bytes r))
    QCheck2.Gen.(int_bound 1_000_000)

(* --- Fp --- *)

let test_constants () =
  Alcotest.check fp "0+1=1" Fp.one (Fp.add Fp.zero Fp.one);
  Alcotest.check fp "1+1=2" Fp.two (Fp.add Fp.one Fp.one);
  Alcotest.check fp "p=0" Fp.zero (Fp.of_nat Fp.modulus)

let test_negative_of_int () =
  Alcotest.check fp "-1 + 1 = 0" Fp.zero (Fp.add (Fp.of_int (-1)) Fp.one);
  Alcotest.check fp "-5 = neg 5" (Fp.neg (Fp.of_int 5)) (Fp.of_int (-5))

let test_bytes_roundtrip () =
  let x = fresh_fp () in
  Alcotest.check fp "roundtrip" x (Fp.of_bytes_be_exn (Fp.to_bytes_be x))

let test_bytes_noncanonical () =
  let b = Bytes.make 32 '\xff' in
  Alcotest.check_raises "non-canonical rejected"
    (Invalid_argument "Fp.of_bytes_be_exn: not canonical") (fun () ->
      ignore (Fp.of_bytes_be_exn b))

let test_root_of_unity () =
  let w = Fp.root_of_unity 10 in
  Alcotest.check fp "w^1024 = 1" Fp.one (Fp.pow_int w 1024);
  Alcotest.(check bool) "w^512 <> 1" false (Fp.equal Fp.one (Fp.pow_int w 512))

let test_max_two_adic_root () =
  let w = Fp.root_of_unity 28 in
  Alcotest.check fp "order 2^28" Fp.one (Fp.pow w (Zebra_numeric.Nat.pow Zebra_numeric.Nat.two 28));
  Alcotest.(check bool) "primitive" false
    (Fp.equal Fp.one (Fp.pow w (Zebra_numeric.Nat.pow Zebra_numeric.Nat.two 27)))

let test_batch_inv () =
  let a = Array.init 20 (fun _ -> fresh_fp ()) in
  let inv = Fp.batch_inv a in
  Array.iteri (fun i x -> Alcotest.check fp "x * x^-1" Fp.one (Fp.mul x inv.(i))) a

let test_batch_inv_zero () =
  Alcotest.check_raises "zero in batch" Division_by_zero (fun () ->
      ignore (Fp.batch_inv [| Fp.one; Fp.zero |]))

let prop_field_laws =
  qtest "field laws" (QCheck2.Gen.triple arb_fp arb_fp arb_fp) (fun (a, b, c) ->
      Fp.equal (Fp.mul a (Fp.add b c)) (Fp.add (Fp.mul a b) (Fp.mul a c))
      && Fp.equal (Fp.mul a b) (Fp.mul b a)
      && Fp.equal (Fp.add (Fp.sub a b) b) a
      && Fp.equal (Fp.sub Fp.zero a) (Fp.neg a))

let prop_inverse =
  qtest "multiplicative inverse" arb_fp (fun a ->
      Fp.is_zero a || Fp.equal Fp.one (Fp.mul a (Fp.inv a)))

let prop_sqr =
  qtest "sqr = mul self" arb_fp (fun a -> Fp.equal (Fp.sqr a) (Fp.mul a a))

(* --- FFT --- *)

let rand_poly n = Array.init n (fun _ -> fresh_fp ())

let test_fft_roundtrip () =
  List.iter
    (fun n ->
      let d = Fft.domain n in
      let a = rand_poly (Fft.size d) in
      let b = Array.copy a in
      Fft.fft d b;
      Fft.ifft d b;
      Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "n=%d i=%d" n i) a.(i) x) b)
    [ 1; 2; 4; 8; 64; 256 ]

let test_fft_matches_eval () =
  let d = Fft.domain 8 in
  let coeffs = rand_poly 8 in
  let p = Poly.of_coeffs (Array.copy coeffs) in
  let evals = Array.copy coeffs in
  Fft.fft d evals;
  for i = 0 to 7 do
    Alcotest.check fp (Printf.sprintf "eval at w^%d" i) (Poly.eval p (Fft.element d i)) evals.(i)
  done

let test_coset_fft_matches_eval () =
  let d = Fft.domain 8 in
  let coeffs = rand_poly 8 in
  let p = Poly.of_coeffs (Array.copy coeffs) in
  let evals = Array.copy coeffs in
  Fft.coset_fft d evals;
  let g = Fp.generator in
  for i = 0 to 7 do
    let x = Fp.mul g (Fft.element d i) in
    Alcotest.check fp (Printf.sprintf "coset eval %d" i) (Poly.eval p x) evals.(i)
  done

let test_coset_roundtrip () =
  let d = Fft.domain 16 in
  let a = rand_poly 16 in
  let b = Array.copy a in
  Fft.coset_fft d b;
  Fft.coset_ifft d b;
  Array.iteri (fun i x -> Alcotest.check fp (Printf.sprintf "i=%d" i) a.(i) x) b

let test_vanishing () =
  let d = Fft.domain 8 in
  for i = 0 to 7 do
    Alcotest.check fp "Z(w^i)=0" Fp.zero (Fft.vanishing_at d (Fft.element d i))
  done;
  let g = Fp.generator in
  Alcotest.check fp "Z on coset" (Fft.vanishing_on_coset d)
    (Fft.vanishing_at d (Fp.mul g Fp.one))

let test_lagrange_at () =
  let d = Fft.domain 8 in
  let x = fresh_fp () in
  let ls = Fft.lagrange_at d x in
  (* Sum of all Lagrange basis polys is 1. *)
  let sum = Array.fold_left Fp.add Fp.zero ls in
  Alcotest.check fp "partition of unity" Fp.one sum;
  (* Against the naive interpolation through an indicator function. *)
  let pts = List.init 8 (fun i -> (Fft.element d i, if i = 3 then Fp.one else Fp.zero)) in
  let l3 = Poly.interpolate pts in
  Alcotest.check fp "L_3(x)" (Poly.eval l3 x) ls.(3)

(* --- Poly --- *)

let test_poly_divmod () =
  let p = Poly.of_coeffs (rand_poly 10) in
  let d = Poly.of_coeffs (rand_poly 4) in
  let q, r = Poly.divmod p d in
  Alcotest.(check bool) "deg r < deg d" true (Poly.degree r < Poly.degree d);
  Alcotest.(check bool) "p = q*d + r" true (Poly.equal p (Poly.add (Poly.mul q d) r))

let test_poly_interpolate_roundtrip () =
  let pts = List.init 6 (fun i -> (Fp.of_int (i + 1), fresh_fp ())) in
  let p = Poly.interpolate pts in
  List.iter (fun (x, y) -> Alcotest.check fp "through point" y (Poly.eval p x)) pts

let test_poly_interpolate_duplicate () =
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate x")
    (fun () -> ignore (Poly.interpolate [ (Fp.one, Fp.one); (Fp.one, Fp.two) ]))

let prop_poly_mul_eval =
  qtest "eval is ring hom" (QCheck2.Gen.pair arb_fp (QCheck2.Gen.int_bound 8))
    (fun (x, n) ->
      let a = Poly.of_coeffs (rand_poly (n + 1)) in
      let b = Poly.of_coeffs (rand_poly (n + 2)) in
      Fp.equal (Poly.eval (Poly.mul a b) x) (Fp.mul (Poly.eval a x) (Poly.eval b x))
      && Fp.equal (Poly.eval (Poly.add a b) x) (Fp.add (Poly.eval a x) (Poly.eval b x)))

let () =
  Alcotest.run "field"
    [
      ( "fp",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "negative of_int" `Quick test_negative_of_int;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "non-canonical bytes" `Quick test_bytes_noncanonical;
          Alcotest.test_case "root of unity" `Quick test_root_of_unity;
          Alcotest.test_case "2^28 root" `Quick test_max_two_adic_root;
          Alcotest.test_case "batch inversion" `Quick test_batch_inv;
          Alcotest.test_case "batch inversion zero" `Quick test_batch_inv_zero;
          prop_field_laws; prop_inverse; prop_sqr;
        ] );
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "matches Horner" `Quick test_fft_matches_eval;
          Alcotest.test_case "coset matches Horner" `Quick test_coset_fft_matches_eval;
          Alcotest.test_case "coset roundtrip" `Quick test_coset_roundtrip;
          Alcotest.test_case "vanishing polynomial" `Quick test_vanishing;
          Alcotest.test_case "lagrange at point" `Quick test_lagrange_at;
        ] );
      ( "poly",
        [
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "interpolation" `Quick test_poly_interpolate_roundtrip;
          Alcotest.test_case "duplicate abscissae" `Quick test_poly_interpolate_duplicate;
          prop_poly_mul_eval;
        ] );
    ]
