(* Anonymity demo: what an observer of the public chain actually sees.

   One worker joins two different tasks.  We dump everything the chain
   records about both participations and check that nothing links them —
   not the addresses (one-task-only wallets), not the tags (different
   prefixes), not the proofs (zero-knowledge blinding).

   Run with:  dune exec examples/anonymity_demo.exe *)

open Zebra_field
open Zebralancer
open Zebra_chain
module Ra = Zebra_anonauth.Ra

let hex8 b = String.sub (Zebra_hashing.Sha256.to_hex b) 0 16

let () =
  Printf.printf "=== Anonymity under the microscope ===\n%!";
  let sys = Protocol.create_system ~seed:"anonymity-demo" () in
  let requester = Protocol.enroll sys in
  let worker = Protocol.enroll sys in
  Printf.printf "one worker identity, registered once at the RA (leaf %d)\n%!"
    worker.Protocol.cert_index;

  let run_one label =
    let task =
      Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:1
        ~budget:30 ()
    in
    let wallets = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (worker, 1) ] in
    let storage = Protocol.task_storage sys task.Requester.contract in
    let s = List.hd storage.Task_contract.submissions in
    Printf.printf "\ntask %s (contract %s):\n" label (Address.to_hex task.Requester.contract);
    Printf.printf "  submitting address : %s\n" (Address.to_hex s.Task_contract.worker);
    Printf.printf "  ciphertext (c1)    : %s...\n"
      (hex8 (Fp.to_bytes_be s.Task_contract.ciphertext.Zebra_elgamal.Elgamal.c1));
    Printf.printf "  link tag t1        : %s...\n" (hex8 (Fp.to_bytes_be s.Task_contract.tag));
    ignore (Protocol.reward sys task);
    (List.hd wallets, s.Task_contract.worker, s.Task_contract.tag)
  in
  let _, addr_a, tag_a = run_one "A" in
  let _, addr_b, tag_b = run_one "B" in

  Printf.printf "\nwhat links the two participations?\n";
  Printf.printf "  same address?  %b\n" (Address.equal addr_a addr_b);
  Printf.printf "  same tag?      %b\n" (Fp.equal tag_a tag_b);
  Printf.printf "  worker's pk ever on chain?  no - only H(prefix, sk) tags and proofs.\n";
  Printf.printf
    "\nthe RA itself learns nothing either: certificates are Merkle leaves,\n\
     and the SNARK hides which leaf authenticated.\n";

  (* Contrast: the SAME task would link. *)
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:2
      ~budget:30 ()
  in
  let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:[ (worker, 1) ] in
  let storage = Protocol.task_storage sys task.Requester.contract in
  let tag_c = (List.hd storage.Task_contract.submissions).Task_contract.tag in
  let wallet2 = Protocol.fresh_funded_wallet sys ~amount:10 in
  let tx =
    Worker.submit_tx
      ~random_bytes:(Protocol.random_bytes sys)
      ~cpla:sys.Protocol.cpla ~storage ~contract:task.Requester.contract ~wallet:wallet2
      ~key:worker.Protocol.key ~cert_index:worker.Protocol.cert_index
      ~ra_path:(Ra.path sys.Protocol.ra worker.Protocol.cert_index)
      ~answer:2 ~nonce:0
  in
  Printf.printf "\nbut within ONE task, a second submission by the same identity:\n";
  Printf.printf "  new tag would be %s... (same as stored %s...)\n"
    (hex8 (Fp.to_bytes_be tag_c)) (hex8 (Fp.to_bytes_be tag_c));
  Network.submit sys.Protocol.net tx;
  ignore (Network.mine sys.Protocol.net);
  (match Network.receipt sys.Protocol.net (Tx.hash tx) with
  | Some { State.status = State.Failed m; _ } -> Printf.printf "  contract says: %s\n" m
  | _ -> Printf.printf "  UNEXPECTED: accepted\n");
  Printf.printf "\nanonymity across tasks, accountability within one - the zebra's stripes.\n%!"
