(* Truth inference across a batch of annotation tasks: the requester-side
   EM estimator (Dawid-Skene) versus the on-chain majority baseline.

   The incentive the contract enforces is majority voting (the paper's
   instantiation); EM is the off-chain quality upgrade the paper's Section
   IV points at ("estimation maximization iterations" [9-11]).  A requester
   who ran a batch of ZebraLancer tasks with the same worker population can
   post-process the decrypted answers with EM to grade quality better when
   some workers are spammers.

   Run with:  dune exec examples/truth_discovery.exe *)

module Ti = Zebralancer.Truth_inference

let rng = Zebra_rng.Chacha20.create ~seed:"truth-discovery"
let random_bytes n = Zebra_rng.Chacha20.bytes rng n

let () =
  Printf.printf "=== Truth discovery: majority vs Dawid-Skene EM ===\n%!";
  let reliabilities = [| 0.95; 0.92; 0.35; 0.3; 0.28; 0.3; 0.25 |] in
  Printf.printf "crowd: 2 experts (~0.95) and 5 spammers (~0.3), 4 choices, 200 images\n\n%!";
  let data, truth =
    Ti.synthesize ~random_bytes ~items:200 ~choices:4 ~reliabilities ~missing_rate:0.05 ()
  in
  let maj = Ti.majority data in
  let em = Ti.dawid_skene data in
  Printf.printf "majority voting accuracy : %5.1f%%\n" (100. *. Ti.accuracy ~truth maj);
  Printf.printf "Dawid-Skene EM accuracy  : %5.1f%%  (%d iterations)\n\n"
    (100. *. Ti.accuracy ~truth em.Ti.labels)
    em.Ti.iterations;
  Printf.printf "estimated worker reliability (diagonal confusion mass):\n";
  Array.iteri
    (fun w c ->
      let k = Array.length c in
      let diag = ref 0.0 in
      for i = 0 to k - 1 do
        diag := !diag +. c.(i).(i)
      done;
      Printf.printf "  worker %d: true %.2f, estimated %.2f %s\n" (w + 1) reliabilities.(w)
        (!diag /. float_of_int k)
        (if reliabilities.(w) > 0.5 then "(expert)" else "(spammer)"))
    em.Ti.confusion;
  Printf.printf
    "\nEM recovers who the experts are without any ground truth - exactly the\n\
     signal a requester needs to choose quota policies or blocklists for the\n\
     next batch of tasks.\n%!"
