(* A small marketplace: several requesters with different task types and
   incentive policies, overlapping worker pools, tasks interleaving in the
   same blocks — the deployment the paper's introduction motivates.

   Run with:  dune exec examples/marketplace.exe *)

open Zebralancer
open Zebra_chain

let () =
  Printf.printf "=== ZebraLancer marketplace ===\n%!";
  let sys = Protocol.create_system ~seed:"marketplace" () in

  (* Three requesters, five workers; everyone registers once. *)
  let requesters = List.init 3 (fun _ -> Protocol.enroll sys) in
  let workers = Array.init 5 (fun _ -> Protocol.enroll sys) in
  Printf.printf "registered 3 requesters and 5 workers\n%!";

  let jobs =
    [
      ( "image labels (majority)",
        List.nth requesters 0,
        Policy.Majority { choices = 4 },
        120,
        [ (0, 1); (1, 1); (2, 1); (3, 2) ] );
      ( "quality-gated survey (quota 3)",
        List.nth requesters 1,
        Policy.Majority_threshold { choices = 3; quota = 3 },
        90,
        [ (1, 0); (2, 0); (4, 0) ] );
      ( "sensing auction (2 winners)",
        List.nth requesters 2,
        Policy.Reverse_auction { winners = 2; max_bid = 12 },
        60,
        [ (0, 9); (2, 4); (3, 6); (4, 11) ] );
    ]
  in

  (* Publish all three tasks first (they share the chain), then let workers
     answer, then settle each. *)
  let published =
    List.map
      (fun (name, requester, policy, budget, assignment) ->
        let n = List.length assignment in
        let task = Protocol.publish_task sys ~requester ~policy ~n ~budget () in
        Printf.printf "published %-32s -> %s\n%!" name
          (Address.to_hex task.Requester.contract);
        (name, task, assignment))
      jobs
  in
  List.iter
    (fun (name, task, assignment) ->
      let pairs = List.map (fun (w, a) -> (workers.(w), a)) assignment in
      let _ = Protocol.submit_answers sys ~task:task.Requester.contract ~workers:pairs in
      Printf.printf "collected %d answers for %s\n%!" (List.length pairs) name)
    published;
  List.iter
    (fun (name, task, assignment) ->
      let rewards = Protocol.reward sys task in
      Printf.printf "%-32s rewards: %s (workers %s)\n%!" name
        (String.concat "," (List.map string_of_int (Array.to_list rewards)))
        (String.concat "," (List.map (fun (w, _) -> string_of_int (w + 1)) assignment)))
    published;

  Printf.printf "\nchain height %d; supply conserved: %b; replay agrees: %b\n%!"
    (Network.height sys.Protocol.net)
    (Network.total_supply sys.Protocol.net = 1_000_000_000)
    (Bytes.equal (Network.state_root sys.Protocol.net) (Network.replay sys.Protocol.net));
  Printf.printf
    "worker 3 served three different requesters; nothing on the chain links\n\
     those three participations to one person.\n%!"
