(* Data-intensive task with off-chain storage (paper footnote 13 and open
   question 2): the image to annotate lives in a content-addressed store;
   the task contract anchors only its 32-byte digest.  Workers fetch the
   payload from the store, verify it against the on-chain anchor, then
   participate as usual.  A light client double-checks that the submission
   really made it into a block, using headers only.

   Run with:  dune exec examples/offchain_data.exe *)

open Zebralancer
open Zebra_chain
module Store = Zebra_store.Store
module Sha256 = Zebra_hashing.Sha256

let () =
  Printf.printf "=== Off-chain data + light client ===\n%!";
  let sys = Protocol.create_system ~seed:"offchain-data" () in
  let store = Store.create ~chunk_size:1024 () in

  (* The requester uploads a 100KB "image" to the store. *)
  let image = Protocol.random_bytes sys 100_000 in
  let digest = Store.put store image in
  Printf.printf "image: %d bytes -> %d store objects, root %s...\n%!" (Bytes.length image)
    (Store.num_objects store)
    (String.sub (Sha256.to_hex digest) 0 16);

  (* Publish with the digest anchored in the contract parameters. *)
  let requester = Protocol.enroll sys in
  let workers = List.map (fun _ -> Protocol.enroll sys) [ 1; 2; 3 ] in
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ~data_digest:digest ()
  in
  let storage = Protocol.task_storage sys task.Requester.contract in
  Printf.printf "contract anchors digest %s... (%d bytes on-chain, not %d)\n%!"
    (String.sub (Sha256.to_hex storage.Task_contract.params.Task_contract.data_digest) 0 16)
    (Bytes.length digest) (Bytes.length image);

  (* Each worker fetches and verifies the payload before answering. *)
  let fetched = Store.get store storage.Task_contract.params.Task_contract.data_digest in
  (match fetched with
  | Some blob when Bytes.equal blob image ->
    Printf.printf "worker fetched the payload from the store; digest verifies.\n%!"
  | _ -> failwith "payload unavailable or corrupted");

  (* Corruption in the store is detected, never silently served. *)
  let evil = Store.create ~chunk_size:1024 () in
  let evil_digest = Store.put evil image in
  Store.corrupt evil evil_digest;
  (match Store.get evil evil_digest with
  | None -> Printf.printf "a tampered store copy is rejected by hash verification.\n%!"
  | Some _ -> failwith "corruption undetected!");

  (* Run the task as usual. *)
  let wallets =
    Protocol.submit_answers sys ~task:task.Requester.contract
      ~workers:(List.map2 (fun w a -> (w, a)) workers [ 1; 1; 2 ])
  in
  ignore wallets;
  let rewards = Protocol.reward sys task in
  Printf.printf "task settled; rewards %s.\n%!"
    (String.concat "," (List.map string_of_int (Array.to_list rewards)));

  (* A light client confirms the reward instruction's inclusion. *)
  let lc = Light_client.create () in
  (match Light_client.sync lc (Network.blocks sys.Protocol.net) with
  | Ok () -> ()
  | Error e -> failwith ("light client diverged: " ^ e));
  let tip = List.nth (Network.blocks sys.Protocol.net) (Light_client.height lc - 1) in
  (match tip.Block.txs with
  | tx :: _ ->
    let proof = Block.tx_proof tip 0 in
    let ok = Light_client.verify_inclusion lc ~height:tip.Block.header.Block.height tx proof in
    Printf.printf "light client verified a tip transaction from headers alone: %b\n%!" ok
  | [] -> Printf.printf "tip block empty (nothing to prove)\n%!");
  Printf.printf "done.\n%!"
