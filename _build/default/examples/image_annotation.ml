(* The paper's Section VI experiment: a series of image-annotation tasks
   collecting 3, 5, 7, 9 and 11 answers under the majority-vote incentive
   (Shah-Zhou multiplicative mechanism specialised to tau/n-or-nothing).

   For each task size we report the per-phase wall-clock cost and the
   on-chain gas/bytes, mirroring the deployment the authors ran on their
   four-PC Ethereum test net.

   Run with:  dune exec examples/image_annotation.exe *)

open Zebralancer
open Zebra_chain

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* A synthetic image-annotation crowd: most workers see the true label,
   some guess (the paper's task is a multiple-choice problem). *)
let synthetic_answers ~n ~choices ~truth ~noise_every =
  List.init n (fun i -> if (i + 1) mod noise_every = 0 then (truth + 1) mod choices else truth)

let run_one sys ~n =
  let choices = 4 and truth = 2 in
  let budget = 30 * n in
  let answers = synthetic_answers ~n ~choices ~truth ~noise_every:4 in
  let requester = Protocol.enroll sys in
  let workers = List.map (fun a -> (Protocol.enroll sys, a)) answers in
  let task, t_publish =
    time (fun () ->
        Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices }) ~n ~budget ())
  in
  let _, t_collect =
    time (fun () -> Protocol.submit_answers sys ~task:task.Requester.contract ~workers)
  in
  let rewards, t_reward = time (fun () -> Protocol.reward sys task) in
  let correct = List.length (List.filter (fun a -> a = truth) answers) in
  let paid = Array.fold_left ( + ) 0 rewards in
  Printf.printf "  n=%2d  publish %6.2fs   collect %6.2fs   reward %6.2fs   %d/%d correct, paid %d/%d\n%!"
    n t_publish t_collect t_reward correct n paid budget;
  assert (paid = correct * (budget / n))

let () =
  Printf.printf "=== Image annotation tasks (paper Section VI) ===\n%!";
  let sys = Protocol.create_system ~seed:"image-annotation" () in
  Printf.printf "collecting 3 / 5 / 7 / 9 / 11 labels per image:\n%!";
  List.iter (fun n -> run_one sys ~n) [ 3; 5; 7; 9; 11 ];
  Printf.printf "all tasks settled; chain height %d, total supply conserved: %b\n%!"
    (Network.height sys.Protocol.net)
    (Network.total_supply sys.Protocol.net = 1_000_000_000)
