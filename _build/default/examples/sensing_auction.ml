(* Mobile crowdsensing with a reverse auction (paper Section IV: the model
   "captures the essence of many auction-based incentive mechanisms" when
   the submitted values are bids).

   A requester wants 3 sensor readings; 6 workers bid their price for the
   job.  The 3 cheapest win and are all paid the 4th-lowest bid (the
   classical truthful (k+1)-price auction), with the bids themselves kept
   confidential from the chain.

   Run with:  dune exec examples/sensing_auction.exe *)

open Zebralancer
open Zebra_chain

let () =
  Printf.printf "=== Crowdsensing reverse auction ===\n%!";
  let sys = Protocol.create_system ~seed:"sensing-auction" () in
  let bids = [ 7; 2; 9; 4; 12; 3 ] in
  let n = List.length bids in
  let policy = Policy.Reverse_auction { winners = 3; max_bid = 15 } in
  Printf.printf "6 workers bid (privately): %s\n%!"
    (String.concat ", " (List.map string_of_int bids));

  let requester = Protocol.enroll sys in
  let workers = List.map (fun b -> (Protocol.enroll sys, b)) bids in
  let task = Protocol.publish_task sys ~requester ~policy ~n ~budget:60 () in
  let wallets = Protocol.submit_answers sys ~task:task.Requester.contract ~workers in
  Printf.printf "bids are on-chain only as ElGamal ciphertexts; nobody can undercut.\n%!";

  let rewards = Protocol.reward sys task in
  Printf.printf "auction cleared (proved in zero knowledge):\n";
  List.iteri
    (fun i w ->
      let won = rewards.(i) > 0 in
      Printf.printf "  worker %d bid %2d -> %s (balance %d)\n" (i + 1) (List.nth bids i)
        (if won then Printf.sprintf "WON, paid %d" rewards.(i) else "lost")
        (Network.balance sys.Protocol.net (Wallet.address w)))
    wallets;
  let paid = Array.fold_left ( + ) 0 rewards in
  Printf.printf "total paid %d of budget 60; refund %d returned to the requester.\n%!" paid
    (Network.balance sys.Protocol.net (Wallet.address task.Requester.wallet));
  (* The three cheapest bids were 2, 3, 4; the clearing price is 7. *)
  assert (rewards = [| 0; 7; 0; 7; 0; 7 |])
