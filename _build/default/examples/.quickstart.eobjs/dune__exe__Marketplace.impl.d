examples/marketplace.ml: Address Array Bytes List Network Policy Printf Protocol Requester String Zebra_chain Zebralancer
