examples/offchain_data.ml: Array Block Bytes Light_client List Network Policy Printf Protocol Requester String Task_contract Zebra_chain Zebra_hashing Zebra_store Zebralancer
