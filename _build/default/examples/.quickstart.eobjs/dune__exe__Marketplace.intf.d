examples/marketplace.mli:
