examples/sensing_auction.mli:
