examples/truth_discovery.mli:
