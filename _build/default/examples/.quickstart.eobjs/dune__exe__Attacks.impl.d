examples/attacks.ml: Lazy List Network Policy Printf Protocol Requester State Tx Wallet Worker Zebra_anonauth Zebra_chain Zebralancer
