examples/image_annotation.ml: Array List Network Policy Printf Protocol Requester Unix Zebra_chain Zebralancer
