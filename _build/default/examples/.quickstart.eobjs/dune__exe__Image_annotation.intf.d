examples/image_annotation.mli:
