examples/anonymity_demo.mli:
