examples/quickstart.ml: Address Array List Network Policy Printf Protocol Requester Wallet Zebra_anonauth Zebra_chain Zebralancer
