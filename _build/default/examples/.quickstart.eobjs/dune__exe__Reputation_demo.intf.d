examples/reputation_demo.mli:
