examples/offchain_data.mli:
