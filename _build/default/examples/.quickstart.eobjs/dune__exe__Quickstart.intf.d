examples/quickstart.mli:
