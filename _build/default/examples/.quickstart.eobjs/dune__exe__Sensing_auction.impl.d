examples/sensing_auction.ml: Array List Network Policy Printf Protocol Requester String Wallet Zebra_chain Zebralancer
