examples/truth_discovery.ml: Array Printf Zebra_rng Zebralancer
