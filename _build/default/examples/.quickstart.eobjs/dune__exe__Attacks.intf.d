examples/attacks.mli:
