(* Quickstart: one crowdsourcing task, end to end.

   A requester publishes an image-annotation task for 3 answers with a
   budget of 90 tokens; three anonymous workers submit encrypted labels;
   the requester proves the reward assignment; the contract pays.

   Run with:  dune exec examples/quickstart.exe *)

open Zebralancer
open Zebra_chain

let () =
  Printf.printf "=== ZebraLancer quickstart ===\n%!";

  (* Boot a simulated 3-node chain, run the CPLA trusted setup, deploy the
     registration authority's interface contract. *)
  let sys = Protocol.create_system ~seed:"quickstart" () in
  Printf.printf "system ready: %d-node chain, CPLA circuit with %d constraints\n%!"
    (Network.num_nodes sys.Protocol.net)
    (Zebra_anonauth.Cpla.circuit_size sys.Protocol.cpla);

  (* Register phase: identities obtain certificates at the RA, once. *)
  let requester = Protocol.enroll sys in
  let workers = List.map (fun _ -> Protocol.enroll sys) [ 1; 2; 3 ] in
  Printf.printf "registered 1 requester + %d workers at the RA\n%!" (List.length workers);

  (* TaskPublish: the task contract goes on-chain with the budget.  The
     label space has 4 choices; majority voting decides correctness. *)
  let task =
    Protocol.publish_task sys ~requester ~policy:(Policy.Majority { choices = 4 }) ~n:3
      ~budget:90 ()
  in
  Printf.printf "task contract at %s holding %d tokens\n%!"
    (Address.to_hex task.Requester.contract)
    (Network.balance sys.Protocol.net task.Requester.contract);

  (* AnswerCollection: workers 1 and 2 label the image 'B' (=1), worker 3
     says 'C' (=2); each submits encrypted, anonymously authenticated. *)
  let answers = [ 1; 1; 2 ] in
  let wallets =
    Protocol.submit_answers sys ~task:task.Requester.contract
      ~workers:(List.map2 (fun w a -> (w, a)) workers answers)
  in
  Printf.printf "3 encrypted submissions collected (chain sees only ciphertexts)\n%!";

  (* Reward: the requester decrypts off-chain, computes the policy rewards,
     and convinces the contract with a zk-SNARK. *)
  let rewards = Protocol.reward sys task in
  Printf.printf "reward instruction verified on-chain\n%!";
  List.iteri
    (fun i w ->
      Printf.printf "  worker %d answered %d -> paid %d (balance %d)\n" (i + 1)
        (List.nth answers i) rewards.(i)
        (Network.balance sys.Protocol.net (Wallet.address w)))
    wallets;
  Printf.printf "requester refund: %d\n"
    (Network.balance sys.Protocol.net (Wallet.address task.Requester.wallet));
  Printf.printf "done: majority answer was rewarded, no plaintext ever hit the chain.\n%!"
