(** Blockchain addresses (pseudonyms).

    As in the paper's ideal-ledger model, an address is the hash of a public
    key: the low 20 bytes of SHA-256 over the serialised RSA key.  Contract
    addresses are derived from the creator address and its nonce
    (H(alpha_R || counter) exactly as the paper's footnote 10 prescribes),
    so a requester can predict her contract's address and authenticate it
    off-line before deployment. *)

type t

val of_public_key : Zebra_rsa.Rsa.public_key -> t

(** [of_creator addr nonce]: the address of the [nonce]-th contract created
    by [addr]. *)
val of_creator : t -> int -> t

val to_hex : t -> string

(** @raise Invalid_argument on malformed input (needs 40 hex digits). *)
val of_hex : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Raw 20 bytes. *)
val to_bytes : t -> bytes

val of_bytes : bytes -> t

(** Field-element view, used as the authenticated message component
    (alpha_C, alpha_i) inside anonymous attestations. *)
val to_field : t -> Zebra_field.Fp.t

val pp : Format.formatter -> t -> unit
