(** Signed blockchain transactions.

    A transaction either creates a contract (naming a registered behaviour
    and its init arguments — the simulator's stand-in for EVM bytecode, see
    {!Contract}) or calls an existing contract/account with a payload.
    Transactions are signed over their canonical encoding; the sender
    address must be the hash of the embedded public key. *)

type dst =
  | Create of { behavior : string; args : bytes }
  | Call of Address.t

type t = private {
  sender : Address.t;
  sender_pk : Zebra_rsa.Rsa.public_key;
  nonce : int;
  dst : dst;
  value : int;
  payload : bytes;
  signature : bytes;
}

(** [make ~wallet ~nonce ~dst ~value ~payload] builds and signs. *)
val make : wallet:Wallet.t -> nonce:int -> dst:dst -> value:int -> payload:bytes -> t

(** Signature valid and sender address consistent with the embedded key. *)
val validate : t -> bool

(** Transaction hash (of the signed encoding). *)
val hash : t -> bytes

val to_bytes : t -> bytes
val of_bytes : bytes -> t

(** Total serialised size (the paper's on-chain byte cost). *)
val size_bytes : t -> int

val pp : Format.formatter -> t -> unit

(**/**)

(** Test-only: forge a copy of [t] re-signed by [wallet] with a different
    sender (used by free-riding attack tests). *)
val resend_as : wallet:Wallet.t -> nonce:int -> t -> t
