(** The simulated blockchain network: several fully-replicating nodes, a
    shared mempool, and a discrete block clock.

    This provides exactly the ideal-public-ledger abstraction of the paper's
    Section III: (1) a valid transaction submitted to the network is
    included in the next mined block (liveness under synchrony); (2) every
    node executes every block deterministically and the simulator asserts
    their state roots agree (correct computation); (3) anyone can read all
    state (transparency); and (4) a network adversary may reorder the
    transactions of a pending block ({!set_adversary}) but cannot forge
    signatures. *)

type t

exception Consensus_failure of string

(** [create ?difficulty ~num_nodes ~genesis ()] — all nodes start from the
    same funded genesis state.  [difficulty] (default 0) makes miners grind
    a proof-of-work seal of that many leading zero bits per block. *)
val create : ?difficulty:int -> num_nodes:int -> genesis:(Address.t * int) list -> unit -> t

val difficulty : t -> int

val num_nodes : t -> int

(** Current chain height (0 = genesis, before any block). *)
val height : t -> int

(** [submit t tx] broadcasts to the mempool.  Invalidly-signed transactions
    are rejected immediately (never enter the mempool). *)
val submit : t -> Tx.t -> unit

val pending : t -> int

(** [set_adversary t f] lets [f] reorder (or drop/duplicate — the miner
    will still reject invalid ones) the pending transactions of each block
    before execution.  [None] restores first-come-first-served order. *)
val set_adversary : t -> (Tx.t list -> Tx.t list) option -> unit

(** [mine t] seals the mempool into the next block, executes it on every
    node, checks replica agreement and returns the receipts (node 0's).
    @raise Consensus_failure if replicas diverge. *)
val mine : t -> State.receipt list

(** [mine_until t ~height] mines (possibly empty) blocks up to [height]. *)
val mine_until : t -> height:int -> unit

(** {1 Read-only views (node 0)} *)

val balance : t -> Address.t -> int
val nonce : t -> Address.t -> int
val contract_storage : t -> Address.t -> bytes option
val is_contract : t -> Address.t -> bool

(** Receipt by transaction hash, once mined. *)
val receipt : t -> bytes -> State.receipt option

val blocks : t -> Block.t list

(** Sum of balances across all accounts (conservation invariant). *)
val total_supply : t -> int

(** [replay t] rebuilds the ledger from genesis by re-executing every block
    on a fresh state and returns its root — a late-joining node's sync
    path.  Determinism means it must equal the live nodes' root. *)
val replay : t -> bytes

(** Current state root of node 0. *)
val state_root : t -> bytes

(** All logs emitted so far, oldest first (test/diagnostic helper). *)
val all_logs : t -> string list
