(** A light client: headers only, plus Merkle inclusion checks.

    The paper's footnote 12 observes that requesters and workers "can even
    run on top of so-called light-weight nodes" — they need only the
    messages related to their own tasks.  This module is that node type:
    it follows the header chain (validating linkage) and verifies that a
    given transaction was included at a given height using the header's
    transaction root and a Merkle path obtained from any full node. *)

type t

(** [create ?difficulty ()] — headers failing the PoW target are refused. *)
val create : ?difficulty:int -> unit -> t

(** Height of the last accepted header (0 before any). *)
val height : t -> int

(** [push_header t h] appends a header after validating the hash link and
    height.  Full nodes feed this from {!Block.t.header}. *)
val push_header : t -> Block.header -> (unit, string) result

(** [sync t blocks] pushes the headers of the given blocks in order,
    stopping at the first failure. *)
val sync : t -> Block.t list -> (unit, string) result

(** [verify_inclusion t ~height tx proof] — true iff the header at that
    height commits to [tx] via [proof] (from {!Block.tx_proof}). *)
val verify_inclusion : t -> height:int -> Tx.t -> (bytes * bool) list -> bool

(** State root claimed by the header at [height] ([None] if unknown). *)
val state_root : t -> height:int -> bytes option
