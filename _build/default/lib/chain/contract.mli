(** Smart-contract runtime interface.

    Contracts are OCaml modules registered by name in a global registry; a
    [Create] transaction names the behaviour and supplies init arguments.
    This replaces EVM bytecode with a registry of audited templates — the
    deployment model the paper itself suggests (contract templates, and a
    zk-SNARK verifier embedded in the runtime as a primitive, exactly as the
    authors modified the EVM to embed libsnark.Verifier).

    Every node executes the same behaviour on the same serialised storage,
    so replicated execution stays deterministic and state roots agree. *)

exception Revert of string

(** Execution context handed to behaviours. *)
type context = {
  self : Address.t;
  sender : Address.t;  (** the transaction's (verified) sender address *)
  value : int;  (** amount transferred with the call *)
  height : int;  (** the block being executed — the paper's discrete clock *)
  self_balance : int;  (** balance of [self], including [value] *)
  charge : int -> unit;  (** gas metering *)
}

(** Side effects a behaviour can request; applied atomically after a
    successful execution. *)
type action =
  | Transfer of Address.t * int
  | Log of string

module type BEHAVIOR = sig
  type storage

  val name : string

  (** @raise Revert to abort creation. *)
  val init : context -> bytes -> storage

  (** @raise Revert to abort the call (state and transfers rolled back). *)
  val receive : context -> storage -> bytes -> storage * action list

  val encode : storage -> bytes
  val decode : bytes -> storage
end

type packed = (module BEHAVIOR)

(** Global behaviour registry. *)

val register : packed -> unit

(** @raise Not_found for unknown behaviour names. *)
val lookup : string -> packed

val registered : unit -> string list

(** Execute helpers used by {!State}. *)

val run_init : packed -> context -> bytes -> bytes

val run_receive : packed -> context -> bytes -> payload:bytes -> bytes * action list

(** Standard gas costs (loosely modelled on EVM orders of magnitude; used
    by benches to report on-chain cost). *)
module Gas : sig
  val base : int
  val per_byte : int
  val storage_word : int
  val snark_verify : int
  val link_check : int
end
