module Merkle = Zebra_hashing.Merkle

type t = { difficulty : int; mutable headers : Block.header list (* newest first *) }

let create ?(difficulty = 0) () = { difficulty; headers = [] }

let height t = match t.headers with [] -> 0 | h :: _ -> h.Block.height

let tip_hash t =
  match t.headers with
  | [] -> Block.genesis_hash
  | h :: _ -> Block.hash_header h

let push_header t (h : Block.header) =
  if h.Block.height <> height t + 1 then Error "bad height"
  else if not (Bytes.equal h.Block.prev_hash (tip_hash t)) then Error "bad parent"
  else if not (Block.meets_difficulty h t.difficulty) then Error "insufficient proof of work"
  else begin
    t.headers <- h :: t.headers;
    Ok ()
  end

let sync t blocks =
  List.fold_left
    (fun acc (b : Block.t) ->
      match acc with
      | Error _ as e -> e
      | Ok () -> push_header t b.Block.header)
    (Ok ()) blocks

let header_at t ~height:h =
  List.find_opt (fun (hd : Block.header) -> hd.Block.height = h) t.headers

let verify_inclusion t ~height tx proof =
  match header_at t ~height with
  | None -> false
  | Some hd -> Merkle.verify ~root:hd.Block.tx_root ~leaf:(Tx.to_bytes tx) proof

let state_root t ~height =
  Option.map (fun (hd : Block.header) -> hd.Block.state_root) (header_at t ~height)
