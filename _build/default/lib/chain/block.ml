module Sha256 = Zebra_hashing.Sha256
module Merkle = Zebra_hashing.Merkle
module Codec = Zebra_codec.Codec

type header = {
  height : int;
  prev_hash : bytes;
  state_root : bytes;
  tx_root : bytes;
  nonce : int;
}

type t = { header : header; txs : Tx.t list }

let genesis_hash = Sha256.digest_string "zebralancer-genesis"

let tx_root txs = Merkle.root (List.map Tx.to_bytes txs)

let hash_header h =
  let w = Codec.writer () in
  Codec.u64 w h.height;
  Codec.bytes w h.prev_hash;
  Codec.bytes w h.state_root;
  Codec.bytes w h.tx_root;
  Codec.u64 w h.nonce;
  Sha256.digest (Codec.to_bytes w)

let leading_zero_bits digest =
  let n = Bytes.length digest in
  let rec go i acc =
    if i >= n then acc
    else begin
      let b = Char.code (Bytes.get digest i) in
      if b = 0 then go (i + 1) (acc + 8)
      else begin
        let rec top k = if b lsr (7 - k) land 1 = 1 then k else top (k + 1) in
        acc + top 0
      end
    end
  in
  go 0 0

let meets_difficulty h d = d <= 0 || leading_zero_bits (hash_header h) >= d

let hash b = hash_header b.header

let make ?(difficulty = 0) ~height ~prev_hash ~state_root txs =
  let base = { height; prev_hash; state_root; tx_root = tx_root txs; nonce = 0 } in
  let rec grind nonce =
    let h = { base with nonce } in
    if meets_difficulty h difficulty then h else grind (nonce + 1)
  in
  { header = grind 0; txs }


let validate ?(difficulty = 0) ~prev_hash ~prev_height b =
  if b.header.height <> prev_height + 1 then Error "bad height"
  else if not (Bytes.equal b.header.prev_hash prev_hash) then Error "bad parent"
  else if not (Bytes.equal b.header.tx_root (tx_root b.txs)) then Error "bad tx root"
  else if not (meets_difficulty b.header difficulty) then Error "insufficient proof of work"
  else if not (List.for_all Tx.validate b.txs) then Error "invalid transaction signature"
  else Ok ()

let tx_proof b i = Merkle.proof (List.map Tx.to_bytes b.txs) i

let verify_tx_inclusion b tx proof =
  Merkle.verify ~root:b.header.tx_root ~leaf:(Tx.to_bytes tx) proof

let pp fmt b =
  Format.fprintf fmt "block{h=%d, %d txs, state=%s}" b.header.height (List.length b.txs)
    (String.sub (Sha256.to_hex b.header.state_root) 0 8)
