(** Blocks: a header committing to the previous block, the post-state root
    and the transaction Merkle root, plus the transaction list.

    Blocks can optionally carry a proof-of-work seal: [nonce] such that the
    header hash has [difficulty] leading zero bits.  The simulated network
    runs difficulty 0 by default (the paper's protocol only needs the
    ideal-ledger abstraction), but the machinery is real and tested, and
    light clients check the seal. *)

type header = {
  height : int;
  prev_hash : bytes;
  state_root : bytes;
  tx_root : bytes;
  nonce : int;  (** proof-of-work seal; 0 when difficulty is 0 *)
}

type t = { header : header; txs : Tx.t list }

val genesis_hash : bytes

(** [make ?difficulty ...] grinds a nonce satisfying the target (default
    difficulty 0: nonce stays 0). *)
val make :
  ?difficulty:int -> height:int -> prev_hash:bytes -> state_root:bytes -> Tx.t list -> t

(** Header hash. *)
val hash : t -> bytes

(** Hash from the header alone (light clients hold no bodies). *)
val hash_header : header -> bytes

(** [meets_difficulty h d]: the header hash has at least [d] leading zero
    bits. *)
val meets_difficulty : header -> int -> bool

(** Structural validity: tx root matches, transactions well signed, height
    and parent linkage against [prev], and the PoW seal when
    [difficulty > 0]. *)
val validate :
  ?difficulty:int -> prev_hash:bytes -> prev_height:int -> t -> (unit, string) result

(** Merkle inclusion proof for the [i]-th transaction (light-client path). *)
val tx_proof : t -> int -> (bytes * bool) list

val verify_tx_inclusion : t -> Tx.t -> (bytes * bool) list -> bool

val pp : Format.formatter -> t -> unit
