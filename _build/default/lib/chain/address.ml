module Sha256 = Zebra_hashing.Sha256

type t = bytes (* 20 bytes *)

let size = 20

let of_digest d = Bytes.sub d (Bytes.length d - size) size

let of_public_key pk = of_digest (Sha256.digest (Zebra_rsa.Rsa.public_key_to_bytes pk))

let of_creator addr nonce =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "contract:";
  Sha256.update ctx addr;
  Sha256.update_string ctx (string_of_int nonce);
  of_digest (Sha256.finalize ctx)

let to_hex = Sha256.to_hex

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Address.of_hex: need 40 hex digits";
  Sha256.of_hex s

let equal = Bytes.equal
let compare = Bytes.compare

let to_bytes = Bytes.copy

let of_bytes b =
  if Bytes.length b <> size then invalid_arg "Address.of_bytes: need 20 bytes";
  Bytes.copy b

let to_field a = Zebra_field.Fp.of_bytes_be a

let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
