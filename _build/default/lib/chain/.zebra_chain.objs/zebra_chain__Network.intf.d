lib/chain/network.mli: Address Block State Tx
