lib/chain/block.mli: Format Tx
