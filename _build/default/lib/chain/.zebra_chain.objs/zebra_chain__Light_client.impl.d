lib/chain/light_client.ml: Block Bytes List Option Tx Zebra_hashing
