lib/chain/state.ml: Address Contract Hashtbl List Option Printexc Tx Zebra_codec Zebra_hashing
