lib/chain/state.mli: Address Tx
