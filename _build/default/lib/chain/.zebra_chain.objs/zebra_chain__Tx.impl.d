lib/chain/tx.ml: Address Bytes Format Printf Wallet Zebra_codec Zebra_hashing Zebra_rsa
