lib/chain/contract.mli: Address
