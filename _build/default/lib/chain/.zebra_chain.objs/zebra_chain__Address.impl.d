lib/chain/address.ml: Bytes Format String Zebra_field Zebra_hashing Zebra_rsa
