lib/chain/light_client.mli: Block Tx
