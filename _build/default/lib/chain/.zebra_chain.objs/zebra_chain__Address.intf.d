lib/chain/address.mli: Format Zebra_field Zebra_rsa
