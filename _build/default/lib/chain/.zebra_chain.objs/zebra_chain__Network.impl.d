lib/chain/network.ml: Address Array Block Bytes Hashtbl List Printf State Tx Zebra_hashing
