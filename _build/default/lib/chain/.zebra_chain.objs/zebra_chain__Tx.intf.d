lib/chain/tx.mli: Address Format Wallet Zebra_rsa
