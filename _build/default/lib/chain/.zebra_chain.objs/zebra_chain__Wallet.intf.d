lib/chain/wallet.mli: Address Zebra_rsa
