lib/chain/contract.ml: Address Hashtbl List
