lib/chain/block.ml: Bytes Char Format List String Tx Zebra_codec Zebra_hashing
