lib/chain/wallet.ml: Address Zebra_rsa
