type t = { priv : Zebra_rsa.Rsa.private_key; addr : Address.t }

let generate ?(bits = 512) ~random_bytes () =
  let priv = Zebra_rsa.Rsa.generate ~bits ~random_bytes in
  { priv; addr = Address.of_public_key priv.Zebra_rsa.Rsa.pub }

let address w = w.addr
let public_key w = w.priv.Zebra_rsa.Rsa.pub
let sign w msg = Zebra_rsa.Pkcs1.sign w.priv msg
