exception Revert of string

type context = {
  self : Address.t;
  sender : Address.t;
  value : int;
  height : int;
  self_balance : int;
  charge : int -> unit;
}

type action =
  | Transfer of Address.t * int
  | Log of string

module type BEHAVIOR = sig
  type storage

  val name : string
  val init : context -> bytes -> storage
  val receive : context -> storage -> bytes -> storage * action list
  val encode : storage -> bytes
  val decode : bytes -> storage
end

type packed = (module BEHAVIOR)

let registry : (string, packed) Hashtbl.t = Hashtbl.create 16

let register (module B : BEHAVIOR) =
  if Hashtbl.mem registry B.name then invalid_arg ("Contract.register: duplicate " ^ B.name);
  Hashtbl.replace registry B.name (module B : BEHAVIOR)

let lookup name = Hashtbl.find registry name

let registered () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let run_init (module B : BEHAVIOR) ctx args = B.encode (B.init ctx args)

let run_receive (module B : BEHAVIOR) ctx storage ~payload =
  let st = B.decode storage in
  let st', actions = B.receive ctx st payload in
  (B.encode st', actions)

module Gas = struct
  let base = 21_000
  let per_byte = 16
  let storage_word = 20_000
  let snark_verify = 200_000
  let link_check = 100
end
