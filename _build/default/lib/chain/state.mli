(** The replicated ledger state of one node: externally-owned accounts,
    contract accounts with their serialised storage, and deterministic
    transaction application.

    Failed or reverted transactions are included with a failure receipt and
    roll back all state changes except the sender's nonce (Ethereum-like
    semantics, minus gas payments — the simulated chain does not price gas,
    it only meters it for the benchmarks). *)

type t

type status =
  | Ok of Address.t option  (** payload: created contract address, if any *)
  | Failed of string

type receipt = {
  tx_hash : bytes;
  status : status;
  gas_used : int;
  logs : string list;
}

(** [create ~genesis] funds the given accounts at height 0. *)
val create : genesis:(Address.t * int) list -> t

val balance : t -> Address.t -> int
val nonce : t -> Address.t -> int

(** [contract_storage t addr] is [None] when [addr] has no code. *)
val contract_storage : t -> Address.t -> bytes option

val is_contract : t -> Address.t -> bool

(** [apply_tx t ~height tx] executes one transaction.  Never raises on bad
    transactions — every outcome is a receipt. *)
val apply_tx : t -> height:int -> Tx.t -> receipt

(** Canonical state root (SHA-256 over the sorted serialised state);
    compared across nodes after every block. *)
val root : t -> bytes

(** Total of all balances (conservation-of-money invariant in tests). *)
val total_supply : t -> int
