lib/store/store.ml: Bytes Char Format Hashtbl List Option Zebra_codec Zebra_hashing
