lib/anonauth/cpla.ml: Array Bytes Cs Fp Gadgets Zebra_codec Zebra_mimc Zebra_r1cs Zebra_snark
