lib/anonauth/ra.mli: Fp
