lib/anonauth/ra.ml: Array Fp Hashtbl Zebra_hashing Zebra_mimc
