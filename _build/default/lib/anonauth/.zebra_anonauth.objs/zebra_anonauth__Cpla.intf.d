lib/anonauth/cpla.mli: Fp Zebra_snark
