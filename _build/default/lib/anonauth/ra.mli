(** The registration authority's certificate tree.

    The paper abstracts certification as an RA signing each participant's
    public key (CertGen).  To make certificate checking SNARK-friendly we
    instantiate the certificate as {e membership in a MiMC Merkle tree of
    registered public keys} (Zcash-style; DESIGN.md substitution 3): the
    master public key is the tree root, a certificate is the leaf index, and
    the Auth circuit proves knowledge of [sk] with [pk = H(sk)] present in
    the tree — without revealing which leaf, so even the RA cannot link an
    attestation to a registration (the paper's strong anonymity, Def. 2).

    The tree is sparse: unregistered leaves hold the level-0 default value,
    and default subtree hashes are precomputed per level. *)

type t

(** [create ~depth] — capacity [2^depth] registrations. *)
val create : depth:int -> t

val depth : t -> int
val capacity : t -> int
val num_registered : t -> int

(** Current root — the CPLA master public key [mpk]. *)
val root : t -> Fp.t

(** [register t pk] appends a public key and returns its leaf index (the
    certificate).  Re-registering the same key is refused (unique-identity
    rule: one credential per ID).
    @raise Failure when the tree is full or [pk] is already present. *)
val register : t -> Fp.t -> int

(** [path t index] is the sibling list, leaf level first, under the current
    root.  Participants refresh their path from the (public) tree before
    authenticating. *)
val path : t -> int -> Fp.t array

(** [leaf t index] — [None] if unregistered. *)
val leaf : t -> int -> Fp.t option

(** [verify_path ~depth ~root ~leaf ~index path] — native path check (the
    circuit's {!Zebra_r1cs.Gadgets.merkle_root} mirrors it). *)
val verify_path : root:Fp.t -> leaf:Fp.t -> index:int -> Fp.t array -> bool
