(** Arbitrary-precision natural numbers.

    Numbers are stored little-endian in arrays of 31-bit limbs, which keeps
    every intermediate product of the schoolbook multiplication within
    OCaml's 63-bit native integers.  All values are canonical: no leading
    zero limbs, and zero is the empty limb array.

    This module is the arithmetic substrate for the RSA layer and the
    Montgomery machinery in {!Modular}; it has no dependencies. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> t

(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)
val to_int_opt : t -> int option

(** Big-endian byte-string conversions.  [to_bytes_be] produces the minimal
    representation (empty for zero) unless [len] pads with leading zeros;
    it raises [Invalid_argument] if the value does not fit in [len]. *)
val of_bytes_be : bytes -> t

val to_bytes_be : ?len:int -> t -> bytes

val of_hex : string -> t
val to_hex : t -> string

val of_decimal_string : string -> t
val to_decimal_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

(** Number of significant bits; [num_bits zero = 0]. *)
val num_bits : t -> int

(** [testbit n i] is bit [i] (little-endian); false beyond [num_bits]. *)
val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b].  @raise Invalid_argument otherwise. *)
val sub : t -> t -> t

(** Schoolbook below ~1000 bits, Karatsuba above. *)
val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)].  @raise Division_by_zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Fast path for small operands (each in [0, 2^31)). *)
val add_small : t -> int -> t

val mul_small : t -> int -> t

(** [divmod_small a d] for [0 < d < 2^31]. *)
val divmod_small : t -> int -> t * int

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val gcd : t -> t -> t

(** [pow b e] for native exponent [e >= 0] (no modulus; use sparingly). *)
val pow : t -> int -> t

val pp : Format.formatter -> t -> unit

(**/**)

(** Internal: raw limb access for {!Modular}.  [limbs n] is a fresh copy. *)
val limbs : t -> int array

val of_limbs : int array -> t

val limb_bits : int

(** Internal: the quadratic multiplication, exposed so tests and benches
    can cross-check the Karatsuba path. *)
val mul_schoolbook : t -> t -> t
