(* Little-endian 31-bit limbs, canonical (no trailing zero limbs). *)

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero n = Array.length n = 0

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_limbs a = trim (Array.copy a)
let limbs n = Array.copy n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else begin
    let rec count k acc = if k = 0 then acc else count (k lsr limb_bits) (acc + 1) in
    let len = count n 0 in
    let a = Array.make len 0 in
    let rec fill i k =
      if k <> 0 then begin
        a.(i) <- k land mask;
        fill (i + 1) (k lsr limb_bits)
      end
    in
    fill 0 n;
    a
  end

let to_int_opt n =
  let len = Array.length n in
  if len = 0 then Some 0
  else if len * limb_bits <= 62 then begin
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl limb_bits) lor n.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit: check top bits. *)
    let bits_used =
      let top = n.(len - 1) in
      let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
      (len - 1) * limb_bits + width 0 top
    in
    if bits_used <= 62 then begin
      let v = ref 0 in
      for i = len - 1 downto 0 do
        v := (!v lsl limb_bits) lor n.(i)
      done;
      Some !v
    end
    else None
  end

let num_bits n =
  let len = Array.length n in
  if len = 0 then 0
  else begin
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    (len - 1) * limb_bits + width 0 n.(len - 1)
  end

let testbit n i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length n && (n.(limb) lsr off) land 1 = 1

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_even n = Array.length n = 0 || n.(0) land 1 = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  trim r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  trim r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai*bj <= (2^31-1)^2 and the two additions keep the total
             strictly below 2^63, so native ints suffice. *)
          let acc = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- acc land mask;
          carry := acc lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let acc = r.(!k) + !carry in
          r.(!k) <- acc land mask;
          carry := acc lsr limb_bits;
          incr k
        done
      end
    done;
    trim r
  end

(* Karatsuba above ~1000-bit operands; three recursive multiplications of
   half size instead of four. *)
let karatsuba_threshold = 32

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let m = (max la lb + 1) / 2 in
    let lo x lx = trim (Array.sub x 0 (min m lx)) in
    let hi x lx = if lx > m then trim (Array.sub x m (lx - m)) else zero in
    let a0 = lo a la and a1 = hi a la in
    let b0 = lo b lb and b1 = hi b lb in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 m)) (shift_limbs z2 (2 * m))
  end

and shift_limbs x k =
  if is_zero x then zero
  else begin
    let lx = Array.length x in
    let r = Array.make (lx + k) 0 in
    Array.blit x 0 r k lx;
    r
  end

let add_small a d =
  if d < 0 || d >= base then invalid_arg "Nat.add_small";
  add a (of_int d)

let mul_small a d =
  if d < 0 || d >= base then invalid_arg "Nat.mul_small";
  if d = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let acc = (a.(i) * d) + !carry in
      r.(i) <- acc land mask;
      carry := acc lsr limb_bits
    done;
    r.(la) <- !carry;
    trim r
  end

let divmod_small a d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_small";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (trim q, !rem)

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then
      for i = 0 to la - 1 do
        r.(i + limb_shift) <- a.(i)
      done
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land mask;
        carry := v lsr limb_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    trim r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      if bit_shift = 0 then
        for i = 0 to lr - 1 do
          r.(i) <- a.(i + limb_shift)
        done
      else
        for i = 0 to lr - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done;
      trim r
    end
  end

(* Shift-and-subtract long division.  O(bits(a) * limbs(a)); adequate for the
   few full-width divisions we perform (Montgomery setup, conversions). *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    let shift = num_bits a - num_bits b in
    let q = Array.make (shift / limb_bits + 1) 0 in
    let r = ref a in
    let d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shift_right !d 1
    done;
    (trim q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_bytes_be s =
  let n = Bytes.length s in
  let r = ref zero in
  for i = 0 to n - 1 do
    r := add_small (shift_left !r 8) (Char.code (Bytes.get s i))
  done;
  !r

let to_bytes_be ?len n =
  let nbytes = (num_bits n + 7) / 8 in
  let out_len =
    match len with
    | None -> nbytes
    | Some l ->
      if l < nbytes then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let b = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    (* byte i from the end *)
    let bit = i * 8 in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v =
      let lo = if limb < Array.length n then n.(limb) lsr off else 0 in
      let hi =
        if off > limb_bits - 8 && limb + 1 < Array.length n then
          n.(limb + 1) lsl (limb_bits - off)
        else 0
      in
      (lo lor hi) land 0xff
    in
    Bytes.set b (out_len - 1 - i) (Char.chr v)
  done;
  b

let of_hex s =
  let r = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' | ' ' -> -1
        | _ -> invalid_arg "Nat.of_hex: bad digit"
      in
      if v >= 0 then r := add_small (shift_left !r 4) v)
    s;
  !r

let to_hex n =
  if is_zero n then "0"
  else begin
    let digits = (num_bits n + 3) / 4 in
    let buf = Buffer.create digits in
    for i = digits - 1 downto 0 do
      let bit = i * 4 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let v =
        let lo = if limb < Array.length n then n.(limb) lsr off else 0 in
        let hi =
          if off > limb_bits - 4 && limb + 1 < Array.length n then
            n.(limb + 1) lsl (limb_bits - off)
          else 0
        in
        (lo lor hi) land 0xf
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_decimal_string s =
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> r := add_small (mul_small !r 10) (Char.code c - Char.code '0')
      | '_' -> ()
      | _ -> invalid_arg "Nat.of_decimal_string: bad digit")
    s;
  !r

let to_decimal_string n =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go n =
      if not (is_zero n) then begin
        let q, r = divmod_small n 10 in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + r))
      end
    in
    go n;
    Buffer.contents buf
  end

let pp fmt n = Format.pp_print_string fmt (to_decimal_string n)
