lib/numeric/modular.ml: Array Nat Stdlib
