lib/numeric/modular.mli: Nat
