lib/numeric/prime.mli: Nat
