lib/numeric/prime.ml: Array Bytes Char Modular Nat
