lib/numeric/nat.mli: Format
