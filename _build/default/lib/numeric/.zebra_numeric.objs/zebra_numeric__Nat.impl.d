lib/numeric/nat.ml: Array Buffer Bytes Char Format Stdlib String
