(** Modular arithmetic over odd moduli, built on {!Nat}.

    A {!ctx} caches the Montgomery constants for one modulus so repeated
    multiplications and exponentiations avoid long division.  This engine
    backs both the RSA layer and the SNARK prime field ({!Zebra_field.Fp}). *)

type ctx

(** [create m] precomputes Montgomery constants for modulus [m].
    @raise Invalid_argument if [m] is even or [< 3]. *)
val create : Nat.t -> ctx

val modulus : ctx -> Nat.t

(** Number of limbs in the Montgomery representation. *)
val num_limbs : ctx -> int

(** Montgomery-form values, abstract.  Conversions are explicit so callers
    can stay in Montgomery form across long computations. *)
type mont

val to_mont : ctx -> Nat.t -> mont
val of_mont : ctx -> mont -> Nat.t

val mont_zero : ctx -> mont
val mont_one : ctx -> mont

val mont_equal : mont -> mont -> bool

val mont_add : ctx -> mont -> mont -> mont
val mont_sub : ctx -> mont -> mont -> mont
val mont_neg : ctx -> mont -> mont
val mont_mul : ctx -> mont -> mont -> mont
val mont_sqr : ctx -> mont -> mont

(** [mont_pow ctx b e] is [b^e] in Montgomery form ([e] a plain {!Nat.t}). *)
val mont_pow : ctx -> mont -> Nat.t -> mont

(** [mont_inv ctx a] for [a] invertible. @raise Division_by_zero otherwise. *)
val mont_inv : ctx -> mont -> mont

(** Convenience wrappers on plain naturals (inputs reduced mod m first). *)

val add : ctx -> Nat.t -> Nat.t -> Nat.t

val sub : ctx -> Nat.t -> Nat.t -> Nat.t
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** [inv ctx a]: modular inverse via extended binary GCD.
    @raise Division_by_zero if [gcd a m <> 1]. *)
val inv : ctx -> Nat.t -> Nat.t

(** [inverse a m] without a context (used by RSA keygen for even [m] too,
    as long as [a] is odd or [gcd a m = 1]). *)
val inverse : Nat.t -> Nat.t -> Nat.t
