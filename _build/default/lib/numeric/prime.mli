(** Probabilistic primality testing and prime generation.

    Randomness is supplied by the caller as a [random_bytes] function so this
    module stays independent of any particular RNG (tests use a seeded
    {!Zebra_rng.Chacha20} stream). *)

(** [is_prime ?rounds n] runs trial division by small primes followed by
    [rounds] (default 32) Miller–Rabin iterations with random bases. *)
val is_prime : ?rounds:int -> random_bytes:(int -> bytes) -> Nat.t -> bool

(** [random_below ~random_bytes bound] samples uniformly in [[0, bound)]
    by rejection. *)
val random_below : random_bytes:(int -> bytes) -> Nat.t -> Nat.t

(** [random_bits ~random_bytes k] samples uniformly in [[0, 2^k)]. *)
val random_bits : random_bytes:(int -> bytes) -> int -> Nat.t

(** [generate ~bits ~random_bytes] returns an odd prime of exactly [bits]
    bits (top bit set). *)
val generate : bits:int -> random_bytes:(int -> bytes) -> Nat.t
