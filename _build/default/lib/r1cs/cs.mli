(** Rank-1 constraint systems (R1CS) in the libsnark "protoboard" style.

    A system is a list of constraints [<A,w> * <B,w> = <C,w>] over a witness
    vector [w] whose index 0 is pinned to the constant 1, indices
    [1..num_inputs] are the public inputs, and the rest are auxiliary
    (private) wires.  The board always carries a concrete assignment: gadget
    code computes witness values while emitting constraints, so the same
    synthesis code serves key generation (dummy inputs), proving (real
    inputs) and satisfaction checks. *)

type var = private int

type t

(** Linear combination: sum of [coeff * var] terms. *)
type lc = (Fp.t * var) list

val create : unit -> t

(** The constant-1 wire. *)
val one_var : var

(** [alloc_input cs v] allocates the next public-input wire with value [v].
    All public inputs must be allocated before any auxiliary wire (this
    convention is what lets the verifier reconstruct the input part).
    @raise Invalid_argument if an auxiliary wire exists already. *)
val alloc_input : t -> Fp.t -> var

(** [alloc cs v] allocates an auxiliary wire with value [v]. *)
val alloc : t -> Fp.t -> var

(** [enforce cs ?label a b c] adds the constraint [a * b = c]. *)
val enforce : t -> ?label:string -> lc -> lc -> lc -> unit

val value : t -> var -> Fp.t
val lc_value : t -> lc -> Fp.t

(** [set_value cs v x] overwrites a wire's witness value — used only by
    tests that deliberately corrupt a witness. *)
val set_value : t -> var -> Fp.t -> unit

val num_vars : t -> int

(** Number of public input wires (excluding the constant wire). *)
val num_inputs : t -> int

val num_constraints : t -> int

(** [constraints cs] in insertion order. *)
val constraints : t -> (lc * lc * lc) array

(** Full assignment, indexed by wire; entry 0 is 1. *)
val assignment : t -> Fp.t array

(** Values of the public input wires [1..num_inputs]. *)
val public_inputs : t -> Fp.t array

val is_satisfied : t -> bool

(** First violated constraint's label (or its index as a string). *)
val find_unsatisfied : t -> string option

(** [var_of_int i] — unsafe escape hatch for (de)serialisation in the SNARK
    layer. *)
val var_of_int : int -> var

val int_of_var : var -> int
