lib/r1cs/gadgets.ml: Array Cs Fp Hashtbl List Nat Zebra_mimc
