lib/r1cs/cs.mli: Fp
