lib/r1cs/cs.ml: Array Fp List Printf
