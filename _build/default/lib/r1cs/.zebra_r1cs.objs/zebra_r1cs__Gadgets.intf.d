lib/r1cs/gadgets.mli: Cs Fp
