module Codec = Zebra_codec.Codec
module Contract = Zebra_chain.Contract
module Address = Zebra_chain.Address
module Snark = Zebra_snark.Snark

type storage = {
  owner : Address.t;
  link_vk : bytes;
  epoch : int;
  credits : (string * (int * Fp.t)) list;
  scores : (string * int) list;
}

type message =
  | Credit of { task_tag : Fp.t; task_prefix : Fp.t; score : int }
  | Claim of { task_tag : Fp.t; pseudonym : Fp.t; proof : bytes }
  | Advance_epoch

let behavior_name = "zebralancer-reputation"

let key_of_tag tag = Zebra_hashing.Sha256.to_hex (Fp.to_bytes_be tag)

let write_fp w x = Codec.bytes w (Fp.to_bytes_be x)
let read_fp r = Fp.of_bytes_be_exn (Codec.read_bytes r)

let write_storage w st =
  Codec.bytes w (Address.to_bytes st.owner);
  Codec.bytes w st.link_vk;
  Codec.u64 w st.epoch;
  Codec.list w
    (fun w (k, (score, prefix)) ->
      Codec.string w k;
      Codec.u64 w score;
      write_fp w prefix)
    st.credits;
  Codec.list w
    (fun w (k, score) ->
      Codec.string w k;
      Codec.u64 w score)
    st.scores

let read_storage r =
  let owner = Address.of_bytes (Codec.read_bytes r) in
  let link_vk = Codec.read_bytes r in
  let epoch = Codec.read_u64 r in
  let credits =
    Codec.read_list r (fun r ->
        let k = Codec.read_string r in
        let score = Codec.read_u64 r in
        let prefix = read_fp r in
        (k, (score, prefix)))
  in
  let scores =
    Codec.read_list r (fun r ->
        let k = Codec.read_string r in
        let score = Codec.read_u64 r in
        (k, score))
  in
  { owner; link_vk; epoch; credits; scores }

let storage_of_bytes = Codec.decode read_storage

let init_args ~link_vk = Codec.encode Codec.bytes link_vk

let message_to_bytes m =
  Codec.encode
    (fun w m ->
      match m with
      | Credit { task_tag; task_prefix; score } ->
        Codec.u8 w 0;
        write_fp w task_tag;
        write_fp w task_prefix;
        Codec.u64 w score
      | Claim { task_tag; pseudonym; proof } ->
        Codec.u8 w 1;
        write_fp w task_tag;
        write_fp w pseudonym;
        Codec.bytes w proof
      | Advance_epoch -> Codec.u8 w 2)
    m

let message_of_bytes b =
  Codec.decode
    (fun r ->
      match Codec.read_u8 r with
      | 0 ->
        let task_tag = read_fp r in
        let task_prefix = read_fp r in
        let score = Codec.read_u64 r in
        Credit { task_tag; task_prefix; score }
      | 1 ->
        let task_tag = read_fp r in
        let pseudonym = read_fp r in
        let proof = Codec.read_bytes r in
        Claim { task_tag; pseudonym; proof }
      | 2 -> Advance_epoch
      | _ -> raise (Codec.Decode_error "reputation: bad message tag"))
    b

let score st pseudonym =
  match List.assoc_opt (key_of_tag pseudonym) st.scores with Some s -> s | None -> 0

let revert fmt = Format.kasprintf (fun s -> raise (Contract.Revert s)) fmt

module Behavior = struct
  type nonrec storage = storage

  let name = behavior_name
  let encode = Codec.encode write_storage
  let decode = storage_of_bytes

  let init (ctx : Contract.context) args =
    let link_vk = Codec.decode Codec.read_bytes args in
    { owner = ctx.Contract.sender; link_vk; epoch = 0; credits = []; scores = [] }

  let receive (ctx : Contract.context) st payload =
    match message_of_bytes payload with
    | Credit { task_tag; task_prefix; score } ->
      if not (Address.equal ctx.Contract.sender st.owner) then
        revert "only the owner credits";
      if score <= 0 then revert "need a positive score";
      let k = key_of_tag task_tag in
      if List.mem_assoc k st.credits then revert "tag already credited";
      ( { st with credits = (k, (score, task_prefix)) :: st.credits },
        [ Contract.Log "credited" ] )
    | Claim { task_tag; pseudonym; proof } ->
      let k = key_of_tag task_tag in
      let score, task_prefix =
        match List.assoc_opt k st.credits with
        | Some sp -> sp
        | None -> revert "no unclaimed credit for this tag"
      in
      let proof =
        try Snark.proof_of_bytes proof
        with Codec.Decode_error e | Invalid_argument e -> revert "malformed proof: %s" e
      in
      ctx.Contract.charge Contract.Gas.snark_verify;
      let ok =
        Reputation.verify_link ~vk_bytes:st.link_vk ~task_tag ~pseudonym ~task_prefix
          ~epoch:st.epoch proof
      in
      if not ok then revert "invalid link proof";
      let pk = key_of_tag pseudonym in
      let prev = match List.assoc_opt pk st.scores with Some s -> s | None -> 0 in
      ( {
          st with
          credits = List.remove_assoc k st.credits;
          scores = (pk, prev + score) :: List.remove_assoc pk st.scores;
        },
        [ Contract.Log (Printf.sprintf "claimed %d" score) ] )
    | Advance_epoch ->
      if not (Address.equal ctx.Contract.sender st.owner) then
        revert "only the owner advances the epoch";
      ({ st with epoch = st.epoch + 1 }, [ Contract.Log "epoch advanced" ])
    | exception Codec.Decode_error e -> revert "bad payload: %s" e
end

let registered = ref false

let register () =
  if not !registered then begin
    Contract.register (module Behavior);
    registered := true
  end
