(** The non-anonymous authentication mode (paper Section VI, last
    paragraph): a participant who waives the anonymity privilege registers
    an RSA public key at the RA, receives a classical certificate (the
    RA's signature over the key), and authenticates by plain signing —
    "which essentially costs nearly nothing regarding the computational
    efficiency".

    Accountability is trivial here: the identity is public, so the task
    contract links two plain submissions by public-key equality.  A plain
    credential and an anonymous credential are distinct credentials; the
    RA's one-credential-per-identity rule is what prevents one person from
    holding both (as with any certification authority, this is an
    off-chain duty). *)

type cert = {
  worker_pk : Zebra_rsa.Rsa.public_key;
  ra_signature : bytes;
}

type attestation = {
  cert : cert;
  signature : bytes;  (** over prefix || message *)
}

(** [issue ~ra_priv pk] — CertGen for the plain mode. *)
val issue : ra_priv:Zebra_rsa.Rsa.private_key -> Zebra_rsa.Rsa.public_key -> cert

val cert_valid : ra_pub:Zebra_rsa.Rsa.public_key -> cert -> bool

(** [auth ~priv ~cert ~prefix ~message] — Auth: sign the same
    (prefix, message) pair the anonymous mode authenticates. *)
val auth :
  priv:Zebra_rsa.Rsa.private_key -> cert:cert -> prefix:Fp.t -> message:Fp.t -> attestation

val verify : ra_pub:Zebra_rsa.Rsa.public_key -> prefix:Fp.t -> message:Fp.t -> attestation -> bool

(** Public linking handle: plain submissions by the same key share it.
    (A field element, so the task contract stores it in the same slot as
    the anonymous t1 tags; the two families cannot collide, as plain tags
    are hashes of public keys and t1 tags are hashes involving a secret.) *)
val tag : cert -> Fp.t

val attestation_to_bytes : attestation -> bytes

(** @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val attestation_of_bytes : bytes -> attestation

val attestation_size_bytes : attestation -> int
