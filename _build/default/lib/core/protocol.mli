(** End-to-end protocol orchestration over the simulated network.

    This module wires the pieces into the four phases of Section V-B —
    Register, TaskPublish, AnswerCollection, Reward — plus the timeout
    fallback, and is what the examples, integration tests and benchmarks
    drive.  Lower-level steps are exposed so adversarial scenarios can
    deviate at any point. *)

type system = {
  net : Zebra_chain.Network.t;
  cpla : Zebra_anonauth.Cpla.params;
  ra : Zebra_anonauth.Ra.t;
  ra_contract : Zebra_chain.Address.t;
  faucet : Zebra_chain.Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
      (** the RA's classical signing key for the non-anonymous mode *)
  rng : Zebra_rng.Chacha20.t;
}

(** A registered participant: long-term CPLA identity plus certificate. *)
type identity = { key : Zebra_anonauth.Cpla.user_key; cert_index : int }

(** [create_system ~seed ()] boots a fresh chain (default 3 nodes), runs the
    CPLA trusted setup (default RA tree depth 6), deploys the RA interface
    contract, and funds a faucet. *)
val create_system :
  ?num_nodes:int -> ?tree_depth:int -> ?wallet_bits:int -> seed:string -> unit -> system

val random_bytes : system -> int -> bytes

(** Register phase: one-off identity creation at the RA (off-chain), with
    the new tree root posted to the RA contract. *)
val enroll : system -> identity

(** Register for the non-anonymous mode: an RSA keypair plus the RA's
    classical certificate over it. *)
val enroll_plain : system -> Zebra_rsa.Rsa.private_key * Plain_auth.cert

(** Serialised RA key to put in task params to enable plain submissions. *)
val ra_rsa_pub_bytes : system -> bytes

(** [fresh_funded_wallet sys ~amount] — a new one-task-only address funded
    from the faucet (one block is mined). *)
val fresh_funded_wallet : system -> amount:int -> Zebra_chain.Wallet.t

(** Read and decode a task contract's storage from the chain. *)
val task_storage : system -> Zebra_chain.Address.t -> Task_contract.storage

(** TaskPublish: returns the requester's task handle after the deployment
    transaction is mined.  Deadlines are windows in blocks from now.
    @raise Failure if deployment fails. *)
val publish_task :
  system ->
  requester:identity ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?circuit:Reward_circuit.t ->
  unit ->
  Requester.task

(** AnswerCollection: each worker validates the task and submits one
    encrypted answer from a fresh address; everything is mined into the
    next block(s).  Returns each worker's one-task wallet (to observe the
    payment).  @raise Failure if a submission is rejected. *)
val submit_answers :
  system ->
  task:Zebra_chain.Address.t ->
  workers:(identity * int) list ->
  Zebra_chain.Wallet.t list

(** Reward: the requester decrypts, computes rewards, proves and instructs;
    mined immediately.  Returns the reward vector.
    @raise Failure if the contract rejects the instruction. *)
val reward : system -> Requester.task -> int array

(** Fallback: mine past the instruction deadline and have anyone call
    Finalize. *)
val finalize : system -> Requester.task -> unit

(** Batch driver for same-shape tasks: one requester, one worker pool, one
    reward-circuit setup shared across the whole batch (the amortisation a
    data-set-scale deployment needs).  Each inner list is one task's
    answers; all must have the same length. *)
val run_batch :
  system ->
  policy:Policy.t ->
  budget_per_task:int ->
  answer_sets:int list list ->
  int array list

(** One-call driver used by examples and benches: publish, collect the
    given answers, reward.  Returns the task, the worker wallets (in
    submission order) and the reward vector. *)
val run_task :
  system ->
  policy:Policy.t ->
  budget:int ->
  answers:int list ->
  Requester.task * Zebra_chain.Wallet.t list * int array
