(** Incentive policies R(A_j; A_1..A_n, tau) (paper Section IV).

    A policy deterministically maps the multiset of collected answers and
    the budget to one reward per answer slot.  The requester commits to the
    policy in the task contract; the reward instruction she later sends is
    checked against it — either directly by re-evaluation (tests) or via
    the zk-SNARK of {!Reward_circuit} (the protocol path, which never
    reveals the answers). *)

type t =
  | Majority of { choices : int }
      (** The paper's image-annotation incentive [Shah-Zhou]: an answer in
          [0, choices) earning [tau/n] iff it equals the majority answer
          (ties break to the smallest choice). *)
  | Majority_threshold of { choices : int; quota : int }
      (** As [Majority], but nobody is rewarded unless the majority gathers
          at least [quota] votes (quality floor). *)
  | Reverse_auction of { winners : int; max_bid : int }
      (** Answers are bids in [0, max_bid]; the [winners] lowest bids win
          and are each paid the first losing bid ((k+1)-price, truthful),
          clamped to [tau/winners].  Ties break to earlier submissions. *)

(** An answer slot: [None] is the missing answer (the paper's bottom). *)
type answer = int option

(** Largest valid answer value + 1. *)
val answer_space : t -> int

val valid_answer : t -> int -> bool

(** [rewards policy ~budget ~n answers] — the canonical evaluation.
    [answers] must have length [n]; missing answers earn 0; the sum never
    exceeds [budget].
    @raise Invalid_argument on length mismatch. *)
val rewards : t -> budget:int -> n:int -> answer array -> int array

(** The even-split fallback of Algorithm 1 (line 18): [tau / ||W||] to each
    of the [submitted] workers. *)
val fallback_share : budget:int -> submitted:int -> int

val equal : t -> t -> bool
val to_bytes : t -> bytes
val of_bytes : bytes -> t
val pp : Format.formatter -> t -> unit
