(** The registration authority's interface contract (paper Fig. 3): posts
    the system's master public key — the CPLA verification key and the
    current certificate-tree root — as common knowledge on the blockchain.

    Only the RA operator address may update the root (registrations change
    it); everyone reads it.  Task contracts snapshot the root at publication
    time, so in-flight tasks are unaffected by later registrations. *)

type storage = {
  operator : Zebra_chain.Address.t;
  auth_vk : bytes;
  root : Fp.t;
  history : Fp.t list;  (** previous roots, newest first *)
}

val behavior_name : string

val register : unit -> unit

(** Init args: the CPLA vk and initial root. *)
val init_args : auth_vk:bytes -> root:Fp.t -> bytes

(** Payload for a root update (operator only). *)
val set_root_msg : Fp.t -> bytes

val storage_of_bytes : bytes -> storage
