module Rsa = Zebra_rsa.Rsa
module Pkcs1 = Zebra_rsa.Pkcs1
module Codec = Zebra_codec.Codec
module Mimc = Zebra_mimc.Mimc

type cert = {
  worker_pk : Rsa.public_key;
  ra_signature : bytes;
}

type attestation = {
  cert : cert;
  signature : bytes;
}

let cert_body pk =
  let w = Codec.writer () in
  Codec.string w "zebralancer-plain-cert";
  Codec.bytes w (Rsa.public_key_to_bytes pk);
  Codec.to_bytes w

let issue ~ra_priv pk = { worker_pk = pk; ra_signature = Pkcs1.sign ra_priv (cert_body pk) }

let cert_valid ~ra_pub cert =
  Pkcs1.verify ra_pub ~msg:(cert_body cert.worker_pk) ~signature:cert.ra_signature

let auth_body ~prefix ~message =
  let w = Codec.writer () in
  Codec.string w "zebralancer-plain-auth";
  Codec.bytes w (Fp.to_bytes_be prefix);
  Codec.bytes w (Fp.to_bytes_be message);
  Codec.to_bytes w

let auth ~priv ~cert ~prefix ~message =
  { cert; signature = Pkcs1.sign priv (auth_body ~prefix ~message) }

let verify ~ra_pub ~prefix ~message att =
  cert_valid ~ra_pub att.cert
  && Pkcs1.verify att.cert.worker_pk ~msg:(auth_body ~prefix ~message) ~signature:att.signature

let tag cert = Mimc.hash_bytes (Rsa.public_key_to_bytes cert.worker_pk)

let attestation_to_bytes att =
  Codec.encode
    (fun w att ->
      Codec.bytes w (Rsa.public_key_to_bytes att.cert.worker_pk);
      Codec.bytes w att.cert.ra_signature;
      Codec.bytes w att.signature)
    att

let attestation_of_bytes b =
  Codec.decode
    (fun r ->
      let worker_pk = Rsa.public_key_of_bytes (Codec.read_bytes r) in
      let ra_signature = Codec.read_bytes r in
      let signature = Codec.read_bytes r in
      { cert = { worker_pk; ra_signature }; signature })
    b

let attestation_size_bytes att = Bytes.length (attestation_to_bytes att)
