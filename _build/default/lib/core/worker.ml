module Address = Zebra_chain.Address
module Wallet = Zebra_chain.Wallet
module Tx = Zebra_chain.Tx
module Elgamal = Zebra_elgamal.Elgamal
module Cpla = Zebra_anonauth.Cpla
module Codec = Zebra_codec.Codec

type validation_error =
  | Budget_not_deposited
  | Bad_requester_attestation
  | Deadline_passed
  | Task_closed
  | Invalid_parameters of string

let validation_error_to_string = function
  | Budget_not_deposited -> "budget not deposited"
  | Bad_requester_attestation -> "requester attestation invalid"
  | Deadline_passed -> "answer deadline passed"
  | Task_closed -> "task closed"
  | Invalid_parameters msg -> "invalid parameters: " ^ msg

let validate_task ~storage ~contract ~balance ~height ~expected_root =
  let p = storage.Task_contract.params in
  if p.Task_contract.n <= 0 || p.Task_contract.budget <= 0 then
    Error (Invalid_parameters "non-positive n or budget")
  else if not (Fp.equal p.Task_contract.ra_root expected_root) then
    Error (Invalid_parameters "unexpected RA root")
  else if balance < p.Task_contract.budget then Error Budget_not_deposited
  else if height > p.Task_contract.answer_deadline then Error Deadline_passed
  else if storage.Task_contract.phase <> Task_contract.Collecting then Error Task_closed
  else if List.length storage.Task_contract.submissions >= p.Task_contract.n then
    Error Task_closed
  else begin
    match Cpla.attestation_of_bytes p.Task_contract.requester_attestation with
    | exception Codec.Decode_error _ -> Error Bad_requester_attestation
    | att ->
      let ok =
        Cpla.verify_with_vk ~vk_bytes:p.Task_contract.auth_vk
          ~prefix:(Address.to_field contract)
          ~message:(Address.to_field storage.Task_contract.requester)
          ~root:p.Task_contract.ra_root att
      in
      if ok then Ok () else Error Bad_requester_attestation
  end

let submit_tx ~random_bytes ~cpla ~storage ~contract ~wallet ~key ~cert_index ~ra_path
    ~answer ~nonce =
  let p = storage.Task_contract.params in
  if not (Policy.valid_answer p.Task_contract.policy answer) then
    invalid_arg "Worker.submit_tx: answer outside the task's answer space";
  let ct =
    Elgamal.encrypt ~random_bytes p.Task_contract.epk (Elgamal.encode_answer answer)
  in
  let ct_bytes = Elgamal.ciphertext_to_bytes ct in
  let digest = Task_contract.submission_digest (Wallet.address wallet) ct_bytes in
  let attestation =
    Cpla.auth ~random_bytes cpla
      ~prefix:(Address.to_field contract)
      ~message:digest ~key ~index:cert_index ~path:ra_path
      ~root:p.Task_contract.ra_root
  in
  let msg =
    Task_contract.Submit
      { ciphertext = ct_bytes; attestation = Cpla.attestation_to_bytes attestation }
  in
  Tx.make ~wallet ~nonce ~dst:(Tx.Call contract) ~value:0
    ~payload:(Task_contract.message_to_bytes msg)

let submit_plain_tx ~random_bytes ~storage ~contract ~wallet ~priv ~cert ~answer ~nonce =
  let p = storage.Task_contract.params in
  if not (Policy.valid_answer p.Task_contract.policy answer) then
    invalid_arg "Worker.submit_plain_tx: answer outside the task's answer space";
  let ct =
    Elgamal.encrypt ~random_bytes p.Task_contract.epk (Elgamal.encode_answer answer)
  in
  let ct_bytes = Elgamal.ciphertext_to_bytes ct in
  let digest = Task_contract.submission_digest (Wallet.address wallet) ct_bytes in
  let attestation =
    Plain_auth.auth ~priv ~cert ~prefix:(Address.to_field contract) ~message:digest
  in
  let msg =
    Task_contract.Submit_plain
      { ciphertext = ct_bytes; attestation = Plain_auth.attestation_to_bytes attestation }
  in
  Tx.make ~wallet ~nonce ~dst:(Tx.Call contract) ~value:0
    ~payload:(Task_contract.message_to_bytes msg)
