module Codec = Zebra_codec.Codec
module Contract = Zebra_chain.Contract
module Address = Zebra_chain.Address

type storage = {
  operator : Address.t;
  auth_vk : bytes;
  root : Fp.t;
  history : Fp.t list;
}

let behavior_name = "zebralancer-ra"

let write_fp w x = Codec.bytes w (Fp.to_bytes_be x)
let read_fp r = Fp.of_bytes_be_exn (Codec.read_bytes r)

let write_storage w st =
  Codec.bytes w (Address.to_bytes st.operator);
  Codec.bytes w st.auth_vk;
  write_fp w st.root;
  Codec.list w write_fp st.history

let read_storage r =
  let operator = Address.of_bytes (Codec.read_bytes r) in
  let auth_vk = Codec.read_bytes r in
  let root = read_fp r in
  let history = Codec.read_list r read_fp in
  { operator; auth_vk; root; history }

let storage_of_bytes = Codec.decode read_storage

let init_args ~auth_vk ~root =
  Codec.encode
    (fun w () ->
      Codec.bytes w auth_vk;
      write_fp w root)
    ()

let set_root_msg root = Codec.encode write_fp root

module Behavior = struct
  type nonrec storage = storage

  let name = behavior_name
  let encode = Codec.encode write_storage
  let decode = Codec.decode read_storage

  let init (ctx : Contract.context) args =
    Codec.decode
      (fun r ->
        let auth_vk = Codec.read_bytes r in
        let root = read_fp r in
        { operator = ctx.Contract.sender; auth_vk; root; history = [] })
      args

  let receive (ctx : Contract.context) st payload =
    if not (Address.equal ctx.Contract.sender st.operator) then
      raise (Contract.Revert "only the RA operator updates the root");
    let root = Codec.decode read_fp payload in
    ({ st with root; history = st.root :: st.history }, [ Contract.Log "ra root updated" ])
end

let registered = ref false

let register () =
  if not !registered then begin
    Contract.register (module Behavior);
    registered := true
  end
