module Codec = Zebra_codec.Codec
module Contract = Zebra_chain.Contract
module Address = Zebra_chain.Address
module Elgamal = Zebra_elgamal.Elgamal
module Cpla = Zebra_anonauth.Cpla
module Sha256 = Zebra_hashing.Sha256

type phase =
  | Collecting
  | Finished

type submission = {
  worker : Address.t;
  ciphertext : Elgamal.ciphertext;
  tag : Fp.t;
}

type params = {
  budget : int;
  n : int;
  answer_deadline : int;
  instruct_deadline : int;
  epk : Elgamal.public_key;
  ra_root : Fp.t;
  auth_vk : bytes;
  reward_vk : bytes;
  policy : Policy.t;
  requester_attestation : bytes;
  max_per_worker : int;
  ra_rsa_pub : bytes;
  data_digest : bytes;
}

type storage = {
  params : params;
  requester : Address.t;
  phase : phase;
  submissions : submission list;
  requester_tag : Fp.t;
}

type message =
  | Submit of { ciphertext : bytes; attestation : bytes }
  | Submit_plain of { ciphertext : bytes; attestation : bytes }
  | Instruct of { rewards : int list; proof : bytes }
  | Finalize

let behavior_name = "zebralancer-task"

(* --- codecs --- *)

let write_fp w x = Codec.bytes w (Fp.to_bytes_be x)
let read_fp r = Fp.of_bytes_be_exn (Codec.read_bytes r)

let write_params w p =
  Codec.u64 w p.budget;
  Codec.u32 w p.n;
  Codec.u64 w p.answer_deadline;
  Codec.u64 w p.instruct_deadline;
  write_fp w p.epk;
  write_fp w p.ra_root;
  Codec.bytes w p.auth_vk;
  Codec.bytes w p.reward_vk;
  Codec.bytes w (Policy.to_bytes p.policy);
  Codec.bytes w p.requester_attestation;
  Codec.u32 w p.max_per_worker;
  Codec.bytes w p.ra_rsa_pub;
  Codec.bytes w p.data_digest

let read_params r =
  let budget = Codec.read_u64 r in
  let n = Codec.read_u32 r in
  let answer_deadline = Codec.read_u64 r in
  let instruct_deadline = Codec.read_u64 r in
  let epk = read_fp r in
  let ra_root = read_fp r in
  let auth_vk = Codec.read_bytes r in
  let reward_vk = Codec.read_bytes r in
  let policy = Policy.of_bytes (Codec.read_bytes r) in
  let requester_attestation = Codec.read_bytes r in
  let max_per_worker = Codec.read_u32 r in
  let ra_rsa_pub = Codec.read_bytes r in
  let data_digest = Codec.read_bytes r in
  {
    budget;
    n;
    answer_deadline;
    instruct_deadline;
    epk;
    ra_root;
    auth_vk;
    reward_vk;
    policy;
    requester_attestation;
    max_per_worker;
    ra_rsa_pub;
    data_digest;
  }

let params_to_bytes = Codec.encode write_params
let params_of_bytes = Codec.decode read_params

let write_submission w s =
  Codec.bytes w (Address.to_bytes s.worker);
  Codec.bytes w (Elgamal.ciphertext_to_bytes s.ciphertext);
  write_fp w s.tag

let read_submission r =
  let worker = Address.of_bytes (Codec.read_bytes r) in
  let ciphertext = Elgamal.ciphertext_of_bytes (Codec.read_bytes r) in
  let tag = read_fp r in
  { worker; ciphertext; tag }

let write_storage w st =
  write_params w st.params;
  Codec.bytes w (Address.to_bytes st.requester);
  Codec.u8 w (match st.phase with Collecting -> 0 | Finished -> 1);
  Codec.list w write_submission st.submissions;
  write_fp w st.requester_tag

let read_storage r =
  let params = read_params r in
  let requester = Address.of_bytes (Codec.read_bytes r) in
  let phase =
    match Codec.read_u8 r with
    | 0 -> Collecting
    | 1 -> Finished
    | _ -> raise (Codec.Decode_error "task: bad phase")
  in
  let submissions = Codec.read_list r read_submission in
  let requester_tag = read_fp r in
  { params; requester; phase; submissions; requester_tag }

let storage_of_bytes = Codec.decode read_storage

let message_to_bytes m =
  Codec.encode
    (fun w m ->
      match m with
      | Submit { ciphertext; attestation } ->
        Codec.u8 w 0;
        Codec.bytes w ciphertext;
        Codec.bytes w attestation
      | Submit_plain { ciphertext; attestation } ->
        Codec.u8 w 3;
        Codec.bytes w ciphertext;
        Codec.bytes w attestation
      | Instruct { rewards; proof } ->
        Codec.u8 w 1;
        Codec.list w Codec.u64 rewards;
        Codec.bytes w proof
      | Finalize -> Codec.u8 w 2)
    m

let message_of_bytes b =
  Codec.decode
    (fun r ->
      match Codec.read_u8 r with
      | 0 ->
        let ciphertext = Codec.read_bytes r in
        let attestation = Codec.read_bytes r in
        Submit { ciphertext; attestation }
      | 1 ->
        let rewards = Codec.read_list r Codec.read_u64 in
        let proof = Codec.read_bytes r in
        Instruct { rewards; proof }
      | 2 -> Finalize
      | 3 ->
        let ciphertext = Codec.read_bytes r in
        let attestation = Codec.read_bytes r in
        Submit_plain { ciphertext; attestation }
      | _ -> raise (Codec.Decode_error "task: bad message tag"))
    b

let submission_digest worker ciphertext_bytes =
  let ctx = Sha256.init () in
  Sha256.update ctx (Address.to_bytes worker);
  Sha256.update ctx ciphertext_bytes;
  Fp.of_bytes_be (Sha256.finalize ctx)

(* --- behaviour --- *)

let revert fmt = Format.kasprintf (fun s -> raise (Contract.Revert s)) fmt

module Behavior = struct
  type nonrec storage = storage

  let name = behavior_name
  let encode = Codec.encode write_storage
  let decode = Codec.decode read_storage

  (* Algorithm 1 lines 3-4: budget deposited and requester identified. *)
  let init (ctx : Contract.context) args =
    let params = params_of_bytes args in
    if params.n <= 0 then revert "need n > 0";
    if params.budget <= 0 then revert "need a positive budget";
    if params.answer_deadline >= params.instruct_deadline then
      revert "instruction deadline must follow answer deadline";
    if ctx.Contract.self_balance < params.budget then revert "budget not deposited";
    ctx.Contract.charge Contract.Gas.snark_verify;
    let att =
      try Cpla.attestation_of_bytes params.requester_attestation
      with Codec.Decode_error e -> revert "malformed requester attestation: %s" e
    in
    let ok =
      Cpla.verify_with_vk ~vk_bytes:params.auth_vk
        ~prefix:(Address.to_field ctx.Contract.self)
        ~message:(Address.to_field ctx.Contract.sender)
        ~root:params.ra_root att
    in
    if not ok then revert "requester not identified";
    {
      params;
      requester = ctx.Contract.sender;
      phase = Collecting;
      submissions = [];
      requester_tag = att.Cpla.t1;
    }

  (* Checks common to both submission modes; returns the parsed
     ciphertext.  Lines 6-7 of Algorithm 1. *)
  let admission_checks ctx st ~ciphertext =
    (match st.phase with Collecting -> () | Finished -> revert "task finished");
    if ctx.Contract.height > st.params.answer_deadline then revert "answer deadline passed";
    if List.length st.submissions >= st.params.n then revert "enough answers collected";
    let ct =
      try Elgamal.ciphertext_of_bytes ciphertext
      with Codec.Decode_error e | Invalid_argument e -> revert "malformed ciphertext: %s" e
    in
    if Elgamal.is_missing ct then revert "sentinel ciphertext";
    let sender = ctx.Contract.sender in
    if List.exists (fun s -> Address.equal s.worker sender) st.submissions then
      revert "address already submitted";
    ct

  (* Link against every prior submission (line 8).  With footnote 11's
     extension, an identity may appear up to [max_per_worker] times. *)
  let link_checks ctx st ~tag =
    ctx.Contract.charge (Contract.Gas.link_check * (1 + List.length st.submissions));
    if Fp.equal tag st.requester_tag then revert "linked: requester self-submission";
    let linked =
      List.length (List.filter (fun s -> Fp.equal s.tag tag) st.submissions)
    in
    if linked >= max 1 st.params.max_per_worker then revert "linked: double submission"

  let record_submission st ~worker ~ct ~tag =
    let st = { st with submissions = st.submissions @ [ { worker; ciphertext = ct; tag } ] } in
    (st, [ Contract.Log (Printf.sprintf "submission %d/%d" (List.length st.submissions) st.params.n) ])

  (* AnswerCollection, lines 6-9 (anonymous mode). *)
  let handle_submit ctx st ~ciphertext ~attestation =
    let ct = admission_checks ctx st ~ciphertext in
    let att =
      try Cpla.attestation_of_bytes attestation
      with Codec.Decode_error e | Invalid_argument e -> revert "malformed attestation: %s" e
    in
    let sender = ctx.Contract.sender in
    link_checks ctx st ~tag:att.Cpla.t1;
    (* Verify over the digest of the *actual* sender and ciphertext. *)
    ctx.Contract.charge Contract.Gas.snark_verify;
    let ok =
      Cpla.verify_with_vk ~vk_bytes:st.params.auth_vk
        ~prefix:(Address.to_field ctx.Contract.self)
        ~message:(submission_digest sender ciphertext)
        ~root:st.params.ra_root att
    in
    if not ok then revert "invalid attestation";
    record_submission st ~worker:sender ~ct ~tag:att.Cpla.t1

  (* The non-anonymous mode of Section VI: a plain certificate chain and an
     RSA signature over the same (prefix, digest) pair.  Linking is by the
     (public) key hash. *)
  let handle_submit_plain ctx st ~ciphertext ~attestation =
    if Bytes.length st.params.ra_rsa_pub = 0 then
      revert "plain submissions disabled for this task";
    let ra_pub =
      try Zebra_rsa.Rsa.public_key_of_bytes st.params.ra_rsa_pub
      with Codec.Decode_error e -> revert "bad RA key in params: %s" e
    in
    let ct = admission_checks ctx st ~ciphertext in
    let att =
      try Plain_auth.attestation_of_bytes attestation
      with Codec.Decode_error e | Invalid_argument e -> revert "malformed attestation: %s" e
    in
    let sender = ctx.Contract.sender in
    let tag = Plain_auth.tag att.Plain_auth.cert in
    link_checks ctx st ~tag;
    let ok =
      Plain_auth.verify ~ra_pub
        ~prefix:(Address.to_field ctx.Contract.self)
        ~message:(submission_digest sender ciphertext)
        att
    in
    if not ok then revert "invalid attestation";
    record_submission st ~worker:sender ~ct ~tag

  let collection_closed ctx st =
    List.length st.submissions >= st.params.n
    || ctx.Contract.height > st.params.answer_deadline

  (* Reward, lines 11-17. *)
  let handle_instruct ctx st ~rewards ~proof =
    (match st.phase with Collecting -> () | Finished -> revert "task finished");
    if not (Address.equal ctx.Contract.sender st.requester) then
      revert "only the requester instructs";
    if not (collection_closed ctx st) then revert "collection still open";
    if ctx.Contract.height > st.params.instruct_deadline then revert "instruction deadline passed";
    let n = st.params.n in
    if List.length rewards <> n then revert "need %d rewards" n;
    let rewards = Array.of_list rewards in
    let total = Array.fold_left ( + ) 0 rewards in
    if total > st.params.budget then revert "rewards exceed budget";
    let proof =
      try Zebra_snark.Snark.proof_of_bytes proof
      with Codec.Decode_error e | Invalid_argument e -> revert "malformed proof: %s" e
    in
    let cts = Array.make n Elgamal.missing in
    List.iteri (fun i s -> cts.(i) <- s.ciphertext) st.submissions;
    let rho = Reward_circuit.rho_of ~policy:st.params.policy ~budget:st.params.budget ~n in
    ctx.Contract.charge Contract.Gas.snark_verify;
    let ok =
      Reward_circuit.verify ~vk_bytes:st.params.reward_vk ~epk:st.params.epk ~rho ~cts
        ~rewards proof
    in
    if not ok then revert "invalid reward proof";
    let payments =
      List.mapi (fun i s -> Contract.Transfer (s.worker, rewards.(i))) st.submissions
    in
    let paid = List.fold_left (fun acc s -> match s with Contract.Transfer (_, v) -> acc + v | _ -> acc) 0 payments in
    let refund = ctx.Contract.self_balance - paid in
    let actions =
      payments
      @ (if refund > 0 then [ Contract.Transfer (st.requester, refund) ] else [])
      @ [ Contract.Log "rewards distributed" ]
    in
    ({ st with phase = Finished }, actions)

  (* Fallback, lines 18-21. *)
  let handle_finalize ctx st =
    (match st.phase with Collecting -> () | Finished -> revert "task finished");
    if ctx.Contract.height <= st.params.instruct_deadline then
      revert "instruction deadline not reached";
    let submitted = List.length st.submissions in
    let share = Policy.fallback_share ~budget:st.params.budget ~submitted in
    let payments =
      if share > 0 then
        List.map (fun s -> Contract.Transfer (s.worker, share)) st.submissions
      else []
    in
    let refund = ctx.Contract.self_balance - (share * submitted) in
    let actions =
      payments
      @ (if refund > 0 then [ Contract.Transfer (st.requester, refund) ] else [])
      @ [ Contract.Log "fallback: budget split evenly" ]
    in
    ({ st with phase = Finished }, actions)

  let receive ctx st payload =
    match message_of_bytes payload with
    | Submit { ciphertext; attestation } -> handle_submit ctx st ~ciphertext ~attestation
    | Submit_plain { ciphertext; attestation } ->
      handle_submit_plain ctx st ~ciphertext ~attestation
    | Instruct { rewards; proof } -> handle_instruct ctx st ~rewards ~proof
    | Finalize -> handle_finalize ctx st
    | exception Codec.Decode_error e -> revert "bad payload: %s" e
end

let registered = ref false

let register () =
  if not !registered then begin
    Contract.register (module Behavior);
    registered := true
  end
