(** Worker client (off-chain): task validation and anonymous submission. *)

(** Why a worker declines a task. *)
type validation_error =
  | Budget_not_deposited
  | Bad_requester_attestation
  | Deadline_passed
  | Task_closed
  | Invalid_parameters of string

val validation_error_to_string : validation_error -> string

(** [validate_task ~storage ~contract ~balance ~height ~expected_root] — the
    due-diligence checks the paper prescribes before contributing: the
    budget really sits at alpha_C, the requester's attestation verifies for
    this very contract address (so the task is not a copy of someone
    else's), the RA root matches the one the worker trusts, and collection
    is still open. *)
val validate_task :
  storage:Task_contract.storage ->
  contract:Zebra_chain.Address.t ->
  balance:int ->
  height:int ->
  expected_root:Fp.t ->
  (unit, validation_error) result

(** [submit_tx ~random_bytes ~cpla ~storage ~contract ~wallet ~key
     ~cert_index ~ra_path ~answer ~nonce] encrypts the answer under the
    task key, authenticates [alpha_C || alpha_i || C_i], and returns the
    signed submission transaction from the one-task address alpha_i. *)
val submit_tx :
  random_bytes:(int -> bytes) ->
  cpla:Zebra_anonauth.Cpla.params ->
  storage:Task_contract.storage ->
  contract:Zebra_chain.Address.t ->
  wallet:Zebra_chain.Wallet.t ->
  key:Zebra_anonauth.Cpla.user_key ->
  cert_index:int ->
  ra_path:Fp.t array ->
  answer:int ->
  nonce:int ->
  Zebra_chain.Tx.t

(** Non-anonymous submission (paper Section VI): a plain RSA signature under
    a classical RA certificate instead of a CPLA attestation. *)
val submit_plain_tx :
  random_bytes:(int -> bytes) ->
  storage:Task_contract.storage ->
  contract:Zebra_chain.Address.t ->
  wallet:Zebra_chain.Wallet.t ->
  priv:Zebra_rsa.Rsa.private_key ->
  cert:Plain_auth.cert ->
  answer:int ->
  nonce:int ->
  Zebra_chain.Tx.t
