type data = {
  items : int;
  workers : int;
  choices : int;
  answers : int option array array;
}

type estimate = {
  labels : int array;
  class_priors : float array;
  confusion : float array array array;
  log_likelihood : float;
  iterations : int;
}

let validate d =
  if d.items <= 0 || d.workers <= 0 || d.choices < 2 then
    invalid_arg "Truth_inference: bad dimensions";
  if Array.length d.answers <> d.items then invalid_arg "Truth_inference: items mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> d.workers then invalid_arg "Truth_inference: workers mismatch";
      Array.iter
        (function
          | Some a when a < 0 || a >= d.choices ->
            invalid_arg "Truth_inference: answer out of range"
          | Some _ | None -> ())
        row)
    d.answers

let majority d =
  Array.map
    (fun row ->
      let counts = Array.make d.choices 0 in
      Array.iter (function Some a -> counts.(a) <- counts.(a) + 1 | None -> ()) row;
      let best = ref 0 in
      Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
      !best)
    d.answers

(* Laplace smoothing keeps confusion rows proper when a worker never saw a
   class in the current soft assignment. *)
let smoothing = 0.01

let dawid_skene ?(max_iters = 100) ?(tol = 1e-6) d =
  validate d;
  let k = d.choices in
  (* Soft class assignments, initialised from majority voting. *)
  let q = Array.make_matrix d.items k 0.0 in
  Array.iteri (fun i m -> q.(i).(m) <- 1.0) (majority d);
  let priors = Array.make k (1.0 /. float_of_int k) in
  let confusion =
    Array.init d.workers (fun _ -> Array.make_matrix k k (1.0 /. float_of_int k))
  in
  let log_lik = ref neg_infinity in
  let iters = ref 0 in
  (try
     for it = 1 to max_iters do
       iters := it;
       (* M step: priors and confusion matrices from q. *)
       for c = 0 to k - 1 do
         let s = ref 0.0 in
         for i = 0 to d.items - 1 do
           s := !s +. q.(i).(c)
         done;
         priors.(c) <- (!s +. smoothing) /. (float_of_int d.items +. (smoothing *. float_of_int k))
       done;
       for w = 0 to d.workers - 1 do
         for truth = 0 to k - 1 do
           let row = Array.make k smoothing in
           let total = ref (smoothing *. float_of_int k) in
           for i = 0 to d.items - 1 do
             match d.answers.(i).(w) with
             | Some obs ->
               row.(obs) <- row.(obs) +. q.(i).(truth);
               total := !total +. q.(i).(truth)
             | None -> ()
           done;
           for obs = 0 to k - 1 do
             confusion.(w).(truth).(obs) <- row.(obs) /. !total
           done
         done
       done;
       (* E step: posterior class assignment per item. *)
       let ll = ref 0.0 in
       for i = 0 to d.items - 1 do
         let logp = Array.make k 0.0 in
         for c = 0 to k - 1 do
           let acc = ref (log priors.(c)) in
           for w = 0 to d.workers - 1 do
             match d.answers.(i).(w) with
             | Some obs -> acc := !acc +. log confusion.(w).(c).(obs)
             | None -> ()
           done;
           logp.(c) <- !acc
         done;
         let mx = Array.fold_left max neg_infinity logp in
         let z = ref 0.0 in
         for c = 0 to k - 1 do
           z := !z +. exp (logp.(c) -. mx)
         done;
         ll := !ll +. mx +. log !z;
         for c = 0 to k - 1 do
           q.(i).(c) <- exp (logp.(c) -. mx) /. !z
         done
       done;
       if !ll -. !log_lik < tol && it > 1 then begin
         log_lik := !ll;
         raise Exit
       end;
       log_lik := !ll
     done
   with Exit -> ());
  let labels =
    Array.map
      (fun qi ->
        let best = ref 0 in
        Array.iteri (fun c p -> if p > qi.(!best) then best := c) qi;
        !best)
      q
  in
  { labels; class_priors = priors; confusion; log_likelihood = !log_lik; iterations = !iters }

let accuracy ~truth labels =
  if Array.length truth <> Array.length labels then
    invalid_arg "Truth_inference.accuracy: length mismatch";
  let hits = ref 0 in
  Array.iteri (fun i t -> if labels.(i) = t then incr hits) truth;
  float_of_int !hits /. float_of_int (Array.length truth)

(* Uniform float in [0,1) from the byte source. *)
let uniform random_bytes =
  let b = random_bytes 7 in
  let v = ref 0 in
  Bytes.iter (fun c -> v := (!v lsl 8) lor Char.code c) b;
  float_of_int !v /. float_of_int (1 lsl 56)

let synthesize ~random_bytes ~items ~choices ~reliabilities ?(missing_rate = 0.0) () =
  let workers = Array.length reliabilities in
  if workers = 0 then invalid_arg "Truth_inference.synthesize: no workers";
  let truth = Array.init items (fun _ -> int_of_float (uniform random_bytes *. float_of_int choices)) in
  let truth = Array.map (fun t -> min t (choices - 1)) truth in
  let answers =
    Array.init items (fun i ->
        Array.init workers (fun w ->
            if uniform random_bytes < missing_rate then None
            else if uniform random_bytes < reliabilities.(w) then Some truth.(i)
            else begin
              let wrong = int_of_float (uniform random_bytes *. float_of_int (choices - 1)) in
              let wrong = min wrong (choices - 2) in
              Some (if wrong >= truth.(i) then wrong + 1 else wrong)
            end))
  in
  ({ items; workers; choices; answers }, truth)
