module Codec = Zebra_codec.Codec

type t =
  | Majority of { choices : int }
  | Majority_threshold of { choices : int; quota : int }
  | Reverse_auction of { winners : int; max_bid : int }

type answer = int option

let answer_space = function
  | Majority { choices } | Majority_threshold { choices; _ } -> choices
  | Reverse_auction { max_bid; _ } -> max_bid + 1

let valid_answer p a = a >= 0 && a < answer_space p

(* Vote counts and the tie-to-smallest majority choice. *)
let tally ~choices answers =
  let counts = Array.make choices 0 in
  Array.iter
    (function
      | Some a when a >= 0 && a < choices -> counts.(a) <- counts.(a) + 1
      | Some _ | None -> ())
    answers;
  let best = ref 0 in
  Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
  (counts, !best)

let majority_rewards ~choices ~quota ~budget ~n answers =
  let counts, majority = tally ~choices answers in
  let rho = budget / n in
  let gate = counts.(majority) >= quota in
  Array.map
    (function
      | Some a when gate && a = majority -> rho
      | Some _ | None -> 0)
    answers

let auction_rewards ~winners ~max_bid ~budget answers =
  let indexed =
    Array.to_list answers
    |> List.mapi (fun i a -> (i, a))
    |> List.filter_map (fun (i, a) ->
           match a with Some b when b >= 0 && b <= max_bid -> Some (i, b) | _ -> None)
  in
  (* Stable sort by bid: ties keep submission order. *)
  let sorted = List.stable_sort (fun (_, b1) (_, b2) -> compare b1 b2) indexed in
  let rec split k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (k - 1) (x :: acc) rest
  in
  let winning, losing = split winners [] sorted in
  let clearing_price =
    match losing with
    | (_, b) :: _ -> b
    | [] -> max_bid (* no losing bid: pay the reserve *)
  in
  let cap = if winners > 0 then budget / winners else 0 in
  let pay = min clearing_price cap in
  let out = Array.make (Array.length answers) 0 in
  List.iter (fun (i, _) -> out.(i) <- pay) winning;
  out

let rewards p ~budget ~n answers =
  if Array.length answers <> n then invalid_arg "Policy.rewards: wrong answer count";
  if budget < 0 || n <= 0 then invalid_arg "Policy.rewards: bad parameters";
  match p with
  | Majority { choices } -> majority_rewards ~choices ~quota:0 ~budget ~n answers
  | Majority_threshold { choices; quota } -> majority_rewards ~choices ~quota ~budget ~n answers
  | Reverse_auction { winners; max_bid } -> auction_rewards ~winners ~max_bid ~budget answers

let fallback_share ~budget ~submitted = if submitted <= 0 then 0 else budget / submitted

let equal a b = a = b

let to_bytes p =
  Codec.encode
    (fun w p ->
      match p with
      | Majority { choices } ->
        Codec.u8 w 0;
        Codec.u32 w choices
      | Majority_threshold { choices; quota } ->
        Codec.u8 w 1;
        Codec.u32 w choices;
        Codec.u32 w quota
      | Reverse_auction { winners; max_bid } ->
        Codec.u8 w 2;
        Codec.u32 w winners;
        Codec.u32 w max_bid)
    p

let of_bytes b =
  Codec.decode
    (fun r ->
      match Codec.read_u8 r with
      | 0 -> Majority { choices = Codec.read_u32 r }
      | 1 ->
        let choices = Codec.read_u32 r in
        let quota = Codec.read_u32 r in
        Majority_threshold { choices; quota }
      | 2 ->
        let winners = Codec.read_u32 r in
        let max_bid = Codec.read_u32 r in
        Reverse_auction { winners; max_bid }
      | _ -> raise (Codec.Decode_error "policy: bad tag"))
    b

let pp fmt = function
  | Majority { choices } -> Format.fprintf fmt "majority(%d choices)" choices
  | Majority_threshold { choices; quota } ->
    Format.fprintf fmt "majority(%d choices, quota %d)" choices quota
  | Reverse_auction { winners; max_bid } ->
    Format.fprintf fmt "reverse-auction(%d winners, bids <= %d)" winners max_bid
