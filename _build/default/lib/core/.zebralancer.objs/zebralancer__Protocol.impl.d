lib/core/protocol.ml: Bytes List Plain_auth Printf Ra_contract Requester Reward_circuit Task_contract Worker Zebra_anonauth Zebra_chain Zebra_rng Zebra_rsa
