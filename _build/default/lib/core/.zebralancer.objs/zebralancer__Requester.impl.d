lib/core/requester.ml: Array Bytes List Policy Reward_circuit Task_contract Zebra_anonauth Zebra_chain Zebra_elgamal Zebra_snark
