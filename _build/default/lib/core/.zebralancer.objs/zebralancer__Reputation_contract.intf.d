lib/core/reputation_contract.mli: Fp Zebra_chain
