lib/core/reputation.mli: Fp Zebra_anonauth Zebra_snark
