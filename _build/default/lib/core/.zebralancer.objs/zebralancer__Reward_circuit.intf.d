lib/core/reward_circuit.mli: Fp Policy Zebra_elgamal Zebra_snark
