lib/core/ra_contract.ml: Fp Zebra_chain Zebra_codec
