lib/core/truth_inference.ml: Array Bytes Char
