lib/core/policy.ml: Array Format List Zebra_codec
