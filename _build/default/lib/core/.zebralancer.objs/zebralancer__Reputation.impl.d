lib/core/reputation.ml: Cs Fp Gadgets Zebra_anonauth Zebra_codec Zebra_mimc Zebra_r1cs Zebra_snark
