lib/core/reward_circuit.ml: Array Cs Fp Gadgets List Policy Printf Zebra_codec Zebra_elgamal Zebra_r1cs Zebra_snark
