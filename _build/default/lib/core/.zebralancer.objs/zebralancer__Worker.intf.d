lib/core/worker.mli: Fp Plain_auth Task_contract Zebra_anonauth Zebra_chain Zebra_rsa
