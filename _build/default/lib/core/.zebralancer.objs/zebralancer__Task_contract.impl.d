lib/core/task_contract.ml: Array Bytes Format Fp List Plain_auth Policy Printf Reward_circuit Zebra_anonauth Zebra_chain Zebra_codec Zebra_elgamal Zebra_hashing Zebra_rsa Zebra_snark
