lib/core/ra_contract.mli: Fp Zebra_chain
