lib/core/plain_auth.ml: Bytes Fp Zebra_codec Zebra_mimc Zebra_rsa
