lib/core/requester.mli: Fp Policy Reward_circuit Task_contract Zebra_anonauth Zebra_chain Zebra_elgamal
