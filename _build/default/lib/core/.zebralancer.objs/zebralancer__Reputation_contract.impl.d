lib/core/reputation_contract.ml: Format Fp List Printf Reputation Zebra_chain Zebra_codec Zebra_hashing Zebra_snark
