lib/core/plain_auth.mli: Fp Zebra_rsa
