lib/core/protocol.mli: Plain_auth Policy Requester Reward_circuit Task_contract Zebra_anonauth Zebra_chain Zebra_rng Zebra_rsa
