lib/core/truth_inference.mli:
