lib/core/task_contract.mli: Fp Policy Zebra_chain Zebra_elgamal
