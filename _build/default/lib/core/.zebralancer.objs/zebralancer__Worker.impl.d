lib/core/worker.ml: Fp List Plain_auth Policy Task_contract Zebra_anonauth Zebra_chain Zebra_codec Zebra_elgamal
