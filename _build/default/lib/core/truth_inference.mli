(** Off-chain truth inference over batches of tasks.

    Section IV grounds the quality-aware incentive class in "either majority
    voting or estimation maximization iterations" [9-11].  Majority voting
    is what the reward circuit proves on-chain; this module supplies the EM
    side — the Dawid-Skene estimator — which a requester can run across a
    {e batch} of annotation tasks to grade answers better than per-task
    majority when worker reliability varies.

    Everything here is requester-side post-processing of decrypted answers;
    it changes no on-chain rule.  (Proving EM fixpoints in-circuit is open
    research — the same status the paper gives it.) *)

type data = {
  items : int;  (** number of questions (tasks in the batch) *)
  workers : int;
  choices : int;
  answers : int option array array;  (** [answers.(item).(worker)] *)
}

type estimate = {
  labels : int array;  (** MAP label per item *)
  class_priors : float array;
  confusion : float array array array;
      (** [confusion.(worker).(truth).(observed)] *)
  log_likelihood : float;
  iterations : int;
}

(** @raise Invalid_argument on inconsistent dimensions. *)
val validate : data -> unit

(** Per-item majority labels (ties to the smallest choice; items with no
    answers get 0) — the baseline the reward circuit enforces. *)
val majority : data -> int array

(** [dawid_skene ?max_iters ?tol data] runs EM initialised from majority
    voting, stopping on log-likelihood convergence. *)
val dawid_skene : ?max_iters:int -> ?tol:float -> data -> estimate

(** [accuracy ~truth labels] — fraction of items labelled correctly. *)
val accuracy : truth:int array -> int array -> float

(** Synthetic crowd generator for tests and examples: each worker answers
    correctly with her own reliability, else uniformly at random; a [None]
    with probability [missing_rate]. *)
val synthesize :
  random_bytes:(int -> bytes) ->
  items:int ->
  choices:int ->
  reliabilities:float array ->
  ?missing_rate:float ->
  unit ->
  data * int array
(** Returns the data and the hidden ground truth. *)
