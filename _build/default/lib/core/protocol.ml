module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Cpla = Zebra_anonauth.Cpla
module Ra = Zebra_anonauth.Ra
module Chacha20 = Zebra_rng.Chacha20

type system = {
  net : Network.t;
  cpla : Cpla.params;
  ra : Ra.t;
  ra_contract : Address.t;
  faucet : Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
  rng : Chacha20.t;
}

type identity = { key : Cpla.user_key; cert_index : int }

let random_bytes sys n = Chacha20.bytes sys.rng n

let faucet_supply = 1_000_000_000

(* Mines the pending block and returns the receipt of [tx]. *)
let mine_for sys tx =
  ignore (Network.mine sys.net);
  match Network.receipt sys.net (Tx.hash tx) with
  | Some r -> r
  | None -> failwith "Protocol: transaction was not mined"

let expect_ok what (r : State.receipt) =
  match r.State.status with
  | State.Ok addr -> addr
  | State.Failed e -> failwith (Printf.sprintf "Protocol: %s failed: %s" what e)

let create_system ?(num_nodes = 3) ?(tree_depth = 6) ?(wallet_bits = 512) ~seed () =
  Task_contract.register ();
  Ra_contract.register ();
  let rng = Chacha20.create ~seed in
  let rb n = Chacha20.bytes rng n in
  let faucet = Wallet.generate ~bits:wallet_bits ~random_bytes:rb () in
  let net =
    Network.create ~num_nodes ~genesis:[ (Wallet.address faucet, faucet_supply) ] ()
  in
  let cpla = Cpla.setup ~random_bytes:rb ~depth:tree_depth in
  let ra = Ra.create ~depth:tree_depth in
  let deploy =
    Tx.make ~wallet:faucet ~nonce:0
      ~dst:
        (Tx.Create
           {
             behavior = Ra_contract.behavior_name;
             args = Ra_contract.init_args ~auth_vk:(Cpla.vk_to_bytes cpla) ~root:(Ra.root ra);
           })
      ~value:0 ~payload:Bytes.empty
  in
  Network.submit net deploy;
  let ra_rsa = Zebra_rsa.Rsa.generate ~bits:wallet_bits ~random_bytes:rb in
  let sys =
    {
      net;
      cpla;
      ra;
      ra_contract = Address.of_creator (Wallet.address faucet) 0;
      faucet;
      ra_rsa;
      rng;
    }
  in
  (match expect_ok "RA contract deployment" (mine_for sys deploy) with
  | Some _ -> ()
  | None -> failwith "Protocol: RA deployment returned no address");
  sys

(* The RA operator (we reuse the faucet wallet as the operator) posts the
   new root after each registration. *)
let post_root sys =
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call sys.ra_contract) ~value:0
      ~payload:(Ra_contract.set_root_msg (Ra.root sys.ra))
  in
  Network.submit sys.net tx;
  ignore (expect_ok "RA root update" (mine_for sys tx))

let enroll sys =
  let key = Cpla.keygen ~random_bytes:(random_bytes sys) in
  let cert_index = Ra.register sys.ra key.Cpla.pk in
  post_root sys;
  { key; cert_index }

let enroll_plain sys =
  let priv = Zebra_rsa.Rsa.generate ~bits:512 ~random_bytes:(random_bytes sys) in
  let cert = Plain_auth.issue ~ra_priv:sys.ra_rsa priv.Zebra_rsa.Rsa.pub in
  (priv, cert)

let ra_rsa_pub_bytes sys = Zebra_rsa.Rsa.public_key_to_bytes sys.ra_rsa.Zebra_rsa.Rsa.pub

let fresh_funded_wallet sys ~amount =
  let wallet = Wallet.generate ~random_bytes:(random_bytes sys) () in
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call (Wallet.address wallet))
      ~value:amount ~payload:Bytes.empty
  in
  Network.submit sys.net tx;
  ignore (expect_ok "faucet funding" (mine_for sys tx));
  wallet

let task_storage sys contract =
  match Network.contract_storage sys.net contract with
  | Some bytes -> Task_contract.storage_of_bytes bytes
  | None -> failwith "Protocol: no such task contract"

let publish_task sys ~requester ~policy ~n ~budget ?(answer_window = 20)
    ?(instruct_window = 40) ?(max_per_worker = 1) ?(ra_rsa_pub = Bytes.empty)
    ?(data_digest = Bytes.empty) ?circuit () =
  let wallet = fresh_funded_wallet sys ~amount:(budget + 1) in
  let height = Network.height sys.net in
  let task, tx =
    Requester.create_task ?circuit ~max_per_worker ~ra_rsa_pub ~data_digest
      ~random_bytes:(random_bytes sys) ~cpla:sys.cpla
      ~key:requester.key ~cert_index:requester.cert_index
      ~ra_path:(Ra.path sys.ra requester.cert_index)
      ~ra_root:(Ra.root sys.ra) ~wallet ~nonce:0 ~policy ~n ~budget
      ~answer_deadline:(height + answer_window)
      ~instruct_deadline:(height + answer_window + instruct_window)
      ()
  in
  Network.submit sys.net tx;
  (match expect_ok "task deployment" (mine_for sys tx) with
  | Some addr when Address.equal addr task.Requester.contract -> ()
  | Some _ -> failwith "Protocol: contract address prediction failed"
  | None -> failwith "Protocol: deployment returned no address");
  task

let submit_answers sys ~task ~workers =
  let storage = task_storage sys task in
  let root = storage.Task_contract.params.Task_contract.ra_root in
  let txs_wallets =
    List.map
      (fun (identity, answer) ->
        let wallet = fresh_funded_wallet sys ~amount:10 in
        (match
           Worker.validate_task ~storage ~contract:task ~balance:(Network.balance sys.net task)
             ~height:(Network.height sys.net) ~expected_root:root
         with
        | Ok () -> ()
        | Error e -> failwith ("Protocol: task validation failed: " ^ Worker.validation_error_to_string e));
        let tx =
          Worker.submit_tx ~random_bytes:(random_bytes sys) ~cpla:sys.cpla ~storage
            ~contract:task ~wallet ~key:identity.key ~cert_index:identity.cert_index
            ~ra_path:(Ra.path sys.ra identity.cert_index)
            ~answer ~nonce:0
        in
        Network.submit sys.net tx;
        (tx, wallet))
      workers
  in
  ignore (Network.mine sys.net);
  List.map
    (fun (tx, wallet) ->
      (match Network.receipt sys.net (Tx.hash tx) with
      | Some { State.status = State.Ok _; _ } -> ()
      | Some { State.status = State.Failed e; _ } ->
        failwith ("Protocol: submission rejected: " ^ e)
      | None -> failwith "Protocol: submission not mined");
      wallet)
    txs_wallets

let reward sys (task : Requester.task) =
  let storage = task_storage sys task.Requester.contract in
  let rewards, tx =
    Requester.instruct ~random_bytes:(random_bytes sys) task ~storage
      ~nonce:(Network.nonce sys.net (Wallet.address task.Requester.wallet))
  in
  Network.submit sys.net tx;
  ignore (expect_ok "reward instruction" (mine_for sys tx));
  rewards

let finalize sys (task : Requester.task) =
  Network.mine_until sys.net
    ~height:(task.Requester.params.Task_contract.instruct_deadline + 1);
  let caller = fresh_funded_wallet sys ~amount:10 in
  let tx =
    Tx.make ~wallet:caller ~nonce:0 ~dst:(Tx.Call task.Requester.contract) ~value:0
      ~payload:(Task_contract.message_to_bytes Task_contract.Finalize)
  in
  Network.submit sys.net tx;
  ignore (expect_ok "finalize" (mine_for sys tx))

let run_batch sys ~policy ~budget_per_task ~answer_sets =
  (match answer_sets with
  | [] -> invalid_arg "Protocol.run_batch: empty batch"
  | first :: rest ->
    let n = List.length first in
    if n = 0 || List.exists (fun a -> List.length a <> n) rest then
      invalid_arg "Protocol.run_batch: ragged answer sets");
  let n = List.length (List.hd answer_sets) in
  let circuit = Reward_circuit.setup ~random_bytes:(random_bytes sys) ~policy ~n in
  let requester = enroll sys in
  let workers = List.init n (fun _ -> enroll sys) in
  List.map
    (fun answers ->
      let task = publish_task sys ~requester ~policy ~n ~budget:budget_per_task ~circuit () in
      let pairs = List.map2 (fun w a -> (w, a)) workers answers in
      let _ = submit_answers sys ~task:task.Requester.contract ~workers:pairs in
      reward sys task)
    answer_sets

let run_task sys ~policy ~budget ~answers =
  let requester = enroll sys in
  let workers = List.map (fun a -> (enroll sys, a)) answers in
  let n = List.length answers in
  let task = publish_task sys ~requester ~policy ~n ~budget () in
  let wallets = submit_answers sys ~task:task.Requester.contract ~workers in
  let rewards = reward sys task in
  (task, wallets, rewards)
