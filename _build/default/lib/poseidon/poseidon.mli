(** The Poseidon permutation and 2-to-1 compression over {!Fp}.

    The paper remarks that "a lot of dedicated optimizations of zk-SNARK
    exist which can directly benefit our protocol"; the single biggest one
    for its circuits is the in-circuit hash.  This module provides the
    modern choice — Poseidon with t = 3, x^5 S-box, 8 full and 57 partial
    rounds on the BN254 scalar field — as a drop-in alternative to
    {!Zebra_mimc.Mimc}: a 2-to-1 compression costs ~250 R1CS constraints
    versus MiMC's ~730 (the `ablation-hash` benchmark quantifies the
    end-to-end effect on attestation circuits).

    Parameter generation note: round constants are derived from SHA-256 in
    counter mode and the MDS matrix is the Cauchy matrix over
    x = (0,1,2), y = (3,4,5) — deterministic and MDS, though not the
    Grain-LFSR constants of the reference implementation (we have no test
    vectors to match; cross-checking is against our own circuit gadget). *)

(** State width (rate 2 + capacity 1). *)
val width : int

val full_rounds : int
val partial_rounds : int

val round_constants : Fp.t array array
(** [round_constants.(round).(lane)]. *)

val mds : Fp.t array array

(** [permute state] — in-place Poseidon permutation; length must be
    {!width}.  @raise Invalid_argument otherwise. *)
val permute : Fp.t array -> unit

(** [hash2 a b] — 2-to-1 compression: permute [0; a; b], read lane 0. *)
val hash2 : Fp.t -> Fp.t -> Fp.t

(** [hash_list ms] — Merkle-Damgard over {!hash2} with the length absorbed
    first (mirrors {!Zebra_mimc.Mimc.hash_list}'s domain separation). *)
val hash_list : Fp.t list -> Fp.t

(** {1 Circuit gadget} — mirrors the native computation exactly. *)

val hash2_gadget :
  Zebra_r1cs.Cs.t -> Zebra_r1cs.Gadgets.expr -> Zebra_r1cs.Gadgets.expr -> Zebra_r1cs.Gadgets.expr

(** [merkle_root_gadget] — {!Zebra_r1cs.Gadgets.merkle_root} with Poseidon
    instead of MiMC (for the ablation benchmark). *)
val merkle_root_gadget :
  Zebra_r1cs.Cs.t ->
  leaf:Zebra_r1cs.Gadgets.expr ->
  path_bits:Zebra_r1cs.Cs.var array ->
  siblings:Zebra_r1cs.Cs.var array ->
  Zebra_r1cs.Gadgets.expr
