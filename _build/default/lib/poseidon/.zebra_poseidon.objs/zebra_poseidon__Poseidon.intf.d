lib/poseidon/poseidon.mli: Fp Zebra_r1cs
