lib/poseidon/poseidon.ml: Array Fp List Printf Zebra_hashing Zebra_r1cs
