let hash_leaf leaf =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "leaf:";
  Sha256.update ctx leaf;
  Sha256.finalize ctx

let hash_node l r =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "node:";
  Sha256.update ctx l;
  Sha256.update ctx r;
  Sha256.finalize ctx

let level_up nodes =
  let rec go = function
    | [] -> []
    | [ x ] -> [ hash_node x x ]
    | x :: y :: rest -> hash_node x y :: go rest
  in
  go nodes

let root leaves =
  match List.map hash_leaf leaves with
  | [] -> Sha256.digest_string ""
  | nodes ->
    let rec go = function
      | [ r ] -> r
      | nodes -> go (level_up nodes)
    in
    go nodes

let proof leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.proof: index out of range";
  let rec go nodes i acc =
    match nodes with
    | [ _ ] -> List.rev acc
    | _ ->
      let arr = Array.of_list nodes in
      let len = Array.length arr in
      let sib_idx = if i land 1 = 0 then i + 1 else i - 1 in
      let sib = if sib_idx < len then arr.(sib_idx) else arr.(i) in
      let entry = (sib, i land 1 = 0) in
      go (level_up nodes) (i / 2) (entry :: acc)
  in
  go (List.map hash_leaf leaves) i []

let verify ~root:expected ~leaf path =
  let h =
    List.fold_left
      (fun h (sib, sib_is_right) -> if sib_is_right then hash_node h sib else hash_node sib h)
      (hash_leaf leaf) path
  in
  Bytes.equal h expected
