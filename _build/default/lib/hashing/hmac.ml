let block_size = 64

let hmac ~key msg =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let pad c =
    Bytes.init block_size (fun i ->
        let k = if i < Bytes.length key then Char.code (Bytes.get key i) else 0 in
        Char.chr (k lxor c))
  in
  let inner = Sha256.init () in
  Sha256.update inner (pad 0x36);
  Sha256.update inner msg;
  let outer = Sha256.init () in
  Sha256.update outer (pad 0x5c);
  Sha256.update outer (Sha256.finalize inner);
  Sha256.finalize outer

let hmac_string ~key msg = hmac ~key:(Bytes.of_string key) (Bytes.of_string msg)
