(** HMAC-SHA256 (RFC 2104). *)

(** [hmac ~key msg] is the 32-byte HMAC-SHA256 tag. *)
val hmac : key:bytes -> bytes -> bytes

val hmac_string : key:string -> string -> bytes
