(** Binary SHA-256 Merkle trees over byte strings.

    Used for the transaction root inside block headers.  (The registration
    authority's certificate tree lives in {!Zebra_anonauth.Ra} and hashes
    with MiMC instead, because it must be verified inside a SNARK.) *)

(** [root leaves] is the Merkle root; leaves are first hashed with a leaf
    domain separator, and odd levels duplicate the last node (Bitcoin
    style).  The root of an empty list is the hash of the empty string. *)
val root : bytes list -> bytes

(** [proof leaves i] is the authentication path for leaf [i] as a list of
    [(sibling_hash, sibling_is_right)] pairs from leaf level upward. *)
val proof : bytes list -> int -> (bytes * bool) list

(** [verify ~root ~leaf proof] checks an authentication path. *)
val verify : root:bytes -> leaf:bytes -> (bytes * bool) list -> bool
