(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for blockchain hashing (transactions, blocks, addresses), HMAC, and
    mapping arbitrary byte strings into the SNARK field. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit

(** [finalize ctx] returns the 32-byte digest; [ctx] must not be reused. *)
val finalize : ctx -> bytes

(** One-shot helpers. *)

val digest : bytes -> bytes

val digest_string : string -> bytes

(** [hex_digest_string s] is the lowercase hex of [digest_string s]. *)
val hex_digest_string : string -> string

val to_hex : bytes -> string
val of_hex : string -> bytes
