lib/hashing/merkle.mli:
