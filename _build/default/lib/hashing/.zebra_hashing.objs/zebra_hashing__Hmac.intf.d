lib/hashing/hmac.mli:
