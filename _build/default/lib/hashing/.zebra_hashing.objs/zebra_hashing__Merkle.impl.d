lib/hashing/merkle.ml: Array Bytes List Sha256
