lib/rng/chacha20.ml: Array Bytes Char Int32 String
