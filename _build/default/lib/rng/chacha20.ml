(* RFC 8439 ChaCha20 block function on int32 state words. *)

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter_round st a b c d =
  let ( + ) = Int32.add and ( ^ ) = Int32.logxor in
  st.(a) <- st.(a) + st.(b);
  st.(d) <- rotl (st.(d) ^ st.(a)) 16;
  st.(c) <- st.(c) + st.(d);
  st.(b) <- rotl (st.(b) ^ st.(c)) 12;
  st.(a) <- st.(a) + st.(b);
  st.(d) <- rotl (st.(d) ^ st.(a)) 8;
  st.(c) <- st.(c) + st.(d);
  st.(b) <- rotl (st.(b) ^ st.(c)) 7

let get32_le b off =
  let g i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor (g 0)
    (Int32.logor
       (Int32.shift_left (g 1) 8)
       (Int32.logor (Int32.shift_left (g 2) 16) (Int32.shift_left (g 3) 24)))

let put32_le b off v =
  let s i = Bytes.set b (off + i) (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff)) in
  s 0;
  s 1;
  s 2;
  s 3

let block ~key ~counter ~nonce =
  if Bytes.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let st = Array.make 16 0l in
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(4 + i) <- get32_le key (4 * i)
  done;
  st.(12) <- counter;
  for i = 0 to 2 do
    st.(13 + i) <- get32_le nonce (4 * i)
  done;
  let work = Array.copy st in
  for _ = 1 to 10 do
    quarter_round work 0 4 8 12;
    quarter_round work 1 5 9 13;
    quarter_round work 2 6 10 14;
    quarter_round work 3 7 11 15;
    quarter_round work 0 5 10 15;
    quarter_round work 1 6 11 12;
    quarter_round work 2 7 8 13;
    quarter_round work 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    put32_le out (4 * i) (Int32.add work.(i) st.(i))
  done;
  out

type t = {
  key : bytes;
  nonce : bytes;
  mutable counter : int32;
  mutable buf : bytes;
  mutable pos : int;
}

let create ~seed =
  let key = Bytes.make 32 '\000' in
  (* Simple seed expansion: xor-fold the seed into the key.  The seed is a
     test/bench label, not secret material. *)
  String.iteri
    (fun i c ->
      let j = i mod 32 in
      Bytes.set key j (Char.chr (Char.code (Bytes.get key j) lxor Char.code c lxor (i land 0xff))))
    seed;
  { key; nonce = Bytes.make 12 '\000'; counter = 0l; buf = Bytes.create 0; pos = 0 }

let copy t = { t with buf = Bytes.copy t.buf }

let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if t.pos >= Bytes.length t.buf then begin
      t.buf <- block ~key:t.key ~counter:t.counter ~nonce:t.nonce;
      t.counter <- Int32.add t.counter 1l;
      t.pos <- 0
    end;
    let avail = Bytes.length t.buf - t.pos in
    let take = min avail (n - !filled) in
    Bytes.blit t.buf t.pos out !filled take;
    t.pos <- t.pos + take;
    filled := !filled + take
  done;
  out
