(** ChaCha20 (RFC 8439) used as a deterministic random byte stream.

    The whole reproduction is driven by seeded ChaCha20 streams so every
    test, example and benchmark is reproducible bit-for-bit. *)

type t

(** [create ~seed] builds a generator keyed by [SHA-like expansion] of the
    seed string (the seed is truncated/zero-padded to the 32-byte key; the
    nonce is fixed).  Distinct seeds give independent streams. *)
val create : seed:string -> t

(** [bytes t n] returns the next [n] bytes of the keystream. *)
val bytes : t -> int -> bytes

(** [copy t] snapshots the stream position (for repeatable sub-experiments). *)
val copy : t -> t

(** Raw block function, exposed for tests against RFC 8439 vectors:
    [block ~key ~counter ~nonce] with 32-byte key and 12-byte nonce
    returns the 64-byte block. *)
val block : key:bytes -> counter:int32 -> nonce:bytes -> bytes
