lib/snark/snark.mli: Cs Fp
