lib/snark/snark.ml: Array Bytes Cs Fft Fp List Zebra_codec
