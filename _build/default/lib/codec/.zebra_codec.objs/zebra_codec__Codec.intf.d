lib/codec/codec.mli:
