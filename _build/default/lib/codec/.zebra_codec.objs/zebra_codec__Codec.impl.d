lib/codec/codec.ml: Array Buffer Bytes Char List String
