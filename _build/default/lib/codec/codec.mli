(** Deterministic binary encoding, shared by proof serialisation, contract
    storage and transaction payloads.

    The format is canonical by construction (fixed-width big-endian integers
    and length-prefixed byte strings), so encoded values can be hashed and
    compared across simulated blockchain nodes. *)

exception Decode_error of string

(** {1 Writer} *)

type writer

val writer : unit -> writer
val to_bytes : writer -> bytes

val u8 : writer -> int -> unit

(** Big-endian, 0 <= v < 2^32. *)
val u32 : writer -> int -> unit

(** Big-endian, 0 <= v < 2^62 (OCaml int). *)
val u64 : writer -> int -> unit

(** Length-prefixed (u32) byte string. *)
val bytes : writer -> bytes -> unit

val string : writer -> string -> unit
val bool : writer -> bool -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit

(** {1 Reader} *)

type reader

val reader : bytes -> reader

(** @raise Decode_error if any input remains. *)
val expect_end : reader -> unit

val read_u8 : reader -> int
val read_u32 : reader -> int
val read_u64 : reader -> int
val read_bytes : reader -> bytes
val read_string : reader -> string
val read_bool : reader -> bool
val read_option : reader -> (reader -> 'a) -> 'a option
val read_list : reader -> (reader -> 'a) -> 'a list
val read_array : reader -> (reader -> 'a) -> 'a array

(** [encode f x] / [decode f b] one-shot helpers; [decode] checks that the
    value consumes the whole buffer. *)
val encode : (writer -> 'a -> unit) -> 'a -> bytes

val decode : (reader -> 'a) -> bytes -> 'a
