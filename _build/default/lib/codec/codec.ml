exception Decode_error of string

type writer = Buffer.t

let writer () = Buffer.create 256
let to_bytes w = Buffer.to_bytes w

let u8 w v =
  if v < 0 || v > 0xff then invalid_arg "Codec.u8";
  Buffer.add_char w (Char.chr v)

let u32 w v =
  if v < 0 || v > 0xffffffff then invalid_arg "Codec.u32";
  for i = 3 downto 0 do
    Buffer.add_char w (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let u64 w v =
  if v < 0 then invalid_arg "Codec.u64";
  for i = 7 downto 0 do
    Buffer.add_char w (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let bytes w b =
  u32 w (Bytes.length b);
  Buffer.add_bytes w b

let string w s =
  u32 w (String.length s);
  Buffer.add_string w s

let bool w b = u8 w (if b then 1 else 0)

let option w f = function
  | None -> u8 w 0
  | Some x ->
    u8 w 1;
    f w x

let list w f xs =
  u32 w (List.length xs);
  List.iter (f w) xs

let array w f xs =
  u32 w (Array.length xs);
  Array.iter (f w) xs

type reader = { buf : bytes; mutable pos : int }

let reader buf = { buf; pos = 0 }

let need r n =
  if r.pos + n > Bytes.length r.buf then raise (Decode_error "unexpected end of input")

let expect_end r =
  if r.pos <> Bytes.length r.buf then raise (Decode_error "trailing bytes")

let read_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let read_fixed r n =
  need r n;
  let v = ref 0 in
  for _ = 1 to n do
    v := (!v lsl 8) lor Char.code (Bytes.get r.buf r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let read_u32 r = read_fixed r 4

let read_u64 r =
  let v = read_fixed r 8 in
  if v < 0 then raise (Decode_error "u64 out of native range");
  v

let read_bytes r =
  let n = read_u32 r in
  need r n;
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

let read_string r = Bytes.to_string (read_bytes r)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Decode_error "bad bool")

let read_option r f =
  match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | _ -> raise (Decode_error "bad option tag")

let read_list r f =
  let n = read_u32 r in
  List.init n (fun _ -> f r)

let read_array r f =
  let n = read_u32 r in
  Array.init n (fun _ -> f r)

let encode f x =
  let w = writer () in
  f w x;
  to_bytes w

let decode f b =
  let r = reader b in
  let x = f r in
  expect_end r;
  x
