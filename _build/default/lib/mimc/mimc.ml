let rounds = 91
let exponent = 7

let round_constants =
  Array.init rounds (fun i ->
      if i = 0 then Fp.zero
      else begin
        let d = Zebra_hashing.Sha256.digest_string (Printf.sprintf "ZebraLancer.MiMC.%d" i) in
        Fp.of_bytes_be d
      end)

let pow7 x =
  let x2 = Fp.sqr x in
  let x4 = Fp.sqr x2 in
  Fp.mul (Fp.mul x4 x2) x

let encrypt ~key x =
  let acc = ref x in
  for i = 0 to rounds - 1 do
    acc := pow7 (Fp.add (Fp.add !acc key) round_constants.(i))
  done;
  Fp.add !acc key

(* x^(1/7) = x^e_inv where e_inv = 7^{-1} mod (r-1). *)
let seventh_root_exp =
  let r_minus_1 = Nat.sub Fp.modulus Nat.one in
  Modular.inverse (Nat.of_int 7) r_minus_1

let decrypt ~key y =
  let acc = ref (Fp.sub y key) in
  for i = rounds - 1 downto 0 do
    acc := Fp.sub (Fp.sub (Fp.pow !acc seventh_root_exp) key) round_constants.(i)
  done;
  !acc

let compress h m = Fp.add (Fp.add (encrypt ~key:h m) m) h

let hash_list ms =
  let len = Fp.of_int (List.length ms) in
  List.fold_left compress (compress Fp.zero len) ms

let hash2 a b = hash_list [ a; b ]

let hash_bytes b = hash_list [ Fp.of_bytes_be (Zebra_hashing.Sha256.digest b) ]
