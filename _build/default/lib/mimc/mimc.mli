(** MiMC block cipher and hash over the SNARK field.

    The paper instantiates its DApp-layer hash with SHA-256 and verifies it
    inside the zk-SNARK circuit; in-circuit SHA-256 is what made attestation
    generation take ~70s.  Following every post-2018 deployment (Zcash
    Sapling, ethsnarks, circomlib), we substitute the algebraic MiMC hash in
    the provable paths: the exponent-7 MiMC-p/p cipher with 91 rounds
    (ceil(log_7 r)), with round constants derived from SHA-256, composed
    into a hash via the Miyaguchi-Preneel construction.

    The circuit gadget in {!Zebra_r1cs.Gadgets.mimc_hash} mirrors this exact
    computation constraint-for-constraint; tests cross-check the two. *)

val rounds : int

val exponent : int

(** Round constants: [c_0 = 0], the rest derived from
    SHA-256("ZebraLancer.MiMC." ^ string_of_int i). *)
val round_constants : Fp.t array

(** [encrypt ~key x] is the MiMC-p/p permutation
    [x_{i+1} = (x_i + key + c_i)^7], 91 rounds, followed by a final key
    addition. *)
val encrypt : key:Fp.t -> Fp.t -> Fp.t

(** [decrypt ~key y] inverts {!encrypt} (sanity/permutation tests). *)
val decrypt : key:Fp.t -> Fp.t -> Fp.t

(** Miyaguchi-Preneel compression: [compress h m = encrypt ~key:h m + m + h]. *)
val compress : Fp.t -> Fp.t -> Fp.t

(** [hash_list ms]: Merkle-Damgard chain of {!compress} from IV 0, with the
    list length absorbed first (length extension defence). *)
val hash_list : Fp.t list -> Fp.t

(** [hash2 a b = hash_list [a; b]] — the Merkle tree compression. *)
val hash2 : Fp.t -> Fp.t -> Fp.t

(** [hash_bytes b] maps arbitrary bytes into the field via SHA-256 before
    absorbing (off-circuit convenience for prefixes/messages). *)
val hash_bytes : bytes -> Fp.t
