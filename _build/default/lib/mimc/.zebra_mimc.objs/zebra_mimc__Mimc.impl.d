lib/mimc/mimc.ml: Array Fp List Modular Nat Printf Zebra_hashing
