lib/mimc/mimc.mli: Fp
