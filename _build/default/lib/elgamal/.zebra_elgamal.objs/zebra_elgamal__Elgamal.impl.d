lib/elgamal/elgamal.ml: Array Fp Nat Prime Zebra_codec
