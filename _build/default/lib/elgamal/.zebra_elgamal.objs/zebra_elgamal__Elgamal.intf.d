lib/elgamal/elgamal.mli: Fp
