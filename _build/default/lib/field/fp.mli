(** The SNARK scalar field: integers modulo the BN254 group order

    r = 21888242871839275222246405745257275088548364400416034343698204186575808495617

    chosen for its high 2-adicity (r - 1 is divisible by 2^28), which enables
    radix-2 FFTs over evaluation domains of up to 2^28 points.  Elements are
    kept in Montgomery form internally. *)

type t

val modulus : Nat.t

val zero : t
val one : t
val two : t

val of_int : int -> t

(** [of_nat n] reduces [n] modulo r. *)
val of_nat : Nat.t -> t

val to_nat : t -> Nat.t

(** [of_bytes_be b] reduces the big-endian bytes modulo r (used to map
    SHA-256 digests and addresses into the field). *)
val of_bytes_be : bytes -> t

(** Canonical 32-byte big-endian encoding. *)
val to_bytes_be : t -> bytes

val of_bytes_be_exn : bytes -> t
(** [of_bytes_be_exn] requires a canonical 32-byte encoding strictly below r.
    @raise Invalid_argument otherwise.  Use for deserialising proofs. *)

val of_decimal_string : string -> t
val to_decimal_string : t -> string

val equal : t -> t -> bool
val is_zero : t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val sqr : t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

val div : t -> t -> t

val pow : t -> Nat.t -> t
val pow_int : t -> int -> t

(** Multiplicative generator of the full group (5 for this field). *)
val generator : t

(** r - 1 = 2^28 * odd. *)
val two_adicity : int

(** [root_of_unity k] is a primitive 2^k-th root of unity, 0 <= k <= 28. *)
val root_of_unity : int -> t

(** [random random_bytes] samples uniformly. *)
val random : (int -> bytes) -> t

(** [batch_inv a] inverts every element of [a] with one field inversion
    (Montgomery's trick).  @raise Division_by_zero if any element is zero. *)
val batch_inv : t array -> t array

val pp : Format.formatter -> t -> unit
