(** Dense univariate polynomials over {!Fp}, little-endian coefficients.

    Only what the SNARK pipeline needs: arithmetic, evaluation, and
    interpolation (naive Lagrange for tests, FFT-based elsewhere). *)

type t

val zero : t
val one : t

(** [of_coeffs a] takes ownership of [a] (trailing zeros are trimmed). *)
val of_coeffs : Fp.t array -> t

val coeffs : t -> Fp.t array

(** Degree of the zero polynomial is -1. *)
val degree : t -> int

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val scale : Fp.t -> t -> t

(** Schoolbook product (used for small polynomials and as the FFT oracle). *)
val mul : t -> t -> t

(** [eval p x] by Horner's rule. *)
val eval : t -> Fp.t -> Fp.t

(** [divmod p d]: euclidean division.  @raise Division_by_zero if [d = 0]. *)
val divmod : t -> t -> t * t

(** [interpolate pts] is the unique polynomial of degree < n through the
    n points (naive O(n^2); test/reference use).
    @raise Invalid_argument on duplicate abscissae. *)
val interpolate : (Fp.t * Fp.t) list -> t

val pp : Format.formatter -> t -> unit
