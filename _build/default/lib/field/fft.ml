type domain = {
  log_size : int;
  size : int;
  omega : Fp.t;
  omega_inv : Fp.t;
  size_inv : Fp.t;
}

let domain n =
  if n <= 0 then invalid_arg "Fft.domain: need positive size";
  let rec log2_ceil k acc = if 1 lsl acc >= k then acc else log2_ceil k (acc + 1) in
  let log_size = log2_ceil n 0 in
  if log_size > Fp.two_adicity then invalid_arg "Fft.domain: exceeds field 2-adicity";
  let size = 1 lsl log_size in
  let omega = Fp.root_of_unity log_size in
  { log_size; size; omega; omega_inv = Fp.inv omega; size_inv = Fp.inv (Fp.of_int size) }

let size d = d.size
let omega d = d.omega
let element d i = Fp.pow_int d.omega i

let bit_reverse_permute a =
  let n = Array.length a in
  let log_n =
    let rec go k acc = if 1 lsl acc = k then acc else go k (acc + 1) in
    go n 0
  in
  for i = 0 to n - 1 do
    let j =
      let r = ref 0 in
      for b = 0 to log_n - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
      done;
      !r
    in
    if j > i then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

let ntt_in_place a root =
  let n = Array.length a in
  bit_reverse_permute a;
  let len = ref 2 in
  while !len <= n do
    let w_len = Fp.pow_int root (n / !len) in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let w = ref Fp.one in
      for j = 0 to half - 1 do
        let u = a.(!i + j) in
        let v = Fp.mul a.(!i + j + half) !w in
        a.(!i + j) <- Fp.add u v;
        a.(!i + j + half) <- Fp.sub u v;
        w := Fp.mul !w w_len
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let check_len d a =
  if Array.length a <> d.size then invalid_arg "Fft: array length must equal domain size"

let fft d a =
  check_len d a;
  ntt_in_place a d.omega

let ifft d a =
  check_len d a;
  ntt_in_place a d.omega_inv;
  for i = 0 to d.size - 1 do
    a.(i) <- Fp.mul a.(i) d.size_inv
  done

let coset_shift = Fp.generator

let coset_fft d a =
  check_len d a;
  let g = ref Fp.one in
  for i = 0 to d.size - 1 do
    a.(i) <- Fp.mul a.(i) !g;
    g := Fp.mul !g coset_shift
  done;
  fft d a

let coset_ifft d a =
  ifft d a;
  let ginv = Fp.inv coset_shift in
  let g = ref Fp.one in
  for i = 0 to d.size - 1 do
    a.(i) <- Fp.mul a.(i) !g;
    g := Fp.mul !g ginv
  done

let vanishing_on_coset d = Fp.sub (Fp.pow_int coset_shift d.size) Fp.one
let vanishing_at d x = Fp.sub (Fp.pow_int x d.size) Fp.one

(* L_i(x) = Z(x) * omega^i / (size * (x - omega^i)) for x off-domain. *)
let lagrange_at d x =
  let n = d.size in
  let z = vanishing_at d x in
  if Fp.is_zero z then raise Division_by_zero;
  let denoms = Array.make n Fp.one in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    denoms.(i) <- Fp.mul (Fp.of_int n) (Fp.sub x !wi);
    wi := Fp.mul !wi d.omega
  done;
  let inv_denoms = Fp.batch_inv denoms in
  let out = Array.make n Fp.zero in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    out.(i) <- Fp.mul (Fp.mul z !wi) inv_denoms.(i);
    wi := Fp.mul !wi d.omega
  done;
  out
