lib/field/fft.mli: Fp
