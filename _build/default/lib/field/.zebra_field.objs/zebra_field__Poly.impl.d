lib/field/poly.ml: Array Format Fp
