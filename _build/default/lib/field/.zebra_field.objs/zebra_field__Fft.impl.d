lib/field/fft.ml: Array Fp
