lib/field/fp.ml: Array Bytes Format Modular Nat Prime
