lib/field/poly.mli: Format Fp
