lib/field/fp.mli: Format Nat
