(** RSASSA-PKCS1-v1_5 signatures with SHA-256 (RFC 8017 section 8.2). *)

(** [sign priv msg] returns the signature, [key_bytes] long. *)
val sign : Rsa.private_key -> bytes -> bytes

(** [verify pub ~msg ~signature] — false on any malformed input (never
    raises). *)
val verify : Rsa.public_key -> msg:bytes -> signature:bytes -> bool
