lib/rsa/pkcs1.mli: Rsa
