lib/rsa/rsa.mli: Nat
