lib/rsa/oaep.ml: Buffer Bytes Char Nat Rsa Zebra_hashing
