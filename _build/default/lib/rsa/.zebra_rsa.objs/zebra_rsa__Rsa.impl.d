lib/rsa/rsa.ml: Modular Nat Prime Zebra_codec
