lib/rsa/pkcs1.ml: Bytes Nat Rsa Zebra_hashing
