lib/rsa/oaep.mli: Rsa
