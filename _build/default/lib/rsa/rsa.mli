(** RSA key generation and raw operations, on top of {!Zebra_numeric}.

    The paper instantiates its DApp-layer encryption as RSA-OAEP-2048 and
    its DApp-layer signature as an RSA signature; this library provides
    both (see {!Oaep} and {!Pkcs1}).  In this reproduction RSA also signs
    every blockchain transaction. *)

type public_key = { n : Nat.t; e : Nat.t }

type private_key = {
  pub : public_key;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  dp : Nat.t; (* d mod p-1 *)
  dq : Nat.t; (* d mod q-1 *)
  qinv : Nat.t; (* q^-1 mod p *)
}

(** [generate ~bits ~random_bytes] makes an RSA key with modulus of exactly
    [bits] bits and public exponent 65537.
    @raise Invalid_argument if [bits < 256]. *)
val generate : bits:int -> random_bytes:(int -> bytes) -> private_key

(** Modulus size in bytes (the [k] of PKCS#1). *)
val key_bytes : public_key -> int

(** [raw_public pub m]: [m^e mod n]; requires [m < n]. *)
val raw_public : public_key -> Nat.t -> Nat.t

(** [raw_private priv c]: [c^d mod n] via the CRT (about 4x faster than the
    direct exponentiation). *)
val raw_private : private_key -> Nat.t -> Nat.t

val public_key_to_bytes : public_key -> bytes
val public_key_of_bytes : bytes -> public_key

val equal_public_key : public_key -> public_key -> bool
