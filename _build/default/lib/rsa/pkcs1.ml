module Sha256 = Zebra_hashing.Sha256

(* DER DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 notes). *)
let sha256_prefix =
  Bytes.of_string
    "\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20"

let emsa_encode ~k msg =
  let h = Sha256.digest msg in
  let t_len = Bytes.length sha256_prefix + 32 in
  if k < t_len + 11 then invalid_arg "Pkcs1: modulus too small";
  let em = Bytes.make k '\xff' in
  Bytes.set em 0 '\x00';
  Bytes.set em 1 '\x01';
  Bytes.set em (k - t_len - 1) '\x00';
  Bytes.blit sha256_prefix 0 em (k - t_len) (Bytes.length sha256_prefix);
  Bytes.blit h 0 em (k - 32) 32;
  em

let sign priv msg =
  let k = Rsa.key_bytes priv.Rsa.pub in
  let em = emsa_encode ~k msg in
  let s = Rsa.raw_private priv (Nat.of_bytes_be em) in
  Nat.to_bytes_be ~len:k s

let verify pub ~msg ~signature =
  let k = Rsa.key_bytes pub in
  if Bytes.length signature <> k then false
  else begin
    match
      let s = Nat.of_bytes_be signature in
      if Nat.compare s pub.Rsa.n >= 0 then None
      else Some (Nat.to_bytes_be ~len:k (Rsa.raw_public pub s))
    with
    | None -> false
    | Some em -> Bytes.equal em (emsa_encode ~k msg)
    | exception Invalid_argument _ -> false
  end
