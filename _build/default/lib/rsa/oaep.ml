module Sha256 = Zebra_hashing.Sha256

let h_len = 32

let mgf1 ~seed len =
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    let ctx = Sha256.init () in
    Sha256.update ctx seed;
    let c = Bytes.create 4 in
    for i = 0 to 3 do
      Bytes.set c i (Char.chr ((!counter lsr (8 * (3 - i))) land 0xff))
    done;
    Sha256.update ctx c;
    Buffer.add_bytes out (Sha256.finalize ctx);
    incr counter
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let l_hash = Sha256.digest_string "" (* empty label *)

let max_message_len pub = Rsa.key_bytes pub - (2 * h_len) - 2

let encrypt ~random_bytes pub msg =
  let k = Rsa.key_bytes pub in
  let m_len = Bytes.length msg in
  if m_len > max_message_len pub then invalid_arg "Oaep.encrypt: message too long";
  let db = Bytes.make (k - h_len - 1) '\000' in
  Bytes.blit l_hash 0 db 0 h_len;
  Bytes.set db (k - h_len - 2 - m_len) '\x01';
  Bytes.blit msg 0 db (k - h_len - 1 - m_len) m_len;
  let seed = random_bytes h_len in
  xor_into db (mgf1 ~seed (Bytes.length db));
  let seed_masked = Bytes.copy seed in
  xor_into seed_masked (mgf1 ~seed:db h_len);
  let em = Bytes.make k '\000' in
  Bytes.blit seed_masked 0 em 1 h_len;
  Bytes.blit db 0 em (1 + h_len) (Bytes.length db);
  let c = Rsa.raw_public pub (Nat.of_bytes_be em) in
  Nat.to_bytes_be ~len:k c

let decrypt priv ct =
  let k = Rsa.key_bytes priv.Rsa.pub in
  if Bytes.length ct <> k then None
  else begin
    match
      let c = Nat.of_bytes_be ct in
      if Nat.compare c priv.Rsa.pub.Rsa.n >= 0 then None
      else Some (Nat.to_bytes_be ~len:k (Rsa.raw_private priv c))
    with
    | None -> None
    | Some em ->
      if Bytes.get em 0 <> '\000' then None
      else begin
        let seed_masked = Bytes.sub em 1 h_len in
        let db = Bytes.sub em (1 + h_len) (k - h_len - 1) in
        let seed = Bytes.copy seed_masked in
        xor_into seed (mgf1 ~seed:db h_len);
        xor_into db (mgf1 ~seed (Bytes.length db));
        if not (Bytes.equal (Bytes.sub db 0 h_len) l_hash) then None
        else begin
          (* find 0x01 separator after the label hash *)
          let rec find i =
            if i >= Bytes.length db then None
            else
              match Bytes.get db i with
              | '\000' -> find (i + 1)
              | '\x01' -> Some (i + 1)
              | _ -> None
          in
          match find h_len with
          | None -> None
          | Some start -> Some (Bytes.sub db start (Bytes.length db - start))
        end
      end
  end
