(** RSAES-OAEP with SHA-256 and MGF1 (RFC 8017 section 7.1) — the paper's
    "RSA-OAEP-2048" answer encryption.

    Note the provable (in-circuit) encryption path of this reproduction uses
    {!Zebra_elgamal.Elgamal} instead (see DESIGN.md substitution 4); OAEP is
    provided and benchmarked as the paper's original DApp-layer choice. *)

(** Maximum plaintext length for a given key: [k - 2*32 - 2]. *)
val max_message_len : Rsa.public_key -> int

(** [encrypt ~random_bytes pub msg].
    @raise Invalid_argument if [msg] exceeds {!max_message_len}. *)
val encrypt : random_bytes:(int -> bytes) -> Rsa.public_key -> bytes -> bytes

(** [decrypt priv ct] returns [None] on any padding or length failure
    (constant shape, no padding-oracle distinction). *)
val decrypt : Rsa.private_key -> bytes -> bytes option

(** MGF1-SHA256, exposed for test vectors. *)
val mgf1 : seed:bytes -> int -> bytes
