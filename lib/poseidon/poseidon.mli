(** The Poseidon permutation and 2-to-1 compression over {!Fp} — the
    {e default} in-circuit hash of the deployed circuits.

    The paper remarks that "a lot of dedicated optimizations of zk-SNARK
    exist which can directly benefit our protocol"; the single biggest one
    for its circuits is the in-circuit hash.  This module provides the
    modern choice — Poseidon with t = 3, x^5 S-box, 8 full and 57 partial
    rounds on the BN254 scalar field.  Since the Poseidon-first migration
    it is what CPLA attestation, RA certification and reputation-link
    circuits compile by default; {!Zebra_mimc.Mimc} remains selectable as
    the ablation arm via [Zebra_hashcomp.Hash_composition].

    Constraint budget (exact, enforced by tests): one permutation — and
    hence one {!hash2_gadget} call on non-constant inputs — costs
    [3*8 + 57 = 81] x^5 S-boxes at 3 constraints each, i.e. {b 243}
    constraints, versus MiMC's 728 for the same 2-to-1 compression
    (2 x 91 rounds x 4).  A depth-[d] Merkle path costs [245*d]
    (243 + 1 select + 1 path-bit booleanity per level): 1960 at depth 8,
    3920 at depth 16 — 2.98x below the MiMC arm's 11680.

    Security rationale for the parameters: width t = 3 gives rate 2 +
    capacity 1, i.e. 2-to-1 compression with ~127-bit collision resistance
    on the ~254-bit field; alpha = 5 is the smallest S-box exponent coprime
    to p - 1 for this field; R_F = 8 full rounds provide the statistical
    margin and R_P = 57 partial rounds the algebraic margin recommended by
    the Poseidon authors' rule for (t = 3, alpha = 5, 128-bit security),
    including their +25% safety factor on interpolation/Groebner attacks.

    Parameter generation note: round constants are derived from SHA-256 in
    counter mode and the MDS matrix is the Cauchy matrix over
    x = (0,1,2), y = (3,4,5) — deterministic and MDS, though not the
    Grain-LFSR constants of the reference implementation (we have no test
    vectors to match; cross-checking is against our own circuit gadget). *)

(** State width (rate 2 + capacity 1). *)
val width : int

val full_rounds : int
val partial_rounds : int

val round_constants : Fp.t array array
(** [round_constants.(round).(lane)]. *)

val mds : Fp.t array array

(** [permute state] — in-place Poseidon permutation; length must be
    {!width}.  @raise Invalid_argument otherwise. *)
val permute : Fp.t array -> unit

(** [hash2 a b] — 2-to-1 compression: permute [0; a; b], read lane 0. *)
val hash2 : Fp.t -> Fp.t -> Fp.t

(** [hash_list ms] — Merkle-Damgard over {!hash2} with the length absorbed
    first (mirrors {!Zebra_mimc.Mimc.hash_list}'s domain separation). *)
val hash_list : Fp.t list -> Fp.t

(** {1 Circuit gadgets} — mirror the native computation exactly.

    Wire discipline: gadgets take and return {!Zebra_r1cs.Gadgets.expr}
    linear combinations; only S-box multiplications allocate wires.  Both
    gadgets constant-fold — a call whose inputs are all circuit constants
    emits zero constraints (this is what makes the length-absorption step
    of {!hash_list_gadget} free). *)

(** [hash2_gadget cs a b]: 243 constraints on non-constant inputs
    (81 S-boxes x 3); 0 when both inputs are constants. *)
val hash2_gadget :
  Zebra_r1cs.Cs.t -> Zebra_r1cs.Gadgets.expr -> Zebra_r1cs.Gadgets.expr -> Zebra_r1cs.Gadgets.expr

(** [hash_list_gadget cs ms] = {!hash_list} over expressions: the
    length-absorption step folds to a constant, then one {!hash2_gadget}
    per element — [243 * k] constraints for [k] non-constant inputs
    (cf. [364 * k] for {!Zebra_r1cs.Gadgets.mimc_hash}). *)
val hash_list_gadget :
  Zebra_r1cs.Cs.t -> Zebra_r1cs.Gadgets.expr list -> Zebra_r1cs.Gadgets.expr

(** [merkle_root_gadget cs ~leaf ~path_bits ~siblings] —
    {!Zebra_r1cs.Gadgets.merkle_root} with Poseidon instead of MiMC:
    per level 1 select + 243 = 244 constraints (the caller's
    [alloc_bit] adds the path-bit booleanity).  [path_bits.(i) = 1] means
    the current node is the right child at level [i]; bits must be boolean
    wires; arrays must have equal length (the tree depth).
    @raise Invalid_argument on a length mismatch. *)
val merkle_root_gadget :
  Zebra_r1cs.Cs.t ->
  leaf:Zebra_r1cs.Gadgets.expr ->
  path_bits:Zebra_r1cs.Cs.var array ->
  siblings:Zebra_r1cs.Cs.var array ->
  Zebra_r1cs.Gadgets.expr
