module Cs = Zebra_r1cs.Cs
module G = Zebra_r1cs.Gadgets

let width = 3
let full_rounds = 8
let partial_rounds = 57
let rounds = full_rounds + partial_rounds

let round_constants =
  Array.init rounds (fun r ->
      Array.init width (fun lane ->
          let d =
            Zebra_hashing.Sha256.digest_string (Printf.sprintf "ZebraLancer.Poseidon.%d.%d" r lane)
          in
          Fp.of_bytes_be d))

(* Cauchy matrix m[i][j] = 1 / (x_i + y_j), x = 0..2, y = 3..5: all sums
   nonzero and distinct, hence invertible and MDS.  All width^2 cells
   are inverted in one shot (Montgomery's trick, [Fp.batch_inv]) — same
   values, one field inversion instead of nine. *)
let mds =
  let denoms =
    Array.init (width * width) (fun k -> Fp.of_int ((k / width) + (k mod width) + width))
  in
  let invs = Fp.batch_inv denoms in
  Array.init width (fun i -> Array.init width (fun j -> invs.((i * width) + j)))

let pow5 x =
  let x2 = Fp.sqr x in
  let x4 = Fp.sqr x2 in
  Fp.mul x4 x

let mix state =
  let out = Array.make width Fp.zero in
  for i = 0 to width - 1 do
    let acc = ref Fp.zero in
    for j = 0 to width - 1 do
      acc := Fp.add !acc (Fp.mul mds.(i).(j) state.(j))
    done;
    out.(i) <- !acc
  done;
  Array.blit out 0 state 0 width

let permute state =
  if Array.length state <> width then invalid_arg "Poseidon.permute: bad state width";
  let half_full = full_rounds / 2 in
  for r = 0 to rounds - 1 do
    for i = 0 to width - 1 do
      state.(i) <- Fp.add state.(i) round_constants.(r).(i)
    done;
    let full = r < half_full || r >= rounds - half_full in
    if full then
      for i = 0 to width - 1 do
        state.(i) <- pow5 state.(i)
      done
    else state.(0) <- pow5 state.(0);
    mix state
  done

let hash2 a b =
  let state = [| Fp.zero; a; b |] in
  permute state;
  state.(0)

let hash_list ms =
  let len = Fp.of_int (List.length ms) in
  List.fold_left (fun h m -> hash2 h m) (hash2 Fp.zero len) ms

(* --- gadget --- *)

let pow5_gadget cs x =
  let x2 = G.square cs x in
  let x4 = G.square cs (G.v x2) in
  G.v (G.mul cs (G.v x4) x)

(* Canonicalise after every mix: without it the un-S-boxed lanes of the
   partial rounds would accumulate 3^57 terms. *)
let mix_exprs state =
  Array.init width (fun i ->
      let acc = ref [] in
      for j = 0 to width - 1 do
        acc := G.( +: ) !acc (G.scale mds.(i).(j) state.(j))
      done;
      G.simplify !acc)

let permute_gadget cs state =
  let state = ref state in
  let half_full = full_rounds / 2 in
  for r = 0 to rounds - 1 do
    let st = Array.mapi (fun i e -> G.( +: ) e (G.c round_constants.(r).(i))) !state in
    let full = r < half_full || r >= rounds - half_full in
    let st =
      if full then Array.map (pow5_gadget cs) st
      else Array.mapi (fun i e -> if i = 0 then pow5_gadget cs e else e) st
    in
    state := mix_exprs st
  done;
  !state

(* Constant folding mirrors Gadgets.mimc_hash: a compression whose inputs
   are both circuit constants (the IV/length-absorption step of
   hash_list_gadget) is computed natively and costs no constraints. *)
let hash2_gadget cs a b =
  match (G.as_const cs a, G.as_const cs b) with
  | Some ka, Some kb -> G.c (hash2 ka kb)
  | _ ->
    let out = permute_gadget cs [| G.c Fp.zero; a; b |] in
    out.(0)

let hash_list_gadget cs ms =
  let len = G.ci (List.length ms) in
  List.fold_left (fun h m -> hash2_gadget cs h m) (hash2_gadget cs (G.c Fp.zero) len) ms

let merkle_root_gadget cs ~leaf ~path_bits ~siblings =
  let depth = Array.length path_bits in
  if Array.length siblings <> depth then
    invalid_arg "Poseidon.merkle_root_gadget: length mismatch";
  let cur = ref leaf in
  for i = 0 to depth - 1 do
    let bit = path_bits.(i) and sib = G.v siblings.(i) in
    let left = G.v (G.select cs ~cond:(G.v bit) sib !cur) in
    let right = G.( -: ) (G.( +: ) sib !cur) left in
    cur := hash2_gadget cs left right
  done;
  !cur
