type t = { bytes : int -> bytes }

module type S = sig
  val bytes : int -> bytes
end

let of_fn f = { bytes = f }
let of_module (module M : S) = { bytes = M.bytes }
let of_chacha rng = { bytes = Chacha20.bytes rng }
let of_seed seed = of_chacha (Chacha20.create ~seed)
let bytes t n = t.bytes n
let fn t = t.bytes
