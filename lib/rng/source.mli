(** A randomness source: the one-method interface ([bytes : int -> bytes])
    the whole stack draws from.

    Historically every API threaded a bare [~random_bytes:(int -> bytes)]
    closure; [Source.t] names that contract so call sites pass one value
    ({!of_seed}, {!of_chacha}) instead of hand-building closures, and so
    alternative backends (OS entropy, test doubles) plug in via {!of_fn} /
    {!of_module}.  The closure-taking entry points remain as deprecated
    aliases for one release — see [Snark.setup]/[Cpla.auth]/[Protocol]. *)

type t

(** The classic interface, for first-class-module backends. *)
module type S = sig
  val bytes : int -> bytes
end

val of_fn : (int -> bytes) -> t
val of_module : (module S) -> t

(** A source drawing from a (stateful, shared) ChaCha20 stream. *)
val of_chacha : Chacha20.t -> t

(** [of_seed s] — a fresh deterministic ChaCha20 stream keyed by [s]. *)
val of_seed : string -> t

val bytes : t -> int -> bytes

(** [fn t] is [bytes t] partially applied — the bridge to the legacy
    [~random_bytes] entry points. *)
val fn : t -> int -> bytes
