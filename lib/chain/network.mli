(** The simulated blockchain network: several fully-replicating nodes, a
    shared mempool, and a discrete block clock.

    This provides exactly the ideal-public-ledger abstraction of the paper's
    Section III: (1) a valid transaction submitted to the network is
    included in the next mined block (liveness under synchrony); (2) every
    live node executes every block deterministically and the simulator
    asserts their state roots agree (correct computation); (3) anyone can
    read all state (transparency); and (4) a network adversary may reorder
    the transactions of a pending block ({!set_adversary}) but cannot forge
    signatures.

    {b Fault injection} relaxes (1): a mempool fault pipeline
    ({!set_mempool_fault}) can drop, delay, duplicate or reorder pending
    transactions, and replicas can be crashed for a block range and
    re-synced ({!crash_node}, {!restart_node}).  [Zebra_faults] builds
    deterministic, seed-keyed pipelines over these hooks. *)

type t

exception Consensus_failure of string

(** A mempool fault pipeline, applied to the candidate transactions of each
    block being mined: returns the transactions to include now plus
    [(release_height, tx)] pairs to hold back.  Held-back transactions
    rejoin the candidates of the first block at or after their release
    height (and run through the pipeline again). *)
type mempool_fault = height:int -> Tx.t list -> Tx.t list * (int * Tx.t) list

(** [create ?difficulty ~num_nodes ~genesis ()] — all nodes start from the
    same funded genesis state.  [difficulty] (default 0) makes miners grind
    a proof-of-work seal of that many leading zero bits per block. *)
val create : ?difficulty:int -> num_nodes:int -> genesis:(Address.t * int) list -> unit -> t

val difficulty : t -> int

val num_nodes : t -> int

(** Current chain height (0 = genesis, before any block). *)
val height : t -> int

(** Why a submission was refused (mirrors the [Protocol.error] style). *)
type submit_error = Invalid_signature

val submit_error_to_string : submit_error -> string

(** [submit_r t tx] broadcasts to the mempool.  Invalidly-signed
    transactions are rejected immediately (never enter the mempool).

    The mempool is {e fee-ordered} at seal time: each block takes the
    pending transactions highest-[Tx.fee] first (stable on arrival order,
    with every sender's transactions kept in nonce order so a sender can
    never wedge itself).  Transactions released from a fault-pipeline
    delay are exempt — they go ahead of the fee-ordered fresh mempool. *)
val submit_r : t -> Tx.t -> (unit, submit_error) result

(** Raising wrapper around {!submit_r}, kept for source compatibility.
    New code should prefer {!submit_r} (typed errors compose with the
    [Protocol] retry drivers).
    @raise Invalid_argument on an invalidly-signed transaction. *)
val submit : t -> Tx.t -> unit

val pending : t -> int

(** Transactions currently held back by the fault pipeline. *)
val delayed : t -> int

(** [set_adversary t f] lets [f] reorder the pending transactions of each
    block before execution.  The adversary may also duplicate or omit
    transactions, but gains nothing by either: a duplicate is rejected by
    nonce replay when it executes (the first execution's receipt is
    canonical), and an omitted transaction stays pending for a later block
    — the adversary can delay but not censor.  Invalidly-signed injections
    are filtered by the miner.  [None] restores first-come-first-served
    order. *)
val set_adversary : t -> (Tx.t list -> Tx.t list) option -> unit

(** [set_mempool_fault t f] installs (or, with [None], removes) the fault
    pipeline run on every block's fresh mempool transactions before the
    adversary and the miner see them.  Dropped transactions are gone — the
    network lost the broadcast; clients must resubmit (see [Protocol]'s
    retry drivers).  Postponed transactions rejoin at their release height
    {e ahead} of the fresh mempool and are exempt from further fault
    decisions, so a delay fault holds a transaction back exactly its k
    blocks (bounded delay, never censorship). *)
val set_mempool_fault : t -> mempool_fault option -> unit

(** [set_block_hook t f] — [f ~height] fires at the start of mining block
    [height], before execution, so a fault controller can apply scheduled
    node crashes/restarts effective that height.  The hook must not mine. *)
val set_block_hook : t -> (height:int -> unit) option -> unit

(** [crash_node t ~node] takes a replica down: it stops executing blocks
    and its state goes stale until {!restart_node}.  Idempotent.
    @raise Invalid_argument if [node] is the last live replica. *)
val crash_node : t -> node:int -> unit

(** [restart_node t ~node] brings a crashed replica back: it re-syncs by
    replaying every block mined while it was down and must land on the tip
    header's state root.  Idempotent on live nodes.
    @raise Consensus_failure if the re-synced root diverges. *)
val restart_node : t -> node:int -> unit

val node_up : t -> int -> bool

(** {1 Partitions, forks and reorgs}

    A network partition splits the replicas into a majority side (which
    keeps the mempool and mines the candidate branch) and a minority side
    (which mines empty blocks on its own branch at the same rate).  At
    heal time the {e fork choice} picks the longer branch; equal lengths
    break the tie toward the lexicographically smaller tip hash.  When the
    minority branch wins, the orphaned majority transactions rejoin the
    front of the mempool and every replica, receipt and log is rebuilt by
    a deterministic replay of the adopted chain. *)

(** [start_partition t ~minority] cuts the given replica ids off from the
    mempool and the majority branch, starting with the next mined block.
    @raise Invalid_argument if a partition is already active, [minority]
    is empty or covers all nodes, contains node 0 (the canonical read
    replica stays on the majority side), or names an unknown node. *)
val start_partition : t -> minority:int list -> unit

val partition_active : t -> bool

type heal_report = {
  adopted_fork : bool;  (** the minority branch won the fork choice *)
  reorged_blocks : int;  (** majority blocks orphaned by the adoption *)
  requeued_txs : int;  (** orphaned transactions returned to the mempool *)
}

(** [heal_partition t] reconnects the sides, runs the fork choice and
    replays the losing side onto the winning branch.  The chain height
    never decreases: both branches grew one block per {!mine_ext} tick.
    @raise Invalid_argument if no partition is active.
    @raise Consensus_failure if the reorg replay diverges. *)
val heal_partition : t -> heal_report

(** [fork_tip t ~permute] lets a byzantine miner propose a conflicting
    sibling of the current tip: same parent and height, transactions
    permuted by [permute].  The sibling is adopted — a one-block reorg,
    with receipts and replicas rebuilt — exactly when the fork choice
    prefers its hash.  Returns [None] when there is nothing to fork (empty
    chain, active partition, or an identity permutation), otherwise
    [Some adopted]. *)
val fork_tip : t -> permute:(Tx.t list -> Tx.t list) -> bool option

(** State root of node [i] (stale while the node is down) — lets tests
    assert per-replica agreement. *)
val node_state_root : t -> int -> bytes

(** Per-transaction outcome of sealing a block (candidate order):
    [Applied] ran in the parallel schedule, [Conflict_retry] escaped its
    declared footprint and was re-executed in the deterministic serial
    fallback (same receipt it would always have had — the classification
    is diagnostic), [Rejected] never executed. *)
type exec_result =
  | Applied of State.receipt
  | Conflict_retry of State.receipt
  | Rejected of string

(** [mine_ext t] seals the fee-ordered mempool into the next block,
    executes it on every live node via the sharded parallel executor
    ({!Exec}), checks replica agreement and returns the typed
    per-candidate outcomes (receipts from the first live node).
    @raise Consensus_failure if replicas diverge. *)
val mine_ext : t -> exec_result list

(** [mine t] is {!mine_ext} returning only the executed receipts, kept for
    source compatibility.  New code should prefer {!mine_ext}.
    @raise Consensus_failure if replicas diverge. *)
val mine : t -> State.receipt list

(** [mine_until t ~height] mines (possibly empty) blocks up to [height]. *)
val mine_until : t -> height:int -> unit

(** {1 Read-only views (first live node)} *)

val balance : t -> Address.t -> int
val nonce : t -> Address.t -> int
val contract_storage : t -> Address.t -> bytes option
val is_contract : t -> Address.t -> bool

(** Receipt by transaction hash, once mined.  Per hash, the first
    execution's receipt wins: a faulty duplicate's nonce-replay failure
    does not shadow the canonical outcome. *)
val receipt : t -> bytes -> State.receipt option

val blocks : t -> Block.t list

(** The genesis allocation the network was created with — lets a replayer
    (e.g. the footprint lint) rebuild the pre-state of any mined
    transaction with {!State.create}. *)
val genesis : t -> (Address.t * int) list

(** Sum of balances across all accounts (conservation invariant). *)
val total_supply : t -> int

(** [replay t] rebuilds the ledger from genesis by re-executing every block
    on a fresh state and returns its root — a late-joining node's sync
    path.  Determinism means it must equal the live nodes' root. *)
val replay : t -> bytes

(** Current state root of the first live node. *)
val state_root : t -> bytes

(** All logs emitted so far, oldest first (test/diagnostic helper). *)
val all_logs : t -> string list
