module Sha256 = Zebra_hashing.Sha256
module Codec = Zebra_codec.Codec
module Obs = Zebra_obs.Obs

let m_reverts = Obs.Counter.make "chain.state.reverts"
let m_escapes = Obs.Counter.make "chain.state.escapes"

type account = { balance : int; nonce : int }

type contract_info = { behavior : string; storage : bytes }

(* The ledger is sharded by address so the parallel block executor can hand
   disjoint shard sets to different domains: a transaction confined to its
   shards never touches a hashtable another domain is using.  32 shards is
   plenty for pools of <= 16 domains and keeps the conflict mask in one
   OCaml int. *)
let num_shards = 32

type shard = {
  accounts : (string, account) Hashtbl.t; (* key: address hex *)
  contracts : (string, contract_info) Hashtbl.t;
}

type t = { shards : shard array }

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> 0

(* Addresses are hashes, so their leading byte is uniform. *)
let shard_of_key key =
  if String.length key < 2 then 0
  else ((hex_val key.[0] * 16) + hex_val key.[1]) land (num_shards - 1)

let shard_of_address addr = shard_of_key (Address.to_hex addr)

type status =
  | Ok of Address.t option
  | Failed of string

type receipt = {
  tx_hash : bytes;
  status : status;
  gas_used : int;
  logs : string list;
}

let create ~genesis =
  let t =
    {
      shards =
        Array.init num_shards (fun _ ->
            { accounts = Hashtbl.create 8; contracts = Hashtbl.create 4 });
    }
  in
  List.iter
    (fun (addr, amount) ->
      if amount < 0 then invalid_arg "State.create: negative genesis balance";
      let key = Address.to_hex addr in
      Hashtbl.replace t.shards.(shard_of_key key).accounts key { balance = amount; nonce = 0 })
    genesis;
  t

(* --- unguarded read-only views (callers outside block execution) --- *)

let account t addr =
  let key = Address.to_hex addr in
  match Hashtbl.find_opt t.shards.(shard_of_key key).accounts key with
  | Some a -> a
  | None -> { balance = 0; nonce = 0 }

let balance t addr = (account t addr).balance
let nonce t addr = (account t addr).nonce

let contract_storage t addr =
  let key = Address.to_hex addr in
  Option.map
    (fun c -> c.storage)
    (Hashtbl.find_opt t.shards.(shard_of_key key).contracts key)

let contract_behavior t addr =
  let key = Address.to_hex addr in
  Option.map
    (fun c -> c.behavior)
    (Hashtbl.find_opt t.shards.(shard_of_key key).contracts key)

let is_contract t addr =
  let key = Address.to_hex addr in
  Hashtbl.mem t.shards.(shard_of_key key).contracts key

(* --- journaled transaction context ---

   Every mutation records the previous binding, so one transaction's
   effects can be undone exactly (a revert, a footprint escape, or the
   executor's whole-block serial fallback).  When [allowed >= 0] it is a
   bitmask of permitted shards and every access — read or write — outside
   it raises [Escape] *before* touching the shard, so a guarded
   transaction can never observe or disturb state another domain owns. *)

type undo =
  | U_account of string * account option
  | U_contract of string * contract_info option

type undo_log = undo list (* newest first *)

exception Escape of string

type txn = {
  st : t;
  allowed : int;
  trace : (string -> unit) option;
  mutable undos : undo_log;
}

let txn_shard txn key =
  let s = shard_of_key key in
  (* Trace before the mask check so an access that *would* escape is still
     recorded — the footprint lint wants exactly those. *)
  (match txn.trace with Some f -> f key | None -> ());
  if txn.allowed >= 0 && (txn.allowed lsr s) land 1 = 0 then raise (Escape key);
  txn.st.shards.(s)

let t_account txn addr =
  let key = Address.to_hex addr in
  match Hashtbl.find_opt (txn_shard txn key).accounts key with
  | Some a -> a
  | None -> { balance = 0; nonce = 0 }

let t_set_account txn addr a =
  let key = Address.to_hex addr in
  let shard = txn_shard txn key in
  txn.undos <- U_account (key, Hashtbl.find_opt shard.accounts key) :: txn.undos;
  Hashtbl.replace shard.accounts key a

let t_contract txn addr =
  let key = Address.to_hex addr in
  Hashtbl.find_opt (txn_shard txn key).contracts key

let t_set_contract txn addr c =
  let key = Address.to_hex addr in
  let shard = txn_shard txn key in
  txn.undos <- U_contract (key, Hashtbl.find_opt shard.contracts key) :: txn.undos;
  Hashtbl.replace shard.contracts key c

let apply_undo t u =
  match u with
  | U_account (key, prev) -> (
    let shard = t.shards.(shard_of_key key) in
    match prev with
    | Some a -> Hashtbl.replace shard.accounts key a
    | None -> Hashtbl.remove shard.accounts key)
  | U_contract (key, prev) -> (
    let shard = t.shards.(shard_of_key key) in
    match prev with
    | Some c -> Hashtbl.replace shard.contracts key c
    | None -> Hashtbl.remove shard.contracts key)

(* Undo newest-first down to (but excluding) the physical tail [mark]. *)
let rec rollback t l mark =
  if l != mark then
    match l with
    | [] -> ()
    | u :: rest ->
      apply_undo t u;
      rollback t rest mark

let undo t log = rollback t log []

let credit txn addr amount =
  let a = t_account txn addr in
  t_set_account txn addr { a with balance = a.balance + amount }

let debit txn addr amount =
  let a = t_account txn addr in
  if a.balance < amount then raise (Contract.Revert "insufficient balance");
  t_set_account txn addr { a with balance = a.balance - amount }

let apply_actions txn ~self actions =
  List.filter_map
    (fun action ->
      match action with
      | Contract.Transfer (dst, amount) ->
        if amount < 0 then raise (Contract.Revert "negative transfer");
        debit txn self amount;
        credit txn dst amount;
        None
      | Contract.Log msg -> Some msg)
    actions

let apply_tx_logged_traced t ~height ?(allowed = -1) ?trace tx =
  let txn = { st = t; allowed; trace; undos = [] } in
  let tx_hash = Tx.hash tx in
  let gas = ref (Contract.Gas.base + (Contract.Gas.per_byte * Tx.size_bytes tx)) in
  let fail reason =
    Result.Ok ({ tx_hash; status = Failed reason; gas_used = !gas; logs = [] }, txn.undos)
  in
  if not (Tx.validate tx) then fail "invalid signature"
  else begin
    match t_account txn tx.Tx.sender with
    | exception Escape key ->
      Obs.Counter.incr m_escapes;
      Result.Error key
    | sender ->
      if tx.Tx.nonce <> sender.nonce then fail "bad nonce"
      else if sender.balance < tx.Tx.value then fail "insufficient funds"
      else begin
        (* The nonce advances even if execution reverts. *)
        t_set_account txn tx.Tx.sender { sender with nonce = sender.nonce + 1 };
        let after_nonce = txn.undos in
        let charge n = gas := !gas + n in
        try
          match tx.Tx.dst with
          | Tx.Create { behavior; args } ->
            let beh =
              try Contract.lookup behavior
              with Not_found -> raise (Contract.Revert ("unknown behavior " ^ behavior))
            in
            let contract_addr = Address.of_creator tx.Tx.sender tx.Tx.nonce in
            if t_contract txn contract_addr <> None then
              raise (Contract.Revert "address collision");
            debit txn tx.Tx.sender tx.Tx.value;
            credit txn contract_addr tx.Tx.value;
            charge Contract.Gas.storage_word;
            let ctx =
              {
                Contract.self = contract_addr;
                sender = tx.Tx.sender;
                value = tx.Tx.value;
                height;
                self_balance = (t_account txn contract_addr).balance;
                charge;
              }
            in
            let storage =
              Obs.with_span "chain.state.exec" (fun () -> Contract.run_init beh ctx args)
            in
            t_set_contract txn contract_addr { behavior; storage };
            Result.Ok
              ( { tx_hash; status = Ok (Some contract_addr); gas_used = !gas; logs = [] },
                txn.undos )
          | Tx.Call dst -> (
            match t_contract txn dst with
            | None ->
              (* plain value transfer *)
              debit txn tx.Tx.sender tx.Tx.value;
              credit txn dst tx.Tx.value;
              Result.Ok ({ tx_hash; status = Ok None; gas_used = !gas; logs = [] }, txn.undos)
            | Some info ->
              let beh = Contract.lookup info.behavior in
              debit txn tx.Tx.sender tx.Tx.value;
              credit txn dst tx.Tx.value;
              let ctx =
                {
                  Contract.self = dst;
                  sender = tx.Tx.sender;
                  value = tx.Tx.value;
                  height;
                  self_balance = (t_account txn dst).balance;
                  charge;
                }
              in
              let storage', actions =
                Obs.with_span "chain.state.exec" (fun () ->
                    Contract.run_receive beh ctx info.storage ~payload:tx.Tx.payload)
              in
              let logs = apply_actions txn ~self:dst actions in
              t_set_contract txn dst { info with storage = storage' };
              Result.Ok ({ tx_hash; status = Ok None; gas_used = !gas; logs }, txn.undos))
        with
        | Escape key ->
          (* The execution reached outside its declared footprint: roll
             everything back (this transaction will be re-executed in
             serial block order, where nothing is off-limits). *)
          rollback t txn.undos [];
          Obs.Counter.incr m_escapes;
          Result.Error key
        | Contract.Revert reason ->
          rollback t txn.undos after_nonce;
          txn.undos <- after_nonce;
          Obs.Counter.incr m_reverts;
          Result.Ok ({ tx_hash; status = Failed reason; gas_used = !gas; logs = [] }, txn.undos)
        | Codec.Decode_error reason ->
          rollback t txn.undos after_nonce;
          txn.undos <- after_nonce;
          Result.Ok
            ( { tx_hash; status = Failed ("decode: " ^ reason); gas_used = !gas; logs = [] },
              txn.undos )
        | e ->
          (* Defensive: a behaviour bug must not fork the simulated network. *)
          rollback t txn.undos [];
          txn.undos <- [];
          Result.Ok
            ( {
                tx_hash;
                status = Failed ("exception: " ^ Printexc.to_string e);
                gas_used = !gas;
                logs = [];
              },
              txn.undos )
      end
  end

let apply_tx_logged t ~height ?allowed tx = apply_tx_logged_traced t ~height ?allowed tx

let apply_tx t ~height tx =
  match apply_tx_logged t ~height tx with
  | Result.Ok (receipt, _log) -> receipt
  | Result.Error _ -> assert false (* unguarded execution cannot escape *)

(* Execute unguarded with every shard access recorded, then roll the
   transaction back: a pure observation of "which state keys would this
   transaction touch here?" for the footprint lint (ZL1xx).  Keys are
   reported deduplicated, in first-access order. *)
let apply_tx_traced t ~height tx =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let trace key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc := key :: !acc
    end
  in
  match apply_tx_logged_traced t ~height ~trace tx with
  | Result.Ok (receipt, log) ->
    undo t log;
    (receipt, List.rev !acc)
  | Result.Error _ -> assert false (* unguarded execution cannot escape *)

let root t =
  let w = Codec.writer () in
  let collect sel =
    Array.fold_left
      (fun acc shard -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) (sel shard) acc)
      [] t.shards
    |> List.sort compare
  in
  List.iter
    (fun (k, (a : account)) ->
      Codec.string w k;
      Codec.u64 w a.balance;
      Codec.u64 w a.nonce)
    (collect (fun s -> s.accounts));
  List.iter
    (fun (k, (c : contract_info)) ->
      Codec.string w k;
      Codec.string w c.behavior;
      Codec.bytes w c.storage)
    (collect (fun s -> s.contracts));
  Sha256.digest (Codec.to_bytes w)

let total_supply t =
  Array.fold_left
    (fun acc shard -> Hashtbl.fold (fun _ (a : account) acc -> acc + a.balance) shard.accounts acc)
    0 t.shards
