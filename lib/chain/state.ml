module Sha256 = Zebra_hashing.Sha256
module Codec = Zebra_codec.Codec
module Obs = Zebra_obs.Obs

let m_reverts = Obs.Counter.make "chain.state.reverts"

type account = { balance : int; nonce : int }

type contract_info = { behavior : string; storage : bytes }

type t = {
  accounts : (string, account) Hashtbl.t; (* key: address hex *)
  contracts : (string, contract_info) Hashtbl.t;
}

type status =
  | Ok of Address.t option
  | Failed of string

type receipt = {
  tx_hash : bytes;
  status : status;
  gas_used : int;
  logs : string list;
}

let create ~genesis =
  let t = { accounts = Hashtbl.create 64; contracts = Hashtbl.create 16 } in
  List.iter
    (fun (addr, amount) ->
      if amount < 0 then invalid_arg "State.create: negative genesis balance";
      Hashtbl.replace t.accounts (Address.to_hex addr) { balance = amount; nonce = 0 })
    genesis;
  t

let account t addr =
  match Hashtbl.find_opt t.accounts (Address.to_hex addr) with
  | Some a -> a
  | None -> { balance = 0; nonce = 0 }

let set_account t addr a = Hashtbl.replace t.accounts (Address.to_hex addr) a

let balance t addr = (account t addr).balance
let nonce t addr = (account t addr).nonce

let contract_storage t addr =
  Option.map (fun c -> c.storage) (Hashtbl.find_opt t.contracts (Address.to_hex addr))

let is_contract t addr = Hashtbl.mem t.contracts (Address.to_hex addr)

let snapshot t = (Hashtbl.copy t.accounts, Hashtbl.copy t.contracts)

let restore t (accounts, contracts) =
  Hashtbl.reset t.accounts;
  Hashtbl.iter (Hashtbl.replace t.accounts) accounts;
  Hashtbl.reset t.contracts;
  Hashtbl.iter (Hashtbl.replace t.contracts) contracts

let credit t addr amount =
  let a = account t addr in
  set_account t addr { a with balance = a.balance + amount }

let debit t addr amount =
  let a = account t addr in
  if a.balance < amount then raise (Contract.Revert "insufficient balance");
  set_account t addr { a with balance = a.balance - amount }

let apply_actions t ~self actions =
  List.filter_map
    (fun action ->
      match action with
      | Contract.Transfer (dst, amount) ->
        if amount < 0 then raise (Contract.Revert "negative transfer");
        debit t self amount;
        credit t dst amount;
        None
      | Contract.Log msg -> Some msg)
    actions

let apply_tx t ~height tx =
  let tx_hash = Tx.hash tx in
  let gas = ref (Contract.Gas.base + (Contract.Gas.per_byte * Tx.size_bytes tx)) in
  let fail reason = { tx_hash; status = Failed reason; gas_used = !gas; logs = [] } in
  if not (Tx.validate tx) then fail "invalid signature"
  else begin
    let sender = account t tx.Tx.sender in
    if tx.Tx.nonce <> sender.nonce then fail "bad nonce"
    else if sender.balance < tx.Tx.value then fail "insufficient funds"
    else begin
      (* The nonce advances even if execution reverts. *)
      let snap = snapshot t in
      set_account t tx.Tx.sender { sender with nonce = sender.nonce + 1 };
      let after_nonce = snapshot t in
      let charge n = gas := !gas + n in
      try
        match tx.Tx.dst with
        | Tx.Create { behavior; args } ->
          let beh =
            try Contract.lookup behavior
            with Not_found -> raise (Contract.Revert ("unknown behavior " ^ behavior))
          in
          let contract_addr = Address.of_creator tx.Tx.sender tx.Tx.nonce in
          if is_contract t contract_addr then raise (Contract.Revert "address collision");
          debit t tx.Tx.sender tx.Tx.value;
          credit t contract_addr tx.Tx.value;
          charge Contract.Gas.storage_word;
          let ctx =
            {
              Contract.self = contract_addr;
              sender = tx.Tx.sender;
              value = tx.Tx.value;
              height;
              self_balance = balance t contract_addr;
              charge;
            }
          in
          let storage = Obs.with_span "chain.state.exec" (fun () -> Contract.run_init beh ctx args) in
          Hashtbl.replace t.contracts (Address.to_hex contract_addr) { behavior; storage };
          { tx_hash; status = Ok (Some contract_addr); gas_used = !gas; logs = [] }
        | Tx.Call dst -> (
          match Hashtbl.find_opt t.contracts (Address.to_hex dst) with
          | None ->
            (* plain value transfer *)
            debit t tx.Tx.sender tx.Tx.value;
            credit t dst tx.Tx.value;
            { tx_hash; status = Ok None; gas_used = !gas; logs = [] }
          | Some info ->
            let beh = Contract.lookup info.behavior in
            debit t tx.Tx.sender tx.Tx.value;
            credit t dst tx.Tx.value;
            let ctx =
              {
                Contract.self = dst;
                sender = tx.Tx.sender;
                value = tx.Tx.value;
                height;
                self_balance = balance t dst;
                charge;
              }
            in
            let storage', actions =
              Obs.with_span "chain.state.exec" (fun () ->
                  Contract.run_receive beh ctx info.storage ~payload:tx.Tx.payload)
            in
            let logs = apply_actions t ~self:dst actions in
            Hashtbl.replace t.contracts (Address.to_hex dst) { info with storage = storage' };
            { tx_hash; status = Ok None; gas_used = !gas; logs })
      with
      | Contract.Revert reason ->
        restore t after_nonce;
        Obs.Counter.incr m_reverts;
        { tx_hash; status = Failed reason; gas_used = !gas; logs = [] }
      | Codec.Decode_error reason ->
        restore t after_nonce;
        { tx_hash; status = Failed ("decode: " ^ reason); gas_used = !gas; logs = [] }
      | e ->
        (* Defensive: a behaviour bug must not fork the simulated network. *)
        restore t snap;
        { tx_hash; status = Failed ("exception: " ^ Printexc.to_string e); gas_used = !gas; logs = [] }
    end
  end

let root t =
  let w = Codec.writer () in
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  List.iter
    (fun (k, (a : account)) ->
      Codec.string w k;
      Codec.u64 w a.balance;
      Codec.u64 w a.nonce)
    (sorted t.accounts);
  List.iter
    (fun (k, (c : contract_info)) ->
      Codec.string w k;
      Codec.string w c.behavior;
      Codec.bytes w c.storage)
    (sorted t.contracts);
  Sha256.digest (Codec.to_bytes w)

let total_supply t = Hashtbl.fold (fun _ (a : account) acc -> acc + a.balance) t.accounts 0
