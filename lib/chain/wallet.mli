(** A wallet: an RSA signing keypair plus its derived blockchain address.

    The protocol layer creates a {e fresh one-task-only} wallet per task and
    per participation (the paper's footnote-8 countermeasure against
    de-anonymisation through address reuse). *)

type t

(** [generate ?bits ~random_bytes ()] — default 512-bit keys (the simulated
    chain's signature security is not the experiment under test; benches
    use 2048 where the paper does). *)
val generate : ?bits:int -> random_bytes:(int -> bytes) -> unit -> t

val address : t -> Address.t
val public_key : t -> Zebra_rsa.Rsa.public_key

(** [sign w msg] — RSASSA-PKCS1-v1_5/SHA-256. *)
val sign : t -> bytes -> bytes

(** Canary bytes of the boxed signing key (the RSA private exponent,
    big-endian) for the ZL2xx secret-flow lint: these bytes must never
    appear in any serialisation, store put, obs export or log sink. *)
val secret_canary : t -> bytes

