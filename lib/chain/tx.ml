module Codec = Zebra_codec.Codec
module Rsa = Zebra_rsa.Rsa
module Pkcs1 = Zebra_rsa.Pkcs1
module Sha256 = Zebra_hashing.Sha256

type dst =
  | Create of { behavior : string; args : bytes }
  | Call of Address.t

type t = {
  sender : Address.t;
  sender_pk : Rsa.public_key;
  nonce : int;
  dst : dst;
  value : int;
  fee : int;
  payload : bytes;
  footprint : Address.t list;
  signature : bytes;
}

let write_unsigned w (tx : t) =
  Codec.bytes w (Address.to_bytes tx.sender);
  Codec.bytes w (Rsa.public_key_to_bytes tx.sender_pk);
  Codec.u64 w tx.nonce;
  (match tx.dst with
  | Create { behavior; args } ->
    Codec.u8 w 0;
    Codec.string w behavior;
    Codec.bytes w args
  | Call addr ->
    Codec.u8 w 1;
    Codec.bytes w (Address.to_bytes addr));
  Codec.u64 w tx.value;
  Codec.u64 w tx.fee;
  Codec.list w (fun w a -> Codec.bytes w (Address.to_bytes a)) tx.footprint;
  Codec.bytes w tx.payload

let signing_bytes tx = Codec.encode write_unsigned tx

let make_ext ~wallet ~fee ~footprint ~nonce ~dst ~value ~payload =
  if value < 0 then invalid_arg "Tx.make: negative value";
  if fee < 0 then invalid_arg "Tx.make: negative fee";
  let unsigned =
    {
      sender = Wallet.address wallet;
      sender_pk = Wallet.public_key wallet;
      nonce;
      dst;
      value;
      fee;
      payload;
      footprint;
      signature = Bytes.empty;
    }
  in
  { unsigned with signature = Wallet.sign wallet (signing_bytes unsigned) }

let make ~wallet ~nonce ~dst ~value ~payload =
  make_ext ~wallet ~fee:0 ~footprint:[] ~nonce ~dst ~value ~payload

let validate tx =
  tx.fee >= 0 && tx.value >= 0
  && Address.equal tx.sender (Address.of_public_key tx.sender_pk)
  && Pkcs1.verify tx.sender_pk ~msg:(signing_bytes tx) ~signature:tx.signature

let to_bytes tx =
  Codec.encode
    (fun w tx ->
      write_unsigned w tx;
      Codec.bytes w tx.signature)
    tx

let of_bytes b =
  Codec.decode
    (fun r ->
      let sender = Address.of_bytes (Codec.read_bytes r) in
      let sender_pk = Rsa.public_key_of_bytes (Codec.read_bytes r) in
      let nonce = Codec.read_u64 r in
      let dst =
        match Codec.read_u8 r with
        | 0 ->
          let behavior = Codec.read_string r in
          let args = Codec.read_bytes r in
          Create { behavior; args }
        | 1 -> Call (Address.of_bytes (Codec.read_bytes r))
        | _ -> raise (Codec.Decode_error "tx: bad dst tag")
      in
      let value = Codec.read_u64 r in
      let fee = Codec.read_u64 r in
      let footprint = Codec.read_list r (fun r -> Address.of_bytes (Codec.read_bytes r)) in
      let payload = Codec.read_bytes r in
      let signature = Codec.read_bytes r in
      { sender; sender_pk; nonce; dst; value; fee; payload; footprint; signature })
    b

let hash tx = Sha256.digest (to_bytes tx)

let size_bytes tx = Bytes.length (to_bytes tx)

let pp fmt tx =
  let dst_str =
    match tx.dst with
    | Create { behavior; _ } -> Printf.sprintf "create:%s" behavior
    | Call a -> Printf.sprintf "call:%s" (Address.to_hex a)
  in
  Format.fprintf fmt "tx{%a -> %s, nonce=%d, value=%d, fee=%d, %dB}" Address.pp tx.sender
    dst_str tx.nonce tx.value tx.fee (size_bytes tx)

let resend_as ~wallet ~nonce tx =
  let unsigned =
    {
      tx with
      sender = Wallet.address wallet;
      sender_pk = Wallet.public_key wallet;
      nonce;
      signature = Bytes.empty;
    }
  in
  { unsigned with signature = Wallet.sign wallet (signing_bytes unsigned) }
