(** Signed blockchain transactions.

    A transaction either creates a contract (naming a registered behaviour
    and its init arguments — the simulator's stand-in for EVM bytecode, see
    {!Contract}) or calls an existing contract/account with a payload.
    Transactions are signed over their canonical encoding; the sender
    address must be the hash of the embedded public key.

    {b Priority.}  [fee] is the sender's inclusion priority: the miner
    seals the mempool highest-fee-first (stable on arrival order, with
    same-sender sequences kept in nonce order — see
    {!Network.submit_r}).  The simulated chain does not price gas, so the
    fee is never charged; it only orders inclusion.

    {b Footprint.}  [footprint] declares extra addresses the transaction's
    execution may touch beyond the statically-known ones (sender and
    destination/created address): the payees of contract [Transfer]
    actions, typically.  The parallel block executor ({!Exec}) schedules
    transactions with disjoint footprints concurrently; a transaction
    whose execution escapes its declared footprint is detected, rolled
    back and deterministically re-executed in serial block order
    ([Conflict_retry]) — under-declaring costs performance, never
    correctness. *)

type dst =
  | Create of { behavior : string; args : bytes }
  | Call of Address.t

type t = private {
  sender : Address.t;
  sender_pk : Zebra_rsa.Rsa.public_key;
  nonce : int;
  dst : dst;
  value : int;
  fee : int;  (** inclusion priority; never charged *)
  payload : bytes;
  footprint : Address.t list;  (** declared extra touched addresses *)
  signature : bytes;
}

(** [make_ext ~wallet ~fee ~footprint ~nonce ~dst ~value ~payload] builds
    and signs a transaction with an explicit inclusion fee and declared
    footprint.
    @raise Invalid_argument on a negative [value] or [fee]. *)
val make_ext :
  wallet:Wallet.t ->
  fee:int ->
  footprint:Address.t list ->
  nonce:int ->
  dst:dst ->
  value:int ->
  payload:bytes ->
  t

(** [make] is {!make_ext} with [fee = 0] and [footprint = \[\]]
    (statically-known addresses only).
    @raise Invalid_argument on a negative [value]. *)
val make :
  wallet:Wallet.t -> nonce:int -> dst:dst -> value:int -> payload:bytes -> t

(** Signature valid, sender address consistent with the embedded key, and
    value/fee non-negative. *)
val validate : t -> bool

(** Transaction hash (of the signed encoding). *)
val hash : t -> bytes

val to_bytes : t -> bytes
val of_bytes : bytes -> t

(** Total serialised size (the paper's on-chain byte cost). *)
val size_bytes : t -> int

val pp : Format.formatter -> t -> unit

(**/**)

(** Test-only: forge a copy of [t] re-signed by [wallet] with a different
    sender (used by free-riding attack tests). *)
val resend_as : wallet:Wallet.t -> nonce:int -> t -> t
