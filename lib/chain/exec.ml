module Obs = Zebra_obs.Obs
module Parallel = Zebra_parallel.Parallel

let m_blocks = Obs.Counter.make "chain.exec.blocks"
let m_parallel_txs = Obs.Counter.make "chain.exec.parallel_txs"
let m_retried_txs = Obs.Counter.make "chain.exec.retried_txs"
let m_fallbacks = Obs.Counter.make "chain.exec.serial_fallbacks"
let h_waves = Obs.Histogram.make "chain.exec.waves_per_block"

let static_footprint tx =
  match tx.Tx.dst with
  | Tx.Call dst -> [ tx.Tx.sender; dst ]
  | Tx.Create _ -> [ tx.Tx.sender; Address.of_creator tx.Tx.sender tx.Tx.nonce ]

let footprint tx = static_footprint tx @ tx.Tx.footprint

let shard_mask tx =
  List.fold_left (fun m a -> m lor (1 lsl State.shard_of_address a)) 0 (footprint tx)

exception Fallback

let apply_block st ~height txs =
  let txs = Array.of_list txs in
  let n = Array.length txs in
  if n = 0 then []
  else begin
    Obs.Counter.incr m_blocks;
    let masks = Array.map shard_mask txs in
    (* Wave scheduling: each transaction runs exactly one wave after the
       latest earlier transaction sharing a shard with it, so within any
       shard execution follows block order and disjoint transactions share
       a wave.  Depends only on the block contents — never on the pool. *)
    let wave = Array.make n 0 in
    let last = Array.make State.num_shards (-1) in
    let n_waves = ref 0 in
    for i = 0 to n - 1 do
      let w = ref 0 in
      for s = 0 to State.num_shards - 1 do
        if (masks.(i) lsr s) land 1 = 1 && last.(s) >= !w then w := last.(s) + 1
      done;
      wave.(i) <- !w;
      if !w >= !n_waves then n_waves := !w + 1;
      for s = 0 to State.num_shards - 1 do
        if (masks.(i) lsr s) land 1 = 1 then last.(s) <- !w
      done
    done;
    let waves = Array.make !n_waves [] in
    for i = n - 1 downto 0 do
      waves.(wave.(i)) <- i :: waves.(wave.(i))
    done;
    Obs.Histogram.observe h_waves (float_of_int !n_waves);
    let receipts = Array.make n None in
    let logs = Array.make n None in
    let escaped = Array.make n false in
    (* Within a wave all masks are pairwise disjoint, so each domain owns
       the shards of the transactions it claims: hashtable access never
       races.  Each body writes only its own slots of the result arrays. *)
    (try
       Array.iter
         (fun members ->
           let idx = Array.of_list members in
           let k = Array.length idx in
           Parallel.parallel_for ~min_chunk:1 k (fun lo hi ->
               for j = lo to hi - 1 do
                 let i = idx.(j) in
                 match State.apply_tx_logged st ~height ~allowed:masks.(i) txs.(i) with
                 | Result.Ok (r, log) ->
                   receipts.(i) <- Some r;
                   logs.(i) <- Some log
                 | Result.Error _key -> escaped.(i) <- true
               done);
           (* Checked on the caller after the wave barrier; an escape in
              this wave means later waves could observe a half-applied
              prefix, so stop and fall back to serial order. *)
           if Array.exists (fun i -> escaped.(i)) idx then raise Fallback)
         waves
     with Fallback -> ());
    if Array.exists Fun.id escaped then begin
      (* Deterministic serial fallback: undo every applied transaction in
         reverse block order (escaped ones already rolled themselves
         back), then re-execute the whole block serially.  Escape
         detection depends only on footprints and block order, so this
         path triggers — or not — identically at every pool size. *)
      Obs.Counter.incr m_fallbacks;
      for i = n - 1 downto 0 do
        match logs.(i) with
        | Some log -> State.undo st log
        | None -> ()
      done;
      Array.to_list
        (Array.mapi
           (fun i tx ->
             if escaped.(i) then Obs.Counter.incr m_retried_txs;
             (State.apply_tx st ~height tx, escaped.(i)))
           txs)
    end
    else begin
      Obs.Counter.add m_parallel_txs n;
      Array.to_list (Array.mapi (fun i _ -> (Option.get receipts.(i), false)) txs)
    end
  end
