module Secret = Zebra_secret.Secret

(* The public key is kept outside the box — addresses and signature
   verification need it freely; only the private exponent is secret. *)
type t = {
  priv : Zebra_rsa.Rsa.private_key Secret.t;
  pub : Zebra_rsa.Rsa.public_key;
  addr : Address.t;
}

let generate ?(bits = 512) ~random_bytes () =
  let priv = Zebra_rsa.Rsa.generate ~bits ~random_bytes in
  {
    priv = Secret.make ~label:"wallet.sk" priv;
    pub = priv.Zebra_rsa.Rsa.pub;
    addr = Address.of_public_key priv.Zebra_rsa.Rsa.pub;
  }

let address w = w.addr
let public_key w = w.pub
let sign w msg = Secret.use w.priv (fun priv -> Zebra_rsa.Pkcs1.sign priv msg)
let secret_canary w = Secret.use w.priv (fun priv -> Nat.to_bytes_be priv.Zebra_rsa.Rsa.d)
