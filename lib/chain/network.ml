module Sha256 = Zebra_hashing.Sha256
module Obs = Zebra_obs.Obs

exception Consensus_failure of string

(* Metrics (all no-ops until [Obs.set_enabled true]). *)
let m_submitted = Obs.Counter.make "chain.submitted"
let m_blocks = Obs.Counter.make "chain.blocks"
let m_txs = Obs.Counter.make "chain.txs"
let m_mempool_depth = Obs.Gauge.make "chain.mempool.depth"
let m_txs_per_block = Obs.Histogram.make "chain.mine.txs_per_block"

type node = { id : int; state : State.t }

type t = {
  genesis : (Address.t * int) list;
  difficulty : int;
  nodes : node array;
  mutable mempool : Tx.t list; (* reversed arrival order *)
  mutable adversary : (Tx.t list -> Tx.t list) option;
  mutable chain : Block.t list; (* newest first *)
  receipts : (string, State.receipt) Hashtbl.t;
  mutable logs : string list; (* reversed *)
}

let create ?(difficulty = 0) ~num_nodes ~genesis () =
  if num_nodes < 1 then invalid_arg "Network.create: need at least one node";
  if difficulty < 0 || difficulty > 32 then invalid_arg "Network.create: difficulty out of range";
  {
    genesis;
    difficulty;
    nodes = Array.init num_nodes (fun id -> { id; state = State.create ~genesis });
    mempool = [];
    adversary = None;
    chain = [];
    receipts = Hashtbl.create 64;
    logs = [];
  }

let num_nodes t = Array.length t.nodes
let difficulty t = t.difficulty

let height t = match t.chain with [] -> 0 | b :: _ -> b.Block.header.Block.height

let submit t tx =
  if not (Tx.validate tx) then invalid_arg "Network.submit: invalid transaction signature";
  t.mempool <- tx :: t.mempool;
  Obs.Counter.incr m_submitted;
  Obs.Gauge.set m_mempool_depth (float_of_int (List.length t.mempool))

let pending t = List.length t.mempool

let set_adversary t f = t.adversary <- f

let tip_hash t = match t.chain with [] -> Block.genesis_hash | b :: _ -> Block.hash b

let mine t =
  Obs.with_span "chain.mine" @@ fun () ->
  let fifo = List.rev t.mempool in
  t.mempool <- [];
  Obs.Gauge.set m_mempool_depth 0.;
  let ordered = match t.adversary with None -> fifo | Some f -> f fifo in
  let ordered = List.filter Tx.validate ordered in
  Obs.Histogram.observe m_txs_per_block (float_of_int (List.length ordered));
  Obs.Counter.add m_txs (List.length ordered);
  let new_height = height t + 1 in
  (* Every node executes the block independently; receipts must agree.
     The exec span gets one sample per node per block, so its histogram is
     the distribution of per-node block execution time. *)
  let all_receipts =
    Array.map
      (fun node ->
        Obs.with_span "chain.mine.exec" (fun () ->
            List.map (State.apply_tx node.state ~height:new_height) ordered))
      t.nodes
  in
  let block =
    Obs.with_span "chain.mine.consensus" @@ fun () ->
    let roots = Array.map (fun node -> State.root node.state) t.nodes in
    Array.iteri
      (fun i r ->
        if not (Bytes.equal r roots.(0)) then
          raise (Consensus_failure (Printf.sprintf "node %d state root diverges at height %d" i new_height)))
      roots;
    let block =
      Block.make ~difficulty:t.difficulty ~height:new_height ~prev_hash:(tip_hash t)
        ~state_root:roots.(0) ordered
    in
    (match Block.validate ~difficulty:t.difficulty ~prev_hash:(tip_hash t) ~prev_height:(height t) block with
    | Ok () -> ()
    | Error e -> raise (Consensus_failure ("miner produced invalid block: " ^ e)));
    block
  in
  t.chain <- block :: t.chain;
  Obs.Counter.incr m_blocks;
  let rs = all_receipts.(0) in
  List.iter
    (fun (r : State.receipt) ->
      Hashtbl.replace t.receipts (Sha256.to_hex r.State.tx_hash) r;
      t.logs <- List.rev_append r.State.logs t.logs)
    rs;
  rs

let mine_until t ~height:target =
  while height t < target do
    ignore (mine t)
  done

let node0 t = t.nodes.(0).state

let balance t addr = State.balance (node0 t) addr
let nonce t addr = State.nonce (node0 t) addr
let contract_storage t addr = State.contract_storage (node0 t) addr
let is_contract t addr = State.is_contract (node0 t) addr

let receipt t tx_hash = Hashtbl.find_opt t.receipts (Sha256.to_hex tx_hash)

let blocks t = List.rev t.chain

let total_supply t = State.total_supply (node0 t)

let all_logs t = List.rev t.logs

let state_root t = State.root (node0 t)

let replay t =
  let fresh = State.create ~genesis:t.genesis in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun tx -> ignore (State.apply_tx fresh ~height:b.Block.header.Block.height tx))
        b.Block.txs)
    (blocks t);
  State.root fresh
