module Sha256 = Zebra_hashing.Sha256
module Obs = Zebra_obs.Obs

exception Consensus_failure of string

(* Metrics (all no-ops until [Obs.set_enabled true]). *)
let m_submitted = Obs.Counter.make "chain.submitted"
let m_blocks = Obs.Counter.make "chain.blocks"
let m_txs = Obs.Counter.make "chain.txs"
let m_mempool_depth = Obs.Gauge.make "chain.mempool.depth"
let m_txs_per_block = Obs.Histogram.make "chain.mine.txs_per_block"

type node = {
  id : int;
  mutable state : State.t;
  mutable up : bool;
  mutable applied_height : int;  (** last block height executed on [state] *)
}

type mempool_fault = height:int -> Tx.t list -> Tx.t list * (int * Tx.t) list

(* An active partition: the minority side mines its own branch off the last
   common block.  Both sides extend by one block per clock tick, so the two
   branches have equal length at heal time and the fork-choice tie-break
   (lexicographically smaller tip hash) decides the winner — chain height
   never moves backwards across a heal. *)
type partition_state = {
  p_minority : int list;  (* node ids on the minority side; never node 0 *)
  p_fork_height : int;  (* height of the last common block *)
  mutable p_chain : Block.t list;  (* minority branch, newest first *)
}

type t = {
  genesis : (Address.t * int) list;
  difficulty : int;
  nodes : node array;
  mutable mempool : Tx.t list; (* reversed arrival order *)
  mutable adversary : (Tx.t list -> Tx.t list) option;
  mutable fault : mempool_fault option;
  mutable delayed : (int * Tx.t) list; (* (release_height, tx), oldest first *)
  mutable block_hook : (height:int -> unit) option;
  mutable chain : Block.t list; (* newest first *)
  mutable partition : partition_state option;
  receipts : (string, State.receipt) Hashtbl.t;
  mutable logs : string list; (* reversed *)
}

let create ?(difficulty = 0) ~num_nodes ~genesis () =
  if num_nodes < 1 then invalid_arg "Network.create: need at least one node";
  if difficulty < 0 || difficulty > 32 then invalid_arg "Network.create: difficulty out of range";
  {
    genesis;
    difficulty;
    nodes =
      Array.init num_nodes (fun id ->
          { id; state = State.create ~genesis; up = true; applied_height = 0 });
    mempool = [];
    adversary = None;
    fault = None;
    delayed = [];
    block_hook = None;
    chain = [];
    partition = None;
    receipts = Hashtbl.create 64;
    logs = [];
  }

let num_nodes t = Array.length t.nodes
let difficulty t = t.difficulty

let height t = match t.chain with [] -> 0 | b :: _ -> b.Block.header.Block.height

type submit_error = Invalid_signature

let submit_error_to_string = function
  | Invalid_signature -> "invalid transaction signature"

let submit_r t tx =
  if not (Tx.validate tx) then Error Invalid_signature
  else begin
    t.mempool <- tx :: t.mempool;
    Obs.Counter.incr m_submitted;
    Obs.Gauge.set m_mempool_depth (float_of_int (List.length t.mempool));
    Ok ()
  end

let submit t tx =
  match submit_r t tx with
  | Ok () -> ()
  | Error e -> invalid_arg ("Network.submit: " ^ submit_error_to_string e)

let pending t = List.length t.mempool
let delayed t = List.length t.delayed

let set_adversary t f = t.adversary <- f
let set_mempool_fault t f = t.fault <- f
let set_block_hook t f = t.block_hook <- f

let tip_hash t = match t.chain with [] -> Block.genesis_hash | b :: _ -> Block.hash b

(* During a partition only the majority side serves reads and extends the
   canonical chain; minority nodes follow their own branch until the heal. *)
let in_minority t id =
  match t.partition with None -> false | Some p -> List.mem id p.p_minority

(* The first live replica: the node every read-only view answers from.
   [crash_node] refuses to take the last replica down and partitions keep
   node 0 on the majority side, so this is total. *)
let live_node t =
  let rec find i =
    if i >= Array.length t.nodes then
      raise (Consensus_failure "no live replica")
    else if t.nodes.(i).up && not (in_minority t i) then t.nodes.(i)
    else find (i + 1)
  in
  find 0

let node_up t i = t.nodes.(i).up

let node_state_root t i = State.root (t.nodes.(i).state)

let live_count t = Array.fold_left (fun acc n -> if n.up then acc + 1 else acc) 0 t.nodes

let crash_node t ~node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Network.crash_node: no such node";
  let n = t.nodes.(node) in
  if n.up then begin
    if live_count t <= 1 then
      invalid_arg "Network.crash_node: cannot crash the last live replica";
    n.up <- false
  end

let blocks t = List.rev t.chain
let genesis t = t.genesis

let restart_node t ~node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Network.restart_node: no such node";
  let n = t.nodes.(node) in
  if not n.up then begin
    (* Re-sync from peers: replay every block mined while the node was
       down.  Deterministic execution means the node must land on the
       canonical state root recorded in the tip header. *)
    List.iter
      (fun (b : Block.t) ->
        if b.Block.header.Block.height > n.applied_height then
          List.iter
            (fun tx ->
              ignore (State.apply_tx n.state ~height:b.Block.header.Block.height tx))
            b.Block.txs)
      (blocks t);
    n.applied_height <- height t;
    (match t.chain with
    | [] -> ()
    | tip :: _ ->
      if not (Bytes.equal (State.root n.state) tip.Block.header.Block.state_root) then
        raise
          (Consensus_failure
             (Printf.sprintf "node %d failed to resync: state root diverges at height %d"
                node (height t))));
    n.up <- true
  end

(* --- forks and partitions --- *)

let replay_fresh t =
  let fresh = State.create ~genesis:t.genesis in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun tx -> ignore (State.apply_tx fresh ~height:b.Block.header.Block.height tx))
        b.Block.txs)
    (blocks t);
  fresh

(* Re-derive everything that hangs off the canonical chain after a reorg:
   every node full-syncs by a fresh replay from genesis, and the receipts
   and logs are rebuilt from the new chain — first-wins per transaction
   hash, exactly as live mining records them. *)
let rebuild_from_chain t =
  Hashtbl.reset t.receipts;
  t.logs <- [];
  let reference = State.create ~genesis:t.genesis in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun tx ->
          let r = State.apply_tx reference ~height:b.Block.header.Block.height tx in
          let k = Sha256.to_hex r.State.tx_hash in
          if not (Hashtbl.mem t.receipts k) then Hashtbl.replace t.receipts k r;
          t.logs <- List.rev_append r.State.logs t.logs)
        b.Block.txs)
    (blocks t);
  (match t.chain with
  | [] -> ()
  | tip :: _ ->
    if not (Bytes.equal (State.root reference) tip.Block.header.Block.state_root) then
      raise (Consensus_failure "reorg replay diverges from the adopted tip root"));
  Array.iter
    (fun n ->
      n.state <- replay_fresh t;
      n.applied_height <- height t)
    t.nodes

let partition_active t = t.partition <> None

let start_partition t ~minority =
  if t.partition <> None then invalid_arg "Network.start_partition: partition already active";
  let n = Array.length t.nodes in
  let minority = List.sort_uniq compare minority in
  if minority = [] then invalid_arg "Network.start_partition: empty minority";
  if List.mem 0 minority then
    invalid_arg "Network.start_partition: node 0 must stay on the majority side";
  List.iter
    (fun id -> if id < 0 || id >= n then invalid_arg "Network.start_partition: no such node")
    minority;
  if List.length minority >= n then invalid_arg "Network.start_partition: minority too large";
  t.partition <- Some { p_minority = minority; p_fork_height = height t; p_chain = [] }

type heal_report = { adopted_fork : bool; reorged_blocks : int; requeued_txs : int }

let rec split_at k l =
  if k = 0 then ([], l)
  else match l with [] -> ([], []) | x :: tl -> let a, b = split_at (k - 1) tl in (x :: a, b)

let heal_partition t =
  match t.partition with
  | None -> invalid_arg "Network.heal_partition: no active partition"
  | Some p ->
    t.partition <- None;
    let main_len = height t - p.p_fork_height in
    let fork_len = List.length p.p_chain in
    (* Fork choice: longest chain wins; equal lengths break the tie toward
       the lexicographically smaller tip hash. *)
    let adopt =
      fork_len > main_len
      || fork_len = main_len && fork_len > 0
         &&
         (match (p.p_chain, t.chain) with
         | fb :: _, mb :: _ -> Bytes.compare (Block.hash fb) (Block.hash mb) < 0
         | _ -> false)
    in
    if not adopt then begin
      (* Majority branch kept: minority nodes full-sync back onto it. *)
      Array.iter
        (fun node ->
          if List.mem node.id p.p_minority then begin
            node.state <- replay_fresh t;
            node.applied_height <- height t
          end)
        t.nodes;
      { adopted_fork = false; reorged_blocks = 0; requeued_txs = 0 }
    end
    else begin
      (* Fork choice picked the minority branch: the majority blocks above
         the fork point are orphaned.  Their transactions rejoin the front
         of the mempool in block order (minus any already on the adopted
         branch) so the next block re-mines them; receipts, logs and every
         node state are rebuilt from the adopted chain. *)
      let abandoned, common = split_at main_len t.chain in
      t.chain <- p.p_chain @ common;
      let on_adopted = Hashtbl.create 64 in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun tx -> Hashtbl.replace on_adopted (Sha256.to_hex (Tx.hash tx)) ())
            b.Block.txs)
        p.p_chain;
      let orphaned =
        List.concat_map
          (fun (b : Block.t) ->
            List.filter
              (fun tx -> not (Hashtbl.mem on_adopted (Sha256.to_hex (Tx.hash tx))))
              b.Block.txs)
          (List.rev abandoned)
      in
      t.mempool <- t.mempool @ List.rev orphaned;
      rebuild_from_chain t;
      { adopted_fork = true; reorged_blocks = main_len; requeued_txs = List.length orphaned }
    end

(* A byzantine miner mines a conflicting sibling of the current tip (same
   parent, same height, permuted transactions).  Between two equal-length
   chains the fork choice is the lexicographically smaller tip hash, so
   the sibling is adopted — a one-block reorg — exactly when its hash
   sorts below the honest tip's.  [None] means there was nothing to fork
   (no tip, an active partition, or an identity permutation). *)
let fork_tip t ~permute =
  match t.chain with
  | [] -> None
  | _ when t.partition <> None -> None
  | tip :: rest ->
    let txs' = permute tip.Block.txs in
    let same =
      List.length txs' = List.length tip.Block.txs
      && List.for_all2 (fun a b -> Bytes.equal (Tx.hash a) (Tx.hash b)) txs' tip.Block.txs
    in
    if same then None
    else begin
      let st = State.create ~genesis:t.genesis in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun tx -> ignore (State.apply_tx st ~height:b.Block.header.Block.height tx))
            b.Block.txs)
        (List.rev rest);
      let h = tip.Block.header.Block.height in
      List.iter (fun tx -> ignore (State.apply_tx st ~height:h tx)) txs';
      let sibling =
        Block.make ~difficulty:t.difficulty ~height:h
          ~prev_hash:tip.Block.header.Block.prev_hash ~state_root:(State.root st) txs'
      in
      if Bytes.compare (Block.hash sibling) (Block.hash tip) < 0 then begin
        t.chain <- sibling :: rest;
        rebuild_from_chain t;
        Some true
      end
      else Some false
    end

type exec_result =
  | Applied of State.receipt
  | Conflict_retry of State.receipt
  | Rejected of string

(* Highest fee first, stable on arrival order; each sender's transactions
   are then re-slotted into that sender's positions in nonce order, so fee
   ordering can never wedge a sender behind its own later nonce.  The
   per-sender fixup touches only that sender's slots, so the result does
   not depend on hashtable iteration order. *)
let fee_order txs =
  match txs with
  | [] | [ _ ] -> txs
  | _ ->
    let arr = Array.of_list (List.stable_sort (fun a b -> compare b.Tx.fee a.Tx.fee) txs) in
    let by_sender = Hashtbl.create 8 in
    Array.iteri
      (fun i tx ->
        let k = Address.to_hex tx.Tx.sender in
        let prev = try Hashtbl.find by_sender k with Not_found -> [] in
        Hashtbl.replace by_sender k (i :: prev))
      arr;
    Hashtbl.iter
      (fun _ rev_positions ->
        match rev_positions with
        | [] | [ _ ] -> ()
        | _ ->
          let ps = List.rev rev_positions in
          let txs = List.map (fun i -> arr.(i)) ps in
          let txs = List.stable_sort (fun a b -> compare a.Tx.nonce b.Tx.nonce) txs in
          List.iter2 (fun i tx -> arr.(i) <- tx) ps txs)
      by_sender;
    Array.to_list arr

let mine_ext t =
  Obs.with_span "chain.mine" @@ fun () ->
  let new_height = height t + 1 in
  (* The block hook fires before the block forms so a fault controller can
     take a replica down (or bring one back) effective this very height. *)
  (match t.block_hook with None -> () | Some f -> f ~height:new_height);
  let fifo = List.rev t.mempool in
  t.mempool <- [];
  Obs.Gauge.set m_mempool_depth 0.;
  (* Delayed transactions whose release height arrived rejoin ahead of the
     fresh mempool (they were broadcast earlier).  They do NOT pass through
     the fault pipeline again: a delay fault holds a transaction back
     exactly its k blocks — re-drawing the coin on release would turn the
     bounded delay into possible censorship. *)
  let released, still = List.partition (fun (h, _) -> h <= new_height) t.delayed in
  t.delayed <- still;
  (* The fault pipeline draws its decisions on the arrival-order (FIFO)
     candidates; the survivors are then fee-ordered.  Released delayed
     transactions go ahead of the fee-ordered fresh mempool, exempt from
     both re-drawn fault coins and fee competition — otherwise a high-fee
     flood could starve a delayed transaction indefinitely, turning the
     bounded delay into censorship. *)
  let scheduled =
    match t.fault with
    | None -> List.map snd released @ fee_order fifo
    | Some f ->
      let now, postponed = f ~height:new_height fifo in
      t.delayed <- t.delayed @ postponed;
      List.map snd released @ fee_order now
  in
  let ordered =
    match t.adversary with
    | None -> scheduled
    | Some f ->
      let out = f scheduled in
      (* A reordering adversary may also omit or duplicate transactions,
         but cannot censor under synchrony: anything it left out of this
         block stays pending for a later one. *)
      let kept = Hashtbl.create 16 in
      List.iter (fun tx -> Hashtbl.replace kept (Sha256.to_hex (Tx.hash tx)) ()) out;
      let omitted =
        List.filter (fun tx -> not (Hashtbl.mem kept (Sha256.to_hex (Tx.hash tx)))) scheduled
      in
      t.mempool <- List.rev omitted;
      out
  in
  let tagged = List.map (fun tx -> (tx, Tx.validate tx)) ordered in
  let valid = List.filter_map (fun (tx, ok) -> if ok then Some tx else None) tagged in
  Obs.Histogram.observe m_txs_per_block (float_of_int (List.length valid));
  Obs.Counter.add m_txs (List.length valid);
  (* During a partition only the majority side sees the mempool and mines
     the canonical-candidate branch; the minority side extends its own
     (empty) branch below.  Fork choice at heal time decides which one
     survives. *)
  let live = Array.to_list t.nodes |> List.filter (fun n -> n.up && not (in_minority t n.id)) in
  (* Every live node executes the block independently; receipts must agree.
     The exec span gets one sample per node per block, so its histogram is
     the distribution of per-node block execution time. *)
  let all_results =
    List.map
      (fun node ->
        Obs.with_span "chain.mine.exec" (fun () ->
            Exec.apply_block node.state ~height:new_height valid))
      live
  in
  let all_receipts = List.map (List.map fst) all_results in
  let block =
    Obs.with_span "chain.mine.consensus" @@ fun () ->
    let roots = List.map (fun node -> State.root node.state) live in
    let root0 = List.hd roots in
    List.iteri
      (fun i r ->
        if not (Bytes.equal r root0) then
          raise
            (Consensus_failure
               (Printf.sprintf "node %d state root diverges at height %d"
                  (List.nth live i).id new_height)))
      roots;
    let block =
      Block.make ~difficulty:t.difficulty ~height:new_height ~prev_hash:(tip_hash t)
        ~state_root:root0 valid
    in
    (match Block.validate ~difficulty:t.difficulty ~prev_hash:(tip_hash t) ~prev_height:(height t) block with
    | Ok () -> ()
    | Error e -> raise (Consensus_failure ("miner produced invalid block: " ^ e)));
    block
  in
  t.chain <- block :: t.chain;
  List.iter (fun n -> n.applied_height <- new_height) live;
  Obs.Counter.incr m_blocks;
  (* The partitioned minority mines one block per tick too — empty, since
     the mempool lives on the majority side — so both branches grow at the
     same rate and the heal-time fork choice comes down to the tip-hash
     tie-break. *)
  (match t.partition with
  | None -> ()
  | Some p ->
    let m_live =
      Array.to_list t.nodes |> List.filter (fun n -> n.up && List.mem n.id p.p_minority)
    in
    (match m_live with
    | [] -> ()
    | _ ->
      let m_height = p.p_fork_height + List.length p.p_chain + 1 in
      List.iter
        (fun node -> ignore (Exec.apply_block node.state ~height:m_height []))
        m_live;
      let roots = List.map (fun node -> State.root node.state) m_live in
      let root0 = List.hd roots in
      List.iter
        (fun r ->
          if not (Bytes.equal r root0) then
            raise
              (Consensus_failure
                 (Printf.sprintf "minority branch diverges at height %d" m_height)))
        roots;
      let prev =
        match p.p_chain with
        | b :: _ -> Block.hash b
        | [] ->
          if p.p_fork_height = 0 then Block.genesis_hash
          else Block.hash (List.nth t.chain (height t - p.p_fork_height))
      in
      let mblock =
        Block.make ~difficulty:t.difficulty ~height:m_height ~prev_hash:prev
          ~state_root:root0 []
      in
      p.p_chain <- mblock :: p.p_chain;
      List.iter (fun n -> n.applied_height <- m_height) m_live));
  let rs = List.hd all_receipts in
  (* First-wins per transaction hash: a duplicated transaction (fault
     injection) re-executes and fails on nonce replay, but must not
     overwrite the canonical receipt of its first execution. *)
  List.iter
    (fun (r : State.receipt) ->
      let k = Sha256.to_hex r.State.tx_hash in
      if not (Hashtbl.mem t.receipts k) then Hashtbl.replace t.receipts k r;
      t.logs <- List.rev_append r.State.logs t.logs)
    rs;
  (* Classify in block-candidate order: invalid candidates become
     [Rejected], executed ones [Applied] or [Conflict_retry] (escaped the
     declared footprint and was re-run in the serial fallback). *)
  let rec classify tagged results =
    match (tagged, results) with
    | [], [] -> []
    | (_, false) :: tl, results -> Rejected "invalid signature" :: classify tl results
    | (_, true) :: tl, (r, retried) :: results ->
      (if retried then Conflict_retry r else Applied r) :: classify tl results
    | _ -> assert false
  in
  classify tagged (List.hd all_results)

let mine t =
  List.filter_map
    (function Applied r | Conflict_retry r -> Some r | Rejected _ -> None)
    (mine_ext t)

let mine_until t ~height:target =
  while height t < target do
    ignore (mine t)
  done

let node0 t = (live_node t).state

let balance t addr = State.balance (node0 t) addr
let nonce t addr = State.nonce (node0 t) addr
let contract_storage t addr = State.contract_storage (node0 t) addr
let is_contract t addr = State.is_contract (node0 t) addr

let receipt t tx_hash = Hashtbl.find_opt t.receipts (Sha256.to_hex tx_hash)

let total_supply t = State.total_supply (node0 t)

let all_logs t = List.rev t.logs

let state_root t = State.root (node0 t)

let replay t =
  let fresh = State.create ~genesis:t.genesis in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun tx -> ignore (State.apply_tx fresh ~height:b.Block.header.Block.height tx))
        b.Block.txs)
    (blocks t);
  State.root fresh
