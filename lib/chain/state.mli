(** The replicated ledger state of one node: externally-owned accounts,
    contract accounts with their serialised storage, and deterministic
    transaction application.

    Failed or reverted transactions are included with a failure receipt and
    roll back all state changes except the sender's nonce (Ethereum-like
    semantics, minus gas payments — the simulated chain does not price gas,
    it only meters it for the benchmarks).

    {b Sharding.}  The ledger is internally partitioned into
    {!num_shards} address shards.  The parallel block executor ({!Exec})
    maps each transaction's declared footprint to a shard bitmask and runs
    transactions with disjoint masks on different domains; the guarded
    entry point {!apply_tx_logged} guarantees a transaction never touches a
    shard outside its mask (it is rolled back and reported instead), so
    concurrent execution is race-free by construction.  All mutations are
    journaled, making rollback exact — both per-transaction (reverts,
    escapes) and whole-block (the executor's serial fallback). *)

type t

type status =
  | Ok of Address.t option  (** payload: created contract address, if any *)
  | Failed of string

type receipt = {
  tx_hash : bytes;
  status : status;
  gas_used : int;
  logs : string list;
}

(** [create ~genesis] funds the given accounts at height 0. *)
val create : genesis:(Address.t * int) list -> t

val balance : t -> Address.t -> int
val nonce : t -> Address.t -> int

(** [contract_storage t addr] is [None] when [addr] has no code. *)
val contract_storage : t -> Address.t -> bytes option

(** Registered behaviour name of the contract at [addr], if any — used by
    the footprint lint to classify transactions into kinds. *)
val contract_behavior : t -> Address.t -> string option

val is_contract : t -> Address.t -> bool

(** Number of address shards (a power of two; shard masks fit one [int]). *)
val num_shards : int

(** Shard index of an address: [0 .. num_shards - 1]. *)
val shard_of_address : Address.t -> int

(** Shard index of a raw state key (an address in hex) — the same
    partition {!shard_of_address} uses. *)
val shard_of_key : string -> int

(** Journal of one applied transaction's mutations, newest first.  Opaque;
    pass back to {!undo} to revert that transaction exactly.  Logs must be
    undone in reverse application order. *)
type undo_log

(** [apply_tx_logged t ~height ?allowed tx] executes one transaction and
    returns its receipt together with the journal of its state mutations.

    [allowed], when given, is a shard bitmask (bit [s] set = shard [s]
    accessible).  Any access — read or write — outside the mask aborts the
    transaction {e before} the foreign shard is touched: all of the
    transaction's own effects are rolled back (including the nonce) and
    [Error key] is returned with the offending address key.  The caller is
    expected to re-execute the transaction serially.  Without [allowed]
    execution is unguarded and the result is always [Ok].

    Never raises on bad transactions — every non-escape outcome is a
    receipt. *)
val apply_tx_logged :
  t -> height:int -> ?allowed:int -> Tx.t -> (receipt * undo_log, string) result

(** Revert one transaction's effects.  When undoing several transactions,
    undo them in reverse order of application. *)
val undo : t -> undo_log -> unit

(** [apply_tx t ~height tx] executes one transaction serially (unguarded).
    Never raises on bad transactions — every outcome is a receipt. *)
val apply_tx : t -> height:int -> Tx.t -> receipt

(** [apply_tx_traced t ~height tx] executes [tx] unguarded with every
    shard access recorded, then rolls the transaction back completely
    (including the nonce): a side-effect-free observation of which state
    keys the transaction touches at this state.  Returns the receipt it
    {e would} produce and the accessed keys, deduplicated in first-access
    order.  The footprint lint (ZL1xx) checks these against the declared
    footprint's shard mask. *)
val apply_tx_traced : t -> height:int -> Tx.t -> receipt * string list

(** Canonical state root (SHA-256 over the sorted serialised state);
    compared across nodes after every block.  Independent of sharding
    layout — byte-identical to the pre-sharding serialisation. *)
val root : t -> bytes

(** Total of all balances (conservation-of-money invariant in tests). *)
val total_supply : t -> int
