(** Parallel block execution over the sharded {!State}.

    Block-STM-lite: each transaction's footprint (sender, destination or
    created address, plus the extras declared in [Tx.footprint]) maps to a
    bitmask of state shards.  Transactions are scheduled into {e waves} —
    within a wave all masks are pairwise disjoint, across waves each
    transaction runs after the latest earlier transaction it conflicts
    with — and each wave runs on the {!Zebra_parallel} pool.  Per shard,
    execution therefore follows block order exactly, so results are
    bit-identical to serial execution.

    A transaction whose execution touches a shard outside its mask (an
    under-declared footprint) is aborted and rolled back by {!State}
    before the foreign shard is read; the whole block is then undone and
    re-executed serially.  Both the schedule and escape detection depend
    only on the block contents, never on the pool size, so state roots
    agree at any [ZEBRA_DOMAINS]. *)

(** All addresses a transaction may touch: the statically-known ones
    (sender; call destination or to-be-created contract address) plus its
    declared [Tx.footprint]. *)
val footprint : Tx.t -> Address.t list

(** Just the static part (sender, destination / created address) — what a
    transaction touches {e before} any contract logic runs.  A declared
    [Tx.footprint] only needs to cover accesses beyond these; footprint
    builders (e.g. [Requester.settlement_footprint]) subtract them rather
    than re-deriving the rule by hand, and the ZL1xx lint asserts the
    combination is exactly sound and minimal. *)
val static_footprint : Tx.t -> Address.t list

(** Shard bitmask of {!footprint} (bit [s] = touches shard [s]). *)
val shard_mask : Tx.t -> int

(** [apply_block st ~height txs] executes one block's transactions and
    returns, in block order, each receipt paired with [true] when that
    transaction escaped its declared footprint and was re-executed in the
    serial fallback (the [Conflict_retry] classification).  Equivalent to
    folding {!State.apply_tx} over [txs]. *)
val apply_block : State.t -> height:int -> Tx.t list -> (State.receipt * bool) list
