(** Off-chain chain-event indexer: the read-scaling subsystem.

    The paper's open-blockchain setting makes all protocol state public,
    but reading it straight off the replicas does not scale to many
    queriers.  This module rebuilds contract state {e purely from chain
    events} — blocks and canonical receipts — by mirror-executing every
    successful transaction against the same registered contract behaviours
    the replicas run ({!Zebra_chain.Contract}).  Because execution is
    deterministic, the mirror must land on byte-identical storage and the
    same balances as the chain itself, which makes the indexer double as
    the strongest consistency oracle the repo has: [Chaos.run] and
    [Load.run] assert {!agrees} after every plan.

    {b Cursors.}  {!sync} is incremental: a cursor (height, block hash)
    marks how far the indexer has read, and only newer blocks are applied
    on the next call.  If the block under the cursor is no longer on the
    canonical chain — a partition heal or a byzantine sibling adopted a
    different branch — the indexer emits {!Reorged}, resets and re-indexes
    from genesis: chain events are the only source of truth, so nothing
    derived from an abandoned branch survives.

    {b Subscriptions.}  {!subscribe} registers webhook-style callbacks
    fired synchronously for every decoded event (deploys, calls,
    transfers, logs, reorgs), in chain order.

    {b Dedup.}  Fault injection can mine the same transaction twice; the
    copy fails nonce replay on chain and the first receipt is canonical.
    The indexer applies each transaction hash once, at first occurrence,
    matching those semantics. *)

module Address = Zebra_chain.Address

(** A decoded chain event ([tx] fields are short hash prefixes). *)
type event =
  | Deployed of { height : int; addr : Address.t; behavior : string; tx : string }
  | Called of { height : int; addr : Address.t; behavior : string; sender : Address.t; tx : string }
  | Transferred of { height : int; source : Address.t; dest : Address.t; amount : int }
  | Logged of { height : int; addr : Address.t; line : string }
  | Reorged of { height : int }  (** cursor invalidated; re-indexed from genesis *)

val event_to_string : event -> string

type t

(** A fresh indexer with its cursor at genesis. *)
val create : unit -> t

(** [(height, block_hash_hex)] of the last block applied (genesis hash at
    height 0 before any sync). *)
val cursor : t -> int * string

(** [sync t net] catches the indexer up to [net]'s tip (validating the
    cursor against the canonical chain first; see the reorg rules above)
    and returns the number of blocks applied. *)
val sync : t -> Zebra_chain.Network.t -> int

(** [subscribe t f] — [f] fires synchronously on every event emitted by
    subsequent {!sync} calls, in chain order. *)
val subscribe : t -> (event -> unit) -> unit

(** All events emitted so far, oldest first. *)
val events : t -> event list

val event_count : t -> int

(** How many reorgs this indexer has survived ({!Reorged} emissions). *)
val reorg_count : t -> int

(** Number of contracts currently tracked. *)
val tracked : t -> int

(** Mirror storage / balance of a contract, if tracked. *)
val storage : t -> Address.t -> bytes option

val balance : t -> Address.t -> int option

(** Registered behaviour name of a tracked contract. *)
val behavior : t -> Address.t -> string option

(** Tracked contract addresses, sorted by hex (deterministic order). *)
val contract_addresses : t -> Address.t list

(** Set when mirror execution disagreed with a canonical receipt (e.g. the
    mirror reverted where the chain succeeded) — always a bug in one of
    the two executions; {!check} reports it. *)
val diverged : t -> string option

(** The consistency oracle: [Ok ()] iff every tracked contract's mirror
    storage is byte-identical to the chain's, balances agree, and mirror
    execution never diverged.  The first (deterministically ordered)
    problem is reported otherwise. *)
val check : t -> Zebra_chain.Network.t -> (unit, string) result

val agrees : t -> Zebra_chain.Network.t -> bool
