module Sha256 = Zebra_hashing.Sha256
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module Block = Zebra_chain.Block
module State = Zebra_chain.State
module Network = Zebra_chain.Network
module Contract = Zebra_chain.Contract

type event =
  | Deployed of { height : int; addr : Address.t; behavior : string; tx : string }
  | Called of { height : int; addr : Address.t; behavior : string; sender : Address.t; tx : string }
  | Transferred of { height : int; source : Address.t; dest : Address.t; amount : int }
  | Logged of { height : int; addr : Address.t; line : string }
  | Reorged of { height : int }

let event_to_string = function
  | Deployed { height; addr; behavior; tx } ->
    Printf.sprintf "h=%d deployed %s behavior=%s tx=%s" height (Address.to_hex addr) behavior tx
  | Called { height; addr; behavior; sender; tx } ->
    Printf.sprintf "h=%d called %s behavior=%s sender=%s tx=%s" height (Address.to_hex addr)
      behavior (Address.to_hex sender) tx
  | Transferred { height; source; dest; amount } ->
    Printf.sprintf "h=%d transfer %s -> %s amount=%d" height (Address.to_hex source)
      (Address.to_hex dest) amount
  | Logged { height; addr; line } ->
    Printf.sprintf "h=%d log %s %S" height (Address.to_hex addr) line
  | Reorged { height } -> Printf.sprintf "h=%d reorg detected, re-indexing from genesis" height

type entry = {
  addr : Address.t;
  behavior : string;
  mutable storage : bytes;
  mutable balance : int;
}

type t = {
  contracts : (string, entry) Hashtbl.t;  (* address hex -> mirror entry *)
  seen : (string, unit) Hashtbl.t;  (* applied tx hashes (dedup vs fault duplicates) *)
  mutable cursor_height : int;
  mutable cursor_tip : string;  (* hex hash of the block at the cursor *)
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
  mutable reorgs : int;
  mutable diverged : string option;
  mutable subscribers : (event -> unit) list;
}

let create () =
  {
    contracts = Hashtbl.create 32;
    seen = Hashtbl.create 256;
    cursor_height = 0;
    cursor_tip = Sha256.to_hex Block.genesis_hash;
    events = [];
    n_events = 0;
    reorgs = 0;
    diverged = None;
    subscribers = [];
  }

let cursor t = (t.cursor_height, t.cursor_tip)
let events t = List.rev t.events
let event_count t = t.n_events
let reorg_count t = t.reorgs

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let emit t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1;
  List.iter (fun f -> f ev) t.subscribers

let reset t =
  Hashtbl.reset t.contracts;
  Hashtbl.reset t.seen;
  t.cursor_height <- 0;
  t.cursor_tip <- Sha256.to_hex Block.genesis_hash

let tracked t = Hashtbl.length t.contracts

let storage t addr =
  match Hashtbl.find_opt t.contracts (Address.to_hex addr) with
  | None -> None
  | Some e -> Some e.storage

let balance t addr =
  match Hashtbl.find_opt t.contracts (Address.to_hex addr) with
  | None -> None
  | Some e -> Some e.balance

let behavior t addr =
  match Hashtbl.find_opt t.contracts (Address.to_hex addr) with
  | None -> None
  | Some e -> Some e.behavior

let contract_addresses t =
  Hashtbl.fold (fun _ e acc -> e.addr :: acc) t.contracts []
  |> List.sort (fun a b -> compare (Address.to_hex a) (Address.to_hex b))

let diverged t = t.diverged

(* Mirror-execute one chain transaction against the indexer's shadow
   contract state.  Only transactions whose canonical receipt succeeded are
   applied (a failed transaction rolled back everything but the nonce,
   which the indexer does not track), and only at their first occurrence —
   fault-injected duplicates re-execute on chain and fail nonce replay, so
   the first receipt is the canonical one. *)
let apply_tx t ~height (tx : Tx.t) (r : State.receipt) =
  let ctx self self_balance =
    {
      Contract.self;
      sender = tx.Tx.sender;
      value = tx.Tx.value;
      height;
      self_balance;
      charge = (fun _ -> ());
    }
  in
  let tx_hex = String.sub (Sha256.to_hex (Tx.hash tx)) 0 8 in
  match (tx.Tx.dst, r.State.status) with
  | _, State.Failed _ -> ()
  | Tx.Create { behavior; args }, State.Ok created -> (
    match created with
    | None -> t.diverged <- Some (Printf.sprintf "create receipt without address (tx %s)" tx_hex)
    | Some addr -> (
      match Contract.lookup behavior with
      | exception Not_found ->
        t.diverged <- Some (Printf.sprintf "unknown behavior %s (tx %s)" behavior tx_hex)
      | packed -> (
        match Contract.run_init packed (ctx addr tx.Tx.value) args with
        | exception Contract.Revert why ->
          t.diverged <-
            Some (Printf.sprintf "mirror init reverted (%s) but receipt is ok (tx %s)" why tx_hex)
        | storage ->
          Hashtbl.replace t.contracts (Address.to_hex addr)
            { addr; behavior; storage; balance = tx.Tx.value };
          emit t (Deployed { height; addr; behavior; tx = tx_hex }))))
  | Tx.Call dest, State.Ok _ -> (
    match Hashtbl.find_opt t.contracts (Address.to_hex dest) with
    | None ->
      (* A plain value transfer between externally-owned accounts; the
         indexer tracks contract state only. *)
      if tx.Tx.value > 0 then
        emit t (Transferred { height; source = tx.Tx.sender; dest; amount = tx.Tx.value })
    | Some e -> (
      let packed =
        try Some (Contract.lookup e.behavior) with Not_found -> None
      in
      match packed with
      | None -> t.diverged <- Some (Printf.sprintf "unknown behavior %s (tx %s)" e.behavior tx_hex)
      | Some packed -> (
        match
          Contract.run_receive packed (ctx e.addr (e.balance + tx.Tx.value)) e.storage
            ~payload:tx.Tx.payload
        with
        | exception Contract.Revert why ->
          t.diverged <-
            Some
              (Printf.sprintf "mirror call reverted (%s) but receipt is ok (tx %s)" why tx_hex)
        | storage', actions ->
          e.storage <- storage';
          e.balance <- e.balance + tx.Tx.value;
          emit t (Called { height; addr = e.addr; behavior = e.behavior; sender = tx.Tx.sender; tx = tx_hex });
          List.iter
            (function
              | Contract.Transfer (dest, amount) ->
                e.balance <- e.balance - amount;
                (match Hashtbl.find_opt t.contracts (Address.to_hex dest) with
                | Some payee -> payee.balance <- payee.balance + amount
                | None -> ());
                emit t (Transferred { height; source = e.addr; dest; amount })
              | Contract.Log line -> emit t (Logged { height; addr = e.addr; line }))
            actions)))

let apply_block t net (b : Block.t) =
  let height = b.Block.header.Block.height in
  List.iter
    (fun tx ->
      let k = Sha256.to_hex (Tx.hash tx) in
      if not (Hashtbl.mem t.seen k) then begin
        Hashtbl.add t.seen k ();
        match Network.receipt net (Tx.hash tx) with
        | None -> t.diverged <- Some (Printf.sprintf "no receipt for mined tx %s" (String.sub k 0 8))
        | Some r -> apply_tx t ~height tx r
      end)
    b.Block.txs;
  t.cursor_height <- height;
  t.cursor_tip <- Sha256.to_hex (Block.hash b)

(* Catch the indexer up to the network's tip.  The cursor is checked
   against the chain first: if the block the cursor points at is no longer
   on the canonical chain (a reorg replaced it), the indexer emits
   [Reorged], resets and re-indexes from genesis — chain events are the
   only source of truth, so a reorg invalidates everything derived from
   the abandoned branch.  Returns the number of blocks applied. *)
let sync t net =
  let blocks = Network.blocks net in
  let n = List.length blocks in
  let cursor_valid =
    t.cursor_height = 0
    || (t.cursor_height <= n
       &&
       match List.nth_opt blocks (t.cursor_height - 1) with
       | Some b -> Sha256.to_hex (Block.hash b) = t.cursor_tip
       | None -> false)
  in
  if not cursor_valid then begin
    t.reorgs <- t.reorgs + 1;
    emit t (Reorged { height = t.cursor_height });
    reset t
  end;
  let fresh =
    List.filteri (fun i _ -> i >= t.cursor_height) blocks
  in
  List.iter (fun b -> apply_block t net b) fresh;
  List.length fresh

(* The consistency oracle: every contract the indexer tracks must hold
   byte-identical storage and the same balance on chain, and the chain
   must know it under the same behaviour.  (Completeness is by
   construction: contracts are only ever born from [Create] transactions,
   which the indexer sees.) *)
let check t net =
  match t.diverged with
  | Some why -> Error ("mirror execution diverged: " ^ why)
  | None ->
    let problems =
      Hashtbl.fold
        (fun hex (e : entry) acc ->
          if not (Network.is_contract net e.addr) then
            Printf.sprintf "indexed contract %s is not a contract on chain" hex :: acc
          else
            match Network.contract_storage net e.addr with
            | None -> Printf.sprintf "indexed contract %s has no storage on chain" hex :: acc
            | Some chain_storage ->
              if not (Bytes.equal chain_storage e.storage) then
                Printf.sprintf "storage mismatch at %s (%s)" hex e.behavior :: acc
              else if Network.balance net e.addr <> e.balance then
                Printf.sprintf "balance mismatch at %s (indexer %d, chain %d)" hex e.balance
                  (Network.balance net e.addr)
                :: acc
              else acc)
        t.contracts []
    in
    (match List.sort compare problems with
    | [] -> Ok ()
    | p :: _ -> Error p)

let agrees t net = match check t net with Ok () -> true | Error _ -> false
