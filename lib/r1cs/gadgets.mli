(** Gadget library: reusable circuit fragments over {!Cs}.

    Every gadget simultaneously (i) emits constraints and (ii) computes the
    witness values of the wires it allocates from the values already on the
    board, so one synthesis function serves setup, proving and testing.

    Expressions ({!expr}) are linear combinations; building them costs no
    constraints — only multiplications do. *)

type expr = Cs.lc

(** {1 Expression building} *)

val v : Cs.var -> expr

(** Constant expression. *)
val c : Fp.t -> expr

val ci : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val scale : Fp.t -> expr -> expr
val eval : Cs.t -> expr -> Fp.t

(** [simplify e] merges duplicate-variable terms and drops zero
    coefficients.  Expression building is pure list concatenation, so
    iterated linear mixing (e.g. Poseidon's MDS layers) must canonicalise
    between rounds or term counts grow exponentially. *)
val simplify : expr -> expr

(** {1 Core gadgets} *)

(** [mul cs a b] allocates and returns the product wire. *)
val mul : Cs.t -> ?label:string -> expr -> expr -> Cs.var

(** [square cs a]. *)
val square : Cs.t -> expr -> Cs.var

(** [inverse cs a] allocates [a^-1] and enforces [a * inv = 1] (so it also
    proves [a <> 0]). The witness for a zero input is 0, which makes the
    constraint unsatisfiable rather than the synthesis raise. *)
val inverse : Cs.t -> expr -> Cs.var

(** [enforce_eq cs a b] adds [a = b] (one constraint). *)
val enforce_eq : Cs.t -> ?label:string -> expr -> expr -> unit

(** [enforce_bit cs x]: [x * (x - 1) = 0]. *)
val enforce_bit : Cs.t -> expr -> unit

(** [alloc_bit cs b] allocates a wire constrained to {0,1}.  The wire is
    labelled with the ["bit"] prefix (optionally extended by [?label]),
    which declares the booleanity contract that [Zebra_lint]'s ZL030 rule
    audits — keep the prefix if you label boolean wires by hand. *)
val alloc_bit : Cs.t -> ?label:string -> bool -> Cs.var

(** [is_zero cs a] is a bit wire: 1 iff [a = 0] (2 constraints). *)
val is_zero : Cs.t -> expr -> Cs.var

(** [eq cs a b] is a bit wire: 1 iff [a = b]. *)
val eq : Cs.t -> expr -> expr -> Cs.var

(** [select cs ~cond a b] is [cond ? a : b]; [cond] must be boolean. *)
val select : Cs.t -> cond:Cs.var -> expr -> expr -> Cs.var

(** [bits_of_expr cs a n] decomposes [a] into [n] little-endian boolean
    wires and enforces the recomposition (completeness requires
    [a < 2^n]; soundness additionally requires [n] small enough that the
    recomposition cannot wrap, i.e. [n <= 253] for this field). *)
val bits_of_expr : Cs.t -> expr -> int -> Cs.var array

(** [pack_bits cs bits] is the linear expression [sum b_i 2^i]. *)
val pack_bits : Cs.var array -> expr

(** [less_than cs a b ~bits] is a bit wire: 1 iff [a < b], for values
    already known to fit in [bits] bits ([bits <= 250]). *)
val less_than : Cs.t -> expr -> expr -> bits:int -> Cs.var

(** [exp cs ~base ~bits] computes [base ^ (sum bits_i 2^i)] by
    square-and-multiply, msb first.  [bits] must be boolean wires.
    3 constraints per bit. *)
val exp : Cs.t -> base:expr -> bits:Cs.var array -> Cs.var

(** {1 MiMC gadgets} — mirror {!Zebra_mimc.Mimc} exactly. *)

(** [mimc_encrypt cs ~key x]: 4 constraints per round. *)
val mimc_encrypt : Cs.t -> key:expr -> expr -> expr

val mimc_compress : Cs.t -> expr -> expr -> expr

(** [mimc_hash cs ms] = [Mimc.hash_list] over expressions. *)
val mimc_hash : Cs.t -> expr list -> expr

(** {1 Merkle gadget} *)

(** [merkle_root cs ~leaf ~path_bits ~siblings] recomputes a MiMC Merkle
    root from the leaf upward.  [path_bits.(i) = 1] means the current node
    is the right child at level [i].  Bits must be boolean wires.  Arrays
    must have equal length (the tree depth). *)
val merkle_root : Cs.t -> leaf:expr -> path_bits:Cs.var array -> siblings:Cs.var array -> expr
