(** Gadget library: reusable circuit fragments over {!Cs}.

    Every gadget simultaneously (i) emits constraints and (ii) computes the
    witness values of the wires it allocates from the values already on the
    board, so one synthesis function serves setup, proving and testing.

    Expressions ({!expr}) are linear combinations; building them costs no
    constraints — only multiplications do. *)

type expr = Cs.lc

(** {1 Expression building} *)

val v : Cs.var -> expr

(** Constant expression. *)
val c : Fp.t -> expr

val ci : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val scale : Fp.t -> expr -> expr
val eval : Cs.t -> expr -> Fp.t

(** [simplify e] merges duplicate-variable terms and drops zero
    coefficients.  Expression building is pure list concatenation, so
    iterated linear mixing (e.g. Poseidon's MDS layers) must canonicalise
    between rounds or term counts grow exponentially. *)
val simplify : expr -> expr

(** [as_const cs e] is [Some (eval cs e)] when every term of [e] rides on
    the constant-1 wire — i.e. the expression is a circuit constant — and
    [None] otherwise.  Hash gadgets use it to fold constant prefixes
    (length absorption, fixed IVs) to native computation, emitting zero
    constraints for them. *)
val as_const : Cs.t -> expr -> Fp.t option

(** {1 Core gadgets} *)

(** [mul cs a b] allocates and returns the product wire. *)
val mul : Cs.t -> ?label:string -> expr -> expr -> Cs.var

(** [square cs a]. *)
val square : Cs.t -> expr -> Cs.var

(** [inverse cs a] allocates [a^-1] and enforces [a * inv = 1] (so it also
    proves [a <> 0]). The witness for a zero input is 0, which makes the
    constraint unsatisfiable rather than the synthesis raise. *)
val inverse : Cs.t -> expr -> Cs.var

(** [enforce_eq cs a b] adds [a = b] (one constraint). *)
val enforce_eq : Cs.t -> ?label:string -> expr -> expr -> unit

(** [enforce_bit cs x]: [x * (x - 1) = 0]. *)
val enforce_bit : Cs.t -> expr -> unit

(** [alloc_bit cs b] allocates a wire constrained to {0,1}.  The wire is
    labelled with the ["bit"] prefix (optionally extended by [?label]),
    which declares the booleanity contract that [Zebra_lint]'s ZL030 rule
    audits — keep the prefix if you label boolean wires by hand. *)
val alloc_bit : Cs.t -> ?label:string -> bool -> Cs.var

(** [is_zero cs a] is a bit wire: 1 iff [a = 0] (2 constraints). *)
val is_zero : Cs.t -> expr -> Cs.var

(** [eq cs a b] is a bit wire: 1 iff [a = b]. *)
val eq : Cs.t -> expr -> expr -> Cs.var

(** [select cs ~cond a b] is [cond ? a : b] (1 wire + 1 constraint).
    [cond] must be a boolean-valued {e expression} — a bit wire [v b], or
    a boolean combination such as the output of {!less_than}; passing an
    unconstrained expression is unsound (the prover could pick any mix of
    [a] and [b]). *)
val select : Cs.t -> cond:expr -> expr -> expr -> Cs.var

(** [bits_of_expr cs a n] decomposes [a] into [n] little-endian boolean
    wires and enforces the recomposition (completeness requires
    [a < 2^n]; soundness additionally requires [n] small enough that the
    recomposition cannot wrap, i.e. [n <= 253] for this field). *)
val bits_of_expr : Cs.t -> expr -> int -> Cs.var array

(** [pack_bits cs bits] is the linear expression [sum b_i 2^i]. *)
val pack_bits : Cs.var array -> expr

(** [less_than cs a b ~bits] is a boolean expression: 1 iff [a < b], for
    values already known to fit in [bits] bits ([bits <= 250]).  Costs the
    [bits + 1] booleanity constraints of the shifted-difference
    decomposition plus its recomposition — [bits + 2] total.  The result
    is the complement of an already-constrained bit wire, so no output
    wire is allocated (ZL020 rank analysis showed the former copy wire was
    always determined; it was stripped in the Poseidon migration). *)
val less_than : Cs.t -> expr -> expr -> bits:int -> expr

(** [exp cs ~base ~bits] computes [base ^ (sum bits_i 2^i)] by
    square-and-multiply, msb first.  [bits] must be boolean wires.
    3 constraints per bit. *)
val exp : Cs.t -> base:expr -> bits:Cs.var array -> Cs.var

(** {1 MiMC gadgets} — mirror {!Zebra_mimc.Mimc} exactly.

    These are the legacy arm of the hash-composition parameter (see
    [Zebra_hashcomp.Hash_composition]); new circuits default to the
    Poseidon gadgets in [Zebra_poseidon.Poseidon], which cost ~3x fewer
    constraints for the same statement. *)

(** [mimc_encrypt cs ~key x]: 4 constraints per round, 364 for the full
    91-round cipher.  Constant-folds to zero constraints when both [key]
    and [x] are circuit constants ({!as_const}). *)
val mimc_encrypt : Cs.t -> key:expr -> expr -> expr

(** Miyaguchi–Preneel compression [encrypt ~key:h m + m + h]: 364
    constraints (the wrap-around additions are linear). *)
val mimc_compress : Cs.t -> expr -> expr -> expr

(** [mimc_hash cs ms] = [Mimc.hash_list] over expressions: one compression
    per element plus one for the length absorption; the length compression
    folds to a constant (the IV and length are literals), so hashing [k]
    non-constant elements costs [364 * k] constraints. *)
val mimc_hash : Cs.t -> expr list -> expr

(** {1 Merkle gadget} *)

(** [merkle_root cs ~leaf ~path_bits ~siblings] recomputes a MiMC Merkle
    root from the leaf upward.  [path_bits.(i) = 1] means the current node
    is the right child at level [i].  Bits must be boolean wires.  Arrays
    must have equal length (the tree depth).  Per level: 1 select + two
    MiMC compressions (the length one folds) = 1 + 2*364 = 729 constraints,
    plus the path bit's booleanity — 730/level, 11680 at depth 16.  The
    Poseidon equivalent is [Zebra_poseidon.Poseidon.merkle_root_gadget]
    at 245/level (3920 at depth 16, a 2.98x reduction); circuits
    should go through [Zebra_hashcomp.Hash_composition.merkle_root_gadget]
    and take the composition as a parameter. *)
val merkle_root : Cs.t -> leaf:expr -> path_bits:Cs.var array -> siblings:Cs.var array -> expr
