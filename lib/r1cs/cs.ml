type var = int

type lc = (Fp.t * var) list

type cstr = { a : lc; b : lc; c : lc; label : string option }

type t = {
  mutable values : Fp.t array;
  mutable num_vars : int; (* includes the constant wire *)
  mutable num_inputs : int;
  mutable has_aux : bool;
  mutable constrs : cstr list; (* reversed *)
  mutable n_constrs : int;
  wire_labels : (int, string) Hashtbl.t;
}

let one_var = 0

let create () =
  {
    values = Array.make 64 Fp.zero;
    num_vars = 1;
    num_inputs = 0;
    has_aux = false;
    constrs = [];
    n_constrs = 0;
    wire_labels = Hashtbl.create 16;
  }

let grow cs =
  if cs.num_vars >= Array.length cs.values then begin
    let bigger = Array.make (2 * Array.length cs.values) Fp.zero in
    Array.blit cs.values 0 bigger 0 cs.num_vars;
    cs.values <- bigger
  end

let alloc cs ?label v =
  grow cs;
  let idx = cs.num_vars in
  cs.values.(idx) <- v;
  cs.num_vars <- idx + 1;
  cs.has_aux <- true;
  Option.iter (fun l -> Hashtbl.replace cs.wire_labels idx l) label;
  idx

let alloc_input cs ?label v =
  if cs.has_aux then invalid_arg "Cs.alloc_input: auxiliary wires already allocated";
  grow cs;
  let idx = cs.num_vars in
  cs.values.(idx) <- v;
  cs.num_vars <- idx + 1;
  cs.num_inputs <- cs.num_inputs + 1;
  Option.iter (fun l -> Hashtbl.replace cs.wire_labels idx l) label;
  idx

let wire_label cs v = Hashtbl.find_opt cs.wire_labels v

let enforce cs ?label a b c =
  cs.constrs <- { a; b; c; label } :: cs.constrs;
  cs.n_constrs <- cs.n_constrs + 1

let value cs v = if v = 0 then Fp.one else cs.values.(v)

let lc_value cs lc =
  List.fold_left (fun acc (coeff, v) -> Fp.add acc (Fp.mul coeff (value cs v))) Fp.zero lc

let set_value cs v x =
  if v = 0 then invalid_arg "Cs.set_value: constant wire";
  cs.values.(v) <- x

let num_vars cs = cs.num_vars
let num_inputs cs = cs.num_inputs
let num_constraints cs = cs.n_constrs

let constraints cs =
  let arr = Array.of_list (List.rev_map (fun c -> (c.a, c.b, c.c)) cs.constrs) in
  arr

let iter_constraints cs f =
  List.iteri (fun i c -> f ~index:i ~label:c.label c.a c.b c.c) (List.rev cs.constrs)

let fold_constraints cs ~init ~f =
  let acc = ref init in
  iter_constraints cs (fun ~index ~label a b c -> acc := f !acc ~index ~label a b c);
  !acc

let assignment cs =
  let a = Array.sub cs.values 0 cs.num_vars in
  a.(0) <- Fp.one;
  a

let public_inputs cs = Array.init cs.num_inputs (fun i -> cs.values.(i + 1))

let check cs c =
  Fp.equal (Fp.mul (lc_value cs c.a) (lc_value cs c.b)) (lc_value cs c.c)

let is_satisfied cs = List.for_all (check cs) cs.constrs

let find_unsatisfied cs =
  let indexed = List.rev cs.constrs in
  let rec go i = function
    | [] -> None
    | c :: rest ->
      if check cs c then go (i + 1) rest
      else Some (match c.label with Some l -> l | None -> Printf.sprintf "constraint #%d" i)
  in
  go 0 indexed

let var_of_int i = i
let int_of_var v = v
