type expr = Cs.lc

let v var : expr = [ (Fp.one, var) ]
let c k : expr = if Fp.is_zero k then [] else [ (k, Cs.one_var) ]
let ci n = c (Fp.of_int n)

let ( +: ) (a : expr) (b : expr) : expr = a @ b
let scale k (a : expr) : expr = if Fp.is_zero k then [] else List.map (fun (co, var) -> (Fp.mul k co, var)) a
let ( -: ) a b = a +: scale (Fp.neg Fp.one) b

let eval = Cs.lc_value

let simplify (e : expr) : expr =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (coeff, var) ->
      match Hashtbl.find_opt tbl var with
      | None ->
        Hashtbl.replace tbl var coeff;
        order := var :: !order
      | Some c -> Hashtbl.replace tbl var (Fp.add c coeff))
    e;
  List.rev_map
    (fun var -> (Hashtbl.find tbl var, var))
    !order
  |> List.filter (fun ((c : Fp.t), _) -> not (Fp.is_zero c))

let mul cs ?label a b =
  let out = Cs.alloc cs ?label (Fp.mul (eval cs a) (eval cs b)) in
  Cs.enforce cs ?label a b (v out);
  out

let square cs a = mul cs a a

let inverse cs a =
  let x = eval cs a in
  let out = Cs.alloc cs ~label:"inverse" (if Fp.is_zero x then Fp.zero else Fp.inv x) in
  Cs.enforce cs ~label:"inverse" a (v out) (c Fp.one);
  out

let enforce_eq cs ?label a b = Cs.enforce cs ?label (a -: b) (c Fp.one) []

let enforce_bit cs x = Cs.enforce cs ~label:"booleanity" x (x -: c Fp.one) []

(* The "bit" wire-label prefix is a contract: Zebra_lint checks every wire
   so labelled carries a booleanity constraint. *)
let alloc_bit cs ?label b =
  let label = match label with None -> "bit" | Some l -> "bit:" ^ l in
  let var = Cs.alloc cs ~label (if b then Fp.one else Fp.zero) in
  enforce_bit cs (v var);
  var

(* out = 1 iff a = 0:  witness inv = a^-1 (or 0);
   constraints: a * inv = 1 - out  and  a * out = 0. *)
let is_zero cs a =
  let x = eval cs a in
  let zero = Fp.is_zero x in
  let out = Cs.alloc cs ~label:"is_zero.out" (if zero then Fp.one else Fp.zero) in
  let invw = Cs.alloc cs ~label:"is_zero.inv" (if zero then Fp.zero else Fp.inv x) in
  Cs.enforce cs ~label:"is_zero/inv" a (v invw) (c Fp.one -: v out);
  Cs.enforce cs ~label:"is_zero/out" a (v out) [];
  out

let eq cs a b = is_zero cs (a -: b)

(* out = b + cond * (a - b): one constraint.  [cond] is any boolean-valued
   expression, so gadgets returning boolean expressions (less_than, a
   complemented bit, ...) can steer a select without an adapter wire. *)
let select cs ~cond a b =
  let cv = eval cs cond in
  let out = Cs.alloc cs ~label:"select" (if Fp.equal cv Fp.one then eval cs a else eval cs b) in
  Cs.enforce cs ~label:"select" cond (a -: b) (v out -: b);
  out

let pack_bits bits =
  let acc = ref [] in
  let pow = ref Fp.one in
  Array.iter
    (fun b ->
      acc := !acc +: scale !pow (v b);
      pow := Fp.add !pow !pow)
    bits;
  !acc

let bits_of_expr cs a n =
  if n > 253 then invalid_arg "Gadgets.bits_of_expr: too many bits for soundness";
  let x = Nat.rem (Fp.to_nat (eval cs a)) (Nat.shift_left Nat.one n) in
  let bits = Array.init n (fun i -> alloc_bit cs (Nat.testbit x i)) in
  enforce_eq cs ~label:"bit recomposition" (pack_bits bits) a;
  bits

let less_than cs a b ~bits =
  if bits > 250 then invalid_arg "Gadgets.less_than: too many bits";
  (* d = a - b + 2^bits is in [1, 2^{bits+1} - 1]; its top bit is 1 iff a >= b. *)
  let shift = Fp.pow_int Fp.two bits in
  let d = a -: b +: c shift in
  let dbits = bits_of_expr cs d (bits + 1) in
  (* The complement of the (already boolean-constrained) top bit is the
     answer; returning it as an expression costs no further wire or
     constraint.  An earlier version allocated a copy wire here — ZL020's
     rank analysis showed it was always uniquely determined, i.e. pure
     redundancy, so it was stripped when the deployed circuits were
     regenerated for the Poseidon migration. *)
  c Fp.one -: v dbits.(bits)

(* Forward declaration of as_const (defined below for MiMC); duplicated
   check here to keep exp self-contained. *)
let expr_const cs e =
  if List.for_all (fun ((_ : Fp.t), var) -> var = Cs.one_var) e then Some (eval cs e) else None

let exp cs ~base ~bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Gadgets.exp: empty exponent";
  (* Square-and-multiply, msb first; sel_i = 1 + b_i (base - 1).  When the
     base is a circuit constant the selector is linear (2 constraints/bit
     instead of 3). *)
  let const_base = expr_const cs base in
  let acc = ref (c Fp.one) in
  for i = n - 1 downto 0 do
    let sq = square cs !acc in
    let sel =
      match const_base with
      | Some b -> c Fp.one +: scale (Fp.sub b Fp.one) (v bits.(i))
      | None -> c Fp.one +: v (mul cs (v bits.(i)) (base -: c Fp.one))
    in
    acc := v (mul cs (v sq) sel)
  done;
  (* The final value is already a single wire. *)
  match !acc with
  | [ (k, var) ] when Fp.equal k Fp.one -> var
  | e ->
    let out = Cs.alloc cs ~label:"exp" (eval cs e) in
    enforce_eq cs (v out) e;
    out

let pow7 cs x =
  let x2 = square cs x in
  let x4 = square cs (v x2) in
  let x6 = mul cs (v x4) (v x2) in
  mul cs (v x6) x

(* Constant folding: an expression with only constant-wire terms needs no
   constraints (used for the length-absorption step of mimc_hash, whose
   inputs are literals). *)
let as_const = expr_const

let mimc_encrypt cs ~key x =
  match (as_const cs key, as_const cs x) with
  | Some k, Some m -> c (Zebra_mimc.Mimc.encrypt ~key:k m)
  | _ ->
    let acc = ref x in
    for i = 0 to Zebra_mimc.Mimc.rounds - 1 do
      let t = !acc +: key +: c Zebra_mimc.Mimc.round_constants.(i) in
      acc := v (pow7 cs t)
    done;
    !acc +: key

let mimc_compress cs h m = mimc_encrypt cs ~key:h m +: m +: h

let mimc_hash cs ms =
  let len = ci (List.length ms) in
  List.fold_left (fun h m -> mimc_compress cs h m) (mimc_compress cs (c Fp.zero) len) ms

let merkle_root cs ~leaf ~path_bits ~siblings =
  let depth = Array.length path_bits in
  if Array.length siblings <> depth then invalid_arg "Gadgets.merkle_root: length mismatch";
  let cur = ref leaf in
  for i = 0 to depth - 1 do
    let bit = path_bits.(i) and sib = v siblings.(i) in
    (* bit = 1 means current node is the right child. *)
    let left = v (select cs ~cond:(v bit) sib !cur) in
    let right = sib +: !cur -: left in
    cur := mimc_hash cs [ left; right ]
  done;
  !cur
