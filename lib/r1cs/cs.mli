(** Rank-1 constraint systems (R1CS) in the libsnark "protoboard" style.

    A system is a list of constraints [<A,w> * <B,w> = <C,w>] over a witness
    vector [w] whose index 0 is pinned to the constant 1, indices
    [1..num_inputs] are the public inputs, and the rest are auxiliary
    (private) wires.  The board always carries a concrete assignment: gadget
    code computes witness values while emitting constraints, so the same
    synthesis code serves key generation (dummy inputs), proving (real
    inputs) and satisfaction checks. *)

type var = private int

type t

(** Linear combination: sum of [coeff * var] terms. *)
type lc = (Fp.t * var) list

val create : unit -> t

(** The constant-1 wire. *)
val one_var : var

(** [alloc_input cs v] allocates the next public-input wire with value [v].
    All public inputs must be allocated before any auxiliary wire (this
    convention is what lets the verifier reconstruct the input part).
    [?label] attaches a debug/provenance name visible to diagnostics and the
    static analyzer ({!wire_label}).
    @raise Invalid_argument if an auxiliary wire exists already. *)
val alloc_input : t -> ?label:string -> Fp.t -> var

(** [alloc cs v] allocates an auxiliary wire with value [v].  [?label] as in
    {!alloc_input}; labels with the ["bit"] prefix additionally declare a
    booleanity contract that [Zebra_lint] checks (see {!Gadgets.alloc_bit}). *)
val alloc : t -> ?label:string -> Fp.t -> var

(** The provenance label attached at allocation time, if any. *)
val wire_label : t -> var -> string option

(** [enforce cs ?label a b c] adds the constraint [a * b = c]. *)
val enforce : t -> ?label:string -> lc -> lc -> lc -> unit

val value : t -> var -> Fp.t
val lc_value : t -> lc -> Fp.t

(** [set_value cs v x] overwrites a wire's witness value — used only by
    tests that deliberately corrupt a witness. *)
val set_value : t -> var -> Fp.t -> unit

val num_vars : t -> int

(** Number of public input wires (excluding the constant wire). *)
val num_inputs : t -> int

val num_constraints : t -> int

(** [constraints cs] in insertion order. *)
val constraints : t -> (lc * lc * lc) array

(** {1 Read-only traversal}

    [iter_constraints]/[fold_constraints] visit every constraint in
    insertion order together with its index and optional label, without
    copying or exposing the internal representation — the traversal the
    static analyzer ([Zebra_lint]) and future tooling are built on.  The
    callback must not add constraints or allocate wires on [cs]. *)

val iter_constraints :
  t -> (index:int -> label:string option -> lc -> lc -> lc -> unit) -> unit

val fold_constraints :
  t ->
  init:'a ->
  f:('a -> index:int -> label:string option -> lc -> lc -> lc -> 'a) ->
  'a

(** Full assignment, indexed by wire; entry 0 is 1. *)
val assignment : t -> Fp.t array

(** Values of the public input wires [1..num_inputs]. *)
val public_inputs : t -> Fp.t array

val is_satisfied : t -> bool

(** First violated constraint's label (or its index as a string). *)
val find_unsatisfied : t -> string option

(** [var_of_int i] — unsafe escape hatch for (de)serialisation in the SNARK
    layer. *)
val var_of_int : int -> var

val int_of_var : var -> int
