(** The SNARK scalar field: integers modulo the BN254 group order

    r = 21888242871839275222246405745257275088548364400416034343698204186575808495617

    chosen for its high 2-adicity (r - 1 is divisible by 2^28), which enables
    radix-2 FFTs over evaluation domains of up to 2^28 points.  Elements are
    kept in Montgomery form internally. *)

(** A field element (Montgomery form; canonical, so structural equality of
    limbs coincides with field equality). *)
type t

(** The prime r itself, as a natural. *)
val modulus : Nat.t

(** The additive identity. *)
val zero : t

(** The multiplicative identity. *)
val one : t

(** [add one one], predefined for gadget code. *)
val two : t

(** [of_int n] embeds a machine integer (negative values reduce mod r). *)
val of_int : int -> t

(** [of_nat n] reduces [n] modulo r. *)
val of_nat : Nat.t -> t

(** The canonical representative in [0, r). *)
val to_nat : t -> Nat.t

(** [of_bytes_be b] reduces the big-endian bytes modulo r (used to map
    SHA-256 digests and addresses into the field). *)
val of_bytes_be : bytes -> t

(** Canonical 32-byte big-endian encoding. *)
val to_bytes_be : t -> bytes

val of_bytes_be_exn : bytes -> t
(** [of_bytes_be_exn] requires a canonical 32-byte encoding strictly below r.
    @raise Invalid_argument otherwise.  Use for deserialising proofs. *)

(** [of_decimal_string s] parses base-10 and reduces modulo r. *)
val of_decimal_string : string -> t

(** Base-10 rendering of the canonical representative. *)
val to_decimal_string : t -> string

(** Field equality. *)
val equal : t -> t -> bool

(** [equal x zero], without materialising [zero]. *)
val is_zero : t -> bool

(** Total order on canonical representatives (for sorting, not algebra). *)
val compare : t -> t -> int

(** Field addition. *)
val add : t -> t -> t

(** Field subtraction. *)
val sub : t -> t -> t

(** Additive inverse. *)
val neg : t -> t

(** Field multiplication (one Montgomery reduction). *)
val mul : t -> t -> t

(** [sqr x = mul x x], the common case optimised. *)
val sqr : t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

(** [div a b = mul a (inv b)].  @raise Division_by_zero when [b] is zero. *)
val div : t -> t -> t

(** [pow x e] by square-and-multiply ([pow x zero = one]). *)
val pow : t -> Nat.t -> t

(** [pow] for machine-integer exponents; negative exponents invert. *)
val pow_int : t -> int -> t

(** {2 Fixed-base exponentiation}

    Precomputed 4-bit-window tables for one base, amortising repeated
    [pow_int] calls on the same base (the SNARK setup's power table and the
    FFT twiddle/coset tables re-seed a running power per parallel chunk).
    Building a table costs ~256 multiplications; each [fixed_base_pow] then
    costs at most 16 — independent of the exponent's magnitude.  Results
    are limb-identical to [pow_int] (exact Montgomery arithmetic), so
    swapping one for the other never changes any output byte. *)

type fixed_base

(** [fixed_base b] precomputes the window tables for base [b]. *)
val fixed_base : t -> fixed_base

(** The base the table was built for. *)
val fixed_base_of : fixed_base -> t

(** [fixed_base_pow fb e] is [fixed_base_of fb ^ e] for [e >= 0].
    @raise Invalid_argument on negative exponents. *)
val fixed_base_pow : fixed_base -> int -> t

(** Multiplicative generator of the full group (5 for this field). *)
val generator : t

(** r - 1 = 2^28 * odd. *)
val two_adicity : int

(** [root_of_unity k] is a primitive 2^k-th root of unity, 0 <= k <= 28. *)
val root_of_unity : int -> t

(** [random random_bytes] samples uniformly. *)
val random : (int -> bytes) -> t

(** [batch_inv a] inverts every element of [a] with one field inversion
    (Montgomery's trick).  @raise Division_by_zero if any element is zero. *)
val batch_inv : t array -> t array

(** {2 In-place kernels}

    Destructive variants of the arithmetic above, writing into
    caller-provided buffers so hot loops allocate nothing per
    operation (DESIGN.md, "Field kernel discipline").  {b Only mutate
    buffers you created with} [buffer]/[copy]: elements returned by the
    pure API may be shared — [zero] and [one] are process-wide globals
    and [Array.make d Fp.zero] aliases [zero] in every slot.

    Aliasing: [add_into]/[sub_into]/[neg_into] accept [dst] physically
    equal to either operand; [mul_into]/[sqr_into] raise
    [Invalid_argument] if [dst] aliases a source (Montgomery CIOS uses
    [dst] as its accumulator). *)

(** A fresh caller-owned element buffer, initialised to zero. *)
val buffer : unit -> t

(** A fresh caller-owned buffer holding the value of the argument. *)
val copy : t -> t

(** [set ~dst x] overwrites [dst] with the value of [x]. *)
val set : dst:t -> t -> unit

val set_zero : t -> unit
val set_one : t -> unit
val add_into : dst:t -> t -> t -> unit
val sub_into : dst:t -> t -> t -> unit
val neg_into : dst:t -> t -> unit
val mul_into : dst:t -> t -> t -> unit
val sqr_into : dst:t -> t -> unit

(** [equal x one] without materialising [one]. *)
val is_one : t -> bool

(** [equal x (neg one)]; with [is_one] this classifies the +-1
    constraint coefficients that dominate R1CS rows. *)
val is_minus_one : t -> bool

(** {2 Flat element vectors}

    [Vec.t] stores n field elements in one contiguous [int array] of
    n·limbs — one allocation for a whole polynomial instead of one per
    element, with indexed in-place slot operations for the FFT and
    prover hot loops.  Also exposed as the {!Fvec} module alias.

    Slot semantics: [op d k a i b j] computes [d.(k) <- a.(i) op b.(j)].
    Destination slots may coincide with source slots for additive ops;
    multiplicative ops either stage through a caller scratch element or
    write a slot from elements outside the vector, so they are
    alias-safe by construction. *)
module Vec : sig
  type elt = t

  type t

  (** [create n] is a vector of [n] zeros (one allocation). *)
  val create : int -> t

  val length : t -> int

  (** [get v i] copies slot [i] out into a fresh element. *)
  val get : t -> int -> elt

  (** [get_into ~dst v i] copies slot [i] into the buffer [dst]. *)
  val get_into : dst:elt -> t -> int -> unit

  (** [set v i x] copies the value of [x] into slot [i] ([x] is not
      captured — the vector owns its storage). *)
  val set : t -> int -> elt -> unit

  val copy : t -> t

  (** [blit src si dst di k] copies [k] slots. *)
  val blit : t -> int -> t -> int -> int -> unit

  (** [of_array a] copies the elements of [a] in ([a] is unchanged). *)
  val of_array : elt array -> t

  (** [to_array v] is the vector as an array of fresh elements. *)
  val to_array : t -> elt array

  (** [write_array v a] stores fresh elements of [v] into the slots of
      [a] (existing elements of [a] are replaced, never mutated).
      @raise Invalid_argument on length mismatch. *)
  val write_array : t -> elt array -> unit

  val swap : t -> int -> int -> unit
  val is_zero : t -> int -> bool
  val add_slots : t -> int -> t -> int -> t -> int -> unit
  val sub_slots : t -> int -> t -> int -> t -> int -> unit

  (** [mul_slot_elt ~tmp v i e]: [v.(i) <- v.(i) * e] via scratch [tmp]. *)
  val mul_slot_elt : tmp:elt -> t -> int -> elt -> unit

  (** [mul_into_elt ~dst a i b j]: [dst <- a.(i) * b.(j)]. *)
  val mul_into_elt : dst:elt -> t -> int -> t -> int -> unit

  (** [mul_elt_into ~dst v i e]: [dst <- v.(i) * e]. *)
  val mul_elt_into : dst:elt -> t -> int -> elt -> unit

  (** [set_mul v i e1 e2]: [v.(i) <- e1 * e2]. *)
  val set_mul : t -> int -> elt -> elt -> unit

  (** [sub_elt_into ~dst e v i]: [dst <- e - v.(i)]. *)
  val sub_elt_into : dst:elt -> elt -> t -> int -> unit

  (** [add_elt_acc ~acc v i]: [acc <- acc + v.(i)]. *)
  val add_elt_acc : acc:elt -> t -> int -> unit

  (** [add_slot_elt v i e]: [v.(i) <- v.(i) + e]. *)
  val add_slot_elt : t -> int -> elt -> unit

  (** [sub_slot_elt v i e]: [v.(i) <- v.(i) - e]. *)
  val sub_slot_elt : t -> int -> elt -> unit

  (** [butterfly ~tmp v p q w]:
      [(v.(p), v.(q)) <- (v.(p) + w v.(q), v.(p) - w v.(q))]. *)
  val butterfly : tmp:elt -> t -> int -> int -> elt -> unit
end

(** {2 Bucketed sparse dot products}

    Pippenger's bucket method transposed to this field-simulated SNARK:
    dot-product terms are bucketed by coefficient class, so the +-1
    coefficients that dominate R1CS rows (and 0/1 boolean-wire witness
    values) cost one limb addition each and no multiplication.  Field
    addition is exact, associative and commutative, so the regrouped
    sum is limb-identical to the naive one — proof bytes are
    unchanged. *)

(** ['\001'] for +1, ['\002'] for -1, ['\000'] otherwise. *)
val classify : t -> char

(** One classification byte per element (precompute at matrix build). *)
val classify_coefs : t array -> Bytes.t

(** Per-worker scratch (two bucket accumulators and a product
    temporary); create one per parallel chunk, never share across
    domains. *)
type dot_scratch

val dot_scratch : unit -> dot_scratch

(** [dot_sparse_acc ~scratch ~acc ~cls ~coefs ~idx ~w ~lo ~hi] adds
    [sum_{k in [lo,hi)} coefs.(k) * w.(idx.(k))] into the caller-owned
    buffer [acc], skipping zero witness values and bucketing by
    [cls] (from {!classify_coefs} over [coefs]). *)
val dot_sparse_acc :
  scratch:dot_scratch ->
  acc:t ->
  cls:Bytes.t ->
  coefs:t array ->
  idx:int array ->
  w:t array ->
  lo:int ->
  hi:int ->
  unit

(** Hex rendering for debugging and test failure messages. *)
val pp : Format.formatter -> t -> unit
