(** The SNARK scalar field: integers modulo the BN254 group order

    r = 21888242871839275222246405745257275088548364400416034343698204186575808495617

    chosen for its high 2-adicity (r - 1 is divisible by 2^28), which enables
    radix-2 FFTs over evaluation domains of up to 2^28 points.  Elements are
    kept in Montgomery form internally. *)

(** A field element (Montgomery form; canonical, so structural equality of
    limbs coincides with field equality). *)
type t

(** The prime r itself, as a natural. *)
val modulus : Nat.t

(** The additive identity. *)
val zero : t

(** The multiplicative identity. *)
val one : t

(** [add one one], predefined for gadget code. *)
val two : t

(** [of_int n] embeds a machine integer (negative values reduce mod r). *)
val of_int : int -> t

(** [of_nat n] reduces [n] modulo r. *)
val of_nat : Nat.t -> t

(** The canonical representative in [0, r). *)
val to_nat : t -> Nat.t

(** [of_bytes_be b] reduces the big-endian bytes modulo r (used to map
    SHA-256 digests and addresses into the field). *)
val of_bytes_be : bytes -> t

(** Canonical 32-byte big-endian encoding. *)
val to_bytes_be : t -> bytes

val of_bytes_be_exn : bytes -> t
(** [of_bytes_be_exn] requires a canonical 32-byte encoding strictly below r.
    @raise Invalid_argument otherwise.  Use for deserialising proofs. *)

(** [of_decimal_string s] parses base-10 and reduces modulo r. *)
val of_decimal_string : string -> t

(** Base-10 rendering of the canonical representative. *)
val to_decimal_string : t -> string

(** Field equality. *)
val equal : t -> t -> bool

(** [equal x zero], without materialising [zero]. *)
val is_zero : t -> bool

(** Total order on canonical representatives (for sorting, not algebra). *)
val compare : t -> t -> int

(** Field addition. *)
val add : t -> t -> t

(** Field subtraction. *)
val sub : t -> t -> t

(** Additive inverse. *)
val neg : t -> t

(** Field multiplication (one Montgomery reduction). *)
val mul : t -> t -> t

(** [sqr x = mul x x], the common case optimised. *)
val sqr : t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

(** [div a b = mul a (inv b)].  @raise Division_by_zero when [b] is zero. *)
val div : t -> t -> t

(** [pow x e] by square-and-multiply ([pow x zero = one]). *)
val pow : t -> Nat.t -> t

(** [pow] for machine-integer exponents; negative exponents invert. *)
val pow_int : t -> int -> t

(** {2 Fixed-base exponentiation}

    Precomputed 4-bit-window tables for one base, amortising repeated
    [pow_int] calls on the same base (the SNARK setup's power table and the
    FFT twiddle/coset tables re-seed a running power per parallel chunk).
    Building a table costs ~256 multiplications; each [fixed_base_pow] then
    costs at most 16 — independent of the exponent's magnitude.  Results
    are limb-identical to [pow_int] (exact Montgomery arithmetic), so
    swapping one for the other never changes any output byte. *)

type fixed_base

(** [fixed_base b] precomputes the window tables for base [b]. *)
val fixed_base : t -> fixed_base

(** The base the table was built for. *)
val fixed_base_of : fixed_base -> t

(** [fixed_base_pow fb e] is [fixed_base_of fb ^ e] for [e >= 0].
    @raise Invalid_argument on negative exponents. *)
val fixed_base_pow : fixed_base -> int -> t

(** Multiplicative generator of the full group (5 for this field). *)
val generator : t

(** r - 1 = 2^28 * odd. *)
val two_adicity : int

(** [root_of_unity k] is a primitive 2^k-th root of unity, 0 <= k <= 28. *)
val root_of_unity : int -> t

(** [random random_bytes] samples uniformly. *)
val random : (int -> bytes) -> t

(** [batch_inv a] inverts every element of [a] with one field inversion
    (Montgomery's trick).  @raise Division_by_zero if any element is zero. *)
val batch_inv : t array -> t array

(** Hex rendering for debugging and test failure messages. *)
val pp : Format.formatter -> t -> unit
