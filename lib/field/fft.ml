module Parallel = Zebra_parallel.Parallel

(* Butterflies (resp. pointwise multiplications) per chunk below which a
   stage is not worth fanning out.  Thresholds gate only *where* the work
   runs: chunk grids are pool-independent and every chunk owns a disjoint
   index range, so results are bit-identical at any ZEBRA_DOMAINS. *)
let par_min_butterflies = 1 lsl 12
let par_min_pointwise = 1 lsl 13

type domain = {
  log_size : int;
  size : int;
  omega : Fp.t;
  omega_inv : Fp.t;
  size_inv : Fp.t;
}

let domain n =
  if n <= 0 then invalid_arg "Fft.domain: need positive size";
  let rec log2_ceil k acc = if 1 lsl acc >= k then acc else log2_ceil k (acc + 1) in
  let log_size = log2_ceil n 0 in
  if log_size > Fp.two_adicity then invalid_arg "Fft.domain: exceeds field 2-adicity";
  let size = 1 lsl log_size in
  let omega = Fp.root_of_unity log_size in
  { log_size; size; omega; omega_inv = Fp.inv omega; size_inv = Fp.inv (Fp.of_int size) }

let size d = d.size
let omega d = d.omega
let element d i = Fp.pow_int d.omega i

let bit_reverse_permute a =
  let n = Array.length a in
  let log_n =
    let rec go k acc = if 1 lsl acc = k then acc else go k (acc + 1) in
    go n 0
  in
  for i = 0 to n - 1 do
    let j =
      let r = ref 0 in
      for b = 0 to log_n - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
      done;
      !r
    in
    if j > i then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

let ntt_in_place a root =
  let n = Array.length a in
  bit_reverse_permute a;
  let len = ref 2 in
  while !len <= n do
    let blk = !len in
    let w_len = Fp.pow_int root (n / blk) in
    let half = blk / 2 in
    (* One block's butterflies over j in [jlo, jhi), twiddle starting at
       w0 = w_len^jlo.  Writes touch only slots base+j and base+j+half. *)
    let butterflies base w0 jlo jhi =
      let w = ref w0 in
      for j = jlo to jhi - 1 do
        let u = a.(base + j) in
        let v = Fp.mul a.(base + j + half) !w in
        a.(base + j) <- Fp.add u v;
        a.(base + j + half) <- Fp.sub u v;
        w := Fp.mul !w w_len
      done
    in
    if half >= par_min_butterflies then
      (* Late stages: a few large blocks — split each block's j-range. *)
      let base = ref 0 in
      while !base < n do
        let b = !base in
        Parallel.parallel_for ~min_chunk:par_min_butterflies half (fun jlo jhi ->
            butterflies b (Fp.pow_int w_len jlo) jlo jhi);
        base := b + blk
      done
    else if n / 2 >= par_min_butterflies then
      (* Early stages: many small blocks — whole blocks per chunk. *)
      Parallel.parallel_for
        ~min_chunk:(max 1 (par_min_butterflies / half))
        (n / blk)
        (fun blo bhi ->
          for b = blo to bhi - 1 do
            butterflies (b * blk) Fp.one 0 half
          done)
    else begin
      let base = ref 0 in
      while !base < n do
        butterflies !base Fp.one 0 half;
        base := !base + blk
      done
    end;
    len := blk * 2
  done

let check_len d a =
  if Array.length a <> d.size then invalid_arg "Fft: array length must equal domain size"

let fft d a =
  check_len d a;
  ntt_in_place a d.omega

let ifft d a =
  check_len d a;
  ntt_in_place a d.omega_inv;
  Parallel.parallel_for ~min_chunk:par_min_pointwise d.size (fun lo hi ->
      for i = lo to hi - 1 do
        a.(i) <- Fp.mul a.(i) d.size_inv
      done)

let coset_shift = Fp.generator

(* a.(i) <- a.(i) * base^i.  Each chunk seeds its own running power at
   base^lo, so the result does not depend on how the range is split. *)
let scale_by_powers a base =
  Parallel.parallel_for ~min_chunk:par_min_pointwise (Array.length a) (fun lo hi ->
      let g = ref (Fp.pow_int base lo) in
      for i = lo to hi - 1 do
        a.(i) <- Fp.mul a.(i) !g;
        g := Fp.mul !g base
      done)

let coset_fft d a =
  check_len d a;
  scale_by_powers a coset_shift;
  fft d a

let coset_ifft d a =
  ifft d a;
  scale_by_powers a (Fp.inv coset_shift)

let vanishing_on_coset d = Fp.sub (Fp.pow_int coset_shift d.size) Fp.one
let vanishing_at d x = Fp.sub (Fp.pow_int x d.size) Fp.one

(* L_i(x) = Z(x) * omega^i / (size * (x - omega^i)) for x off-domain. *)
let lagrange_at d x =
  let n = d.size in
  let z = vanishing_at d x in
  if Fp.is_zero z then raise Division_by_zero;
  let denoms = Array.make n Fp.one in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    denoms.(i) <- Fp.mul (Fp.of_int n) (Fp.sub x !wi);
    wi := Fp.mul !wi d.omega
  done;
  let inv_denoms = Fp.batch_inv denoms in
  let out = Array.make n Fp.zero in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    out.(i) <- Fp.mul (Fp.mul z !wi) inv_denoms.(i);
    wi := Fp.mul !wi d.omega
  done;
  out
