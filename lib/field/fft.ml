module Parallel = Zebra_parallel.Parallel

(* Butterflies (resp. pointwise multiplications) per chunk below which a
   stage is not worth fanning out.  Thresholds gate only *where* the work
   runs: chunk grids are pool-independent and every chunk owns a disjoint
   index range, so results are bit-identical at any ZEBRA_DOMAINS. *)
let par_min_butterflies = 1 lsl 12
let par_min_pointwise = 1 lsl 13

(* A domain carries precomputed power tables, built eagerly at creation:
   - [tw] / [tw_inv]: omega^i (resp. omega^-i) for i < size/2, shared by
     every butterfly stage via stride indexing — without them each
     butterfly pays an extra multiplication stepping its twiddle.
   - [coset_pows]: g^i for i < size (coset_fft input scaling).
   - [coset_unscale]: size_inv * g^-i (coset_ifft output scaling with the
     inverse-NTT 1/n factor folded in — field multiplication is exact and
     associative, so folding changes no output byte).
   Tables hold the exact values the replaced running products computed, so
   results are limb-identical to the table-free code path.  A domain is
   immutable after [domain] returns, so one domain (e.g. inside a cached
   keypair) is safe to read from any number of OCaml domains at once. *)
type domain = {
  log_size : int;
  size : int;
  omega : Fp.t;
  omega_inv : Fp.t;
  size_inv : Fp.t;
  tw : Fp.t array;
  tw_inv : Fp.t array;
  coset_pows : Fp.t array;
  coset_unscale : Fp.t array;
}

let coset_shift = Fp.generator

(* [| init; init*base; ...; init*base^(n-1) |].  Each chunk re-seeds its
   running power with the fixed-base table, so the result is independent of
   the chunk grid (and of ZEBRA_DOMAINS). *)
let power_table ?(init = Fp.one) base n =
  if n = 0 then [||]
  else begin
    let t = Array.make n init in
    let fb = Fp.fixed_base base in
    Parallel.parallel_for ~min_chunk:par_min_pointwise n (fun lo hi ->
        let p = ref (Fp.mul init (Fp.fixed_base_pow fb lo)) in
        for i = lo to hi - 1 do
          t.(i) <- !p;
          p := Fp.mul !p base
        done);
    t
  end

let domain n =
  if n <= 0 then invalid_arg "Fft.domain: need positive size";
  let rec log2_ceil k acc = if 1 lsl acc >= k then acc else log2_ceil k (acc + 1) in
  let log_size = log2_ceil n 0 in
  if log_size > Fp.two_adicity then invalid_arg "Fft.domain: exceeds field 2-adicity";
  let size = 1 lsl log_size in
  let omega = Fp.root_of_unity log_size in
  let omega_inv = Fp.inv omega in
  let size_inv = Fp.inv (Fp.of_int size) in
  {
    log_size;
    size;
    omega;
    omega_inv;
    size_inv;
    tw = power_table omega (size / 2);
    tw_inv = power_table omega_inv (size / 2);
    coset_pows = power_table coset_shift size;
    coset_unscale = power_table ~init:size_inv (Fp.inv coset_shift) size;
  }

let size d = d.size
let omega d = d.omega
let element d i = Fp.pow_int d.omega i

(* The transforms run natively on flat {!Fp.Vec} limb vectors: one
   contiguous buffer per polynomial, slots rewritten in place through
   per-chunk scratch elements, zero allocation per butterfly.  Scratch
   buffers are created inside each parallel chunk body, so they are
   per-OCaml-domain by construction; Montgomery arithmetic is exact and
   canonical, so every result limb is identical to the old boxed-element
   path at any ZEBRA_DOMAINS (DESIGN.md, "Field kernel discipline"). *)

let bit_reverse_permute_vec v =
  let n = Fp.Vec.length v in
  let log_n =
    let rec go k acc = if 1 lsl acc = k then acc else go k (acc + 1) in
    go n 0
  in
  for i = 0 to n - 1 do
    let j =
      let r = ref 0 in
      for b = 0 to log_n - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
      done;
      !r
    in
    if j > i then Fp.Vec.swap v i j
  done

(* [tw] holds root^i for i < n/2; the stage with block size [blk] reads its
   twiddle w_len^j = root^(j * n/blk) at stride n/blk.  One shared table
   replaces the per-butterfly running product (halving the multiplication
   count) and makes chunk boundaries trivially grid-independent. *)
let ntt_in_place_vec v tw =
  let n = Fp.Vec.length v in
  bit_reverse_permute_vec v;
  let len = ref 2 in
  while !len <= n do
    let blk = !len in
    let half = blk / 2 in
    let stride = n / blk in
    (* One block's butterflies over j in [jlo, jhi).  Writes touch only
       slots base+j and base+j+half; [tmp] is the chunk's scratch. *)
    let butterflies tmp base jlo jhi =
      for j = jlo to jhi - 1 do
        Fp.Vec.butterfly ~tmp v (base + j) (base + j + half) tw.(j * stride)
      done
    in
    if half >= par_min_butterflies then begin
      (* Late stages: a few large blocks — split each block's j-range. *)
      let base = ref 0 in
      while !base < n do
        let b = !base in
        Parallel.parallel_for ~min_chunk:par_min_butterflies half (fun jlo jhi ->
            butterflies (Fp.buffer ()) b jlo jhi);
        base := b + blk
      done
    end
    else if n / 2 >= par_min_butterflies then
      (* Early stages: many small blocks — whole blocks per chunk. *)
      Parallel.parallel_for
        ~min_chunk:(max 1 (par_min_butterflies / half))
        (n / blk)
        (fun blo bhi ->
          let tmp = Fp.buffer () in
          for b = blo to bhi - 1 do
            butterflies tmp (b * blk) 0 half
          done)
    else begin
      let tmp = Fp.buffer () in
      let base = ref 0 in
      while !base < n do
        butterflies tmp !base 0 half;
        base := !base + blk
      done
    end;
    len := blk * 2
  done

let check_len_vec d v =
  if Fp.Vec.length v <> d.size then
    invalid_arg "Fft: vector length must equal domain size"

(* v.(i) <- v.(i) * t.(i), the pointwise pass both coset transforms use. *)
let scale_by_table_vec v t =
  Parallel.parallel_for ~min_chunk:par_min_pointwise (Fp.Vec.length v) (fun lo hi ->
      let tmp = Fp.buffer () in
      for i = lo to hi - 1 do
        Fp.Vec.mul_slot_elt ~tmp v i t.(i)
      done)

let fft_vec d v =
  check_len_vec d v;
  ntt_in_place_vec v d.tw

let ifft_vec d v =
  check_len_vec d v;
  ntt_in_place_vec v d.tw_inv;
  Parallel.parallel_for ~min_chunk:par_min_pointwise d.size (fun lo hi ->
      let tmp = Fp.buffer () in
      for i = lo to hi - 1 do
        Fp.Vec.mul_slot_elt ~tmp v i d.size_inv
      done)

let coset_fft_vec d v =
  check_len_vec d v;
  scale_by_table_vec v d.coset_pows;
  ntt_in_place_vec v d.tw

let coset_ifft_vec d v =
  check_len_vec d v;
  ntt_in_place_vec v d.tw_inv;
  (* One pass applies both the inverse-NTT 1/n factor and the coset
     unshift g^-i (folded table — see [coset_unscale]). *)
  scale_by_table_vec v d.coset_unscale

(* Boxed-array entry points, kept for callers outside the prover hot
   path: convert once, transform flat, write fresh elements back (the
   caller's existing elements are replaced, never mutated — they may be
   shared, e.g. [Fp.zero] padding). *)

let check_len d a =
  if Array.length a <> d.size then invalid_arg "Fft: array length must equal domain size"

let on_vec d transform a =
  check_len d a;
  let v = Fp.Vec.of_array a in
  transform d v;
  Fp.Vec.write_array v a

let fft d a = on_vec d fft_vec a
let ifft d a = on_vec d ifft_vec a
let coset_fft d a = on_vec d coset_fft_vec a
let coset_ifft d a = on_vec d coset_ifft_vec a

let vanishing_on_coset d = Fp.sub (Fp.pow_int coset_shift d.size) Fp.one
let vanishing_at d x = Fp.sub (Fp.pow_int x d.size) Fp.one

(* L_i(x) = Z(x) * omega^i / (size * (x - omega^i)) for x off-domain. *)
let lagrange_at d x =
  let n = d.size in
  let z = vanishing_at d x in
  if Fp.is_zero z then raise Division_by_zero;
  let denoms = Array.make n Fp.one in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    denoms.(i) <- Fp.mul (Fp.of_int n) (Fp.sub x !wi);
    wi := Fp.mul !wi d.omega
  done;
  let inv_denoms = Fp.batch_inv denoms in
  let out = Array.make n Fp.zero in
  let wi = ref Fp.one in
  for i = 0 to n - 1 do
    out.(i) <- Fp.mul (Fp.mul z !wi) inv_denoms.(i);
    wi := Fp.mul !wi d.omega
  done;
  out
