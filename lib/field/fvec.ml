(* Flat field-element vectors: n elements in one contiguous limb array.
   The implementation lives in {!Fp.Vec} (it needs the field context and
   limb layout); this module re-exports it under the name the rest of
   the tree uses for "the vector type" in signatures and docs. *)
include Fp.Vec
