type t = Fp.t array (* little-endian, no trailing zeros *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && Fp.is_zero a.(!n - 1) do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero = [||]
let one = [| Fp.one |]

let of_coeffs a = trim a
let coeffs p = Array.copy p
let degree p = Array.length p - 1

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Fp.equal a b

let add a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (max la lb) Fp.zero in
  for i = 0 to Array.length r - 1 do
    let x = if i < la then a.(i) else Fp.zero in
    let y = if i < lb then b.(i) else Fp.zero in
    r.(i) <- Fp.add x y
  done;
  trim r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (max la lb) Fp.zero in
  for i = 0 to Array.length r - 1 do
    let x = if i < la then a.(i) else Fp.zero in
    let y = if i < lb then b.(i) else Fp.zero in
    r.(i) <- Fp.sub x y
  done;
  trim r

let scale c a =
  if Fp.is_zero c then zero else trim (Array.map (Fp.mul c) a)

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb - 1) Fp.zero in
    for i = 0 to la - 1 do
      if not (Fp.is_zero a.(i)) then
        for j = 0 to lb - 1 do
          r.(i + j) <- Fp.add r.(i + j) (Fp.mul a.(i) b.(j))
        done
    done;
    trim r
  end

let eval p x =
  let acc = ref Fp.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Fp.add (Fp.mul !acc x) p.(i)
  done;
  !acc

let divmod p d =
  if Array.length d = 0 then raise Division_by_zero;
  let dd = degree d in
  let lead_inv = Fp.inv d.(dd) in
  let r = Array.copy p in
  let qlen = max 0 (Array.length p - dd) in
  let q = Array.make qlen Fp.zero in
  for i = Array.length p - 1 downto dd do
    let c = Fp.mul r.(i) lead_inv in
    if not (Fp.is_zero c) then begin
      q.(i - dd) <- c;
      for j = 0 to dd do
        r.(i - dd + j) <- Fp.sub r.(i - dd + j) (Fp.mul c d.(j))
      done
    end
  done;
  (trim q, trim (if Array.length r > dd then Array.sub r 0 dd else r))

let interpolate pts =
  let pts = Array.of_list pts in
  let n = Array.length pts in
  Array.iteri
    (fun i (xi, _) ->
      Array.iteri
        (fun j (xj, _) -> if i < j && Fp.equal xi xj then invalid_arg "Poly.interpolate: duplicate x")
        pts)
    pts;
  (* All n(n-1) basis denominators xi - xj at once: one field inversion
     total (Montgomery's trick) instead of one per (i, j) pair.  Each
     inverse is the exact value [Fp.inv] would return, so the
     interpolated coefficients are unchanged. *)
  let denoms = Array.make (n * (n - 1)) Fp.one in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let xi, _ = pts.(i) in
    for j = 0 to n - 1 do
      if j <> i then begin
        let xj, _ = pts.(j) in
        denoms.(!k) <- Fp.sub xi xj;
        incr k
      end
    done
  done;
  let denom_invs = Fp.batch_inv denoms in
  let k = ref 0 in
  let acc = ref zero in
  for i = 0 to n - 1 do
    let _, yi = pts.(i) in
    let basis = ref one in
    for j = 0 to n - 1 do
      if j <> i then begin
        let xj, _ = pts.(j) in
        (* (x - xj) / (xi - xj) *)
        let denom_inv = denom_invs.(!k) in
        incr k;
        basis := mul !basis [| Fp.mul (Fp.neg xj) denom_inv; denom_inv |]
      end
    done;
    acc := add !acc (scale yi !basis)
  done;
  !acc

let pp fmt p =
  if Array.length p = 0 then Format.pp_print_string fmt "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt " + ";
        Format.fprintf fmt "%a*x^%d" Fp.pp c i)
      p
