(** Flat vectors of {!Fp.t} elements — one contiguous [int array] of
    n·limbs instead of n boxed limb arrays — with indexed in-place slot
    operations for the FFT and SNARK prover hot loops.

    This is an alias of {!Fp.Vec} (types are equal: [Fvec.t = Fp.Vec.t],
    [Fvec.elt = Fp.t]); see that module for the full operation docs and
    DESIGN.md, "Field kernel discipline", for the aliasing and
    arena-ownership rules. *)

include module type of struct
  include Fp.Vec
end
