let modulus =
  Nat.of_decimal_string
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let ctx = Modular.create modulus

type t = Modular.mont

let zero = Modular.mont_zero ctx
let one = Modular.mont_one ctx

let of_nat n = Modular.to_mont ctx n
let to_nat x = Modular.of_mont ctx x

let of_int n =
  if n >= 0 then of_nat (Nat.of_int n)
  else Modular.mont_neg ctx (of_nat (Nat.of_int (-n)))

let two = of_int 2

let of_bytes_be b = of_nat (Nat.of_bytes_be b)

let to_bytes_be x = Nat.to_bytes_be ~len:32 (to_nat x)

let of_bytes_be_exn b =
  if Bytes.length b <> 32 then invalid_arg "Fp.of_bytes_be_exn: need 32 bytes";
  let n = Nat.of_bytes_be b in
  if Nat.compare n modulus >= 0 then invalid_arg "Fp.of_bytes_be_exn: not canonical";
  of_nat n

let of_decimal_string s = of_nat (Nat.of_decimal_string s)
let to_decimal_string x = Nat.to_decimal_string (to_nat x)

let equal = Modular.mont_equal
let is_zero x = Modular.mont_equal x zero
let compare a b = Nat.compare (to_nat a) (to_nat b)

let add = Modular.mont_add ctx
let sub = Modular.mont_sub ctx
let neg = Modular.mont_neg ctx
let mul = Modular.mont_mul ctx
let sqr = Modular.mont_sqr ctx
let inv x = if is_zero x then raise Division_by_zero else Modular.mont_inv ctx x
let div a b = mul a (inv b)
let pow b e = Modular.mont_pow ctx b e
let pow_int b e =
  if e >= 0 then pow b (Nat.of_int e) else inv (pow b (Nat.of_int (-e)))

(* Fixed-base windowed exponentiation: one table of b^(j * 16^i) per
   4-bit window.  Montgomery multiplication is exact and the representation
   canonical, so [fixed_base_pow] returns limb-identical results to
   [pow_int] — callers may precompute tables without changing any output. *)

type fixed_base = { fb_base : t; fb_windows : t array array }

let fixed_base_levels = 16 (* 16 windows x 4 bits cover any machine int *)

let fixed_base b =
  let windows = Array.make fixed_base_levels [||] in
  let cur = ref b in
  for i = 0 to fixed_base_levels - 1 do
    let row = Array.make 16 one in
    for j = 1 to 15 do
      row.(j) <- mul row.(j - 1) !cur
    done;
    windows.(i) <- row;
    (* b^(16^(i+1)) = b^(15 * 16^i) * b^(16^i) *)
    cur := mul row.(15) !cur
  done;
  { fb_base = b; fb_windows = windows }

let fixed_base_of fb = fb.fb_base

let fixed_base_pow fb e =
  if e < 0 then invalid_arg "Fp.fixed_base_pow: negative exponent";
  let acc = ref one in
  let e = ref e and i = ref 0 in
  while !e <> 0 do
    let nib = !e land 15 in
    if nib <> 0 then acc := mul !acc fb.fb_windows.(!i).(nib);
    e := !e lsr 4;
    incr i
  done;
  !acc

let generator = of_int 5
let two_adicity = 28

(* 5^((r-1)/2^28) generates the 2^28-torsion; square down for smaller k. *)
let max_root =
  let odd_part = Nat.shift_right (Nat.sub modulus Nat.one) two_adicity in
  pow generator odd_part

let root_of_unity k =
  if k < 0 || k > two_adicity then invalid_arg "Fp.root_of_unity: k out of range";
  let r = ref max_root in
  for _ = 1 to two_adicity - k do
    r := sqr !r
  done;
  !r

let random random_bytes =
  of_nat (Prime.random_below ~random_bytes:(fun n -> random_bytes n) modulus)

let batch_inv a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n one in
    let acc = ref one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      if is_zero a.(i) then raise Division_by_zero;
      acc := mul !acc a.(i)
    done;
    let inv_acc = ref (inv !acc) in
    let out = Array.make n one in
    for i = n - 1 downto 0 do
      out.(i) <- mul !inv_acc prefix.(i);
      inv_acc := mul !inv_acc a.(i)
    done;
    out
  end

let pp fmt x = Format.pp_print_string fmt (to_decimal_string x)
