let modulus =
  Nat.of_decimal_string
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"

let ctx = Modular.create modulus

type t = Modular.mont

let zero = Modular.mont_zero ctx
let one = Modular.mont_one ctx

let of_nat n = Modular.to_mont ctx n
let to_nat x = Modular.of_mont ctx x

let of_int n =
  if n >= 0 then of_nat (Nat.of_int n)
  else Modular.mont_neg ctx (of_nat (Nat.of_int (-n)))

let two = of_int 2

let of_bytes_be b = of_nat (Nat.of_bytes_be b)

let to_bytes_be x = Nat.to_bytes_be ~len:32 (to_nat x)

let of_bytes_be_exn b =
  if Bytes.length b <> 32 then invalid_arg "Fp.of_bytes_be_exn: need 32 bytes";
  let n = Nat.of_bytes_be b in
  if Nat.compare n modulus >= 0 then invalid_arg "Fp.of_bytes_be_exn: not canonical";
  of_nat n

let of_decimal_string s = of_nat (Nat.of_decimal_string s)
let to_decimal_string x = Nat.to_decimal_string (to_nat x)

let equal = Modular.mont_equal
let is_zero x = Modular.mont_equal x zero
let compare a b = Nat.compare (to_nat a) (to_nat b)

let add = Modular.mont_add ctx
let sub = Modular.mont_sub ctx
let neg = Modular.mont_neg ctx
let mul = Modular.mont_mul ctx
let sqr = Modular.mont_sqr ctx
let inv x = if is_zero x then raise Division_by_zero else Modular.mont_inv ctx x
let div a b = mul a (inv b)
let pow b e = Modular.mont_pow ctx b e
let pow_int b e =
  if e >= 0 then pow b (Nat.of_int e) else inv (pow b (Nat.of_int (-e)))

(* Fixed-base windowed exponentiation: one table of b^(j * 16^i) per
   4-bit window.  Montgomery multiplication is exact and the representation
   canonical, so [fixed_base_pow] returns limb-identical results to
   [pow_int] — callers may precompute tables without changing any output. *)

type fixed_base = { fb_base : t; fb_windows : t array array }

let fixed_base_levels = 16 (* 16 windows x 4 bits cover any machine int *)

let fixed_base b =
  let windows = Array.make fixed_base_levels [||] in
  let cur = ref b in
  for i = 0 to fixed_base_levels - 1 do
    let row = Array.make 16 one in
    for j = 1 to 15 do
      row.(j) <- mul row.(j - 1) !cur
    done;
    windows.(i) <- row;
    (* b^(16^(i+1)) = b^(15 * 16^i) * b^(16^i) *)
    cur := mul row.(15) !cur
  done;
  { fb_base = b; fb_windows = windows }

let fixed_base_of fb = fb.fb_base

let fixed_base_pow fb e =
  if e < 0 then invalid_arg "Fp.fixed_base_pow: negative exponent";
  let acc = ref one in
  let e = ref e and i = ref 0 in
  while !e <> 0 do
    let nib = !e land 15 in
    if nib <> 0 then acc := mul !acc fb.fb_windows.(!i).(nib);
    e := !e lsr 4;
    incr i
  done;
  !acc

let generator = of_int 5
let two_adicity = 28

(* 5^((r-1)/2^28) generates the 2^28-torsion; square down for smaller k. *)
let max_root =
  let odd_part = Nat.shift_right (Nat.sub modulus Nat.one) two_adicity in
  pow generator odd_part

let root_of_unity k =
  if k < 0 || k > two_adicity then invalid_arg "Fp.root_of_unity: k out of range";
  let r = ref max_root in
  for _ = 1 to two_adicity - k do
    r := sqr !r
  done;
  !r

let random random_bytes =
  of_nat (Prime.random_below ~random_bytes:(fun n -> random_bytes n) modulus)

let batch_inv a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let prefix = Array.make n one in
    let acc = ref one in
    for i = 0 to n - 1 do
      prefix.(i) <- !acc;
      if is_zero a.(i) then raise Division_by_zero;
      acc := mul !acc a.(i)
    done;
    let inv_acc = ref (inv !acc) in
    let out = Array.make n one in
    for i = n - 1 downto 0 do
      out.(i) <- mul !inv_acc prefix.(i);
      inv_acc := mul !inv_acc a.(i)
    done;
    out
  end

(* ------------------------------------------------------------------ *)
(* In-place kernels and flat element vectors (DESIGN.md, "Field kernel
   discipline").  Only mutate buffers you created: [zero], [one] and
   every element returned by the pure API may be shared — e.g.
   [Array.make d Fp.zero] aliases the global zero in every slot. *)

let nl = Modular.num_limbs ctx

let buffer () : t = Modular.mont_buffer ctx
let copy : t -> t = Modular.mont_copy
let set ~dst x = Modular.mont_set ~dst x
let set_zero dst = Modular.mont_set_zero dst
let set_one dst = Modular.mont_set_one ctx ~dst
let add_into ~dst a b = Modular.mont_add_into ctx ~dst a b
let sub_into ~dst a b = Modular.mont_sub_into ctx ~dst a b
let neg_into ~dst a = Modular.mont_neg_into ctx ~dst a
let mul_into ~dst a b = Modular.mont_mul_into ctx ~dst a b
let sqr_into ~dst a = Modular.mont_sqr_into ctx ~dst a

let minus_one = neg one
let is_one x = Modular.mont_equal x one
let is_minus_one x = Modular.mont_equal x minus_one

module Vec = struct
  type elt = t
  type t = { buf : int array; len : int }

  let limbs (x : elt) : int array = (x :> int array)
  let create len = { buf = Array.make (len * nl) 0; len }
  let length v = v.len
  let get v i = Modular.mont_of_region ctx v.buf (i * nl)
  let get_into ~dst v i = Array.blit v.buf (i * nl) (limbs dst) 0 nl
  let set v i x = Array.blit (limbs x) 0 v.buf (i * nl) nl
  let copy v = { buf = Array.copy v.buf; len = v.len }
  let blit src si dst di k = Array.blit src.buf (si * nl) dst.buf (di * nl) (k * nl)

  let of_array a =
    let v = create (Array.length a) in
    Array.iteri (fun i x -> set v i x) a;
    v

  let to_array v = Array.init v.len (get v)

  let write_array v a =
    if Array.length a <> v.len then invalid_arg "Fp.Vec.write_array: length mismatch";
    for i = 0 to v.len - 1 do
      a.(i) <- get v i
    done

  let swap v i j =
    let oi = i * nl and oj = j * nl in
    for k = 0 to nl - 1 do
      let t = v.buf.(oi + k) in
      v.buf.(oi + k) <- v.buf.(oj + k);
      v.buf.(oj + k) <- t
    done

  let is_zero v i = Modular.is_zero_off ctx v.buf (i * nl)

  (* Slot arithmetic.  [op d k a i b j] computes d.[k] <- a.[i] op b.[j];
     the destination slot may coincide with a source slot for add/sub
     (elementwise kernels), never for multiplications (CIOS uses the
     destination as accumulator — multiplications below either target a
     caller-owned scratch element or write a slot from two elements,
     which cannot overlap a vector's buffer). *)
  let add_slots d k a i b j =
    Modular.add_off ctx d.buf (k * nl) a.buf (i * nl) b.buf (j * nl)

  let sub_slots d k a i b j =
    Modular.sub_off ctx d.buf (k * nl) a.buf (i * nl) b.buf (j * nl)

  (* v.[i] <- v.[i] * e, staged through the caller's scratch element. *)
  let mul_slot_elt ~tmp v i e =
    Modular.mul_off ctx (limbs tmp) 0 v.buf (i * nl) (limbs e) 0;
    Array.blit (limbs tmp) 0 v.buf (i * nl) nl

  (* dst <- a.[i] * b.[j] *)
  let mul_into_elt ~dst a i b j =
    Modular.mul_off ctx (limbs dst) 0 a.buf (i * nl) b.buf (j * nl)

  (* dst <- v.[i] * e *)
  let mul_elt_into ~dst v i e =
    Modular.mul_off ctx (limbs dst) 0 v.buf (i * nl) (limbs e) 0

  (* v.[i] <- e1 * e2 (elements live outside the vector's buffer) *)
  let set_mul v i e1 e2 =
    Modular.mul_off ctx v.buf (i * nl) (limbs e1) 0 (limbs e2) 0

  (* dst <- e - v.[i] *)
  let sub_elt_into ~dst e v i =
    Modular.sub_off ctx (limbs dst) 0 (limbs e) 0 v.buf (i * nl)

  (* acc <- acc + v.[i] *)
  let add_elt_acc ~acc v i =
    Modular.add_off ctx (limbs acc) 0 (limbs acc) 0 v.buf (i * nl)

  (* v.[i] <- v.[i] + e  /  v.[i] <- v.[i] - e *)
  let add_slot_elt v i e = Modular.add_off ctx v.buf (i * nl) v.buf (i * nl) (limbs e) 0
  let sub_slot_elt v i e = Modular.sub_off ctx v.buf (i * nl) v.buf (i * nl) (limbs e) 0

  (* Radix-2 butterfly: (v.[p], v.[q]) <- (v.[p] + w v.[q], v.[p] - w v.[q]) *)
  let butterfly ~tmp v p q w =
    mul_elt_into ~dst:tmp v q w;
    Modular.sub_off ctx v.buf (q * nl) v.buf (p * nl) (limbs tmp) 0;
    Modular.add_off ctx v.buf (p * nl) v.buf (p * nl) (limbs tmp) 0
end

(* Bucketed sparse dot products (Pippenger's bucket idea transposed to a
   field-simulated SNARK, where the "exponentiations" of a multi-exp are
   plain field multiplications).  Constraint-row coefficients are
   overwhelmingly +-1 (boolean gadgets, Poseidon/MiMC wiring) and witness
   values often 0/1, so terms are bucketed by coefficient class: the +1
   and -1 buckets take one limb addition per term and are folded into
   the accumulator with no multiplication at all; only the generic
   bucket multiplies.  Field addition is exact, associative and
   commutative, so the regrouped sum is limb-identical to the naive
   left-to-right sum — no output byte moves. *)

let classify x : char = if is_one x then '\001' else if is_minus_one x then '\002' else '\000'

let classify_coefs a =
  let b = Bytes.create (Array.length a) in
  Array.iteri (fun i x -> Bytes.unsafe_set b i (classify x)) a;
  b

type dot_scratch = { ds_pos : t; ds_neg : t; ds_tmp : t }

let dot_scratch () = { ds_pos = buffer (); ds_neg = buffer (); ds_tmp = buffer () }

let dot_sparse_acc ~scratch ~acc ~cls ~coefs ~idx ~w ~lo ~hi =
  let { ds_pos; ds_neg; ds_tmp } = scratch in
  set_zero ds_pos;
  set_zero ds_neg;
  for k = lo to hi - 1 do
    let wi = w.(idx.(k)) in
    if not (is_zero wi) then
      match Bytes.unsafe_get cls k with
      | '\001' -> add_into ~dst:ds_pos ds_pos wi
      | '\002' -> add_into ~dst:ds_neg ds_neg wi
      | _ ->
          if is_one wi then add_into ~dst:acc acc coefs.(k)
          else begin
            mul_into ~dst:ds_tmp coefs.(k) wi;
            add_into ~dst:acc acc ds_tmp
          end
  done;
  add_into ~dst:acc acc ds_pos;
  sub_into ~dst:acc acc ds_neg

let pp fmt x = Format.pp_print_string fmt (to_decimal_string x)
