(** Radix-2 number-theoretic transforms over {!Fp}.

    An evaluation {!domain} of size [2^k] carries the primitive root and the
    precomputations needed by the QAP reduction: forward/inverse FFT and
    coset (shifted) variants used to divide by the vanishing polynomial.

    Large transforms fan their butterfly stages and scaling passes out over
    {!Zebra_parallel.Parallel}; results are bit-identical at every
    [ZEBRA_DOMAINS] setting (chunk grids are pool-independent — see
    DESIGN.md, "Multicore prover"). *)

(** A power-of-two evaluation domain with its root-of-unity tables.
    Immutable once built, so a single domain may be read concurrently from
    any number of OCaml domains (e.g. provers sharing a cached keypair). *)
type domain

(** [domain n] builds the smallest power-of-two domain of size [>= n],
    including its twiddle and coset power tables (eagerly, on the calling
    domain — the returned value is never mutated afterwards).
    @raise Invalid_argument if that exceeds the field's 2-adicity. *)
val domain : int -> domain

(** The domain size (a power of two). *)
val size : domain -> int

(** The domain generator omega (primitive [size]-th root of unity). *)
val omega : domain -> Fp.t

(** [element d i] is omega^i. *)
val element : domain -> int -> Fp.t

(** {2 Flat-vector transforms}

    The native implementations: in-place over one contiguous
    {!Fp.Vec.t} limb buffer, zero allocation per butterfly (per-chunk
    scratch elements only).  The boxed-array entry points below are
    thin wrappers that convert once and write fresh elements back.
    Vector length must equal [size d]. *)

val fft_vec : domain -> Fp.Vec.t -> unit
val ifft_vec : domain -> Fp.Vec.t -> unit
val coset_fft_vec : domain -> Fp.Vec.t -> unit
val coset_ifft_vec : domain -> Fp.Vec.t -> unit

(** In-place forward FFT: coefficients -> evaluations on the domain.
    The array length must equal [size d].  Elements of the array are
    replaced with fresh values, never mutated (they may be shared). *)
val fft : domain -> Fp.t array -> unit

(** In-place inverse FFT: evaluations -> coefficients. *)
val ifft : domain -> Fp.t array -> unit

(** Coset transforms over the shifted domain [g * <omega>] where [g] is the
    field's multiplicative generator; the vanishing polynomial
    [Z(x) = x^size - 1] is the nonzero constant [g^size - 1] there, which is
    how the QAP prover divides by [Z] exactly. *)
val coset_fft : domain -> Fp.t array -> unit

(** Inverse of {!coset_fft}: evaluations on the coset -> coefficients. *)
val coset_ifft : domain -> Fp.t array -> unit

(** [vanishing_on_coset d] is [g^size - 1]. *)
val vanishing_on_coset : domain -> Fp.t

(** [vanishing_at d x] evaluates [Z(x) = x^size - 1]. *)
val vanishing_at : domain -> Fp.t -> Fp.t

(** [lagrange_at d x] evaluates every Lagrange basis polynomial of the
    domain at the point [x] (off-domain), in O(size) field operations.
    Used by the SNARK setup.  @raise Division_by_zero when [x] is in the
    domain. *)
val lagrange_at : domain -> Fp.t -> Fp.t array
