(* Domain-safety: the registry is shared process state, and since the
   parallel pool (PR 2) hot paths may execute instrumented code on worker
   domains, every mutation is either atomic (the enable flag, counters,
   gauges) or taken under [reg_m] (interning, histogram/span observations,
   snapshots).  The span *stack* is the exception: nesting is a per-domain
   notion, so it lives in domain-local storage. *)

let on = Atomic.make false

let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

let now () = Unix.gettimeofday ()

(* Guards interning, histogram mutation and whole-registry traversals.
   Observations are span/metric-grained (not per field multiplication), so
   one global lock is never contended enough to matter. *)
let reg_m = Mutex.create ()

let locked f =
  Mutex.lock reg_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_m) f

(* --- histograms (shared by Histogram and spans) --- *)

let num_buckets = 44 (* base 1e-6 * 2^43 ~= 2.4h: plenty for latencies *)
let bucket_base = 1e-6

type hist = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let hist_make name =
  {
    h_name = name;
    h_count = 0;
    h_sum = 0.;
    h_min = nan;
    h_max = nan;
    h_buckets = Array.make num_buckets 0;
  }

let bucket_index v =
  if v <= bucket_base then 0
  else begin
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_base))) in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i
  end

let bucket_upper i = bucket_base *. Float.of_int (1 lsl i)

(* Callers hold [reg_m]. *)
let hist_observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
  if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let hist_reset h =
  h.h_count <- 0;
  h.h_sum <- 0.;
  h.h_min <- nan;
  h.h_max <- nan;
  Array.fill h.h_buckets 0 num_buckets 0

let hist_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_upper i, h.h_buckets.(i)) :: !acc
  done;
  !acc

(* --- registry --- *)

let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 16
let histograms : (string, hist) Hashtbl.t = Hashtbl.create 16
let spans : (string, hist) Hashtbl.t = Hashtbl.create 32

let intern tbl create name =
  locked @@ fun () ->
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
    let x = create name in
    Hashtbl.replace tbl name x;
    x

module Counter = struct
  type t = int Atomic.t

  let make name = intern counters (fun _ -> Atomic.make 0) name
  let add t n = if Atomic.get on then ignore (Atomic.fetch_and_add t n)
  let incr t = add t 1
  let value t = Atomic.get t
end

module Gauge = struct
  type t = float Atomic.t

  let make name = intern gauges (fun _ -> Atomic.make 0.) name
  let set t v = if Atomic.get on then Atomic.set t v
  let value t = Atomic.get t
end

module Histogram = struct
  type t = hist

  let make name = intern histograms hist_make name
  let observe h v = if Atomic.get on then locked (fun () -> hist_observe h v)
  let count h = h.h_count
  let sum h = h.h_sum
  let mean h = if h.h_count = 0 then nan else h.h_sum /. Float.of_int h.h_count
  let min_value h = h.h_min
  let max_value h = h.h_max
  let buckets = hist_buckets

  let percentile h q =
    if h.h_count = 0 then nan
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      (* Rank in [1 .. count]; walk the cumulative bucket counts and
         report the bucket's upper bound, clamped into the observed
         [min, max] range so tails stay honest despite the log-2 bucket
         granularity. *)
      let rank = Float.to_int (Float.ceil (q *. Float.of_int h.h_count)) in
      let rank = if rank < 1 then 1 else rank in
      let rec walk i seen =
        if i >= num_buckets then h.h_max
        else begin
          let seen = seen + h.h_buckets.(i) in
          if seen >= rank then bucket_upper i else walk (i + 1) seen
        end
      in
      let v = walk 0 0 in
      if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
    end
end

(* --- spans --- *)

let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    let h = intern spans hist_make name in
    (* Allocation companion gauge: bytes allocated on the calling
       domain while the span was open (work fanned out to pool domains
       is not counted — Gc.allocated_bytes is per-domain).  Lets
       `zebra stats` and the BENCH files spot allocation regressions in
       the prover phases (e.g. snark.prove.fft.alloc_bytes). *)
    let g = intern gauges (fun _ -> Atomic.make 0.) (name ^ ".alloc_bytes") in
    let stack = Domain.DLS.get span_stack in
    stack := name :: !stack;
    let b0 = Gc.allocated_bytes () in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        Atomic.set g (Gc.allocated_bytes () -. b0);
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        locked (fun () -> hist_observe h dt))
      f
  end

let current_span () =
  match !(Domain.DLS.get span_stack) with [] -> None | name :: _ -> Some name

let span_stats name =
  locked @@ fun () ->
  Option.map (fun h -> (h.h_count, h.h_sum)) (Hashtbl.find_opt spans name)

let span_names () =
  locked @@ fun () ->
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) spans [])

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
      Hashtbl.iter (fun _ h -> hist_reset h) histograms;
      Hashtbl.reset spans);
  Domain.DLS.get span_stack := []

(* --- export --- *)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let hist_json h =
  let opt f = if h.h_count = 0 then Json.Null else Json.Num f in
  Json.Obj
    [
      ("count", Json.Num (Float.of_int h.h_count));
      ("total", Json.Num h.h_sum);
      ("mean", opt (h.h_sum /. Float.of_int (max 1 h.h_count)));
      ("min", opt h.h_min);
      ("max", opt h.h_max);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, n) -> Json.List [ Json.Num le; Json.Num (Float.of_int n) ])
             (hist_buckets h)) );
    ]

let snapshot () =
  locked @@ fun () ->
  Json.Obj
    [
      ("enabled", Json.Bool (Atomic.get on));
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, c) -> (k, Json.Num (Float.of_int (Atomic.get c))))
             (sorted_bindings counters)) );
      ( "gauges",
        Json.Obj
          (List.map (fun (k, g) -> (k, Json.Num (Atomic.get g))) (sorted_bindings gauges)) );
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings histograms)));
      ("spans", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings spans)));
    ]

let to_json_string () = Json.to_string (snapshot ())

let counters_with_prefix prefix =
  let plen = String.length prefix in
  locked @@ fun () ->
  List.filter_map
    (fun (k, c) ->
      if String.length k >= plen && String.sub k 0 plen = prefix then
        Some (k, Atomic.get c)
      else None)
    (sorted_bindings counters)

(* --- pretty tree --- *)

let pretty_seconds s =
  if Float.is_nan s then "-"
  else if s >= 1. then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let render_tree () =
  (* One row per metric: the dotted name split into segments, plus a
     summary.  Rows sort lexicographically, so a child prints right under
     its parent; missing intermediate nodes get bare label lines. *)
  let rows =
    locked @@ fun () ->
    List.concat
      [
        List.map
          (fun (k, c) -> (k, Printf.sprintf "counter    %d" (Atomic.get c)))
          (sorted_bindings counters);
        List.map
          (fun (k, g) -> (k, Printf.sprintf "gauge      %g" (Atomic.get g)))
          (sorted_bindings gauges);
        List.map
          (fun (k, h) ->
            ( k,
              Printf.sprintf "histogram  count=%d sum=%g mean=%g" h.h_count h.h_sum
                (if h.h_count = 0 then nan else h.h_sum /. Float.of_int h.h_count) ))
          (sorted_bindings histograms);
        List.map
          (fun (k, h) ->
            ( k,
              Printf.sprintf "span       count=%d total=%s mean=%s max=%s" h.h_count
                (pretty_seconds h.h_sum)
                (pretty_seconds (if h.h_count = 0 then nan else h.h_sum /. Float.of_int h.h_count))
                (pretty_seconds h.h_max) ))
          (sorted_bindings spans);
      ]
  in
  let rows =
    List.sort
      (fun ((a : string list), _) (b, _) -> compare a b)
      (List.map (fun (k, s) -> (String.split_on_char '.' k, s)) rows)
  in
  let buf = Buffer.create 1024 in
  let printed : (string list, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec ensure_parents prefix = function
    | [] | [ _ ] -> ()
    | seg :: rest ->
      let path = prefix @ [ seg ] in
      if not (Hashtbl.mem printed path) then begin
        Hashtbl.replace printed path ();
        Buffer.add_string buf
          (Printf.sprintf "%s%s\n" (String.make (2 * List.length prefix) ' ') seg)
      end;
      ensure_parents path rest
  in
  List.iter
    (fun (segs, summary) ->
      ensure_parents [] segs;
      Hashtbl.replace printed segs ();
      let depth = List.length segs - 1 in
      let label = List.nth segs depth in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %s\n" (String.make (2 * depth) ' ')
           (max 1 (28 - (2 * depth)))
           label summary))
    rows;
  if rows = [] then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf
