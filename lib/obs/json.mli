(** A minimal JSON value type with a renderer and a strict parser.

    Stdlib-only, just enough for the observability snapshot format
    ({!Obs.snapshot}) and its consumers (benches writing [BENCH_obs.json],
    tests round-tripping it).  Object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** [member key json] — object member lookup ([None] on non-objects). *)
val member : string -> t -> t option

(** Structural equality (numbers compared exactly). *)
val equal : t -> t -> bool
