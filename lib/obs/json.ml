type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- rendering --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips through float_of_string. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    (* JSON has no NaN/infinity literal; degrade to null. *)
    if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string f)
  | Str s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* --- parsing --- *)

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let expect_lit c lit value =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else error c (Printf.sprintf "expected %s" lit)

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
  let s = String.sub c.src c.pos 4 in
  c.pos <- c.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some n -> n
  | None -> error c "bad \\u escape"

(* Encode a unicode scalar as UTF-8 (enough for \uXXXX escapes). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
      | Some 'u' ->
        advance c;
        add_utf8 buf (parse_hex4 c);
        loop ()
      | _ -> error c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with Some f -> Num f | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> expect_lit c "null" Null
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let member () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false
