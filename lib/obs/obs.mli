(** Process-wide observability: counters, gauges, log-bucket latency
    histograms and nestable phase spans behind one global registry.

    Everything is off by default ({!enabled} is [false]): instrumented hot
    paths pay a single boolean test and nothing else, so shipping the hooks
    costs the benchmarks nothing.  Benches, the [zebra stats] subcommand and
    tests flip {!set_enabled}, drive a workload, and read the registry back
    as a JSON snapshot ({!to_json_string}, written to [BENCH_obs.json]) or a
    human metric tree ({!render_tree}).

    {b Naming convention}: dotted lowercase paths mirroring the subsystem —
    [snark.prove.fft], [chain.mine.exec], [protocol.reward].  The dots are
    what {!render_tree} folds into a tree, so a stage span should extend its
    parent's name (the span stack is tracked but names stay explicit).

    Metric creation ([make]) is idempotent — two [make "x"] calls share one
    cell — and allowed while disabled; only {e recording} is gated.

    {b Domain-safety}: every operation here may be called from any domain
    (the parallel pool's workers execute instrumented code).  Counters,
    gauges and the enable flag are atomics; histogram observations,
    interning and whole-registry reads ([snapshot], [reset],
    [render_tree]) serialise on one internal mutex; the span {e stack} is
    domain-local, so [with_span] nesting and {!current_span} are per
    domain while the recorded durations aggregate globally. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Zero every counter/gauge/histogram and drop all recorded spans.
    Registered metrics stay registered. *)
val reset : unit -> unit

module Counter : sig
  type t

  val make : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** Fixed log-bucket histograms: bucket [i] holds observations in
    [(base * 2^(i-1), base * 2^i]] with [base = 1e-6] (so for latencies in
    seconds the buckets are 1us, 2us, 4us, ... ~= 1 hour).  Exact count,
    sum, min and max are kept alongside the buckets. *)
module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  (** [nan] while empty. *)
  val min_value : t -> float

  val max_value : t -> float

  (** Non-empty buckets only, as [(upper_bound, count)], ascending. *)
  val buckets : t -> (float * int) list

  (** [percentile h q] for [q] in [0, 1] (e.g. [0.5], [0.99]):
      upper bound of the bucket holding the rank-[ceil (q * count)]
      observation, clamped to the observed [min, max].  Resolution is the
      power-of-two bucket width.  [nan] while empty. *)
  val percentile : t -> float -> float
end

(** {1 Phase spans}

    A span times one region and records the duration into a histogram named
    by the span.  Spans nest: the innermost active name is visible via
    {!current_span} (used by tests and debug output).  The duration is
    recorded even when the region raises.

    Each span also maintains a companion gauge [<name>.alloc_bytes]: the
    [Gc.allocated_bytes] delta of the {e calling domain} over the most
    recent execution of the span (allocation on pool worker domains is
    not attributed).  This makes allocation regressions in hot phases
    (e.g. [snark.prove.fft.alloc_bytes]) visible in [zebra stats] and
    the BENCH exports. *)

val with_span : string -> (unit -> 'a) -> 'a

(** Innermost active span, if observability is enabled and a span is open. *)
val current_span : unit -> string option

(** [(count, total_seconds)] recorded under a span name, if any. *)
val span_stats : string -> (int * float) option

(** All span names recorded so far, sorted. *)
val span_names : unit -> string list

(** {1 Export} *)

(** The whole registry as
    [{"enabled": ..., "counters": {...}, "gauges": {...},
      "histograms": {...}, "spans": {...}}] where histogram/span entries
    carry [count], [total], [mean], [min], [max] and [buckets]
    (seconds for spans). *)
val snapshot : unit -> Json.t

val to_json_string : unit -> string

(** All registered counters whose dotted name starts with [prefix], with
    their current values, sorted by name — e.g.
    [counters_with_prefix "faults."] for a fault-injection summary line. *)
val counters_with_prefix : string -> (string * int) list

(** Pretty metric tree grouped on the dots of the naming convention. *)
val render_tree : unit -> string
