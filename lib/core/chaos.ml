module Network = Zebra_chain.Network
module Sha256 = Zebra_hashing.Sha256
module Faults = Zebra_faults.Faults
module Store = Zebra_store.Store

type settlement =
  | Rewarded of int array
  | Finalized
  | Aborted of Protocol.error

type outcome = {
  settlement : settlement;
  final_height : int;
  state_root : string;
  replicas_agree : bool;
  supply_conserved : bool;
  store_fetch_attempts : int;
  store_recovered : bool;
  trace : string list;
}

let settlement_to_string = function
  | Rewarded rewards ->
    Printf.sprintf "rewarded [%s]"
      (String.concat ";" (List.map string_of_int (Array.to_list rewards)))
  | Finalized -> "finalized (timeout fallback)"
  | Aborted e -> "aborted: " ^ Protocol.error_to_string e

let outcome_to_string o =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "fault trace (%d events):\n" (List.length o.trace));
  List.iter (fun line -> Buffer.add_string b ("  " ^ line ^ "\n")) o.trace;
  Buffer.add_string b (Printf.sprintf "settlement: %s\n" (settlement_to_string o.settlement));
  Buffer.add_string b (Printf.sprintf "final height: %d\n" o.final_height);
  Buffer.add_string b (Printf.sprintf "state root: %s\n" o.state_root);
  Buffer.add_string b (Printf.sprintf "replicas agree: %b\n" o.replicas_agree);
  Buffer.add_string b (Printf.sprintf "supply conserved: %b\n" o.supply_conserved);
  Buffer.add_string b
    (Printf.sprintf "store fetch: %s after %d attempt(s)"
       (if o.store_recovered then "recovered" else "NOT recovered")
       o.store_fetch_attempts);
  Buffer.contents b

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* One fetch of the task blob, healing a lost/corrupted chunk by
   re-[put]ting the content (what a provider re-seeding the CAS does).
   Bounded like every other retry loop in the chaos layer. *)
let fetch_with_heal store ~blob ~digest ~max_attempts =
  let rec go attempts =
    match Store.get store digest with
    | Some bytes ->
      assert (Bytes.equal bytes blob);
      (attempts, true)
    | None ->
      if attempts >= max_attempts then (attempts, false)
      else begin
        ignore (Store.put store blob);
        go (attempts + 1)
      end
  in
  go 1

let run ?(n = 3) ?(budget = 60) ?(answer_window = 20) ?(instruct_window = 12)
    ?(retry = Protocol.default_retry) ~seed ~plan () =
  let faults = Faults.create ~seed plan in
  let sys = Protocol.create_system ~seed ~retry () in
  let supply0 = Network.total_supply sys.Protocol.net in
  (* The task's off-chain payload: a multi-chunk blob whose root hash is
     anchored in the contract's [data_digest]. *)
  let store = Store.create ~chunk_size:64 () in
  let blob = Protocol.random_bytes sys 300 in
  let digest = Store.put store blob in
  Faults.attach faults sys.Protocol.net;
  Faults.attach_store faults store;
  let spec = Faults.spec faults in
  let rec enroll_many acc k =
    if k = 0 then Ok (List.rev acc)
    else
      let* id = Protocol.enroll_r sys in
      enroll_many (id :: acc) (k - 1)
  in
  let round () =
    let* requester = Protocol.enroll_r sys in
    let* workers = enroll_many [] n in
    let* task =
      Protocol.publish_task_r sys ~requester
        ~policy:(Policy.Majority { choices = 4 })
        ~n ~budget ~answer_window ~instruct_window ~data_digest:digest ()
    in
    (* Workers fetch the payload off-chain before answering. *)
    let store_fetch_attempts, store_recovered =
      fetch_with_heal store ~blob ~digest ~max_attempts:8
    in
    let answering =
      if spec.Faults.withhold_worker && n > 1 then
        List.filteri (fun i _ -> i < n - 1) workers
      else workers
    in
    let* _wallets =
      Protocol.submit_answers_r sys ~task:task.Requester.contract
        ~workers:(List.map (fun w -> (w, 1)) answering)
    in
    (* With a withheld answer the collection never fills, so the requester
       may only instruct once the answer deadline passes. *)
    let* () =
      if List.length answering < n then
        Protocol.mine_to_r sys
          ~height:(task.Requester.params.Task_contract.answer_deadline + 1)
      else Ok ()
    in
    if spec.Faults.no_instruction then
      let* () = Protocol.finalize_r sys task in
      Ok (Finalized, store_fetch_attempts, store_recovered)
    else
      let* rewards = Protocol.reward_r sys task in
      Ok (Rewarded rewards, store_fetch_attempts, store_recovered)
  in
  let settlement, store_fetch_attempts, store_recovered =
    match round () with
    | Ok (s, a, r) -> (s, a, r)
    | Error e -> (Aborted e, 0, false)
  in
  (* End of run: bring every crashed replica back and check the global
     invariants a chaos plan must never break. *)
  let settlement =
    match Faults.finish faults sys.Protocol.net with
    | () -> settlement
    | exception Network.Consensus_failure why -> (
      match settlement with
      | Aborted _ -> settlement
      | _ -> Aborted (Protocol.Node_down why))
  in
  Faults.detach sys.Protocol.net;
  Faults.detach_store store;
  let net = sys.Protocol.net in
  let root = Network.state_root net in
  let replicas_agree =
    let agree = ref true in
    for node = 0 to Network.num_nodes net - 1 do
      agree :=
        !agree
        && Network.node_up net node
        && Bytes.equal (Network.node_state_root net node) root
    done;
    !agree
  in
  {
    settlement;
    final_height = Network.height net;
    state_root = Sha256.to_hex root;
    replicas_agree;
    supply_conserved = Network.total_supply net = supply0;
    store_fetch_attempts;
    store_recovered;
    trace = Faults.trace faults;
  }
