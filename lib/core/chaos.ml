module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Ra = Zebra_anonauth.Ra
module Sha256 = Zebra_hashing.Sha256
module Faults = Zebra_faults.Faults
module Store = Zebra_store.Store
module Indexer = Zebra_index.Indexer

type settlement =
  | Rewarded of int array
  | Finalized
  | Aborted of Protocol.error

type outcome = {
  settlement : settlement;
  final_height : int;
  state_root : string;
  replicas_agree : bool;
  supply_conserved : bool;
  store_fetch_attempts : int;
  store_recovered : bool;
  indexer_events : int;
  indexer_reorgs : int;
  indexer_agrees : bool;
  indexer_error : string option;
  trace : string list;
}

let settlement_to_string = function
  | Rewarded rewards ->
    Printf.sprintf "rewarded [%s]"
      (String.concat ";" (List.map string_of_int (Array.to_list rewards)))
  | Finalized -> "finalized (timeout fallback)"
  | Aborted e -> "aborted: " ^ Protocol.error_to_string e

let outcome_to_string o =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "fault trace (%d events):\n" (List.length o.trace));
  List.iter (fun line -> Buffer.add_string b ("  " ^ line ^ "\n")) o.trace;
  Buffer.add_string b (Printf.sprintf "settlement: %s\n" (settlement_to_string o.settlement));
  Buffer.add_string b (Printf.sprintf "final height: %d\n" o.final_height);
  Buffer.add_string b (Printf.sprintf "state root: %s\n" o.state_root);
  Buffer.add_string b (Printf.sprintf "replicas agree: %b\n" o.replicas_agree);
  Buffer.add_string b (Printf.sprintf "supply conserved: %b\n" o.supply_conserved);
  Buffer.add_string b
    (Printf.sprintf "store fetch: %s after %d attempt(s)\n"
       (if o.store_recovered then "recovered" else "NOT recovered")
       o.store_fetch_attempts);
  Buffer.add_string b
    (Printf.sprintf "indexer: %d event(s), %d reorg(s)\n" o.indexer_events o.indexer_reorgs);
  Buffer.add_string b
    (match o.indexer_error with
    | None -> Printf.sprintf "indexer agrees with contract state: %b" o.indexer_agrees
    | Some why -> Printf.sprintf "indexer agrees with contract state: false (%s)" why);
  Buffer.contents b

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* One fetch of the task blob, healing a lost/corrupted chunk by
   re-[put]ting the content (what a provider re-seeding the CAS does).
   Bounded like every other retry loop in the chaos layer. *)
let fetch_with_heal store ~blob ~digest ~max_attempts =
  let rec go attempts =
    match Store.get store digest with
    | Some bytes ->
      assert (Bytes.equal bytes blob);
      (attempts, true)
    | None ->
      if attempts >= max_attempts then (attempts, false)
      else begin
        ignore (Store.put store blob);
        go (attempts + 1)
      end
  in
  go 1

let run ?(n = 3) ?(budget = 60) ?(answer_window = 20) ?(instruct_window = 12)
    ?(retry = Protocol.default_retry) ~seed ~plan () =
  let faults = Faults.create ~seed plan in
  let sys = Protocol.create_system ~seed ~retry () in
  let supply0 = Network.total_supply sys.Protocol.net in
  (* The task's off-chain payload: a multi-chunk blob whose root hash is
     anchored in the contract's [data_digest]. *)
  let store = Store.create ~chunk_size:64 () in
  let blob = Protocol.random_bytes sys 300 in
  let digest = Store.put store blob in
  Faults.attach faults sys.Protocol.net;
  Faults.attach_store faults store;
  let idx = Indexer.create () in
  let spec = Faults.spec faults in
  let rec enroll_many acc k =
    if k = 0 then Ok (List.rev acc)
    else
      let* id = Protocol.enroll_r sys in
      enroll_many (id :: acc) (k - 1)
  in
  let round () =
    let* requester = Protocol.enroll_r sys in
    let* workers = enroll_many [] n in
    let* task =
      Protocol.publish_task_r sys ~requester
        ~policy:(Policy.Majority { choices = 4 })
        ~n ~budget ~answer_window ~instruct_window ~data_digest:digest ()
    in
    (* Mid-run incremental sync: pins the indexer's cursor mid-chain, so a
       later partition heal or byzantine fork that abandons these blocks
       is detected as a reorg (not silently replayed). *)
    ignore (Indexer.sync idx sys.Protocol.net);
    (* Workers fetch the payload off-chain before answering. *)
    let store_fetch_attempts, store_recovered =
      fetch_with_heal store ~blob ~digest ~max_attempts:8
    in
    let answering =
      let indexed = List.mapi (fun i w -> (i, w)) workers in
      if spec.Faults.withhold_worker && n > 1 then
        List.filter (fun (i, _) -> i < n - 1) indexed
      else indexed
    in
    let m = List.length answering in
    (* The colluding pool: the last [collude] answering workers submit an
       identical deviant answer (3 against the honest 1), attacking the
       majority reward policy.  Whether they sway it depends on whether
       they outnumber the honest answers — the settlement records it. *)
    let answer_of pos =
      if spec.Faults.collude > 0 && pos >= m - spec.Faults.collude then 3 else 1
    in
    let with_answers = List.mapi (fun pos (i, w) -> (i, w, answer_of pos)) answering in
    let victims =
      List.sort_uniq compare
        (List.filter_map
           (fun (w : Faults.eclipse_window) ->
             if List.exists (fun (i, _, _) -> i = w.Faults.victim) with_answers then
               Some w.Faults.victim
             else None)
           spec.Faults.eclipses)
    in
    let eclipsed, normal = List.partition (fun (i, _, _) -> List.mem i victims) with_answers in
    (* Eclipse victims broadcast themselves (the scenario driver plays the
       victim's client): their one-task wallet is registered with the
       fault controller first, so the adversary holds every transaction
       from that sender for the whole window. *)
    let submit_eclipsed (i, (id : Protocol.identity), answer) =
      let storage = Protocol.task_storage sys task.Requester.contract in
      let wallet = Wallet.generate ~random_bytes:(Protocol.random_bytes sys) () in
      Faults.set_eclipsed faults ~victim:i ~sender_hex:(Address.to_hex (Wallet.address wallet));
      let tx =
        Worker.submit_tx ~random_bytes:(Protocol.random_bytes sys) ~cpla:sys.Protocol.cpla
          ~storage ~contract:task.Requester.contract ~wallet ~key:id.Protocol.key
          ~cert_index:id.Protocol.cert_index
          ~ra_path:(Ra.path sys.Protocol.ra id.Protocol.cert_index)
          ~answer ~nonce:0
      in
      match Network.submit_r sys.Protocol.net tx with
      | Ok () -> Ok (i, tx)
      | Error e ->
        Error
          (Protocol.Submission_rejected { worker = i; reason = Network.submit_error_to_string e })
    in
    let rec submit_all acc = function
      | [] -> Ok (List.rev acc)
      | e :: tl -> (
        match submit_eclipsed e with Ok x -> submit_all (x :: acc) tl | Error err -> Error err)
    in
    let* eclipse_txs = submit_all [] eclipsed in
    let* _wallets =
      if normal = [] then Ok []
      else
        Protocol.submit_answers_r sys ~task:task.Requester.contract
          ~workers:(List.map (fun (_i, w, a) -> (w, a)) normal)
    in
    (* Wait out the eclipse: mine until every held submission lands, or
       report a typed error if the window outlives the answer deadline. *)
    let* () =
      if eclipse_txs = [] then Ok ()
      else begin
        let deadline = task.Requester.params.Task_contract.answer_deadline in
        let receipt (_, tx) = Network.receipt sys.Protocol.net (Tx.hash tx) in
        let rec wait () =
          match
            List.find_map
              (fun ((i, _) as e) ->
                match receipt e with
                | Some { State.status = State.Failed reason; _ } ->
                  Some (Protocol.Submission_rejected { worker = i; reason })
                | _ -> None)
              eclipse_txs
          with
          | Some e -> Error e
          | None -> (
            match List.filter (fun e -> receipt e = None) eclipse_txs with
            | [] -> Ok ()
            | missing ->
              if Network.height sys.Protocol.net > deadline then
                Error (Protocol.Timed_out { phase = "eclipse"; attempts = List.length missing })
              else
                let* () =
                  Protocol.mine_to_r sys ~height:(Network.height sys.Protocol.net + 1)
                in
                wait ())
        in
        wait ()
      end
    in
    ignore (Indexer.sync idx sys.Protocol.net);
    (* With a withheld answer the collection never fills, so the requester
       may only instruct once the answer deadline passes. *)
    let* () =
      if m < n then
        Protocol.mine_to_r sys
          ~height:(task.Requester.params.Task_contract.answer_deadline + 1)
      else Ok ()
    in
    if spec.Faults.no_instruction then
      let* () = Protocol.finalize_r sys task in
      Ok (Finalized, store_fetch_attempts, store_recovered)
    else
      let* rewards = Protocol.reward_r sys task in
      Ok (Rewarded rewards, store_fetch_attempts, store_recovered)
  in
  let settlement, store_fetch_attempts, store_recovered =
    match round () with
    | Ok (s, a, r) -> (s, a, r)
    | Error e -> (Aborted e, 0, false)
  in
  (* End of run: bring every crashed replica back and check the global
     invariants a chaos plan must never break. *)
  let settlement =
    match Faults.finish faults sys.Protocol.net with
    | () -> settlement
    | exception Network.Consensus_failure why -> (
      match settlement with
      | Aborted _ -> settlement
      | _ -> Aborted (Protocol.Node_down why))
  in
  Faults.detach sys.Protocol.net;
  Faults.detach_store store;
  let net = sys.Protocol.net in
  (* A heal-time reorg may have requeued orphaned transactions; mine them
     out (fault-free now) so the settled state is fully canonical before
     the invariants are judged. *)
  let rec drain k =
    if k > 0 && Network.pending net > 0 then begin
      ignore (Network.mine net);
      drain (k - 1)
    end
  in
  let settlement =
    match drain 4 with
    | () -> settlement
    | exception Network.Consensus_failure why -> (
      match settlement with
      | Aborted _ -> settlement
      | _ -> Aborted (Protocol.Node_down why))
  in
  ignore (Indexer.sync idx net);
  let indexer_check = Indexer.check idx net in
  let root = Network.state_root net in
  let replicas_agree =
    let agree = ref true in
    for node = 0 to Network.num_nodes net - 1 do
      agree :=
        !agree
        && Network.node_up net node
        && Bytes.equal (Network.node_state_root net node) root
    done;
    !agree
  in
  {
    settlement;
    final_height = Network.height net;
    state_root = Sha256.to_hex root;
    replicas_agree;
    supply_conserved = Network.total_supply net = supply0;
    store_fetch_attempts;
    store_recovered;
    indexer_events = Indexer.event_count idx;
    indexer_reorgs = Indexer.reorg_count idx;
    indexer_agrees = (match indexer_check with Ok () -> true | Error _ -> false);
    indexer_error = (match indexer_check with Ok () -> None | Error why -> Some why);
    trace = Faults.trace faults;
  }
