(* Re-export so protocol code can say [Zebralancer.Secret] (the "Zebra_core"
   of the design docs) without depending on the leaf library directly. *)
include Zebra_secret.Secret
