(** Marketplace load harness: N requesters and M workers drive many CPLA
    tasks end-to-end, concurrently, against one simulated chain.

    Each task is a pipeline — fund the requester's one-task wallet,
    publish the contract, collect [workers_per_task] anonymous
    submissions, send the proved reward instruction — and the scheduler
    keeps up to [inflight] tasks in flight, mining one block per round, so
    every block mixes phases from unrelated tasks.  Phases carry distinct
    inclusion fees (funding 3, instruct 2, publish 1, submissions 0) to
    exercise the fee-ordered mempool, and instructions declare their payee
    footprints so the sharded parallel executor can settle unrelated
    tasks concurrently.

    All randomness comes from the system seed, so everything except the
    wall-clock timings — roots, block/tx counts, failures — is
    deterministic and must be identical at any [ZEBRA_DOMAINS] (the CI
    load-smoke gate diffs exactly that).

    Settle latency (task publish broadcast → reward receipt) is observed
    into the [load.settle] {!Zebra_obs.Obs.Histogram}; completions and
    failures bump [load.tasks.completed] / [load.tasks.failed]. *)

type config = {
  requesters : int;  (** size of the requester identity pool *)
  workers : int;  (** size of the worker identity pool *)
  tasks : int;  (** total tasks to run *)
  workers_per_task : int;  (** submissions per task (the contract arity) *)
  inflight : int;  (** max tasks concurrently in the pipeline *)
  budget : int;  (** per-task budget *)
  num_nodes : int;  (** chain replicas *)
  seed : string;
  verify_replay : bool;
      (** additionally re-execute the whole chain serially from genesis
          and check the roots match (slow — doubles the run) *)
}

(** 4 requesters, 8 workers, 20 tasks of 2 submissions, 8 in flight,
    budget 60, 3 nodes, no replay verification. *)
val default_config : config

type report = {
  tasks_completed : int;
  tasks_failed : int;
  failures : (int * string) list;  (** (task index, reason), ascending *)
  blocks : int;
  txs : int;
  conflict_retries : int;
      (** transactions that escaped their declared footprint and were
          re-executed serially (0 when every footprint is declared) *)
  elapsed_s : float;
  tasks_per_sec : float;
  txs_per_sec : float;
  settle_p50_s : float;  (** from the [load.settle] histogram *)
  settle_p99_s : float;
  state_root : string;  (** final root, hex *)
  replicas_agree : bool;
  supply_conserved : bool;
  replay_matches : bool option;  (** [None] unless [verify_replay] *)
  indexer_agrees : bool;
      (** the event-sourced {!Zebra_index.Indexer} mirror is byte-identical
          to the chain's contract state after the run *)
}

(** [run ~config ()] drives the whole workload and reports.  Raises only
    on configuration errors or harness bugs — per-task on-chain failures
    land in [failures]. *)
val run : ?config:config -> unit -> report

(** The report's deterministic facts, one per line — byte-identical across
    [ZEBRA_DOMAINS] settings. *)
val render_deterministic : report -> string

(** The wall-clock metrics, one ["# "]-prefixed line each. *)
val render_timing : report -> string

(** No failures and every invariant held. *)
val ok : report -> bool
