(** The reward-instruction circuit: the paper's NP language

    L = { (R, P) | exists esk :  A_j = Dec(esk, C_j)  for all j
                   /\  R_j = R(A_j; A_1..A_n, tau)
                   /\  pair(esk, epk) = 1 }

    proved by the requester after decrypting the submissions off-chain, and
    verified by the task contract on-chain — so the contract enforces the
    promised policy without ever seeing an answer.

    Public inputs (in order): [epk; rho; c1_1; c2_1; ...; c1_n; c2_n;
    R_1; ...; R_n] where [rho = tau / n] is the per-correct-answer reward
    (integer division done by the contract).  Witness: the bits of [esk]
    and the decrypted answers.

    Missing slots are the sentinel ciphertext (0,0); the circuit pins their
    plaintext to 0 (an invalid answer encoding), which can never match the
    majority, so their reward is forced to 0.

    Supported policies: {!Policy.Majority}, {!Policy.Majority_threshold}
    and {!Policy.Reverse_auction}.

    Hash-composition note: unlike CPLA and the reputation link circuit,
    the reward statement contains {e no} hashing — the policy tails are
    built from ElGamal decryption, equality, comparison and selection
    gadgets only, so the Poseidon/MiMC choice does not change the
    synthesised structure.  The composition is still accepted, recorded
    and keyed into the cache id ([.../h=poseidon]) so registries and key
    caches treat every deployed circuit uniformly (keypairs never cross
    arms). *)

type t

(** [setup ~random_bytes ~policy ~n] compiles the circuit for a task
    collecting [n] answers and runs the SNARK setup.  Executed off-line by
    the requester before publishing (paper Section VI,
    "establishments of zk-SNARKs").  [?composition] (default
    {!Zebra_hashcomp.Hash_composition.default}) is recorded for registry
    bookkeeping; see the hash-composition note above. *)
val setup :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  random_bytes:(int -> bytes) ->
  policy:Policy.t ->
  n:int ->
  unit ->
  t

(** [setup_cached cache ~seed ~policy ~n] — {!setup} through a keypair
    cache.  The cache key is derived from the policy encoding, [n], the
    hash composition and [seed] (id shape
    [reward/<policy-sha256>/n=<n>/h=<composition>]); on a hit, both
    circuit synthesis and the trusted setup are skipped.  Setup randomness
    comes from [seed] alone, so hit and miss produce byte-identical keys
    (see {!Zebra_snark.Snark.Keycache}).
    @raise Invalid_argument when [n <= 0]. *)
val setup_cached :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  Zebra_snark.Snark.Keycache.t ->
  seed:string ->
  policy:Policy.t ->
  n:int ->
  t

(** The circuit synthesised at the setup's dummy assignment — the structure
    {!setup} compiles, exposed for static analysis ([Zebra_lint]).
    @raise Invalid_argument when [n <= 0]. *)
val constraint_system : policy:Policy.t -> n:int -> Zebra_r1cs.Cs.t

val policy : t -> Policy.t
val n : t -> int

(** The hash composition this instance was registered under (bookkeeping
    only — the reward statement is hash-free). *)
val composition : t -> Zebra_hashcomp.Hash_composition.t

val num_constraints : t -> int
val vk_bytes : t -> bytes

(** Canary bytes of the setup trapdoor (see
    {!Zebra_snark.Snark.trapdoor_canary}) — the ZL2xx lint scans every
    persisted task artifact for them. *)
val trapdoor_canary : t -> bytes

(** The canonical public-input vector; the task contract recomputes this
    from its own storage, so a lying requester cannot substitute inputs. *)
val public_inputs :
  epk:Zebra_elgamal.Elgamal.public_key ->
  rho:int ->
  cts:Zebra_elgamal.Elgamal.ciphertext array ->
  rewards:int array ->
  Fp.t array

(** [prove ~random_bytes t ~esk ~rho ~cts ~rewards].  The prover decrypts
    [cts] itself (missing slots allowed); [rho] must equal the contract's
    [rho_of].  If [rewards] does not match the policy the resulting proof
    simply fails verification. *)
val prove :
  random_bytes:(int -> bytes) ->
  t ->
  esk:Zebra_elgamal.Elgamal.secret_key ->
  rho:int ->
  cts:Zebra_elgamal.Elgamal.ciphertext array ->
  rewards:int array ->
  Zebra_snark.Snark.proof

(** [rho_of ~policy ~budget ~n] — the public unit-reward input: [tau/n]
    for majority policies, [tau/winners] for auctions. *)
val rho_of : policy:Policy.t -> budget:int -> n:int -> int

(** Stateless verification from a serialised key — the contract's path.
    False on malformed [vk_bytes]. *)
val verify :
  vk_bytes:bytes ->
  epk:Zebra_elgamal.Elgamal.public_key ->
  rho:int ->
  cts:Zebra_elgamal.Elgamal.ciphertext array ->
  rewards:int array ->
  Zebra_snark.Snark.proof ->
  bool
