module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Cpla = Zebra_anonauth.Cpla
module Ra = Zebra_anonauth.Ra
module Source = Zebra_rng.Source
module Obs = Zebra_obs.Obs
module Parallel = Zebra_parallel.Parallel

type retry_policy = { max_attempts : int; backoff_blocks : int }

let default_retry = { max_attempts = 3; backoff_blocks = 2 }

type system = {
  net : Network.t;
  cpla : Cpla.params;
  ra : Ra.t;
  ra_contract : Address.t;
  faucet : Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
  rng : Source.t;
  setup_seed : string;
  keycache : Zebra_snark.Snark.Keycache.t;
  mutable retry : retry_policy;
}

type identity = { key : Cpla.user_key; cert_index : int }

type error =
  | Deploy_rejected of string
  | Submission_rejected of { worker : int; reason : string }
  | Instruction_rejected of string
  | Timed_out of { phase : string; attempts : int }
  | Node_down of string

let error_to_string = function
  | Deploy_rejected reason -> "task deployment rejected: " ^ reason
  | Submission_rejected { worker; reason } ->
    Printf.sprintf "submission of worker %d rejected: %s" worker reason
  | Instruction_rejected reason -> "reward instruction rejected: " ^ reason
  | Timed_out { phase; attempts } ->
    Printf.sprintf "%s timed out: transaction not mined after %d broadcast(s)" phase attempts
  | Node_down reason -> "replica failure: " ^ reason

let random_bytes sys n = Source.bytes sys.rng n

(* Phase metrics (inert until [Obs.set_enabled true]). *)
let m_enrolled = Obs.Counter.make "protocol.enrolled"
let m_tasks = Obs.Counter.make "protocol.tasks"
let m_answers = Obs.Counter.make "protocol.answers"
let m_audited = Obs.Counter.make "protocol.audit.attestations"
let m_resubmits = Obs.Counter.make "protocol.retry.resubmits"
let m_recovered = Obs.Counter.make "protocol.retry.recovered"
let m_timeouts = Obs.Counter.make "protocol.retry.timeouts"
let m_node_down = Obs.Counter.make "protocol.retry.node_down"

let faucet_supply = 1_000_000_000

let set_retry sys retry =
  if retry.max_attempts < 1 then invalid_arg "Protocol.set_retry: max_attempts must be >= 1";
  if retry.backoff_blocks < 0 then invalid_arg "Protocol.set_retry: backoff_blocks must be >= 0";
  sys.retry <- retry

(* Mines the pending block and returns the receipt of [tx]. *)
let mine_for sys tx =
  ignore (Network.mine sys.net);
  match Network.receipt sys.net (Tx.hash tx) with
  | Some r -> r
  | None -> failwith "Protocol: transaction was not mined"

let expect_ok what (r : State.receipt) =
  match r.State.status with
  | State.Ok addr -> addr
  | State.Failed e -> failwith (Printf.sprintf "Protocol: %s failed: %s" what e)

(* Mine one block, mapping a replica divergence (a crashed node whose
   re-sync failed, or diverging live replicas) to the typed error —
   permanent faults retries cannot ride out. *)
let mine_r sys =
  match Network.mine sys.net with
  | (_ : State.receipt list) -> Ok ()
  | exception Network.Consensus_failure why ->
    Obs.Counter.incr m_node_down;
    Error (Node_down why)

(* [submit_confirm_r sys ~phase tx] broadcasts [tx] and mines until its
   receipt appears: exactly one block on the happy path.  When the receipt
   is missing (the broadcast was dropped, or the transaction is being held
   back by a delay fault) it waits up to [retry.backoff_blocks] further
   blocks — the synchrony bound — then rebroadcasts, up to
   [retry.max_attempts] broadcasts in total before [Timed_out].
   Rebroadcasting a transaction whose delayed copy later arrives is safe:
   the duplicate fails nonce replay and the first receipt is canonical. *)
let submit_confirm_r sys ~phase tx =
  let hash = Tx.hash tx in
  let waited = ref false in
  (* Receipt check first, so the happy path mines no extra blocks. *)
  let rec backoff k =
    match Network.receipt sys.net hash with
    | Some r -> Some (Ok r)
    | None ->
      if k = 0 then None
      else begin
        waited := true;
        match mine_r sys with
        | Error e -> Some (Error e)
        | Ok () -> backoff (k - 1)
      end
  in
  let rec attempt n =
    (match Network.submit_r sys.net tx with
    | Ok () -> ()
    | Error e ->
      (* Protocol drivers only build well-signed transactions; a refusal
         here is a programming error, not a network fault. *)
      invalid_arg ("Protocol: " ^ Network.submit_error_to_string e));
    if n > 1 then Obs.Counter.incr m_resubmits;
    match mine_r sys with
    | Error e -> Error e
    | Ok () -> (
      match backoff sys.retry.backoff_blocks with
      | Some (Ok r) ->
        if n > 1 || !waited then Obs.Counter.incr m_recovered;
        Ok r
      | Some (Error e) -> Error e
      | None ->
        if n >= sys.retry.max_attempts then begin
          Obs.Counter.incr m_timeouts;
          Error (Timed_out { phase; attempts = n })
        end
        else attempt (n + 1))
  in
  attempt 1

let create_system ?(num_nodes = 3) ?(tree_depth = 6) ?(wallet_bits = 512) ?rng
    ?(retry = default_retry) ?composition ~seed () =
  Task_contract.register ();
  Ra_contract.register ();
  let composition =
    match composition with
    | Some c -> c
    | None -> Zebra_hashcomp.Hash_composition.default
  in
  let rng = match rng with Some s -> s | None -> Source.of_seed seed in
  let rb = Source.fn rng in
  let faucet = Wallet.generate ~bits:wallet_bits ~random_bytes:rb () in
  let net =
    Network.create ~num_nodes ~genesis:[ (Wallet.address faucet, faucet_supply) ] ()
  in
  (* The system keycache serves the CPLA setup too: a process that boots
     several systems at the same (composition, depth) — or republishes the
     same reward shape — pays for one trusted setup.  Setup randomness
     derives from [seed], not the shared [rng] stream, so hit and miss
     yield the same keys. *)
  let keycache = Zebra_snark.Snark.Keycache.create () in
  let cpla =
    Cpla.setup_cached ~composition keycache ~seed:(seed ^ "/cpla-auth") ~depth:tree_depth
  in
  let ra = Ra.create ~hash:composition ~depth:tree_depth () in
  let deploy =
    Tx.make ~wallet:faucet ~nonce:0
      ~dst:
        (Tx.Create
           {
             behavior = Ra_contract.behavior_name;
             args = Ra_contract.init_args ~auth_vk:(Cpla.vk_to_bytes cpla) ~root:(Ra.root ra);
           })
      ~value:0 ~payload:Bytes.empty
  in
  Network.submit net deploy;
  let ra_rsa = Zebra_rsa.Rsa.generate ~bits:wallet_bits ~random_bytes:rb in
  let sys =
    {
      net;
      cpla;
      ra;
      ra_contract = Address.of_creator (Wallet.address faucet) 0;
      faucet;
      ra_rsa;
      rng;
      setup_seed = seed;
      keycache;
      retry;
    }
  in
  (match expect_ok "RA contract deployment" (mine_for sys deploy) with
  | Some _ -> ()
  | None -> failwith "Protocol: RA deployment returned no address");
  sys

(* The RA operator (we reuse the faucet wallet as the operator) posts the
   new root after each registration. *)
let post_root_r sys =
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call sys.ra_contract) ~value:0
      ~payload:(Ra_contract.set_root_msg (Ra.root sys.ra))
  in
  match submit_confirm_r sys ~phase:"ra_root_update" tx with
  | Error err -> Error err
  | Ok { State.status = State.Ok _; _ } -> Ok ()
  | Ok { State.status = State.Failed e; _ } ->
    failwith (Printf.sprintf "Protocol: RA root update failed: %s" e)

let enroll_r sys =
  Obs.with_span "protocol.register" @@ fun () ->
  let key = Cpla.keygen_rng ~composition:(Cpla.composition sys.cpla) ~rng:sys.rng () in
  let cert_index = Ra.register sys.ra key.Cpla.pk in
  match post_root_r sys with
  | Error err -> Error err
  | Ok () ->
    Obs.Counter.incr m_enrolled;
    Ok { key; cert_index }

let enroll sys =
  match enroll_r sys with
  | Ok id -> id
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

let enroll_plain sys =
  Obs.with_span "protocol.register" @@ fun () ->
  let priv = Zebra_rsa.Rsa.generate ~bits:512 ~random_bytes:(random_bytes sys) in
  let cert = Plain_auth.issue ~ra_priv:sys.ra_rsa priv.Zebra_rsa.Rsa.pub in
  Obs.Counter.incr m_enrolled;
  (priv, cert)

let ra_rsa_pub_bytes sys = Zebra_rsa.Rsa.public_key_to_bytes sys.ra_rsa.Zebra_rsa.Rsa.pub

let fresh_funded_wallet_r sys ~phase ~amount =
  let wallet = Wallet.generate ~random_bytes:(random_bytes sys) () in
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call (Wallet.address wallet))
      ~value:amount ~payload:Bytes.empty
  in
  match submit_confirm_r sys ~phase tx with
  | Error err -> Error err
  | Ok { State.status = State.Ok _; _ } -> Ok wallet
  | Ok { State.status = State.Failed e; _ } ->
    failwith (Printf.sprintf "Protocol: faucet funding failed: %s" e)

let fresh_funded_wallet sys ~amount =
  match fresh_funded_wallet_r sys ~phase:"faucet_funding" ~amount with
  | Ok wallet -> wallet
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

let task_storage sys contract =
  match Network.contract_storage sys.net contract with
  | Some bytes -> Task_contract.storage_of_bytes bytes
  | None -> failwith "Protocol: no such task contract"

(* --- TaskPublish --- *)

let publish_task_r sys ~requester ~policy ~n ~budget ?(answer_window = 20)
    ?(instruct_window = 40) ?(max_per_worker = 1) ?(ra_rsa_pub = Bytes.empty)
    ?(data_digest = Bytes.empty) ?circuit () =
  Obs.with_span "protocol.task_publish" @@ fun () ->
  match fresh_funded_wallet_r sys ~phase:"task_publish" ~amount:(budget + 1) with
  | Error err -> Error err
  | Ok wallet -> (
    (* When the caller supplies no circuit, go through the system keypair
       cache: repeat publications of the same (policy, n) shape skip the
       trusted setup entirely.  Setup randomness derives from the system
       seed (not the shared [sys.rng] stream), so the keys are the same
       whether or not the cache retains anything. *)
    let circuit =
      match circuit with
      | Some _ -> circuit
      | None ->
        Some
          (Reward_circuit.setup_cached ~composition:(Cpla.composition sys.cpla) sys.keycache
             ~seed:(sys.setup_seed ^ "/reward-circuit") ~policy ~n)
    in
    let height = Network.height sys.net in
    let task, tx =
      Requester.create_task ?circuit ~max_per_worker ~ra_rsa_pub ~data_digest
        ~random_bytes:(random_bytes sys) ~cpla:sys.cpla
        ~key:requester.key ~cert_index:requester.cert_index
        ~ra_path:(Ra.path sys.ra requester.cert_index)
        ~ra_root:(Ra.root sys.ra) ~wallet ~nonce:0 ~policy ~n ~budget
        ~answer_deadline:(height + answer_window)
        ~instruct_deadline:(height + answer_window + instruct_window)
        ()
    in
    match submit_confirm_r sys ~phase:"task_publish" tx with
    | Error err -> Error err
    | Ok { State.status = State.Ok (Some addr); _ }
      when Address.equal addr task.Requester.contract ->
      Obs.Counter.incr m_tasks;
      Ok task
    | Ok { State.status = State.Ok (Some _); _ } ->
      Error (Deploy_rejected "contract address prediction failed")
    | Ok { State.status = State.Ok None; _ } ->
      Error (Deploy_rejected "deployment returned no address")
    | Ok { State.status = State.Failed e; _ } -> Error (Deploy_rejected e))

let publish_task sys ~requester ~policy ~n ~budget ?answer_window ?instruct_window
    ?max_per_worker ?ra_rsa_pub ?data_digest ?circuit () =
  match
    publish_task_r sys ~requester ~policy ~n ~budget ?answer_window ?instruct_window
      ?max_per_worker ?ra_rsa_pub ?data_digest ?circuit ()
  with
  | Ok task -> task
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* --- AnswerCollection --- *)

let submit_answers_r sys ~task ~workers =
  Obs.with_span "protocol.answer_collection" @@ fun () ->
  let storage = task_storage sys task in
  let root = storage.Task_contract.params.Task_contract.ra_root in
  (* Validate, sign and broadcast every answer, then mine them as a batch. *)
  let rec prepare i acc = function
    | [] -> Ok (List.rev acc)
    | (identity, answer) :: rest -> (
      match fresh_funded_wallet_r sys ~phase:"answer_collection" ~amount:10 with
      | Error err -> Error err
      | Ok wallet -> (
        match
          Worker.validate_task ~storage ~contract:task ~balance:(Network.balance sys.net task)
            ~height:(Network.height sys.net) ~expected_root:root
        with
        | Error e ->
          Error
            (Submission_rejected
               {
                 worker = i;
                 reason = "task validation failed: " ^ Worker.validation_error_to_string e;
               })
        | Ok () ->
          let tx =
            Worker.submit_tx ~random_bytes:(random_bytes sys) ~cpla:sys.cpla ~storage
              ~contract:task ~wallet ~key:identity.key ~cert_index:identity.cert_index
              ~ra_path:(Ra.path sys.ra identity.cert_index)
              ~answer ~nonce:0
          in
          Network.submit sys.net tx;
          prepare (i + 1) ((i, tx, wallet) :: acc) rest))
  in
  match prepare 0 [] workers with
  | Error _ as e -> e
  | Ok entries ->
    (* Settle the batch: one block on the happy path, then — while any
       receipt is still missing — wait out the synchrony bound and
       rebroadcast the stragglers, up to [retry.max_attempts] broadcasts. *)
    let receipt (_, tx, _) = Network.receipt sys.net (Tx.hash tx) in
    let first_failure () =
      List.find_map
        (fun ((i, _, _) as e) ->
          match receipt e with
          | Some { State.status = State.Failed reason; _ } ->
            Some (Submission_rejected { worker = i; reason })
          | _ -> None)
        entries
    in
    let missing () = List.filter (fun e -> receipt e = None) entries in
    let rec drain k =
      if missing () = [] || k = 0 then Ok ()
      else match mine_r sys with Error e -> Error e | Ok () -> drain (k - 1)
    in
    let rec settle n =
      match mine_r sys with
      | Error e -> Error e
      | Ok () -> (
        match drain sys.retry.backoff_blocks with
        | Error e -> Error e
        | Ok () -> (
          match first_failure () with
          | Some e -> Error e
          | None -> (
            match missing () with
            | [] ->
              List.iter (fun _ -> Obs.Counter.incr m_answers) entries;
              if n > 1 then Obs.Counter.incr m_recovered;
              Ok (List.map (fun (_, _, w) -> w) entries)
            | stragglers ->
              if n >= sys.retry.max_attempts then begin
                Obs.Counter.incr m_timeouts;
                Error (Timed_out { phase = "answer_collection"; attempts = n })
              end
              else begin
                List.iter
                  (fun (_, tx, _) ->
                    Obs.Counter.incr m_resubmits;
                    Network.submit sys.net tx)
                  stragglers;
                settle (n + 1)
              end)))
    in
    settle 1

let submit_answers sys ~task ~workers =
  match submit_answers_r sys ~task ~workers with
  | Ok wallets -> wallets
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* --- Reward --- *)

let reward_r sys (task : Requester.task) =
  Obs.with_span "protocol.reward" @@ fun () ->
  let storage = task_storage sys task.Requester.contract in
  let rewards, tx =
    Requester.instruct ~random_bytes:(random_bytes sys) task ~storage
      ~nonce:(Network.nonce sys.net (Wallet.address task.Requester.wallet))
  in
  match submit_confirm_r sys ~phase:"reward" tx with
  | Error err -> Error err
  | Ok { State.status = State.Ok _; _ } -> Ok rewards
  | Ok { State.status = State.Failed e; _ } -> Error (Instruction_rejected e)

let reward sys task =
  match reward_r sys task with
  | Ok rewards -> rewards
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* Result-aware [Network.mine_until]: the block clock may trip a scheduled
   crash window, so each tick can surface a replica failure. *)
let mine_to_r sys ~height =
  let rec go () =
    if Network.height sys.net >= height then Ok ()
    else match mine_r sys with Error e -> Error e | Ok () -> go ()
  in
  go ()

let finalize_r sys (task : Requester.task) =
  Obs.with_span "protocol.finalize" @@ fun () ->
  match
    mine_to_r sys ~height:(task.Requester.params.Task_contract.instruct_deadline + 1)
  with
  | Error err -> Error err
  | Ok () -> (
    match fresh_funded_wallet_r sys ~phase:"finalize" ~amount:10 with
    | Error err -> Error err
    | Ok caller -> (
      let storage = task_storage sys task.Requester.contract in
      let tx =
        Tx.make_ext ~wallet:caller ~fee:0
          ~footprint:(Requester.settlement_footprint ~sender:(Wallet.address caller) storage)
          ~nonce:0 ~dst:(Tx.Call task.Requester.contract) ~value:0
          ~payload:(Task_contract.message_to_bytes Task_contract.Finalize)
      in
      match submit_confirm_r sys ~phase:"finalize" tx with
      | Error err -> Error err
      | Ok { State.status = State.Ok _; _ } -> Ok ()
      | Ok { State.status = State.Failed e; _ } -> Error (Instruction_rejected e)))

let finalize sys task =
  match finalize_r sys task with
  | Ok () -> ()
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* --- Audit --- *)

type audit_report = {
  all_valid : bool;
  checked : int;
  batches : int;
  fallbacks : int;
  offenders : int list;
}

let m_batches = Obs.Counter.make "audit.batch.batches"
let m_fallbacks = Obs.Counter.make "audit.batch.fallbacks"
let m_offenders = Obs.Counter.make "audit.batch.offenders"

let audit_task_report ?(batch_size = 32) ?seed sys ~task =
  if batch_size < 1 then invalid_arg "Protocol.audit_task_report: batch_size must be >= 1";
  Obs.with_span "protocol.audit" @@ fun () ->
  let params = (task_storage sys task).Task_contract.params in
  let prefix = Address.to_field task in
  (* Every mined submission to [task], in chain order.  Attestations live
     in transaction payloads, not in contract storage, so the audit walks
     the blocks the way an external verifier would. *)
  let submissions =
    List.concat_map
      (fun (b : Zebra_chain.Block.t) ->
        List.filter_map
          (fun (tx : Tx.t) ->
            match tx.Tx.dst with
            | Tx.Call a when Address.equal a task -> (
              match Task_contract.message_of_bytes tx.Tx.payload with
              | Task_contract.Submit { ciphertext; attestation } ->
                Some (`Anon (tx.Tx.sender, ciphertext, attestation))
              | Task_contract.Submit_plain { ciphertext; attestation } ->
                Some (`Plain (tx.Tx.sender, ciphertext, attestation))
              | _ | (exception Zebra_codec.Codec.Decode_error _) -> None)
            | _ -> None)
          b.Zebra_chain.Block.txs)
      (Network.blocks sys.net)
    |> Array.of_list
  in
  let count = Array.length submissions in
  let bad = ref [] in
  let mark i = bad := i :: !bad in
  (* Partition: anonymous attestations that decode share the contract's
     CPLA key, so they batch; malformed ones are offenders outright and
     classical (RSA) ones verify individually below. *)
  let anon = ref [] in
  let plain = ref [] in
  Array.iteri
    (fun i sub ->
      match sub with
      | `Anon (sender, ciphertext, attestation) -> (
        match Cpla.attestation_of_bytes attestation with
        | att ->
          let message = Task_contract.submission_digest sender ciphertext in
          let pi =
            Cpla.public_inputs ~prefix ~message ~root:params.Task_contract.ra_root att
          in
          anon := (i, pi, att.Cpla.proof) :: !anon
        | exception Zebra_codec.Codec.Decode_error _ -> mark i)
      | `Plain (sender, ciphertext, attestation) -> (
        match
          ( Plain_auth.attestation_of_bytes attestation,
            Zebra_rsa.Rsa.public_key_of_bytes params.Task_contract.ra_rsa_pub )
        with
        | att, ra_pub ->
          plain := (i, Task_contract.submission_digest sender ciphertext, att, ra_pub) :: !plain
        | exception Zebra_codec.Codec.Decode_error _ -> mark i))
    submissions;
  let anon = Array.of_list (List.rev !anon) in
  let plain = Array.of_list (List.rev !plain) in
  (* Classical signatures have no shared key to combine under; they verify
     independently, fanned out over the pool (slot-disjoint writes, so the
     verdict is pool-independent). *)
  let plain_ok = Array.make (Array.length plain) false in
  Parallel.parallel_for ~min_chunk:1 (Array.length plain) (fun lo hi ->
      for k = lo to hi - 1 do
        let _, message, att, ra_pub = plain.(k) in
        plain_ok.(k) <- Plain_auth.verify ~ra_pub ~prefix ~message att
      done);
  Array.iteri (fun k (i, _, _, _) -> if not plain_ok.(k) then mark i) plain;
  let n_batches = ref 0 in
  let n_fallbacks = ref 0 in
  (match Zebra_snark.Snark.vk_of_bytes_cached params.Task_contract.auth_vk with
  | vk ->
    (* One random-linear-combination check per block of [batch_size]
       attestations.  The RLC scalar comes from a Fiat–Shamir seed
       ([Snark.batch_seed]: hash of the block's proofs and public inputs,
       tagged with the task address and batch index), never from
       [sys.rng].  Binding the challenge to the proofs is what makes the
       Schwartz–Zippel bound hold against adversarial submissions — a
       challenge predictable before submission (e.g. from the task address
       alone) would let a worker craft residuals that cancel under the
       known weights.  The audit stays deterministic: replaying it from
       the chain recomputes the same hashes, at any ZEBRA_DOMAINS, and
       batching on or off cannot shift the system's shared randomness
       stream. *)
    let base_seed =
      match seed with Some s -> s | None -> "audit/" ^ Address.to_hex task
    in
    let total = Array.length anon in
    let b = ref 0 in
    while !b * batch_size < total do
      let lo = !b * batch_size in
      let len = min batch_size (total - lo) in
      let block = Array.sub anon lo len in
      let items = Array.map (fun (_, pi, proof) -> (pi, proof)) block in
      let rng =
        Source.of_seed
          (Zebra_snark.Snark.batch_seed
             ~tag:(Printf.sprintf "%s#%d" base_seed !b)
             items)
      in
      incr n_batches;
      if not (Zebra_snark.Snark.batch_verify ~rng vk items) then begin
        (* The batch test has one-sided error: a failure proves at least
           one bad proof but not which, so re-verify each member to name
           the offenders exactly. *)
        incr n_fallbacks;
        Array.iter
          (fun (i, pi, proof) ->
            if not (Zebra_snark.Snark.verify vk ~public_inputs:pi proof) then mark i)
          block
      end;
      incr b
    done
  | exception Zebra_codec.Codec.Decode_error _ ->
    (* Malformed contract key: every anonymous attestation fails, exactly
       as per-submission [Cpla.verify_with_vk] would have reported. *)
    Array.iter (fun (i, _, _) -> mark i) anon);
  let offenders = List.sort_uniq compare !bad in
  Obs.Counter.add m_audited count;
  Obs.Counter.add m_batches !n_batches;
  Obs.Counter.add m_fallbacks !n_fallbacks;
  Obs.Counter.add m_offenders (List.length offenders);
  {
    all_valid = offenders = [];
    checked = count;
    batches = !n_batches;
    fallbacks = !n_fallbacks;
    offenders;
  }

let audit_task sys ~task =
  let report = audit_task_report sys ~task in
  (report.all_valid, report.checked)

let run_batch sys ~policy ~budget_per_task ~answer_sets =
  (match answer_sets with
  | [] -> invalid_arg "Protocol.run_batch: empty batch"
  | first :: rest ->
    let n = List.length first in
    if n = 0 || List.exists (fun a -> List.length a <> n) rest then
      invalid_arg "Protocol.run_batch: ragged answer sets");
  let n = List.length (List.hd answer_sets) in
  let circuit =
    Reward_circuit.setup ~composition:(Cpla.composition sys.cpla)
      ~random_bytes:(random_bytes sys) ~policy ~n ()
  in
  let requester = enroll sys in
  let workers = List.init n (fun _ -> enroll sys) in
  List.map
    (fun answers ->
      let task = publish_task sys ~requester ~policy ~n ~budget:budget_per_task ~circuit () in
      let pairs = List.map2 (fun w a -> (w, a)) workers answers in
      let _ = submit_answers sys ~task:task.Requester.contract ~workers:pairs in
      reward sys task)
    answer_sets

let run_task sys ~policy ~budget ~answers =
  let requester = enroll sys in
  let workers = List.map (fun a -> (enroll sys, a)) answers in
  let n = List.length answers in
  let task = publish_task sys ~requester ~policy ~n ~budget () in
  let wallets = submit_answers sys ~task:task.Requester.contract ~workers in
  let rewards = reward sys task in
  (task, wallets, rewards)
