module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Cpla = Zebra_anonauth.Cpla
module Ra = Zebra_anonauth.Ra
module Source = Zebra_rng.Source
module Obs = Zebra_obs.Obs
module Parallel = Zebra_parallel.Parallel

type system = {
  net : Network.t;
  cpla : Cpla.params;
  ra : Ra.t;
  ra_contract : Address.t;
  faucet : Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
  rng : Source.t;
}

type identity = { key : Cpla.user_key; cert_index : int }

type error =
  | Deploy_rejected of string
  | Submission_rejected of { worker : int; reason : string }
  | Instruction_rejected of string

let error_to_string = function
  | Deploy_rejected reason -> "task deployment rejected: " ^ reason
  | Submission_rejected { worker; reason } ->
    Printf.sprintf "submission of worker %d rejected: %s" worker reason
  | Instruction_rejected reason -> "reward instruction rejected: " ^ reason

let random_bytes sys n = Source.bytes sys.rng n

(* Phase metrics (inert until [Obs.set_enabled true]). *)
let m_enrolled = Obs.Counter.make "protocol.enrolled"
let m_tasks = Obs.Counter.make "protocol.tasks"
let m_answers = Obs.Counter.make "protocol.answers"
let m_audited = Obs.Counter.make "protocol.audit.attestations"

let faucet_supply = 1_000_000_000

(* Mines the pending block and returns the receipt of [tx]. *)
let mine_for sys tx =
  ignore (Network.mine sys.net);
  match Network.receipt sys.net (Tx.hash tx) with
  | Some r -> r
  | None -> failwith "Protocol: transaction was not mined"

let expect_ok what (r : State.receipt) =
  match r.State.status with
  | State.Ok addr -> addr
  | State.Failed e -> failwith (Printf.sprintf "Protocol: %s failed: %s" what e)

let create_system ?(num_nodes = 3) ?(tree_depth = 6) ?(wallet_bits = 512) ?rng ~seed () =
  Task_contract.register ();
  Ra_contract.register ();
  let rng = match rng with Some s -> s | None -> Source.of_seed seed in
  let rb = Source.fn rng in
  let faucet = Wallet.generate ~bits:wallet_bits ~random_bytes:rb () in
  let net =
    Network.create ~num_nodes ~genesis:[ (Wallet.address faucet, faucet_supply) ] ()
  in
  let cpla = Cpla.setup_rng ~rng ~depth:tree_depth in
  let ra = Ra.create ~depth:tree_depth in
  let deploy =
    Tx.make ~wallet:faucet ~nonce:0
      ~dst:
        (Tx.Create
           {
             behavior = Ra_contract.behavior_name;
             args = Ra_contract.init_args ~auth_vk:(Cpla.vk_to_bytes cpla) ~root:(Ra.root ra);
           })
      ~value:0 ~payload:Bytes.empty
  in
  Network.submit net deploy;
  let ra_rsa = Zebra_rsa.Rsa.generate ~bits:wallet_bits ~random_bytes:rb in
  let sys =
    {
      net;
      cpla;
      ra;
      ra_contract = Address.of_creator (Wallet.address faucet) 0;
      faucet;
      ra_rsa;
      rng;
    }
  in
  (match expect_ok "RA contract deployment" (mine_for sys deploy) with
  | Some _ -> ()
  | None -> failwith "Protocol: RA deployment returned no address");
  sys

(* The RA operator (we reuse the faucet wallet as the operator) posts the
   new root after each registration. *)
let post_root sys =
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call sys.ra_contract) ~value:0
      ~payload:(Ra_contract.set_root_msg (Ra.root sys.ra))
  in
  Network.submit sys.net tx;
  ignore (expect_ok "RA root update" (mine_for sys tx))

let enroll sys =
  Obs.with_span "protocol.register" @@ fun () ->
  let key = Cpla.keygen_rng ~rng:sys.rng in
  let cert_index = Ra.register sys.ra key.Cpla.pk in
  post_root sys;
  Obs.Counter.incr m_enrolled;
  { key; cert_index }

let enroll_plain sys =
  Obs.with_span "protocol.register" @@ fun () ->
  let priv = Zebra_rsa.Rsa.generate ~bits:512 ~random_bytes:(random_bytes sys) in
  let cert = Plain_auth.issue ~ra_priv:sys.ra_rsa priv.Zebra_rsa.Rsa.pub in
  Obs.Counter.incr m_enrolled;
  (priv, cert)

let ra_rsa_pub_bytes sys = Zebra_rsa.Rsa.public_key_to_bytes sys.ra_rsa.Zebra_rsa.Rsa.pub

let fresh_funded_wallet sys ~amount =
  let wallet = Wallet.generate ~random_bytes:(random_bytes sys) () in
  let tx =
    Tx.make ~wallet:sys.faucet
      ~nonce:(Network.nonce sys.net (Wallet.address sys.faucet))
      ~dst:(Tx.Call (Wallet.address wallet))
      ~value:amount ~payload:Bytes.empty
  in
  Network.submit sys.net tx;
  ignore (expect_ok "faucet funding" (mine_for sys tx));
  wallet

let task_storage sys contract =
  match Network.contract_storage sys.net contract with
  | Some bytes -> Task_contract.storage_of_bytes bytes
  | None -> failwith "Protocol: no such task contract"

(* --- TaskPublish --- *)

let publish_task_r sys ~requester ~policy ~n ~budget ?(answer_window = 20)
    ?(instruct_window = 40) ?(max_per_worker = 1) ?(ra_rsa_pub = Bytes.empty)
    ?(data_digest = Bytes.empty) ?circuit () =
  Obs.with_span "protocol.task_publish" @@ fun () ->
  let wallet = fresh_funded_wallet sys ~amount:(budget + 1) in
  let height = Network.height sys.net in
  let task, tx =
    Requester.create_task ?circuit ~max_per_worker ~ra_rsa_pub ~data_digest
      ~random_bytes:(random_bytes sys) ~cpla:sys.cpla
      ~key:requester.key ~cert_index:requester.cert_index
      ~ra_path:(Ra.path sys.ra requester.cert_index)
      ~ra_root:(Ra.root sys.ra) ~wallet ~nonce:0 ~policy ~n ~budget
      ~answer_deadline:(height + answer_window)
      ~instruct_deadline:(height + answer_window + instruct_window)
      ()
  in
  Network.submit sys.net tx;
  ignore (Network.mine sys.net);
  match Network.receipt sys.net (Tx.hash tx) with
  | Some { State.status = State.Ok (Some addr); _ }
    when Address.equal addr task.Requester.contract ->
    Obs.Counter.incr m_tasks;
    Ok task
  | Some { State.status = State.Ok (Some _); _ } ->
    Error (Deploy_rejected "contract address prediction failed")
  | Some { State.status = State.Ok None; _ } ->
    Error (Deploy_rejected "deployment returned no address")
  | Some { State.status = State.Failed e; _ } -> Error (Deploy_rejected e)
  | None -> Error (Deploy_rejected "deployment transaction was not mined")

let publish_task sys ~requester ~policy ~n ~budget ?answer_window ?instruct_window
    ?max_per_worker ?ra_rsa_pub ?data_digest ?circuit () =
  match
    publish_task_r sys ~requester ~policy ~n ~budget ?answer_window ?instruct_window
      ?max_per_worker ?ra_rsa_pub ?data_digest ?circuit ()
  with
  | Ok task -> task
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* --- AnswerCollection --- *)

let submit_answers_r sys ~task ~workers =
  Obs.with_span "protocol.answer_collection" @@ fun () ->
  let storage = task_storage sys task in
  let root = storage.Task_contract.params.Task_contract.ra_root in
  (* Validate, sign and broadcast every answer, then mine them as a batch. *)
  let rec prepare i acc = function
    | [] -> Ok (List.rev acc)
    | (identity, answer) :: rest -> (
      let wallet = fresh_funded_wallet sys ~amount:10 in
      match
        Worker.validate_task ~storage ~contract:task ~balance:(Network.balance sys.net task)
          ~height:(Network.height sys.net) ~expected_root:root
      with
      | Error e ->
        Error
          (Submission_rejected
             {
               worker = i;
               reason = "task validation failed: " ^ Worker.validation_error_to_string e;
             })
      | Ok () ->
        let tx =
          Worker.submit_tx ~random_bytes:(random_bytes sys) ~cpla:sys.cpla ~storage
            ~contract:task ~wallet ~key:identity.key ~cert_index:identity.cert_index
            ~ra_path:(Ra.path sys.ra identity.cert_index)
            ~answer ~nonce:0
        in
        Network.submit sys.net tx;
        prepare (i + 1) ((tx, wallet) :: acc) rest)
  in
  match prepare 0 [] workers with
  | Error _ as e -> e
  | Ok txs_wallets -> (
    ignore (Network.mine sys.net);
    let rec collect i acc = function
      | [] -> Ok (List.rev acc)
      | (tx, wallet) :: rest -> (
        match Network.receipt sys.net (Tx.hash tx) with
        | Some { State.status = State.Ok _; _ } ->
          Obs.Counter.incr m_answers;
          collect (i + 1) (wallet :: acc) rest
        | Some { State.status = State.Failed e; _ } ->
          Error (Submission_rejected { worker = i; reason = e })
        | None ->
          Error (Submission_rejected { worker = i; reason = "submission was not mined" }))
    in
    collect 0 [] txs_wallets)

let submit_answers sys ~task ~workers =
  match submit_answers_r sys ~task ~workers with
  | Ok wallets -> wallets
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

(* --- Reward --- *)

let reward_r sys (task : Requester.task) =
  Obs.with_span "protocol.reward" @@ fun () ->
  let storage = task_storage sys task.Requester.contract in
  let rewards, tx =
    Requester.instruct ~random_bytes:(random_bytes sys) task ~storage
      ~nonce:(Network.nonce sys.net (Wallet.address task.Requester.wallet))
  in
  Network.submit sys.net tx;
  ignore (Network.mine sys.net);
  match Network.receipt sys.net (Tx.hash tx) with
  | Some { State.status = State.Ok _; _ } -> Ok rewards
  | Some { State.status = State.Failed e; _ } -> Error (Instruction_rejected e)
  | None -> Error (Instruction_rejected "instruction transaction was not mined")

let reward sys task =
  match reward_r sys task with
  | Ok rewards -> rewards
  | Error e -> failwith ("Protocol: " ^ error_to_string e)

let finalize sys (task : Requester.task) =
  Obs.with_span "protocol.finalize" @@ fun () ->
  Network.mine_until sys.net
    ~height:(task.Requester.params.Task_contract.instruct_deadline + 1);
  let caller = fresh_funded_wallet sys ~amount:10 in
  let tx =
    Tx.make ~wallet:caller ~nonce:0 ~dst:(Tx.Call task.Requester.contract) ~value:0
      ~payload:(Task_contract.message_to_bytes Task_contract.Finalize)
  in
  Network.submit sys.net tx;
  ignore (expect_ok "finalize" (mine_for sys tx))

(* --- Audit --- *)

let audit_task sys ~task =
  Obs.with_span "protocol.audit" @@ fun () ->
  let params = (task_storage sys task).Task_contract.params in
  let prefix = Address.to_field task in
  (* Every mined submission to [task], in chain order.  Attestations live
     in transaction payloads, not in contract storage, so the audit walks
     the blocks the way an external verifier would. *)
  let submissions =
    List.concat_map
      (fun (b : Zebra_chain.Block.t) ->
        List.filter_map
          (fun (tx : Tx.t) ->
            match tx.Tx.dst with
            | Tx.Call a when Address.equal a task -> (
              match Task_contract.message_of_bytes tx.Tx.payload with
              | Task_contract.Submit { ciphertext; attestation } ->
                Some (`Anon (tx.Tx.sender, ciphertext, attestation))
              | Task_contract.Submit_plain { ciphertext; attestation } ->
                Some (`Plain (tx.Tx.sender, ciphertext, attestation))
              | _ | (exception Zebra_codec.Codec.Decode_error _) -> None)
            | _ -> None)
          b.Zebra_chain.Block.txs)
      (Network.blocks sys.net)
    |> Array.of_list
  in
  let count = Array.length submissions in
  (* Each attestation re-verifies independently (a SNARK verification each:
     coarse enough that one submission per chunk is the right grain).
     [reduce] is conjunction, so fold order is irrelevant — but the ordered
     chunk fold makes it deterministic regardless. *)
  let all_ok =
    Parallel.map_reduce ~min_chunk:1 count
      ~map:(fun lo hi ->
        let ok = ref true in
        for i = lo to hi - 1 do
          let verdict =
            match submissions.(i) with
            | `Anon (sender, ciphertext, attestation) -> (
              match Cpla.attestation_of_bytes attestation with
              | att ->
                Cpla.verify_with_vk ~vk_bytes:params.Task_contract.auth_vk ~prefix
                  ~message:(Task_contract.submission_digest sender ciphertext)
                  ~root:params.Task_contract.ra_root att
              | exception Zebra_codec.Codec.Decode_error _ -> false)
            | `Plain (sender, ciphertext, attestation) -> (
              match
                ( Plain_auth.attestation_of_bytes attestation,
                  Zebra_rsa.Rsa.public_key_of_bytes params.Task_contract.ra_rsa_pub )
              with
              | att, ra_pub ->
                Plain_auth.verify ~ra_pub ~prefix
                  ~message:(Task_contract.submission_digest sender ciphertext)
                  att
              | exception Zebra_codec.Codec.Decode_error _ -> false)
          in
          ok := !ok && verdict
        done;
        !ok)
      ~reduce:( && ) true
  in
  Obs.Counter.add m_audited count;
  (all_ok, count)

let run_batch sys ~policy ~budget_per_task ~answer_sets =
  (match answer_sets with
  | [] -> invalid_arg "Protocol.run_batch: empty batch"
  | first :: rest ->
    let n = List.length first in
    if n = 0 || List.exists (fun a -> List.length a <> n) rest then
      invalid_arg "Protocol.run_batch: ragged answer sets");
  let n = List.length (List.hd answer_sets) in
  let circuit = Reward_circuit.setup ~random_bytes:(random_bytes sys) ~policy ~n in
  let requester = enroll sys in
  let workers = List.init n (fun _ -> enroll sys) in
  List.map
    (fun answers ->
      let task = publish_task sys ~requester ~policy ~n ~budget:budget_per_task ~circuit () in
      let pairs = List.map2 (fun w a -> (w, a)) workers answers in
      let _ = submit_answers sys ~task:task.Requester.contract ~workers:pairs in
      reward sys task)
    answer_sets

let run_task sys ~policy ~budget ~answers =
  let requester = enroll sys in
  let workers = List.map (fun a -> (enroll sys, a)) answers in
  let n = List.length answers in
  let task = publish_task sys ~requester ~policy ~n ~budget () in
  let wallets = submit_answers sys ~task:task.Requester.contract ~workers in
  let rewards = reward sys task in
  (task, wallets, rewards)
