module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Snark = Zebra_snark.Snark

let default_seed = "deployed-txs/lint-scenario-v1"

type t = {
  sys : Protocol.system;
  requester : Protocol.identity;
  w1 : Protocol.identity;
  w2 : Protocol.identity;
  task_a : Requester.task;
  task_b : Requester.task;
  board : Address.t;
  rep : Reputation.params;
}

(* The canonical end-to-end marketplace scenario: two tasks settled by
   both branches (Instruct and the Finalize fallback), plus a full
   reputation-board lifecycle (deploy, credit, link-proof claim, epoch
   advance).  Every transaction kind the protocol can deploy appears at
   least once, which is exactly what the tx lint, the indexer tests and
   the byzantine corpus all need — they share this builder rather than
   cloning it. *)
let build ?(seed = default_seed) () =
  let sys = Protocol.create_system ~seed () in
  Reputation_contract.register ();
  let rb = Protocol.random_bytes sys in
  let requester = Protocol.enroll sys in
  let w1 = Protocol.enroll sys in
  let w2 = Protocol.enroll sys in
  let policy = Policy.Majority { choices = 4 } in
  (* Task A settles by Instruct.  budget = 61 with n = 2 makes rho = 30:
     both workers get a nonzero reward and 1 unit refunds to the
     requester, so every settlement branch (worker payment, refund) is an
     actually-covered path for the minimality check. *)
  let task_a = Protocol.publish_task sys ~requester ~policy ~n:2 ~budget:61 () in
  let _ =
    Protocol.submit_answers sys ~task:task_a.Requester.contract ~workers:[ (w1, 1); (w2, 1) ]
  in
  let _ = Protocol.reward sys task_a in
  (* Task B settles by the third-party Finalize fallback: 2 of 3 slots
     submitted, budget 61 -> share 30 each, refund 1 to the requester. *)
  let task_b = Protocol.publish_task sys ~requester ~policy ~n:3 ~budget:61 () in
  let _ =
    Protocol.submit_answers sys ~task:task_b.Requester.contract ~workers:[ (w1, 2); (w2, 2) ]
  in
  Protocol.finalize sys task_b;
  (* Reputation: board deploy, credit of task A's first tag, the worker's
     link-proof claim onto an epoch pseudonym, and an epoch advance. *)
  let rep = Reputation.setup_cached sys.Protocol.keycache ~seed in
  let op = Protocol.fresh_funded_wallet sys ~amount:100 in
  let deploy =
    Tx.make ~wallet:op ~nonce:0
      ~dst:
        (Tx.Create
           {
             behavior = Reputation_contract.behavior_name;
             args = Reputation_contract.init_args ~link_vk:(Reputation.vk_bytes rep);
           })
      ~value:0 ~payload:Bytes.empty
  in
  Network.submit sys.Protocol.net deploy;
  ignore (Network.mine sys.Protocol.net);
  let board = Address.of_creator (Wallet.address op) 0 in
  let call msg =
    let tx =
      Tx.make ~wallet:op
        ~nonce:(Network.nonce sys.Protocol.net (Wallet.address op))
        ~dst:(Tx.Call board) ~value:0
        ~payload:(Reputation_contract.message_to_bytes msg)
    in
    Network.submit sys.Protocol.net tx;
    ignore (Network.mine sys.Protocol.net);
    match Option.get (Network.receipt sys.Protocol.net (Tx.hash tx)) with
    | { State.status = State.Ok _; _ } -> ()
    | { State.status = State.Failed m; _ } ->
      failwith ("Scenario: reputation call failed: " ^ m)
  in
  let storage_a = Protocol.task_storage sys task_a.Requester.contract in
  let s1 = List.hd storage_a.Task_contract.submissions in
  let prefix = Address.to_field task_a.Requester.contract in
  call
    (Reputation_contract.Credit { task_tag = s1.Task_contract.tag; task_prefix = prefix; score = 3 });
  let key = w1.Protocol.key in
  let pseudonym = Reputation.epoch_pseudonym key ~epoch:0 in
  let proof = Reputation.prove_link ~random_bytes:rb rep ~key ~task_prefix:prefix ~epoch:0 in
  call
    (Reputation_contract.Claim
       { task_tag = s1.Task_contract.tag; pseudonym; proof = Snark.proof_to_bytes proof });
  call Reputation_contract.Advance_epoch;
  { sys; requester; w1; w2; task_a; task_b; board; rep }
