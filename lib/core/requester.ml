module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module Elgamal = Zebra_elgamal.Elgamal
module Cpla = Zebra_anonauth.Cpla
module Secret = Zebra_secret.Secret

type task = {
  wallet : Wallet.t;
  contract : Address.t;
  esk : Elgamal.secret_key Secret.t;
  circuit : Reward_circuit.t;
  params : Task_contract.params;
}

let esk_canary task = Secret.use task.esk Elgamal.secret_canary

let create_task ?circuit ?(max_per_worker = 1) ?(ra_rsa_pub = Bytes.empty)
    ?(data_digest = Bytes.empty) ?(fee = 0) ~random_bytes ~cpla ~key ~cert_index ~ra_path
    ~ra_root ~wallet ~nonce ~policy ~n ~budget ~answer_deadline ~instruct_deadline () =
  let esk, epk = Elgamal.generate ~random_bytes in
  let esk = Secret.make ~label:"requester.task.esk" esk in
  let circuit =
    match circuit with
    | None -> Reward_circuit.setup ~random_bytes ~policy ~n ()
    | Some c ->
      if not (Policy.equal (Reward_circuit.policy c) policy) || Reward_circuit.n c <> n then
        invalid_arg "Requester.create_task: circuit does not match policy/arity";
      c
  in
  (* Footnote 10: alpha_C is predictable before deployment, so pi_R can be
     computed off-line and shipped inside the contract parameters. *)
  let contract = Address.of_creator (Wallet.address wallet) nonce in
  let attestation =
    Cpla.auth ~random_bytes cpla
      ~prefix:(Address.to_field contract)
      ~message:(Address.to_field (Wallet.address wallet))
      ~key ~index:cert_index ~path:ra_path ~root:ra_root
  in
  let params =
    {
      Task_contract.budget;
      n;
      answer_deadline;
      instruct_deadline;
      epk;
      ra_root;
      auth_vk = Cpla.vk_to_bytes cpla;
      reward_vk = Reward_circuit.vk_bytes circuit;
      policy;
      requester_attestation = Cpla.attestation_to_bytes attestation;
      max_per_worker;
      ra_rsa_pub;
      data_digest;
    }
  in
  let tx =
    Tx.make_ext ~wallet ~fee ~footprint:[] ~nonce
      ~dst:
        (Tx.Create
           {
             behavior = Task_contract.behavior_name;
             args = Task_contract.params_to_bytes params;
           })
      ~value:budget ~payload:Bytes.empty
  in
  ({ wallet; contract; esk; circuit; params }, tx)

let decrypt_answers task (storage : Task_contract.storage) =
  let n = task.params.Task_contract.n in
  let answers = Array.make n None in
  List.iteri
    (fun i (s : Task_contract.submission) ->
      if i < n then begin
        let m = Secret.use task.esk (fun esk -> Elgamal.decrypt esk s.Task_contract.ciphertext) in
        answers.(i) <-
          Elgamal.decode_answer ~max:(Policy.answer_space task.params.Task_contract.policy - 1) m
      end)
    storage.Task_contract.submissions;
  answers

let cts_of_storage task (storage : Task_contract.storage) =
  let n = task.params.Task_contract.n in
  let cts = Array.make n Elgamal.missing in
  List.iteri
    (fun i (s : Task_contract.submission) -> if i < n then cts.(i) <- s.Task_contract.ciphertext)
    storage.Task_contract.submissions;
  cts

(* The payees of a settlement: every submission's worker, plus the
   requester refund destination.  The executor already accounts the
   transaction's static footprint ([Exec.static_footprint]: sender and
   destination), so payees covered by it are subtracted rather than
   re-declared — one payee list serves both Instruct (whose sender is the
   requester) and Finalize (whose caller is a third party), and the ZL1xx
   lint asserts the result is exactly sound and minimal, so the two
   encodings cannot drift. *)
let settlement_footprint ~sender (storage : Task_contract.storage) =
  let payees =
    storage.Task_contract.requester
    :: List.map (fun (s : Task_contract.submission) -> s.Task_contract.worker)
         storage.Task_contract.submissions
  in
  List.filter (fun a -> not (Address.equal a sender)) payees

let instruct_with_rewards ?(fee = 0) ~random_bytes task ~storage ~nonce ~rewards =
  let n = task.params.Task_contract.n in
  let budget = task.params.Task_contract.budget in
  let policy = task.params.Task_contract.policy in
  let cts = cts_of_storage task storage in
  let rho = Reward_circuit.rho_of ~policy ~budget ~n in
  let proof =
    Secret.use task.esk (fun esk ->
        Reward_circuit.prove ~random_bytes task.circuit ~esk ~rho ~cts ~rewards)
  in
  let msg =
    Task_contract.Instruct
      {
        rewards = Array.to_list rewards;
        proof = Zebra_snark.Snark.proof_to_bytes proof;
      }
  in
  let tx =
    Tx.make_ext ~wallet:task.wallet ~fee
      ~footprint:(settlement_footprint ~sender:(Wallet.address task.wallet) storage)
      ~nonce
      ~dst:(Tx.Call task.contract) ~value:0
      ~payload:(Task_contract.message_to_bytes msg)
  in
  (rewards, tx)

let instruct ?(fee = 0) ~random_bytes task ~storage ~nonce =
  let answers = decrypt_answers task storage in
  let rewards =
    Policy.rewards task.params.Task_contract.policy ~budget:task.params.Task_contract.budget
      ~n:task.params.Task_contract.n answers
  in
  instruct_with_rewards ~fee ~random_bytes task ~storage ~nonce ~rewards
