(** Seeded chaos scenario: one full crowdsourcing round — Register,
    TaskPublish, AnswerCollection, Reward (or the timeout fallback) plus an
    off-chain data fetch — driven under a [Zebra_faults] plan.

    The scenario is the executable form of the question the fault layer
    exists to answer: does the protocol settle every task with a payout or
    a {e typed} error, never an exception and never a wrong balance, under
    any bounded fault plan?  {!run} returns an {!outcome} that carries the
    settlement, the end-of-run invariant checks (replica agreement, supply
    conservation) and the injected fault {!Zebra_faults.Faults.trace}.

    {b Replayability}: the whole run is a pure function of
    [(seed, plan, workload shape)] — the fault schedule is keyed by the
    seed alone (see [Zebra_faults]) and the workload randomness comes from
    the protocol's own seeded RNG — so [run ~seed ~plan ()] twice yields
    identical outcomes, which is what [zebra chaos] and the chaos CI gate
    assert. *)

(** How the round settled. *)
type settlement =
  | Rewarded of int array
      (** the requester instructed; per-worker reward vector *)
  | Finalized
      (** the timeout fallback paid out (the plan withheld the
          instruction) *)
  | Aborted of Protocol.error
      (** the plan exceeded the retry policy's synchrony bound; a typed
          error, never an exception *)

type outcome = {
  settlement : settlement;
  final_height : int;
  state_root : string;  (** hex root every live replica agrees on *)
  replicas_agree : bool;
      (** all replicas (crashed ones re-synced) share [state_root] *)
  supply_conserved : bool;
      (** total supply unchanged by the whole round *)
  store_fetch_attempts : int;
      (** fetches (including heals) needed to retrieve the task blob *)
  store_recovered : bool;
      (** the blob came back intact despite loss/corruption faults *)
  indexer_events : int;  (** chain events the off-chain indexer decoded *)
  indexer_reorgs : int;
      (** reorgs the indexer survived (partition heals, byzantine forks) *)
  indexer_agrees : bool;
      (** the indexer's event-rebuilt contract state is byte-identical to
          the chain's — the strongest end-of-run consistency oracle *)
  indexer_error : string option;  (** why, when [indexer_agrees] is false *)
  trace : string list;  (** the injected-fault log, oldest first *)
}

val settlement_to_string : settlement -> string

(** Render the outcome the way [zebra chaos] prints it (trace lines, then
    the settlement and invariant summary). *)
val outcome_to_string : outcome -> string

(** [run ~seed ~plan ()] boots a fresh system ([Protocol.create_system
    ~seed]), attaches the fault plan to its network and to a
    content-addressed store holding the task's data blob, and drives one
    round with [n] workers.  [retry] tunes the protocol's synchrony bound
    (default {!Protocol.default_retry}).  If the plan says
    [withhold_worker], the last enrolled worker never submits; if
    [no_instruction], the requester never instructs and the round settles
    through Finalize; [collude=K] makes the last K answering workers
    submit an identical deviant answer; [eclipse=W:F-T] holds worker [W]'s
    submission for the window (the driver plays the victim's client and
    registers its one-task wallet with the controller).  An off-chain
    {!Zebra_index.Indexer} follows the chain throughout — incremental
    mid-run syncs, reorg detection across partition heals and byzantine
    forks — and the outcome asserts its rebuilt state agrees with the
    contracts byte-for-byte.

    Crash windows at heights the boot sequence has already mined (the
    chain is ~4 blocks tall when faults attach) are skipped by the
    schedule; plan them at height 5 or later. *)
val run :
  ?n:int ->
  ?budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?retry:Protocol.retry_policy ->
  seed:string ->
  plan:Zebra_faults.Faults.spec ->
  unit ->
  outcome
