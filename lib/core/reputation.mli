(** Anonymous reputation — a concrete answer to the paper's first open
    question ("there are many incentive mechanisms using reputation
    systems, can we further extend our implementations to support those
    incentives?").

    The tension is the same one CPLA already resolves: reputation must
    accumulate on {e some} stable handle, yet handles must not link a
    worker across contexts.  We reuse the common-prefix trick at a coarser
    grain: a worker's reputation lives on an {b epoch pseudonym}
    [P_e = H(epoch, sk)] — the same tag construction as t1 with the epoch
    number as the prefix.  Within an epoch all of a worker's claims
    aggregate on one pseudonym; across epochs pseudonyms are unlinkable,
    exactly like task tags across tasks.

    To move credit earned in a task (attributed on-chain to the task tag
    [t1 = H(alpha_C, sk)]) onto the epoch pseudonym, the worker proves in
    zero knowledge that {e the same secret key underlies both tags}:

      L_rep = { (t_task, P_e, alpha_C, e) | exists sk :
                t_task = H(alpha_C, sk)  /\  P_e = H(e, sk) }

    The flow (see {!Reputation_contract} for the on-chain side):
    requester credits task tags after the Reward phase; the worker later
    claims the credit onto an epoch pseudonym with a link proof; anyone
    reads pseudonym scores and requesters may e.g. gate tasks on them. *)

(** SNARK parameters for the link statement (one-time setup, like PP).
    The hash [H] of both tag equations is the
    {!Zebra_hashcomp.Hash_composition} parameter (default Poseidon: the
    whole link circuit is 974 constraints against MiMC's 1 458; see
    [BENCH_lint.json]).  It {b must} match the composition of the CPLA
    parameters whose t1 the task tag is linked against — tags of different
    arms never collide. *)
type params

val setup :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  random_bytes:(int -> bytes) ->
  unit ->
  params

(** {!setup} through a keypair cache under the id
    [reputation/link/h=<composition>] (one entry per arm); randomness
    derives from [seed] alone, so results are byte-identical to a fresh
    seeded setup (see {!Zebra_snark.Snark.Keycache}). *)
val setup_cached :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  Zebra_snark.Snark.Keycache.t ->
  seed:string ->
  params

(** The link circuit synthesised at the dummy assignment, for static
    analysis ([Zebra_lint]). *)
val constraint_system :
  ?composition:Zebra_hashcomp.Hash_composition.t -> unit -> Zebra_r1cs.Cs.t

(** The hash composition these parameters were set up with. *)
val composition : params -> Zebra_hashcomp.Hash_composition.t

val circuit_size : params -> int
val vk_bytes : params -> bytes

type claim_proof = Zebra_snark.Snark.proof

(** [task_tag key ~task_prefix] = [H(prefix, sk)] — equals the t1 of any
    attestation the worker made in that task {e under the same
    composition}. *)
val task_tag :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  Zebra_anonauth.Cpla.user_key ->
  task_prefix:Fp.t ->
  Fp.t

(** [epoch_pseudonym key ~epoch]. *)
val epoch_pseudonym :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  Zebra_anonauth.Cpla.user_key ->
  epoch:int ->
  Fp.t

(** [prove_link ~random_bytes params ~key ~task_prefix ~epoch] — the
    worker-side claim proof. *)
val prove_link :
  random_bytes:(int -> bytes) ->
  params ->
  key:Zebra_anonauth.Cpla.user_key ->
  task_prefix:Fp.t ->
  epoch:int ->
  claim_proof

(** [verify_link ~vk_bytes ~task_tag ~pseudonym ~task_prefix ~epoch proof]
    — stateless check (what the contract runs). *)
val verify_link :
  vk_bytes:bytes ->
  task_tag:Fp.t ->
  pseudonym:Fp.t ->
  task_prefix:Fp.t ->
  epoch:int ->
  claim_proof ->
  bool
