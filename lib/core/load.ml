module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Block = Zebra_chain.Block
module Cpla = Zebra_anonauth.Cpla
module Ra = Zebra_anonauth.Ra
module Sha256 = Zebra_hashing.Sha256
module Obs = Zebra_obs.Obs

(* Fee tiers: every block of a loaded marketplace mixes phases, so giving
   each phase a distinct priority exercises the fee-ordered mempool on
   every seal (fundings first, then settlements, then deployments, then
   answer submissions). *)
let fee_funding = 3
let fee_instruct = 2
let fee_publish = 1
(* submissions ride at the default fee 0 *)

let h_settle = Obs.Histogram.make "load.settle"
let m_completed = Obs.Counter.make "load.tasks.completed"
let m_failed = Obs.Counter.make "load.tasks.failed"

type config = {
  requesters : int;
  workers : int;
  tasks : int;
  workers_per_task : int;
  inflight : int;
  budget : int;
  num_nodes : int;
  seed : string;
  verify_replay : bool;
}

let default_config =
  {
    requesters = 4;
    workers = 8;
    tasks = 20;
    workers_per_task = 2;
    inflight = 8;
    budget = 60;
    num_nodes = 3;
    seed = "zebra-load";
    verify_replay = false;
  }

type report = {
  tasks_completed : int;
  tasks_failed : int;
  failures : (int * string) list;
  blocks : int;
  txs : int;
  conflict_retries : int;
  elapsed_s : float;
  tasks_per_sec : float;
  txs_per_sec : float;
  settle_p50_s : float;
  settle_p99_s : float;
  state_root : string;
  replicas_agree : bool;
  supply_conserved : bool;
  replay_matches : bool option;
  indexer_agrees : bool;
}

(* One marketplace task moving through its pipeline.  Each stage holds the
   transactions whose receipts gate the next stage; one block is mined per
   scheduler round, so tasks in different stages share every block. *)
type stage =
  | Ready
  | Wait_fund of Wallet.t * Tx.t
  | Wait_publish of Requester.task * Tx.t
  | Wait_answers of Requester.task * Tx.t list
  | Wait_instruct of Requester.task * Tx.t
  | Completed of float
  | Task_failed of string

type task_state = {
  index : int;
  requester : Protocol.identity;
  mutable stage : stage;
  mutable started : float;
  mutable attempts : int;
}

let now () = Unix.gettimeofday ()

let run ?(config = default_config) () =
  let cfg = config in
  if cfg.tasks < 1 then invalid_arg "Load.run: tasks must be >= 1";
  if cfg.requesters < 1 || cfg.workers < 1 then
    invalid_arg "Load.run: need at least one requester and one worker";
  if cfg.workers_per_task < 1 || cfg.workers_per_task > cfg.workers then
    invalid_arg "Load.run: workers_per_task out of range";
  if cfg.inflight < 1 then invalid_arg "Load.run: inflight must be >= 1";
  let sys = Protocol.create_system ~num_nodes:cfg.num_nodes ~seed:cfg.seed () in
  let net = sys.Protocol.net in
  let rb = Protocol.random_bytes sys in
  let supply0 = Network.total_supply net in
  let policy = Policy.Majority { choices = 4 } in
  let n = cfg.workers_per_task in
  (* Register the whole population first, then post the RA root once —
     one tree update instead of one per enrollment.  Certificate paths
     are taken after the last registration, against the final root. *)
  let enroll_many k =
    Array.init k (fun _ ->
        let key =
          Cpla.keygen_rng
            ~composition:(Cpla.composition sys.Protocol.cpla)
            ~rng:sys.Protocol.rng ()
        in
        let cert_index = Ra.register sys.Protocol.ra key.Cpla.pk in
        { Protocol.key; cert_index })
  in
  let requester_ids = enroll_many cfg.requesters in
  let worker_ids = enroll_many cfg.workers in
  let faucet_addr = Wallet.address sys.Protocol.faucet in
  let root_tx =
    Tx.make ~wallet:sys.Protocol.faucet
      ~nonce:(Network.nonce net faucet_addr)
      ~dst:(Tx.Call sys.Protocol.ra_contract) ~value:0
      ~payload:(Ra_contract.set_root_msg (Ra.root sys.Protocol.ra))
  in
  (match Network.submit_r net root_tx with
  | Ok () -> ()
  | Error e -> invalid_arg ("Load.run: " ^ Network.submit_error_to_string e));
  ignore (Network.mine net);
  (match Network.receipt net (Tx.hash root_tx) with
  | Some { State.status = State.Ok _; _ } -> ()
  | _ -> failwith "Load.run: RA root update failed");
  let circuit =
    Reward_circuit.setup_cached sys.Protocol.keycache
      ~seed:(sys.Protocol.setup_seed ^ "/reward-circuit") ~policy ~n
  in
  let states =
    Array.init cfg.tasks (fun index ->
        {
          index;
          requester = requester_ids.(index mod cfg.requesters);
          stage = Ready;
          started = 0.;
          attempts = 0;
        })
  in
  let faucet_nonce = ref (Network.nonce net faucet_addr) in
  let conflict_retries = ref 0 in
  let submit tx =
    match Network.submit_r net tx with
    | Ok () -> ()
    | Error e -> failwith ("Load.run: " ^ Network.submit_error_to_string e)
  in
  let fail st reason =
    st.stage <- Task_failed reason;
    Obs.Counter.incr m_failed
  in
  (* Missing receipts cannot happen on this fault-free network unless
     something is broken; still, rebroadcast a bounded number of times
     rather than loop forever. *)
  let retry st what resubmit =
    st.attempts <- st.attempts + 1;
    if st.attempts > 3 then fail st (what ^ " not mined after 3 broadcasts")
    else resubmit ()
  in
  let receipt tx = Network.receipt net (Tx.hash tx) in
  let active () =
    Array.fold_left
      (fun acc st ->
        match st.stage with
        | Ready | Completed _ | Task_failed _ -> acc
        | _ -> acc + 1)
      0 states
  in
  let unfinished () =
    Array.exists
      (fun st -> match st.stage with Completed _ | Task_failed _ -> false | _ -> true)
      states
  in
  let start_task st =
    let wallet = Wallet.generate ~random_bytes:rb () in
    let tx =
      Tx.make_ext ~wallet:sys.Protocol.faucet ~fee:fee_funding ~footprint:[]
        ~nonce:!faucet_nonce
        ~dst:(Tx.Call (Wallet.address wallet))
        ~value:(cfg.budget + 1) ~payload:Bytes.empty
    in
    incr faucet_nonce;
    submit tx;
    st.started <- now ();
    st.attempts <- 0;
    st.stage <- Wait_fund (wallet, tx)
  in
  let publish st wallet =
    let id = st.requester in
    let height = Network.height net in
    let task, tx =
      Requester.create_task ~circuit ~fee:fee_publish ~random_bytes:rb ~cpla:sys.Protocol.cpla
        ~key:id.Protocol.key ~cert_index:id.Protocol.cert_index
        ~ra_path:(Ra.path sys.Protocol.ra id.Protocol.cert_index)
        ~ra_root:(Ra.root sys.Protocol.ra) ~wallet ~nonce:0 ~policy ~n ~budget:cfg.budget
        ~answer_deadline:(height + 20)
        ~instruct_deadline:(height + 60)
        ()
    in
    submit tx;
    st.attempts <- 0;
    st.stage <- Wait_publish (task, tx)
  in
  let answer_txs st (task : Requester.task) =
    let storage = Protocol.task_storage sys task.Requester.contract in
    List.init n (fun j ->
        let id = worker_ids.(((st.index * n) + j) mod cfg.workers) in
        let wallet = Wallet.generate ~random_bytes:rb () in
        Worker.submit_tx ~random_bytes:rb ~cpla:sys.Protocol.cpla ~storage
          ~contract:task.Requester.contract ~wallet ~key:id.Protocol.key
          ~cert_index:id.Protocol.cert_index
          ~ra_path:(Ra.path sys.Protocol.ra id.Protocol.cert_index)
          ~answer:(st.index mod 4) ~nonce:0)
  in
  let instruct st (task : Requester.task) =
    let storage = Protocol.task_storage sys task.Requester.contract in
    let _rewards, tx =
      Requester.instruct ~fee:fee_instruct ~random_bytes:rb task ~storage
        ~nonce:(Network.nonce net (Wallet.address task.Requester.wallet))
    in
    submit tx;
    st.attempts <- 0;
    st.stage <- Wait_instruct (task, tx)
  in
  let advance st =
    match st.stage with
    | Ready | Completed _ | Task_failed _ -> ()
    | Wait_fund (wallet, tx) -> (
      match receipt tx with
      | Some { State.status = State.Ok _; _ } -> publish st wallet
      | Some { State.status = State.Failed e; _ } -> fail st ("funding failed: " ^ e)
      | None -> retry st "funding" (fun () -> submit tx))
    | Wait_publish (task, tx) -> (
      match receipt tx with
      | Some { State.status = State.Ok (Some addr); _ }
        when Address.equal addr task.Requester.contract ->
        let txs = answer_txs st task in
        List.iter submit txs;
        st.attempts <- 0;
        st.stage <- Wait_answers (task, txs)
      | Some { State.status = State.Ok _; _ } ->
        fail st "publish: contract address prediction failed"
      | Some { State.status = State.Failed e; _ } -> fail st ("publish failed: " ^ e)
      | None -> retry st "publish" (fun () -> submit tx))
    | Wait_answers (task, txs) -> (
      let rs = List.map receipt txs in
      match
        List.find_opt
          (function Some { State.status = State.Failed _; _ } -> true | _ -> false)
          rs
      with
      | Some (Some { State.status = State.Failed e; _ }) ->
        fail st ("submission failed: " ^ e)
      | _ ->
        if List.for_all Option.is_some rs then instruct st task
        else
          retry st "submissions" (fun () ->
              List.iter2
                (fun tx r -> if r = None then submit tx)
                txs rs))
    | Wait_instruct (_, tx) -> (
      match receipt tx with
      | Some { State.status = State.Ok _; _ } ->
        let dt = now () -. st.started in
        Obs.Histogram.observe h_settle dt;
        Obs.Counter.incr m_completed;
        st.stage <- Completed dt
      | Some { State.status = State.Failed e; _ } -> fail st ("instruct failed: " ^ e)
      | None -> retry st "instruct" (fun () -> submit tx))
  in
  let t0 = now () in
  while unfinished () do
    (* Admit new tasks up to the in-flight window, mine one block, then
       advance every pipeline on its receipts. *)
    Array.iter
      (fun st -> if st.stage = Ready && active () < cfg.inflight then start_task st)
      states;
    let results = Network.mine_ext net in
    List.iter
      (function Network.Conflict_retry _ -> incr conflict_retries | _ -> ())
      results;
    Array.iter advance states
  done;
  let elapsed = now () -. t0 in
  let latencies =
    Array.to_list states
    |> List.filter_map (fun st -> match st.stage with Completed dt -> Some dt | _ -> None)
  in
  let completed = List.length latencies in
  let failures =
    Array.to_list states
    |> List.filter_map (fun st ->
           match st.stage with Task_failed e -> Some (st.index, e) | _ -> None)
  in
  let txs =
    List.fold_left (fun acc (b : Block.t) -> acc + List.length b.Block.txs) 0
      (Network.blocks net)
  in
  let replicas_agree =
    let root0 = Network.node_state_root net 0 in
    let agree = ref true in
    for i = 1 to cfg.num_nodes - 1 do
      if not (Bytes.equal (Network.node_state_root net i) root0) then agree := false
    done;
    !agree
  in
  let replay_matches =
    if cfg.verify_replay then
      Some (Bytes.equal (Network.replay net) (Network.state_root net))
    else None
  in
  (* The off-chain indexer rebuilds every contract purely from chain
     events; after a full marketplace run its mirror must be
     byte-identical to the chain (the read-path consistency oracle). *)
  let indexer_agrees =
    let idx = Zebra_index.Indexer.create () in
    ignore (Zebra_index.Indexer.sync idx net);
    Zebra_index.Indexer.agrees idx net
  in
  let pctile q =
    if Obs.enabled () then Obs.Histogram.percentile h_settle q
    else
      (* Exact fallback when observability is off. *)
      match List.sort compare latencies with
      | [] -> nan
      | sorted ->
        let arr = Array.of_list sorted in
        let rank = int_of_float (Float.ceil (q *. float_of_int (Array.length arr))) in
        arr.(max 0 (min (Array.length arr - 1) (rank - 1)))
  in
  {
    tasks_completed = completed;
    tasks_failed = List.length failures;
    failures;
    blocks = Network.height net;
    txs;
    conflict_retries = !conflict_retries;
    elapsed_s = elapsed;
    tasks_per_sec = (if elapsed > 0. then float_of_int completed /. elapsed else 0.);
    txs_per_sec = (if elapsed > 0. then float_of_int txs /. elapsed else 0.);
    settle_p50_s = pctile 0.5;
    settle_p99_s = pctile 0.99;
    state_root = Sha256.to_hex (Network.state_root net);
    replicas_agree;
    supply_conserved = Network.total_supply net = supply0;
    replay_matches;
    indexer_agrees;
  }

(* Deterministic facts only — what the CI gate diffs across ZEBRA_DOMAINS
   settings.  Timing lines live in [render_timing]. *)
let render_deterministic r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "tasks completed: %d\n" r.tasks_completed);
  Buffer.add_string b (Printf.sprintf "tasks failed: %d\n" r.tasks_failed);
  List.iter
    (fun (i, e) -> Buffer.add_string b (Printf.sprintf "  task %d: %s\n" i e))
    r.failures;
  Buffer.add_string b (Printf.sprintf "blocks: %d\n" r.blocks);
  Buffer.add_string b (Printf.sprintf "txs: %d\n" r.txs);
  Buffer.add_string b (Printf.sprintf "conflict retries: %d\n" r.conflict_retries);
  Buffer.add_string b (Printf.sprintf "state root: %s\n" r.state_root);
  Buffer.add_string b (Printf.sprintf "replicas agree: %b\n" r.replicas_agree);
  Buffer.add_string b (Printf.sprintf "supply conserved: %b\n" r.supply_conserved);
  (match r.replay_matches with
  | Some ok -> Buffer.add_string b (Printf.sprintf "serial replay matches: %b\n" ok)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "indexer agrees: %b\n" r.indexer_agrees);
  Buffer.contents b

let render_timing r =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "# elapsed: %.2f s\n" r.elapsed_s);
  Buffer.add_string b (Printf.sprintf "# tasks/sec: %.3f\n" r.tasks_per_sec);
  Buffer.add_string b (Printf.sprintf "# txs/sec: %.3f\n" r.txs_per_sec);
  Buffer.add_string b (Printf.sprintf "# settle p50: %.3f s\n" r.settle_p50_s);
  Buffer.add_string b (Printf.sprintf "# settle p99: %.3f s\n" r.settle_p99_s);
  Buffer.contents b

let ok r = r.tasks_failed = 0 && r.replicas_agree && r.supply_conserved
           && r.replay_matches <> Some false && r.indexer_agrees
