(** Requester client (off-chain): publishes tasks and produces reward
    instructions with their zk-SNARK proofs.

    The requester's secrets — her long-term CPLA key, the task encryption
    key [esk], and the SNARK proving key — never touch the chain; only the
    contract parameters, the budget and the proofs do. *)

type task = {
  wallet : Zebra_chain.Wallet.t;  (** the one-task-only address alpha_R *)
  contract : Zebra_chain.Address.t;  (** predicted alpha_C *)
  esk : Zebra_elgamal.Elgamal.secret_key Zebra_secret.Secret.t;
      (** the task decryption key, boxed — read it with [Secret.use] *)
  circuit : Reward_circuit.t;
  params : Task_contract.params;
}

(** Canary bytes of the boxed [esk] for the ZL2xx secret-flow lint (see
    {!Zebra_elgamal.Elgamal.secret_canary}). *)
val esk_canary : task -> bytes

(** [create_task ~random_bytes ~cpla ~key ~cert_index ~ra_path ~ra_root
     ~wallet ~policy ~n ~budget ~answer_deadline ~instruct_deadline]
    prepares everything TaskPublish needs: a fresh ElGamal task key, the
    reward-circuit setup, the predicted contract address (from the wallet's
    current nonce, which the caller supplies as [nonce]), the anonymous
    attestation pi_R over [alpha_C || alpha_R], and the signed deployment
    transaction carrying the budget.

    [?circuit] reuses an existing reward-circuit setup — a requester running
    a batch of same-shape tasks (the paper's ImageNet-scale open question)
    pays the trusted setup once.  @raise Invalid_argument if its policy or
    arity does not match. *)
val create_task :
  ?circuit:Reward_circuit.t ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?fee:int ->
  random_bytes:(int -> bytes) ->
  cpla:Zebra_anonauth.Cpla.params ->
  key:Zebra_anonauth.Cpla.user_key ->
  cert_index:int ->
  ra_path:Fp.t array ->
  ra_root:Fp.t ->
  wallet:Zebra_chain.Wallet.t ->
  nonce:int ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  answer_deadline:int ->
  instruct_deadline:int ->
  unit ->
  task * Zebra_chain.Tx.t

(** [decrypt_answers task storage] — the off-chain retrieval step of the
    Reward phase: decrypt every submission, mapping undecodable plaintexts
    and missing slots to bottom. *)
val decrypt_answers : task -> Task_contract.storage -> Policy.answer array

(** The payees a settlement transaction must declare as its footprint:
    every submission's worker plus the requester refund destination,
    minus [sender] — the executor's static footprint
    ({!Zebra_chain.Exec.static_footprint}) already covers the sender, so
    re-declaring it would be exactly the over-declaration the ZL102 lint
    rejects.  One payee list serves both Instruct (sender = requester) and
    Finalize (sender = any caller); the ZL1xx conflict signatures assert
    the declaration is sound and minimal against the executor's mask. *)
val settlement_footprint :
  sender:Zebra_chain.Address.t -> Task_contract.storage -> Zebra_chain.Address.t list

(** [instruct ~random_bytes task ~storage ~nonce] computes the policy
    rewards, proves the instruction correct, and returns the rewards with
    the signed transaction.  The transaction declares the settlement
    payees as its footprint (see {!Zebra_chain.Tx.make_ext}) so the
    parallel executor can run unrelated settlements concurrently; [?fee]
    (default 0) sets its inclusion priority. *)
val instruct :
  ?fee:int ->
  random_bytes:(int -> bytes) ->
  task ->
  storage:Task_contract.storage ->
  nonce:int ->
  int array * Zebra_chain.Tx.t

(** Like {!instruct} but sending an arbitrary (possibly wrong) reward
    vector, still honestly proved — used by tests to show that a lying
    vector cannot be proved, and by the false-reporting attack demo. *)
val instruct_with_rewards :
  ?fee:int ->
  random_bytes:(int -> bytes) ->
  task ->
  storage:Task_contract.storage ->
  nonce:int ->
  rewards:int array ->
  int array * Zebra_chain.Tx.t
