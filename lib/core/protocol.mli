(** End-to-end protocol orchestration over the simulated network.

    This module wires the pieces into the four phases of Section V-B —
    Register, TaskPublish, AnswerCollection, Reward — plus the timeout
    fallback, and is what the examples, integration tests and benchmarks
    drive.  Lower-level steps are exposed so adversarial scenarios can
    deviate at any point.

    {b Error handling}: every phase driver comes in two forms.  The
    [_r]-suffixed functions return [('a, error) result] with a typed
    {!error} describing which on-chain step rejected and why; the historic
    functions are thin wrappers that [failwith] on [Error] and remain
    source-compatible.

    {b Observability}: each phase runs under a [Zebra_obs] span
    ([protocol.register], [protocol.task_publish],
    [protocol.answer_collection], [protocol.reward], [protocol.finalize]) —
    inert until [Zebra_obs.Obs.set_enabled true]. *)

type system = {
  net : Zebra_chain.Network.t;
  cpla : Zebra_anonauth.Cpla.params;
  ra : Zebra_anonauth.Ra.t;
  ra_contract : Zebra_chain.Address.t;
  faucet : Zebra_chain.Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
      (** the RA's classical signing key for the non-anonymous mode *)
  rng : Zebra_rng.Source.t;
}

(** A registered participant: long-term CPLA identity plus certificate. *)
type identity = { key : Zebra_anonauth.Cpla.user_key; cert_index : int }

(** Why a phase was rejected on-chain. *)
type error =
  | Deploy_rejected of string  (** TaskPublish: contract creation reverted *)
  | Submission_rejected of { worker : int; reason : string }
      (** AnswerCollection: the [worker]-th submission (0-based, in
          submission order) was declined client-side or reverted on-chain *)
  | Instruction_rejected of string  (** Reward: the instruction reverted *)

val error_to_string : error -> string

(** [create_system ~seed ()] boots a fresh chain (default 3 nodes), runs the
    CPLA trusted setup (default RA tree depth 6), deploys the RA interface
    contract, and funds a faucet.  [?rng] overrides the randomness source
    (default: a deterministic ChaCha20 stream keyed by [seed]). *)
val create_system :
  ?num_nodes:int ->
  ?tree_depth:int ->
  ?wallet_bits:int ->
  ?rng:Zebra_rng.Source.t ->
  seed:string ->
  unit ->
  system

val random_bytes : system -> int -> bytes

(** Register phase: one-off identity creation at the RA (off-chain), with
    the new tree root posted to the RA contract. *)
val enroll : system -> identity

(** Register for the non-anonymous mode: an RSA keypair plus the RA's
    classical certificate over it. *)
val enroll_plain : system -> Zebra_rsa.Rsa.private_key * Plain_auth.cert

(** Serialised RA key to put in task params to enable plain submissions. *)
val ra_rsa_pub_bytes : system -> bytes

(** [fresh_funded_wallet sys ~amount] — a new one-task-only address funded
    from the faucet (one block is mined). *)
val fresh_funded_wallet : system -> amount:int -> Zebra_chain.Wallet.t

(** Read and decode a task contract's storage from the chain. *)
val task_storage : system -> Zebra_chain.Address.t -> Task_contract.storage

(** TaskPublish: returns the requester's task handle after the deployment
    transaction is mined.  Deadlines are windows in blocks from now. *)
val publish_task_r :
  system ->
  requester:identity ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?circuit:Reward_circuit.t ->
  unit ->
  (Requester.task, error) result

(** Raising wrapper around {!publish_task_r}.
    @raise Failure if deployment fails. *)
val publish_task :
  system ->
  requester:identity ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?circuit:Reward_circuit.t ->
  unit ->
  Requester.task

(** AnswerCollection: each worker validates the task and submits one
    encrypted answer from a fresh address; everything is mined into the
    next block(s).  Returns each worker's one-task wallet (to observe the
    payment).  On [Error (Submission_rejected _)] the index identifies the
    offending worker; earlier accepted submissions stay on-chain. *)
val submit_answers_r :
  system ->
  task:Zebra_chain.Address.t ->
  workers:(identity * int) list ->
  (Zebra_chain.Wallet.t list, error) result

(** Raising wrapper around {!submit_answers_r}.
    @raise Failure if a submission is rejected. *)
val submit_answers :
  system ->
  task:Zebra_chain.Address.t ->
  workers:(identity * int) list ->
  Zebra_chain.Wallet.t list

(** Reward: the requester decrypts, computes rewards, proves and instructs;
    mined immediately.  Returns the reward vector. *)
val reward_r : system -> Requester.task -> (int array, error) result

(** Raising wrapper around {!reward_r}.
    @raise Failure if the contract rejects the instruction. *)
val reward : system -> Requester.task -> int array

(** Fallback: mine past the instruction deadline and have anyone call
    Finalize. *)
val finalize : system -> Requester.task -> unit

(** Audit: re-verify every submission attestation mined for [task], the way
    an external verifier (or a full node replaying the chain) would — walks
    the blocks for Submit/Submit_plain transactions addressed to the task
    contract and re-checks each attestation against the contract's
    verification key, root and the actual sender/ciphertext digest.
    Verifications fan out over the parallel pool (one submission per
    chunk); the verdict is the conjunction and is independent of
    [ZEBRA_DOMAINS].  Returns [(all_valid, attestations_checked)].  Runs
    under the [protocol.audit] span and bumps the
    [protocol.audit.attestations] counter. *)
val audit_task : system -> task:Zebra_chain.Address.t -> bool * int

(** Batch driver for same-shape tasks: one requester, one worker pool, one
    reward-circuit setup shared across the whole batch (the amortisation a
    data-set-scale deployment needs).  Each inner list is one task's
    answers; all must have the same length. *)
val run_batch :
  system ->
  policy:Policy.t ->
  budget_per_task:int ->
  answer_sets:int list list ->
  int array list

(** One-call driver used by examples and benches: publish, collect the
    given answers, reward.  Returns the task, the worker wallets (in
    submission order) and the reward vector. *)
val run_task :
  system ->
  policy:Policy.t ->
  budget:int ->
  answers:int list ->
  Requester.task * Zebra_chain.Wallet.t list * int array
