(** End-to-end protocol orchestration over the simulated network.

    This module wires the pieces into the four phases of Section V-B —
    Register, TaskPublish, AnswerCollection, Reward — plus the timeout
    fallback, and is what the examples, integration tests and benchmarks
    drive.  Lower-level steps are exposed so adversarial scenarios can
    deviate at any point.

    {b Error handling}: every phase driver comes in two forms.  The
    [_r]-suffixed functions return [('a, error) result] with a typed
    {!error} describing which on-chain step rejected and why; the historic
    functions are thin wrappers that [failwith] on [Error] and remain
    source-compatible.

    {b Fault tolerance}: the [_r] drivers ride out transient network
    faults (see [Zebra_faults]).  Each broadcast is confirmed by receipt;
    a missing receipt is waited out for [retry.backoff_blocks] further
    blocks — the synchrony bound — then rebroadcast, up to
    [retry.max_attempts] broadcasts before [Timed_out].  Rebroadcasts are
    idempotent: a late-arriving delayed copy fails nonce replay and the
    first mined receipt is canonical.  A replica divergence the chain
    cannot mask surfaces as [Node_down].  On the fault-free happy path the
    drivers mine exactly the same blocks as before the retry layer
    existed, so deterministic block-layout expectations hold.

    {b Observability}: each phase runs under a [Zebra_obs] span
    ([protocol.register], [protocol.task_publish],
    [protocol.answer_collection], [protocol.reward], [protocol.finalize]) —
    inert until [Zebra_obs.Obs.set_enabled true]. *)

(** Bounded-retry policy for the [_r] phase drivers: up to [max_attempts]
    broadcasts of a transaction, each followed by at most [backoff_blocks]
    extra blocks of waiting for the receipt. *)
type retry_policy = { max_attempts : int; backoff_blocks : int }

(** [{ max_attempts = 3; backoff_blocks = 2 }] — rides out any delay fault
    with [delay_blocks <= 2] and any drop rate that spares one of three
    broadcasts. *)
val default_retry : retry_policy

type system = {
  net : Zebra_chain.Network.t;
  cpla : Zebra_anonauth.Cpla.params;
  ra : Zebra_anonauth.Ra.t;
  ra_contract : Zebra_chain.Address.t;
  faucet : Zebra_chain.Wallet.t;
  ra_rsa : Zebra_rsa.Rsa.private_key;
      (** the RA's classical signing key for the non-anonymous mode *)
  rng : Zebra_rng.Source.t;
  setup_seed : string;
      (** the [~seed] passed to {!create_system} — trusted-setup randomness
          for cached circuits derives from it, never from [rng] *)
  keycache : Zebra_snark.Snark.Keycache.t;
      (** keypair cache behind {!publish_task}; capacity from
          [ZEBRA_KEYCACHE] *)
  mutable retry : retry_policy;
}

(** A registered participant: long-term CPLA identity plus certificate. *)
type identity = { key : Zebra_anonauth.Cpla.user_key; cert_index : int }

(** Why a phase was rejected on-chain. *)
type error =
  | Deploy_rejected of string  (** TaskPublish: contract creation reverted *)
  | Submission_rejected of { worker : int; reason : string }
      (** AnswerCollection: the [worker]-th submission (0-based, in
          submission order) was declined client-side or reverted on-chain *)
  | Instruction_rejected of string  (** Reward: the instruction reverted *)
  | Timed_out of { phase : string; attempts : int }
      (** the phase's transaction was never mined despite [attempts]
          broadcasts — the fault plan exceeded the retry policy's
          synchrony bound *)
  | Node_down of string
      (** a replica failure the chain could not mask (a crashed node whose
          re-sync diverged, or live replicas disagreeing) *)

val error_to_string : error -> string

(** Replace the retry policy (default {!default_retry}).
    @raise Invalid_argument if [max_attempts < 1] or [backoff_blocks < 0]. *)
val set_retry : system -> retry_policy -> unit

(** [create_system ~seed ()] boots a fresh chain (default 3 nodes), runs the
    CPLA trusted setup (default RA tree depth 6) through the system
    keycache, deploys the RA interface contract, and funds a faucet.
    [?rng] overrides the randomness source (default: a deterministic
    ChaCha20 stream keyed by [seed]).  [?composition] selects the hash
    composition of the whole system — CPLA circuit, RA tree, reward and
    reputation keygen all follow it (default
    {!Zebra_hashcomp.Hash_composition.default}, i.e. Poseidon). *)
val create_system :
  ?num_nodes:int ->
  ?tree_depth:int ->
  ?wallet_bits:int ->
  ?rng:Zebra_rng.Source.t ->
  ?retry:retry_policy ->
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  seed:string ->
  unit ->
  system

val random_bytes : system -> int -> bytes

(** Register phase: one-off identity creation at the RA (off-chain), with
    the new tree root posted to the RA contract. *)
val enroll_r : system -> (identity, error) result

(** Raising wrapper around {!enroll_r}. *)
val enroll : system -> identity

(** Register for the non-anonymous mode: an RSA keypair plus the RA's
    classical certificate over it. *)
val enroll_plain : system -> Zebra_rsa.Rsa.private_key * Plain_auth.cert

(** Serialised RA key to put in task params to enable plain submissions. *)
val ra_rsa_pub_bytes : system -> bytes

(** [fresh_funded_wallet sys ~amount] — a new one-task-only address funded
    from the faucet (one block is mined). *)
val fresh_funded_wallet : system -> amount:int -> Zebra_chain.Wallet.t

(** Like {!fresh_funded_wallet} but fault-tolerant; [phase] labels a
    [Timed_out]. *)
val fresh_funded_wallet_r :
  system -> phase:string -> amount:int -> (Zebra_chain.Wallet.t, error) result

(** Read and decode a task contract's storage from the chain. *)
val task_storage : system -> Zebra_chain.Address.t -> Task_contract.storage

(** TaskPublish: returns the requester's task handle after the deployment
    transaction is mined.  Deadlines are windows in blocks from now. *)
val publish_task_r :
  system ->
  requester:identity ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?circuit:Reward_circuit.t ->
  unit ->
  (Requester.task, error) result

(** Raising wrapper around {!publish_task_r}.
    @raise Failure if deployment fails. *)
val publish_task :
  system ->
  requester:identity ->
  policy:Policy.t ->
  n:int ->
  budget:int ->
  ?answer_window:int ->
  ?instruct_window:int ->
  ?max_per_worker:int ->
  ?ra_rsa_pub:bytes ->
  ?data_digest:bytes ->
  ?circuit:Reward_circuit.t ->
  unit ->
  Requester.task

(** AnswerCollection: each worker validates the task and submits one
    encrypted answer from a fresh address; everything is mined into the
    next block(s).  Returns each worker's one-task wallet (to observe the
    payment).  On [Error (Submission_rejected _)] the index identifies the
    offending worker; earlier accepted submissions stay on-chain. *)
val submit_answers_r :
  system ->
  task:Zebra_chain.Address.t ->
  workers:(identity * int) list ->
  (Zebra_chain.Wallet.t list, error) result

(** Raising wrapper around {!submit_answers_r}.
    @raise Failure if a submission is rejected. *)
val submit_answers :
  system ->
  task:Zebra_chain.Address.t ->
  workers:(identity * int) list ->
  Zebra_chain.Wallet.t list

(** Reward: the requester decrypts, computes rewards, proves and instructs;
    mined immediately.  Returns the reward vector. *)
val reward_r : system -> Requester.task -> (int array, error) result

(** Raising wrapper around {!reward_r}.
    @raise Failure if the contract rejects the instruction. *)
val reward : system -> Requester.task -> int array

(** [mine_to_r sys ~height] mines (possibly empty) blocks up to [height].
    Unlike [Network.mine_until] it surfaces a replica failure tripped by
    the block clock (a scheduled crash whose re-sync diverges) as
    [Error (Node_down _)]. *)
val mine_to_r : system -> height:int -> (unit, error) result

(** Fallback: mine past the instruction deadline and have anyone call
    Finalize — refunds the untouched budget to the requester and pays the
    flat fallback to each submitted worker (the paper's timeout path when
    the requester never instructs). *)
val finalize_r : system -> Requester.task -> (unit, error) result

(** Raising wrapper around {!finalize_r}. *)
val finalize : system -> Requester.task -> unit

(** What an audit found.  [offenders] are indices into the chain-ordered
    submission list (the order {!audit_task_report} scanned the blocks in),
    sorted ascending; [batches]/[fallbacks] count the random-linear-
    combination blocks checked and how many of them failed and were
    re-verified proof by proof. *)
type audit_report = {
  all_valid : bool;
  checked : int;
  batches : int;
  fallbacks : int;
  offenders : int list;
}

(** Audit: re-verify every submission attestation mined for [task], the way
    an external verifier (or a full node replaying the chain) would — walks
    the blocks for Submit/Submit_plain transactions addressed to the task
    contract and re-checks each attestation against the contract's
    verification key, root and the actual sender/ciphertext digest.

    Anonymous attestations all verify under the contract's one CPLA key, so
    they are checked in blocks of [batch_size] (default 32) with a single
    random-linear-combination test per block
    ({!Zebra_snark.Snark.batch_verify}); a failed block falls back to
    per-proof verification, so [offenders] names exactly the bad
    submissions.  Classical (RSA) attestations verify individually.  The
    RLC challenge is Fiat–Shamir ({!Zebra_snark.Snark.batch_seed}): hashed
    from each block's proofs and public inputs, tagged with [seed]
    (default: derived from the task address) plus the batch number — sound
    against adversarially crafted submissions (the challenge cannot be
    predicted before submitting), yet the audit is replayable from the
    chain alone and its result independent of [ZEBRA_DOMAINS] and of
    [batch_size].  Runs under the [protocol.audit] span; bumps
    [protocol.audit.attestations] and the [audit.batch.*] counters.
    @raise Invalid_argument when [batch_size < 1]. *)
val audit_task_report :
  ?batch_size:int -> ?seed:string -> system -> task:Zebra_chain.Address.t -> audit_report

(** [audit_task sys ~task] is {!audit_task_report} reduced to
    [(all_valid, attestations_checked)] (the pre-batching interface). *)
val audit_task : system -> task:Zebra_chain.Address.t -> bool * int

(** Batch driver for same-shape tasks: one requester, one worker pool, one
    reward-circuit setup shared across the whole batch (the amortisation a
    data-set-scale deployment needs).  Each inner list is one task's
    answers; all must have the same length. *)
val run_batch :
  system ->
  policy:Policy.t ->
  budget_per_task:int ->
  answer_sets:int list list ->
  int array list

(** One-call driver used by examples and benches: publish, collect the
    given answers, reward.  Returns the task, the worker wallets (in
    submission order) and the reward vector. *)
val run_task :
  system ->
  policy:Policy.t ->
  budget:int ->
  answers:int list ->
  Requester.task * Zebra_chain.Wallet.t list * int array
