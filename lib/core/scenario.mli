(** The shared seeded end-to-end scenario fixture.

    One canonical marketplace run: two tasks (one settled by the
    requester's Instruct, one by the third-party Finalize fallback, both
    with a refund branch) and a complete reputation-board lifecycle
    (deploy, credit, zero-knowledge link claim, epoch advance).  Every
    transaction kind the protocol can put on chain appears at least once.

    [Deployed_txs] harvests it for the tx-lint corpus, the indexer tests
    replay it as ground truth, and [zebra index] demos against it — one
    builder, no clones.  The build is deterministic in [seed]: same seed,
    byte-identical chain. *)

type t = {
  sys : Protocol.system;
  requester : Protocol.identity;
  w1 : Protocol.identity;
  w2 : Protocol.identity;
  task_a : Requester.task;  (** settled by Instruct *)
  task_b : Requester.task;  (** settled by Finalize *)
  board : Zebra_chain.Address.t;  (** the reputation board contract *)
  rep : Reputation.params;  (** the board's link-proof circuit keys *)
}

(** Build the scenario on a fresh system (default seed:
    ["deployed-txs/lint-scenario-v1"] — the tx-lint corpus seed). *)
val build : ?seed:string -> unit -> t

val default_seed : string
