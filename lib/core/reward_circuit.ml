module Snark = Zebra_snark.Snark
module Elgamal = Zebra_elgamal.Elgamal
module Hash_composition = Zebra_hashcomp.Hash_composition
open Zebra_r1cs

type t = {
  policy : Policy.t;
  n : int;
  composition : Hash_composition.t;
  keys : Snark.keypair;
  n_constraints : int;
}

(* How the contract derives the public "unit reward" input from the budget:
   tau/n for majority policies, the per-winner cap tau/k for auctions. *)
let rho_of ~policy ~budget ~n =
  match policy with
  | Policy.Majority _ | Policy.Majority_threshold _ -> budget / n
  | Policy.Reverse_auction { winners; _ } -> if winners > 0 then budget / winners else 0

(* Bits needed to compare values bounded by [bound]. *)
let bits_for bound =
  let rec go b acc = if acc >= bound then b else go (b + 1) (2 * acc) in
  go 1 2

let money_bits = 61

(* --- circuit synthesis --- *)

(* Shared front end: allocate public inputs, decrypt every slot.
   Returns (cs, rho_var, per-slot plaintext vars, reward vars). *)
let synthesize_common ~n ~epk ~rho ~cts ~rewards ~esk_bits ~plaintexts =
  let cs = Cs.create () in
  let open Gadgets in
  let v_epk = Cs.alloc_input cs epk in
  let v_rho = Cs.alloc_input cs (Fp.of_int rho) in
  let v_cts =
    Array.map
      (fun (ct : Elgamal.ciphertext) ->
        let c1 = Cs.alloc_input cs ct.Elgamal.c1 in
        let c2 = Cs.alloc_input cs ct.Elgamal.c2 in
        (c1, c2))
      cts
  in
  let v_rewards = Array.map (fun r -> Cs.alloc_input cs (Fp.of_int r)) rewards in
  (* Witness: esk bits; pair(esk, epk) = 1. *)
  let bits = Array.map (alloc_bit cs) esk_bits in
  let g_esk = exp cs ~base:(c Elgamal.g) ~bits in
  enforce_eq cs ~label:"pair(esk,epk)" (v g_esk) (v v_epk);
  (* Per slot: m_j * c1^esk = c2, and missing slots pin m_j = 0. *)
  let v_m =
    Array.mapi
      (fun j (c1, c2) ->
        let m = Cs.alloc cs ~label:(Printf.sprintf "answer[%d]" j) plaintexts.(j) in
        let pow = exp cs ~base:(v c1) ~bits in
        Cs.enforce cs ~label:(Printf.sprintf "decrypt[%d]" j) (v m) (v pow) (v c2);
        let miss = is_zero cs (v c1) in
        Cs.enforce cs ~label:(Printf.sprintf "missing[%d]" j) (v miss) (v m) [];
        m)
      v_cts
  in
  ignore n;
  (cs, v_rho, v_m, v_rewards)

(* Majority / majority-with-quota tail. *)
let synthesize_majority ~choices ~quota (cs, v_rho, v_m, v_rewards) =
  let open Gadgets in
  let n = Array.length v_m in
  let count_bits = bits_for (n + 1) in
  (* eq_jc: answer j encodes choice c (encoding c+1). *)
  let eq_tbl =
    Array.map (fun m -> Array.init choices (fun ch -> eq cs (v m) (ci (ch + 1)))) v_m
  in
  let count ch =
    Array.fold_left (fun acc row -> acc +: v row.(ch)) [] eq_tbl
  in
  (* Arg-max with ties to the smallest choice. *)
  let best_count = ref (count 0) in
  let best_choice = ref (c Fp.zero) in
  for ch = 1 to choices - 1 do
    let cnt = count ch in
    let gt = less_than cs !best_count cnt ~bits:count_bits in
    best_count := v (select cs ~cond:gt cnt !best_count);
    best_choice := v (select cs ~cond:gt (ci ch) !best_choice)
  done;
  let maj_enc = !best_choice +: c Fp.one in
  let gate =
    if quota <= 0 then None
    else begin
      let lt = less_than cs !best_count (ci quota) ~bits:count_bits in
      Some (c Fp.one -: lt)
    end
  in
  Array.iteri
    (fun j m ->
      let correct = eq cs (v m) maj_enc in
      match gate with
      | None ->
        Cs.enforce cs ~label:(Printf.sprintf "reward[%d]" j) (v v_rho) (v correct)
          (v v_rewards.(j))
      | Some gate ->
        let base = mul cs (v v_rho) (v correct) in
        Cs.enforce cs ~label:(Printf.sprintf "reward[%d]" j) (v base) gate (v v_rewards.(j)))
    v_m;
  cs

(* Reverse auction tail: rank every slot by (bid, submission index), pay the
   [k] best a (k+1)-price clamped by [rho] (the per-winner cap). *)
let synthesize_auction ~winners ~max_bid (cs, v_rho, v_m, v_rewards) =
  let open Gadgets in
  let n = Array.length v_m in
  let s_bound = max_bid + 2 in
  let s_bits = bits_for s_bound in
  let rank_bits = bits_for (n + 1) in
  (* Valid bids: m encodes bid+1 in [1, max_bid+1].  eq against each value
     is sound on unbounded field elements (unlike a range decomposition). *)
  let sort_keys =
    Array.map
      (fun m ->
        let eqs = Array.init (max_bid + 1) (fun b -> eq cs (v m) (ci (b + 1))) in
        let valid = Array.fold_left (fun acc e -> acc +: v e) [] eqs in
        let bid =
          Array.to_list eqs
          |> List.mapi (fun b e -> scale (Fp.of_int b) (v e))
          |> List.concat
        in
        (* s = bid when valid, max_bid+1 when invalid *)
        let s = bid +: scale (Fp.of_int (max_bid + 1)) (c Fp.one -: valid) in
        (s, valid))
      v_m
  in
  (* beats.(i).(j) for i < j: slot i sorts before slot j. *)
  let beats = Array.make_matrix n n (c Fp.zero) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let si, _ = sort_keys.(i) and sj, _ = sort_keys.(j) in
      let lt_ij = less_than cs si sj ~bits:s_bits in
      let eq_ij = eq cs si sj in
      beats.(i).(j) <- lt_ij +: v eq_ij;
      (* earlier index wins ties *)
      beats.(j).(i) <- c Fp.one -: beats.(i).(j)
    done
  done;
  let ranks =
    Array.init n (fun j ->
        let acc = ref [] in
        for i = 0 to n - 1 do
          if i <> j then acc := !acc +: beats.(i).(j)
        done;
        !acc)
  in
  (* Clearing price: the sort key at rank [winners]; max_bid if absent or
     above max_bid (no valid loser). *)
  let at_rank_k =
    Array.init n (fun j -> eq cs ranks.(j) (ci winners))
  in
  let has_loser = Array.fold_left (fun acc e -> acc +: v e) [] at_rank_k in
  let price_raw =
    let acc = ref (scale (Fp.of_int max_bid) (c Fp.one -: has_loser)) in
    Array.iteri
      (fun j e ->
        let s, _ = sort_keys.(j) in
        acc := !acc +: v (mul cs (v e) s))
      at_rank_k;
    !acc
  in
  let over = less_than cs (ci max_bid) price_raw ~bits:s_bits in
  let price = v (select cs ~cond:over (ci max_bid) price_raw) in
  (* pay = min(price, rho) *)
  let cap_hit = less_than cs (v v_rho) price ~bits:money_bits in
  let pay = select cs ~cond:cap_hit (v v_rho) price in
  Array.iteri
    (fun j rank ->
      let _, valid = sort_keys.(j) in
      let in_top = less_than cs rank (ci winners) ~bits:rank_bits in
      let winner = mul cs in_top valid in
      let w_pay = mul cs (v winner) (v pay) in
      enforce_eq cs ~label:(Printf.sprintf "reward[%d]" j) (v w_pay) (v v_rewards.(j)))
    ranks;
  cs

let synthesize ~policy ~n ~epk ~rho ~cts ~rewards ~esk_bits ~plaintexts =
  let front = synthesize_common ~n ~epk ~rho ~cts ~rewards ~esk_bits ~plaintexts in
  match policy with
  | Policy.Majority { choices } -> synthesize_majority ~choices ~quota:0 front
  | Policy.Majority_threshold { choices; quota } -> synthesize_majority ~choices ~quota front
  | Policy.Reverse_auction { winners; max_bid } -> synthesize_auction ~winners ~max_bid front

let dummy_ct = Elgamal.missing

(* The structure the trusted setup compiles (dummy inputs) — also what the
   static analyzer inspects. *)
let constraint_system ~policy ~n =
  if n <= 0 then invalid_arg "Reward_circuit.constraint_system: need n > 0";
  synthesize ~policy ~n ~epk:Fp.one ~rho:0 ~cts:(Array.make n dummy_ct)
    ~rewards:(Array.make n 0)
    ~esk_bits:(Array.make Elgamal.exponent_bits false)
    ~plaintexts:(Array.make n Fp.zero)

let setup ?(composition = Hash_composition.default) ~random_bytes ~policy ~n () =
  let cs = constraint_system ~policy ~n in
  {
    policy;
    n;
    composition;
    keys = Snark.setup ~random_bytes cs;
    n_constraints = Cs.num_constraints cs;
  }

(* (policy, n) determines the synthesised structure, so a digest of the
   policy encoding plus n is a sound cache identifier — the named path lets
   a hit skip synthesis as well as setup.  The policy tails are hash-free,
   so the composition does not change the structure; it is still keyed into
   the id so a cache shared with hash-bearing circuits follows one uniform
   "keypairs never cross arms" rule. *)
let circuit_id ?(composition = Hash_composition.default) ~policy ~n () =
  Printf.sprintf "reward/%s/n=%d/h=%s"
    (Zebra_hashing.Sha256.to_hex (Zebra_hashing.Sha256.digest (Policy.to_bytes policy)))
    n
    (Hash_composition.to_string composition)

let setup_cached ?(composition = Hash_composition.default) cache ~seed ~policy ~n =
  if n <= 0 then invalid_arg "Reward_circuit.setup_cached: need n > 0";
  let keys, shape =
    Snark.Keycache.setup_named cache ~circuit_id:(circuit_id ~composition ~policy ~n ()) ~seed
      (fun () -> constraint_system ~policy ~n)
  in
  { policy; n; composition; keys; n_constraints = shape.Snark.Keycache.constraints }

let policy t = t.policy
let n t = t.n
let composition t = t.composition
let num_constraints t = t.n_constraints
let vk_bytes t = Snark.vk_to_bytes t.keys.Snark.vk
let trapdoor_canary t = Snark.trapdoor_canary t.keys

let public_inputs ~epk ~rho ~cts ~rewards =
  let parts =
    [ epk; Fp.of_int rho ]
    @ List.concat_map
        (fun (ct : Elgamal.ciphertext) -> [ ct.Elgamal.c1; ct.Elgamal.c2 ])
        (Array.to_list cts)
    @ List.map Fp.of_int (Array.to_list rewards)
  in
  Array.of_list parts

let prove ~random_bytes t ~esk ~rho ~cts ~rewards =
  if Array.length cts <> t.n || Array.length rewards <> t.n then
    invalid_arg "Reward_circuit.prove: wrong arity";
  let bits = Elgamal.secret_bits esk in
  let epk =
    let acc = ref Fp.one in
    for i = Array.length bits - 1 downto 0 do
      acc := Fp.sqr !acc;
      if bits.(i) then acc := Fp.mul !acc Elgamal.g
    done;
    !acc
  in
  let plaintexts =
    Array.map
      (fun ct -> if Elgamal.is_missing ct then Fp.zero else Elgamal.decrypt esk ct)
      cts
  in
  let cs =
    synthesize ~policy:t.policy ~n:t.n ~epk ~rho ~cts ~rewards ~esk_bits:bits ~plaintexts
  in
  Snark.prove ~random_bytes t.keys.Snark.pk cs

let verify ~vk_bytes ~epk ~rho ~cts ~rewards proof =
  match Snark.vk_of_bytes_cached vk_bytes with
  | vk -> Snark.verify vk ~public_inputs:(public_inputs ~epk ~rho ~cts ~rewards) proof
  | exception Zebra_codec.Codec.Decode_error _ -> false
