module Cs = Zebra_r1cs.Cs
module Gadgets = Zebra_r1cs.Gadgets
module Cpla = Zebra_anonauth.Cpla

(* A depth-[d] Merkle membership circuit over the given compression
   gadget, with fixed (deterministic) leaf and sibling values — the "hash
   gadget composition" shape the benches profile. *)
let merkle_circuit ~depth root_gadget () =
  let cs = Cs.create () in
  let open Gadgets in
  let leaf = Cs.alloc cs ~label:"leaf" (Fp.of_int 7) in
  let bits = Array.init depth (fun i -> alloc_bit cs (i land 1 = 1)) in
  let siblings =
    Array.init depth (fun i -> Cs.alloc cs ~label:"sibling" (Fp.of_int (i + 1)))
  in
  ignore (root_gadget cs ~leaf:(v leaf) ~path_bits:bits ~siblings : expr);
  cs

let circuits () =
  [
    ("cpla-depth8", fun () -> Cpla.constraint_system ~depth:8);
    ("cpla-depth16", fun () -> Cpla.constraint_system ~depth:16);
    ( "reward-majority-n3",
      fun () -> Reward_circuit.constraint_system ~policy:(Policy.Majority { choices = 4 }) ~n:3
    );
    ( "reward-majority-n5",
      fun () -> Reward_circuit.constraint_system ~policy:(Policy.Majority { choices = 4 }) ~n:5
    );
    ( "reward-quota-n3",
      fun () ->
        Reward_circuit.constraint_system
          ~policy:(Policy.Majority_threshold { choices = 4; quota = 2 })
          ~n:3 );
    ( "reward-auction-n4",
      fun () ->
        Reward_circuit.constraint_system
          ~policy:(Policy.Reverse_auction { winners = 2; max_bid = 15 })
          ~n:4 );
    ("merkle-mimc-16", merkle_circuit ~depth:16 Gadgets.merkle_root);
    ("merkle-poseidon-16", merkle_circuit ~depth:16 Zebra_poseidon.Poseidon.merkle_root_gadget);
  ]

let find name = List.assoc_opt name (circuits ())
let names () = List.map fst (circuits ())
