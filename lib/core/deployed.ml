module Cs = Zebra_r1cs.Cs
module Gadgets = Zebra_r1cs.Gadgets
module Cpla = Zebra_anonauth.Cpla
module Hash_composition = Zebra_hashcomp.Hash_composition

(* A depth-[d] Merkle membership circuit over the given compression
   gadget, with fixed (deterministic) leaf and sibling values — the "hash
   gadget composition" shape the benches profile. *)
let merkle_circuit ~depth root_gadget () =
  let cs = Cs.create () in
  let open Gadgets in
  let leaf = Cs.alloc cs ~label:"leaf" (Fp.of_int 7) in
  let bits = Array.init depth (fun i -> alloc_bit cs (i land 1 = 1)) in
  let siblings =
    Array.init depth (fun i -> Cs.alloc cs ~label:"sibling" (Fp.of_int (i + 1)))
  in
  ignore (root_gadget cs ~leaf:(v leaf) ~path_bits:bits ~siblings : expr);
  cs

(* The protocol circuits, parameterised by the hash composition.  Each is
   deployed as two registry arms ([<base>-poseidon] / [<base>-mimc]) so
   lint gates and benchmarks cover both sides of the ablation. *)
let parameterised =
  [
    ("cpla-depth8", fun composition () -> Cpla.constraint_system ~composition ~depth:8 ());
    ("cpla-depth16", fun composition () -> Cpla.constraint_system ~composition ~depth:16 ());
    ( "reward-majority-n3",
      fun _composition () ->
        Reward_circuit.constraint_system ~policy:(Policy.Majority { choices = 4 }) ~n:3 );
    ( "reward-majority-n5",
      fun _composition () ->
        Reward_circuit.constraint_system ~policy:(Policy.Majority { choices = 4 }) ~n:5 );
    ( "reward-quota-n3",
      fun _composition () ->
        Reward_circuit.constraint_system
          ~policy:(Policy.Majority_threshold { choices = 4; quota = 2 })
          ~n:3 );
    ( "reward-auction-n4",
      fun _composition () ->
        Reward_circuit.constraint_system
          ~policy:(Policy.Reverse_auction { winners = 2; max_bid = 15 })
          ~n:4 );
    ( "reputation-link",
      fun composition () -> Reputation.constraint_system ~composition () );
  ]

let arm_name base composition =
  Printf.sprintf "%s-%s" base (Hash_composition.to_string composition)

let circuits () =
  List.concat_map
    (fun (base, synth) ->
      List.map
        (fun composition -> (arm_name base composition, synth composition))
        Hash_composition.all)
    parameterised
  @ [
      ("merkle-mimc-16", merkle_circuit ~depth:16 Gadgets.merkle_root);
      ("merkle-poseidon-16", merkle_circuit ~depth:16 Zebra_poseidon.Poseidon.merkle_root_gadget);
    ]

(* Legacy bare names ("cpla-depth16") predate the composition arms; they
   resolve to the default (Poseidon) arm so pinned scripts keep working. *)
let find name =
  match List.assoc_opt name (circuits ()) with
  | Some f -> Some f
  | None when List.mem_assoc name parameterised ->
    List.assoc_opt (arm_name name Hash_composition.default) (circuits ())
  | None -> None

let names () = List.map fst (circuits ())
