(** The registry of circuits the protocol actually deploys, synthesised at
    the same dummy assignment the trusted setup uses.

    One list, consumed by three tools that must agree on what "deployed"
    means: the [zebra lint] CLI subcommand, the [scripts/check.sh] CI gate
    (which fails on any [Error]-severity lint finding), and the [bench
    lint] analyzer-cost benchmark.  Synthesis is cheap — no SNARK setup
    runs — so the registry is rebuilt on demand. *)

(** [(name, synthesise)] pairs, in a stable order.  Every protocol circuit
    — the CPLA attestation circuit at the demo and deployment tree depths,
    the reward circuit under each supported policy family, and the
    reputation link circuit — is registered as {e two arms}, one per
    {!Zebra_hashcomp.Hash_composition}: [<base>-poseidon] (the deployed
    default) and [<base>-mimc] (the ablation arm).  The reward arms share
    a structure (the statement is hash-free) but are listed under both
    names so gates and caches treat all circuits uniformly.  The two
    standalone hash-gadget Merkle shapes ([merkle-mimc-16],
    [merkle-poseidon-16]) close the list. *)
val circuits : unit -> (string * (unit -> Zebra_r1cs.Cs.t)) list

(** [find name] — the synthesiser registered under [name].  Legacy bare
    names that predate the composition arms (e.g. ["cpla-depth16"])
    resolve to their Poseidon (default) arm. *)
val find : string -> (unit -> Zebra_r1cs.Cs.t) option

val names : unit -> string list
