(** The registry of circuits the protocol actually deploys, synthesised at
    the same dummy assignment the trusted setup uses.

    One list, consumed by three tools that must agree on what "deployed"
    means: the [zebra lint] CLI subcommand, the [scripts/check.sh] CI gate
    (which fails on any [Error]-severity lint finding), and the [bench
    lint] analyzer-cost benchmark.  Synthesis is cheap — no SNARK setup
    runs — so the registry is rebuilt on demand. *)

(** [(name, synthesise)] pairs, in a stable order: the CPLA attestation
    circuit at the demo and deployment tree depths, the reward circuit
    under each supported policy family, and the two hash-gadget Merkle
    compositions (MiMC and Poseidon) the benchmarks exercise. *)
val circuits : unit -> (string * (unit -> Zebra_r1cs.Cs.t)) list

(** [find name] — the synthesiser registered under [name]. *)
val find : string -> (unit -> Zebra_r1cs.Cs.t) option

val names : unit -> string list
