(** Decoded marketplace views over the chain-event indexer.

    {!Zebra_index.Indexer} mirrors raw contract storage; this module
    decodes the mirrors of the behaviours this repo registers — task
    contracts, reputation boards and the RA interface contract — into
    the "task / worker / reputation state" a dashboard or the
    [zebra index] CLI would show, without ever reading replica state
    directly.  Decoding is total over tracked contracts: anything with
    an unknown behaviour lands in [others] instead of being dropped. *)

module Address = Zebra_chain.Address
module Indexer = Zebra_index.Indexer

type task_view = {
  t_addr : Address.t;
  t_phase : string;  (** ["collecting"] or ["finished"] *)
  t_submissions : int;  (** answers collected so far *)
  t_slots : int;  (** the contract arity [params.n] *)
  t_budget : int;
  t_balance : int;  (** mirror balance (escrow remaining) *)
  t_answer_deadline : int;
  t_instruct_deadline : int;
}

type reputation_view = {
  r_addr : Address.t;
  r_epoch : int;
  r_unclaimed : int;  (** credited task tags not yet claimed *)
  r_scores : (string * int) list;  (** pseudonym hex prefix -> score *)
}

type ra_view = {
  a_addr : Address.t;
  a_root : string;  (** current certificate-tree root, hex prefix *)
  a_history : int;  (** superseded roots *)
}

type view = {
  tasks : task_view list;
  reputations : reputation_view list;
  ras : ra_view list;
  others : (Address.t * string) list;  (** (address, behaviour) *)
}

(** Decode every contract the indexer tracks.  Lists follow the
    indexer's deterministic (hex-sorted) address order.  A tracked
    contract whose storage fails to decode raises
    {!Zebra_codec.Codec.Decode_error} — mirror storage is produced by
    the registered behaviours themselves, so that is always a bug. *)
val of_indexer : Indexer.t -> view

(** Totals line plus one line per contract, deterministic. *)
val render : view -> string
