(** The deployed transaction-kind registry — {!Deployed}'s analogue for
    the chain layer, feeding the ZL1xx/ZL2xx lint passes
    ({!Zebra_lint.Txlint}, {!Zebra_lint.Seclint}), the [zebra lint --tx]
    CLI mode, [bench lint] and the [scripts/check.sh] gate.

    One seeded end-to-end scenario exercises every transaction kind the
    protocol deploys: faucet funding transfers, the RA contract deploy and
    its root updates (one per enrolment), two task publishes, anonymous
    submissions, a proof-carrying Instruct settlement (with a nonzero
    refund, so the refund branch is a covered path), a third-party
    Finalize after the instruction deadline, and the reputation board
    (deploy, credit, claim, epoch advance).  The mined chain is then
    replayed serially from genesis; each transaction is classified into
    its kind from the pre-state (behaviour name + decoded payload) and
    traced with {!Zebra_chain.State.apply_tx_traced} against exactly the
    state it executed on.

    Everything is derived from {!scenario_seed}, so kinds, cases and
    conflict signatures are deterministic; the scenario is built once per
    process and memoised. *)

(** Seed of the memoised scenario. *)
val scenario_seed : string

(** All traced cases, in chain order.  Kind names are
    ["transfer"], ["deploy.<behavior>"], ["<behavior>.<message>"] — e.g.
    ["zebralancer-task.instruct"], ["zebralancer-reputation.claim"]. *)
val cases : unit -> Zebra_lint.Txlint.case list

(** The distinct kind names of {!cases}, sorted. *)
val kinds : unit -> string list

(** The ZL2xx codec registry: every secret the scenario holds (wallet
    signing keys, CPLA master identities, task decryption keys, SNARK
    trapdoors), scanned against every persisted output — transaction
    bytes, contract storages, receipt logs, obs export, verifying-key
    encodings and a {!Zebra_store.Store} round-trip (the PR 5
    trapdoor-leak regression lock).  Proving-key encodings are not
    registered sinks: the simulation models the real scheme's hiding
    commitments [g^(s^i)] as raw field powers, so pk bytes contain [s]
    verbatim by construction — a modelling artifact, not a leak. *)
val codecs : unit -> Zebra_lint.Seclint.codec_case list
