(** The crowdsourcing task contract — Algorithm 1 of the paper.

    Lifecycle (all timing in block units, the chain's discrete clock):

    - {b init} (TaskPublish): deployed by the requester's one-task-only
      address alpha_R with the budget attached.  The contract aborts unless
      the budget is deposited and the requester's anonymous attestation over
      [alpha_C || alpha_R] verifies (Algorithm 1 lines 3-4).
    - {b Submit} (AnswerCollection): a worker's one-task address alpha_i
      sends an encrypted answer C_i and an attestation over
      [alpha_C || alpha_i || C_i].  The contract verifies the attestation,
      recomputes the authenticated message from the {e actual} transaction
      sender (so a copied ciphertext re-sent from another address fails —
      the free-riding defence of footnote 9), and runs Link against every
      stored tag including the requester's (lines 7-9).  Collection closes
      at [n] answers or the answer deadline.
    - {b Instruct} (Reward): the requester sends the reward vector and a
      zk-SNARK proof; the contract rebuilds the public inputs from its own
      storage and verifies (lines 11-17).  A bad proof reverts — the
      instruction is dropped, the contract keeps waiting.
    - {b Finalize}: after the instruction deadline anyone may trigger the
      fallback: the budget is split evenly among submitters and the rest
      refunded (lines 18-21).

    Contract behaviour name: ["zebralancer-task"] (register once via
    {!register}). *)

type phase =
  | Collecting
  | Finished

type submission = {
  worker : Zebra_chain.Address.t;
  ciphertext : Zebra_elgamal.Elgamal.ciphertext;
  tag : Fp.t;  (** t1 of the worker's attestation, kept for Link *)
}

type params = {
  budget : int;
  n : int;  (** answers to collect *)
  answer_deadline : int;  (** absolute block height (the paper's T_A) *)
  instruct_deadline : int;  (** absolute block height (T_I) *)
  epk : Zebra_elgamal.Elgamal.public_key;
  ra_root : Fp.t;  (** RA tree root snapshot (part of mpk) *)
  auth_vk : bytes;  (** CPLA verification key (from PP) *)
  reward_vk : bytes;  (** reward-circuit verification key *)
  policy : Policy.t;
  requester_attestation : bytes;  (** pi_R over alpha_C || alpha_R *)
  max_per_worker : int;
      (** submissions allowed per identity (footnote 11's k; normally 1) *)
  ra_rsa_pub : bytes;
      (** RA key for the non-anonymous mode ({!Plain_auth}); empty
          disables plain submissions for this task *)
  data_digest : bytes;
      (** SHA-256 of the off-chain task payload (e.g. the image to
          annotate, held in a {!Zebra_store} CAS); empty if inline/none *)
}

type storage = {
  params : params;
  requester : Zebra_chain.Address.t;
  phase : phase;
  submissions : submission list;  (** oldest first *)
  requester_tag : Fp.t;
}

(** Payloads understood by [receive]. *)
type message =
  | Submit of { ciphertext : bytes; attestation : bytes }
      (** anonymous submission (CPLA attestation) *)
  | Submit_plain of { ciphertext : bytes; attestation : bytes }
      (** non-anonymous submission ({!Plain_auth} attestation) *)
  | Instruct of { rewards : int list; proof : bytes }
  | Finalize

val params_to_bytes : params -> bytes
val params_of_bytes : bytes -> params
val message_to_bytes : message -> bytes

(** Inverse of {!message_to_bytes} — used by off-chain auditors replaying
    mined submissions ({!Protocol.audit_task}).
    @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val message_of_bytes : bytes -> message

val storage_of_bytes : bytes -> storage

(** The authenticated message component for a submission: the field image
    of SHA-256(alpha_i || C_i) — both clients and the contract compute it. *)
val submission_digest : Zebra_chain.Address.t -> bytes -> Fp.t

(** Registers the behaviour with {!Zebra_chain.Contract}; idempotent. *)
val register : unit -> unit

val behavior_name : string
