(** The on-chain side of anonymous reputation (see {!Reputation}).

    A requester (or a consortium address) deploys one of these and, after
    each task's Reward phase, credits the {e task tags} of the workers she
    wants to commend — the tags are already public in her task contract's
    storage, so no identity is involved.  A worker then claims the credit
    onto his current epoch pseudonym with a zero-knowledge link proof;
    each credit is claimable once.  Scores per pseudonym are public, so
    any future task can gate on them without anyone learning who is
    behind a pseudonym, and next epoch the worker starts a fresh pseudonym
    that nobody can connect to the old one. *)

type storage = {
  owner : Zebra_chain.Address.t;
  link_vk : bytes;
  epoch : int;
  credits : (string * (int * Fp.t)) list;
      (** task-tag hex -> (score, task prefix); unclaimed *)
  scores : (string * int) list;  (** pseudonym hex -> accumulated score *)
}

type message =
  | Credit of { task_tag : Fp.t; task_prefix : Fp.t; score : int }  (** owner only *)
  | Claim of { task_tag : Fp.t; pseudonym : Fp.t; proof : bytes }
  | Advance_epoch  (** owner only *)

val behavior_name : string

val register : unit -> unit

val init_args : link_vk:bytes -> bytes
val message_to_bytes : message -> bytes

(** Inverse of {!message_to_bytes} — used by off-chain auditors and the
    footprint lint classifying mined transactions into kinds. *)
val message_of_bytes : bytes -> message
val storage_of_bytes : bytes -> storage

(** Score of a pseudonym (0 if absent). *)
val score : storage -> Fp.t -> int
