module Snark = Zebra_snark.Snark
module Cpla = Zebra_anonauth.Cpla
module Hash_composition = Zebra_hashcomp.Hash_composition
open Zebra_r1cs

type params = {
  composition : Hash_composition.t;
  keys : Snark.keypair;
  n_constraints : int;
}

type claim_proof = Snark.proof

(* Public inputs (in order): task_tag, pseudonym, task_prefix, epoch. *)
let synthesize ~composition ~task_tag ~pseudonym ~task_prefix ~epoch ~sk =
  let cs = Cs.create () in
  let open Gadgets in
  let hash = Hash_composition.hash_gadget composition cs in
  let v_tag = Cs.alloc_input cs task_tag in
  let v_pseudo = Cs.alloc_input cs pseudonym in
  let v_prefix = Cs.alloc_input cs task_prefix in
  let v_epoch = Cs.alloc_input cs epoch in
  let v_sk = Cs.alloc cs sk in
  enforce_eq cs ~label:"task tag" (hash [ v v_prefix; v v_sk ]) (v v_tag);
  enforce_eq cs ~label:"epoch pseudonym" (hash [ v v_epoch; v v_sk ]) (v v_pseudo);
  cs

let constraint_system ?(composition = Hash_composition.default) () =
  let z = Fp.zero in
  synthesize ~composition ~task_tag:z ~pseudonym:z ~task_prefix:z ~epoch:z ~sk:z

let setup ?(composition = Hash_composition.default) ~random_bytes () =
  let cs = constraint_system ~composition () in
  { composition; keys = Snark.setup ~random_bytes cs; n_constraints = Cs.num_constraints cs }

(* The link circuit has a single fixed structure per composition, so the
   composition-suffixed id keys it (arms never share keypairs). *)
let circuit_id ?(composition = Hash_composition.default) () =
  Printf.sprintf "reputation/link/h=%s" (Hash_composition.to_string composition)

let setup_cached ?(composition = Hash_composition.default) cache ~seed =
  let keys, shape =
    Snark.Keycache.setup_named cache ~circuit_id:(circuit_id ~composition ()) ~seed (fun () ->
        constraint_system ~composition ())
  in
  { composition; keys; n_constraints = shape.Snark.Keycache.constraints }

let composition p = p.composition
let circuit_size p = p.n_constraints
let vk_bytes p = Snark.vk_to_bytes p.keys.Snark.vk

let epoch_field e =
  if e < 0 then invalid_arg "Reputation: negative epoch";
  Fp.of_int e

let task_tag ?(composition = Hash_composition.default) (key : Cpla.user_key) ~task_prefix =
  Hash_composition.hash_list composition [ task_prefix; key.Cpla.sk ]

let epoch_pseudonym ?(composition = Hash_composition.default) (key : Cpla.user_key) ~epoch =
  Hash_composition.hash_list composition [ epoch_field epoch; key.Cpla.sk ]

let prove_link ~random_bytes p ~key ~task_prefix ~epoch =
  let composition = p.composition in
  let cs =
    synthesize ~composition
      ~task_tag:(task_tag ~composition key ~task_prefix)
      ~pseudonym:(epoch_pseudonym ~composition key ~epoch)
      ~task_prefix ~epoch:(epoch_field epoch) ~sk:key.Cpla.sk
  in
  Snark.prove ~random_bytes p.keys.Snark.pk cs

let verify_link ~vk_bytes ~task_tag ~pseudonym ~task_prefix ~epoch proof =
  match Snark.vk_of_bytes_cached vk_bytes with
  | vk ->
    Snark.verify vk
      ~public_inputs:[| task_tag; pseudonym; task_prefix; epoch_field epoch |]
      proof
  | exception Zebra_codec.Codec.Decode_error _ -> false
