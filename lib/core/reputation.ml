module Snark = Zebra_snark.Snark
module Mimc = Zebra_mimc.Mimc
module Cpla = Zebra_anonauth.Cpla
open Zebra_r1cs

type params = { keys : Snark.keypair; n_constraints : int }

type claim_proof = Snark.proof

(* Public inputs (in order): task_tag, pseudonym, task_prefix, epoch. *)
let synthesize ~task_tag ~pseudonym ~task_prefix ~epoch ~sk =
  let cs = Cs.create () in
  let open Gadgets in
  let v_tag = Cs.alloc_input cs task_tag in
  let v_pseudo = Cs.alloc_input cs pseudonym in
  let v_prefix = Cs.alloc_input cs task_prefix in
  let v_epoch = Cs.alloc_input cs epoch in
  let v_sk = Cs.alloc cs sk in
  enforce_eq cs ~label:"task tag" (mimc_hash cs [ v v_prefix; v v_sk ]) (v v_tag);
  enforce_eq cs ~label:"epoch pseudonym" (mimc_hash cs [ v v_epoch; v v_sk ]) (v v_pseudo);
  cs

let constraint_system () =
  let z = Fp.zero in
  synthesize ~task_tag:z ~pseudonym:z ~task_prefix:z ~epoch:z ~sk:z

let setup ~random_bytes =
  let cs = constraint_system () in
  { keys = Snark.setup ~random_bytes cs; n_constraints = Cs.num_constraints cs }

(* The link circuit has a single fixed structure, so a constant id keys it. *)
let setup_cached cache ~seed =
  let keys, shape =
    Snark.Keycache.setup_named cache ~circuit_id:"reputation/link" ~seed constraint_system
  in
  { keys; n_constraints = shape.Snark.Keycache.constraints }

let circuit_size p = p.n_constraints
let vk_bytes p = Snark.vk_to_bytes p.keys.Snark.vk

let epoch_field e =
  if e < 0 then invalid_arg "Reputation: negative epoch";
  Fp.of_int e

let task_tag (key : Cpla.user_key) ~task_prefix = Mimc.hash_list [ task_prefix; key.Cpla.sk ]

let epoch_pseudonym (key : Cpla.user_key) ~epoch =
  Mimc.hash_list [ epoch_field epoch; key.Cpla.sk ]

let prove_link ~random_bytes p ~key ~task_prefix ~epoch =
  let cs =
    synthesize
      ~task_tag:(task_tag key ~task_prefix)
      ~pseudonym:(epoch_pseudonym key ~epoch)
      ~task_prefix ~epoch:(epoch_field epoch) ~sk:key.Cpla.sk
  in
  Snark.prove ~random_bytes p.keys.Snark.pk cs

let verify_link ~vk_bytes ~task_tag ~pseudonym ~task_prefix ~epoch proof =
  match Snark.vk_of_bytes_cached vk_bytes with
  | vk ->
    Snark.verify vk
      ~public_inputs:[| task_tag; pseudonym; task_prefix; epoch_field epoch |]
      proof
  | exception Zebra_codec.Codec.Decode_error _ -> false
