module Address = Zebra_chain.Address
module Indexer = Zebra_index.Indexer

type task_view = {
  t_addr : Address.t;
  t_phase : string;
  t_submissions : int;
  t_slots : int;
  t_budget : int;
  t_balance : int;
  t_answer_deadline : int;
  t_instruct_deadline : int;
}

type reputation_view = {
  r_addr : Address.t;
  r_epoch : int;
  r_unclaimed : int;
  r_scores : (string * int) list;
}

type ra_view = {
  a_addr : Address.t;
  a_root : string;
  a_history : int;
}

type view = {
  tasks : task_view list;
  reputations : reputation_view list;
  ras : ra_view list;
  others : (Address.t * string) list;
}

let fp_prefix fp =
  let hex = Zebra_hashing.Sha256.to_hex (Fp.to_bytes_be fp) in
  String.sub hex 0 8

let of_indexer idx =
  let decode addr acc =
    let behavior = Option.get (Indexer.behavior idx addr) in
    let storage = Option.get (Indexer.storage idx addr) in
    if behavior = Task_contract.behavior_name then begin
      let s = Task_contract.storage_of_bytes storage in
      let p = s.Task_contract.params in
      let tv =
        {
          t_addr = addr;
          t_phase =
            (match s.Task_contract.phase with
            | Task_contract.Collecting -> "collecting"
            | Task_contract.Finished -> "finished");
          t_submissions = List.length s.Task_contract.submissions;
          t_slots = p.Task_contract.n;
          t_budget = p.Task_contract.budget;
          t_balance = Option.value ~default:0 (Indexer.balance idx addr);
          t_answer_deadline = p.Task_contract.answer_deadline;
          t_instruct_deadline = p.Task_contract.instruct_deadline;
        }
      in
      { acc with tasks = tv :: acc.tasks }
    end
    else if behavior = Reputation_contract.behavior_name then begin
      let s = Reputation_contract.storage_of_bytes storage in
      let rv =
        {
          r_addr = addr;
          r_epoch = s.Reputation_contract.epoch;
          r_unclaimed = List.length s.Reputation_contract.credits;
          r_scores =
            List.map
              (fun (pseudonym, score) -> (String.sub pseudonym 0 8, score))
              s.Reputation_contract.scores;
        }
      in
      { acc with reputations = rv :: acc.reputations }
    end
    else if behavior = Ra_contract.behavior_name then begin
      let s = Ra_contract.storage_of_bytes storage in
      let av =
        {
          a_addr = addr;
          a_root = fp_prefix s.Ra_contract.root;
          a_history = List.length s.Ra_contract.history;
        }
      in
      { acc with ras = av :: acc.ras }
    end
    else { acc with others = (addr, behavior) :: acc.others }
  in
  let empty = { tasks = []; reputations = []; ras = []; others = [] } in
  let v = List.fold_left (fun acc addr -> decode addr acc) empty (Indexer.contract_addresses idx) in
  {
    tasks = List.rev v.tasks;
    reputations = List.rev v.reputations;
    ras = List.rev v.ras;
    others = List.rev v.others;
  }

let render v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "contracts: %d task(s), %d reputation board(s), %d ra, %d other\n"
       (List.length v.tasks) (List.length v.reputations) (List.length v.ras)
       (List.length v.others));
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "task %s phase=%s submissions=%d/%d budget=%d escrow=%d deadlines=%d/%d\n"
           (Address.to_hex t.t_addr) t.t_phase t.t_submissions t.t_slots t.t_budget t.t_balance
           t.t_answer_deadline t.t_instruct_deadline))
    v.tasks;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "reputation %s epoch=%d unclaimed=%d scores=[%s]\n"
           (Address.to_hex r.r_addr) r.r_epoch r.r_unclaimed
           (String.concat "; "
              (List.map (fun (p, s) -> Printf.sprintf "%s:%d" p s) r.r_scores))))
    v.reputations;
  List.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf "ra %s root=%s history=%d\n" (Address.to_hex a.a_addr) a.a_root a.a_history))
    v.ras;
  List.iter
    (fun (addr, behavior) ->
      Buffer.add_string b (Printf.sprintf "other %s behavior=%s\n" (Address.to_hex addr) behavior))
    v.others;
  Buffer.contents b
