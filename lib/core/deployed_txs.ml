module Network = Zebra_chain.Network
module Wallet = Zebra_chain.Wallet
module Address = Zebra_chain.Address
module Tx = Zebra_chain.Tx
module State = Zebra_chain.State
module Block = Zebra_chain.Block
module Cpla = Zebra_anonauth.Cpla
module Snark = Zebra_snark.Snark
module Store = Zebra_store.Store
module Obs = Zebra_obs.Obs
module Cs = Zebra_r1cs.Cs
module Gadgets = Zebra_r1cs.Gadgets
module Txlint = Zebra_lint.Txlint
module Seclint = Zebra_lint.Seclint

let scenario_seed = Scenario.default_seed

(* Kind of a mined transaction, from its pre-state: contract deploys by
   behaviour, contract calls by behaviour + decoded message, everything
   else a plain transfer. *)
let classify st (tx : Tx.t) =
  match tx.Tx.dst with
  | Tx.Create { behavior; _ } -> "deploy." ^ behavior
  | Tx.Call dst -> (
    match State.contract_behavior st dst with
    | None -> "transfer"
    | Some b when b = Task_contract.behavior_name -> (
      match Task_contract.message_of_bytes tx.Tx.payload with
      | Task_contract.Submit _ -> b ^ ".submit"
      | Task_contract.Submit_plain _ -> b ^ ".submit-plain"
      | Task_contract.Instruct _ -> b ^ ".instruct"
      | Task_contract.Finalize -> b ^ ".finalize"
      | exception _ -> b ^ ".call")
    | Some b when b = Ra_contract.behavior_name -> b ^ ".set-root"
    | Some b when b = Reputation_contract.behavior_name -> (
      match Reputation_contract.message_of_bytes tx.Tx.payload with
      | Reputation_contract.Credit _ -> b ^ ".credit"
      | Reputation_contract.Claim _ -> b ^ ".claim"
      | Reputation_contract.Advance_epoch -> b ^ ".advance-epoch"
      | exception _ -> b ^ ".call")
    | Some b -> b ^ ".call")

type scenario = {
  s_cases : Txlint.case list;
  s_codecs : Seclint.codec_case list;
}

let build_scenario () =
  (* Enabled obs makes the export a non-vacuous ZL2xx sink; restore the
     caller's setting afterwards. *)
  let obs_was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled obs_was) @@ fun () ->
  (* The chain itself comes from the shared fixture; this module only
     harvests it into the lint corpus. *)
  let { Scenario.sys; requester; w1; w2; task_a; task_b; board; rep = _ } =
    Scenario.build ~seed:scenario_seed ()
  in
  let rb = Protocol.random_bytes sys in
  (* --- harvest: serial replay from genesis, tracing every tx against
     exactly the state it executed on --- *)
  let blocks = Network.blocks sys.Protocol.net in
  let st = State.create ~genesis:(Network.genesis sys.Protocol.net) in
  let cases = ref [] in
  List.iter
    (fun (b : Block.t) ->
      let height = b.Block.header.Block.height in
      List.iteri
        (fun i tx ->
          let kind = classify st tx in
          let case = Printf.sprintf "block %d tx %d" height i in
          cases := Txlint.trace_case ~kind ~case st ~height tx :: !cases;
          ignore (State.apply_tx st ~height tx))
        b.Block.txs)
    blocks;
  let s_cases = List.rev !cases in
  (* --- ZL2xx codec registry --- *)
  let secrets_of_chain =
    [
      ("wallet.sk(faucet)", Wallet.secret_canary sys.Protocol.faucet);
      ("wallet.sk(task A requester)", Wallet.secret_canary task_a.Requester.wallet);
      ("cpla.msk(requester)", Cpla.key_canary requester.Protocol.key);
      ("cpla.msk(worker 1)", Cpla.key_canary w1.Protocol.key);
      ("cpla.msk(worker 2)", Cpla.key_canary w2.Protocol.key);
      ("requester.task.esk(task A)", Requester.esk_canary task_a);
      ("requester.task.esk(task B)", Requester.esk_canary task_b);
      ("snark.trapdoor.t_s(reward circuit A)", Reward_circuit.trapdoor_canary task_a.Requester.circuit);
    ]
  in
  let tx_outputs =
    List.concat_map
      (fun (b : Block.t) ->
        List.mapi
          (fun i tx ->
            ( Seclint.Serialization,
              Printf.sprintf "tx bytes (block %d tx %d)" b.Block.header.Block.height i,
              Tx.to_bytes tx ))
          b.Block.txs)
      blocks
  in
  let storage_outputs =
    List.filter_map
      (fun (name, addr) ->
        Option.map
          (fun bytes -> (Seclint.Serialization, "contract storage " ^ name, bytes))
          (Network.contract_storage sys.Protocol.net addr))
      [
        ("task A", task_a.Requester.contract);
        ("task B", task_b.Requester.contract);
        ("ra", sys.Protocol.ra_contract);
        ("reputation board", board);
      ]
  in
  let log_output =
    ( Seclint.Log_line,
      "network logs",
      Bytes.of_string (String.concat "\n" (Network.all_logs sys.Protocol.net)) )
  in
  let obs_output = (Seclint.Obs_export, "obs json export", Bytes.of_string (Obs.to_json_string ())) in
  let chain_case =
    {
      Seclint.codec = "chain.persisted";
      secrets = secrets_of_chain;
      outputs = tx_outputs @ storage_outputs @ [ log_output; obs_output ];
    }
  in
  (* The PR 5 regression lock, on the verifying-key side: the vk is the
     part of a keypair that leaves the requester's machine (on-chain task
     parameters, auditors), so its encoding, a content-addressed store
     round-trip of it, and the re-encoding of its decode must all be
     trapdoor-free.  The proving key's encoding is deliberately NOT a
     registered sink: the simulation models the real scheme's hiding
     commitments g^{s^i} as raw field powers, so pk bytes contain s^1
     verbatim by construction — a modelling artifact, not a leak.  The
     historic bug (t_s written as an explicit field of the keypair
     encoding) is locked by a synthetic leaky-encoder fixture in
     [test_txlint.ml]. *)
  let snark_case =
    let cs = Cs.create () in
    let x = Cs.alloc_input cs ~label:"x" (Fp.of_int 3) in
    let _y = Gadgets.square cs (Gadgets.v x) in
    let kp = Snark.setup ~random_bytes:rb cs in
    let bytes = Snark.vk_to_bytes kp.Snark.vk in
    let store = Store.create () in
    let h = Store.put store bytes in
    let stored = Option.get (Store.get store h) in
    let reencoded = Snark.vk_to_bytes (Snark.vk_of_bytes bytes) in
    {
      Seclint.codec = "snark.keypair";
      secrets = [ ("snark.trapdoor.t_s", Snark.trapdoor_canary kp) ];
      outputs =
        [
          (Seclint.Serialization, "vk_to_bytes", bytes);
          (Seclint.Store_put, "store round-trip", stored);
          (Seclint.Serialization, "decode/re-encode", reencoded);
        ];
    }
  in
  let params_case =
    {
      Seclint.codec = "task.params";
      secrets =
        [
          ("requester.task.esk(task A)", Requester.esk_canary task_a);
          ("snark.trapdoor.t_s(reward circuit A)", Reward_circuit.trapdoor_canary task_a.Requester.circuit);
          ("cpla.msk(requester)", Cpla.key_canary requester.Protocol.key);
        ];
      outputs =
        [
          ( Seclint.Serialization,
            "params_to_bytes",
            Task_contract.params_to_bytes task_a.Requester.params );
        ];
    }
  in
  { s_cases; s_codecs = [ chain_case; snark_case; params_case ] }

let scenario = lazy (build_scenario ())

let cases () = (Lazy.force scenario).s_cases
let codecs () = (Lazy.force scenario).s_codecs

let kinds () =
  List.sort_uniq compare (List.map (fun (c : Txlint.case) -> c.Txlint.kind) (cases ()))
