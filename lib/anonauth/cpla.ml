module Snark = Zebra_snark.Snark
module Codec = Zebra_codec.Codec
module Hash_composition = Zebra_hashcomp.Hash_composition
open Zebra_r1cs

type params = {
  depth : int;
  composition : Hash_composition.t;
  keys : Snark.keypair;
  n_constraints : int;
}

type user_key = { sk : Fp.t; pk : Fp.t }

let key_canary (k : user_key) = Fp.to_bytes_be k.sk

type attestation = { t1 : Fp.t; t2 : Fp.t; proof : Snark.proof }

(* Synthesise the Auth circuit.  Public inputs (in order): prefix, message,
   root, t1, t2.  Witness: sk, certificate path bits and siblings. *)
let synthesize ~composition ~depth ~prefix ~message ~root ~t1 ~t2 ~sk ~index ~path =
  let cs = Cs.create () in
  let open Gadgets in
  let hash = Hash_composition.hash_gadget composition cs in
  let v_prefix = Cs.alloc_input cs prefix in
  let v_message = Cs.alloc_input cs message in
  let v_root = Cs.alloc_input cs root in
  let v_t1 = Cs.alloc_input cs t1 in
  let v_t2 = Cs.alloc_input cs t2 in
  let v_sk = Cs.alloc cs ~label:"sk" sk in
  (* pair(pk, sk): the public key is determined by the secret key. *)
  let pk = hash [ v v_sk ] in
  (* t1 = H(prefix, sk); t2 = H(prefix || m, sk). *)
  enforce_eq cs ~label:"t1" (hash [ v v_prefix; v v_sk ]) (v v_t1);
  enforce_eq cs ~label:"t2" (hash [ v v_prefix; v v_message; v v_sk ]) (v v_t2);
  (* CertVrfy: pk is a registered leaf under the RA root. *)
  let path_bits = Array.init depth (fun l -> alloc_bit cs ((index lsr l) land 1 = 1)) in
  let siblings = Array.map (fun s -> Cs.alloc cs ~label:"sibling" s) path in
  let computed_root =
    Hash_composition.merkle_root_gadget composition cs ~leaf:pk ~path_bits ~siblings
  in
  enforce_eq cs ~label:"certificate" computed_root (v v_root);
  cs

(* Dummy values: the structure (and hence setup, and the static analyzer's
   view) only depends on (composition, depth). *)
let constraint_system ?(composition = Hash_composition.default) ~depth () =
  let z = Fp.zero in
  synthesize ~composition ~depth ~prefix:z ~message:z ~root:z ~t1:z ~t2:z ~sk:z ~index:0
    ~path:(Array.make depth z)

let setup ?(composition = Hash_composition.default) ~random_bytes ~depth () =
  let cs = constraint_system ~composition ~depth () in
  {
    depth;
    composition;
    keys = Snark.setup ~random_bytes cs;
    n_constraints = Cs.num_constraints cs;
  }

(* (composition, depth) determines the synthesised structure; encoding both
   in the cache id keeps the arms' keypairs strictly apart. *)
let circuit_id ?(composition = Hash_composition.default) ~depth () =
  Printf.sprintf "cpla/depth=%d/h=%s" depth (Hash_composition.to_string composition)

let setup_cached ?(composition = Hash_composition.default) cache ~seed ~depth =
  if depth < 1 then invalid_arg "Cpla.setup_cached: need depth >= 1";
  let keys, shape =
    Snark.Keycache.setup_named cache ~circuit_id:(circuit_id ~composition ~depth ()) ~seed
      (fun () -> constraint_system ~composition ~depth ())
  in
  { depth; composition; keys; n_constraints = shape.Snark.Keycache.constraints }

let depth p = p.depth
let composition p = p.composition
let circuit_size p = p.n_constraints

let keygen ?(composition = Hash_composition.default) ~random_bytes () =
  let sk = Fp.random random_bytes in
  { sk; pk = Hash_composition.hash_list composition [ sk ] }

let auth ~random_bytes p ~prefix ~message ~key ~index ~path ~root =
  if Array.length path <> p.depth then invalid_arg "Cpla.auth: wrong path depth";
  let t1 = Hash_composition.hash_list p.composition [ prefix; key.sk ] in
  let t2 = Hash_composition.hash_list p.composition [ prefix; message; key.sk ] in
  let cs =
    synthesize ~composition:p.composition ~depth:p.depth ~prefix ~message ~root ~t1 ~t2
      ~sk:key.sk ~index ~path
  in
  { t1; t2; proof = Snark.prove ~random_bytes p.keys.Snark.pk cs }

let public_inputs ~prefix ~message ~root att = [| prefix; message; root; att.t1; att.t2 |]

let verify p ~prefix ~message ~root att =
  Snark.verify p.keys.Snark.vk ~public_inputs:(public_inputs ~prefix ~message ~root att)
    att.proof

let link a b = Fp.equal a.t1 b.t1

let attestation_to_bytes att =
  Codec.encode
    (fun w att ->
      Codec.bytes w (Fp.to_bytes_be att.t1);
      Codec.bytes w (Fp.to_bytes_be att.t2);
      Codec.bytes w (Snark.proof_to_bytes att.proof))
    att

let attestation_of_bytes b =
  Codec.decode
    (fun r ->
      let t1 = Fp.of_bytes_be_exn (Codec.read_bytes r) in
      let t2 = Fp.of_bytes_be_exn (Codec.read_bytes r) in
      let proof = Snark.proof_of_bytes (Codec.read_bytes r) in
      { t1; t2; proof })
    b

let attestation_size_bytes att = Bytes.length (attestation_to_bytes att)

let vk_to_bytes p = Snark.vk_to_bytes p.keys.Snark.vk

let verify_with_vk ~vk_bytes ~prefix ~message ~root att =
  match Snark.vk_of_bytes_cached vk_bytes with
  | vk -> Snark.verify vk ~public_inputs:(public_inputs ~prefix ~message ~root att) att.proof
  | exception Codec.Decode_error _ -> false

(* Source-based entry points; the ~random_bytes forms above are kept as
   aliases for one release. *)

let setup_rng ?composition ~rng ~depth () =
  setup ?composition ~random_bytes:(Zebra_rng.Source.fn rng) ~depth ()

let keygen_rng ?composition ~rng () =
  keygen ?composition ~random_bytes:(Zebra_rng.Source.fn rng) ()

let auth_rng ~rng p ~prefix ~message ~key ~index ~path ~root =
  auth ~random_bytes:(Zebra_rng.Source.fn rng) p ~prefix ~message ~key ~index ~path ~root
