module Hash_composition = Zebra_hashcomp.Hash_composition

type t = {
  depth : int;
  hash : Hash_composition.t;
  levels : (int, Fp.t) Hashtbl.t array; (* levels.(0) = leaves ... levels.(depth) = root *)
  defaults : Fp.t array; (* default node value per level *)
  mutable next : int;
  registered : (string, int) Hashtbl.t; (* pk (hex of bytes) -> index *)
}

let create ?(hash = Hash_composition.default) ~depth () =
  if depth < 1 || depth > 30 then invalid_arg "Ra.create: depth out of range";
  let defaults = Array.make (depth + 1) Fp.zero in
  for l = 1 to depth do
    defaults.(l) <- Hash_composition.hash2 hash defaults.(l - 1) defaults.(l - 1)
  done;
  {
    depth;
    hash;
    levels = Array.init (depth + 1) (fun _ -> Hashtbl.create 64);
    defaults;
    next = 0;
    registered = Hashtbl.create 64;
  }

let depth t = t.depth
let hash_composition t = t.hash
let capacity t = 1 lsl t.depth
let num_registered t = t.next

let node t level index =
  match Hashtbl.find_opt t.levels.(level) index with
  | Some v -> v
  | None -> t.defaults.(level)

let root t = node t t.depth 0

let key_of_pk pk = Zebra_hashing.Sha256.to_hex (Fp.to_bytes_be pk)

let register t pk =
  if t.next >= capacity t then failwith "Ra.register: tree full";
  if Hashtbl.mem t.registered (key_of_pk pk) then failwith "Ra.register: duplicate identity";
  let index = t.next in
  t.next <- index + 1;
  Hashtbl.replace t.registered (key_of_pk pk) index;
  Hashtbl.replace t.levels.(0) index pk;
  let i = ref index in
  for l = 0 to t.depth - 1 do
    let parent = !i / 2 in
    let left = node t l (2 * parent) in
    let right = node t l ((2 * parent) + 1) in
    Hashtbl.replace t.levels.(l + 1) parent (Hash_composition.hash2 t.hash left right);
    i := parent
  done;
  index

let path t index =
  if index < 0 || index >= capacity t then invalid_arg "Ra.path: index out of range";
  Array.init t.depth (fun l ->
      let i = index lsr l in
      node t l (i lxor 1))

let leaf t index = Hashtbl.find_opt t.levels.(0) index

let verify_path ?(hash = Hash_composition.default) ~root:expected ~leaf ~index path =
  let h2 = Hash_composition.hash2 hash in
  let cur = ref leaf in
  Array.iteri
    (fun l sibling ->
      let bit = (index lsr l) land 1 in
      cur := if bit = 1 then h2 sibling !cur else h2 !cur sibling)
    path;
  Fp.equal !cur expected
