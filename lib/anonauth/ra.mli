(** The registration authority's certificate tree.

    The paper abstracts certification as an RA signing each participant's
    public key (CertGen).  To make certificate checking SNARK-friendly we
    instantiate the certificate as {e membership in an algebraic-hash
    Merkle tree of registered public keys} (Zcash-style; DESIGN.md
    substitution 3): the master public key is the tree root, a certificate
    is the leaf index, and the Auth circuit proves knowledge of [sk] with
    [pk = H(sk)] present in the tree — without revealing which leaf, so
    even the RA cannot link an attestation to a registration (the paper's
    strong anonymity, Def. 2).

    The tree hash is the {!Zebra_hashcomp.Hash_composition} parameter —
    Poseidon by default, MiMC as the ablation arm — and must match the
    composition of the {!Cpla.params} the tree is used with: a root built
    under one arm never verifies inside the other arm's circuit.

    The tree is sparse: unregistered leaves hold the level-0 default value,
    and default subtree hashes are precomputed per level. *)

type t

(** [create ~depth ()] — capacity [2^depth] registrations.  [?hash]
    (default {!Zebra_hashcomp.Hash_composition.default}) selects the node
    hash; pass the composition of the CPLA parameters this tree certifies
    for.
    @raise Invalid_argument when [depth] is outside [1, 30]. *)
val create : ?hash:Zebra_hashcomp.Hash_composition.t -> depth:int -> unit -> t

val depth : t -> int

(** The node-hash composition this tree was created with. *)
val hash_composition : t -> Zebra_hashcomp.Hash_composition.t

val capacity : t -> int
val num_registered : t -> int

(** Current root — the CPLA master public key [mpk]. *)
val root : t -> Fp.t

(** [register t pk] appends a public key and returns its leaf index (the
    certificate).  Re-registering the same key is refused (unique-identity
    rule: one credential per ID).
    @raise Failure when the tree is full or [pk] is already present. *)
val register : t -> Fp.t -> int

(** [path t index] is the sibling list, leaf level first, under the current
    root.  Participants refresh their path from the (public) tree before
    authenticating. *)
val path : t -> int -> Fp.t array

(** [leaf t index] — [None] if unregistered. *)
val leaf : t -> int -> Fp.t option

(** [verify_path ~root ~leaf ~index path] — native path check under the
    [?hash] composition (default Poseidon); the circuit's
    {!Zebra_hashcomp.Hash_composition.merkle_root_gadget} mirrors it. *)
val verify_path :
  ?hash:Zebra_hashcomp.Hash_composition.t ->
  root:Fp.t ->
  leaf:Fp.t ->
  index:int ->
  Fp.t array ->
  bool
