(** Common-prefix-linkable anonymous authentication — the paper's new
    cryptographic primitive (Section V-A).

    A user holding a certificate (RA tree membership, see {!Ra}) can
    authenticate a message [prefix || m] anonymously.  The attestation
    carries two tags

      t1 = H(prefix, sk)        t2 = H(prefix || m, sk)

    and a zk-SNARK proof of the paper's language L_T:

      CertVrfy(cert, pk, mpk) = 1  /\  pair(pk, sk) = 1  /\
      t1 = H(prefix, sk)  /\  t2 = H(prefix || m, sk)

    (instantiated as: [pk = H(sk)], [pk] is a leaf under the root [mpk],
    and the two tag equations — all with the same algebraic hash inside
    the circuit).

    [H] is the {!Zebra_hashcomp.Hash_composition} parameter, fixed at
    setup and recorded in {!params}: {b Poseidon} by default — the Auth
    circuit is dominated by the Merkle authentication path, and Poseidon's
    245 constraints/level against MiMC's 730 cut the path ~3x and the
    whole circuit ~2.6x (5 381 vs 13 867 constraints at depth 16; see
    [BENCH_lint.json]) — with MiMC selectable as the
    ablation arm.  Keys, tags, RA tree and proofs of the two arms are
    mutually incompatible by construction; {!keygen} and {!Ra.create}
    must be given the same composition as the params.

    Two valid attestations {!link} iff their [t1] tags are equal, i.e. iff
    the same key authenticated two messages with the same prefix.  In
    ZebraLancer the prefix is the task contract address, which is exactly
    what stops double submission without harming cross-task anonymity. *)

(** Public parameters PP: the circuit shape and SNARK keys for one
    (hash composition, RA tree depth) pair.  Generated once at system
    launch. *)
type params

type user_key = { sk : Fp.t; pk : Fp.t }

(** Canary bytes of the master identity secret [sk] (canonical big-endian
    field encoding) for the ZL2xx secret-flow lint: the master secret must
    never appear in any on-chain payload, store entry, obs export or log
    line — only tags and proofs derived from it may. *)
val key_canary : user_key -> bytes

type attestation = { t1 : Fp.t; t2 : Fp.t; proof : Zebra_snark.Snark.proof }

(** [setup ~random_bytes ~depth ()] runs the zk-SNARK trusted setup for
    the authentication circuit over an RA tree of the given depth, under
    the given hash composition (default Poseidon).

    {b Deprecated alias}: new code should pass a {!Zebra_rng.Source.t} via
    {!setup_rng}; the bare-closure form remains for one release. *)
val setup :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  random_bytes:(int -> bytes) ->
  depth:int ->
  unit ->
  params

(** {!setup} taking a first-class randomness source. *)
val setup_rng :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  rng:Zebra_rng.Source.t ->
  depth:int ->
  unit ->
  params

(** [setup_cached cache ~seed ~depth ()] — {!setup} through a keypair
    cache, id [cpla/depth=<depth>/h=<composition>] (the composition is in
    the id, so the two arms' keypairs can never be served for each other).
    On a hit both circuit synthesis and the trusted setup are skipped;
    setup randomness comes from [seed] alone, so hit and miss produce
    byte-identical keys (see {!Zebra_snark.Snark.Keycache}).
    @raise Invalid_argument when [depth < 1]. *)
val setup_cached :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  Zebra_snark.Snark.Keycache.t ->
  seed:string ->
  depth:int ->
  params

(** The Auth circuit synthesised at the setup's dummy assignment — the
    structure {!setup} compiles, exposed for static analysis
    ([Zebra_lint]) and introspection.  No keys are generated.  Constraint
    budget by composition: the three tag/pk hashes plus [depth] Merkle
    levels — roughly [245*depth + 6*243] for Poseidon (5 381 measured at
    depth 16) vs [730*depth + 6*364] for MiMC (13 867). *)
val constraint_system :
  ?composition:Zebra_hashcomp.Hash_composition.t -> depth:int -> unit -> Zebra_r1cs.Cs.t

val depth : params -> int

(** The hash composition these parameters were set up with. *)
val composition : params -> Zebra_hashcomp.Hash_composition.t

(** Number of R1CS constraints of the Auth circuit (reporting). *)
val circuit_size : params -> int

(** [keygen ~random_bytes ()]: [pk = H(sk)] under [?composition] — must
    match the {!params} the key will authenticate under.

    {b Deprecated alias}: prefer {!keygen_rng}. *)
val keygen :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  random_bytes:(int -> bytes) ->
  unit ->
  user_key

val keygen_rng :
  ?composition:Zebra_hashcomp.Hash_composition.t ->
  rng:Zebra_rng.Source.t ->
  unit ->
  user_key

(** [auth params ~prefix ~message ~key ~index ~path ~root] produces an
    attestation (tags and proof under the params' composition).
    [index]/[path] are the user's certificate under [root] (refresh with
    {!Ra.path}; the tree's {!Ra.hash_composition} must match).  Soundness
    of the whole scheme relies on the path actually matching [root]; an
    inconsistent witness yields an attestation that {!verify} rejects.

    {b Deprecated alias}: prefer {!auth_rng}. *)
val auth :
  random_bytes:(int -> bytes) ->
  params ->
  prefix:Fp.t ->
  message:Fp.t ->
  key:user_key ->
  index:int ->
  path:Fp.t array ->
  root:Fp.t ->
  attestation

(** {!auth} taking a first-class randomness source. *)
val auth_rng :
  rng:Zebra_rng.Source.t ->
  params ->
  prefix:Fp.t ->
  message:Fp.t ->
  key:user_key ->
  index:int ->
  path:Fp.t array ->
  root:Fp.t ->
  attestation

(** [verify params ~prefix ~message ~root att]. *)
val verify : params -> prefix:Fp.t -> message:Fp.t -> root:Fp.t -> attestation -> bool

(** [link a b]: same authenticator, same prefix (t1 equality).  Constant
    time — the contract runs it O(n) per submission for "nearly nothing"
    (paper Section V-B). *)
val link : attestation -> attestation -> bool

val attestation_to_bytes : attestation -> bytes

(** @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val attestation_of_bytes : bytes -> attestation

val attestation_size_bytes : attestation -> int

(** Serialised verification material for embedding in contracts. *)
val vk_to_bytes : params -> bytes

(** The SNARK statement [(prefix, message, root, t1, t2)] an attestation is
    verified against — exposed so auditors can hand blocks of attestations
    to {!Zebra_snark.Snark.batch_verify} under one shared key. *)
val public_inputs :
  prefix:Fp.t -> message:Fp.t -> root:Fp.t -> attestation -> Fp.t array

(** [verify_with_vk ~vk_bytes ...] — verification from the serialised key
    only (what the task contract runs on-chain).  Key decoding is memoised
    process-wide ({!Zebra_snark.Snark.vk_of_bytes_cached}), so repeat
    verifications against the same contract-held key bytes decode it
    once. *)
val verify_with_vk :
  vk_bytes:bytes -> prefix:Fp.t -> message:Fp.t -> root:Fp.t -> attestation -> bool
