module Obs = Zebra_obs.Obs

let max_domains = 64
let clamp_domains n = if n < 1 then 1 else if n > max_domains then max_domains else n

(* A parallel region.  Chunk boundaries live in [run] (closed over the
   grid); [next] hands out chunk indices, [pending] counts completions,
   [failed] keeps the first exception, [stop] is the early-abort flag used
   by [exists].  [timed] is latched from [Obs.enabled] by the caller so
   workers never read observability state. *)
type job = {
  chunks : int;
  run : int -> unit;
  next : int Atomic.t;
  pending : int Atomic.t;
  failed : exn option Atomic.t;
  stop : bool Atomic.t;
  timed : bool;
}

type pool = {
  domains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  cv : Condition.t; (* new job or quit *)
  done_cv : Condition.t; (* a job drained *)
  mutable job : job option;
  mutable epoch : int;
  mutable quit : bool;
  mutable alive : bool;
  busy : bool Atomic.t; (* a region is in flight; nested calls run inline *)
  (* Per-slot work accounting (slot 0 = caller).  Each slot is written only
     by its own domain, before the chunk's [pending] decrement, so the
     caller's post-region read is ordered. *)
  chunks_done : int array;
  busy_s : float array;
  (* Caller-owned high-water marks for flushing deltas into zebra_obs. *)
  flushed_chunks : int array;
  flushed_busy : float array;
}

(* Claim and run chunks until the grid is exhausted.  Any domain (worker or
   caller) runs this; the one finishing the last chunk wakes the caller. *)
let work p j slot =
  let rec claim () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.chunks then begin
      (if Atomic.get j.failed = None then
         try
           if j.timed then begin
             let t0 = Unix.gettimeofday () in
             j.run i;
             p.busy_s.(slot) <- p.busy_s.(slot) +. (Unix.gettimeofday () -. t0)
           end
           else j.run i
         with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
      p.chunks_done.(slot) <- p.chunks_done.(slot) + 1;
      let left = Atomic.fetch_and_add j.pending (-1) - 1 in
      if left = 0 then begin
        Mutex.lock p.m;
        Condition.broadcast p.done_cv;
        Mutex.unlock p.m
      end;
      claim ()
    end
  in
  claim ()

let rec worker_loop p slot last_epoch =
  Mutex.lock p.m;
  while (not p.quit) && p.epoch = last_epoch do
    Condition.wait p.cv p.m
  done;
  if p.quit then Mutex.unlock p.m
  else begin
    let epoch = p.epoch in
    let j = p.job in
    Mutex.unlock p.m;
    (match j with Some j -> work p j slot | None -> ());
    worker_loop p slot epoch
  end

module Pool = struct
  type t = pool

  let create ~domains =
    let domains = clamp_domains domains in
    let p =
      {
        domains;
        workers = [||];
        m = Mutex.create ();
        cv = Condition.create ();
        done_cv = Condition.create ();
        job = None;
        epoch = 0;
        quit = false;
        alive = true;
        busy = Atomic.make false;
        chunks_done = Array.make domains 0;
        busy_s = Array.make domains 0.;
        flushed_chunks = Array.make domains 0;
        flushed_busy = Array.make domains 0.;
      }
    in
    if domains > 1 then
      p.workers <-
        Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop p (i + 1) 0));
    p

  let domains p = p.domains

  let shutdown p =
    if p.alive then begin
      p.alive <- false;
      Mutex.lock p.m;
      p.quit <- true;
      Condition.broadcast p.cv;
      Mutex.unlock p.m;
      Array.iter Domain.join p.workers;
      p.workers <- [||]
    end
end

(* --- the process-wide pool --- *)

let parse_domains s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> clamp_domains (Domain.recommended_domain_count ())
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> clamp_domains n
    | _ -> invalid_arg "Parallel.parse_domains: expected a positive integer or \"auto\"")

let env_domains () =
  match Sys.getenv_opt "ZEBRA_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
    try parse_domains s
    with Invalid_argument _ ->
      Printf.eprintf "warning: ignoring invalid ZEBRA_DOMAINS=%S (want 1..%d or auto)\n%!" s
        max_domains;
      1)

let default = ref (-1) (* -1: read the environment on first use *)

let default_domains () =
  if !default < 1 then default := env_domains ();
  !default

let shared : pool option ref = ref None

let drop_shared () =
  match !shared with
  | Some p ->
    shared := None;
    Pool.shutdown p
  | None -> ()

let () = at_exit drop_shared

let set_default_domains n =
  default := clamp_domains n;
  drop_shared ()

let pool () =
  match !shared with
  | Some p when p.alive -> p
  | _ ->
    let p = Pool.create ~domains:(default_domains ()) in
    shared := Some p;
    p

(* --- deterministic chunk grid --- *)

(* Boundaries depend only on (n, min_chunk): never on the pool, so results
   cannot depend on the domain count.  Capped so a huge n doesn't drown the
   claim path in tiny chunks. *)
let max_chunks = 64

let grid ~min_chunk n =
  let mc = max 1 min_chunk in
  let c = (n + mc - 1) / mc in
  let c = if c > max_chunks then max_chunks else c in
  let size = (n + c - 1) / c in
  (c, size)

(* --- obs wiring (caller domain only) --- *)

let c_regions = lazy (Obs.Counter.make "parallel.regions")
let c_chunks = lazy (Obs.Counter.make "parallel.chunks")

let domain_metrics =
  let tbl = Hashtbl.create 8 in
  fun slot ->
    match Hashtbl.find_opt tbl slot with
    | Some m -> m
    | None ->
      let m =
        ( Obs.Counter.make (Printf.sprintf "parallel.domain%d.chunks" slot),
          Obs.Histogram.make (Printf.sprintf "parallel.domain%d.busy" slot) )
      in
      Hashtbl.replace tbl slot m;
      m

let flush_obs p ~chunks =
  Obs.Counter.incr (Lazy.force c_regions);
  Obs.Counter.add (Lazy.force c_chunks) chunks;
  for slot = 0 to p.domains - 1 do
    let dc = p.chunks_done.(slot) - p.flushed_chunks.(slot) in
    let db = p.busy_s.(slot) -. p.flushed_busy.(slot) in
    p.flushed_chunks.(slot) <- p.chunks_done.(slot);
    p.flushed_busy.(slot) <- p.busy_s.(slot);
    if dc > 0 then begin
      let c, h = domain_metrics slot in
      Obs.Counter.add c dc;
      Obs.Histogram.observe h db
    end
  done

(* --- region driver --- *)

let run_seq ~chunks ~run =
  for i = 0 to chunks - 1 do
    run i
  done

(* One region at a time: publish the job, participate, wait for the rest,
   re-raise the first failure.  [busy] is held by the caller for the whole
   region; a nested call (same or other domain) falls back to [run_seq]
   over the same grid, which is semantically identical. *)
let run_region p ~chunks ~run ~stop =
  if (not p.alive) || p.domains = 1 || chunks <= 1
     || not (Atomic.compare_and_set p.busy false true)
  then run_seq ~chunks ~run
  else begin
    let timed = Obs.enabled () in
    let j =
      {
        chunks;
        run;
        next = Atomic.make 0;
        pending = Atomic.make chunks;
        failed = Atomic.make None;
        stop;
        timed;
      }
    in
    Fun.protect
      ~finally:(fun () -> Atomic.set p.busy false)
      (fun () ->
        Mutex.lock p.m;
        p.job <- Some j;
        p.epoch <- p.epoch + 1;
        Condition.broadcast p.cv;
        Mutex.unlock p.m;
        work p j 0;
        Mutex.lock p.m;
        while Atomic.get j.pending > 0 do
          Condition.wait p.done_cv p.m
        done;
        p.job <- None;
        Mutex.unlock p.m;
        if timed then flush_obs p ~chunks;
        match Atomic.get j.failed with Some e -> raise e | None -> ())
  end

let resolve = function Some p -> p | None -> pool ()

(* --- primitives --- *)

let parallel_for ?pool:p ?(min_chunk = 1024) n body =
  if n > 0 then begin
    let p = resolve p in
    let chunks, size = grid ~min_chunk n in
    let run i =
      let lo = i * size in
      let hi = min n (lo + size) in
      if lo < hi then body lo hi
    in
    run_region p ~chunks ~run ~stop:(Atomic.make false)
  end

let map_reduce ?pool:p ?(min_chunk = 1024) n ~map ~reduce init =
  if n <= 0 then init
  else begin
    let p = resolve p in
    let chunks, size = grid ~min_chunk n in
    let out = Array.make chunks None in
    let run i =
      let lo = i * size in
      let hi = min n (lo + size) in
      if lo < hi then out.(i) <- Some (map lo hi)
    in
    run_region p ~chunks ~run ~stop:(Atomic.make false);
    (* Chunk-index-order fold on the caller: deterministic for any reduce. *)
    Array.fold_left (fun acc -> function Some v -> reduce acc v | None -> acc) init out
  end

let exists ?pool:p ?(min_chunk = 16) n pred =
  if n <= 0 then false
  else begin
    let p = resolve p in
    let chunks, size = grid ~min_chunk n in
    let stop = Atomic.make false in
    let run i =
      let lo = i * size in
      let hi = min n (lo + size) in
      let k = ref lo in
      while (not (Atomic.get stop)) && !k < hi do
        if pred !k then Atomic.set stop true else incr k
      done
    in
    run_region p ~chunks ~run ~stop;
    Atomic.get stop
  end

let both ?pool:p f g =
  let p = resolve p in
  if p.domains = 1 || not p.alive then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let ra = ref None and rb = ref None in
    let run i = if i = 0 then ra := Some (f ()) else rb := Some (g ()) in
    run_region p ~chunks:2 ~run ~stop:(Atomic.make false);
    match (!ra, !rb) with
    | Some a, Some b -> (a, b)
    | _ -> assert false (* run_region re-raises before we get here *)
  end
