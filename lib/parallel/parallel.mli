(** A small fixed-size Domain pool for the SNARK hot paths.

    Stdlib only (Domain / Mutex / Condition / Atomic — no domainslib).  One
    pool of [domains - 1] worker domains serves the whole process; the
    calling domain is always the remaining participant, so a pool of size 1
    spawns nothing and every primitive degrades to a plain sequential loop.

    {b Determinism.}  Work is split on a {e chunk grid} that depends only on
    the iteration count and [min_chunk] — never on the pool size.  Chunks
    are claimed dynamically, but chunk {e boundaries} are fixed, every chunk
    body sees only its own [\[lo, hi)] range, and {!map_reduce} folds chunk
    results in chunk-index order on the calling domain.  A body that writes
    only to indices in its own range (and reads only immutable state)
    therefore produces bit-identical results at every pool size, including
    1.  All users in this repository (FFT butterflies, CRS power tables,
    witness inner products, Miller–Rabin witnesses) obey that discipline —
    see DESIGN.md, "Multicore prover".

    {b Randomness.}  The pool never draws randomness.  Callers that need it
    (e.g. {!Zebra_numeric.Prime}) draw everything on the calling domain
    {e before} fanning out, so the RNG stream is consumed identically at
    every pool size.

    {b Observability.}  When {!Zebra_obs.Obs.enabled}, each region bumps
    [parallel.regions] / [parallel.chunks] and per-domain
    [parallel.domain<i>.chunks] counters and records per-domain busy time
    under the [parallel.domain<i>.busy] histograms, all from the calling
    domain after the region completes (worker domains never touch the
    registry directly). *)

module Pool : sig
  (** A fixed set of worker domains plus the caller; created once, reused
      for every parallel region, shut down explicitly or at exit. *)
  type t

  (** [create ~domains] spawns [max 1 (min domains 64) - 1] workers.
      Workers idle on a condition variable between regions (no spinning). *)
  val create : domains:int -> t

  (** Total participating domains (workers + the caller); at least 1. *)
  val domains : t -> int

  (** Join all workers.  Idempotent; the pool must not be used afterwards
      (primitives on a shut-down pool run sequentially). *)
  val shutdown : t -> unit
end

(** {1 The process-wide pool}

    All hot paths use the shared pool below so a single [ZEBRA_DOMAINS=n]
    environment knob (or one {!set_default_domains} call — the CLI's
    [--domains]) switches the whole prover.  Unset or [1] means sequential;
    [auto] means {!Domain.recommended_domain_count}. *)

(** [parse_domains s] parses a [ZEBRA_DOMAINS] value: a positive integer
    (clamped to [1 .. 64]) or ["auto"].
    @raise Invalid_argument on anything else. *)
val parse_domains : string -> int

(** Pool size the next {!pool} call will use: the last
    {!set_default_domains}, else [$ZEBRA_DOMAINS], else 1. *)
val default_domains : unit -> int

(** [set_default_domains n] shuts the shared pool down (if any) and makes
    subsequent work use a pool of [n] domains.  Call from the main domain
    only, outside any parallel region. *)
val set_default_domains : int -> unit

(** The shared pool, created on first use from {!default_domains} and shut
    down automatically at exit. *)
val pool : unit -> Pool.t

(** {1 Primitives}

    Each takes [?pool] (default: the shared pool) and [?min_chunk], the
    smallest per-chunk iteration count worth shipping to another domain —
    below it the grid collapses to one chunk and the caller runs it inline.
    Exceptions raised by any chunk abort the region and re-raise (one of
    them) on the caller once all claimed chunks have drained; they propagate
    out of worker domains, never kill them. *)

(** [parallel_for ?pool ?min_chunk n body] runs [body lo hi] over disjoint
    ranges exactly partitioning [\[0, n)], in parallel.  [body] must touch
    only state private to its range. *)
val parallel_for : ?pool:Pool.t -> ?min_chunk:int -> int -> (int -> int -> unit) -> unit

(** [map_reduce ?pool ?min_chunk n ~map ~reduce init] — [map lo hi] per
    chunk, then a sequential left fold of the chunk results in chunk-index
    order: [reduce (... (reduce init r0) ...) rk].  Deterministic for any
    [reduce]; no associativity needed. *)
val map_reduce :
  ?pool:Pool.t ->
  ?min_chunk:int ->
  int ->
  map:(int -> int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  'a ->
  'a

(** [exists ?pool ?min_chunk n pred] — is there an [i] with [pred i]?
    Early-aborts across domains through a shared stop flag (and at the
    first hit when sequential); [pred] must be pure. *)
val exists : ?pool:Pool.t -> ?min_chunk:int -> int -> (int -> bool) -> bool

(** [both ?pool f g] runs the two thunks (possibly concurrently) and
    returns both results.  [f] and [g] must not depend on each other. *)
val both : ?pool:Pool.t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
