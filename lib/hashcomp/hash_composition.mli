(** The hash-composition parameter of the deployed circuits.

    Every provable statement in ZebraLancer — CPLA's certificate Merkle
    path and tag equations, the RA tree, the reputation link circuit —
    hashes with one algebraic hash both natively and in-circuit, and the
    two sides must agree bit-for-bit.  This module names that choice and
    dispatches to the matching native function and R1CS gadget, so circuit
    synthesis takes the composition as an explicit parameter instead of
    hard-coding a hash module.

    {!Poseidon} is the default: a 2-to-1 compression costs 243 constraints
    against MiMC's 728, which is ~2.98x fewer constraints on the Merkle
    authentication path that dominates the CPLA circuit (3920 vs 11680 at
    depth 16 — see [BENCH_lint.json]).  {!Mimc} is kept as the ablation
    arm: every deployed circuit is registered, lint-gated and benchmarked
    under {e both} compositions (see [Zebralancer.Deployed]), and key
    caches scope their circuit ids by the composition so keypairs of one
    arm can never be served to the other (see
    [Zebra_snark.Snark.Keycache] users such as
    [Zebra_anonauth.Cpla.setup_cached]).

    Registry and cache id convention: circuit names carry the composition
    as a [-poseidon] / [-mimc] suffix ({!to_string}), cache ids as an
    [h=poseidon] / [h=mimc] segment. *)

type t = Poseidon | Mimc

(** The composition newly deployed circuits compile with: {!Poseidon}. *)
val default : t

(** Both arms, default first — what registries and CI gates iterate. *)
val all : t list

(** ["poseidon"] / ["mimc"] — the registry-name suffix. *)
val to_string : t -> string

val of_string : string -> t option

(** @raise Invalid_argument on an unknown name. *)
val of_string_exn : string -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Native hashing} — dispatch to {!Zebra_poseidon.Poseidon} /
    {!Zebra_mimc.Mimc}. *)

val hash2 : t -> Fp.t -> Fp.t -> Fp.t

(** [hash_list c ms] — both arms absorb the list length first, so the two
    compositions are domain-separated the same way (but their outputs are
    of course unrelated: a tree built under one arm never verifies under
    the other). *)
val hash_list : t -> Fp.t list -> Fp.t

(** {1 Circuit gadgets} — mirror the native functions exactly;
    cross-checked by the qcheck property in [test_anonauth]. *)

(** [hash_gadget c cs ms] = {!hash_list} over expressions:
    [243 * k] constraints (Poseidon) or [364 * k] (MiMC) for [k]
    non-constant inputs. *)
val hash_gadget :
  t -> Zebra_r1cs.Cs.t -> Zebra_r1cs.Gadgets.expr list -> Zebra_r1cs.Gadgets.expr

(** [merkle_root_gadget c cs ~leaf ~path_bits ~siblings] — one select plus
    one 2-to-1 compression per level: 244/level (Poseidon) or 729/level
    (MiMC), plus the caller's path-bit booleanity.
    @raise Invalid_argument when the arrays' lengths differ. *)
val merkle_root_gadget :
  t ->
  Zebra_r1cs.Cs.t ->
  leaf:Zebra_r1cs.Gadgets.expr ->
  path_bits:Zebra_r1cs.Cs.var array ->
  siblings:Zebra_r1cs.Cs.var array ->
  Zebra_r1cs.Gadgets.expr

(** Documented cost of one 2-to-1 compression on non-constant inputs
    (locked by a test): 243 for {!Poseidon}, 728 for {!Mimc}. *)
val constraints_per_hash2 : t -> int
