module Mimc = Zebra_mimc.Mimc
module Poseidon = Zebra_poseidon.Poseidon
module G = Zebra_r1cs.Gadgets

type t = Poseidon | Mimc

let default = Poseidon
let all = [ Poseidon; Mimc ]

let to_string = function Poseidon -> "poseidon" | Mimc -> "mimc"

let of_string = function
  | "poseidon" -> Some Poseidon
  | "mimc" -> Some Mimc
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Hash_composition.of_string_exn: %S" s)

let equal (a : t) (b : t) = a = b
let pp fmt c = Format.pp_print_string fmt (to_string c)

(* --- native --- *)

let hash2 = function Poseidon -> Poseidon.hash2 | Mimc -> Mimc.hash2
let hash_list = function Poseidon -> Poseidon.hash_list | Mimc -> Mimc.hash_list

(* --- gadgets --- *)

let hash_gadget = function
  | Poseidon -> Poseidon.hash_list_gadget
  | Mimc -> G.mimc_hash

let merkle_root_gadget = function
  | Poseidon -> Poseidon.merkle_root_gadget
  | Mimc -> G.merkle_root

let constraints_per_hash2 = function Poseidon -> 243 | Mimc -> 728
