(** ZL2xx — secret-flow analysis by canary-byte checking.

    Secrets (the SNARK trapdoor [t_s], ElGamal decryption keys, wallet
    signing keys, worker master identities) live in {!Zebra_secret.Secret}
    boxes; each holder exposes a [*_canary] projection of the boxed value.
    A {!codec_case} pairs the canaries of every secret reachable from some
    subsystem with the bytes that subsystem actually emits into each
    {b sink} — serialisations, {!Zebra_store.Store} puts, obs exports, log
    lines.  The pass scans every sink output for every canary:

    - {b ZL201 (Error)}: canary bytes found in a sink — the secret escaped
      its box into persistable output (the PR 5 trapdoor-persistence leak,
      regression-locked by the [snark.keypair] case in
      [Zebralancer.Deployed_txs.codecs]).
    - {b ZL202 (Warn)}: a registered canary shorter than
      {!Zebra_secret.Secret.min_canary_len} — too weak to scan for, so the
      case proves less than it claims.

    Matching is substring occurrence of the canary or its byte reversal
    (catching endianness-flipped encodings); see
    {!Zebra_secret.Secret.leaks}. *)

type sink = Serialization | Store_put | Obs_export | Log_line

val sink_to_string : sink -> string

type codec_case = {
  codec : string;  (** e.g. ["snark.keypair"] *)
  secrets : (string * bytes) list;  (** (secret label, canary bytes) *)
  outputs : (sink * string * bytes) list;  (** (sink, output label, bytes) *)
}

type report = {
  codec : string;
  secrets : int;
  outputs : int;
  findings : Lint.finding list;
}

val analyze : codec_case -> report

val errors : report -> int
val warnings : report -> int
val infos : report -> int

(** JSON shape: [{"codec":..,"secrets":..,"outputs":..,
    "counts":{...},"findings":[...]}]. *)
val to_json : report -> Zebra_obs.Json.t

val render : report -> string
