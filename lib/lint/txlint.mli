(** ZL1xx — declared-footprint analysis of the transaction layer.

    The parallel block executor ({!Zebra_chain.Exec}) schedules
    transactions into waves by the shard mask of their {e declared}
    footprint.  The runtime enforces soundness with [State.Escape] and a
    whole-block serial fallback — correct, but an under-declared footprint
    silently destroys parallelism under load, and an over-declared one
    serialises waves for no reason.  This pass checks both properties
    statically, the way {!Lint.analyze} checks R1CS circuits:

    each {b case} is one representative transaction of a tx kind, executed
    with {!Zebra_chain.State.apply_tx_traced} against its real pre-state
    (side-effect-free: the transaction is rolled back after its shard
    accesses are recorded).  Over the cases of a kind the pass reports

    - {b ZL101 (Error) — soundness}: a recorded access falls outside the
      declared shard mask ([Exec.shard_mask]); at runtime this transaction
      kind escapes and forces serial re-execution.
    - {b ZL102 (Error) — minimality}: a declared extra footprint address
      whose shard is never touched on any analysed path; the declaration
      costs wave conflicts without buying safety.
    - {b ZL103 (Error) — vacuous case}: a representative case that
      reverted or failed, i.e. the contract branch it was meant to cover
      was never actually explored.
    - {b ZL110 (Info) — conflict signature}: the per-kind accessed/declared
      shard sets, emitted so [Exec]'s wave scheduler and footprint
      builders ([Requester.settlement_footprint]) can be cross-checked.

    The deployed tx kinds are enumerated by [Zebralancer.Deployed_txs]
    (analogous to [Deployed] for circuits); negative fixtures live in
    [test/test_txlint.ml]. *)

(** One representative transaction of a kind, already executed and traced
    against its pre-state. *)
type case = {
  kind : string;  (** tx kind, e.g. ["zebralancer-task.instruct"] *)
  case : string;  (** variant label, e.g. ["block 9 tx 0"] *)
  tx : Zebra_chain.Tx.t;
  receipt : Zebra_chain.State.receipt;  (** what the execution produced *)
  accessed : string list;  (** state keys touched, first-access order *)
}

(** [trace_case ~kind ~case st ~height tx] builds a case by executing [tx]
    traced (and rolled back) on [st]. *)
val trace_case :
  kind:string -> case:string -> Zebra_chain.State.t -> height:int -> Zebra_chain.Tx.t -> case

type report = {
  kind : string;
  cases : int;
  findings : Lint.finding list;  (** in rule-id order *)
  accessed_shards : int list;  (** union over cases, ascending *)
  declared_shards : int list;  (** union of declared masks, ascending *)
}

(** Analyse the cases of one kind (all must carry [~kind]).
    @raise Invalid_argument on an empty or mixed-kind case list. *)
val analyze : kind:string -> case list -> report

(** Group cases by kind and analyse each; reports in kind order. *)
val analyze_all : case list -> report list

(** The per-kind shard conflict signature, e.g.
    ["zebralancer-task.instruct {3,12,17}"] — the accessed-shard set the
    wave scheduler must assume for this kind. *)
val conflict_signature : report -> string

val errors : report -> int
val warnings : report -> int
val infos : report -> int

(** JSON shape:
    [{"kind":..,"cases":..,"accessed_shards":[..],"declared_shards":[..],
      "counts":{"error":..,"warn":..,"info":..},"findings":[...]}]. *)
val to_json : report -> Zebra_obs.Json.t

(** Human rendering, same style as {!Lint.render}. *)
val render : report -> string
