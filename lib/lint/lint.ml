module Cs = Zebra_r1cs.Cs
module Gadgets = Zebra_r1cs.Gadgets
module Obs = Zebra_obs.Obs
module Json = Zebra_obs.Json

type severity = Error | Warn | Info

let severity_to_string = function Error -> "error" | Warn -> "warn" | Info -> "info"

type finding = {
  rule : string;
  rule_name : string;
  severity : severity;
  wire : int option;
  wire_label : string option;
  constraint_index : int option;
  constraint_label : string option;
  message : string;
}

type report = {
  circuit : string;
  findings : finding list;
  num_vars : int;
  num_inputs : int;
  num_constraints : int;
  jacobian_rank : int;
  free_aux_wires : int;
}

let rules =
  [
    ("ZL001", "unconstrained-wire", Error);
    ("ZL002", "unused-public-input", Warn);
    ("ZL010", "trivial-constraint", Warn);
    ("ZL011", "duplicate-constraint", Warn);
    ("ZL012", "linearly-dependent-constraint", Info);
    ("ZL013", "unsatisfiable-constant-constraint", Error);
    ("ZL020", "rank-deficient-system", Warn);
    ("ZL021", "underdetermined-wire", Warn);
    ("ZL030", "missing-booleanity", Error);
    ("ZL031", "broken-bit-recomposition", Error);
    (* chain/protocol layer (Txlint): declared-footprint analysis *)
    ("ZL101", "under-declared-footprint", Error);
    ("ZL102", "over-declared-footprint", Error);
    ("ZL103", "vacuous-tx-case", Error);
    ("ZL110", "shard-conflict-signature", Info);
    (* secret-flow (Seclint): canary-byte taint checking *)
    ("ZL201", "secret-leaked-to-sink", Error);
    ("ZL202", "secret-canary-too-short", Warn);
  ]

let rule_name id =
  match List.find_opt (fun (i, _, _) -> i = id) rules with
  | Some (_, n, _) -> n
  | None -> invalid_arg ("Lint.rule_name: unknown rule " ^ id)

let rule_severity id =
  match List.find_opt (fun (i, _, _) -> i = id) rules with
  | Some (_, _, s) -> s
  | None -> invalid_arg ("Lint.rule_severity: unknown rule " ^ id)

(* --- observability --- *)

let runs_counter = Obs.Counter.make "lint.runs"
let circuits_counter = Obs.Counter.make "lint.circuits"

let severity_counter = function
  | Error -> Obs.Counter.make "lint.findings.error"
  | Warn -> Obs.Counter.make "lint.findings.warn"
  | Info -> Obs.Counter.make "lint.findings.info"

let rule_counters =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, _, _) ->
      Hashtbl.replace tbl id (Obs.Counter.make ("lint.rule." ^ String.lowercase_ascii id)))
    rules;
  tbl

(* Shared by [analyze] and the chain-layer passes (Txlint, Seclint). *)
let observe_findings findings =
  List.iter
    (fun f ->
      Obs.Counter.incr (severity_counter f.severity);
      match Hashtbl.find_opt rule_counters f.rule with
      | Some c -> Obs.Counter.incr c
      | None -> ())
    findings

(* --- sparse linear algebra over Fp ---

   Rows are association lists (column, coefficient) sorted by DESCENDING
   column with no zero coefficients.  Pivoting on the largest column makes
   elimination near-linear on synthesised circuits: gadget code allocates
   an output wire per constraint, so most rows lead with a fresh column
   and install a pivot without any reduction work. *)

let row_scale k row = List.map (fun (c, x) -> (c, Fp.mul k x)) row

let row_sub a b =
  (* a - b, both sorted descending *)
  let rec go acc a b =
    match (a, b) with
    | [], [] -> List.rev acc
    | [], (c, k) :: tb -> go ((c, Fp.neg k) :: acc) [] tb
    | (c, k) :: ta, [] -> go ((c, k) :: acc) ta []
    | (ca, ka) :: ta, (cb, kb) :: tb ->
      if ca > cb then go ((ca, ka) :: acc) ta b
      else if cb > ca then go ((cb, Fp.neg kb) :: acc) a tb
      else
        let k = Fp.sub ka kb in
        if Fp.is_zero k then go acc ta tb else go ((ca, k) :: acc) ta tb
  in
  go [] a b

(* Gaussian elimination.  Returns the pivot table (leading column ->
   normalised row) and the indices of rows that reduced to zero (linearly
   dependent on earlier rows). *)
let eliminate rows =
  let pivots : (int, (int * Fp.t) list) Hashtbl.t = Hashtbl.create 97 in
  let dependent = ref [] in
  List.iter
    (fun (idx, row0) ->
      let row = ref row0 in
      let fixed = ref false in
      while not !fixed do
        match !row with
        | [] ->
          dependent := idx :: !dependent;
          fixed := true
        | (c0, k0) :: _ -> (
          match Hashtbl.find_opt pivots c0 with
          | Some prow -> row := row_sub !row (row_scale k0 prow)
          | None ->
            Hashtbl.replace pivots c0 (row_scale (Fp.inv k0) !row);
            fixed := true)
      done)
    rows;
  (pivots, List.rev !dependent)

(* --- constraint canonicalisation --- *)

type cview = {
  idx : int;
  clabel : string option;
  ca : (int * Fp.t) list; (* canonical: simplified, sorted ascending by wire *)
  cb : (int * Fp.t) list;
  cc : (int * Fp.t) list;
}

let canon lc =
  Gadgets.simplify lc
  |> List.map (fun (k, v) -> (Cs.int_of_var v, k))
  |> List.sort (fun (v1, _) (v2, _) -> compare v1 v2)

(* Some k when the lc only touches the constant wire (value k). *)
let const_of = function
  | [] -> Some Fp.zero
  | [ (0, k) ] -> Some k
  | _ -> None

let collect cs =
  let acc = ref [] in
  Cs.iter_constraints cs (fun ~index ~label a b c ->
      acc := { idx = index; clabel = label; ca = canon a; cb = canon b; cc = canon c } :: !acc);
  List.rev !acc

(* --- the analysis --- *)

let describe_wire cs w =
  match Cs.wire_label cs (Cs.var_of_int w) with
  | Some l -> Printf.sprintf "wire %d (%s)" w l
  | None -> Printf.sprintf "wire %d" w

let finding ?wire ?wire_label ?constraint_index ?constraint_label rule message =
  {
    rule;
    rule_name = rule_name rule;
    severity = rule_severity rule;
    wire;
    wire_label;
    constraint_index;
    constraint_label;
    message;
  }

let make_finding = finding

let wire_finding cs rule w message =
  finding rule message ~wire:w ?wire_label:(Cs.wire_label cs (Cs.var_of_int w))

let constr_finding rule (c : cview) message =
  finding rule message ~constraint_index:c.idx ?constraint_label:c.clabel

(* ZL001 / ZL002: structural occurrence (nonzero coefficient anywhere). *)
let unconstrained_wires cs views =
  let n = Cs.num_vars cs and inputs = Cs.num_inputs cs in
  let occurs = Array.make n false in
  let mark lc = List.iter (fun (v, _) -> if v > 0 && v < n then occurs.(v) <- true) lc in
  List.iter
    (fun c ->
      mark c.ca;
      mark c.cb;
      mark c.cc)
    views;
  let errs = ref [] and warns = ref [] in
  for w = n - 1 downto 1 do
    if not occurs.(w) then
      if w <= inputs then
        warns :=
          wire_finding cs "ZL002" w
            (Printf.sprintf "public input %s appears in no constraint: the verifier checks a \
                             value the circuit never reads"
               (describe_wire cs w))
          :: !warns
      else
        errs :=
          wire_finding cs "ZL001" w
            (Printf.sprintf "witness %s appears in no constraint (nonzero coefficient): the \
                             prover may assign it freely"
               (describe_wire cs w))
          :: !errs
  done;
  (!errs, !warns, occurs)

(* ZL010 / ZL013: constraints that bind nothing, or can never hold. *)
let degenerate_constraints views =
  List.filter_map
    (fun c ->
      match (const_of c.ca, const_of c.cb, const_of c.cc) with
      | Some a, Some b, Some cc ->
        if Fp.equal (Fp.mul a b) cc then
          Some
            (constr_finding "ZL010" c
               "constraint touches only the constant wire and is identically satisfied")
        else
          Some
            (constr_finding "ZL013" c
               "constant constraint can never be satisfied: the circuit rejects every witness")
      | a, b, Some cc when Fp.is_zero cc && (a = Some Fp.zero || b = Some Fp.zero) ->
        Some
          (constr_finding "ZL010" c
             "one product side is the constant 0 and the right-hand side is 0: satisfied by \
              every assignment")
      | _ -> None)
    views

(* ZL011: structural duplicates, up to term order, coefficient merging and
   commuting the product sides. *)
let duplicate_constraints views =
  let key_of_lc lc =
    let b = Buffer.create 64 in
    List.iter
      (fun (v, k) ->
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b ':';
        Buffer.add_bytes b (Fp.to_bytes_be k);
        Buffer.add_char b ';')
      lc;
    Buffer.contents b
  in
  let seen = Hashtbl.create 97 in
  List.filter_map
    (fun c ->
      let ka = key_of_lc c.ca and kb = key_of_lc c.cb and kc = key_of_lc c.cc in
      let key = (if ka <= kb then ka ^ "*" ^ kb else kb ^ "*" ^ ka) ^ "=" ^ kc in
      match Hashtbl.find_opt seen key with
      | Some first ->
        Some
          (constr_finding "ZL011" c
             (Printf.sprintf "structurally identical to constraint #%d%s" first.idx
                (match first.clabel with Some l -> Printf.sprintf " (%s)" l | None -> "")))
      | None ->
        Hashtbl.replace seen key c;
        None)
    views

(* Booleanity pattern: (alpha x) * (beta x - beta) = 0 up to side swap.
   Returns the set of wires carrying such a constraint. *)
let booleanity_constrained views =
  let tbl = Hashtbl.create 97 in
  let single = function [ (v, k) ] when v > 0 -> Some (v, k) | _ -> None in
  let affine_pair = function
    | [ (0, k0); (v, k1) ] when v > 0 && Fp.equal k0 (Fp.neg k1) -> Some v
    | _ -> None
  in
  List.iter
    (fun c ->
      if c.cc = [] then
        let check l r =
          match (single l, affine_pair r) with
          | Some (x, _), Some x' when x = x' -> Hashtbl.replace tbl x ()
          | _ -> ()
        in
        check c.ca c.cb;
        check c.cb c.ca)
    views;
  tbl

let is_bit_label = function
  | Some l -> String.length l >= 3 && String.sub l 0 3 = "bit"
  | None -> false

(* ZL030: every wire whose label declares it boolean must carry a
   booleanity constraint. *)
let missing_booleanity cs views =
  let bool_ok = booleanity_constrained views in
  let n = Cs.num_vars cs in
  let out = ref [] in
  for w = n - 1 downto 1 do
    if is_bit_label (Cs.wire_label cs (Cs.var_of_int w)) && not (Hashtbl.mem bool_ok w) then
      out :=
        wire_finding cs "ZL030" w
          (Printf.sprintf "%s is declared boolean but no constraint enforces x*(x-1) = 0"
             (describe_wire cs w))
        :: !out
  done;
  (!out, bool_ok)

(* ZL031: "bit recomposition" constraints must sum a strict doubling chain
   of booleanity-constrained wires back into their input. *)
let recomposition_findings cs views bool_ok =
  let doubling coeffs =
    (* sorted canonical representatives must be 1, 2, 4, ... *)
    let sorted = List.sort Fp.compare coeffs in
    match sorted with
    | [] -> false
    | first :: _ ->
      Fp.equal first Fp.one
      && fst
           (List.fold_left
              (fun (ok, prev) k ->
                match prev with
                | None -> (ok, Some k)
                | Some p -> (ok && Fp.equal k (Fp.add p p), Some k))
              (true, None) sorted)
  in
  List.filter_map
    (fun c ->
      if c.clabel <> Some "bit recomposition" then None
      else
        let sides = [ c.ca; c.cb; c.cc ] in
        let nonconst = List.filter (fun lc -> const_of lc = None) sides in
        match nonconst with
        | [ lc ] -> (
          let bits, _rest =
            List.partition (fun (v, _) -> is_bit_label (Cs.wire_label cs (Cs.var_of_int v))) lc
          in
          match bits with
          | [] ->
            Some
              (constr_finding "ZL031" c
                 "recomposition constraint contains no boolean-labelled wires")
          | _ ->
            let unbound = List.filter (fun (v, _) -> not (Hashtbl.mem bool_ok v)) bits in
            if unbound <> [] then
              Some
                (constr_finding "ZL031" c
                   (Printf.sprintf
                      "recomposition reads %s without a booleanity constraint: the sum can \
                       encode values outside the range"
                      (describe_wire cs (fst (List.hd unbound)))))
            else
              (* The decomposition's own bits are the trailing block of
                 consecutively-allocated bit wires (bits_of_expr allocates
                 them back to back, immediately before this constraint).
                 Boolean wires reaching the constraint through the {e
                 recomposed expression} — e.g. a stripped less_than
                 complement summed into the input — sit at older,
                 non-contiguous indices and belong to the input side, not
                 the chain. *)
              let own_bits =
                let desc =
                  List.sort (fun (v, _) (w, _) -> compare w v) bits (* index descending *)
                in
                let rec run prev acc = function
                  | (v, k) :: rest when v = prev - 1 -> run v ((v, k) :: acc) rest
                  | _ -> acc
                in
                match desc with [] -> [] | (v, k) :: rest -> run v [ (v, k) ] rest
              in
              let coeffs = List.map snd own_bits in
              if doubling coeffs || doubling (List.map Fp.neg coeffs) then None
              else
                Some
                  (constr_finding "ZL031" c
                     "bit coefficients are not the strict doubling chain 1, 2, 4, ...: the \
                      decomposition does not sum back to its input"))
        | _ ->
          Some
            (constr_finding "ZL031" c
               "recomposition constraint does not have exactly one non-constant side"))
    views

(* The Jacobian of the constraint map at the board's assignment:
   d/dx_j (<A,w><B,w> - <C,w>) = A_j <B,w> + B_j <A,w> - C_j. *)
let jacobian_row cs (c : cview) ~min_col =
  let tbl = Hashtbl.create 8 in
  let addt v k =
    if v >= min_col && not (Fp.is_zero k) then
      let prev = Option.value (Hashtbl.find_opt tbl v) ~default:Fp.zero in
      let next = Fp.add prev k in
      if Fp.is_zero next then Hashtbl.remove tbl v else Hashtbl.replace tbl v next
  in
  let lc_val l =
    List.fold_left
      (fun acc (v, k) -> Fp.add acc (Fp.mul k (Cs.value cs (Cs.var_of_int v))))
      Fp.zero l
  in
  let av = lc_val c.ca and bv = lc_val c.cb in
  List.iter (fun (v, k) -> addt v (Fp.mul k bv)) c.ca;
  List.iter (fun (v, k) -> addt v (Fp.mul k av)) c.cb;
  List.iter (fun (v, k) -> addt v (Fp.neg k)) c.cc;
  Hashtbl.fold (fun v k acc -> (v, k) :: acc) tbl []
  |> List.sort (fun (v1, _) (v2, _) -> compare v2 v1)

(* ZL012 + ZL020/ZL021: two elimination passes.  The full-column pass
   classifies linearly dependent constraints; the auxiliary-column pass
   (public inputs treated as fixed) ranks the system and lists witness
   wires outside the pivot set. *)
let rank_analysis cs views occurs ~skip =
  let inputs = Cs.num_inputs cs and n = Cs.num_vars cs in
  let live = List.filter (fun c -> not (Hashtbl.mem skip c.idx)) views in
  (* pass 1: dependence over all variable columns *)
  let full_rows = List.map (fun c -> (c.idx, jacobian_row cs c ~min_col:1)) live in
  let _, dependent = eliminate full_rows in
  let by_idx = Hashtbl.create 97 in
  List.iter (fun c -> Hashtbl.replace by_idx c.idx c) views;
  let dep_findings =
    List.map
      (fun idx ->
        let c = Hashtbl.find by_idx idx in
        constr_finding "ZL012" c
          "linearisation at the sampled assignment is a linear combination of earlier \
           constraints: it adds no first-order binding power")
      dependent
  in
  (* pass 2: rank over auxiliary columns only *)
  let aux_rows = List.map (fun c -> (c.idx, jacobian_row cs c ~min_col:(inputs + 1))) live in
  let pivots, _ = eliminate aux_rows in
  let rank = Hashtbl.length pivots in
  let free = ref [] in
  for w = n - 1 downto inputs + 1 do
    if occurs.(w) && not (Hashtbl.mem pivots w) then
      free :=
        wire_finding cs "ZL021" w
          (Printf.sprintf
             "%s is not uniquely determined by the public inputs at the sampled assignment \
              (to first order): the prover has a degree of freedom here"
             (describe_wire cs w))
        :: !free
  done;
  let free = !free in
  let summary =
    if free = [] then []
    else
      [
        finding "ZL020"
          (Printf.sprintf
             "Jacobian rank %d leaves %d of %d auxiliary wires underdetermined at the \
              sampled assignment"
             rank (List.length free)
             (n - inputs - 1));
      ]
  in
  (dep_findings, summary @ free, rank, List.length free)

let analyze ?(name = "circuit") cs =
  Obs.with_span "lint.analyze" (fun () ->
      Obs.Counter.incr runs_counter;
      Obs.Counter.incr circuits_counter;
      let views = collect cs in
      let zl001, zl002, occurs = unconstrained_wires cs views in
      let degenerate = degenerate_constraints views in
      let duplicates = duplicate_constraints views in
      let zl030, bool_ok = missing_booleanity cs views in
      let zl031 = recomposition_findings cs views bool_ok in
      (* Constraints already classified as degenerate or duplicate would
         re-report as dependent rows; skip them in the rank passes. *)
      let skip = Hashtbl.create 97 in
      List.iter
        (fun f -> Option.iter (fun i -> Hashtbl.replace skip i ()) f.constraint_index)
        (degenerate @ duplicates);
      let zl012, rank_findings, rank, free = rank_analysis cs views occurs ~skip in
      let findings =
        List.concat
          [ zl001; zl002; degenerate; duplicates; zl012; rank_findings; zl030; zl031 ]
        |> List.stable_sort (fun f1 f2 -> compare f1.rule f2.rule)
      in
      observe_findings findings;
      {
        circuit = name;
        findings;
        num_vars = Cs.num_vars cs;
        num_inputs = Cs.num_inputs cs;
        num_constraints = Cs.num_constraints cs;
        jacobian_rank = rank;
        free_aux_wires = free;
      })

(* --- report accessors & rendering --- *)

let count sev r = List.length (List.filter (fun f -> f.severity = sev) r.findings)
let errors = count Error
let warnings = count Warn
let infos = count Info
let by_rule r id = List.filter (fun f -> f.rule = id) r.findings

let finding_to_json f =
  let opt_int = function Some i -> Json.Num (float_of_int i) | None -> Json.Null in
  let opt_str = function Some s -> Json.Str s | None -> Json.Null in
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("name", Json.Str f.rule_name);
      ("severity", Json.Str (severity_to_string f.severity));
      ("wire", opt_int f.wire);
      ("wire_label", opt_str f.wire_label);
      ("constraint", opt_int f.constraint_index);
      ("constraint_label", opt_str f.constraint_label);
      ("message", Json.Str f.message);
    ]

let to_json r =
  Json.Obj
    [
      ("circuit", Json.Str r.circuit);
      ("num_vars", Json.Num (float_of_int r.num_vars));
      ("num_inputs", Json.Num (float_of_int r.num_inputs));
      ("num_constraints", Json.Num (float_of_int r.num_constraints));
      ("jacobian_rank", Json.Num (float_of_int r.jacobian_rank));
      ("free_aux_wires", Json.Num (float_of_int r.free_aux_wires));
      ( "counts",
        Json.Obj
          [
            ("error", Json.Num (float_of_int (errors r)));
            ("warn", Json.Num (float_of_int (warnings r)));
            ("info", Json.Num (float_of_int (infos r)));
          ] );
      ("findings", Json.List (List.map finding_to_json r.findings));
    ]

let pp_finding ppf f =
  let subject =
    match (f.wire, f.constraint_index) with
    | Some w, _ ->
      Printf.sprintf " wire %d%s" w
        (match f.wire_label with Some l -> Printf.sprintf " (%s)" l | None -> "")
    | None, Some i ->
      Printf.sprintf " constraint #%d%s" i
        (match f.constraint_label with Some l -> Printf.sprintf " (%s)" l | None -> "")
    | None, None -> ""
  in
  Format.fprintf ppf "[%s %s]%s: %s" f.rule (severity_to_string f.severity) subject f.message

let render ?(max_per_rule = 5) r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d vars (%d inputs), %d constraints, rank %d, %d free -- %d error(s), %d warn(s), %d info(s)\n"
       r.circuit r.num_vars r.num_inputs r.num_constraints r.jacobian_rank r.free_aux_wires
       (errors r) (warnings r) (infos r));
  let line f = Buffer.add_string b (Format.asprintf "  %a\n" pp_finding f) in
  List.iter (fun f -> if f.severity = Error then line f) r.findings;
  List.iter
    (fun (id, _, sev) ->
      if sev <> Error then begin
        let fs = by_rule r id in
        let total = List.length fs in
        List.iteri (fun i f -> if i < max_per_rule then line f) fs;
        if total > max_per_rule then
          Buffer.add_string b
            (Printf.sprintf "  [%s %s]: ... and %d more\n" id
               (severity_to_string sev) (total - max_per_rule))
      end)
    rules;
  Buffer.contents b
