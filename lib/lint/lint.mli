(** Static analysis of R1CS constraint systems ({!Zebra_r1cs.Cs}).

    End-to-end prove/verify tests establish {e completeness} — the honest
    witness satisfies the circuit — but cannot distinguish "sound" from
    "accepts too much": an under-constrained wire silently widens the NP
    language the SNARK proves.  This module inspects a synthesised [Cs.t]
    {e before} setup and reports structural soundness smells, grouped into
    four rule families (DESIGN.md, "Circuit static analysis"):

    - {b ZL00x — unconstrained wires.}  ZL001: an auxiliary (witness) wire
      that appears in no constraint with a nonzero coefficient — the prover
      may set it to anything.  ZL002: a public input no constraint reads —
      the verifier checks a value the circuit ignores.
    - {b ZL01x — degenerate constraints.}  ZL010: identically-satisfied
      constraints (e.g. [0 * b = 0], constant identities) that add no
      binding power.  ZL011: structural duplicates (same [A*B=C] up to term
      order, coefficient merging and [A]/[B] commutation).  ZL012:
      constraints whose linearisation is a linear combination of earlier
      ones at the sampled assignment.  ZL013: constant constraints that can
      never hold — the circuit is unsatisfiable for {e every} witness.
    - {b ZL02x — rank check.}  The Jacobian of the constraint map is ranked
      over the auxiliary columns by sparse Gaussian elimination over
      {!Fp}; auxiliary wires outside the pivot set are not uniquely
      determined (to first order, at the board's assignment) by the public
      inputs (ZL021, plus the ZL020 summary).  Deliberately prover-chosen
      wires (e.g. [is_zero]'s inverse witness on a zero input) surface here
      too, so the family reports [Warn], not [Error].
    - {b ZL03x — gadget contracts.}  ZL030: a wire whose label carries the
      ["bit"] prefix (the {!Zebra_r1cs.Gadgets.alloc_bit} convention) with
      no booleanity constraint.  ZL031: a ["bit recomposition"] constraint
      whose bit coefficients are not the strict doubling chain
      [1, 2, 4, ...] or whose bit wires lack booleanity — the decomposition
      would not sum back to its input.  The chain is checked on the
      decomposition's {e own} bits — the trailing block of
      consecutively-allocated bit wires; boolean wires reaching the
      constraint through the recomposed expression (e.g. a
      {!Zebra_r1cs.Gadgets.less_than} complement summed into the input)
      are input-side terms, though their booleanity is still required.

    Analysis is read-only: it never mutates the system, its assignment, or
    subsequent prove/verify behaviour (property-tested in
    [test/test_lint.ml]).  When {!Zebra_obs.Obs} is enabled, each run
    records [lint.runs], per-severity and per-rule [lint.*] counters, and
    the [lint.analyze] span. *)

type severity = Error | Warn | Info

val severity_to_string : severity -> string

(** Stable machine-readable finding.  [wire]/[constraint_index] locate the
    subject when the rule is about a single wire or constraint; labels give
    the provenance recorded at allocation/enforcement time. *)
type finding = {
  rule : string;  (** stable id, e.g. ["ZL001"] *)
  rule_name : string;  (** e.g. ["unconstrained-wire"] *)
  severity : severity;
  wire : int option;
  wire_label : string option;
  constraint_index : int option;
  constraint_label : string option;
  message : string;
}

type report = {
  circuit : string;  (** the [?name] given to {!analyze} *)
  findings : finding list;  (** in rule-id order, stable within a rule *)
  num_vars : int;
  num_inputs : int;
  num_constraints : int;
  jacobian_rank : int;  (** over auxiliary columns, at the board's assignment *)
  free_aux_wires : int;  (** aux wires outside the pivot set *)
}

(** [(id, name, severity)] of every rule, in id order — the linter's public
    contract surface, used by docs and tests.  ZL0xx rules are the R1CS
    families below; ZL1xx (declared-footprint soundness/minimality) and
    ZL2xx (secret canary flow) are produced by the chain-layer passes
    {!Txlint} and {!Seclint}, which share this finding type, severity
    mapping and obs counters. *)
val rules : (string * string * severity) list

(** [make_finding ?wire ?wire_label ?constraint_index ?constraint_label id
    message] — a finding under a registered rule id (name and severity are
    looked up; raises [Invalid_argument] on an unknown id).  Used by the
    chain-layer passes; the wire/constraint locators are typically absent
    there. *)
val make_finding :
  ?wire:int ->
  ?wire_label:string ->
  ?constraint_index:int ->
  ?constraint_label:string ->
  string ->
  string ->
  finding

(** Bump the per-severity and per-rule [lint.*] obs counters for each
    finding (no-ops unless {!Zebra_obs.Obs} is enabled).  {!analyze} calls
    this itself; external passes call it once per report. *)
val observe_findings : finding list -> unit

(** [analyze ?name cs] runs every rule.  Read-only; safe to call on a board
    that will subsequently be handed to [Snark.setup]/[prove]. *)
val analyze : ?name:string -> Zebra_r1cs.Cs.t -> report

val errors : report -> int
val warnings : report -> int
val infos : report -> int

(** Findings carrying the given rule id. *)
val by_rule : report -> string -> finding list

(** JSON shape:
    [{"circuit":..,"num_vars":..,"num_inputs":..,"num_constraints":..,
      "jacobian_rank":..,"free_aux_wires":..,
      "counts":{"error":..,"warn":..,"info":..},"findings":[...]}]. *)
val to_json : report -> Zebra_obs.Json.t

(** JSON shape of one finding (the element type of ["findings"] above). *)
val finding_to_json : finding -> Zebra_obs.Json.t

(** Human rendering: one header line, then one line per finding; [Warn]-
    and [Info]-level findings are grouped per rule and truncated to
    [max_per_rule] (default 5) with an elision count. *)
val render : ?max_per_rule:int -> report -> string

val pp_finding : Format.formatter -> finding -> unit
