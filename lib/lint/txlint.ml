module Obs = Zebra_obs.Obs
module Json = Zebra_obs.Json
module State = Zebra_chain.State
module Tx = Zebra_chain.Tx
module Exec = Zebra_chain.Exec
module Address = Zebra_chain.Address

let m_runs = Obs.Counter.make "lint.tx.runs"
let m_kinds = Obs.Counter.make "lint.tx.kinds"
let m_cases = Obs.Counter.make "lint.tx.cases"

type case = {
  kind : string;
  case : string;
  tx : Tx.t;
  receipt : State.receipt;
  accessed : string list;
}

let trace_case ~kind ~case st ~height tx =
  let receipt, accessed = State.apply_tx_traced st ~height tx in
  { kind; case; tx; receipt; accessed }

type report = {
  kind : string;
  cases : int;
  findings : Lint.finding list;
  accessed_shards : int list;
  declared_shards : int list;
}

let shard_set_to_string shards =
  "{" ^ String.concat "," (List.map string_of_int shards) ^ "}"

let shards_of_mask m =
  let out = ref [] in
  for s = State.num_shards - 1 downto 0 do
    if (m lsr s) land 1 = 1 then out := s :: !out
  done;
  !out

let analyze ~kind cases =
  Obs.with_span "lint.tx.analyze" (fun () ->
      if cases = [] then invalid_arg "Txlint.analyze: no cases";
      List.iter
        (fun (c : case) ->
          if c.kind <> kind then
            invalid_arg
              (Printf.sprintf "Txlint.analyze: case %s has kind %s, expected %s" c.case c.kind
                 kind))
        cases;
      Obs.Counter.incr m_runs;
      Obs.Counter.incr m_kinds;
      List.iter (fun _ -> Obs.Counter.incr m_cases) cases;
      let accessed = Hashtbl.create 8 and declared = Hashtbl.create 8 in
      (* ZL101: accesses outside the declared mask, per case, one finding
         per offending shard (the first offending key names it). *)
      let zl101 =
        List.concat_map
          (fun c ->
            let mask = Exec.shard_mask c.tx in
            List.iter (fun s -> Hashtbl.replace declared s ()) (shards_of_mask mask);
            let seen = Hashtbl.create 4 in
            List.filter_map
              (fun key ->
                let s = State.shard_of_key key in
                Hashtbl.replace accessed s ();
                if (mask lsr s) land 1 = 1 || Hashtbl.mem seen s then None
                else begin
                  Hashtbl.replace seen s ();
                  Some
                    (Lint.make_finding "ZL101"
                       (Printf.sprintf
                          "case %s: access to %s (shard %d) is outside the declared mask %s — \
                           at runtime this kind escapes and is re-executed serially"
                          c.case key s
                          (shard_set_to_string (shards_of_mask mask))))
                end)
              c.accessed)
          cases
      in
      (* ZL103: a representative case that did not actually execute its
         branch binds nothing — the coverage it claims is vacuous. *)
      let zl103 =
        List.filter_map
          (fun c ->
            match c.receipt.State.status with
            | State.Ok _ -> None
            | State.Failed reason ->
              Some
                (Lint.make_finding "ZL103"
                   (Printf.sprintf
                      "case %s failed (%s): the contract branch this case was meant to cover \
                       was never explored"
                      c.case reason)))
          cases
      in
      (* ZL102: declared extras (beyond the static sender/destination part)
         whose shard no analysed path ever touches. *)
      let zl102 =
        let seen_addr = Hashtbl.create 8 in
        List.concat_map
          (fun c ->
            List.filter_map
              (fun a ->
                let hex = Address.to_hex a in
                let s = State.shard_of_address a in
                if Hashtbl.mem accessed s || Hashtbl.mem seen_addr hex then None
                else begin
                  Hashtbl.replace seen_addr hex ();
                  Some
                    (Lint.make_finding "ZL102"
                       (Printf.sprintf
                          "declared footprint address %s (shard %d) is never accessed on any \
                           analysed path — the declaration serialises waves for nothing"
                          hex s))
                end)
              c.tx.Tx.footprint)
          cases
      in
      let sorted tbl = List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl []) in
      let accessed_shards = sorted accessed and declared_shards = sorted declared in
      let zl110 =
        [
          Lint.make_finding "ZL110"
            (Printf.sprintf "%d case(s): shards accessed %s, declared %s" (List.length cases)
               (shard_set_to_string accessed_shards)
               (shard_set_to_string declared_shards));
        ]
      in
      let findings =
        List.concat [ zl101; zl102; zl103; zl110 ]
        |> List.stable_sort (fun f1 f2 -> compare f1.Lint.rule f2.Lint.rule)
      in
      Lint.observe_findings findings;
      { kind; cases = List.length cases; findings; accessed_shards; declared_shards })

let analyze_all (cases : case list) =
  let kinds = List.sort_uniq compare (List.map (fun (c : case) -> c.kind) cases) in
  List.map
    (fun kind -> analyze ~kind (List.filter (fun (c : case) -> c.kind = kind) cases))
    kinds

let conflict_signature r = r.kind ^ " " ^ shard_set_to_string r.accessed_shards

let count sev r = List.length (List.filter (fun f -> f.Lint.severity = sev) r.findings)
let errors = count Lint.Error
let warnings = count Lint.Warn
let infos = count Lint.Info

let to_json r =
  let ints l = Json.List (List.map (fun s -> Json.Num (float_of_int s)) l) in
  Json.Obj
    [
      ("kind", Json.Str r.kind);
      ("cases", Json.Num (float_of_int r.cases));
      ("accessed_shards", ints r.accessed_shards);
      ("declared_shards", ints r.declared_shards);
      ( "counts",
        Json.Obj
          [
            ("error", Json.Num (float_of_int (errors r)));
            ("warn", Json.Num (float_of_int (warnings r)));
            ("info", Json.Num (float_of_int (infos r)));
          ] );
      ("findings", Json.List (List.map Lint.finding_to_json r.findings));
    ]

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d case(s), shards accessed %s declared %s -- %d error(s), %d warn(s), %d info(s)\n"
       r.kind r.cases
       (shard_set_to_string r.accessed_shards)
       (shard_set_to_string r.declared_shards)
       (errors r) (warnings r) (infos r));
  List.iter
    (fun f -> Buffer.add_string b (Format.asprintf "  %a\n" Lint.pp_finding f))
    r.findings;
  Buffer.contents b
