module Json = Zebra_obs.Json

let level_of_severity = function
  | Lint.Error -> "error"
  | Lint.Warn -> "warning"
  | Lint.Info -> "note"

let rule_to_json (id, name, severity) =
  Json.Obj
    [
      ("id", Json.Str id);
      ("name", Json.Str name);
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.Str (level_of_severity severity)) ] );
    ]

let result_to_json (location, (f : Lint.finding)) =
  (* Wire/constraint locators, when present, go into the message: the
     subjects are synthesised artifacts, so logical location is all the
     anchoring SARIF can do. *)
  let message =
    match (f.Lint.wire, f.Lint.constraint_index) with
    | Some w, _ -> Printf.sprintf "wire %d: %s" w f.Lint.message
    | None, Some i -> Printf.sprintf "constraint #%d: %s" i f.Lint.message
    | None, None -> f.Lint.message
  in
  Json.Obj
    [
      ("ruleId", Json.Str f.Lint.rule);
      ("level", Json.Str (level_of_severity f.Lint.severity));
      ("message", Json.Obj [ ("text", Json.Str message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "logicalLocations",
                  Json.List [ Json.Obj [ ("name", Json.Str location) ] ] );
              ];
          ] );
    ]

let report results =
  Json.Obj
    [
      ( "$schema",
        Json.Str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str "zebra-lint");
                            ("rules", Json.List (List.map rule_to_json Lint.rules));
                          ] );
                    ] );
                ("results", Json.List (List.map result_to_json results));
              ];
          ] );
    ]

let of_circuit_report (r : Lint.report) =
  List.map (fun f -> ("circuit:" ^ r.Lint.circuit, f)) r.Lint.findings

let of_tx_report (r : Txlint.report) =
  List.map (fun f -> ("tx:" ^ r.Txlint.kind, f)) r.Txlint.findings

let of_codec_report (r : Seclint.report) =
  List.map (fun f -> ("codec:" ^ r.Seclint.codec, f)) r.Seclint.findings
