module Obs = Zebra_obs.Obs
module Json = Zebra_obs.Json
module Secret = Zebra_secret.Secret

let m_runs = Obs.Counter.make "lint.sec.runs"
let m_codecs = Obs.Counter.make "lint.sec.codecs"
let m_scans = Obs.Counter.make "lint.sec.scans"

type sink = Serialization | Store_put | Obs_export | Log_line

let sink_to_string = function
  | Serialization -> "serialization"
  | Store_put -> "store-put"
  | Obs_export -> "obs-export"
  | Log_line -> "log"

type codec_case = {
  codec : string;
  secrets : (string * bytes) list;
  outputs : (sink * string * bytes) list;
}

type report = {
  codec : string;
  secrets : int;
  outputs : int;
  findings : Lint.finding list;
}

let analyze (case : codec_case) =
  Obs.with_span "lint.sec.analyze" (fun () ->
      Obs.Counter.incr m_runs;
      Obs.Counter.incr m_codecs;
      let zl202 =
        List.filter_map
          (fun (label, needle) ->
            if Bytes.length needle >= Secret.min_canary_len then None
            else
              Some
                (Lint.make_finding "ZL202"
                   (Printf.sprintf
                      "canary of secret %s is %d byte(s), below the scannable minimum of %d: \
                       this case cannot detect a leak of it"
                      label (Bytes.length needle) Secret.min_canary_len)))
          case.secrets
      in
      let zl201 =
        List.concat_map
          (fun (label, needle) ->
            List.filter_map
              (fun (sink, out_label, hay) ->
                Obs.Counter.incr m_scans;
                if Secret.leaks ~needle hay then
                  Some
                    (Lint.make_finding "ZL201"
                       (Printf.sprintf
                          "secret %s reaches the %s sink %s: its canary bytes occur in the \
                           output (%d bytes scanned)"
                          label (sink_to_string sink) out_label (Bytes.length hay)))
                else None)
              case.outputs)
          case.secrets
      in
      let findings =
        List.stable_sort
          (fun f1 f2 -> compare f1.Lint.rule f2.Lint.rule)
          (zl201 @ zl202)
      in
      Lint.observe_findings findings;
      {
        codec = case.codec;
        secrets = List.length case.secrets;
        outputs = List.length case.outputs;
        findings;
      })

let count sev r = List.length (List.filter (fun f -> f.Lint.severity = sev) r.findings)
let errors = count Lint.Error
let warnings = count Lint.Warn
let infos = count Lint.Info

let to_json r =
  Json.Obj
    [
      ("codec", Json.Str r.codec);
      ("secrets", Json.Num (float_of_int r.secrets));
      ("outputs", Json.Num (float_of_int r.outputs));
      ( "counts",
        Json.Obj
          [
            ("error", Json.Num (float_of_int (errors r)));
            ("warn", Json.Num (float_of_int (warnings r)));
            ("info", Json.Num (float_of_int (infos r)));
          ] );
      ("findings", Json.List (List.map Lint.finding_to_json r.findings));
    ]

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d secret(s) against %d output(s) -- %d error(s), %d warn(s)\n"
       r.codec r.secrets r.outputs (errors r) (warnings r));
  List.iter
    (fun f -> Buffer.add_string b (Format.asprintf "  %a\n" Lint.pp_finding f))
    r.findings;
  Buffer.contents b
