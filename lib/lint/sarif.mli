(** SARIF 2.1.0 export of lint findings, so CI can annotate them on PRs.

    One run, one [tool.driver] (["zebra-lint"]) carrying every registered
    rule from {!Lint.rules} with its default severity; each finding
    becomes a [result] anchored to a {e logical} location — the circuit,
    tx kind or codec name — since the subjects are synthesised artifacts,
    not files.  Severity maps [Error]→["error"], [Warn]→["warning"],
    [Info]→["note"]. *)

(** [report results] — [results] pairs each finding with its logical
    location name (e.g. ["circuit:cpla/auth"],
    ["tx:zebralancer-task.instruct"], ["codec:snark.keypair"]). *)
val report : (string * Lint.finding) list -> Zebra_obs.Json.t

(** Convenience: the logical-location pairs of the three report shapes. *)
val of_circuit_report : Lint.report -> (string * Lint.finding) list

val of_tx_report : Txlint.report -> (string * Lint.finding) list
val of_codec_report : Seclint.report -> (string * Lint.finding) list
