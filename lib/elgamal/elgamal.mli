(** ElGamal encryption in the multiplicative group of the SNARK field.

    This is the task-encryption scheme whose decryption is proved inside
    the reward circuit: [epk = g^esk], [Enc(m) = (g^k, m * epk^k)], and the
    circuit statement "A_j = Dec(esk, C_j)" becomes the few hundred
    constraints [A_j * c1^esk = c2] with the bits of [esk] as witness
    (see DESIGN.md substitution 4; the paper used RSA-OAEP here, which no
    SNARK can decrypt in-circuit).

    Plaintexts are nonzero field elements; crowdsourcing answers are mapped
    through {!encode_answer}. *)

type secret_key

type public_key = Fp.t

type ciphertext = { c1 : Fp.t; c2 : Fp.t }

(** The fixed group generator (the field's multiplicative generator). *)
val g : Fp.t

(** Exponent bit-length used by keygen and the circuit (253: full-width
    exponents, strictly below the field's bit size so bit decompositions
    stay sound). *)
val exponent_bits : int

val generate : random_bytes:(int -> bytes) -> secret_key * public_key

(** Little-endian bits of the secret exponent — the witness fed to the
    reward circuit. *)
val secret_bits : secret_key -> bool array

(** Canary bytes (minimal big-endian exponent) for the ZL2xx secret-flow
    lint: a decryption key must never reach a serialisation, store put,
    obs export or log sink, and the lint scans those sinks for exactly
    these bytes. *)
val secret_canary : secret_key -> bytes

(** [encrypt ~random_bytes epk m] for [m <> 0].
    @raise Invalid_argument on zero. *)
val encrypt : random_bytes:(int -> bytes) -> public_key -> Fp.t -> ciphertext

val decrypt : secret_key -> ciphertext -> Fp.t

(** [pair sk pk] checks [pk = g^sk] (the circuit's [pair(esk, epk)]). *)
val pair : secret_key -> public_key -> bool

(** Answers are small non-negative integers; [encode_answer a = a + 1]
    keeps plaintexts nonzero.  [decode_answer] inverts it, returning
    [None] for values outside [0, max]. *)
val encode_answer : int -> Fp.t

val decode_answer : max:int -> Fp.t -> int option

(** The sentinel ciphertext [(0, 0)] marks a missing answer slot (never a
    real ciphertext since [c1 = g^k <> 0]). *)
val missing : ciphertext

val is_missing : ciphertext -> bool

val ciphertext_to_bytes : ciphertext -> bytes
val ciphertext_of_bytes : bytes -> ciphertext
val equal_ciphertext : ciphertext -> ciphertext -> bool
