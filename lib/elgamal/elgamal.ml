module Codec = Zebra_codec.Codec

type secret_key = Nat.t

type public_key = Fp.t

type ciphertext = { c1 : Fp.t; c2 : Fp.t }

let g = Fp.generator
let exponent_bits = 253

let random_exponent ~random_bytes =
  let x = Prime.random_bits ~random_bytes exponent_bits in
  if Nat.is_zero x then Nat.one else x

let generate ~random_bytes =
  let sk = random_exponent ~random_bytes in
  (sk, Fp.pow g sk)

let secret_bits sk = Array.init exponent_bits (Nat.testbit sk)
let secret_canary sk = Nat.to_bytes_be sk

let encrypt ~random_bytes epk m =
  if Fp.is_zero m then invalid_arg "Elgamal.encrypt: zero plaintext";
  let k = random_exponent ~random_bytes in
  { c1 = Fp.pow g k; c2 = Fp.mul m (Fp.pow epk k) }

let decrypt sk ct = Fp.mul ct.c2 (Fp.inv (Fp.pow ct.c1 sk))

let pair sk pk = Fp.equal pk (Fp.pow g sk)

let encode_answer a =
  if a < 0 then invalid_arg "Elgamal.encode_answer: negative";
  Fp.of_int (a + 1)

let decode_answer ~max m =
  let rec find a = if a > max then None else if Fp.equal m (encode_answer a) then Some a else find (a + 1) in
  find 0

let missing = { c1 = Fp.zero; c2 = Fp.zero }
let is_missing ct = Fp.is_zero ct.c1

let ciphertext_to_bytes ct =
  Codec.encode
    (fun w ct ->
      Codec.bytes w (Fp.to_bytes_be ct.c1);
      Codec.bytes w (Fp.to_bytes_be ct.c2))
    ct

let ciphertext_of_bytes b =
  Codec.decode
    (fun r ->
      let c1 = Fp.of_bytes_be_exn (Codec.read_bytes r) in
      let c2 = Fp.of_bytes_be_exn (Codec.read_bytes r) in
      { c1; c2 })
    b

let equal_ciphertext a b = Fp.equal a.c1 b.c1 && Fp.equal a.c2 b.c2
