let limb_bits = Nat.limb_bits
let base = 1 lsl limb_bits
let mask = base - 1

type ctx = {
  m : Nat.t;
  m_limbs : int array; (* fixed width n *)
  n : int; (* limb count *)
  m0' : int; (* -m^{-1} mod 2^31 *)
  r2 : int array; (* (2^31)^(2n) mod m, Montgomery form of R *)
  one_m : int array; (* Montgomery form of 1 *)
}

type mont = int array (* fixed width ctx.n, value < m *)

(* Inverse of odd [v] modulo 2^31 by Newton iteration. *)
let inv_limb v =
  let x = ref v in
  for _ = 1 to 5 do
    x := (!x * (2 - (v * !x))) land mask
  done;
  !x

let fixed_width n a =
  let la = Array.length a in
  if la > n then invalid_arg "Modular: operand wider than modulus";
  let r = Array.make n 0 in
  Array.blit a 0 r 0 la;
  r

let create m =
  if Nat.is_even m then invalid_arg "Modular.create: even modulus";
  if Nat.compare m Nat.two <= 0 then invalid_arg "Modular.create: modulus < 3";
  let ml = Nat.limbs m in
  let n = Array.length ml in
  let m0' = (base - inv_limb ml.(0)) land mask in
  let r2_nat = Nat.rem (Nat.shift_left Nat.one (2 * n * limb_bits)) m in
  let r1_nat = Nat.rem (Nat.shift_left Nat.one (n * limb_bits)) m in
  {
    m;
    m_limbs = fixed_width n ml;
    n;
    m0';
    r2 = fixed_width n (Nat.limbs r2_nat);
    one_m = fixed_width n (Nat.limbs r1_nat);
  }

let modulus ctx = ctx.m
let num_limbs ctx = ctx.n

(* Compare little-endian limb regions, most-significant limb first.
   Top-level recursion, not a local [let rec]: a local closure capturing
   the array operands would be a per-call allocation in the innermost
   prover loop (the non-flambda backend does not lift it). *)
let rec cmp_off_from a ao b bo i =
  if i < 0 then 0
  else begin
    let x = a.(ao + i) and y = b.(bo + i) in
    if x < y then -1 else if x > y then 1 else cmp_off_from a ao b bo (i - 1)
  end

(* Compare fixed-width little-endian arrays. *)
let cmp_fixed a b n = cmp_off_from a 0 b 0 (n - 1)

(* r <- a - m (in place allowed when r == a); assumes a >= m. *)
let sub_m ctx a r =
  let borrow = ref 0 in
  for i = 0 to ctx.n - 1 do
    let d = a.(i) - ctx.m_limbs.(i) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done

(* CIOS Montgomery multiplication: returns a*b*R^{-1} mod m.  The two limbs
   that overflow the n-wide accumulator live in scalar refs so [t] itself
   (allocated once, at exactly the result width) is returned — this is the
   innermost loop of the whole prover, and the obvious (n+2)-wide temp plus
   [Array.sub] costs a second allocation per field multiplication. *)
let mont_mul ctx a b =
  let n = ctx.n in
  let t = Array.make n 0 in
  let t_n = ref 0 in
  let t_n1 = ref 0 in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    let c = ref 0 in
    for j = 0 to n - 1 do
      let acc = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- acc land mask;
      c := acc lsr limb_bits
    done;
    let acc = !t_n + !c in
    t_n := acc land mask;
    t_n1 := !t_n1 + (acc lsr limb_bits);
    let mi = (t.(0) * ctx.m0') land mask in
    let c = ref ((t.(0) + (mi * ctx.m_limbs.(0))) lsr limb_bits) in
    for j = 1 to n - 1 do
      let acc = t.(j) + (mi * ctx.m_limbs.(j)) + !c in
      t.(j - 1) <- acc land mask;
      c := acc lsr limb_bits
    done;
    let acc = !t_n + !c in
    t.(n - 1) <- acc land mask;
    t_n := !t_n1 + (acc lsr limb_bits);
    t_n1 := 0
  done;
  if !t_n <> 0 || cmp_fixed t ctx.m_limbs n >= 0 then sub_m ctx t t;
  t

let mont_sqr ctx a = mont_mul ctx a a

let mont_add ctx a b =
  let n = ctx.n in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.(i) + b.(i) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  if !carry <> 0 || cmp_fixed r ctx.m_limbs n >= 0 then sub_m ctx r r;
  r

let mont_sub ctx a b =
  let n = ctx.n in
  let r = Array.make n 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let d = a.(i) - b.(i) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then begin
    (* add modulus back *)
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = r.(i) + ctx.m_limbs.(i) + !carry in
      r.(i) <- s land mask;
      carry := s lsr limb_bits
    done
  end;
  r

let mont_zero ctx = Array.make ctx.n 0
let mont_one ctx = Array.copy ctx.one_m

let mont_neg ctx a =
  if Array.for_all (fun x -> x = 0) a then Array.copy a
  else begin
    let r = Array.make ctx.n 0 in
    let borrow = ref 0 in
    for i = 0 to ctx.n - 1 do
      let d = ctx.m_limbs.(i) - a.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    r
  end

let mont_equal a b = cmp_fixed a b (Array.length a) = 0

(* ------------------------------------------------------------------ *)
(* Offset kernels over raw limb regions.

   Each kernel operates on an n-limb little-endian region of a flat
   [int array] starting at the given offset; regions must hold values
   < m (every kernel re-establishes that invariant).  These back both
   the in-place [mont_*_into] variants below (offset 0) and the flat
   element vectors of {!Zebra_field.Fp.Vec}, so the prover hot path
   can run without allocating a limb array per operation.

   Aliasing rules (documented in the .mli):
   - [add_off]/[sub_off]/[neg_off] read index i before writing index i,
     so the destination region may coincide with either source region
     exactly (same array, same offset).  Partially-overlapping regions
     are invalid.
   - [mul_off] uses the destination region as the CIOS accumulator, so
     it must be disjoint from both source regions ([Invalid_argument]
     on a detected overlap).  The two source regions may coincide
     (squaring). *)

let cmp_off a ao b bo n = cmp_off_from a ao b bo (n - 1)

(* r[ro..] <- r[ro..] - m; assumes the region holds a value >= m. *)
let sub_m_off ctx r ro =
  let borrow = ref 0 in
  for i = 0 to ctx.n - 1 do
    let d = r.(ro + i) - ctx.m_limbs.(i) - !borrow in
    if d < 0 then begin
      r.(ro + i) <- d + base;
      borrow := 1
    end
    else begin
      r.(ro + i) <- d;
      borrow := 0
    end
  done

let add_off ctx r ro a ao b bo =
  let n = ctx.n in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.(ao + i) + b.(bo + i) + !carry in
    r.(ro + i) <- s land mask;
    carry := s lsr limb_bits
  done;
  if !carry <> 0 || cmp_off r ro ctx.m_limbs 0 n >= 0 then sub_m_off ctx r ro

let sub_off ctx r ro a ao b bo =
  let n = ctx.n in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let d = a.(ao + i) - b.(bo + i) - !borrow in
    if d < 0 then begin
      r.(ro + i) <- d + base;
      borrow := 1
    end
    else begin
      r.(ro + i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then begin
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = r.(ro + i) + ctx.m_limbs.(i) + !carry in
      r.(ro + i) <- s land mask;
      carry := s lsr limb_bits
    done
  end

let rec is_zero_off_from a ao n i = i >= n || (a.(ao + i) = 0 && is_zero_off_from a ao n (i + 1))
let is_zero_off ctx a ao = is_zero_off_from a ao ctx.n 0

let neg_off ctx r ro a ao =
  if is_zero_off ctx a ao then Array.fill r ro ctx.n 0
  else begin
    let borrow = ref 0 in
    for i = 0 to ctx.n - 1 do
      let d = ctx.m_limbs.(i) - a.(ao + i) - !borrow in
      if d < 0 then begin
        r.(ro + i) <- d + base;
        borrow := 1
      end
      else begin
        r.(ro + i) <- d;
        borrow := 0
      end
    done
  end

let overlaps r ro a ao n = r == a && abs (ro - ao) < n

(* CIOS with the destination region as accumulator; see [mont_mul] for
   the scalar-overflow-limb trick.  The destination must be disjoint
   from both sources: the accumulator is written at index j-1 while
   source limbs at indices >= j are still pending reads. *)
let mul_off ctx r ro a ao b bo =
  let n = ctx.n in
  if overlaps r ro a ao n || overlaps r ro b bo n then
    invalid_arg "Modular.mul_off: destination overlaps a source";
  Array.fill r ro n 0;
  let t_n = ref 0 in
  let t_n1 = ref 0 in
  for i = 0 to n - 1 do
    let ai = a.(ao + i) in
    let c = ref 0 in
    for j = 0 to n - 1 do
      let acc = r.(ro + j) + (ai * b.(bo + j)) + !c in
      r.(ro + j) <- acc land mask;
      c := acc lsr limb_bits
    done;
    let acc = !t_n + !c in
    t_n := acc land mask;
    t_n1 := !t_n1 + (acc lsr limb_bits);
    let mi = (r.(ro) * ctx.m0') land mask in
    let c = ref ((r.(ro) + (mi * ctx.m_limbs.(0))) lsr limb_bits) in
    for j = 1 to n - 1 do
      let acc = r.(ro + j) + (mi * ctx.m_limbs.(j)) + !c in
      r.(ro + j - 1) <- acc land mask;
      c := acc lsr limb_bits
    done;
    let acc = !t_n + !c in
    r.(ro + n - 1) <- acc land mask;
    t_n := !t_n1 + (acc lsr limb_bits);
    t_n1 := 0
  done;
  if !t_n <> 0 || cmp_off r ro ctx.m_limbs 0 n >= 0 then sub_m_off ctx r ro

(* ------------------------------------------------------------------ *)
(* In-place variants on whole [mont] values (offset-0 specialisation).
   Only safe on buffers the caller owns — never mutate a [mont] that
   other code may hold a reference to (shared constants like
   [mont_one], deduplicated witness values, ...). *)

let mont_buffer ctx = Array.make ctx.n 0
let mont_copy (a : mont) : mont = Array.copy a
let mont_set ~dst (a : mont) = Array.blit a 0 dst 0 (Array.length dst)
let mont_set_zero (dst : mont) = Array.fill dst 0 (Array.length dst) 0
let mont_set_one ctx ~dst = Array.blit ctx.one_m 0 dst 0 ctx.n
let mont_add_into ctx ~dst a b = add_off ctx dst 0 a 0 b 0
let mont_sub_into ctx ~dst a b = sub_off ctx dst 0 a 0 b 0
let mont_neg_into ctx ~dst a = neg_off ctx dst 0 a 0
let mont_mul_into ctx ~dst a b = mul_off ctx dst 0 a 0 b 0
let mont_sqr_into ctx ~dst a = mul_off ctx dst 0 a 0 a 0
let mont_of_region ctx a ao : mont = Array.sub a ao ctx.n

let to_mont ctx x =
  let x = if Nat.compare x ctx.m >= 0 then Nat.rem x ctx.m else x in
  mont_mul ctx (fixed_width ctx.n (Nat.limbs x)) ctx.r2

let of_mont ctx a = Nat.of_limbs (mont_mul ctx a (fixed_width ctx.n [| 1 |]))

(* 4-bit sliding-window exponentiation.  An 8-entry table of odd powers
   b^1, b^3, ..., b^15 turns runs of exponent bits into one table
   multiplication each, cutting the expected multiplication count from
   ~nb/2 (square-and-multiply) to ~nb/5 for the same square count.
   Field arithmetic is exact and the representation canonical, so the
   result limbs are identical to the binary method's. *)
let mont_pow ctx b e =
  let nb = Nat.num_bits e in
  if nb = 0 then mont_one ctx
  else if nb <= 4 then begin
    let acc = ref (Array.copy b) in
    for i = nb - 2 downto 0 do
      acc := mont_sqr ctx !acc;
      if Nat.testbit e i then acc := mont_mul ctx !acc b
    done;
    !acc
  end
  else begin
    let b2 = mont_sqr ctx b in
    let tbl = Array.make 8 b in
    for k = 1 to 7 do
      tbl.(k) <- mont_mul ctx tbl.(k - 1) b2
    done;
    let acc = ref None in
    let i = ref (nb - 1) in
    while !i >= 0 do
      if not (Nat.testbit e !i) then begin
        (match !acc with Some a -> acc := Some (mont_sqr ctx a) | None -> ());
        decr i
      end
      else begin
        (* widest window [j, i] of <= 4 bits whose low bit is set *)
        let j = ref (max 0 (!i - 3)) in
        while not (Nat.testbit e !j) do
          incr j
        done;
        let w = ref 0 in
        for k = !i downto !j do
          w := (!w lsl 1) lor (if Nat.testbit e k then 1 else 0)
        done;
        let entry = tbl.((!w - 1) / 2) in
        (match !acc with
        | None -> acc := Some (Array.copy entry)
        | Some a ->
            let a = ref a in
            for _ = 1 to !i - !j + 1 do
              a := mont_sqr ctx !a
            done;
            acc := Some (mont_mul ctx !a entry));
        i := !j - 1
      end
    done;
    match !acc with Some a -> a | None -> assert false
  end

(* Binary inverse for odd modulus (HAC 14.61 specialisation). *)
let inv_nat_odd a m =
  let a = Nat.rem a m in
  if Nat.is_zero a then raise Division_by_zero;
  let half x =
    (* x/2 mod m for odd m *)
    if Nat.is_even x then Nat.shift_right x 1
    else Nat.shift_right (Nat.add x m) 1
  in
  let u = ref a and v = ref m in
  let x1 = ref Nat.one and x2 = ref Nat.zero in
  let sub_mod a b = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b in
  while (not (Nat.equal !u Nat.one)) && not (Nat.equal !v Nat.one) do
    while Nat.is_even !u && not (Nat.is_zero !u) do
      u := Nat.shift_right !u 1;
      x1 := half !x1
    done;
    while Nat.is_even !v && not (Nat.is_zero !v) do
      v := Nat.shift_right !v 1;
      x2 := half !x2
    done;
    if Nat.is_zero !u || Nat.is_zero !v then raise Division_by_zero;
    if Nat.compare !u !v >= 0 then begin
      u := Nat.sub !u !v;
      x1 := sub_mod !x1 !x2
    end
    else begin
      v := Nat.sub !v !u;
      x2 := sub_mod !x2 !x1
    end
  done;
  if Nat.equal !u Nat.one then !x1 else !x2

(* Signed extended Euclid for arbitrary modulus (RSA keygen needs even
   moduli).  Signed values are (negative flag, magnitude). *)
let inverse a m =
  if Nat.compare m Nat.two < 0 then invalid_arg "Modular.inverse: modulus < 2";
  let s_sub (na, a) (nb, b) =
    (* a - b with signs *)
    match (na, nb) with
    | false, true -> (false, Nat.add a b)
    | true, false -> (true, Nat.add a b)
    | false, false -> if Nat.compare a b >= 0 then (false, Nat.sub a b) else (true, Nat.sub b a)
    | true, true -> if Nat.compare b a >= 0 then (false, Nat.sub b a) else (true, Nat.sub a b)
  in
  let s_mul_nat (na, a) q = (na, Nat.mul a q) in
  let a = Nat.rem a m in
  if Nat.is_zero a then raise Division_by_zero;
  let r0 = ref m and r1 = ref a in
  let t0 = ref (false, Nat.zero) and t1 = ref (false, Nat.one) in
  while not (Nat.is_zero !r1) do
    let q, r = Nat.divmod !r0 !r1 in
    r0 := !r1;
    r1 := r;
    let t = s_sub !t0 (s_mul_nat !t1 q) in
    t0 := !t1;
    t1 := t
  done;
  if not (Nat.equal !r0 Nat.one) then raise Division_by_zero;
  let neg, mag = !t0 in
  let mag = Nat.rem mag m in
  if neg && not (Nat.is_zero mag) then Nat.sub m mag else mag

let mont_inv ctx a =
  let x = of_mont ctx a in
  to_mont ctx (inv_nat_odd x ctx.m)

let add ctx a b = of_mont ctx (mont_add ctx (to_mont ctx a) (to_mont ctx b))
let sub ctx a b = of_mont ctx (mont_sub ctx (to_mont ctx a) (to_mont ctx b))
let mul ctx a b = of_mont ctx (mont_mul ctx (to_mont ctx a) (to_mont ctx b))
let pow ctx b e = of_mont ctx (mont_pow ctx (to_mont ctx b) e)
let inv ctx a = inv_nat_odd a ctx.m
