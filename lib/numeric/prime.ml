let small_primes =
  (* primes below 1000, for cheap trial division before Miller-Rabin *)
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 31 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = 999 downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let random_bits ~random_bytes k =
  if k <= 0 then Nat.zero
  else begin
    let nbytes = (k + 7) / 8 in
    let b = random_bytes nbytes in
    let extra = (nbytes * 8) - k in
    if extra > 0 then begin
      let top = Char.code (Bytes.get b 0) land (0xff lsr extra) in
      Bytes.set b 0 (Char.chr top)
    end;
    Nat.of_bytes_be b
  end

let random_below ~random_bytes bound =
  if Nat.is_zero bound then invalid_arg "Prime.random_below: zero bound";
  let k = Nat.num_bits bound in
  let rec go () =
    let x = random_bits ~random_bytes k in
    if Nat.compare x bound < 0 then x else go ()
  in
  go ()

let miller_rabin ~rounds ~random_bytes n =
  (* n odd, > small primes *)
  let n_minus_1 = Nat.sub n Nat.one in
  let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n_minus_1 0 in
  let ctx = Modular.create n in
  let one = Modular.mont_one ctx in
  let minus_one = Modular.mont_neg ctx one in
  let witness a =
    (* true iff a witnesses compositeness *)
    let x = ref (Modular.mont_pow ctx (Modular.to_mont ctx a) d) in
    if Modular.mont_equal !x one || Modular.mont_equal !x minus_one then false
    else begin
      let rec go r =
        if r >= s - 1 then true
        else begin
          x := Modular.mont_sqr ctx !x;
          if Modular.mont_equal !x minus_one then false else go (r + 1)
        end
      in
      go 0
    end
  in
  let n_minus_3 = Nat.sub n (Nat.of_int 3) in
  (* All witness candidates are drawn upfront on the calling domain, so the
     RNG stream consumed is the same at every ZEBRA_DOMAINS setting.  The
     shared stop flag inside [exists] preserves the sequential early-exit:
     once some round finds a witness, remaining rounds are abandoned. *)
  let candidates =
    Array.init rounds (fun _ -> Nat.add (random_below ~random_bytes n_minus_3) Nat.two)
  in
  not (Zebra_parallel.Parallel.exists ~min_chunk:2 rounds (fun i -> witness candidates.(i)))

let is_prime ?(rounds = 32) ~random_bytes n =
  match Nat.to_int_opt n with
  | Some v when v < 1000 * 1000 ->
    if v < 2 then false
    else begin
      let rec go i =
        if i >= Array.length small_primes then true
        else begin
          let p = small_primes.(i) in
          if p * p > v then true else if v mod p = 0 then v = p else go (i + 1)
        end
      in
      go 0
    end
  | _ ->
    if Nat.is_even n then false
    else begin
      let divisible =
        Array.exists
          (fun p -> p > 2 && snd (Nat.divmod_small n p) = 0)
          small_primes
      in
      (not divisible) && miller_rabin ~rounds ~random_bytes n
    end

let generate ~bits ~random_bytes =
  if bits < 8 then invalid_arg "Prime.generate: need at least 8 bits";
  let rec go () =
    let c = random_bits ~random_bytes (bits - 2) in
    (* force top bit and oddness *)
    let c = Nat.add (Nat.shift_left Nat.one (bits - 1)) c in
    let c = if Nat.is_even c then Nat.add c Nat.one else c in
    if is_prime ~random_bytes c then c else go ()
  in
  go ()
