(** Modular arithmetic over odd moduli, built on {!Nat}.

    A {!ctx} caches the Montgomery constants for one modulus so repeated
    multiplications and exponentiations avoid long division.  This engine
    backs both the RSA layer and the SNARK prime field ({!Zebra_field.Fp}). *)

type ctx

(** [create m] precomputes Montgomery constants for modulus [m].
    @raise Invalid_argument if [m] is even or [< 3]. *)
val create : Nat.t -> ctx

val modulus : ctx -> Nat.t

(** Number of limbs in the Montgomery representation. *)
val num_limbs : ctx -> int

(** Montgomery-form values: [ctx.n] little-endian 31-bit limbs, always
    fully reduced ([< m]), so structural equality is value equality.
    The representation is exposed read-only ([private]) so
    {!Zebra_field.Fp} can build flat element vectors on top of the
    offset kernels below; treat values as immutable unless they are
    buffers you created yourself (see the [mont_*_into] family). *)
type mont = private int array

val to_mont : ctx -> Nat.t -> mont
val of_mont : ctx -> mont -> Nat.t

val mont_zero : ctx -> mont
val mont_one : ctx -> mont

val mont_equal : mont -> mont -> bool

val mont_add : ctx -> mont -> mont -> mont
val mont_sub : ctx -> mont -> mont -> mont
val mont_neg : ctx -> mont -> mont
val mont_mul : ctx -> mont -> mont -> mont
val mont_sqr : ctx -> mont -> mont

(** [mont_pow ctx b e] is [b^e] in Montgomery form ([e] a plain {!Nat.t}).
    Uses a 4-bit sliding window over an 8-entry odd-power table for
    exponents wider than 4 bits (~nb/5 multiplications instead of the
    binary method's ~nb/2); result limbs are identical to
    square-and-multiply because field arithmetic is exact. *)
val mont_pow : ctx -> mont -> Nat.t -> mont

(** {1 In-place kernels}

    Destructive variants writing into caller-provided limb buffers, so
    hot loops run without a heap allocation per field operation.  Only
    ever mutate buffers you own: a [mont] obtained from another module
    may be shared (e.g. {!Zebra_field.Fp.zero} is one global), and
    mutating it corrupts every holder.

    Aliasing rules: [mont_add_into], [mont_sub_into] and
    [mont_neg_into] are elementwise (index [i] is read before it is
    written), so [dst] may be {e the same array} as either operand.
    [mont_mul_into] and [mont_sqr_into] use [dst] as the CIOS
    accumulator and raise [Invalid_argument] if it aliases a source
    (the two sources may coincide). *)

(** A fresh caller-owned buffer, initialised to zero (a valid value). *)
val mont_buffer : ctx -> mont

val mont_copy : mont -> mont

(** [mont_set ~dst a] copies the value of [a] into [dst]. *)
val mont_set : dst:mont -> mont -> unit

val mont_set_zero : mont -> unit
val mont_set_one : ctx -> dst:mont -> unit
val mont_add_into : ctx -> dst:mont -> mont -> mont -> unit
val mont_sub_into : ctx -> dst:mont -> mont -> mont -> unit
val mont_neg_into : ctx -> dst:mont -> mont -> unit
val mont_mul_into : ctx -> dst:mont -> mont -> mont -> unit
val mont_sqr_into : ctx -> dst:mont -> mont -> unit

(** {1 Offset kernels}

    The same kernels over n-limb little-endian regions of flat arrays
    ([region i] of a vector lives at offset [i * num_limbs ctx]); these
    back {!Zebra_field.Fp.Vec}.  [r ro a ao b bo] computes
    [r\[ro..\] <- a\[ao..\] op b\[bo..\]].  Aliasing follows the rules
    above, region-wise: add/sub/neg destinations may {e coincide
    exactly} with a source region (partial overlap is invalid);
    [mul_off] requires a destination disjoint from both sources and
    raises [Invalid_argument] on a detected overlap. *)

val add_off : ctx -> int array -> int -> int array -> int -> int array -> int -> unit
val sub_off : ctx -> int array -> int -> int array -> int -> int array -> int -> unit
val neg_off : ctx -> int array -> int -> int array -> int -> unit
val mul_off : ctx -> int array -> int -> int array -> int -> int array -> int -> unit
val is_zero_off : ctx -> int array -> int -> bool
val cmp_off : int array -> int -> int array -> int -> int -> int

(** [mont_of_region ctx a ao] copies the region at [ao] out into a
    fresh [mont] (the region must hold a reduced value, which every
    kernel above guarantees). *)
val mont_of_region : ctx -> int array -> int -> mont

(** [mont_inv ctx a] for [a] invertible. @raise Division_by_zero otherwise. *)
val mont_inv : ctx -> mont -> mont

(** Convenience wrappers on plain naturals (inputs reduced mod m first). *)

val add : ctx -> Nat.t -> Nat.t -> Nat.t

val sub : ctx -> Nat.t -> Nat.t -> Nat.t
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** [inv ctx a]: modular inverse via extended binary GCD.
    @raise Division_by_zero if [gcd a m <> 1]. *)
val inv : ctx -> Nat.t -> Nat.t

(** [inverse a m] without a context (used by RSA keygen for even [m] too,
    as long as [a] is odd or [gcd a m = 1]). *)
val inverse : Nat.t -> Nat.t -> Nat.t
