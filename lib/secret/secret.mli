(** An opaque box for secret-carrying values (SNARK trapdoors, ElGamal
    decryption keys, wallet signing keys, worker master identities).

    The box has no [Repr]/[Codec] instance and its printer redacts, so a
    secret can only leave the box through an explicit {!use} at the call
    site — making every read of a secret grep-able, and making "this value
    was serialised by accident" a type error rather than a code-review
    catch (the PR 5 trapdoor-persistence leak class).

    The static side of the guarantee is checked by [Zebra_lint]'s ZL2xx
    secret-flow rules: every holder of a ['a t] exposes a [*_canary]
    accessor (a deterministic byte projection of the boxed value) and the
    lint round-trips every registered codec, store put, obs export and log
    sink against those canary bytes — if the canary appears in any sink
    output, the secret escaped its box. *)

type 'a t

(** [make ~label v] boxes [v].  The label names the secret in lint
    findings and in the redacted printer (e.g. ["snark.trapdoor.t_s"]). *)
val make : label:string -> 'a -> 'a t

val label : 'a t -> string

(** [use s f] applies [f] to the boxed value.  The only way out of the
    box; keep the scope of [f] minimal. *)
val use : 'a t -> ('a -> 'b) -> 'b

(** [map ~label f s] re-boxes [f] of the secret (e.g. deriving a signing
    key from a master secret — the derivation stays inside the box). *)
val map : label:string -> ('a -> 'b) -> 'a t -> 'b t

(** Prints [<secret:label>]; never the value. *)
val pp : Format.formatter -> 'a t -> unit

(** {2 Canary checking} — used by the ZL2xx lint pass. *)

(** Canaries shorter than this are too weak to scan for (false-negative
    risk): the lint reports ZL202. *)
val min_canary_len : int

(** [leaks ~needle haystack] — does the canary (or its byte-reversal,
    catching endianness-flipped encodings) occur in [haystack]?
    A needle shorter than 2 bytes never matches (all-zero canaries of
    placeholder secrets would otherwise hit constantly). *)
val leaks : needle:bytes -> bytes -> bool
