type 'a t = { label : string; value : 'a }

let make ~label value = { label; value }
let label s = s.label
let use s f = f s.value
let map ~label f s = { label; value = f s.value }
let pp fmt s = Format.fprintf fmt "<secret:%s>" s.label

let min_canary_len = 8

let contains ~needle hay =
  let n = Bytes.length needle and h = Bytes.length hay in
  if n = 0 || n > h then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= h - n do
      let j = ref 0 in
      while !j < n && Bytes.get hay (!i + !j) = Bytes.get needle !j do
        incr j
      done;
      if !j = n then found := true;
      incr i
    done;
    !found
  end

let rev b =
  let n = Bytes.length b in
  Bytes.init n (fun i -> Bytes.get b (n - 1 - i))

let leaks ~needle hay =
  Bytes.length needle >= 2 && (contains ~needle hay || contains ~needle:(rev needle) hay)
