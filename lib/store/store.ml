module Sha256 = Zebra_hashing.Sha256
module Codec = Zebra_codec.Codec

type hash = bytes

type fault_action =
  | Pass
  | Lose
  | Corrupt

type t = {
  chunk_size : int;
  objects : (string, bytes) Hashtbl.t; (* hex hash -> encoded object *)
  mutable fault : (hash -> fault_action) option;
}

(* Object encoding: tag 0 = leaf carrying data, tag 1 = node carrying the
   ordered child hashes. *)
let encode_leaf data =
  Codec.encode
    (fun w () ->
      Codec.u8 w 0;
      Codec.bytes w data)
    ()

let encode_node children =
  Codec.encode
    (fun w () ->
      Codec.u8 w 1;
      Codec.list w Codec.bytes children)
    ()

type obj =
  | Leaf of bytes
  | Node of bytes list

let decode_obj b =
  Codec.decode
    (fun r ->
      match Codec.read_u8 r with
      | 0 -> Leaf (Codec.read_bytes r)
      | 1 -> Node (Codec.read_list r Codec.read_bytes)
      | _ -> raise (Codec.Decode_error "store: bad object tag"))
    b

let create ?(chunk_size = 4096) () =
  if chunk_size < 1 then invalid_arg "Store.create: chunk_size must be positive";
  { chunk_size; objects = Hashtbl.create 64; fault = None }

let set_fault t f = t.fault <- f

let key h = Sha256.to_hex h

let put_object t encoded =
  let h = Sha256.digest encoded in
  Hashtbl.replace t.objects (key h) encoded;
  h

let put t blob =
  let len = Bytes.length blob in
  if len <= t.chunk_size then put_object t (encode_leaf blob)
  else begin
    let children = ref [] in
    let pos = ref 0 in
    while !pos < len do
      let take = min t.chunk_size (len - !pos) in
      let chunk = Bytes.sub blob !pos take in
      children := put_object t (encode_leaf chunk) :: !children;
      pos := !pos + take
    done;
    put_object t (encode_node (List.rev !children))
  end

let flip_middle_byte t h =
  match Hashtbl.find_opt t.objects (key h) with
  | None -> ()
  | Some encoded ->
    let b = Bytes.copy encoded in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Hashtbl.replace t.objects (key h) b

(* Faults fire per object fetch, before the integrity check, so a corrupted
   object is always *detected* (never served) and a lost one stays lost
   until the same content is re-put. *)
let apply_fault t h =
  match t.fault with
  | None -> ()
  | Some f -> (
    match f h with
    | Pass -> ()
    | Lose -> Hashtbl.remove t.objects (key h)
    | Corrupt -> flip_middle_byte t h)

let get_object t h =
  apply_fault t h;
  match Hashtbl.find_opt t.objects (key h) with
  | None -> None
  | Some encoded ->
    (* integrity: the address must match the content *)
    if Bytes.equal (Sha256.digest encoded) h then Some encoded else None

let get t h =
  let rec fetch h =
    match get_object t h with
    | None -> None
    | Some encoded -> (
      match decode_obj encoded with
      | Leaf data -> Some data
      | Node children ->
        let parts = List.map fetch children in
        if List.exists Option.is_none parts then None
        else Some (Bytes.concat Bytes.empty (List.map Option.get parts))
      | exception Codec.Decode_error _ -> None)
  in
  fetch h

let has t h = Hashtbl.mem t.objects (key h)

let num_objects t = Hashtbl.length t.objects

let stored_bytes t = Hashtbl.fold (fun _ v acc -> acc + Bytes.length v) t.objects 0

let corrupt t h =
  if not (Hashtbl.mem t.objects (key h)) then raise Not_found;
  flip_middle_byte t h

let pp_hash fmt h = Format.pp_print_string fmt (Sha256.to_hex h)
