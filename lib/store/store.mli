(** Content-addressed off-chain storage (an IPFS/Swarm stand-in).

    The paper notes (footnote 13, open question 2) that data-intensive
    tasks — image labelling, voice captioning — should keep the payload
    off-chain and anchor only a digest in the task contract.  This module
    provides the minimal substrate: an in-memory content-addressed store
    with chunking and Merkle-DAG manifests, so a task's [data_digest] is
    the root hash of its payload and any participant can fetch and verify
    the bytes against the on-chain anchor.

    Objects are immutable; every [get] re-verifies hashes, so a corrupted
    or substituted object is detected rather than returned. *)

type t

type hash = bytes (* 32-byte SHA-256 *)

(** [create ?chunk_size ()] — default chunks of 4 KiB. *)
val create : ?chunk_size:int -> unit -> t

(** [put t blob] stores the blob (chunked if necessary) and returns its
    root hash. Idempotent. *)
val put : t -> bytes -> hash

(** [get t h] reassembles and verifies the blob; [None] if any part is
    missing or fails verification. *)
val get : t -> hash -> bytes option

val has : t -> hash -> bool

(** Number of stored objects (chunks + manifests). *)
val num_objects : t -> int

(** Total stored bytes (including manifest overhead). *)
val stored_bytes : t -> int

(** Failure injection for tests: flip one byte of the stored object with
    this hash.  @raise Not_found if absent. *)
val corrupt : t -> hash -> unit

(** {1 Fault injection}

    What a fault decision does to the object about to be fetched.  Because
    every [get] re-verifies content hashes, neither action can ever make
    [get] return wrong bytes — only [None]. *)
type fault_action =
  | Pass  (** healthy fetch *)
  | Lose  (** the object is deleted (chunk loss); a re-[put] of the same
              content heals it *)
  | Corrupt  (** one byte of the stored object flips; detected by the
                 integrity check, healed by re-[put] *)

(** [set_fault t f] installs (or, with [None], removes) a per-fetch fault
    decision, consulted once per object (manifest or chunk) that a [get] /
    [has]-path fetch touches.  [Zebra_faults] supplies deterministic
    seed-keyed deciders. *)
val set_fault : t -> (hash -> fault_action) option -> unit

val pp_hash : Format.formatter -> hash -> unit
