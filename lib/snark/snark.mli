(** A Pinocchio-style zk-SNARK over {!Zebra_r1cs.Cs} constraint systems.

    Pipeline: R1CS -> QAP (Lagrange interpolation over an FFT domain) ->
    constant-size proof of 8 field elements.  The prover evaluates the
    witness polynomials A, B, C at a secret point s fixed by the trusted
    setup, plus knowledge-shifted copies (alpha_A A, alpha_B B, alpha_C C),
    a linear-consistency term beta (A + B + C), and the quotient
    H = (A B - C) / Z evaluated via coset FFTs.  Zero-knowledge comes from
    blinding each polynomial by a random multiple of the vanishing
    polynomial Z.

    {b Substitution note} (see DESIGN.md): the paper uses the pairing-based
    scheme of BCGTV13 via libsnark.  Without a pairing-friendly curve
    implementation available, the homomorphic hiding of the CRS is modelled
    rather than enforced: the proving key stores the QAP evaluations in the
    clear and the verification key keeps the setup secrets, making this a
    designated-verifier analogue.  Proof size, completeness, verifier cost
    (O(|public inputs|)) and rejection of bad witnesses are all real; only
    the computational hardness of extracting s from the proving key is
    assumed.  The {!simulate} function demonstrates the zero-knowledge
    trapdoor property exactly as in the original scheme.

    {b Parallelism}: [setup] and [prove] fan their table constructions,
    inner products and FFT passes out over {!Zebra_parallel.Parallel}.
    Proofs are bit-identical at every [ZEBRA_DOMAINS] setting: all
    randomness is drawn on the calling domain before fan-out and chunk
    grids are pool-independent (DESIGN.md, "Multicore prover"). *)

(** Prover material: the QAP evaluated at the secret point (kept in the
    clear under the designated-verifier caveat above). *)
type proving_key

(** Verifier material; fixes the public-input count. *)
type verifying_key

(** The setup secrets, exposed deliberately for {!simulate}. *)
type trapdoor

(** A constant-size proof: 8 field elements. *)
type proof

(** Everything one trusted setup produces. *)
type keypair = { pk : proving_key; vk : verifying_key; trapdoor : trapdoor }

(** Canary bytes of the boxed trapdoor secret [t_s] (minimal big-endian
    field encoding), for the ZL2xx secret-flow lint: {!keypair_to_bytes}
    and every other sink must never contain them.  A keypair decoded from
    bytes carries a zero placeholder, whose canary is empty and never
    matches. *)
val trapdoor_canary : keypair -> bytes

(** [setup ~random_bytes cs] runs the trusted setup for the {e structure} of
    [cs] (witness values on the board are ignored).  The returned keys fix
    the number of public inputs of [cs].

    {b Deprecated alias}: new code should pass a {!Zebra_rng.Source.t} via
    {!setup_rng}; the bare-closure form remains for one release. *)
val setup : random_bytes:(int -> bytes) -> Cs.t -> keypair

(** {!setup} taking a first-class randomness source. *)
val setup_rng : rng:Zebra_rng.Source.t -> Cs.t -> keypair

(** [prove ~random_bytes pk cs] where [cs] is the same circuit synthesised
    with a full witness.  The proof attests that the public inputs of [cs]
    extend to a satisfying assignment.
    @raise Invalid_argument if the shape of [cs] does not match [pk].

    An unsatisfied board produces a proof that verification rejects (the
    behaviour a cheating prover would face).

    {b Deprecated alias}: prefer {!prove_rng}. *)
val prove : random_bytes:(int -> bytes) -> proving_key -> Cs.t -> proof

(** {!prove} taking a first-class randomness source. *)
val prove_rng : rng:Zebra_rng.Source.t -> proving_key -> Cs.t -> proof

(** [verify vk ~public_inputs proof]: O(|public_inputs|) field operations. *)
val verify : verifying_key -> public_inputs:Fp.t array -> proof -> bool

(** [batch_verify ~rng vk items] checks a block of proofs against one
    shared key with a single random-linear-combination test: each proof's
    five verification residuals are weighted by consecutive powers of one
    random scalar [r] drawn from [rng], and the batch passes iff the
    accumulated sum is zero.

    Completeness is exact — a batch of valid proofs always passes, for any
    [r].  Soundness is probabilistic with one-sided error: a batch hiding an
    invalid proof passes with probability at most (5m - 1)/|F| over the
    choice of [r] (Schwartz–Zippel; m = [Array.length items]), which is
    < 2^-200 here.  On [false], fall back to per-proof {!verify} to name
    the offenders.  An empty batch passes; a public-input arity mismatch
    fails without drawing randomness.

    {b Soundness requires [r] to be unpredictable to the prover}: the
    Schwartz–Zippel bound holds only when [r] is sampled after the proofs
    are fixed.  Seeding [rng] from data an adversary knows before crafting
    submissions lets them pick residuals that cancel under the known
    weights.  For a deterministic-but-sound challenge, seed [rng] from
    {!batch_seed} (Fiat–Shamir over the batch contents). *)
val batch_verify :
  rng:Zebra_rng.Source.t -> verifying_key -> (Fp.t array * proof) array -> bool

(** [batch_seed ~tag items] is a Fiat–Shamir seed for {!batch_verify}:
    SHA-256 over [tag] (domain separation — e.g. task address and batch
    index) and every item's public inputs and canonical proof bytes.  A
    challenge drawn from this seed depends on the proofs being checked, so
    no prover can choose residuals against it, yet the check stays
    deterministic and replayable from the same inputs. *)
val batch_seed : tag:string -> (Fp.t array * proof) array -> string

(** [simulate ~random_bytes trapdoor ~public_inputs] forges a verifying
    proof {e without any witness}, using the setup trapdoor — the standard
    zero-knowledge simulator, used by tests to establish that proofs leak
    nothing beyond validity.

    {b Deprecated alias}: prefer {!simulate_rng}. *)
val simulate : random_bytes:(int -> bytes) -> trapdoor -> public_inputs:Fp.t array -> proof

(** {!simulate} taking a first-class randomness source. *)
val simulate_rng : rng:Zebra_rng.Source.t -> trapdoor -> public_inputs:Fp.t array -> proof

(** {1 Introspection & serialisation} *)

(** The public-input count the key was set up for. *)
val num_public_inputs : verifying_key -> int

(** The FFT domain size (power of two >= constraint count). *)
val domain_size : proving_key -> int

(** Canonical encoding (8 field elements, 32 bytes each framed). *)
val proof_to_bytes : proof -> bytes

(** @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val proof_of_bytes : bytes -> proof

(** Canonical encoding, what contracts embed ([auth_vk]/[reward_vk]). *)
val vk_to_bytes : verifying_key -> bytes

(** Inverse of {!vk_to_bytes}.
    @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val vk_of_bytes : bytes -> verifying_key

(** [Bytes.length (proof_to_bytes p)] (Table I's proof column). *)
val proof_size_bytes : proof -> int

(** [Bytes.length (vk_to_bytes vk)] (Table I's key column). *)
val vk_size_bytes : verifying_key -> int

(** Field-wise equality of the 8 proof elements. *)
val equal_proof : proof -> proof -> bool

(** Canonical encoding of a keypair (proving and verification keys), used
    by {!Keycache} for {!Zebra_store.Store} persistence.  The trusted-setup
    trapdoor secret is {e deliberately excluded}: persisted bytes may land
    in backups or shared stores, which must never widen the trapdoor's
    exposure beyond process memory. *)
val keypair_to_bytes : keypair -> bytes

(** Inverse of {!keypair_to_bytes}.  The decoded keypair proves and
    verifies identically to the original; its trapdoor carries a zero
    placeholder for the setup secret (the encoding omits it — {!simulate}
    needs only the verification-key half, and {!Keycache} re-derives the
    secret from the setup seed when serving a store hit).
    @raise Zebra_codec.Codec.Decode_error on malformed input. *)
val keypair_of_bytes : bytes -> keypair

(** {1 Decoded-VK cache}

    Contracts hold verification keys as canonical bytes; decoding one costs
    a Montgomery conversion per field element — on the same order as a
    verification.  [vk_of_bytes_cached] memoises successful decodes in a
    bounded process-wide table keyed by the exact bytes, so hot paths
    ({!Zebra_anonauth.Cpla.verify_with_vk}, reward/reputation checks,
    auditing) decode each distinct key once. *)

(** Like {!vk_of_bytes} but memoised.  Raises exactly like {!vk_of_bytes}
    on malformed input (failures are never cached). *)
val vk_of_bytes_cached : bytes -> verifying_key

(** [(hits, decodes)] since start or the last {!vk_cache_clear}. *)
val vk_cache_stats : unit -> int * int

(** Drop all memoised keys and zero the stats (tests). *)
val vk_cache_clear : unit -> unit

(** {1 Content-addressed keypair cache}

    Trusted setup dominates task publication, yet tasks overwhelmingly
    reuse a handful of circuit shapes.  A [Keycache.t] memoises keypairs
    under a SHA-256 content key — canonical constraint-system encoding
    (structure only, no witness) plus the setup seed — with LRU eviction
    and optional {!Zebra_store.Store} persistence for evicted entries.

    Caching is invisible in every output byte: entry points derive all
    setup randomness from the seed alone, so a cache hit returns exactly
    the keypair a fresh setup would have produced.  The [ZEBRA_KEYCACHE]
    environment variable sets the default capacity ([off]/[0] disables,
    a positive integer sets it, unset means 16). *)
module Keycache : sig
  type t

  (** Circuit dimensions, available even on a hit (no synthesis ran). *)
  type shape = { constraints : int; vars : int; inputs : int }

  type stats = { hits : int; misses : int; store_hits : int }

  (** [create ?capacity ?store ()].  [capacity] defaults to the
      [ZEBRA_KEYCACHE] setting; [0] disables caching (setups still run,
      byte-identically).  With [store], inserted keypairs are also
      persisted content-addressed, surviving LRU eviction. *)
  val create : ?capacity:int -> ?store:Zebra_store.Store.t -> unit -> t

  (** Whether this cache retains anything (capacity > 0). *)
  val enabled : t -> bool

  (** [setup c ~seed cs] — content-addressed path: hashes the canonical
      encoding of [cs] (plus [seed]) and returns the cached keypair or runs
      [setup_rng ~rng:(Source.of_seed seed)].  Hashing walks every
      constraint, so a hit still costs O(|cs|); prefer {!setup_named} when
      a stable circuit identifier exists. *)
  val setup : t -> seed:string -> Cs.t -> keypair

  (** [setup_named c ~circuit_id ~seed synth] — named path: the key is
      SHA-256 of [(circuit_id, seed)], so a hit skips {e both} synthesis
      and setup ([synth] is only called on a miss).  The caller owns the
      [circuit_id] namespace: it must determine the circuit structure
      (e.g. ["reward/" ^ policy-digest ^ "/n=" ^ n]).  Returns the keypair
      with its shape. *)
  val setup_named :
    t -> circuit_id:string -> seed:string -> (unit -> Cs.t) -> keypair * shape

  val stats : t -> stats

  (** Drop every entry (memory and persistence index) and zero the stats. *)
  val clear : t -> unit
end
