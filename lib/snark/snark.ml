module Codec = Zebra_codec.Codec
module Obs = Zebra_obs.Obs
module Source = Zebra_rng.Source
module Parallel = Zebra_parallel.Parallel

(* Field multiplications per chunk below which fanning out is a loss. *)
let par_min_ops = 1 lsl 10

(* [| f 0; ...; f (n-1) |] with chunks evaluated on the pool.  Every index
   is written exactly once, so this is observably Array.init. *)
let par_init n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    Parallel.parallel_for ~min_chunk:par_min_ops n (fun lo hi ->
        for i = lo to hi - 1 do
          if i > 0 then out.(i) <- f i
        done);
    out
  end

type proving_key = {
  p_domain : Fft.domain;
  p_num_inputs : int;
  p_num_vars : int;
  a_s : Fp.t array; (* A_i(s) per wire *)
  b_s : Fp.t array;
  c_s : Fp.t array;
  a_s_alpha : Fp.t array;
  b_s_alpha : Fp.t array;
  c_s_alpha : Fp.t array;
  k_beta : Fp.t array; (* beta (A_i + B_i + C_i)(s) *)
  powers : Fp.t array; (* s^0 .. s^d *)
  z_s : Fp.t;
  z_alpha_a : Fp.t;
  z_alpha_b : Fp.t;
  z_alpha_c : Fp.t;
  z_beta : Fp.t;
}

type verifying_key = {
  v_num_inputs : int;
  alpha_a : Fp.t;
  alpha_b : Fp.t;
  alpha_c : Fp.t;
  beta : Fp.t;
  v_z_s : Fp.t;
  io_a : Fp.t array; (* indices 0 .. num_inputs; slot 0 is the constant wire *)
  io_b : Fp.t array;
  io_c : Fp.t array;
}

type trapdoor = { t_s : Fp.t; t_vk : verifying_key }

type proof = {
  pi_a : Fp.t;
  pi_a' : Fp.t;
  pi_b : Fp.t;
  pi_b' : Fp.t;
  pi_c : Fp.t;
  pi_c' : Fp.t;
  pi_k : Fp.t;
  pi_h : Fp.t;
}

type keypair = { pk : proving_key; vk : verifying_key; trapdoor : trapdoor }

let setup ~random_bytes cs =
  Obs.with_span "snark.setup" @@ fun () ->
  let n_constraints = Cs.num_constraints cs in
  let n_vars = Cs.num_vars cs in
  let n_inputs = Cs.num_inputs cs in
  let domain = Fft.domain (max 2 n_constraints) in
  let d = Fft.size domain in
  (* Sample a secret point outside the domain so the Lagrange evaluation is
     well defined. *)
  let rec sample_s () =
    let s = Fp.random random_bytes in
    if Fp.is_zero (Fft.vanishing_at domain s) then sample_s () else s
  in
  let s = sample_s () in
  let alpha_a = Fp.random random_bytes in
  let alpha_b = Fp.random random_bytes in
  let alpha_c = Fp.random random_bytes in
  let beta = Fp.random random_bytes in
  let a_s = Array.make n_vars Fp.zero in
  let b_s = Array.make n_vars Fp.zero in
  let c_s = Array.make n_vars Fp.zero in
  Obs.with_span "snark.setup.qap" (fun () ->
      let lag = Fft.lagrange_at domain s in
      Array.iteri
        (fun j (a, b, c) ->
          let lj = lag.(j) in
          let accumulate dst lc =
            List.iter
              (fun (coeff, var) ->
                let i = Cs.int_of_var var in
                dst.(i) <- Fp.add dst.(i) (Fp.mul coeff lj))
              lc
          in
          accumulate a_s a;
          accumulate b_s b;
          accumulate c_s c)
        (Cs.constraints cs));
  let powers =
    Obs.with_span "snark.setup.exp" (fun () ->
        (* Each chunk re-seeds its running power at s^lo, so the table is
           independent of the chunk grid (and of ZEBRA_DOMAINS). *)
        let powers = Array.make (d + 1) Fp.one in
        Parallel.parallel_for ~min_chunk:par_min_ops (d + 1) (fun lo hi ->
            let p = ref (Fp.pow_int s lo) in
            for i = lo to hi - 1 do
              powers.(i) <- !p;
              p := Fp.mul !p s
            done);
        powers)
  in
  let z_s = Fft.vanishing_at domain s in
  let pk =
    {
      p_domain = domain;
      p_num_inputs = n_inputs;
      p_num_vars = n_vars;
      a_s;
      b_s;
      c_s;
      a_s_alpha = par_init n_vars (fun i -> Fp.mul alpha_a a_s.(i));
      b_s_alpha = par_init n_vars (fun i -> Fp.mul alpha_b b_s.(i));
      c_s_alpha = par_init n_vars (fun i -> Fp.mul alpha_c c_s.(i));
      k_beta = par_init n_vars (fun i -> Fp.mul beta (Fp.add (Fp.add a_s.(i) b_s.(i)) c_s.(i)));
      powers;
      z_s;
      z_alpha_a = Fp.mul alpha_a z_s;
      z_alpha_b = Fp.mul alpha_b z_s;
      z_alpha_c = Fp.mul alpha_c z_s;
      z_beta = Fp.mul beta z_s;
    }
  in
  let slice arr = Array.sub arr 0 (n_inputs + 1) in
  let vk =
    {
      v_num_inputs = n_inputs;
      alpha_a;
      alpha_b;
      alpha_c;
      beta;
      v_z_s = z_s;
      io_a = slice a_s;
      io_b = slice b_s;
      io_c = slice c_s;
    }
  in
  { pk; vk; trapdoor = { t_s = s; t_vk = vk } }

let prove ~random_bytes pk cs =
  if Cs.num_vars cs <> pk.p_num_vars || Cs.num_inputs cs <> pk.p_num_inputs then
    invalid_arg "Snark.prove: circuit shape mismatch with proving key";
  Obs.with_span "snark.prove" @@ fun () ->
  let w = Cs.assignment cs in
  let n_inputs = pk.p_num_inputs in
  let d = Fft.size pk.p_domain in
  let delta1 = Fp.random random_bytes in
  let delta2 = Fp.random random_bytes in
  let delta3 = Fp.random random_bytes in
  (* Aux-only sums at s (the verifier reconstructs the IO part).  Chunk
     partial sums fold in chunk-index order; field addition is exact, so
     the result is the canonical value either way. *)
  let aux_lo = n_inputs + 1 in
  let aux_sum table =
    Parallel.map_reduce ~min_chunk:par_min_ops
      (pk.p_num_vars - aux_lo)
      ~map:(fun lo hi ->
        let acc = ref Fp.zero in
        for k = lo to hi - 1 do
          let i = aux_lo + k in
          if not (Fp.is_zero w.(i)) then acc := Fp.add !acc (Fp.mul w.(i) table.(i))
        done;
        !acc)
      ~reduce:Fp.add Fp.zero
  in
  let pi_a, pi_b, pi_c, pi_a', pi_b', pi_c', pi_k =
    Obs.with_span "snark.prove.exp" (fun () ->
        let pi_a = Fp.add (aux_sum pk.a_s) (Fp.mul delta1 pk.z_s) in
        let pi_b = Fp.add (aux_sum pk.b_s) (Fp.mul delta2 pk.z_s) in
        let pi_c = Fp.add (aux_sum pk.c_s) (Fp.mul delta3 pk.z_s) in
        let pi_a' = Fp.add (aux_sum pk.a_s_alpha) (Fp.mul delta1 pk.z_alpha_a) in
        let pi_b' = Fp.add (aux_sum pk.b_s_alpha) (Fp.mul delta2 pk.z_alpha_b) in
        let pi_c' = Fp.add (aux_sum pk.c_s_alpha) (Fp.mul delta3 pk.z_alpha_c) in
        let pi_k =
          Fp.add (aux_sum pk.k_beta) (Fp.mul (Fp.add (Fp.add delta1 delta2) delta3) pk.z_beta)
        in
        (pi_a, pi_b, pi_c, pi_a', pi_b', pi_c', pi_k))
  in
  (* Quotient polynomial H = (A B - C) / Z via coset FFTs.  A, B, C are the
     full (IO + aux) witness combinations, evaluated per constraint. *)
  let constrs = Cs.constraints cs in
  let evals_of select =
    (* Constraint j writes only slot j: rows are independent. *)
    let arr = Array.make d Fp.zero in
    Parallel.parallel_for ~min_chunk:256 (Array.length constrs) (fun lo hi ->
        for j = lo to hi - 1 do
          let lc = select constrs.(j) in
          let acc = ref Fp.zero in
          List.iter
            (fun (coeff, var) ->
              let i = Cs.int_of_var var in
              if not (Fp.is_zero w.(i)) then acc := Fp.add !acc (Fp.mul coeff w.(i)))
            lc;
          arr.(j) <- !acc
        done);
    arr
  in
  let a_evals, b_evals, c_evals =
    Obs.with_span "snark.prove.eval" (fun () ->
        ( evals_of (fun (a, _, _) -> a),
          evals_of (fun (_, b, _) -> b),
          evals_of (fun (_, _, c) -> c) ))
  in
  let a_coeffs, b_coeffs, h =
    Obs.with_span "snark.prove.fft" (fun () ->
        Fft.ifft pk.p_domain a_evals;
        Fft.ifft pk.p_domain b_evals;
        Fft.ifft pk.p_domain c_evals;
        let a_coeffs = Array.copy a_evals in
        let b_coeffs = Array.copy b_evals in
        Fft.coset_fft pk.p_domain a_evals;
        Fft.coset_fft pk.p_domain b_evals;
        Fft.coset_fft pk.p_domain c_evals;
        let z_inv = Fp.inv (Fft.vanishing_on_coset pk.p_domain) in
        let h = Array.make d Fp.zero in
        Parallel.parallel_for ~min_chunk:par_min_ops d (fun lo hi ->
            for i = lo to hi - 1 do
              h.(i) <- Fp.mul (Fp.sub (Fp.mul a_evals.(i) b_evals.(i)) c_evals.(i)) z_inv
            done);
        Fft.coset_ifft pk.p_domain h;
        (a_coeffs, b_coeffs, h))
  in
  (* Blinding:
     (A + d1 Z)(B + d2 Z) - (C + d3 Z) = Z (H + d1 B + d2 A + d1 d2 Z - d3). *)
  let h_ext = Array.make (d + 1) Fp.zero in
  Array.blit h 0 h_ext 0 d;
  Parallel.parallel_for ~min_chunk:par_min_ops d (fun lo hi ->
      for i = lo to hi - 1 do
        h_ext.(i) <-
          Fp.add h_ext.(i) (Fp.add (Fp.mul delta1 b_coeffs.(i)) (Fp.mul delta2 a_coeffs.(i)))
      done);
  let d1d2 = Fp.mul delta1 delta2 in
  (* d1 d2 Z = d1 d2 x^d - d1 d2 *)
  h_ext.(d) <- Fp.add h_ext.(d) d1d2;
  h_ext.(0) <- Fp.sub (Fp.sub h_ext.(0) d1d2) delta3;
  let pi_h =
    Obs.with_span "snark.prove.exp" (fun () ->
        Parallel.map_reduce ~min_chunk:par_min_ops (d + 1)
          ~map:(fun lo hi ->
            let acc = ref Fp.zero in
            for i = lo to hi - 1 do
              if not (Fp.is_zero h_ext.(i)) then
                acc := Fp.add !acc (Fp.mul h_ext.(i) pk.powers.(i))
            done;
            !acc)
          ~reduce:Fp.add Fp.zero)
  in
  { pi_a; pi_a'; pi_b; pi_b'; pi_c; pi_c'; pi_k; pi_h }

let io_part vk ~public_inputs table =
  if Array.length public_inputs <> vk.v_num_inputs then
    invalid_arg "Snark: wrong number of public inputs";
  let acc = ref table.(0) in
  Array.iteri (fun i x -> acc := Fp.add !acc (Fp.mul x table.(i + 1))) public_inputs;
  !acc

let verify vk ~public_inputs proof =
  if Array.length public_inputs <> vk.v_num_inputs then false
  else begin
    Obs.with_span "snark.verify" @@ fun () ->
    let a_total = Fp.add (io_part vk ~public_inputs vk.io_a) proof.pi_a in
    let b_total = Fp.add (io_part vk ~public_inputs vk.io_b) proof.pi_b in
    let c_total = Fp.add (io_part vk ~public_inputs vk.io_c) proof.pi_c in
    let divisibility =
      Fp.equal (Fp.sub (Fp.mul a_total b_total) c_total) (Fp.mul proof.pi_h vk.v_z_s)
    in
    let knowledge =
      Fp.equal proof.pi_a' (Fp.mul vk.alpha_a proof.pi_a)
      && Fp.equal proof.pi_b' (Fp.mul vk.alpha_b proof.pi_b)
      && Fp.equal proof.pi_c' (Fp.mul vk.alpha_c proof.pi_c)
    in
    let consistency =
      Fp.equal proof.pi_k (Fp.mul vk.beta (Fp.add (Fp.add proof.pi_a proof.pi_b) proof.pi_c))
    in
    divisibility && knowledge && consistency
  end

let simulate ~random_bytes trapdoor ~public_inputs =
  let vk = trapdoor.t_vk in
  let pi_a = Fp.random random_bytes in
  let pi_b = Fp.random random_bytes in
  let pi_h = Fp.random random_bytes in
  let a_total = Fp.add (io_part vk ~public_inputs vk.io_a) pi_a in
  let b_total = Fp.add (io_part vk ~public_inputs vk.io_b) pi_b in
  let c_total = Fp.sub (Fp.mul a_total b_total) (Fp.mul pi_h vk.v_z_s) in
  let pi_c = Fp.sub c_total (io_part vk ~public_inputs vk.io_c) in
  ignore trapdoor.t_s;
  {
    pi_a;
    pi_b;
    pi_c;
    pi_h;
    pi_a' = Fp.mul vk.alpha_a pi_a;
    pi_b' = Fp.mul vk.alpha_b pi_b;
    pi_c' = Fp.mul vk.alpha_c pi_c;
    pi_k = Fp.mul vk.beta (Fp.add (Fp.add pi_a pi_b) pi_c);
  }

let num_public_inputs vk = vk.v_num_inputs
let domain_size pk = Fft.size pk.p_domain

let write_fp w x = Codec.bytes w (Fp.to_bytes_be x)
let read_fp r = Fp.of_bytes_be_exn (Codec.read_bytes r)

let proof_to_bytes p =
  Codec.encode
    (fun w p ->
      List.iter (write_fp w)
        [ p.pi_a; p.pi_a'; p.pi_b; p.pi_b'; p.pi_c; p.pi_c'; p.pi_k; p.pi_h ])
    p

let proof_of_bytes b =
  Codec.decode
    (fun r ->
      let pi_a = read_fp r in
      let pi_a' = read_fp r in
      let pi_b = read_fp r in
      let pi_b' = read_fp r in
      let pi_c = read_fp r in
      let pi_c' = read_fp r in
      let pi_k = read_fp r in
      let pi_h = read_fp r in
      { pi_a; pi_a'; pi_b; pi_b'; pi_c; pi_c'; pi_k; pi_h })
    b

let vk_to_bytes vk =
  Codec.encode
    (fun w vk ->
      Codec.u32 w vk.v_num_inputs;
      List.iter (write_fp w) [ vk.alpha_a; vk.alpha_b; vk.alpha_c; vk.beta; vk.v_z_s ];
      Codec.array w write_fp vk.io_a;
      Codec.array w write_fp vk.io_b;
      Codec.array w write_fp vk.io_c)
    vk

let vk_of_bytes b =
  Codec.decode
    (fun r ->
      let v_num_inputs = Codec.read_u32 r in
      let alpha_a = read_fp r in
      let alpha_b = read_fp r in
      let alpha_c = read_fp r in
      let beta = read_fp r in
      let v_z_s = read_fp r in
      let io_a = Codec.read_array r read_fp in
      let io_b = Codec.read_array r read_fp in
      let io_c = Codec.read_array r read_fp in
      if Array.length io_a <> v_num_inputs + 1 then
        raise (Codec.Decode_error "vk: io table length mismatch");
      { v_num_inputs; alpha_a; alpha_b; alpha_c; beta; v_z_s; io_a; io_b; io_c })
    b

let proof_size_bytes p = Bytes.length (proof_to_bytes p)
let vk_size_bytes vk = Bytes.length (vk_to_bytes vk)

let equal_proof p q =
  Fp.equal p.pi_a q.pi_a && Fp.equal p.pi_a' q.pi_a' && Fp.equal p.pi_b q.pi_b
  && Fp.equal p.pi_b' q.pi_b' && Fp.equal p.pi_c q.pi_c && Fp.equal p.pi_c' q.pi_c'
  && Fp.equal p.pi_k q.pi_k && Fp.equal p.pi_h q.pi_h

(* Source-based entry points; the ~random_bytes forms above are kept as
   aliases for one release. *)

let setup_rng ~rng cs = setup ~random_bytes:(Source.fn rng) cs
let prove_rng ~rng pk cs = prove ~random_bytes:(Source.fn rng) pk cs
let simulate_rng ~rng trapdoor ~public_inputs =
  simulate ~random_bytes:(Source.fn rng) trapdoor ~public_inputs
